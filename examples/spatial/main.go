// Command spatial reproduces the paper's access-method extension
// example (section 1): "a DBC could define a new type of access method,
// e.g., an R-tree. Corona must recognize when this access method is
// useful for a query and when to invoke it."
//
// The DBC registers the R-tree attachment type; CREATE INDEX ... USING
// rtree builds one; the optimizer's capability-driven index matching
// recognizes window predicates (every key column range-bound) and
// routes them to the spatial index. Simulated page-I/O counters show
// the access-path difference.
package main

import (
	"fmt"

	starburst "repro"
	"repro/internal/storage"
)

func main() {
	db := starburst.Open()

	// The DBC extension: one registration call.
	db.RegisterAccessMethod(storage.RTreeMethod{})

	db.MustExec(`CREATE TABLE cities (id INT, name STRING, x FLOAT, y FLOAT)`, nil)
	n := 0
	for gx := 0; gx < 60; gx++ {
		for gy := 0; gy < 60; gy++ {
			n++
			db.MustExec(fmt.Sprintf(
				"INSERT INTO cities VALUES (%d, 'c%d', %d.0, %d.0)", n, n, gx, gy), nil)
		}
	}
	db.MustExec("ANALYZE cities", nil)
	fmt.Printf("loaded %d city points on a 60x60 grid\n\n", n)

	window := `SELECT id, name FROM cities
	WHERE x >= 10 AND x <= 12 AND y >= 20 AND y <= 22`

	// Without the index: full scan.
	db.ResetIOStats()
	res := db.MustExec(window, nil)
	scanReads, _, _ := db.IOStats()
	fmt.Printf("before CREATE INDEX: %d rows, %d simulated page reads (table scan)\n",
		len(res.Rows), scanReads)

	// The DBC creates the spatial attachment.
	db.MustExec(`CREATE INDEX cities_xy ON cities (x, y) USING rtree`, nil)
	db.MustExec("ANALYZE cities", nil)

	ex := db.MustExec("EXPLAIN "+window, nil)
	fmt.Println("\nplan after CREATE INDEX ... USING rtree:")
	inPlan := false
	for _, row := range ex.Rows {
		line := row[0].Str()
		if line == "=== Query evaluation plan ===" {
			inPlan = true
			continue
		}
		if inPlan {
			fmt.Println(line)
		}
	}

	db.ResetIOStats()
	res = db.MustExec(window, nil)
	idxReads, _, idxNodes := db.IOStats()
	fmt.Printf("\nwith R-tree: %d rows, %d page reads + %d index node reads\n",
		len(res.Rows), idxReads, idxNodes)
	if idxReads >= scanReads {
		fmt.Println("WARNING: spatial index did not reduce I/O")
	} else {
		fmt.Printf("window query I/O reduced %dx\n", scanReads/max64(idxReads, 1))
	}

	fmt.Println("\nmatching cities:")
	for _, row := range res.Rows {
		fmt.Printf("  %v %v\n", row[0], row[1])
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
