// Command dbc is the "database customizer tour": one program that
// exercises every extension axis the paper describes, in the order the
// paper introduces them —
//
//  1. an externally defined column type           (section 2, WILM88)
//  2. a scalar function (the paper's Area)        (section 2)
//  3. an aggregate function (StandardDeviation)   (section 2)
//  4. a set predicate function (MAJORITY)         (section 2)
//  5. a table function (SAMPLE)                   (section 2)
//  6. a storage manager (fixed-length records)    (section 1, LIND87)
//  7. an access method (R-tree)                   (section 1, GUTT84)
//  8. a query rewrite rule                        (section 5, HASA88)
//  9. an optimizer STAR alternative               (section 6, LOHM88)
//  10. a QES operator                             (section 7)
//
// Every extension is registered through the public API; no internal
// component is modified — the paper's definition of extensibility.
package main

import (
	"fmt"
	"strings"

	starburst "repro"
	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/qgm"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

func main() {
	db := starburst.Open()

	// (1) Externally defined type: POINT, ordered by distance from the
	// origin.
	pointID, err := db.RegisterType(starburst.TypeDef{
		Name: "POINT",
		Compare: func(a, b any) int {
			pa, pb := a.([2]float64), b.([2]float64)
			da := pa[0]*pa[0] + pa[1]*pa[1]
			dbb := pb[0]*pb[0] + pb[1]*pb[1]
			switch {
			case da < dbb:
				return -1
			case da > dbb:
				return 1
			}
			return 0
		},
		Format: func(a any) string {
			p := a.([2]float64)
			return fmt.Sprintf("(%g,%g)", p[0], p[1])
		},
	})
	check(err)
	fmt.Printf("1. registered type POINT (id %d)\n", pointID)

	// (2) Scalar function: the paper's Area(Width, Length).
	check(db.RegisterScalarFunc(&starburst.ScalarFunc{
		Name: "AREA", MinArgs: 2, MaxArgs: 2,
		ReturnType: func(args []starburst.TypeID) (starburst.TypeID, error) {
			return datum.TFloat, nil
		},
		Eval: func(args []starburst.Value) (starburst.Value, error) {
			if args[0].IsNull() || args[1].IsNull() {
				return starburst.Null, nil
			}
			return starburst.NewFloat(args[0].Float() * args[1].Float()), nil
		},
	}))
	fmt.Println("2. registered scalar function AREA(width, length)")

	// (3) Aggregate: the paper's StandardDeviation(Salary).
	check(db.RegisterAggregate(&starburst.AggregateFunc{
		Name: "STDDEV", EmptyIsNull: true,
		ReturnType: func(starburst.TypeID) (starburst.TypeID, error) { return datum.TFloat, nil },
		NewState:   func() starburst.AggState { return &stddev{} },
	}))
	fmt.Println("3. registered aggregate STDDEV(x)")

	// (4) Set predicate: the paper's MAJORITY.
	check(db.RegisterSetPredicate(&starburst.SetPredicateFunc{
		Name:     "MAJORITY",
		NewState: func() starburst.SetPredState { return &majority{} },
	}))
	fmt.Println("4. registered set predicate MAJORITY")

	// (5) Table function: the paper's SAMPLE(table, int).
	check(db.RegisterTableFunc(&starburst.TableFunc{
		Name: "SAMPLE", NumTables: 1, NumScalars: 1,
		OutputCols: func(in [][]starburst.ColumnDef, _ []starburst.Value) ([]starburst.ColumnDef, error) {
			return in[0], nil
		},
		Eval: func(in []*starburst.Relation, scalars []starburst.Value) (*starburst.Relation, error) {
			n := int(scalars[0].Int())
			if n > len(in[0].Rows) {
				n = len(in[0].Rows)
			}
			return &starburst.Relation{Cols: in[0].Cols, Rows: in[0].Rows[:n]}, nil
		},
	}))
	fmt.Println("5. registered table function SAMPLE(t, n)")

	// (6) Storage manager + (7) access method.
	db.RegisterStorageManager(storage.NewFixedManager())
	db.RegisterAccessMethod(storage.RTreeMethod{})
	fmt.Println("6. registered storage manager FIXED")
	fmt.Println("7. registered access method RTREE")

	// (8) Rewrite rule: drop tautological "col = col" predicates,
	// preserving NULL semantics via IS NOT NULL.
	check(db.RegisterRewriteRule(&starburst.RewriteRule{
		Name:  "drop-self-equality",
		Class: "misc",
		Condition: func(ctx *starburst.RewriteContext, b *qgm.Box) bool {
			for _, p := range b.Preds {
				if isSelfEq(p) {
					return true
				}
			}
			return false
		},
		Action: func(ctx *starburst.RewriteContext, b *qgm.Box) error {
			for _, p := range b.Preds {
				if isSelfEq(p) {
					cmp := p.Expr.(*expr.Cmp)
					p.Expr = &expr.IsNull{E: cmp.L, Negated: true}
				}
			}
			return nil
		},
	}))
	fmt.Println("8. registered rewrite rule drop-self-equality")

	// (9) + (10) Optimizer STAR emitting a DBC LOLEPOP, with its QES
	// executor: an "audit scan" that counts rows flowing out of every
	// table scan on the SENSORS table.
	audited := int64(0)
	db.AddSTARAlternative("ACCESS", &starburst.STARAlternative{
		Name: "AuditedScan",
		Condition: func(ctx *starburst.OptCtx, a starburst.OptArgs) bool {
			return a.Quant.Input.Kind == "BASE" && a.Quant.Input.Table.Name == "SENSORS" &&
				a.JoinKind != "audited" // recursion guard via spare field
		},
		Build: func(ctx *starburst.OptCtx, a starburst.OptArgs) ([]*starburst.PlanNode, error) {
			inner, err := ctx.Evaluate("ACCESS", starburst.OptArgs{
				Quant: a.Quant, Preds: a.Preds, JoinKind: "audited"})
			if err != nil || len(inner) == 0 {
				return nil, err
			}
			best := inner[0]
			for _, p := range inner {
				if p.Op != "AUDIT" && p.Props.Cost < best.Props.Cost {
					best = p
				}
			}
			n := &starburst.PlanNode{
				Op: "AUDIT", Inputs: []*starburst.PlanNode{best},
				Cols: best.Cols, Types: best.Types, Props: best.Props,
			}
			n.Props.Cost *= 0.999 // preferred when applicable
			return []*starburst.PlanNode{n}, nil
		},
	})
	db.RegisterOperator("AUDIT", func(b *exec.Builder, n *plan.Node, inputs []exec.Stream, corr map[plan.ColRef]int) (exec.Stream, error) {
		return &auditOp{in: inputs[0], count: &audited}, nil
	})
	fmt.Println("9./10. registered STAR alternative AuditedScan + QES operator AUDIT")

	// ------------------------------------------------------------------
	// Use everything at once.
	fmt.Println("\n=== Using the extended system ===")
	db.MustExec("CREATE TABLE sensors (id INT, w FLOAT, l FLOAT, x FLOAT, y FLOAT) USING heap", nil)
	db.MustExec("CREATE TABLE readings (sensor INT, val INT) USING fixed", nil)
	for i := 1; i <= 30; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO sensors VALUES (%d, %d.0, %d.0, %d.0, %d.0)",
			i, i%5+1, i%7+1, i%6, i/6), nil)
		for r := 0; r < 4; r++ {
			db.MustExec(fmt.Sprintf("INSERT INTO readings VALUES (%d, %d)", i, (i*r)%13), nil)
		}
	}
	db.MustExec("CREATE INDEX sensors_xy ON sensors (x, y) USING rtree", nil)
	db.MustExec("ANALYZE sensors", nil)
	db.MustExec("ANALYZE readings", nil)

	q := `SELECT s.id, AREA(s.w, s.l) a
	FROM SAMPLE(sensors, 25) s
	WHERE s.x >= 1 AND s.x <= 3 AND s.y >= 1 AND s.y <= 3
	  AND AREA(s.w, s.l) > MAJORITY (SELECT AREA(w, l) FROM sensors)
	ORDER BY a DESC LIMIT 5`
	res := db.MustExec(q, nil)
	fmt.Println("sensors in window with above-majority area:")
	for _, row := range res.Rows {
		fmt.Printf("  sensor %v area %v\n", row[0], row[1])
	}

	res = db.MustExec(`SELECT sensor, STDDEV(val) FROM readings GROUP BY sensor
		HAVING STDDEV(val) > 20 ORDER BY 1 LIMIT 3`, nil)
	fmt.Println("high-variance sensors (DBC aggregate):")
	for _, row := range res.Rows {
		fmt.Printf("  sensor %v variance %v\n", row[0], row[1])
	}

	// The rewrite rule and audit operator at work.
	res = db.MustExec("SELECT COUNT(*) FROM sensors WHERE id = id", nil)
	fmt.Printf("drop-self-equality rewrote 'id = id'; count = %v\n", res.Rows[0][0])
	fmt.Printf("AUDIT operator observed %d sensor rows in total\n", audited)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}

func isSelfEq(p *qgm.Predicate) bool {
	cmp, ok := p.Expr.(*expr.Cmp)
	if !ok || cmp.Op != expr.OpEq {
		return false
	}
	lc, lok := cmp.L.(*expr.Col)
	rc, rok := cmp.R.(*expr.Col)
	return lok && rok && lc.QID == rc.QID && lc.Ord == rc.Ord &&
		!strings.Contains(p.Expr.String(), "IS NOT NULL")
}

type stddev struct {
	n          int64
	sum, sumSq float64
}

func (s *stddev) Add(v starburst.Value) error {
	if v.IsNull() {
		return nil
	}
	s.n++
	s.sum += v.Float()
	s.sumSq += v.Float() * v.Float()
	return nil
}

func (s *stddev) Result() starburst.Value {
	if s.n == 0 {
		return starburst.Null
	}
	mean := s.sum / float64(s.n)
	return starburst.NewFloat(s.sumSq/float64(s.n) - mean*mean)
}

type majority struct{ yes, total int }

func (m *majority) Add(t datum.Tristate) {
	m.total++
	if t == datum.True {
		m.yes++
	}
}

func (m *majority) Result() datum.Tristate {
	if m.yes*2 > m.total {
		return datum.True
	}
	return datum.False
}

func (m *majority) Decided() bool { return false }

type auditOp struct {
	in    exec.Stream
	count *int64
}

func (a *auditOp) Open(ctx *exec.Ctx) error { return a.in.Open(ctx) }

func (a *auditOp) Next(ctx *exec.Ctx) (datum.Row, bool, error) {
	row, ok, err := a.in.Next(ctx)
	if ok {
		*a.count++
	}
	return row, ok, err
}

func (a *auditOp) Close(ctx *exec.Ctx) error { return a.in.Close(ctx) }

// rewrite import is used via the type alias in starburst; keep the
// package linked for documentation purposes.
var _ = rewrite.Options{}
