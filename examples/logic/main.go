// Command logic demonstrates Hydrogen as "an integrated language for
// logic programming and database access" (section 2): recursion is
// expressed by cyclic references to named table expressions, and
// recursive queries may freely mix relational calculus operations and
// aggregation — here a bill-of-materials and an ancestor (path algebra)
// computation.
package main

import (
	"fmt"

	starburst "repro"
)

func main() {
	db := starburst.Open()

	// --- Bill of materials -------------------------------------------
	db.MustExec(`CREATE TABLE assembly (parent STRING, child STRING, qty INT)`, nil)
	for _, r := range [][3]any{
		{"bike", "frame", 1}, {"bike", "wheel", 2}, {"bike", "brake", 2},
		{"wheel", "rim", 1}, {"wheel", "spoke", 36}, {"wheel", "tire", 1},
		{"brake", "pad", 2}, {"brake", "lever", 1},
		{"frame", "tube", 4},
	} {
		db.MustExec(fmt.Sprintf(
			"INSERT INTO assembly VALUES ('%s', '%s', %d)", r[0], r[1], r[2]), nil)
	}

	// Transitive sub-parts of "bike", with aggregation on top of the
	// recursion.
	fmt.Println("=== All parts of a bike (recursive table expression) ===")
	res := db.MustExec(`WITH RECURSIVE parts (part) AS (
		SELECT child FROM assembly WHERE parent = 'bike'
		UNION SELECT a.child FROM parts p, assembly a WHERE a.parent = p.part)
		SELECT part FROM parts ORDER BY part`, nil)
	for _, row := range res.Rows {
		fmt.Printf("  %v\n", row[0])
	}

	fmt.Println("\n=== Direct-component counts per assembly (rules + aggregates) ===")
	res = db.MustExec(`WITH RECURSIVE parts (part) AS (
		SELECT child FROM assembly WHERE parent = 'bike'
		UNION SELECT a.child FROM parts p, assembly a WHERE a.parent = p.part)
		SELECT a.parent, COUNT(*) kinds, SUM(a.qty) pieces
		FROM assembly a WHERE a.parent IN (SELECT part FROM parts)
		GROUP BY a.parent ORDER BY a.parent`, nil)
	fmt.Printf("  %-8s %-6s %-6s\n", "PARENT", "KINDS", "PIECES")
	for _, row := range res.Rows {
		fmt.Printf("  %-8v %-6v %-6v\n", row[0], row[1], row[2])
	}

	// --- Ancestors (classic logic-programming example) ----------------
	// ancestor(X,Y) :- parent(X,Y).
	// ancestor(X,Y) :- parent(X,Z), ancestor(Z,Y).
	db.MustExec(`CREATE TABLE parent (p STRING, c STRING)`, nil)
	for _, r := range [][2]string{
		{"adam", "bea"}, {"bea", "carl"}, {"carl", "dora"},
		{"bea", "ben"}, {"eve", "bea"},
	} {
		db.MustExec(fmt.Sprintf("INSERT INTO parent VALUES ('%s', '%s')", r[0], r[1]), nil)
	}
	fmt.Println("\n=== ancestor('adam', X) — Datalog rules as table expressions ===")
	res = db.MustExec(`WITH RECURSIVE ancestor (a, d) AS (
		SELECT p, c FROM parent
		UNION SELECT p.p, anc.d FROM parent p, ancestor anc WHERE anc.a = p.c)
		SELECT d FROM ancestor WHERE a = 'adam' ORDER BY d`, nil)
	for _, row := range res.Rows {
		fmt.Printf("  %v\n", row[0])
	}

	// Same-generation: the harder classic, a non-linear recursion.
	fmt.Println("\n=== same-generation pairs ===")
	res = db.MustExec(`WITH RECURSIVE sg (x, y) AS (
		SELECT a.c, b.c FROM parent a, parent b WHERE a.p = b.p AND a.c <> b.c
		UNION SELECT a.c, b.c FROM parent a, sg, parent b
		      WHERE a.p = sg.x AND b.p = sg.y)
		SELECT x, y FROM sg WHERE x < y ORDER BY x, y`, nil)
	for _, row := range res.Rows {
		fmt.Printf("  %v ~ %v\n", row[0], row[1])
	}
}
