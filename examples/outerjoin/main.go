// Command outerjoin reproduces the paper's worked extension example
// (sections 4, 5 and 7): a database customizer (DBC) adds left outer
// join to the system.
//
// The pieces, mirroring the paper:
//
//   - QGM: the preserved side's setformer gets the new type PF
//     (Preserve Foreach) instead of F — shown in the printed QGM;
//   - query rewrite: the base predicate push-down rules must NOT apply
//     to the PF setformer "as they would then eliminate tuples which
//     should be preserved"; instead the DBC registers his own rule that
//     pushes predicates *through* the outer join to the operation the
//     PF setformer ranges over;
//   - execution: left outer join is a join KIND, reusing the existing
//     join METHODS (nested loop, hash).
package main

import (
	"fmt"

	starburst "repro"
	"repro/internal/expr"
	"repro/internal/qgm"
	"repro/internal/rewrite"
)

// pushThroughPF is the DBC's rewrite rule: a predicate of the outer-join
// box that references only columns of the PF setformer, where the PF
// setformer ranges over a SELECT box, is pushed through the outer join
// into that box. It is sound because such predicates (placed there by a
// WHERE above, or pushed from above by the DBC's receive rule) restrict
// only preserved-side tuples, and restricting them before the join
// preserves exactly the same tuples.
//
// Note the contrast with the base rule: predicates must never be pushed
// down *from* the outer join's own join condition — those decide
// matching, not survival.
func pushThroughPF() *rewrite.Rule {
	// The rule moves WHERE predicates from the SELECT box above the
	// outer join (where the ON/WHERE distinction is explicit: WHERE
	// conjuncts live on the SELECT box, ON conjuncts inside the join
	// box) through the join quantifier onto the PF side's input box.
	match := func(ctx *rewrite.Context, b *qgm.Box) (*qgm.Predicate, *qgm.Quantifier, *qgm.Quantifier) {
		if b.Kind != qgm.KindSelect {
			return nil, nil, nil
		}
		for _, q := range b.Quants {
			if q.Type != qgm.ForEach || q.Input.Kind != qgm.KindOuterJoin {
				continue
			}
			oj := q.Input
			if _, sole := ctx.SoleRanger(oj); sole == nil {
				continue
			}
			for _, p := range b.Preds {
				refs := p.QIDs()
				if len(refs) != 1 || !refs[q.QID] {
					continue
				}
				// Does every referenced output column come from a PF
				// setformer column, and does that setformer range over
				// a SELECT box we can land the predicate in?
				var pf *qgm.Quantifier
				ok := true
				for _, c := range expr.Cols(p.Expr) {
					if c.QID != q.QID {
						continue
					}
					src, isCol := oj.Head[c.Ord].Expr.(*expr.Col)
					if !isCol {
						ok = false
						break
					}
					srcQ := oj.FindQuant(src.QID)
					if srcQ == nil || srcQ.Type != qgm.PreserveForeach ||
						srcQ.Input.Kind != qgm.KindSelect {
						ok = false
						break
					}
					if pf != nil && pf != srcQ {
						ok = false
						break
					}
					pf = srcQ
				}
				if ok && pf != nil {
					if _, sole := ctx.SoleRanger(pf.Input); sole != nil {
						return p, q, pf
					}
				}
			}
		}
		return nil, nil, nil
	}
	return &rewrite.Rule{
		Name:     "outerjoin-push-through-pf",
		Class:    "predmigration",
		Priority: 65,
		Condition: func(ctx *rewrite.Context, b *qgm.Box) bool {
			p, _, _ := match(ctx, b)
			return p != nil
		},
		Action: func(ctx *rewrite.Context, b *qgm.Box) error {
			p, q, pf := match(ctx, b)
			oj := q.Input
			// Step 1: rewrite through the join output into PF-side
			// quantifier columns.
			inner := expr.SubstituteCols(p.Expr, func(c *expr.Col) expr.Expr {
				if c.QID != q.QID {
					return nil
				}
				return oj.Head[c.Ord].Expr
			})
			// Step 2: push through the PF quantifier into its input box.
			landed := expr.SubstituteCols(inner, func(c *expr.Col) expr.Expr {
				if c.QID != pf.QID {
					return nil
				}
				return pf.Input.Head[c.Ord].Expr
			})
			pf.Input.Preds = append(pf.Input.Preds, &qgm.Predicate{Expr: landed})
			for i, x := range b.Preds {
				if x == p {
					b.Preds = append(b.Preds[:i], b.Preds[i+1:]...)
					break
				}
			}
			return nil
		},
	}
}

func main() {
	db := starburst.Open()
	db.MustExec(`CREATE TABLE quotations (partno INT, price FLOAT, order_qty INT)`, nil)
	db.MustExec(`CREATE TABLE inventory (partno INT, onhand_qty INT, type STRING)`, nil)
	for i := 1; i <= 8; i++ {
		db.MustExec(fmt.Sprintf(
			"INSERT INTO quotations VALUES (%d, %d.50, %d)", i, 10*i, 5*i), nil)
	}
	for i := 1; i <= 5; i++ {
		typ := "'CPU'"
		if i%2 == 0 {
			typ = "'DISK'"
		}
		db.MustExec(fmt.Sprintf("INSERT INTO inventory VALUES (%d, %d, %s)", i, i, typ), nil)
	}

	// Register the DBC's rewrite rule.
	if err := db.RegisterRewriteRule(pushThroughPF()); err != nil {
		panic(err)
	}

	// The preserved side is a derived table so the pushed predicate has
	// an operation box to land in.
	query := `SELECT q.partno, q.price, i.onhand_qty
	FROM (SELECT partno, price, order_qty FROM quotations) q
	  LEFT OUTER JOIN inventory i ON q.partno = i.partno
	WHERE q.order_qty <= 20`

	fmt.Println("=== EXPLAIN: note the PF setformer and the pushed predicate ===")
	ex := db.MustExec("EXPLAIN "+query, nil)
	for _, row := range ex.Rows {
		fmt.Println(row[0].Str())
	}

	fmt.Println("=== Result (parts without inventory are preserved with NULLs) ===")
	res := db.MustExec(query+" ORDER BY 1", nil)
	fmt.Printf("%-8s %-8s %-10s\n", res.Columns[0], res.Columns[1], res.Columns[2])
	for _, row := range res.Rows {
		fmt.Printf("%-8v %-8v %-10v\n", row[0], row[1], row[2])
	}
}
