// Command quickstart walks the paper's running example through every
// phase of Figure 1: the quotations/inventory query of section 4 is
// parsed into QGM (Figure 2a), rewritten by Rule 1 + Rule 2 into the
// merged form (Figure 2b), optimized into a query evaluation plan, and
// executed by the QES.
package main

import (
	"fmt"

	starburst "repro"
)

func main() {
	db := starburst.Open()

	fmt.Println("=== Data definition ===")
	ddl := []string{
		`CREATE TABLE quotations (partno INT NOT NULL, price FLOAT, order_qty INT, suppno INT)`,
		`CREATE TABLE inventory (partno INT NOT NULL, onhand_qty INT, type STRING)`,
		// The unique index is what lets Rule 1 prove "at most one tuple
		// of T2 satisfies the predicate".
		`CREATE UNIQUE INDEX inv_pk ON inventory (partno)`,
	}
	for _, q := range ddl {
		db.MustExec(q, nil)
		fmt.Println(" ", q)
	}

	fmt.Println("\n=== Loading sample data ===")
	for i := 1; i <= 8; i++ {
		db.MustExec(fmt.Sprintf(
			"INSERT INTO quotations VALUES (%d, %d.50, %d, %d)", i, 10*i, 5*i, i%3), nil)
	}
	for i := 1; i <= 5; i++ {
		typ := "'CPU'"
		if i%2 == 0 {
			typ = "'DISK'"
		}
		db.MustExec(fmt.Sprintf(
			"INSERT INTO inventory VALUES (%d, %d, %s)", i, i, typ), nil)
	}
	db.MustExec("ANALYZE quotations", nil)
	db.MustExec("ANALYZE inventory", nil)
	fmt.Println("  8 quotations, 5 inventory rows")

	// The exact query of section 4 / Figure 2.
	query := `SELECT partno, price, order_qty FROM quotations Q1
	WHERE Q1.partno IN
	  (SELECT partno FROM inventory Q3
	   WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')`

	fmt.Println("\n=== EXPLAIN (all compilation phases, Figure 1) ===")
	ex := db.MustExec("EXPLAIN "+query, nil)
	for _, row := range ex.Rows {
		fmt.Println(row[0].Str())
	}

	fmt.Println("=== Execution ===")
	res := db.MustExec(query, nil)
	fmt.Printf("%-8s %-8s %-9s\n", res.Columns[0], res.Columns[1], res.Columns[2])
	for _, row := range res.Rows {
		fmt.Printf("%-8v %-8v %-9v\n", row[0], row[1], row[2])
	}

	// Compilation and execution may be separated in time (section 3).
	fmt.Println("\n=== Prepared statement with a host variable ===")
	stmt, err := db.Prepare(
		"SELECT partno FROM quotations WHERE order_qty > :minq ORDER BY partno")
	if err != nil {
		panic(err)
	}
	for _, q := range []int64{20, 30} {
		r, err := stmt.Run(map[string]starburst.Value{"minq": starburst.NewInt(q)})
		if err != nil {
			panic(err)
		}
		fmt.Printf("order_qty > %d:", q)
		for _, row := range r.Rows {
			fmt.Printf(" %v", row[0])
		}
		fmt.Println()
	}
}
