package starburst

// Observability tests: per-operator stats invariants over every
// operator kind (clean, under faults, under cancellation), the metrics
// registry counters, tracing, the slow-query log, EXPLAIN ANALYZE end
// to end, and the shared row-accounting path (instrumentation must not
// change MaxRows semantics).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
)

// walkPlan visits every node of a plan tree once.
func walkPlan(n *plan.Node, f func(*plan.Node)) {
	seen := map[*plan.Node]bool{}
	var rec func(*plan.Node)
	rec = func(n *plan.Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		f(n)
		for _, in := range n.Inputs {
			rec(in)
		}
	}
	rec(n)
}

// checkStatsInvariants asserts the structural invariants every
// operator's stats must satisfy, in any outcome: counters non-negative,
// rows never exceed Next calls, timings non-negative, and no counter
// below its previous snapshot (cumulative monotonicity).
func checkStatsInvariants(t *testing.T, instr *exec.Instrumentation, root *plan.Node,
	prev map[*plan.Node]obs.OpStats) map[*plan.Node]obs.OpStats {
	t.Helper()
	now := map[*plan.Node]obs.OpStats{}
	walkPlan(root, func(n *plan.Node) {
		st := instr.OpStats(n)
		if st == nil {
			t.Fatalf("node %s built without stats", n.Op)
		}
		now[n] = *st
		for _, v := range []struct {
			name string
			val  int64
		}{
			{"Rows", st.Rows}, {"Opens", st.Opens}, {"Nexts", st.Nexts}, {"Closes", st.Closes},
			{"OpenNanos", st.OpenNanos}, {"NextNanos", st.NextNanos}, {"CloseNanos", st.CloseNanos},
			{"MemHighWater", st.MemHighWater}, {"CacheHits", st.CacheHits}, {"CacheMisses", st.CacheMisses},
		} {
			if v.val < 0 {
				t.Errorf("node %s: %s = %d < 0", n.Op, v.name, v.val)
			}
		}
		if st.Rows > st.Nexts {
			t.Errorf("node %s: produced %d rows in %d Next calls", n.Op, st.Rows, st.Nexts)
		}
		if st.Rows > 0 && st.Opens == 0 {
			t.Errorf("node %s: produced rows without being opened", n.Op)
		}
		if instr.SelfNanos(n) < 0 {
			t.Errorf("node %s: negative self time", n.Op)
		}
		if p, ok := prev[n]; ok {
			if st.Rows < p.Rows || st.Opens < p.Opens || st.Nexts < p.Nexts || st.Closes < p.Closes ||
				st.OpenNanos < p.OpenNanos || st.NextNanos < p.NextNanos || st.CloseNanos < p.CloseNanos {
				t.Errorf("node %s: counters regressed across runs: %+v -> %+v", n.Op, p, *st)
			}
		}
	})
	return now
}

// runInstrumented executes a compiled plan through the stats decorator
// with the package-internal pieces, so one Instrumentation can
// accumulate across several runs.
func runInstrumented(db *DB, instr *exec.Instrumentation, compiled *plan.Compiled,
	params map[string]Value, goCtx context.Context) ([]Row, error) {
	if db.faults != nil {
		db.faults.SetInterrupt(goCtx.Done())
		defer db.faults.SetInterrupt(nil)
	}
	s, err := db.builder.Instrumented(instr).Build(compiled.Root, nil)
	if err != nil {
		return nil, err
	}
	tx := db.autoTx()
	ctx := exec.NewCtx(tx.cat, params)
	ctx.Snap = tx.snapshot()
	ctx.Txn = tx.ts
	ctx.Arm(goCtx, db.GetLimits())
	rows, err := exec.Run(ctx, s)
	return rows, db.finishAuto(tx, err, nil)
}

// TestAnalyzeInvariantsEveryOperator drives the full fault-matrix
// operator table through the stats decorator three ways — with the
// case's fault injected, under cancellation mid-fault-latency, and
// clean (twice) — checking after every leg that the per-operator stats
// are consistent, cumulative, and that the root operator's row count
// equals the rows actually returned. Failing legs run first: they roll
// back, so the table state the later legs see is unchanged.
func TestAnalyzeInvariantsEveryOperator(t *testing.T) {
	for _, c := range faultMatrixCases() {
		t.Run(c.name, func(t *testing.T) {
			db := robustDB(t)
			if c.setup != nil {
				c.setup(t, db)
			}
			compiled := c.compilePlan(t, db)
			instr := exec.NewInstrumentation()
			var prev map[*plan.Node]obs.OpStats

			// Under the case's fault: the statement fails, stats stay sane.
			db.InjectFaults(c.fault)
			if _, err := runInstrumented(db, instr, compiled, c.params, context.Background()); err == nil {
				t.Fatal("statement succeeded despite injected fault")
			}
			prev = checkStatsInvariants(t, instr, compiled.Root, prev)
			db.ClearFaults()

			// Cancelled mid-statement: the same fault site stalls instead of
			// failing, and the context is cancelled during the stall.
			db.InjectFaults(&Fault{Table: c.fault.Table, Op: c.fault.Op,
				After: c.fault.After, Latency: 5 * time.Second})
			goCtx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			if _, err := runInstrumented(db, instr, compiled, c.params, goCtx); err == nil {
				t.Fatal("statement succeeded under a cancelled context")
			}
			cancel()
			prev = checkStatsInvariants(t, instr, compiled.Root, prev)
			db.ClearFaults()
			db.DetachFaults()

			// Two clean runs: stats keep accumulating, never regress, and
			// the root's produced-row delta equals the result set each time.
			prevRootRows := instr.OpStats(compiled.Root).Rows
			for run := 0; run < 2; run++ {
				rows, err := runInstrumented(db, instr, compiled, c.params, context.Background())
				if err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				rootRows := instr.OpStats(compiled.Root).Rows
				if got := rootRows - prevRootRows; got != int64(len(rows)) {
					t.Fatalf("run %d: root stats counted %d rows, result has %d", run, got, len(rows))
				}
				prevRootRows = rootRows
				prev = checkStatsInvariants(t, instr, compiled.Root, prev)
			}
		})
	}
}

// TestInstrumentationKeepsBudgetSemantics is the row-accounting drift
// guard: MaxRows enforcement must behave identically with and without
// the stats decorator, because both share Ctx.countRow.
func TestInstrumentationKeepsBudgetSemantics(t *testing.T) {
	for _, instrumented := range []bool{false, true} {
		db := robustDB(t)
		db.SetLimits(Limits{MaxRows: 5})
		if instrumented {
			db.SetSlowQueryThreshold(time.Hour) // arms instrumentation, never fires
		}
		// Three-way cross join: enough tuple boundaries to cross the
		// amortized enforcement interval.
		_, err := db.Exec(`SELECT i.id FROM items i, orders o, items j`, nil)
		var rerr *ResourceError
		if !errors.As(err, &rerr) || rerr.Budget != "rows" {
			t.Fatalf("instrumented=%v: want rows ResourceError, got %v", instrumented, err)
		}
	}
}

func TestMetricsCounters(t *testing.T) {
	db := robustDB(t)
	m := db.Metrics()

	// robustDB's setup already executed statements; count deltas.
	kinds := []string{"SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "EXPLAIN", "EXPLAIN ANALYZE"}
	base := map[string]int64{}
	for _, k := range kinds {
		base[k] = m.CounterValue(MetricStatements, "kind", k)
	}

	mustExec(t, db, `SELECT id FROM items`)
	mustExec(t, db, `SELECT tag FROM items`)
	mustExec(t, db, `INSERT INTO orders VALUES (99, 1, 1)`)
	mustExec(t, db, `UPDATE items SET qty = qty + 1 WHERE id = 1`)
	mustExec(t, db, `DELETE FROM orders WHERE oid = 99`)
	mustExec(t, db, `CREATE TABLE tmp (x INT)`)
	mustExec(t, db, `DROP TABLE tmp`)
	mustExec(t, db, `EXPLAIN SELECT id FROM items`)
	mustExec(t, db, `EXPLAIN ANALYZE SELECT id FROM items`)

	for _, want := range []struct {
		kind string
		n    int64
	}{
		{"SELECT", 2}, {"INSERT", 1}, {"UPDATE", 1}, {"DELETE", 1},
		{"CREATE", 1}, {"DROP", 1}, {"EXPLAIN", 1}, {"EXPLAIN ANALYZE", 1},
	} {
		if got := m.CounterValue(MetricStatements, "kind", want.kind) - base[want.kind]; got != want.n {
			t.Errorf("statements{kind=%q} += %d, want %d", want.kind, got, want.n)
		}
	}

	// Errors by phase: a parse error and an exec-phase budget trip.
	if _, err := db.Exec(`SELEC id FROM items`, nil); err == nil {
		t.Fatal("want parse error")
	}
	if got := m.CounterValue(MetricStatementErrors, "phase", "parse"); got != 1 {
		t.Errorf("statement_errors{phase=parse} = %d, want 1", got)
	}
	db.SetLimits(Limits{MaxRows: 2})
	if _, err := db.Exec(`SELECT i.id FROM items i, orders o, items j`, nil); err == nil {
		t.Fatal("want budget error")
	}
	db.SetLimits(Limits{})
	if got := m.CounterValue(MetricStatementErrors, "phase", "exec"); got != 1 {
		t.Errorf("statement_errors{phase=exec} = %d, want 1", got)
	}
	if got := m.CounterValue(MetricBudgetTrips, "budget", "rows"); got != 1 {
		t.Errorf("budget_trips{budget=rows} = %d, want 1", got)
	}

	// Subquery cache: orders.item repeats, so the correlated subquery
	// must both miss (first sighting) and hit (repeat).
	mustExec(t, db, `SELECT oid FROM orders WHERE n > (SELECT qty FROM items WHERE id = orders.item)`)
	hits := m.Counter(MetricSubqCacheHits).Value()
	misses := m.Counter(MetricSubqCacheMisses).Value()
	if hits == 0 || misses == 0 {
		t.Errorf("subquery cache: hits=%d misses=%d, want both > 0", hits, misses)
	}

	// Rollbacks: a failing multi-row INSERT undoes its partial work.
	db.InjectFaults(&Fault{Table: "orders", Op: FaultInsert, After: 2, Err: "boom"})
	if _, err := db.Exec(`INSERT INTO orders SELECT id, id, qty FROM items`, nil); err == nil {
		t.Fatal("want fault error")
	}
	if got := m.Counter(MetricRollbacks).Value(); got < 1 {
		t.Errorf("rollbacks = %d, want >= 1", got)
	}
	// The fault-fired gauge tracks the injector.
	var dump bytes.Buffer
	if _, err := m.WriteTo(&dump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump.String(), MetricFaultsFired+" 1") {
		t.Errorf("metrics dump missing %s:\n%s", MetricFaultsFired, dump.String())
	}
	if !strings.Contains(dump.String(), MetricStatementSeconds+"_count") {
		t.Errorf("metrics dump missing latency histogram:\n%s", dump.String())
	}
}

func TestTracingOnResult(t *testing.T) {
	db := robustDB(t)
	res := mustExec(t, db, `SELECT id FROM items`)
	if res.Trace != nil {
		t.Fatal("tracing off: Result.Trace must be nil")
	}
	db.SetTracing(true)
	res = mustExec(t, db, `SELECT i.id FROM items i, orders o WHERE i.id = o.item`)
	if res.Trace == nil {
		t.Fatal("tracing on: Result.Trace missing")
	}
	tr := res.Trace
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		if tr.Phases[p] < 0 {
			t.Errorf("phase %s negative: %v", p, tr.Phases[p])
		}
	}
	if tr.Phases[obs.PhaseParse] == 0 || tr.Phases[obs.PhaseOptimize] == 0 {
		t.Errorf("parse/optimize phases not timed: %v", tr.Phases)
	}
	if len(tr.StarExpansions) == 0 {
		t.Errorf("no STAR expansions recorded")
	}
	prep, err := db.Prepare(`SELECT id FROM items`)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := prep.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Trace == nil {
		t.Fatal("tracing on: prepared Result.Trace missing")
	}
	db.SetTracing(false)
	if res = mustExec(t, db, `SELECT id FROM items`); res.Trace != nil {
		t.Fatal("tracing off again: Result.Trace must be nil")
	}
}

// TestRewriteFiringsTraced needs a statement the rewrite engine
// actually transforms; a view reference always merges.
func TestRewriteFiringsTraced(t *testing.T) {
	db := robustDB(t)
	mustExec(t, db, `CREATE VIEW big AS SELECT id, qty FROM items WHERE qty > 20`)
	db.SetTracing(true)
	res := mustExec(t, db, `SELECT id FROM big WHERE qty < 100`)
	if res.Trace == nil || len(res.Trace.RuleFirings) == 0 {
		t.Fatalf("view query recorded no rule firings: %+v", res.Trace)
	}
}

func TestSlowQueryLog(t *testing.T) {
	db := robustDB(t)
	var buf bytes.Buffer
	db.SetSlowQueryLog(slog.NewTextHandler(&buf, nil))
	db.SetSlowQueryThreshold(time.Nanosecond) // everything is slow
	mustExec(t, db, `SELECT i.id FROM items i, orders o WHERE i.id = o.item`)
	out := buf.String()
	for _, want := range []string{"slow query", "kind=SELECT", "phase_execute=", "op1."} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-query record missing %q:\n%s", want, out)
		}
	}
	if got := db.Metrics().Counter(MetricSlowQueries).Value(); got != 1 {
		t.Errorf("slow_queries = %d, want 1", got)
	}

	// Disarm: nothing further is emitted.
	db.SetSlowQueryThreshold(0)
	buf.Reset()
	mustExec(t, db, `SELECT id FROM items`)
	if buf.Len() != 0 {
		t.Errorf("disarmed slow log still emitted: %s", buf.String())
	}

	// A fast threshold is never crossed by doing nothing slow enough to
	// matter here — but errors over the threshold are reported too.
	db.SetSlowQueryThreshold(time.Nanosecond)
	buf.Reset()
	if _, err := db.Exec(`SELECT id FROM nowhere`, nil); err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(buf.String(), "error=") {
		t.Errorf("failed slow statement not reported: %s", buf.String())
	}
}

func TestExplainAnalyzeEndToEnd(t *testing.T) {
	db := robustDB(t)
	flat := func(res *Result) string {
		var b strings.Builder
		for _, r := range res.Rows {
			b.WriteString(r[0].String())
			b.WriteString("\n")
		}
		return b.String()
	}

	// Join: actual row counts annotate every operator.
	res := mustExec(t, db, `EXPLAIN ANALYZE SELECT i.id FROM items i, orders o WHERE i.id = o.item`)
	if len(res.Columns) != 1 || res.Columns[0] != "EXPLAIN ANALYZE" {
		t.Fatalf("columns = %v", res.Columns)
	}
	text := flat(res)
	for _, want := range []string{"actual rows=", "phase times:", "STARs expanded:", "row(s) returned"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}

	// Subquery: the cache line appears.
	text = flat(mustExec(t, db,
		`EXPLAIN ANALYZE SELECT oid FROM orders WHERE n > (SELECT qty FROM items WHERE id = orders.item)`))
	if !strings.Contains(text, "subquery cache:") {
		t.Errorf("missing subquery cache line in:\n%s", text)
	}

	// Aggregate.
	text = flat(mustExec(t, db, `EXPLAIN ANALYZE SELECT tag, COUNT(*) FROM items GROUP BY tag`))
	if !strings.Contains(text, "GROUP") || !strings.Contains(text, "actual rows=2") {
		t.Errorf("aggregate plan not annotated:\n%s", text)
	}

	// DML executes for real: the UPDATE is visible afterwards.
	res = mustExec(t, db, `EXPLAIN ANALYZE UPDATE items SET qty = 1000 WHERE id = 1`)
	if res.Affected != 1 {
		t.Fatalf("EXPLAIN ANALYZE UPDATE affected = %d, want 1", res.Affected)
	}
	if !strings.Contains(flat(res), "1 row(s) affected") {
		t.Errorf("missing affected line:\n%s", flat(res))
	}
	check := mustExec(t, db, `SELECT qty FROM items WHERE id = 1`)
	if len(check.Rows) != 1 || check.Rows[0][0].String() != "1000" {
		t.Fatalf("EXPLAIN ANALYZE UPDATE did not apply: %v", check.Rows)
	}

	// Errors surface as errors, not as plans.
	db.SetLimits(Limits{MaxRows: 1})
	if _, err := db.Exec(`EXPLAIN ANALYZE SELECT i.id FROM items i, orders o, items j`, nil); err == nil {
		t.Fatal("budget error must escape EXPLAIN ANALYZE")
	}
	db.SetLimits(Limits{})
}

// TestObsServerEndToEnd scrapes a live DB's /metrics over HTTP and
// checks the exposition is well-formed and reflects executed work.
func TestObsServerEndToEnd(t *testing.T) {
	db := robustDB(t)
	mustExec(t, db, `SELECT id FROM items`)
	srv, err := db.StartObsServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `starburst_statements_total{kind="SELECT"} 1`) {
		t.Errorf("scrape missing statement counter:\n%s", body)
	}
}
