// Benchmark harness: one benchmark per experiment in DESIGN.md's
// per-experiment index. The paper (a systems-design paper) publishes no
// absolute numbers; these benchmarks regenerate the *shape* of each
// claim — which alternative wins, by roughly what factor, and where
// crossovers fall. EXPERIMENTS.md records measured results.
package starburst

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/qgm"
	"repro/internal/rewrite"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/storage/disk"
)

// benchDB builds a synthetic quotations/inventory database with the
// given sizes.
func benchDB(b *testing.B, nQuot, nInv int, opts ...Option) *DB {
	b.Helper()
	db := Open(opts...)
	mustExec(b, db, `CREATE TABLE quotations (partno INT, price FLOAT, order_qty INT, suppno INT)`)
	mustExec(b, db, `CREATE TABLE inventory (partno INT, onhand_qty INT, type STRING)`)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < nQuot; i++ {
		mustExec(b, db, fmt.Sprintf("INSERT INTO quotations VALUES (%d, %d.5, %d, %d)",
			i%nInv+1, rng.Intn(1000), rng.Intn(100), rng.Intn(10)))
	}
	types := []string{"'CPU'", "'DISK'", "'RAM'", "'NIC'"}
	for i := 1; i <= nInv; i++ {
		mustExec(b, db, fmt.Sprintf("INSERT INTO inventory VALUES (%d, %d, %s)",
			i, rng.Intn(50), types[i%4]))
	}
	mustExec(b, db, "ANALYZE quotations")
	mustExec(b, db, "ANALYZE inventory")
	return db
}

const benchPaperQuery = `SELECT partno, price, order_qty FROM quotations Q1
	WHERE Q1.partno IN
	  (SELECT partno FROM inventory Q3
	   WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')`

// ---------------------------------------------------------------------
// E1 (Figure 1): per-phase cost of query processing.

func BenchmarkFig1PhaseParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sql.Parse(benchPaperQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1PhaseTranslate(b *testing.B) {
	db := benchDB(b, 64, 16)
	stmt, _ := sql.Parse(benchPaperQuery)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qgm.TranslateStatement(db.Catalog(), stmt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1PhaseRewrite(b *testing.B) {
	db := benchDB(b, 64, 16)
	mustExec(b, db, "CREATE UNIQUE INDEX inv_pk ON inventory (partno)")
	stmt, _ := sql.Parse(benchPaperQuery)
	eng := rewrite.NewDefaultEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, _ := qgm.TranslateStatement(db.Catalog(), stmt)
		b.StartTimer()
		if _, err := eng.Rewrite(g, rewrite.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1PhaseOptimize(b *testing.B) {
	db := benchDB(b, 64, 16)
	stmt, _ := sql.Parse(benchPaperQuery)
	eng := rewrite.NewDefaultEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, _ := qgm.TranslateStatement(db.Catalog(), stmt)
		eng.Rewrite(g, rewrite.Options{})
		b.StartTimer()
		if _, err := db.Optimizer().Optimize(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1PhaseExecute(b *testing.B) {
	db := benchDB(b, 512, 64)
	stmt, err := db.Prepare(benchPaperQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1EndToEnd(b *testing.B) {
	db := benchDB(b, 512, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(benchPaperQuery, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1EndToEndTraced is Fig1EndToEnd with phase tracing armed;
// the delta against the untraced run is the tracing overhead (a Trace
// allocation plus a few clock reads per statement).
func BenchmarkFig1EndToEndTraced(b *testing.B) {
	db := benchDB(b, 512, 64)
	db.SetTracing(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(benchPaperQuery, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1EndToEndInstrumented additionally runs every operator
// under the per-operator stats decorator (armed via a slow-query
// threshold that never fires) — the full EXPLAIN ANALYZE-grade cost.
func BenchmarkFig1EndToEndInstrumented(b *testing.B) {
	db := benchDB(b, 512, 64)
	db.SetSlowQueryThreshold(time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(benchPaperQuery, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// E3 (Figure 2) / E4: the subquery-to-join + merge rewrite, and its
// execution-time effect.

func BenchmarkFig2RewritePhase(b *testing.B) {
	db := benchDB(b, 64, 16)
	mustExec(b, db, "CREATE UNIQUE INDEX inv_pk ON inventory (partno)")
	stmt, _ := sql.Parse(benchPaperQuery)
	eng := rewrite.NewDefaultEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, _ := qgm.TranslateStatement(db.Catalog(), stmt)
		b.StartTimer()
		trace, err := eng.Rewrite(g, rewrite.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(trace) < 2 {
			b.Fatalf("rules did not fire: %v", trace)
		}
	}
}

func BenchmarkSubqueryToJoin(b *testing.B) {
	run := func(b *testing.B, prep func(*DB)) {
		db := benchDB(b, 2000, 500)
		prep(db)
		stmt, err := db.Prepare(benchPaperQuery)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("rewrite=off", func(b *testing.B) {
		run(b, func(db *DB) { db.SkipRewrite = true })
	})
	b.Run("rewrite=on+uniqueindex", func(b *testing.B) {
		run(b, func(db *DB) {
			mustExec(b, db, "CREATE UNIQUE INDEX inv_pk ON inventory (partno)")
			mustExec(b, db, "ANALYZE inventory")
		})
	})
}

// ---------------------------------------------------------------------
// E6: predicate push-down (rewrite on/off execution cost).

func BenchmarkPredicatePushdown(b *testing.B) {
	q := `SELECT partno FROM
		(SELECT DISTINCT partno, price, order_qty FROM quotations) d
		WHERE d.partno = 7`
	run := func(b *testing.B, skip bool) {
		db := benchDB(b, 5000, 100)
		db.SkipRewrite = skip
		stmt, err := db.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		db.ResetIOStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("rewrite=off", func(b *testing.B) { run(b, true) })
	b.Run("rewrite=on", func(b *testing.B) { run(b, false) })
}

// ---------------------------------------------------------------------
// E7: projection push-down.

func BenchmarkProjectionPushdown(b *testing.B) {
	q := `SELECT d.partno FROM
		(SELECT partno, price, order_qty, suppno FROM quotations) d, inventory i
		WHERE d.partno = i.partno`
	run := func(b *testing.B, skip bool) {
		db := benchDB(b, 5000, 100)
		db.SkipRewrite = skip
		stmt, err := db.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("rewrite=off", func(b *testing.B) { run(b, true) })
	b.Run("rewrite=on", func(b *testing.B) { run(b, false) })
}

// ---------------------------------------------------------------------
// E8: view merging — stacked views vs the hand-inlined query.

func BenchmarkViewMerge(b *testing.B) {
	setup := func(b *testing.B) *DB {
		db := benchDB(b, 5000, 100)
		mustExec(b, db, `CREATE VIEW cheap AS SELECT partno, price, order_qty FROM quotations WHERE price < 500`)
		mustExec(b, db, `CREATE VIEW cheap_small AS SELECT partno, order_qty FROM cheap WHERE order_qty < 50`)
		return db
	}
	viewQuery := "SELECT partno FROM cheap_small WHERE partno = 3"
	inlined := `SELECT partno FROM quotations WHERE price < 500 AND order_qty < 50 AND partno = 3`
	b.Run("views+rewrite=off", func(b *testing.B) {
		db := setup(b)
		db.SkipRewrite = true
		stmt, _ := db.Prepare(viewQuery)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stmt.Run(nil)
		}
	})
	b.Run("views+rewrite=on", func(b *testing.B) {
		db := setup(b)
		stmt, _ := db.Prepare(viewQuery)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stmt.Run(nil)
		}
	})
	b.Run("hand-inlined", func(b *testing.B) {
		db := setup(b)
		stmt, _ := db.Prepare(inlined)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stmt.Run(nil)
		}
	})
}

// ---------------------------------------------------------------------
// E9: rule engine control strategies.

func BenchmarkRuleEngineStrategies(b *testing.B) {
	for _, s := range []struct {
		name string
		st   rewrite.Strategy
	}{
		{"sequential", rewrite.Sequential},
		{"priority", rewrite.Priority},
		{"statistical", rewrite.Statistical},
	} {
		b.Run(s.name, func(b *testing.B) {
			db := benchDB(b, 64, 16)
			mustExec(b, db, "CREATE UNIQUE INDEX inv_pk ON inventory (partno)")
			stmt, _ := sql.Parse(benchPaperQuery)
			eng := rewrite.NewDefaultEngine()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g, _ := qgm.TranslateStatement(db.Catalog(), stmt)
				b.StartTimer()
				if _, err := eng.Rewrite(g, rewrite.Options{Strategy: s.st, Seed: 42}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// E11: join enumerator scaling (chain queries of growing arity) and the
// bushy/Cartesian switches.

func chainQuery(n int) string {
	q := "SELECT a0.v FROM t0 a0"
	for i := 1; i < n; i++ {
		q += fmt.Sprintf(", t%d a%d", i, i)
	}
	for i := 1; i < n; i++ {
		if i == 1 {
			q += " WHERE a0.k = a1.k"
		} else {
			q += fmt.Sprintf(" AND a%d.k = a%d.k", i-1, i)
		}
	}
	return q
}

func chainDB(b *testing.B, n int) *DB {
	db := Open()
	for i := 0; i < n; i++ {
		mustExec(b, db, fmt.Sprintf("CREATE TABLE t%d (k INT, v INT)", i))
		for r := 0; r < 50; r++ {
			mustExec(b, db, fmt.Sprintf("INSERT INTO t%d VALUES (%d, %d)", i, r, r*i))
		}
		mustExec(b, db, fmt.Sprintf("ANALYZE t%d", i))
	}
	return db
}

func BenchmarkJoinEnumerator(b *testing.B) {
	for _, n := range []int{2, 4, 6, 8} {
		b.Run(fmt.Sprintf("chain-%d", n), func(b *testing.B) {
			db := chainDB(b, n)
			stmt, _ := sql.Parse(chainQuery(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g, err := qgm.TranslateStatement(db.Catalog(), stmt)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := db.Optimizer().Optimize(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("chain-6-bushy", func(b *testing.B) {
		db := chainDB(b, 6)
		db.Optimizer().AllowBushy = true
		stmt, _ := sql.Parse(chainQuery(6))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g, _ := qgm.TranslateStatement(db.Catalog(), stmt)
			b.StartTimer()
			if _, err := db.Optimizer().Optimize(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------
// E13: access path crossover — index vs scan as selectivity sweeps.

func BenchmarkAccessPathCrossover(b *testing.B) {
	const rows = 20000
	setup := func(b *testing.B, withIndex bool) *DB {
		db := Open()
		mustExec(b, db, "CREATE TABLE big (k INT, v INT)")
		for i := 0; i < rows; i++ {
			mustExec(b, db, fmt.Sprintf("INSERT INTO big VALUES (%d, %d)", i, i%97))
		}
		if withIndex {
			mustExec(b, db, "CREATE INDEX big_k ON big (k)")
		}
		mustExec(b, db, "ANALYZE big")
		return db
	}
	for _, sel := range []struct {
		name string
		hi   int
	}{
		{"sel=0.01%", 2}, {"sel=1%", rows / 100}, {"sel=50%", rows / 2},
	} {
		q := fmt.Sprintf("SELECT v FROM big WHERE k >= 0 AND k < %d", sel.hi)
		b.Run(sel.name+"/scan", func(b *testing.B) {
			db := setup(b, false)
			stmt, _ := db.Prepare(q)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stmt.Run(nil)
			}
		})
		b.Run(sel.name+"/optimizer-choice", func(b *testing.B) {
			db := setup(b, true)
			stmt, _ := db.Prepare(q)
			b.Logf("chosen plan:\n%s", stmt.Plan())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stmt.Run(nil)
			}
		})
	}
}

// ---------------------------------------------------------------------
// E14: join methods on the same equijoin (kind fixed, method varied).

func BenchmarkJoinMethods(b *testing.B) {
	const n = 3000
	q := "SELECT a.v FROM l a, r b WHERE a.k = b.k"
	setup := func(b *testing.B, drop ...string) *DB {
		db := Open()
		mustExec(b, db, "CREATE TABLE l (k INT, v INT)")
		mustExec(b, db, "CREATE TABLE r (k INT, v INT)")
		for i := 0; i < n; i++ {
			mustExec(b, db, fmt.Sprintf("INSERT INTO l VALUES (%d, %d)", i, i))
			mustExec(b, db, fmt.Sprintf("INSERT INTO r VALUES (%d, %d)", i, i))
		}
		mustExec(b, db, "ANALYZE l")
		mustExec(b, db, "ANALYZE r")
		for _, d := range drop {
			db.Optimizer().Generator().RemoveAlternative("JOIN", d)
		}
		return db
	}
	b.Run("nestedloop", func(b *testing.B) {
		db := setup(b, "HashJoin", "MergeJoin")
		stmt, _ := db.Prepare(q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stmt.Run(nil)
		}
	})
	b.Run("hash", func(b *testing.B) {
		db := setup(b, "NestedLoop", "MergeJoin")
		stmt, _ := db.Prepare(q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stmt.Run(nil)
		}
	})
	b.Run("merge", func(b *testing.B) {
		db := setup(b, "NestedLoop", "HashJoin")
		stmt, _ := db.Prepare(q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stmt.Run(nil)
		}
	})
	b.Run("optimizer-choice", func(b *testing.B) {
		db := setup(b)
		stmt, _ := db.Prepare(q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stmt.Run(nil)
		}
	})
}

// ---------------------------------------------------------------------
// E15: evaluate-on-demand subquery caching.

func BenchmarkEvaluateOnDemand(b *testing.B) {
	q := `SELECT corr FROM o WHERE EXISTS
		(SELECT 1 FROM inn WHERE inn.k = o.corr AND inn.v >= 0)`
	run := func(b *testing.B, distinctCorrs int) {
		db := Open()
		mustExec(b, db, "CREATE TABLE o (corr INT)")
		mustExec(b, db, "CREATE TABLE inn (k INT, v INT)")
		for i := 0; i < 200; i++ {
			mustExec(b, db, fmt.Sprintf("INSERT INTO o VALUES (%d)", i%distinctCorrs))
		}
		for i := 0; i < 2000; i++ {
			mustExec(b, db, fmt.Sprintf("INSERT INTO inn VALUES (%d, %d)", i%200, i))
		}
		mustExec(b, db, "ANALYZE o")
		mustExec(b, db, "ANALYZE inn")
		stmt, err := db.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("2-distinct-corr-values", func(b *testing.B) { run(b, 2) })
	b.Run("200-distinct-corr-values", func(b *testing.B) { run(b, 200) })
}

// ---------------------------------------------------------------------
// E16: the OR-of-subqueries query of section 7.

func BenchmarkORSubquery(b *testing.B) {
	db := Open()
	mustExec(b, db, "CREATE TABLE T1 (A1 INT, A2 INT)")
	mustExec(b, db, "CREATE TABLE T2 (B1 INT, B2 INT)")
	for i := 0; i < 2000; i++ {
		mustExec(b, db, fmt.Sprintf("INSERT INTO T1 VALUES (%d, %d)", i%10, i%50))
	}
	mustExec(b, db, "INSERT INTO T2 VALUES (16, 42)")
	mustExec(b, db, "ANALYZE T1")
	mustExec(b, db, "ANALYZE T2")
	stmt, err := db.Prepare(`SELECT A1 FROM T1 WHERE T1.A1 = 5 OR T1.A2 =
		(SELECT B2 FROM T2 WHERE T2.B1 = 16)`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// E20: recursion (transitive closure) across graph depths.

func BenchmarkRecursion(b *testing.B) {
	q := `WITH RECURSIVE reach (s, d) AS (
		SELECT src, dst FROM edges
		UNION SELECT r.s, e.dst FROM reach r, edges e WHERE r.d = e.src)
		SELECT COUNT(*) FROM reach`
	for _, depth := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("chain-depth-%d", depth), func(b *testing.B) {
			db := Open()
			mustExec(b, db, "CREATE TABLE edges (src INT, dst INT)")
			for i := 0; i < depth; i++ {
				mustExec(b, db, fmt.Sprintf("INSERT INTO edges VALUES (%d, %d)", i, i+1))
			}
			mustExec(b, db, "ANALYZE edges")
			stmt, err := db.Prepare(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stmt.Run(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// E21: spatial access method (R-tree window query vs table scan).

func BenchmarkSpatialAccess(b *testing.B) {
	q := "SELECT id FROM pts WHERE x >= 10 AND x <= 12 AND y >= 10 AND y <= 12"
	run := func(b *testing.B, withRtree bool) {
		db := Open()
		db.RegisterAccessMethod(storage.RTreeMethod{})
		mustExec(b, db, "CREATE TABLE pts (id INT, x FLOAT, y FLOAT)")
		n := 0
		for gx := 0; gx < 70; gx++ {
			for gy := 0; gy < 70; gy++ {
				n++
				mustExec(b, db, fmt.Sprintf("INSERT INTO pts VALUES (%d, %d.0, %d.0)", n, gx, gy))
			}
		}
		if withRtree {
			mustExec(b, db, "CREATE INDEX pts_xy ON pts (x, y) USING rtree")
		}
		mustExec(b, db, "ANALYZE pts")
		stmt, err := db.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("tablescan", func(b *testing.B) { run(b, false) })
	b.Run("rtree", func(b *testing.B) { run(b, true) })
}

// ---------------------------------------------------------------------
// E17: outer join through QGM (kind under two methods).

func BenchmarkOuterJoin(b *testing.B) {
	db := benchDB(b, 3000, 300)
	stmt, err := db.Prepare(`SELECT q.partno, i.onhand_qty FROM quotations q
		LEFT OUTER JOIN inventory i ON q.partno = i.partno`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// E5/E2 structural micro-benchmarks: QGM construction and consistency
// checking.

func BenchmarkQGMTranslateAndCheck(b *testing.B) {
	db := benchDB(b, 64, 16)
	stmt, _ := sql.Parse(benchPaperQuery)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := qgm.TranslateStatement(db.Catalog(), stmt)
		if err != nil {
			b.Fatal(err)
		}
		if err := g.Check(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// E25: magic-sets-style restriction of recursive queries — single
// source reachability with the rewrite rule on vs off.

func BenchmarkMagicRecursionRestriction(b *testing.B) {
	q := `WITH RECURSIVE reach (src, dst) AS (
		SELECT src, dst FROM edges
		UNION SELECT r.src, e.dst FROM reach r, edges e WHERE r.dst = e.src)
		SELECT COUNT(*) FROM reach WHERE src = 0`
	run := func(b *testing.B, skip bool) {
		db := Open()
		db.SkipRewrite = skip
		mustExec(b, db, "CREATE TABLE edges (src INT, dst INT)")
		// 40 disjoint chains of length 20: the full closure has
		// 40*(20*21/2) pairs, the restricted one only 210.
		for c := 0; c < 40; c++ {
			for i := 0; i < 20; i++ {
				mustExec(b, db, fmt.Sprintf("INSERT INTO edges VALUES (%d, %d)",
					c*100+i, c*100+i+1))
			}
		}
		mustExec(b, db, "ANALYZE edges")
		// src = 0 only exists in chain 0.
		stmt, err := db.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("rewrite=off(full-closure)", func(b *testing.B) { run(b, true) })
	b.Run("rewrite=on(restricted)", func(b *testing.B) { run(b, false) })
}

// ---------------------------------------------------------------------
// Ablations of the optimizer's search controls (section 6: "query-
// specific parameters to limit the search space").

// BenchmarkRankPruningAblation measures optimization time with and
// without rank pruning of higher-rank STAR alternatives.
func BenchmarkRankPruningAblation(b *testing.B) {
	run := func(b *testing.B, maxRank int) {
		db := chainDB(b, 6)
		for i := 0; i < 6; i++ {
			mustExec(b, db, fmt.Sprintf("CREATE INDEX t%d_k ON t%d (k)", i, i))
			mustExec(b, db, fmt.Sprintf("ANALYZE t%d", i))
		}
		db.Optimizer().Generator().MaxRank = maxRank
		stmt, _ := sql.Parse(chainQuery(6))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g, _ := qgm.TranslateStatement(db.Catalog(), stmt)
			b.StartTimer()
			if _, err := db.Optimizer().Optimize(g); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("all-ranks", func(b *testing.B) { run(b, 0) })
	b.Run("maxrank=1", func(b *testing.B) { run(b, 1) })
}

// BenchmarkRewriteBudgetAblation sweeps the rule engine's budget: plan
// quality (execution time) improves monotonically as the budget allows
// more of the Figure-2 rewrite sequence to fire.
func BenchmarkRewriteBudgetAblation(b *testing.B) {
	for _, budget := range []int{0, 1, 2} {
		name := fmt.Sprintf("budget=%d", budget)
		if budget == 0 {
			name = "budget=unlimited"
		}
		b.Run(name, func(b *testing.B) {
			db := benchDB(b, 2000, 500)
			mustExec(b, db, "CREATE UNIQUE INDEX inv_pk ON inventory (partno)")
			mustExec(b, db, "ANALYZE inventory")
			db.Rewrite.Budget = budget
			stmt, err := db.Prepare(benchPaperQuery)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stmt.Run(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// E29: predicate replication — deriving a constant restriction across a
// join equality can enable an index on the other side.

func BenchmarkPredicateReplication(b *testing.B) {
	q := "SELECT a.v FROM ta a, tb b WHERE a.k = b.k AND a.k = 77"
	run := func(b *testing.B, skip bool) {
		db := Open()
		db.SkipRewrite = skip
		mustExec(b, db, "CREATE TABLE ta (k INT, v INT)")
		mustExec(b, db, "CREATE TABLE tb (k INT, v INT)")
		for i := 0; i < 5000; i++ {
			mustExec(b, db, fmt.Sprintf("INSERT INTO ta VALUES (%d, %d)", i, i))
			mustExec(b, db, fmt.Sprintf("INSERT INTO tb VALUES (%d, %d)", i, i))
		}
		// Index only on tb: without replication the constant restriction
		// exists only on ta, so tb must be scanned in full.
		mustExec(b, db, "CREATE UNIQUE INDEX tb_k ON tb (k)")
		mustExec(b, db, "ANALYZE ta")
		mustExec(b, db, "ANALYZE tb")
		stmt, err := db.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("rewrite=off", func(b *testing.B) { run(b, true) })
	b.Run("rewrite=on(replicated)", func(b *testing.B) { run(b, false) })
}

// ---------------------------------------------------------------------
// PR-5: plan-cache amortization. The workload is a 6-way join chain
// over near-empty tables: join enumeration makes compilation (parse +
// translate + rewrite + optimize) dominate the cold path, while a
// cache hit skips all of it and pays only execution plus one LRU
// lookup. The bench-compare gate requires the hit path to be at least
// 5x faster than the cold path.

func planCacheBenchDB(b *testing.B, opts ...Option) (*DB, string) {
	b.Helper()
	const n = 6
	db := Open(opts...)
	for i := 0; i < n; i++ {
		mustExec(b, db, fmt.Sprintf("CREATE TABLE t%d (k INT, v INT)", i))
		for r := 0; r < 4; r++ {
			mustExec(b, db, fmt.Sprintf("INSERT INTO t%d VALUES (%d, %d)", i, r, r*i))
		}
		mustExec(b, db, fmt.Sprintf("ANALYZE t%d", i))
	}
	return db, chainQuery(n)
}

func BenchmarkPlanCacheColdCompile(b *testing.B) {
	db, q := planCacheBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanCacheHit(b *testing.B) {
	db, q := planCacheBenchDB(b, WithPlanCache(64))
	if _, err := db.Exec(q, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(q, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := db.PlanCacheStats(); s.Hits < int64(b.N) {
		b.Fatalf("hit path missed the cache: %+v", s)
	}
}

// ---------------------------------------------------------------------
// PR-7 durable storage: the disk manager's write path (WAL append +
// group fsync per statement) and scan path (buffer pool over slotted
// pages) against the same workload on the in-memory heap.

func diskBenchDB(b *testing.B) *DB {
	b.Helper()
	db := Open(withDataFS("bench", disk.NewMemFS(), disk.Options{}),
		WithDefaultStorage("DISK"))
	if err := db.OpenErr(); err != nil {
		b.Fatal(err)
	}
	return db
}

func benchInsert(b *testing.B, db *DB) {
	mustExec(b, db, `CREATE TABLE pts (id INT, v INT)`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fmt.Sprintf(`INSERT INTO pts VALUES (%d, %d)`, i, i%97)
		if _, err := db.Exec(q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchScan(b *testing.B, db *DB) {
	mustExec(b, db, `CREATE TABLE pts (id INT, v INT)`)
	for i := 0; i < 2000; i++ {
		mustExec(b, db, fmt.Sprintf(`INSERT INTO pts VALUES (%d, %d)`, i, i%97))
	}
	mustExec(b, db, `ANALYZE pts`)
	stmt, err := db.Prepare(`SELECT COUNT(*), SUM(id) FROM pts WHERE v < 50`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiskInsert(b *testing.B) { benchInsert(b, diskBenchDB(b)) }
func BenchmarkHeapInsert(b *testing.B) { benchInsert(b, Open()) }
func BenchmarkDiskScan(b *testing.B)   { benchScan(b, diskBenchDB(b)) }
func BenchmarkHeapScan(b *testing.B)   { benchScan(b, Open()) }
