package main

import (
	"go/ast"
	"go/types"
)

// obs-bypass verifies, inside internal/exec, that every named type
// implementing the package's Stream interface appears as a case in the
// operatorKind type switch — the registration point of the per-operator
// stats decorator. An operator missing from operatorKind still
// executes, but EXPLAIN ANALYZE and the slow-query log would report it
// under a raw %T name, and nothing proves its author thought about
// instrumentation.
var obsBypassAnalyzer = &analyzer{
	name: "obs-bypass",
	doc:  "every Stream implementation in internal/exec is a case in operatorKind, so instrumentation can name it",
	run:  runObsBypass,
}

func runObsBypass(p *pass) {
	if p.pkg == nil || !p.inExec() {
		return
	}
	scope := p.pkg.Scope()
	streamObj := scope.Lookup("Stream")
	if streamObj == nil {
		return
	}
	iface, ok := streamObj.Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	registered := operatorKindCases(p)
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		if !registered[name] {
			p.report(tn.Pos(),
				"type %s implements Stream but is not a case in operatorKind; register every QES operator there so the stats decorator and EXPLAIN ANALYZE can name it", name)
		}
	}
}

// operatorKindCases collects the type names switched on inside the
// package's operatorKind function.
func operatorKindCases(p *pass) map[string]bool {
	out := map[string]bool{}
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "operatorKind" || fd.Recv != nil || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				for _, e := range cc.List {
					tv, ok := p.info.Types[e]
					if !ok {
						continue
					}
					t := tv.Type
					if ptr, ok := t.(*types.Pointer); ok {
						t = ptr.Elem()
					}
					if named, ok := t.(*types.Named); ok {
						out[named.Obj().Name()] = true
					}
				}
				return true
			})
		}
	}
	return out
}
