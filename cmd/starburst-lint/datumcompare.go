package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// datum-compare flags == and != where either operand is a datum.Value.
// Value is a struct with an `any` payload, so == can panic at runtime
// on user-defined types, and it ignores SQL comparison semantics
// (NULL, INT-vs-FLOAT promotion). Code must go through datum.Compare /
// datum.Equal, which check types first. The datum package itself is
// exempt — it implements those primitives.
var datumCompareAnalyzer = &analyzer{
	name: "datum-compare",
	doc:  "no == or != on datum.Value; use datum.Compare / datum.Equal",
	run:  runDatumCompare,
}

func runDatumCompare(p *pass) {
	datumPath := p.modPath + "/internal/datum"
	if p.importPath == datumPath {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, operand := range []ast.Expr{be.X, be.Y} {
				tv, ok := p.info.Types[operand]
				if !ok {
					continue
				}
				named, ok := tv.Type.(*types.Named)
				if !ok {
					continue
				}
				obj := named.Obj()
				if obj.Name() == "Value" && obj.Pkg() != nil && obj.Pkg().Path() == datumPath {
					p.report(be.OpPos,
						"datum.Value compared with %s; use datum.Compare or datum.Equal, which check the types first", be.Op)
					break
				}
			}
			return true
		})
	}
}
