package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// loader type-checks packages on demand. Packages inside the module are
// resolved by mapping the import path onto a directory under the module
// root; everything else (the standard library) is delegated to the
// go/importer source importer. Only the standard library is involved —
// the module has no external dependencies, and the linter enforces that
// implicitly: an unknown import path simply fails to resolve.
type loader struct {
	fset    *token.FileSet
	modRoot string // absolute path of the module root
	modPath string // module path from go.mod, e.g. "repro"
	std     types.Importer
	info    *types.Info // shared across packages so identities stay consistent
	cache   map[string]*types.Package
	files   map[string][]*ast.File // parsed files per cached import path
	loading map[string]bool
}

func newLoader(modRoot, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
		},
		cache:   make(map[string]*types.Package),
		files:   make(map[string][]*ast.File),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		dir := filepath.Join(l.modRoot, filepath.FromSlash(rel))
		pkg, _, err := l.load(dir, path)
		return pkg, err
	}
	return l.std.Import(path)
}

// load returns the type-checked package for importPath, checking it at
// most once per loader. A package must never be checked twice: two
// *types.Package copies of the same path make every cross-package type
// comparison fail ("cannot use x (type T) as T").
func (l *loader) load(dir, importPath string) (*types.Package, []*ast.File, error) {
	if pkg, ok := l.cache[importPath]; ok {
		return pkg, l.files[importPath], nil
	}
	if l.loading[importPath] {
		return nil, nil, fmt.Errorf("import cycle through %q", importPath)
	}
	pkg, files, err := l.typeCheck(dir, importPath)
	if err != nil {
		return nil, nil, err
	}
	l.cache[importPath] = pkg
	l.files[importPath] = files
	return pkg, files, nil
}

// canonicalDir maps a module-internal import path to the directory it
// denotes, or "" for paths outside the module.
func (l *loader) canonicalDir(importPath string) string {
	if importPath != l.modPath && !strings.HasPrefix(importPath, l.modPath+"/") {
		return ""
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.modPath), "/")
	return filepath.Join(l.modRoot, filepath.FromSlash(rel))
}

// typeCheck parses every non-test .go file in dir and type-checks the
// package under the given import path, recording results in the shared
// Info. Comments are retained: the analyzers read starburst:locks
// annotations and //lint:ignore suppressions from them.
func (l *loader) typeCheck(dir, importPath string) (*types.Package, []*ast.File, error) {
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		mode := parser.SkipObjectResolution | parser.ParseComments
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.fset, files, l.info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return pkg, files, nil
}

// loadUnit type-checks the package in dir as importPath and returns it
// as a lint unit. importPath is a parameter (rather than derived from
// dir) so tests can lint fixture directories under a simulated path —
// several analyzers key on the import path. Packages whose importPath
// genuinely maps to dir within the module are cached and shared with
// import resolution; fixture dirs (where the mapping does not hold) are
// checked standalone so they cannot poison the cache.
func (l *loader) loadUnit(dir, importPath string) (*unit, error) {
	var pkg *types.Package
	var files []*ast.File
	var err error
	if l.canonicalDir(importPath) == dir {
		pkg, files, err = l.load(dir, importPath)
	} else {
		pkg, files, err = l.typeCheck(dir, importPath)
	}
	if err != nil {
		return nil, err
	}
	return &unit{dir: dir, importPath: importPath, pkg: pkg, files: files}, nil
}
