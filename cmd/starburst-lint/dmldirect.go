package main

import (
	"go/ast"
	"go/types"
)

// dml-direct-mutate flags calls to catalog.Catalog's Insert, Update or
// Delete inside internal/exec. DML operators must mutate through the
// undo-logged entry points (InsertLogged, UpdateLogged, DeleteLogged)
// so a mid-statement error can roll the whole statement back; a direct
// mutation silently escapes statement atomicity.
var dmlDirectAnalyzer = &analyzer{
	name: "dml-direct-mutate",
	doc:  "no direct catalog.Insert/Update/Delete in internal/exec; DML goes through the undo-logged entry points",
	run:  runDmlDirect,
}

func runDmlDirect(p *pass) {
	if !p.inExec() {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			se, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel, ok := p.info.Selections[se]
			if !ok || sel.Kind() != types.MethodVal {
				return true
			}
			m := sel.Obj()
			name := m.Name()
			if name != "Insert" && name != "Update" && name != "Delete" {
				return true
			}
			if m.Pkg() == nil || m.Pkg().Path() != p.modPath+"/internal/catalog" {
				return true
			}
			named, ok := derefNamed(sel.Recv())
			if !ok || named.Obj().Name() != "Catalog" {
				return true
			}
			p.report(call.Pos(),
				"direct catalog.%s in internal/exec bypasses statement atomicity; mutate through %sLogged with an UndoLog",
				name, name)
			return true
		})
	}
}
