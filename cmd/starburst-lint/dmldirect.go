package main

import (
	"go/ast"
	"go/types"
)

// dml-direct-mutate flags calls to catalog.Catalog's Insert, Update or
// Delete inside internal/exec. Those are the unversioned recovery and
// system paths; DML operators must mutate through the MVCC transaction
// entry points (InsertTx, UpdateTx, DeleteTx) so every write joins the
// statement's transaction — versioned for visibility, tracked for
// commit stamping, and logged for rollback. A direct mutation silently
// escapes snapshot isolation and statement atomicity.
var dmlDirectAnalyzer = &analyzer{
	name: "dml-direct-mutate",
	doc:  "no direct catalog.Insert/Update/Delete in internal/exec; DML goes through the InsertTx/UpdateTx/DeleteTx transaction entry points",
	run:  runDmlDirect,
}

func runDmlDirect(p *pass) {
	if !p.inExec() {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			se, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel, ok := p.info.Selections[se]
			if !ok || sel.Kind() != types.MethodVal {
				return true
			}
			m := sel.Obj()
			name := m.Name()
			if name != "Insert" && name != "Update" && name != "Delete" {
				return true
			}
			if m.Pkg() == nil || m.Pkg().Path() != p.modPath+"/internal/catalog" {
				return true
			}
			named, ok := derefNamed(sel.Recv())
			if !ok || named.Obj().Name() != "Catalog" {
				return true
			}
			p.report(call.Pos(),
				"direct catalog.%s in internal/exec bypasses snapshot isolation and statement atomicity; mutate through %sTx with the statement's TxnState",
				name, name)
			return true
		})
	}
}
