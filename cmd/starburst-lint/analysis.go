package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one positioned lint finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Msg)
}

// jsonDiagnostic is the -json wire form. File is module-root-relative
// so the report is stable across checkouts.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Msg      string `json:"msg"`
}

// analyzer is one named check. run inspects a single type-checked
// package (a pass) and reports positioned diagnostics through it.
type analyzer struct {
	name string // rule name, as matched by //lint:ignore
	doc  string // one-line description for -help and DESIGN.md parity
	run  func(*pass)
}

// analyzers is the registry, in documentation order. Output order does
// not depend on it — diagnostics are globally sorted by position.
var analyzers = []*analyzer{
	qgmMutationAnalyzer,
	ruleLiteralAnalyzer,
	datumCompareAnalyzer,
	execPanicAnalyzer,
	dmlDirectAnalyzer,
	obsBypassAnalyzer,
	ctxSharedAnalyzer,
	apiBypassAnalyzer,
	lockDisciplineAnalyzer,
	goroutineHygieneAnalyzer,
	errorDiscardAnalyzer,
	budgetTickAnalyzer,
	waitEventAnalyzer,
	vectorBoxingAnalyzer,
}

// unit is one type-checked package queued for analysis.
type unit struct {
	dir        string
	importPath string
	pkg        *types.Package
	files      []*ast.File
}

// pass is the per-(analyzer, package) view handed to analyzer.run.
type pass struct {
	a          *analyzer
	modPath    string
	importPath string
	fset       *token.FileSet
	info       *types.Info
	pkg        *types.Package
	files      []*ast.File
	graph      *callGraph
	diags      *[]Diagnostic
}

func (p *pass) report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.fset.Position(pos),
		Analyzer: p.a.name,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// inExec reports whether the package under analysis is internal/exec or
// a (fixture) package beneath it.
func (p *pass) inExec() bool {
	return strings.HasPrefix(p.importPath, p.modPath+"/internal/exec")
}

// runAnalyzers runs every registered analyzer over each unit, applies
// //lint:ignore suppression, and returns the surviving diagnostics
// sorted by file/line/column. graph is the module-wide call graph built
// over all units (nil disables the graph-driven analyzers).
func runAnalyzers(l *loader, units []*unit, graph *callGraph) []Diagnostic {
	var diags []Diagnostic
	var dirs []*directive
	for _, u := range units {
		for _, a := range analyzers {
			p := &pass{
				a:          a,
				modPath:    l.modPath,
				importPath: u.importPath,
				fset:       l.fset,
				info:       l.info,
				pkg:        u.pkg,
				files:      u.files,
				graph:      graph,
				diags:      &diags,
			}
			a.run(p)
		}
		ds, malformed := collectDirectives(l.fset, u.files)
		dirs = append(dirs, ds...)
		diags = append(diags, malformed...)
	}
	diags = applySuppressions(diags, dirs)
	sortDiagnostics(diags)
	return dedupe(diags)
}

// directive is one //lint:ignore comment: it suppresses findings of the
// named rules on its own line and on the line directly below it.
type directive struct {
	pos    token.Position
	rules  map[string]bool
	reason string
	used   bool
}

// collectDirectives parses every //lint:ignore comment in files. The
// grammar is
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// A directive without a reason, and (later) a directive that suppresses
// nothing, is itself a lint-directive finding: suppressions must stay
// justified and live.
func collectDirectives(fset *token.FileSet, files []*ast.File) ([]*directive, []Diagnostic) {
	var out []*directive
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "lint-directive",
						Msg: "malformed //lint:ignore: want \"//lint:ignore <rule>[,<rule>] <reason>\""})
					continue
				}
				rules := map[string]bool{}
				for _, r := range strings.Split(fields[0], ",") {
					if r != "" {
						rules[r] = true
					}
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				if reason == "" {
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "lint-directive",
						Msg: fmt.Sprintf("//lint:ignore %s has no reason; every suppression must say why", fields[0])})
					continue
				}
				out = append(out, &directive{pos: pos, rules: rules, reason: reason})
			}
		}
	}
	return out, bad
}

// applySuppressions drops diagnostics matched by a directive and turns
// unused directives into findings of their own.
func applySuppressions(diags []Diagnostic, dirs []*directive) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, dir := range dirs {
			if dir.pos.Filename != d.Pos.Filename || !dir.rules[d.Analyzer] {
				continue
			}
			if d.Pos.Line == dir.pos.Line || d.Pos.Line == dir.pos.Line+1 {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range dirs {
		if !dir.used {
			var names []string
			for r := range dir.rules {
				names = append(names, r)
			}
			sort.Strings(names)
			kept = append(kept, Diagnostic{Pos: dir.pos, Analyzer: "lint-directive",
				Msg: fmt.Sprintf("//lint:ignore %s suppresses nothing; delete stale directives", strings.Join(names, ","))})
		}
	}
	return kept
}

// sortDiagnostics orders by file, line, column, then analyzer name, so
// output (and -json golden files) is deterministic regardless of
// package walk order.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Msg < b.Msg
	})
}

// dedupe removes exact duplicates (same position, analyzer, message) —
// graph-driven analyzers can reach the same defect from several roots.
func dedupe(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	seen := map[Diagnostic]bool{}
	for _, d := range diags {
		if seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	return out
}

// encodeJSON renders diagnostics in the -json wire form, with file
// paths relative to the module root.
func encodeJSON(modRoot string, diags []Diagnostic) ([]byte, error) {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, jsonDiagnostic{
			File: file, Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Msg: d.Msg,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// funcLabel names a function for a finding message: "recv.method" or
// "func".
func funcLabel(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// derefNamed strips pointers and returns the named type beneath, if any.
func derefNamed(t types.Type) (*types.Named, bool) {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}
