package main

import (
	"go/ast"
)

// api-bypass verifies, inside the module root package, that sql.Parse
// is only called from the blessed unexported statement cores. They are
// where the concurrency contract (stmtMu), the plan cache, settings
// snapshots and the *QueryError wrapping live; a new exported method
// that parses for itself silently skips all four.
var apiBypassAnalyzer = &analyzer{
	name: "api-bypass",
	doc:  "in the root package, only (*DB).query and (*DB).prepare may call sql.Parse",
	run:  runAPIBypass,
}

// apiBypassCores are the unexported statement cores of the public API:
// the only functions in the module root package allowed to call
// sql.Parse.
var apiBypassCores = map[string]bool{
	"DB.query":   true,
	"DB.prepare": true,
}

func runAPIBypass(p *pass) {
	if p.importPath != p.modPath {
		return
	}
	sqlPath := p.modPath + "/internal/sql"
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if apiBypassCores[funcLabel(fd)] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				se, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := p.info.Uses[se.Sel]
				if obj == nil || obj.Name() != "Parse" ||
					obj.Pkg() == nil || obj.Pkg().Path() != sqlPath {
					return true
				}
				p.report(call.Pos(),
					"%s calls sql.Parse outside the context-first core; route statements through (*DB).query or (*DB).prepare so the concurrency contract, plan cache, settings snapshot and QueryError wrapping all apply",
					funcLabel(fd))
				return true
			})
		}
	}
}
