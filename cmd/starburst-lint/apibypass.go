package main

import (
	"go/ast"
)

// api-bypass verifies, inside the module root package, that the public
// surface funnels through the blessed unexported cores. sql.Parse may
// only be called from the statement cores ((*DB).query, (*DB).prepare),
// and txn.Manager.Begin — the only way to mint a transaction identity
// and snapshot — may only be called from the transaction cores
// ((*DB).beginTx, (*DB).autoTxOn). The cores are where the concurrency
// contract (MVCC snapshot plus pinned catalog generation), the plan
// cache, settings snapshots, the durable commit hook and *QueryError
// wrapping live; a new exported method that parses or begins for
// itself silently skips all of them.
var apiBypassAnalyzer = &analyzer{
	name: "api-bypass",
	doc:  "in the root package, only (*DB).query and (*DB).prepare may call sql.Parse, and only (*DB).beginTx and (*DB).autoTxOn may call txn.Manager.Begin",
	run:  runAPIBypass,
}

// apiBypassCores are the unexported statement cores of the public API:
// the only functions in the module root package allowed to call
// sql.Parse.
var apiBypassCores = map[string]bool{
	"DB.query":   true,
	"DB.prepare": true,
}

// apiBypassTxnCores are the transaction cores: the only functions in
// the module root package allowed to mint a transaction via
// txn.Manager.Begin, so every statement — implicit or explicit —
// carries a snapshot, a pinned catalog generation and the durable
// commit hook.
var apiBypassTxnCores = map[string]bool{
	"DB.beginTx":  true,
	"DB.autoTxOn": true,
}

func runAPIBypass(p *pass) {
	if p.importPath != p.modPath {
		return
	}
	sqlPath := p.modPath + "/internal/sql"
	txnPath := p.modPath + "/internal/txn"
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			label := funcLabel(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				se, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := p.info.Uses[se.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch {
				case obj.Name() == "Parse" && obj.Pkg().Path() == sqlPath:
					if apiBypassCores[label] {
						return true
					}
					p.report(call.Pos(),
						"%s calls sql.Parse outside the context-first core; route statements through (*DB).query or (*DB).prepare so the concurrency contract, plan cache, settings snapshot and QueryError wrapping all apply",
						label)
				case obj.Name() == "Begin" && obj.Pkg().Path() == txnPath:
					if apiBypassTxnCores[label] {
						return true
					}
					p.report(call.Pos(),
						"%s calls txn Manager.Begin outside the transaction core; mint transactions through (*DB).beginTx or (*DB).autoTxOn so every statement carries a snapshot, a pinned catalog generation and the durable commit hook",
						label)
				}
				return true
			})
		}
	}
}
