package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture packages live in testdata/src/<analyzer>/, one per analyzer,
// each seeding a firing case, a clean case, and a //lint:ignore
// suppression case. The first line of fixture.go declares the
// simulated import path:
//
//	//lintfixture:path repro/internal/exec/fixgo
//
// Expected diagnostics are marked in-line:
//
//	ch <- 1 // want goroutine-hygiene "unguarded channel send"
//
// The harness asserts an exact match in both directions: every
// diagnostic must hit a marker on its line (analyzer equal, quoted
// string a substring of the message), and every marker must be hit. A
// broken suppression therefore fails as an unmatched diagnostic, and a
// stale directive fails as an unexpected lint-directive finding.

var (
	fixturePathRe = regexp.MustCompile(`^//lintfixture:path (\S+)$`)
	wantMarkerRe  = regexp.MustCompile(`want ([-\w]+) "([^"]*)"`)
)

type marker struct {
	file   string
	line   int
	rule   string
	substr string
	hits   int
}

// lintFixture type-checks one fixture dir under its declared import
// path and returns the post-suppression diagnostics.
func lintFixture(t *testing.T, l *loader, dir string) []Diagnostic {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	u, err := l.loadUnit(abs, fixtureImportPath(t, abs))
	if err != nil {
		t.Fatal(err)
	}
	units := []*unit{u}
	return runAnalyzers(l, units, buildCallGraph(l, units))
}

func fixtureImportPath(t *testing.T, dir string) string {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, "fixture.go"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if sc.Scan() {
		if m := fixturePathRe.FindStringSubmatch(sc.Text()); m != nil {
			return m[1]
		}
	}
	t.Fatalf("%s: first line must be //lintfixture:path <import-path>", dir)
	return ""
}

func collectMarkers(t *testing.T, dir string) []*marker {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []*marker
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if !strings.Contains(line, "// want ") {
				continue
			}
			for _, m := range wantMarkerRe.FindAllStringSubmatch(line, -1) {
				out = append(out, &marker{file: abs, line: i + 1, rule: m[1], substr: m[2]})
			}
		}
	}
	return out
}

func TestFixtures(t *testing.T) {
	modRoot, modPath, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(modRoot, modPath)
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join("testdata", "src", e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			diags := lintFixture(t, l, dir)
			abs, err := filepath.Abs(dir)
			if err != nil {
				t.Fatal(err)
			}
			markers := collectMarkers(t, abs)
			for _, d := range diags {
				matched := false
				for _, m := range markers {
					if m.file == d.Pos.Filename && m.line == d.Pos.Line &&
						m.rule == d.Analyzer && strings.Contains(d.Msg, m.substr) {
						m.hits++
						matched = true
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, m := range markers {
				if m.hits == 0 {
					t.Errorf("%s:%d: no %s diagnostic matching %q", m.file, m.line, m.rule, m.substr)
				}
			}
		})
	}
}

// TestJSONGolden locks the -json wire format: analyzer names, field
// names, ordering, and module-root-relative paths. Refresh with
// UPDATE_LINT_GOLDEN=1 go test ./cmd/starburst-lint.
func TestJSONGolden(t *testing.T) {
	modRoot, modPath, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(modRoot, modPath)
	diags := lintFixture(t, l, filepath.Join("testdata", "src", "errordiscard"))
	got, err := encodeJSON(modRoot, diags)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "golden", "errordiscard.json")
	if os.Getenv("UPDATE_LINT_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("-json output drifted from %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestRepositoryClean runs the full suite over every module package:
// zero unsuppressed findings, and (via the lint-directive rule) zero
// unjustified or stale suppressions.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	modRoot, modPath, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := expandPattern(modRoot, "./...")
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(modRoot, modPath)
	var units []*unit
	for _, dir := range dirs {
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil {
			t.Fatal(err)
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		u, err := l.loadUnit(dir, importPath)
		if err != nil {
			t.Fatalf("%s: %v", importPath, err)
		}
		units = append(units, u)
	}
	diags := runAnalyzers(l, units, buildCallGraph(l, units))
	if len(diags) != 0 {
		var lines []string
		for _, d := range diags {
			lines = append(lines, d.String())
		}
		t.Errorf("repository must lint clean:\n%s", strings.Join(lines, "\n"))
	}
}

// TestDeterministicOutput runs the suite twice over a firing fixture
// and asserts byte-identical ordering.
func TestDeterministicOutput(t *testing.T) {
	modRoot, modPath, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		l := newLoader(modRoot, modPath)
		diags := lintFixture(t, l, filepath.Join("testdata", "src", "goroutinehygiene"))
		var sb strings.Builder
		for _, d := range diags {
			fmt.Fprintln(&sb, d)
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("output not deterministic:\nfirst:\n%s\nsecond:\n%s", a, b)
	}
	if a == "" {
		t.Error("expected the goroutinehygiene fixture to produce diagnostics")
	}
}
