package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixture drops src into a fresh temp directory and returns it.
// Fixture packages import the real module packages; the loader resolves
// those against the repository while the fixture itself is checked
// under whatever import path the test supplies.
func writeFixture(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func countCheck(findings []Finding, check string) int {
	n := 0
	for _, f := range findings {
		if f.Check == check {
			n++
		}
	}
	return n
}

func TestLint(t *testing.T) {
	modRoot, modPath, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(modRoot, modPath)

	t.Run("qgm-mutation", func(t *testing.T) {
		dir := writeFixture(t, `package x

import "repro/internal/qgm"

func Bad(g *qgm.Graph, b, src *qgm.Box) {
	b.Quants = append(b.Quants, src.Quants...) // flagged: splices the slice
	g.Boxes = nil                              // flagged: drops the registry
}

func Fine(b, src *qgm.Box) {
	b.AdoptQuants(src)     // the sanctioned way to move quantifiers
	b.Quants[0].Input = src // mutates a quantifier, not the slice
	_ = len(b.Quants)       // reads are always fine
}
`)
		findings, err := l.LintDir(dir, "repro/x")
		if err != nil {
			t.Fatal(err)
		}
		if got := countCheck(findings, "qgm-mutation"); got != 2 {
			t.Fatalf("want 2 qgm-mutation findings, got %d: %v", got, findings)
		}
		if len(findings) != 2 {
			t.Fatalf("unexpected extra findings: %v", findings)
		}
	})

	t.Run("qgm-mutation exempt inside qgm", func(t *testing.T) {
		dir := writeFixture(t, `package x

import "repro/internal/qgm"

func Internal(g *qgm.Graph) {
	g.Boxes = nil
}
`)
		findings, err := l.LintDir(dir, "repro/internal/qgm")
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != 0 {
			t.Fatalf("qgm package must be exempt, got %v", findings)
		}
	})

	t.Run("rule-literal", func(t *testing.T) {
		dir := writeFixture(t, `package x

import (
	"repro/internal/qgm"
	"repro/internal/rewrite"
)

func cond(ctx *rewrite.Context, b *qgm.Box) bool  { return false }
func act(ctx *rewrite.Context, b *qgm.Box) error  { return nil }

var good = rewrite.Rule{Name: "good", Condition: cond, Action: act}
var noAction = rewrite.Rule{Name: "noAction", Condition: cond}
var noCondition = &rewrite.Rule{Name: "noCondition", Action: act}
var nilAction = rewrite.Rule{Name: "nilAction", Condition: cond, Action: nil}
`)
		findings, err := l.LintDir(dir, "repro/x2")
		if err != nil {
			t.Fatal(err)
		}
		if got := countCheck(findings, "rule-literal"); got != 3 {
			t.Fatalf("want 3 rule-literal findings, got %d: %v", got, findings)
		}
	})

	t.Run("datum-compare", func(t *testing.T) {
		dir := writeFixture(t, `package x

import "repro/internal/datum"

func Bad(a, b datum.Value) bool  { return a == b }
func Bad2(a, b datum.Value) bool { return a != b }
func Fine(a, b datum.Value) bool { return datum.Equal(a, b) }
func Fine2(a, b datum.Value) bool { return a.Type() == b.Type() }
`)
		findings, err := l.LintDir(dir, "repro/x3")
		if err != nil {
			t.Fatal(err)
		}
		if got := countCheck(findings, "datum-compare"); got != 2 {
			t.Fatalf("want 2 datum-compare findings, got %d: %v", got, findings)
		}
	})

	t.Run("datum-compare exempt inside datum", func(t *testing.T) {
		dir := writeFixture(t, `package x

import "repro/internal/datum"

func Impl(a, b datum.Value) bool { return a == b }
`)
		findings, err := l.LintDir(dir, "repro/internal/datum")
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != 0 {
			t.Fatalf("datum package must be exempt, got %v", findings)
		}
	})

	t.Run("exec-panic", func(t *testing.T) {
		src := `package x

import "fmt"

func boom() {
	panic("malformed plan")
}

func fine() error {
	return fmt.Errorf("malformed plan")
}
`
		dir := writeFixture(t, src)
		// The same source is clean outside internal/exec...
		findings, err := l.LintDir(dir, "repro/x4")
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != 0 {
			t.Fatalf("panic outside internal/exec must not be flagged, got %v", findings)
		}
		// ...and flagged when the package claims to be an exec operator.
		dir2 := writeFixture(t, src)
		findings, err = l.LintDir(dir2, "repro/internal/exec/fixture")
		if err != nil {
			t.Fatal(err)
		}
		if got := countCheck(findings, "exec-panic"); got != 1 {
			t.Fatalf("want 1 exec-panic finding, got %d: %v", got, findings)
		}
	})

	t.Run("dml-direct-mutate", func(t *testing.T) {
		src := `package x

import (
	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/storage"
)

func bad(c *catalog.Catalog, t *catalog.Table, rid storage.RID, row datum.Row) error {
	if _, err := c.Insert(t, row); err != nil { // flagged
		return err
	}
	if err := c.Update(t, rid, row); err != nil { // flagged
		return err
	}
	return c.Delete(t, rid) // flagged
}

func fine(c *catalog.Catalog, t *catalog.Table, rid storage.RID, row datum.Row) error {
	var undo catalog.UndoLog
	if _, err := c.InsertLogged(t, row, &undo); err != nil {
		return err
	}
	if err := c.UpdateLogged(t, rid, row, &undo); err != nil {
		return err
	}
	return c.DeleteLogged(t, rid, &undo)
}

func alsoFine(t *catalog.Table, row datum.Row) {
	// Insert on a storage.Relation is not the catalog's; only the
	// catalog methods are fenced.
	t.Rel.Insert(row)
}
`
		// Clean outside internal/exec...
		dir := writeFixture(t, src)
		findings, err := l.LintDir(dir, "repro/x5")
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != 0 {
			t.Fatalf("catalog DML outside internal/exec must not be flagged, got %v", findings)
		}
		// ...flagged inside it.
		dir2 := writeFixture(t, src)
		findings, err = l.LintDir(dir2, "repro/internal/exec/fixture")
		if err != nil {
			t.Fatal(err)
		}
		if got := countCheck(findings, "dml-direct-mutate"); got != 3 {
			t.Fatalf("want 3 dml-direct-mutate findings, got %d: %v", got, findings)
		}
	})

	t.Run("obs-bypass", func(t *testing.T) {
		src := `package x

type Ctx struct{}
type Row []int

type Stream interface {
	Open(ctx *Ctx) error
	Next(ctx *Ctx) (Row, bool, error)
	Close(ctx *Ctx) error
}

type goodOp struct{}

func (*goodOp) Open(*Ctx) error              { return nil }
func (*goodOp) Next(*Ctx) (Row, bool, error) { return nil, false, nil }
func (*goodOp) Close(*Ctx) error             { return nil }

// rogueOp implements Stream but is missing from operatorKind: flagged.
type rogueOp struct{}

func (*rogueOp) Open(*Ctx) error              { return nil }
func (*rogueOp) Next(*Ctx) (Row, bool, error) { return nil, false, nil }
func (*rogueOp) Close(*Ctx) error             { return nil }

// notAStream has the wrong shape; never flagged.
type notAStream struct{}

func (*notAStream) Open(*Ctx) error { return nil }

func operatorKind(s Stream) string {
	switch s.(type) {
	case *goodOp:
		return "goodOp"
	}
	return ""
}
`
		// Outside internal/exec the check does not apply...
		dir := writeFixture(t, src)
		findings, err := l.LintDir(dir, "repro/x6")
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != 0 {
			t.Fatalf("obs-bypass outside internal/exec must not fire, got %v", findings)
		}
		// ...inside it, exactly the unregistered operator is flagged.
		dir2 := writeFixture(t, src)
		findings, err = l.LintDir(dir2, "repro/internal/exec/fixture")
		if err != nil {
			t.Fatal(err)
		}
		if got := countCheck(findings, "obs-bypass"); got != 1 {
			t.Fatalf("want 1 obs-bypass finding, got %d: %v", got, findings)
		}
		if !strings.Contains(findings[0].Msg, "rogueOp") {
			t.Fatalf("finding must name rogueOp: %v", findings[0])
		}
	})

	t.Run("obs-bypass clean when exhaustive", func(t *testing.T) {
		dir := writeFixture(t, `package x

type Ctx struct{}
type Row []int

type Stream interface {
	Open(ctx *Ctx) error
	Next(ctx *Ctx) (Row, bool, error)
	Close(ctx *Ctx) error
}

type onlyOp struct{}

func (*onlyOp) Open(*Ctx) error              { return nil }
func (*onlyOp) Next(*Ctx) (Row, bool, error) { return nil, false, nil }
func (*onlyOp) Close(*Ctx) error             { return nil }

func operatorKind(s Stream) string {
	switch s.(type) {
	case *onlyOp:
		return "onlyOp"
	}
	return ""
}
`)
		findings, err := l.LintDir(dir, "repro/internal/exec/fixture2")
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != 0 {
			t.Fatalf("exhaustive operatorKind must be clean, got %v", findings)
		}
	})

	t.Run("ctx-shared-mutation", func(t *testing.T) {
		src := `package x

type Ctx struct {
	Affected int64
	SubqHits int64
	rec      map[int]int
}

type badOp struct{}

func (o *badOp) Next(ctx *Ctx) {
	ctx.Affected++       // flagged: lost on the worker's Ctx copy
	ctx.SubqHits += 2    // flagged
	ctx.rec[1] = 1       // flagged: races through the shared map
}

type insertOp struct{}

func (o *insertOp) Next(ctx *Ctx) {
	ctx.Affected++ // allowed: DML never parallelizes
}

func rollback(ctx *Ctx) {
	ctx.Affected++ // allowed: serial-only free function
}

func (c *Ctx) reset() {
	c.Affected = 0 // allowed: Ctx's own API
}

func reads(ctx *Ctx) int64 {
	return ctx.Affected + ctx.SubqHits // reads are always fine
}
`
		// Outside internal/exec the check does not apply...
		dir := writeFixture(t, src)
		findings, err := l.LintDir(dir, "repro/x7")
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != 0 {
			t.Fatalf("ctx-shared-mutation outside internal/exec must not fire, got %v", findings)
		}
		// ...inside it, exactly the three worker-unsafe writes are flagged.
		dir2 := writeFixture(t, src)
		findings, err = l.LintDir(dir2, "repro/internal/exec/fixture3")
		if err != nil {
			t.Fatal(err)
		}
		if got := countCheck(findings, "ctx-shared-mutation"); got != 3 {
			t.Fatalf("want 3 ctx-shared-mutation findings, got %d: %v", got, findings)
		}
		if len(findings) != 3 {
			t.Fatalf("unexpected extra findings: %v", findings)
		}
	})

	t.Run("api-bypass", func(t *testing.T) {
		src := `package x

import "repro/internal/sql"

type DB struct{}

// The blessed cores may parse.
func (db *DB) query(q string) (sql.Statement, error)   { return sql.Parse(q) }
func (db *DB) prepare(q string) (sql.Statement, error) { return sql.Parse(q) }

// An exported entry point parsing for itself bypasses the core: flagged.
func (db *DB) RunDirect(q string) error {
	_, err := sql.Parse(q)
	return err
}

// So does any other helper in the root package: flagged.
func sideDoor(q string) {
	sql.Parse(q)
}
`
		// In the module root package, exactly the two bypasses are flagged...
		dir := writeFixture(t, src)
		findings, err := l.LintDir(dir, "repro")
		if err != nil {
			t.Fatal(err)
		}
		if got := countCheck(findings, "api-bypass"); got != 2 {
			t.Fatalf("want 2 api-bypass findings, got %d: %v", got, findings)
		}
		// ...outside the root package the check does not apply.
		dir2 := writeFixture(t, src)
		findings, err = l.LintDir(dir2, "repro/x8")
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != 0 {
			t.Fatalf("api-bypass outside the root package must not fire, got %v", findings)
		}
	})

	t.Run("repository is clean", func(t *testing.T) {
		if testing.Short() {
			t.Skip("type-checks the whole module")
		}
		dirs, err := expandPattern(modRoot, "./...")
		if err != nil {
			t.Fatal(err)
		}
		for _, dir := range dirs {
			rel, err := filepath.Rel(modRoot, dir)
			if err != nil {
				t.Fatal(err)
			}
			importPath := modPath
			if rel != "." {
				importPath = modPath + "/" + filepath.ToSlash(rel)
			}
			findings, err := l.LintDir(dir, importPath)
			if err != nil {
				t.Fatalf("%s: %v", importPath, err)
			}
			if len(findings) != 0 {
				var lines []string
				for _, f := range findings {
					lines = append(lines, f.String())
				}
				t.Errorf("%s:\n%s", importPath, strings.Join(lines, "\n"))
			}
		}
	})
}
