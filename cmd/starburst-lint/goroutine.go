package main

import (
	"go/ast"
	"go/types"
)

// goroutine-hygiene encodes the PR-4 exchange shutdown rules for
// internal/exec, previously prose in DESIGN.md:
//
//  1. every `go` statement must spawn a function literal whose body
//     starts joining itself — a top-level `defer wg.Done()` on a
//     sync.WaitGroup — so the spawner can wait for it;
//  2. every channel send must sit inside a `select` that also has a
//     default or receive case (done channel, context cancellation), so
//     an abandoned reader can never wedge a worker on a send.
//
// Deliberately unjoined goroutines (e.g. a closer that runs after
// wg.Wait and is therefore joined transitively) carry a //lint:ignore
// with the reason.
var goroutineHygieneAnalyzer = &analyzer{
	name: "goroutine-hygiene",
	doc:  "in internal/exec: every go statement joins via a WaitGroup, every channel send is select-guarded with a done/default case",
	run:  runGoroutineHygiene,
}

func runGoroutineHygiene(p *pass) {
	if !p.inExec() {
		return
	}
	for _, f := range p.files {
		guarded := guardedSends(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGoStmt(p, n)
			case *ast.SendStmt:
				if !guarded[n] {
					p.report(n.Arrow,
						"unguarded channel send in internal/exec; sends must sit in a select with a done/default case so an abandoned reader cannot wedge the worker")
				}
			}
			return true
		})
	}
}

// checkGoStmt requires the spawned function to be a literal opening
// with `defer wg.Done()` on a sync.WaitGroup.
func checkGoStmt(p *pass, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		p.report(g.Pos(),
			"go statement spawns a named function; spawn a literal opening with `defer wg.Done()` so the goroutine is provably joined")
		return
	}
	for _, stmt := range lit.Body.List {
		def, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		se, ok := ast.Unparen(def.Call.Fun).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		sel, ok := p.info.Selections[se]
		if !ok || sel.Kind() != types.MethodVal {
			continue
		}
		m := sel.Obj()
		if m.Name() == "Done" && m.Pkg() != nil && m.Pkg().Path() == "sync" {
			return
		}
	}
	p.report(g.Pos(),
		"goroutine is not joined: the spawned literal has no top-level `defer wg.Done()`; every exec goroutine must be waited on (or carry a //lint:ignore with the reason it terminates)")
}

// guardedSends collects the SendStmt nodes that appear as a comm clause
// of a select which also offers a way out: a default case or a receive
// case (done channel / ctx.Done).
func guardedSends(f *ast.File) map[*ast.SendStmt]bool {
	out := map[*ast.SendStmt]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		escape := false
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			switch comm := cc.Comm.(type) {
			case nil: // default:
				escape = true
			case *ast.ExprStmt, *ast.AssignStmt: // receive cases
				_ = comm
				escape = true
			}
		}
		if !escape {
			return true
		}
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					out[send] = true
				}
			}
		}
		return true
	})
	return out
}
