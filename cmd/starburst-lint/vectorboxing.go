package main

import (
	"go/ast"
	"strings"
)

// vector-boxing keeps the columnar fast path fast as new kernels land:
// inside internal/exec, a function whose name marks it as a vector
// kernel (it contains "kernel"/"Kernel") must operate on typed lanes.
// Two patterns defeat that:
//
//   - constructing datum.Value per element (datum.NewInt and friends)
//     re-boxes what the ColBatch layout just unboxed, reintroducing an
//     allocation-per-row on the hot loop;
//   - ranging directly over a lane field (.Ints/.Floats/.Strs/.Bools)
//     visits every slot in the container, silently ignoring the
//     selection vector — rows a prior filter dropped leak back in.
//
// Kernels iterate the selection (or an index loop bounded by the live
// count) and defer boxing to non-kernel result/materialize helpers.
var vectorBoxingAnalyzer = &analyzer{
	name: "vector-boxing",
	doc:  "in internal/exec: vector kernels (*kernel*-named functions) must not box per-element datum.Values or range raw column lanes past the selection vector",
	run:  runVectorBoxing,
}

// laneFields are the typed-lane fields of datum.ColVec. Fixtures may
// declare their own vector struct; the field names are the contract.
var laneFields = map[string]bool{
	"Ints":   true,
	"Floats": true,
	"Strs":   true,
	"Bools":  true,
}

// boxingCtors are the per-element datum.Value constructors.
var boxingCtors = map[string]bool{
	"NewInt":    true,
	"NewFloat":  true,
	"NewString": true,
	"NewBool":   true,
	"NewUser":   true,
}

func runVectorBoxing(p *pass) {
	if !p.inExec() {
		return
	}
	datumPath := p.modPath + "/internal/datum"
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !strings.Contains(strings.ToLower(fd.Name.Name), "kernel") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if name, ok := boxingCall(p, n, datumPath); ok {
						p.report(n.Pos(),
							"kernel %s boxes per-element values through datum.%s; keep the hot loop on typed lanes and box only in result/materialize helpers",
							fd.Name.Name, name)
					}
				case *ast.RangeStmt:
					if lane := laneSelector(n.X); lane != "" {
						p.report(n.For,
							"kernel %s ranges directly over the %s lane, bypassing the selection vector; iterate the selection (or the live count) instead",
							fd.Name.Name, lane)
					}
				}
				return true
			})
		}
	}
}

// boxingCall reports whether call is one of the datum per-element
// constructors, returning its name.
func boxingCall(p *pass, call *ast.CallExpr, datumPath string) (string, bool) {
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !boxingCtors[se.Sel.Name] {
		return "", false
	}
	obj := p.info.Uses[se.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != datumPath {
		return "", false
	}
	return se.Sel.Name, true
}

// laneSelector returns the lane field name when e is a selector for one
// of the ColVec typed lanes (x.Ints, b.Vecs[i].Floats, ...), else "".
func laneSelector(e ast.Expr) string {
	se, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || !laneFields[se.Sel.Name] {
		return ""
	}
	return se.Sel.Name
}
