package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// edge is one call-graph edge, positioned at the call (or reference)
// site in the caller.
type edge struct {
	callee *types.Func
	pos    token.Pos
}

// lockOp is one sync.Mutex/RWMutex acquisition found in a function
// body, identified by the final field name of the receiver selector
// (m.commitMu.Lock() → field "commitMu").
type lockOp struct {
	field  string
	method string // Lock, RLock, TryLock, TryRLock
	pos    token.Pos
}

// callGraph is the module-wide static call graph. Nodes are declared
// module functions; edges cover direct calls, qualified calls, method
// calls, function-value references, and — conservatively — interface
// method calls expanded to every module type implementing the
// interface. Calls through stored function fields (e.g. rewrite.Rule
// actions) are invisible to it; analyzers that walk it are documented
// as conservative on dynamic dispatch.
type callGraph struct {
	fset     *token.FileSet
	out      map[*types.Func][]edge
	decl     map[*types.Func]*ast.FuncDecl
	acquires map[*types.Func][]lockOp
	sends    map[*types.Func][]token.Pos

	modPath  string
	modTypes []*types.Named
	ifaceMem map[*types.Interface][]*types.Func // expansion cache per interface identity
}

var mutexAcquireMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}

// buildCallGraph constructs the graph over every unit plus every
// module package the loader pulled in as a dependency, so annotations
// and callees resolve across package boundaries.
func buildCallGraph(l *loader, units []*unit) *callGraph {
	g := &callGraph{
		fset:     l.fset,
		out:      make(map[*types.Func][]edge),
		decl:     make(map[*types.Func]*ast.FuncDecl),
		acquires: make(map[*types.Func][]lockOp),
		sends:    make(map[*types.Func][]token.Pos),
		modPath:  l.modPath,
		ifaceMem: make(map[*types.Interface][]*types.Func),
	}

	// Files to index: cached module dependencies first, then explicit
	// units (fixture units are not in the cache and must be indexed so
	// their functions become graph nodes).
	indexed := map[string][]*ast.File{}
	for path, files := range l.files {
		indexed[path] = files
	}
	for _, u := range units {
		indexed[u.importPath] = u.files
	}

	// All module named types, for interface expansion. The per-scope
	// order is deterministic (scope.Names sorts); cross-package order
	// does not matter because the BFS visited set deduplicates.
	collect := func(pkg *types.Package) {
		if pkg == nil {
			return
		}
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				g.modTypes = append(g.modTypes, named)
			}
		}
	}
	seenPkg := map[*types.Package]bool{}
	for _, u := range units {
		if u.pkg != nil && !seenPkg[u.pkg] {
			seenPkg[u.pkg] = true
			collect(u.pkg)
		}
	}
	for path, pkg := range l.cache {
		if g.inModulePath(path) && !seenPkg[pkg] {
			seenPkg[pkg] = true
			collect(pkg)
		}
	}

	for _, files := range indexed {
		for _, f := range files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := l.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.decl[fn] = fd
				g.indexBody(fn, fd.Body, l.info)
			}
		}
	}
	return g
}

func (g *callGraph) inModulePath(path string) bool {
	return path == g.modPath || strings.HasPrefix(path, g.modPath+"/")
}

func (g *callGraph) inModule(fn *types.Func) bool {
	return fn.Pkg() != nil && g.inModulePath(fn.Pkg().Path())
}

func (g *callGraph) addEdge(from, to *types.Func, pos token.Pos) {
	if to == nil || !g.inModule(to) {
		return
	}
	g.out[from] = append(g.out[from], edge{callee: to, pos: pos})
}

// indexBody walks one function body (FuncLit bodies are attributed to
// the enclosing declared function) and records call edges, mutex
// acquisitions, and channel-send positions.
func (g *callGraph) indexBody(fn *types.Func, body *ast.BlockStmt, info *types.Info) {
	// Identifiers that are the head of a call expression; bare function
	// references outside this set become conservative "ref" edges (the
	// function value may be invoked later).
	calleeHead := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch f := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			calleeHead[f] = true
		case *ast.SelectorExpr:
			calleeHead[f.Sel] = true
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			g.indexCall(fn, n, info)
		case *ast.SendStmt:
			g.sends[fn] = append(g.sends[fn], n.Arrow)
		case *ast.Ident:
			if calleeHead[n] {
				return true
			}
			if ref, ok := info.Uses[n].(*types.Func); ok {
				g.addEdge(fn, ref, n.Pos())
			}
		}
		return true
	})
}

// indexCall resolves one call expression into zero or more edges, and
// records mutex acquisitions.
func (g *callGraph) indexCall(fn *types.Func, call *ast.CallExpr, info *types.Info) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if callee, ok := info.Uses[f].(*types.Func); ok {
			g.addEdge(fn, callee, call.Pos())
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			if m.Pkg() != nil && m.Pkg().Path() == "sync" && mutexAcquireMethods[m.Name()] {
				g.acquires[fn] = append(g.acquires[fn], lockOp{
					field:  finalSelectorName(f.X),
					method: m.Name(),
					pos:    call.Pos(),
				})
				return
			}
			recv := sel.Recv()
			for {
				p, ok := recv.(*types.Pointer)
				if !ok {
					break
				}
				recv = p.Elem()
			}
			if iface, ok := recv.Underlying().(*types.Interface); ok {
				for _, impl := range g.implementors(iface, m) {
					g.addEdge(fn, impl, call.Pos())
				}
				return
			}
			g.addEdge(fn, m, call.Pos())
			return
		}
		// Qualified call (pkg.Fn) or method expression.
		if callee, ok := info.Uses[f.Sel].(*types.Func); ok {
			g.addEdge(fn, callee, call.Pos())
		}
	}
}

// implementors returns, for an interface method call, the matching
// concrete method on every module named type that implements the
// interface — the conservative expansion of dynamic dispatch.
func (g *callGraph) implementors(iface *types.Interface, m *types.Func) []*types.Func {
	if iface.NumMethods() == 0 {
		return nil
	}
	if cached, ok := g.ifaceMem[iface]; ok {
		return g.matchMethod(cached, m)
	}
	var methods []*types.Func
	for _, named := range g.modTypes {
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		var recv types.Type = named
		if !types.Implements(named, iface) {
			if !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			recv = types.NewPointer(named)
		}
		ms := types.NewMethodSet(recv)
		for i := 0; i < ms.Len(); i++ {
			if f, ok := ms.At(i).Obj().(*types.Func); ok {
				methods = append(methods, f)
			}
		}
	}
	g.ifaceMem[iface] = methods
	return g.matchMethod(methods, m)
}

func (g *callGraph) matchMethod(methods []*types.Func, m *types.Func) []*types.Func {
	var out []*types.Func
	for _, f := range methods {
		if f.Name() == m.Name() {
			out = append(out, f)
		}
	}
	return out
}

// finalSelectorName extracts the rightmost name of a selector chain:
// mgr.commitMu → "commitMu", c.mu → "mu", mu → "mu".
func finalSelectorName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.Ident:
		return e.Name
	}
	return ""
}

// reach runs a BFS from root and returns every reachable module
// function with the position of the first edge that led to it and the
// call path (root excluded). The traversal order is deterministic:
// edge slices are appended in AST walk order.
type reached struct {
	fn   *types.Func
	pos  token.Pos // call site of the first edge reaching fn
	path []string  // function names from root to fn, inclusive of fn
}

func (g *callGraph) reach(root *types.Func) []reached {
	visited := map[*types.Func]bool{root: true}
	var out []reached
	queue := []reached{{fn: root}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.out[cur.fn] {
			if visited[e.callee] {
				continue
			}
			visited[e.callee] = true
			path := make([]string, len(cur.path), len(cur.path)+1)
			copy(path, cur.path)
			path = append(path, e.callee.Name())
			r := reached{fn: e.callee, pos: e.pos, path: path}
			out = append(out, r)
			queue = append(queue, r)
		}
	}
	return out
}
