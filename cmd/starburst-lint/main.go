// Command starburst-lint is a project-specific static checker for the
// Starburst reproduction. It type-checks the module with go/parser and
// go/types (standard library only — no external analysis frameworks)
// and enforces invariants the Go compiler cannot express:
//
//   - qgm-mutation: Box.Quants and Graph.Boxes must not be assigned
//     directly outside internal/qgm; use the helper methods so the
//     quantifier registry and GC reachability stay consistent.
//   - rule-literal: every rewrite.Rule composite literal must supply
//     both Condition and Action.
//   - datum-compare: datum.Value must not be compared with == or !=;
//     use datum.Compare / datum.Equal, which check types first.
//   - exec-panic: no naked panic in internal/exec — operators return
//     errors through the Stream.
//   - dml-direct-mutate: no direct catalog.Insert / Update / Delete in
//     internal/exec — DML mutates through the undo-logged entry points
//     (InsertLogged, UpdateLogged, DeleteLogged) so statements stay
//     atomic under mid-statement errors.
//   - obs-bypass: every type in internal/exec implementing Stream must
//     be a case in operatorKind, the registration point of the
//     per-operator stats decorator, so EXPLAIN ANALYZE and the
//     slow-query log can name it.
//   - ctx-shared-mutation: only the serial-only operator set (DML,
//     subqueries, recursion — subtrees the optimizer never
//     parallelizes) may write non-atomic statement-wide Ctx fields;
//     operators reachable from an exchange must go through the atomic
//     shared record, since workers run on Ctx copies.
//   - api-bypass: in the root package, only the unexported statement
//     cores ((*DB).query, (*DB).prepare) may call sql.Parse; every
//     public entry point must route through them so the concurrency
//     contract, the plan cache, the settings snapshot and QueryError
//     wrapping all apply.
//
// Usage:
//
//	starburst-lint [packages]
//
// Package patterns are directories relative to the module root, with
// ./... expanding to every package in the module. With no arguments,
// ./... is assumed. Exit status is 1 if any finding is reported.
package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "starburst-lint:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	modRoot, modPath, err := findModule(".")
	if err != nil {
		return err
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	for _, arg := range args {
		expanded, err := expandPattern(modRoot, arg)
		if err != nil {
			return err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	l := newLoader(modRoot, modPath)
	var total int
	for _, dir := range dirs {
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		findings, err := l.LintDir(dir, importPath)
		if err != nil {
			return err
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		total += len(findings)
	}
	if total > 0 {
		os.Exit(1)
	}
	return nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(abs, "go.mod")
		if _, err := os.Stat(gomod); err == nil {
			path, err := modulePath(gomod)
			if err != nil {
				return "", "", err
			}
			return abs, path, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}

func modulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// expandPattern turns a package pattern into the list of directories
// that contain at least one non-test Go file. Patterns ending in /...
// walk recursively; others name a single directory.
func expandPattern(modRoot, pat string) ([]string, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "" || pat == "." {
			pat = "."
		}
	}
	base := pat
	if !filepath.IsAbs(base) {
		base = filepath.Join(modRoot, pat)
	}
	if !recursive {
		ok, err := hasGoFiles(base)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("no Go files in %s", pat)
		}
		return []string{base}, nil
	}
	var dirs []string
	err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(p)
		if err != nil {
			return err
		}
		if ok {
			dirs = append(dirs, p)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true, nil
		}
	}
	return false, nil
}
