// Command starburst-lint is a project-specific static checker for the
// Starburst reproduction: a small analyzer framework built on
// go/parser and go/types (standard library only — no external analysis
// frameworks), with a module-wide static call graph, that enforces
// invariants the Go compiler cannot express. Each analyzer is a named
// rule producing positioned diagnostics:
//
//   - qgm-mutation: Box.Quants and Graph.Boxes must not be assigned
//     directly outside internal/qgm; use the helper methods so the
//     quantifier registry and GC reachability stay consistent.
//   - rule-literal: every rewrite.Rule composite literal must supply
//     both Condition and Action.
//   - datum-compare: datum.Value must not be compared with == or !=;
//     use datum.Compare / datum.Equal, which check types first.
//   - exec-panic: no naked panic in internal/exec — operators return
//     errors through the Stream.
//   - dml-direct-mutate: no direct catalog.Insert / Update / Delete in
//     internal/exec — DML mutates through the InsertTx / UpdateTx /
//     DeleteTx transaction entry points.
//   - obs-bypass: every type in internal/exec implementing Stream must
//     be a case in operatorKind, so instrumentation can name it.
//   - ctx-shared-mutation: only the serial-only operator set may write
//     non-atomic statement-wide Ctx fields.
//   - api-bypass: in the root package, only the unexported statement
//     cores ((*DB).query, (*DB).prepare) may call sql.Parse, and only
//     the transaction cores ((*DB).beginTx, (*DB).autoTxOn) may mint
//     transactions via txn.Manager.Begin.
//   - lock-discipline: call-graph enforcement of the starburst:locks
//     annotations — no write-annotated callee reachable from a read
//     context, no nested re-acquisition of the annotated lock, no
//     channel send while it is held, and no MVCC snapshot capture
//     (starburst:snapshot-capture) under the commit mutex.
//   - goroutine-hygiene: every go statement in internal/exec joins via
//     a WaitGroup, every channel send is select-guarded.
//   - error-discard: no silently dropped errors from the leak-prone
//     set (Close, IterErr, transaction Rollback) in internal/..., none
//     from the durability set (Sync, Flush, os.File Close) anywhere in
//     the module, and every storage-iterator consumer consults
//     storage.IterErr.
//   - budget-tick: every row-producing loop in internal/exec and
//     internal/storage calls Ctx.tick/tickRows/countRow.
//   - wait-event: starburst:waits-annotated blocking sites must call
//     a wait recorder and reference each declared event's constant.
//   - vector-boxing: vector kernels (*kernel*-named functions in
//     internal/exec) must not box per-element datum.Values and must
//     not range raw column lanes past the selection vector.
//
// Findings can be suppressed with a justified directive on the same
// line or the line above:
//
//	//lint:ignore <rule>[,<rule>] <reason>
//
// A directive without a reason, or one that suppresses nothing, is
// itself reported (rule lint-directive).
//
// Usage:
//
//	starburst-lint [-json] [packages]
//
// Package patterns are directories relative to the module root, with
// ./... expanding to every package in the module. With no arguments,
// ./... is assumed. Output is sorted by file/line/column; -json emits
// the same diagnostics as a JSON array with module-root-relative
// paths. Exit status is 1 if any finding survives suppression.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starburst-lint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out *os.File) (int, error) {
	fs := flag.NewFlagSet("starburst-lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modRoot, modPath, err := findModule(".")
	if err != nil {
		return 0, err
	}
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		expanded, err := expandPattern(modRoot, pat)
		if err != nil {
			return 0, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}

	l := newLoader(modRoot, modPath)
	var units []*unit
	for _, dir := range dirs {
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil {
			return 0, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		u, err := l.loadUnit(dir, importPath)
		if err != nil {
			return 0, err
		}
		units = append(units, u)
	}

	graph := buildCallGraph(l, units)
	diags := runAnalyzers(l, units, graph)

	if *jsonOut {
		b, err := encodeJSON(modRoot, diags)
		if err != nil {
			return 0, err
		}
		fmt.Fprintln(out, string(b))
	} else {
		for _, d := range diags {
			rel := d
			if r, err := filepath.Rel(modRoot, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
				rel.Pos.Filename = filepath.ToSlash(r)
			}
			fmt.Fprintln(out, rel)
		}
	}
	if len(diags) > 0 {
		return 1, nil
	}
	return 0, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(abs, "go.mod")
		if _, err := os.Stat(gomod); err == nil {
			path, err := modulePath(gomod)
			if err != nil {
				return "", "", err
			}
			return abs, path, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// expandPattern turns a package pattern into the list of directories
// that contain at least one non-test Go file. Patterns ending in /...
// walk recursively; others name a single directory.
func expandPattern(modRoot, pat string) ([]string, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "" || pat == "." {
			pat = "."
		}
	}
	base := pat
	if !filepath.IsAbs(base) {
		base = filepath.Join(modRoot, pat)
	}
	if !recursive {
		ok, err := hasGoFiles(base)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("no Go files in %s", pat)
		}
		return []string{base}, nil
	}
	var dirs []string
	err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(p)
		if err != nil {
			return err
		}
		if ok {
			dirs = append(dirs, p)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true, nil
		}
	}
	return false, nil
}
