package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// error-discard targets the leak-prone error set: the exact bug class
// PR 2 fixed by hand, widened to durability errors now that a disk
// store exists. Three rules:
//
//  1. in internal/...: no silently dropped error return from Close,
//     IterErr, or transaction Rollback — an ExprStmt/defer/go call
//     whose error result vanishes, or a blank assignment
//     `_ = x.Close()`;
//  2. module-wide: no silently dropped error return from Sync, Flush,
//     or (*os.File).Close — a dropped flush/sync error is silent data
//     loss, the OS's last chance to report a failed write;
//  3. in internal/...: a function that advances a storage iterator
//     (RowIterator.Next, EntryIterator.Next, BatchScanner.NextRows)
//     must consult storage.IterErr — iterator errors surface only
//     there, so a loop that never asks silently treats a faulted scan
//     as clean EOF.
//
// internal/storage itself is exempt from rule 3: it implements the
// iterators and their fault decorators.
var errorDiscardAnalyzer = &analyzer{
	name: "error-discard",
	doc:  "no dropped errors from Close/IterErr/Rollback (internal) or Sync/Flush/os.File Close (module-wide), and every storage-iterator consumer consults storage.IterErr",
	// (Rollback here is the MVCC transaction rollback on
	// catalog.TxnState; the rule is name-based so any future
	// rollback-shaped API is fenced too.)
	run: runErrorDiscard,
}

var leakProneNames = map[string]bool{"Close": true, "IterErr": true, "Rollback": true}

func runErrorDiscard(p *pass) {
	inInternal := strings.HasPrefix(p.importPath, p.modPath+"/internal/")
	storagePath := p.modPath + "/internal/storage"
	checkIter := inInternal && p.importPath != storagePath && !strings.HasPrefix(p.importPath, storagePath+"/")

	for _, f := range p.files {
		// Rules 1 and 2: discarded results.
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			case *ast.AssignStmt:
				if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
					if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
						call, _ = n.Rhs[0].(*ast.CallExpr)
					}
				}
			}
			if call == nil {
				return true
			}
			if inInternal {
				if name, ok := leakProneResult(p, call); ok {
					p.report(call.Pos(),
						"%s returns an error that is silently discarded; the leak-prone set (Close, IterErr, transaction Rollback) must be propagated — join it with the primary error if one is already in flight",
						name)
					return true
				}
			}
			if name, ok := durabilityResult(p, call); ok {
				p.report(call.Pos(),
					"%s returns an error that is silently discarded; durability errors (Sync, Flush, os.File Close) are the OS's last chance to report a failed write and must be propagated",
					name)
			}
			return true
		})

		// Rule 3: iterator consumers must consult storage.IterErr.
		if !checkIter {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var firstAdvance ast.Node
			seesIterErr := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if firstAdvance == nil && advancesStorageIterator(p, n, storagePath) {
						firstAdvance = n
					}
				case *ast.Ident:
					if obj, ok := p.info.Uses[n].(*types.Func); ok &&
						obj.Name() == "IterErr" && obj.Pkg() != nil && obj.Pkg().Path() == storagePath {
						seesIterErr = true
					}
				}
				return true
			})
			if firstAdvance != nil && !seesIterErr {
				p.report(firstAdvance.Pos(),
					"%s advances a storage iterator but never consults storage.IterErr; a faulted scan would read as a clean EOF — check IterErr at exhaustion and join it with the primary error",
					funcLabel(fd))
			}
		}
	}
}

// leakProneResult reports whether call invokes a leak-prone function
// (by name) that returns an error.
func leakProneResult(p *pass, call *ast.CallExpr) (string, bool) {
	var obj types.Object
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.info.Uses[f]
	case *ast.SelectorExpr:
		obj = p.info.Uses[f.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || !leakProneNames[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			return fn.Name(), true
		}
	}
	return "", false
}

// durabilityResult reports whether call invokes a durability-critical
// function that returns an error: any Sync or Flush, or Close on an
// *os.File specifically (generic Close stays an internal/-only rule —
// module-wide it would drown tests in read-only noise, but a file
// handle's Close is where buffered write errors surface).
func durabilityResult(p *pass, call *ast.CallExpr) (string, bool) {
	var obj types.Object
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.info.Uses[f]
	case *ast.SelectorExpr:
		obj = p.info.Uses[f.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	switch fn.Name() {
	case "Sync", "Flush":
	case "Close":
		if !isOSFileMethod(fn) {
			return "", false
		}
	default:
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			return fn.Name(), true
		}
	}
	return "", false
}

// isOSFileMethod reports whether fn is a method with receiver os.File
// or *os.File.
func isOSFileMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}

// advancesStorageIterator reports whether call is a Next/NextRows
// method call resolved to the storage package's iterator interfaces.
func advancesStorageIterator(p *pass, call *ast.CallExpr, storagePath string) bool {
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	sel, ok := p.info.Selections[se]
	if !ok || sel.Kind() != types.MethodVal {
		return false
	}
	m := sel.Obj()
	if m.Name() != "Next" && m.Name() != "NextRows" {
		return false
	}
	return m.Pkg() != nil && m.Pkg().Path() == storagePath
}
