package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// error-discard targets the leak-prone error set in internal/...: the
// exact bug class PR 2 fixed by hand. Two rules:
//
//  1. no silently dropped error return from Close, IterErr, or
//     undo-log Rollback — an ExprStmt/defer/go call whose error result
//     vanishes, or a blank assignment `_ = x.Close()`;
//  2. a function that advances a storage iterator (RowIterator.Next,
//     EntryIterator.Next, BatchScanner.NextRows) must consult
//     storage.IterErr — iterator errors surface only there, so a loop
//     that never asks silently treats a faulted scan as clean EOF.
//
// internal/storage itself is exempt from rule 2: it implements the
// iterators and their fault decorators.
var errorDiscardAnalyzer = &analyzer{
	name: "error-discard",
	doc:  "in internal/...: no dropped errors from Close/IterErr/Rollback, and every storage-iterator consumer consults storage.IterErr",
	run:  runErrorDiscard,
}

var leakProneNames = map[string]bool{"Close": true, "IterErr": true, "Rollback": true}

func runErrorDiscard(p *pass) {
	if !strings.HasPrefix(p.importPath, p.modPath+"/internal/") {
		return
	}
	storagePath := p.modPath + "/internal/storage"
	checkIter := p.importPath != storagePath && !strings.HasPrefix(p.importPath, storagePath+"/")

	for _, f := range p.files {
		// Rule 1: discarded results.
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			case *ast.AssignStmt:
				if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
					if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
						call, _ = n.Rhs[0].(*ast.CallExpr)
					}
				}
			}
			if call == nil {
				return true
			}
			if name, ok := leakProneResult(p, call); ok {
				p.report(call.Pos(),
					"%s returns an error that is silently discarded; the leak-prone set (Close, IterErr, undo-log Rollback) must be propagated — join it with the primary error if one is already in flight",
					name)
			}
			return true
		})

		// Rule 2: iterator consumers must consult storage.IterErr.
		if !checkIter {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var firstAdvance ast.Node
			seesIterErr := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if firstAdvance == nil && advancesStorageIterator(p, n, storagePath) {
						firstAdvance = n
					}
				case *ast.Ident:
					if obj, ok := p.info.Uses[n].(*types.Func); ok &&
						obj.Name() == "IterErr" && obj.Pkg() != nil && obj.Pkg().Path() == storagePath {
						seesIterErr = true
					}
				}
				return true
			})
			if firstAdvance != nil && !seesIterErr {
				p.report(firstAdvance.Pos(),
					"%s advances a storage iterator but never consults storage.IterErr; a faulted scan would read as a clean EOF — check IterErr at exhaustion and join it with the primary error",
					funcLabel(fd))
			}
		}
	}
}

// leakProneResult reports whether call invokes a leak-prone function
// (by name) that returns an error.
func leakProneResult(p *pass, call *ast.CallExpr) (string, bool) {
	var obj types.Object
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.info.Uses[f]
	case *ast.SelectorExpr:
		obj = p.info.Uses[f.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || !leakProneNames[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			return fn.Name(), true
		}
	}
	return "", false
}

// advancesStorageIterator reports whether call is a Next/NextRows
// method call resolved to the storage package's iterator interfaces.
func advancesStorageIterator(p *pass, call *ast.CallExpr, storagePath string) bool {
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	sel, ok := p.info.Selections[se]
	if !ok || sel.Kind() != types.MethodVal {
		return false
	}
	m := sel.Obj()
	if m.Name() != "Next" && m.Name() != "NextRows" {
		return false
	}
	return m.Pkg() != nil && m.Pkg().Path() == storagePath
}
