package main

import (
	"go/ast"
	"go/types"
)

// ctx-shared-mutation verifies, inside internal/exec, that only the
// serial-only operator set writes non-atomic statement-wide Ctx
// fields. Any Stream that an exchange can clone into concurrent
// workers must instead go through the atomic shared record (Ctx.sh) —
// a plain counter bump from a worker would race or vanish with the
// worker's Ctx copy.
var ctxSharedAnalyzer = &analyzer{
	name: "ctx-shared-mutation",
	doc:  "only the serial-only operator set writes non-atomic statement-wide Ctx fields; parallel operators use the atomic shared record",
	run:  runCtxShared,
}

// ctxSharedFields are the exec.Ctx fields that hold plain (non-atomic)
// statement-wide mutable state. Exchange workers run on a *copy* of
// the Ctx (Ctx.child), so a worker-side write to one of these fields
// is either lost (value fields on the copy) or a data race (reference
// fields like the rec map shared through the copy).
var ctxSharedFields = map[string]bool{
	"Affected":   true,
	"SubqHits":   true,
	"SubqMisses": true,
	"Rollbacks":  true,
	"corr":       true,
	"rec":        true,
}

// ctxSerialReceivers are the operator types allowed to write those
// fields: the serial-only set. The optimizer's exchange-insertion pass
// refuses to parallelize subtrees containing DML, subqueries or
// recursion, so methods on these types provably run on the root
// statement goroutine. Ctx's own methods are its API and are exempt.
var ctxSerialReceivers = map[string]bool{
	"Ctx":            true,
	"subplanRunner":  true,
	"recUnionOp":     true,
	"recRefOp":       true,
	"insertOp":       true,
	"updateDeleteOp": true,
}

// ctxSerialFuncs are free functions with the same license (the DML
// rollback path, reached only from the serial DML operators).
var ctxSerialFuncs = map[string]bool{
	"rollback": true,
}

func runCtxShared(p *pass) {
	if !p.inExec() {
		return
	}
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if ctxWriteAllowed(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var lhss []ast.Expr
				switch n := n.(type) {
				case *ast.AssignStmt:
					lhss = n.Lhs
				case *ast.IncDecStmt:
					lhss = []ast.Expr{n.X}
				default:
					return true
				}
				for _, lhs := range lhss {
					// An index write (ctx.rec[k] = ...) mutates the shared
					// map just as surely as reassigning the field.
					if ix, ok := lhs.(*ast.IndexExpr); ok {
						lhs = ix.X
					}
					if name, ok := ctxFieldWrite(p, lhs); ok {
						p.report(lhs.Pos(),
							"%s writes Ctx.%s, which is not worker-safe; operators reachable from an exchange must use the atomic shared record (tick/countRow/signalDone), and serial-only writers belong on the lint allowlist",
							funcLabel(fd), name)
					}
				}
				return true
			})
		}
	}
}

// ctxWriteAllowed reports whether fd is on the serial-only allowlist.
func ctxWriteAllowed(fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return ctxSerialFuncs[fd.Name.Name]
	}
	if len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && ctxSerialReceivers[id.Name]
}

// ctxFieldWrite reports whether lhs selects a shared mutable field of
// the exec Ctx, returning the field name.
func ctxFieldWrite(p *pass, lhs ast.Expr) (string, bool) {
	se, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	sel, ok := p.info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return "", false
	}
	field := sel.Obj()
	if !ctxSharedFields[field.Name()] {
		return "", false
	}
	named, ok := derefNamed(sel.Recv())
	if !ok || named.Obj().Name() != "Ctx" {
		return "", false
	}
	// The real Ctx lives in internal/exec; fixture packages declare
	// their own Ctx, which the import-path gate has already scoped.
	return field.Name(), true
}
