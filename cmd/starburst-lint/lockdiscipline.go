package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// lock-discipline is annotation-driven: a function whose doc comment
// carries
//
//	// starburst:locks <path>.<field>:read|write
//
// declares "this function runs with that lock held in that mode" —
// e.g. the durable commit hook called by txn.Manager.Commit under
// commitMu. write mode doubles as a requirement: reaching a :write
// function from a :read root means write-guarded state is mutated
// under a read lock. A second annotation marks MVCC snapshot-capture
// points:
//
//	// starburst:snapshot-capture <path>.<field>
//
// declares "this function captures a snapshot against the watermark
// that <lock> guards, and must never run while <lock> is held" — the
// watermark only exposes fully stamped transactions once the commit
// mutex is released, so a snapshot taken inside the commit path can
// order against a half-published commit. Four rules, each walked over
// the call graph from every annotated root:
//
//  1. a :read root must not reach a :write-annotated function,
//  2. no reachable function may re-acquire the named lock (the classic
//     RLock-under-Lock self-deadlock),
//  3. no channel send may execute while the lock is held — restricted
//     to functions in the root's own package, since cross-package
//     worker sends are goroutine-hygiene's territory,
//  4. no reachable function may be a snapshot-capture point for the
//     held lock.
var lockDisciplineAnalyzer = &analyzer{
	name: "lock-discipline",
	doc:  "call-graph enforcement of starburst:locks annotations: no write-annotated callee from a read context, no nested re-acquisition, no send while holding the lock, no snapshot capture under the commit mutex",
	run:  runLockDiscipline,
}

// lockAnno is one parsed starburst:locks annotation.
type lockAnno struct {
	lock  string // as written, e.g. "mgr.commitMu"
	field string // final component, e.g. "commitMu"
	write bool
}

var (
	lockAnnoStart = regexp.MustCompile(`^//\s*starburst:locks\b`)
	lockAnnoRe    = regexp.MustCompile(`^//\s*starburst:locks\s+(\S+):(read|write)\s*$`)
	snapAnnoStart = regexp.MustCompile(`^//\s*starburst:snapshot-capture\b`)
	snapAnnoRe    = regexp.MustCompile(`^//\s*starburst:snapshot-capture\s+(\S+)\s*$`)
)

// lockAnnotations parses the starburst:locks annotations in a doc
// comment, reporting malformed ones through p.
func lockAnnotations(p *pass, fd *ast.FuncDecl) []lockAnno {
	if fd.Doc == nil {
		return nil
	}
	var out []lockAnno
	for _, c := range fd.Doc.List {
		if !lockAnnoStart.MatchString(c.Text) {
			continue
		}
		m := lockAnnoRe.FindStringSubmatch(c.Text)
		if m == nil {
			p.report(c.Pos(), "malformed starburst:locks annotation %q; want \"// starburst:locks <path>.<field>:read|write\"", c.Text)
			continue
		}
		lock := m[1]
		field := lock
		if i := strings.LastIndex(lock, "."); i >= 0 {
			field = lock[i+1:]
		}
		out = append(out, lockAnno{lock: lock, field: field, write: m[2] == "write"})
	}
	return out
}

// snapshotCaptures parses the starburst:snapshot-capture annotations
// in a doc comment (lock path only; the write flag is unused).
func snapshotCaptures(fd *ast.FuncDecl) []lockAnno {
	if fd == nil || fd.Doc == nil {
		return nil
	}
	var out []lockAnno
	for _, c := range fd.Doc.List {
		m := snapAnnoRe.FindStringSubmatch(c.Text)
		if m == nil {
			continue
		}
		lock := m[1]
		field := lock
		if i := strings.LastIndex(lock, "."); i >= 0 {
			field = lock[i+1:]
		}
		out = append(out, lockAnno{lock: lock, field: field})
	}
	return out
}

func runLockDiscipline(p *pass) {
	if p.graph == nil {
		return
	}
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if snapAnnoStart.MatchString(c.Text) && !snapAnnoRe.MatchString(c.Text) {
						p.report(c.Pos(), "malformed starburst:snapshot-capture annotation %q; want \"// starburst:snapshot-capture <path>.<field>\"", c.Text)
					}
				}
			}
			annos := lockAnnotations(p, fd)
			if len(annos) == 0 {
				continue
			}
			root, ok := p.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			for _, anno := range annos {
				checkLockRoot(p, root, fd, anno)
			}
		}
	}
}

// checkLockRoot applies the four lock rules to everything reachable
// from one annotated root (the root itself included for rules 2–4).
func checkLockRoot(p *pass, root *types.Func, rootDecl *ast.FuncDecl, anno lockAnno) {
	mode := "read"
	if anno.write {
		mode = "write"
	}
	rootName := funcLabel(rootDecl)

	check := func(fn *types.Func, pos token.Pos, path []string) {
		g := p.graph
		for _, sa := range snapshotCaptures(g.decl[fn]) {
			if sa.field == anno.field {
				p.report(pos,
					"%s captures a fresh MVCC snapshot while %s is held in %s mode by %s%s; the watermark only exposes fully stamped commits once the lock is released, so capture snapshots before entering the commit path",
					fn.Name(), anno.lock, mode, rootName, viaPath(path))
			}
		}
		for _, op := range g.acquires[fn] {
			if op.field != anno.field {
				continue
			}
			p.report(op.pos,
				"%s re-acquires %s (%s), but %s is already held in %s mode by %s%s; nested acquisition of the statement lock self-deadlocks",
				fn.Name(), op.method, anno.lock, anno.lock, mode, rootName, viaPath(path))
		}
		if fn.Pkg() == root.Pkg() {
			for _, pos := range g.sends[fn] {
				p.report(pos,
					"channel send in %s while %s is held in %s mode by %s%s; a blocked send would hold the statement lock indefinitely",
					fn.Name(), anno.lock, mode, rootName, viaPath(path))
			}
		}
	}

	check(root, rootDecl.Pos(), nil)
	for _, r := range p.graph.reach(root) {
		if !anno.write {
			if callee := p.graph.decl[r.fn]; callee != nil {
				for _, ca := range lockAnnotationsQuiet(callee) {
					if ca.field == anno.field && ca.write {
						p.report(r.pos,
							"%s runs under %s in read mode but reaches %s%s, which is annotated %s:write; write-guarded state must not be mutated from a read-lock context",
							rootName, anno.lock, r.fn.Name(), viaPath(r.path[:len(r.path)-1]), anno.lock)
					}
				}
			}
		}
		check(r.fn, r.pos, r.path)
	}
}

// lockAnnotationsQuiet parses annotations without reporting malformed
// ones (the declaring package's own pass reports those).
func lockAnnotationsQuiet(fd *ast.FuncDecl) []lockAnno {
	if fd.Doc == nil {
		return nil
	}
	var out []lockAnno
	for _, c := range fd.Doc.List {
		m := lockAnnoRe.FindStringSubmatch(c.Text)
		if m == nil {
			continue
		}
		lock := m[1]
		field := lock
		if i := strings.LastIndex(lock, "."); i >= 0 {
			field = lock[i+1:]
		}
		out = append(out, lockAnno{lock: lock, field: field, write: m[2] == "write"})
	}
	return out
}

func viaPath(path []string) string {
	if len(path) == 0 {
		return ""
	}
	return " (via " + strings.Join(path, " → ") + ")"
}
