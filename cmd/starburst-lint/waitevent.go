package main

import (
	"go/ast"
	"regexp"
	"sort"
	"strings"
)

// wait-event is annotation-driven: a function whose doc comment carries
//
//	// starburst:waits <EVENT> [<EVENT> ...]
//
// declares "this function is a blocking site that records the named
// wait events" (see internal/obs/wait.go). The rule keeps those
// annotations truthful:
//
//  1. every event name must be a known wait-event class;
//  2. the annotated function's body (closures included) must contain at
//     least one wait-recorder call (Record / RecordWait / recordWait);
//  3. for each declared event, the body must reference that event's
//     obs constant (e.g. EXCHANGE ⇒ WaitExchange), so an annotation
//     cannot drift away from what the site actually records.
var waitEventAnalyzer = &analyzer{
	name: "wait-event",
	doc:  "starburst:waits-annotated blocking sites must call a wait recorder and reference each declared event's constant",
	run:  runWaitEvent,
}

// waitEventConsts maps annotation event names to the obs constant a
// recording call references; mirrors internal/obs waitEventNames.
var waitEventConsts = map[string]string{
	"WAL_APPEND":   "WaitWALAppend",
	"WAL_SYNC":     "WaitWALSync",
	"BUFPOOL_LOAD": "WaitBufPoolLoad",
	"BUFPOOL_WAIT": "WaitBufPoolWait",
	"STMT_LOCK":    "WaitStmtLock",
	"EXCHANGE":     "WaitExchange",
	"CANCEL_STALL": "WaitCancelStall",
}

var (
	waitAnnoStart = regexp.MustCompile(`^//\s*starburst:waits\b`)
	waitAnnoRe    = regexp.MustCompile(`^//\s*starburst:waits\s+([A-Z][A-Z0-9_]*(?:\s+[A-Z][A-Z0-9_]*)*)\s*$`)
)

func knownWaitEvents() string {
	names := make([]string, 0, len(waitEventConsts))
	for n := range waitEventConsts {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}

func runWaitEvent(p *pass) {
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			var events []string
			for _, c := range fd.Doc.List {
				if !waitAnnoStart.MatchString(c.Text) {
					continue
				}
				m := waitAnnoRe.FindStringSubmatch(c.Text)
				if m == nil {
					p.report(c.Pos(), "malformed starburst:waits annotation %q; want \"// starburst:waits <EVENT> [<EVENT> ...]\"", c.Text)
					continue
				}
				for _, ev := range strings.Fields(m[1]) {
					if _, known := waitEventConsts[ev]; !known {
						p.report(fd.Pos(), "%s declares unknown wait event %s; known events: %s", funcLabel(fd), ev, knownWaitEvents())
						continue
					}
					events = append(events, ev)
				}
			}
			if len(events) == 0 || fd.Body == nil {
				continue
			}
			recorders, idents := scanWaitBody(fd.Body)
			if recorders == 0 {
				p.report(fd.Pos(), "%s is annotated starburst:waits %s but records no wait event (no Record/RecordWait/recordWait call in its body)",
					funcLabel(fd), strings.Join(events, " "))
				continue
			}
			for _, ev := range events {
				if !idents[waitEventConsts[ev]] {
					p.report(fd.Pos(), "%s declares wait event %s but never references %s; the annotation and the recorded event must agree",
						funcLabel(fd), ev, waitEventConsts[ev])
				}
			}
		}
	}
}

// scanWaitBody walks a function body (function literals included, since
// blocking sites often record inside a worker or flush closure) and
// returns the number of wait-recorder calls plus the set of identifier
// names referenced anywhere in the body.
func scanWaitBody(body *ast.BlockStmt) (recorders int, idents map[string]bool) {
	idents = map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			idents[x.Name] = true
		case *ast.CallExpr:
			name := ""
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			switch name {
			case "Record", "RecordWait", "recordWait":
				recorders++
			}
		}
		return true
	})
	return recorders, idents
}
