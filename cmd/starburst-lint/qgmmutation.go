package main

import (
	"go/ast"
	"go/types"
)

// qgm-mutation flags assignments whose left-hand side is the Quants
// field of a qgm.Box or the Boxes field of a qgm.Graph, outside the
// qgm package itself. These slices encode graph structure; splicing
// them by hand bypasses the invariants the helper methods maintain
// (quantifier registration, GC reachability). Assignments *through*
// the slice (q.Quants[i].Input = ...) mutate a quantifier, not the
// slice, and are fine.
var qgmMutationAnalyzer = &analyzer{
	name: "qgm-mutation",
	doc:  "no direct assignment to qgm.Box.Quants or qgm.Graph.Boxes outside internal/qgm",
	run:  runQgmMutation,
}

func runQgmMutation(p *pass) {
	qgmPath := p.modPath + "/internal/qgm"
	if p.importPath == qgmPath {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				se, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				sel, ok := p.info.Selections[se]
				if !ok || sel.Kind() != types.FieldVal {
					continue
				}
				field := sel.Obj()
				if field.Pkg() == nil || field.Pkg().Path() != qgmPath {
					continue
				}
				name := field.Name()
				if name != "Quants" && name != "Boxes" {
					continue
				}
				owner := "qgm value"
				if named, ok := derefNamed(sel.Recv()); ok {
					owner = "qgm." + named.Obj().Name()
				}
				p.report(se.Pos(),
					"direct assignment to %s.%s outside internal/qgm; use the qgm helpers (AdoptQuants, NewQuant, RemoveQuant, NewBox, GC) so graph invariants hold",
					owner, name)
			}
			return true
		})
	}
}
