package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// budget-tick keeps the MaxRows/Timeout budgets enforceable as new
// operators land: inside internal/exec and internal/storage, every
// row-producing loop — a for/range whose body advances a storage
// iterator — must call Ctx.tick or Ctx.countRow, the amortized budget
// checkpoints. Interior operators that only pull from other Streams
// are exempt by construction (budgets are charged at the leaves and at
// materialization boundaries, per DESIGN.md).
var budgetTickAnalyzer = &analyzer{
	name: "budget-tick",
	doc:  "in internal/exec and internal/storage: every loop advancing a storage iterator calls Ctx.tick/countRow so row and time budgets stay enforced",
	run:  runBudgetTick,
}

func runBudgetTick(p *pass) {
	execPath := p.modPath + "/internal/exec"
	storagePath := p.modPath + "/internal/storage"
	if !strings.HasPrefix(p.importPath, execPath) && !strings.HasPrefix(p.importPath, storagePath) {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var pos token.Pos
			switch n := n.(type) {
			case *ast.ForStmt:
				body, pos = n.Body, n.For
			case *ast.RangeStmt:
				body, pos = n.Body, n.For
			default:
				return true
			}
			advances := false
			ticks := false
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if advancesStorageIterator(p, call, storagePath) {
					advances = true
				}
				if isTickCall(p, call) {
					ticks = true
				}
				return true
			})
			if advances && !ticks {
				p.report(pos,
					"row-producing loop advances a storage iterator without calling Ctx.tick or Ctx.countRow; MaxRows/Timeout budgets are unenforced inside it")
			}
			return true
		})
	}
}

// isTickCall matches method calls named tick, tickRows, or countRow —
// the budget checkpoints on exec.Ctx (fixtures may declare their own
// Ctx; the name is the contract). tickRows is the batch-amortized
// form: one call charges a whole batch of rows.
func isTickCall(p *pass, call *ast.CallExpr) bool {
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	sel, ok := p.info.Selections[se]
	if !ok || sel.Kind() != types.MethodVal {
		return false
	}
	name := sel.Obj().Name()
	return name == "tick" || name == "tickRows" || name == "countRow"
}
