//lintfixture:path repro

// Package fixapi seeds api-bypass violations: sql.Parse called outside
// the blessed statement cores, and txn.Manager.Begin called outside
// the transaction cores, under the simulated root import path.
package fixapi

import (
	"repro/internal/sql"
	"repro/internal/txn"
)

type DB struct{ mgr *txn.Manager }

// The blessed statement cores may parse.
func (db *DB) query(q string) (sql.Statement, error)   { return sql.Parse(q) }
func (db *DB) prepare(q string) (sql.Statement, error) { return sql.Parse(q) }

// The blessed transaction cores may mint transactions.
func (db *DB) beginTx() *txn.Txn  { return db.mgr.Begin(false) }
func (db *DB) autoTxOn() *txn.Txn { return db.mgr.Begin(true) }

// An exported entry point parsing for itself bypasses the core.
func (db *DB) RunDirect(q string) error {
	_, err := sql.Parse(q) // want api-bypass "DB.RunDirect calls sql.Parse outside the context-first core"
	return err
}

// So does any other helper in the root package.
func sideDoor(q string) {
	sql.Parse(q) // want api-bypass "sideDoor calls sql.Parse outside the context-first core"
}

// Minting a transaction outside the transaction cores skips the
// snapshot and durability plumbing.
func (db *DB) SideBegin() *txn.Txn {
	return db.mgr.Begin(false) // want api-bypass "DB.SideBegin calls txn Manager.Begin outside the transaction core"
}

func suppressedDoor(q string) {
	//lint:ignore api-bypass fixture: demonstrates a justified suppression
	_, _ = sql.Parse(q)
}

func suppressedBegin(db *DB) {
	//lint:ignore api-bypass fixture: demonstrates a justified suppression
	db.mgr.Begin(true)
}
