//lintfixture:path repro

// Package fixapi seeds api-bypass violations: sql.Parse called outside
// the blessed statement cores, under the simulated root import path.
package fixapi

import "repro/internal/sql"

type DB struct{}

// The blessed cores may parse.
func (db *DB) query(q string) (sql.Statement, error)   { return sql.Parse(q) }
func (db *DB) prepare(q string) (sql.Statement, error) { return sql.Parse(q) }

// An exported entry point parsing for itself bypasses the core.
func (db *DB) RunDirect(q string) error {
	_, err := sql.Parse(q) // want api-bypass "DB.RunDirect calls sql.Parse outside the context-first core"
	return err
}

// So does any other helper in the root package.
func sideDoor(q string) {
	sql.Parse(q) // want api-bypass "sideDoor calls sql.Parse outside the context-first core"
}

func suppressedDoor(q string) {
	//lint:ignore api-bypass fixture: demonstrates a justified suppression
	_, _ = sql.Parse(q)
}
