//lintfixture:path repro/fixfs

// Package fixfs seeds the module-wide half of error-discard: dropped
// durability errors (Sync, Flush, os.File Close) outside internal/...,
// where the internal-only leak-prone rule does not reach.
package fixfs

import (
	"bufio"
	"errors"
	"io"
	"os"
)

func firingFileSync(f *os.File) {
	f.Sync() // want error-discard "Sync returns an error that is silently discarded"
}

func firingFileClose(f *os.File) {
	_ = f.Close() // want error-discard "Close returns an error that is silently discarded"
}

func firingDeferClose(f *os.File) {
	defer f.Close() // want error-discard "Close returns an error that is silently discarded"
}

func firingFlush(w *bufio.Writer) {
	w.Flush() // want error-discard "Flush returns an error that is silently discarded"
}

type syncer interface {
	Sync() error
}

func firingInterfaceSync(s syncer) {
	_ = s.Sync() // want error-discard "Sync returns an error that is silently discarded"
}

func cleanPropagate(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func cleanJoin(f *os.File, primary error) error {
	return errors.Join(primary, f.Close())
}

// cleanGenericClose: Close on a non-os.File receiver is out of scope
// outside internal/... — only the durable trio is module-wide.
func cleanGenericClose(c io.Closer) {
	c.Close()
}

// cleanNoError: Flush without an error result (e.g. a stats flusher)
// is not durability-critical.
type counterFlusher struct{}

func (counterFlusher) Flush() {}

func cleanNoError(c counterFlusher) {
	c.Flush()
}

func suppressedSync(f *os.File) {
	//lint:ignore error-discard fixture: demonstrates a justified suppression
	f.Sync()
}
