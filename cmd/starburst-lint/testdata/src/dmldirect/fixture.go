//lintfixture:path repro/internal/exec/fixdml

// Package fixdml seeds dml-direct-mutate violations: unversioned
// catalog mutation under the simulated internal/exec import path.
package fixdml

import (
	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/storage"
)

func firing(c *catalog.Catalog, t *catalog.Table, rid storage.RID, row datum.Row) error {
	if _, err := c.Insert(t, row); err != nil { // want dml-direct-mutate "direct catalog.Insert"
		return err
	}
	if err := c.Update(t, rid, row); err != nil { // want dml-direct-mutate "direct catalog.Update"
		return err
	}
	return c.Delete(t, rid) // want dml-direct-mutate "direct catalog.Delete"
}

func clean(c *catalog.Catalog, t *catalog.Table, rid storage.RID, row datum.Row, ts *catalog.TxnState) error {
	if _, err := c.InsertTx(t, row, ts); err != nil {
		return err
	}
	if err := c.UpdateTx(t, rid, row, ts); err != nil {
		return err
	}
	return c.DeleteTx(t, rid, ts)
}

func alsoClean(t *catalog.Table, row datum.Row) {
	// Insert on a storage.Relation is not the catalog's; only the
	// catalog methods are fenced.
	_, _ = t.Rel.Insert(row)
}

func suppressed(c *catalog.Catalog, t *catalog.Table, rid storage.RID) error {
	//lint:ignore dml-direct-mutate fixture: demonstrates a justified suppression
	return c.Delete(t, rid)
}
