//lintfixture:path repro/internal/storage/waitfix

// Package waitfix proves the PR-8 wait-event contract is machine
// checked: a starburst:waits-annotated blocking site must call a wait
// recorder and reference each declared event's constant, so the
// annotations the profiler documentation relies on cannot silently
// drift from what the code records.
package waitfix

// profile mirrors obs.WaitProfile: the fixture only needs a Record
// method and event constants shaped like the real ones.
type profile struct{}

func (profile) Record(e int, nanos int64) {}

const (
	WaitExchange    = 0
	WaitWALSync     = 1
	WaitCancelStall = 2
)

// syncLog pretends to fsync the log and records the stall: annotation
// and recording agree, so the rule stays silent.
//
// starburst:waits WAL_SYNC
func syncLog(p profile) {
	p.Record(WaitWALSync, 1)
}

// inClosure records from a flush closure, like the exchange producers
// do; the lexical body scan must see through function literals.
//
// starburst:waits EXCHANGE
func inClosure(p profile) {
	flush := func() { p.Record(WaitExchange, 1) }
	flush()
}

// forgets claims to be a blocking site but never records anything.
//
// starburst:waits EXCHANGE
func forgets(p profile) int { // want wait-event "records no wait event"
	return 1
}

// mislabeled records CANCEL_STALL while its annotation says EXCHANGE.
//
// starburst:waits EXCHANGE
func mislabeled(p profile) { // want wait-event "never references WaitExchange"
	p.Record(WaitCancelStall, 1)
}

// bogus names an event class that does not exist.
//
// starburst:waits NOT_AN_EVENT
func bogus(p profile) { // want wait-event "unknown wait event NOT_AN_EVENT"
	p.Record(WaitExchange, 1)
}

// lower uses a lowercase event name, which the strict grammar rejects.
//
// starburst:waits exchange // want wait-event "malformed starburst:waits"
func lower(p profile) {
	p.Record(WaitExchange, 1)
}

// legacy is a grandfathered stub: the suppression keeps the build green
// while documenting the debt.
//
// starburst:waits WAL_SYNC
//
//lint:ignore wait-event fixture demonstrates suppressing a grandfathered site
func legacy() {}
