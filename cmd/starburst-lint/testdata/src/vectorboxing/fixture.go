//lintfixture:path repro/internal/exec/fixvec

// Package fixvec seeds vector-boxing violations under the simulated
// internal/exec import path: kernel-named functions that re-box values
// per element or iterate raw column lanes past the selection vector.
package fixvec

import "repro/internal/datum"

// vec mirrors datum.ColVec's typed-lane surface; the analyzer matches
// the lane field names.
type vec struct {
	Ints   []int64
	Floats []float64
}

func boxingKernel(v vec, sel []int, out []datum.Value) {
	for _, i := range sel {
		out[i] = datum.NewInt(v.Ints[i]) // want vector-boxing "boxes per-element values through datum.NewInt"
	}
}

func rangeLaneKernel(v vec, keep []bool) {
	for i := range v.Ints { // want vector-boxing "ranges directly over the Ints lane"
		keep[i] = true
	}
}

func cleanKernel(v vec, n int, sel []int) int64 {
	// The two sanctioned loop shapes: range the selection, or index up
	// to the live count.
	acc := int64(0)
	if sel != nil {
		for _, i := range sel {
			acc += v.Ints[i]
		}
		return acc
	}
	for i := 0; i < n; i++ {
		acc += v.Ints[i]
	}
	return acc
}

func materializeRows(v vec, sel []int) []datum.Value {
	// Not kernel-named: boundary helpers box by design.
	out := make([]datum.Value, 0, len(sel))
	for _, i := range sel {
		out = append(out, datum.NewFloat(v.Floats[i]))
	}
	return out
}

func suppressedKernel(v vec) int64 {
	acc := int64(0)
	//lint:ignore vector-boxing fixture: demonstrates a justified suppression
	for _, x := range v.Ints {
		acc += x
	}
	return acc
}
