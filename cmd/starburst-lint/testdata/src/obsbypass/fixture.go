//lintfixture:path repro/internal/exec/fixobs

// Package fixobs seeds an obs-bypass violation: a Stream
// implementation missing from operatorKind.
package fixobs

type Ctx struct{}
type Row []int

type Stream interface {
	Open(ctx *Ctx) error
	Next(ctx *Ctx) (Row, bool, error)
	Close(ctx *Ctx) error
}

type goodOp struct{}

func (*goodOp) Open(*Ctx) error              { return nil }
func (*goodOp) Next(*Ctx) (Row, bool, error) { return nil, false, nil }
func (*goodOp) Close(*Ctx) error             { return nil }

type rogueOp struct{} // want obs-bypass "rogueOp implements Stream but is not a case in operatorKind"

func (*rogueOp) Open(*Ctx) error              { return nil }
func (*rogueOp) Next(*Ctx) (Row, bool, error) { return nil, false, nil }
func (*rogueOp) Close(*Ctx) error             { return nil }

//lint:ignore obs-bypass fixture: demonstrates a justified suppression
type quietOp struct{}

func (*quietOp) Open(*Ctx) error              { return nil }
func (*quietOp) Next(*Ctx) (Row, bool, error) { return nil, false, nil }
func (*quietOp) Close(*Ctx) error             { return nil }

// notAStream has the wrong shape; never flagged.
type notAStream struct{}

func (*notAStream) Open(*Ctx) error { return nil }

func operatorKind(s Stream) string {
	switch s.(type) {
	case *goodOp:
		return "goodOp"
	}
	return ""
}
