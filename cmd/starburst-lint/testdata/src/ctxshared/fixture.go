//lintfixture:path repro/internal/exec/fixctx

// Package fixctx seeds ctx-shared-mutation violations: worker-unsafe
// writes to statement-wide Ctx fields from a non-allowlisted operator.
package fixctx

type Ctx struct {
	Affected   int64
	SubqHits   int64
	SubqMisses int64
	rec        map[int]int
}

type badOp struct{}

func (o *badOp) Next(ctx *Ctx) {
	ctx.Affected++    // want ctx-shared-mutation "writes Ctx.Affected"
	ctx.SubqHits += 2 // want ctx-shared-mutation "writes Ctx.SubqHits"
	ctx.rec[1] = 1    // want ctx-shared-mutation "writes Ctx.rec"
}

func (o *badOp) Other(ctx *Ctx) {
	//lint:ignore ctx-shared-mutation fixture: demonstrates a justified suppression
	ctx.SubqMisses++
}

type insertOp struct{}

func (o *insertOp) Next(ctx *Ctx) {
	ctx.Affected++ // allowed: DML never parallelizes
}

func rollback(ctx *Ctx) {
	ctx.Affected++ // allowed: serial-only free function
}

func (c *Ctx) reset() {
	c.Affected = 0 // allowed: Ctx's own API
}

func reads(ctx *Ctx) int64 {
	return ctx.Affected + ctx.SubqHits // reads are always fine
}
