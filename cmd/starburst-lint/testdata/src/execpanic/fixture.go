//lintfixture:path repro/internal/exec/fixpanic

// Package fixpanic seeds an exec-panic violation: a naked panic under
// the simulated internal/exec import path.
package fixpanic

import "fmt"

func firing() {
	panic("malformed plan") // want exec-panic "naked panic in internal/exec"
}

func clean() error {
	return fmt.Errorf("malformed plan")
}

func suppressed() {
	//lint:ignore exec-panic fixture: demonstrates a justified suppression
	panic("unreachable by construction")
}
