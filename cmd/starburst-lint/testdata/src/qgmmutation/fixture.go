//lintfixture:path repro/fixqgm

// Package fixqgm seeds qgm-mutation violations: direct writes to the
// QGM structural slices outside internal/qgm.
package fixqgm

import "repro/internal/qgm"

func firing(g *qgm.Graph, b, src *qgm.Box) {
	b.Quants = append(b.Quants, src.Quants...) // want qgm-mutation "direct assignment to qgm.Box.Quants"
	g.Boxes = nil                              // want qgm-mutation "direct assignment to qgm.Graph.Boxes"
}

func clean(b, src *qgm.Box) {
	b.AdoptQuants(src)      // the sanctioned way to move quantifiers
	b.Quants[0].Input = src // mutates a quantifier, not the slice
	_ = len(b.Quants)       // reads are always fine
}

func suppressed(g *qgm.Graph) {
	//lint:ignore qgm-mutation fixture: demonstrates a justified suppression
	g.Boxes = nil
}
