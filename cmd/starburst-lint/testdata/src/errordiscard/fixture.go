//lintfixture:path repro/internal/fixerr

// Package fixerr seeds error-discard violations: silently dropped
// errors from the leak-prone set (Close, IterErr, transaction
// Rollback) and storage-iterator consumers that never consult
// storage.IterErr.
package fixerr

import (
	"errors"

	"repro/internal/catalog"
	"repro/internal/storage"
)

type resource struct{}

func (resource) Close() error { return nil }

func firingExpr(r resource) {
	r.Close() // want error-discard "silently discarded"
}

func firingBlank(r resource) {
	_ = r.Close() // want error-discard "silently discarded"
}

func firingDefer(r resource) {
	defer r.Close() // want error-discard "silently discarded"
}

func cleanReturn(r resource) error {
	return r.Close()
}

func cleanJoin(r resource, primary error) error {
	return errors.Join(primary, r.Close())
}

func suppressedClose(r resource) {
	//lint:ignore error-discard fixture: demonstrates a justified suppression
	r.Close()
}

func firingRollback(c *catalog.Catalog, ts *catalog.TxnState) {
	_ = ts.Rollback(c) // want error-discard "silently discarded"
}

func cleanRollback(c *catalog.Catalog, ts *catalog.TxnState) error {
	return ts.Rollback(c)
}

func firingIter(rel storage.Relation) int64 {
	n := int64(0)
	it := rel.Scan()
	defer it.Close()
	for {
		_, _, ok := it.Next() // want error-discard "never consults storage.IterErr"
		if !ok {
			break
		}
		n++
	}
	return n
}

func cleanIter(rel storage.Relation) (int64, error) {
	n := int64(0)
	it := rel.Scan()
	defer it.Close()
	for {
		_, _, ok := it.Next()
		if !ok {
			if err := storage.IterErr(it); err != nil {
				return n, err
			}
			break
		}
		n++
	}
	return n, nil
}
