//lintfixture:path repro/fixdatum

// Package fixdatum seeds datum-compare violations: == / != on
// datum.Value.
package fixdatum

import "repro/internal/datum"

func firing(a, b datum.Value) bool  { return a == b } // want datum-compare "use datum.Compare or datum.Equal"
func firing2(a, b datum.Value) bool { return a != b } // want datum-compare "compared with !="

func clean(a, b datum.Value) bool  { return datum.Equal(a, b) }
func clean2(a, b datum.Value) bool { return a.Type() == b.Type() }

func suppressed(a, b datum.Value) bool {
	//lint:ignore datum-compare fixture: demonstrates a justified suppression
	return a == b
}
