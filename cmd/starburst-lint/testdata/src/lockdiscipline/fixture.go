//lintfixture:path repro/fixlock

// Package fixlock proves the MVCC-era lock contract is machine
// checked: code annotated as running under the commit mutex must not
// re-acquire it, block on a channel send, or capture a fresh MVCC
// snapshot; and an admin-latch read context must not reach
// write-annotated code.
package fixlock

import "sync"

// Manager mirrors the txn manager: commitMu serializes the commit
// protocol and the watermark publish.
type Manager struct {
	commitMu  sync.Mutex
	watermark int64
}

// Begin captures a snapshot at the current watermark. The watermark
// only exposes fully stamped commits once commitMu is released, so
// Begin must never run under the commit mutex.
//
// starburst:snapshot-capture mgr.commitMu
func (m *Manager) Begin() int64 { return m.watermark }

// DB mirrors the root package: the admin latch plus the txn manager.
type DB struct {
	adminMu sync.RWMutex
	mgr     *Manager
	tables  map[string]int
}

// commitLocked runs the commit protocol with commitMu already held,
// like the durable commit hook.
//
// starburst:locks mgr.commitMu:write
func (db *DB) commitLocked() {
	db.stamp()
	db.reacquire()
	ch := make(chan int)
	ch <- 1            // want lock-discipline "channel send"
	_ = db.mgr.Begin() // want lock-discipline "captures a fresh MVCC snapshot"
}

func (db *DB) stamp() { db.tables["t"] = 1 }

func (db *DB) reacquire() {
	db.mgr.commitMu.Lock() // want lock-discipline "re-acquires Lock"
	defer db.mgr.commitMu.Unlock()
}

// queryShared runs with the admin latch shared, like every statement.
//
// starburst:locks db.adminMu:read
func (db *DB) queryShared() {
	db.lookup()
	db.attachFaults() // want lock-discipline "annotated db.adminMu:write"
}

// attachFaults restructures live engine state in place and so requires
// the latch exclusively.
//
// starburst:locks db.adminMu:write
func (db *DB) attachFaults() { db.tables["t"] = 0 }

func (db *DB) lookup() { _ = db.tables["t"] }

// ddl runs exclusively; reaching the exclusive-mode mutator is fine.
//
// starburst:locks db.adminMu:write
func (db *DB) ddl() { db.attachFaults() }

// commitQuiet holds the commit mutex across a send that provably
// cannot block; the suppression records why.
//
// starburst:locks mgr.commitMu:write
func (db *DB) commitQuiet() {
	ch := make(chan int, 1)
	//lint:ignore lock-discipline fixture: buffered send into an empty channel cannot block; demonstrates a justified suppression
	ch <- 1
}
