//lintfixture:path repro/fixlock

// Package fixlock proves the PR-5 statement-lock contract is machine
// checked: a read-lock context must not reach catalog-mutating
// (write-annotated) code, re-acquire the statement lock, or hold it
// across a channel send.
package fixlock

import "sync"

// DB mirrors the root package: one RWMutex guarding catalog state.
type DB struct {
	stmtMu sync.RWMutex
	tables map[string]int
}

// queryLocked runs with the read lock held, like the statement core.
//
// starburst:locks db.stmtMu:read
func (db *DB) queryLocked() {
	db.lookup()
	db.createTable() // want lock-discipline "annotated db.stmtMu:write"
	db.reacquire()
	ch := make(chan int)
	ch <- 1 // want lock-discipline "channel send"
}

// createTable mutates catalog state and so requires the write lock.
//
// starburst:locks db.stmtMu:write
func (db *DB) createTable() { db.tables["t"] = 1 }

func (db *DB) lookup() { _ = db.tables["t"] }

func (db *DB) reacquire() {
	db.stmtMu.RLock() // want lock-discipline "re-acquires RLock"
	defer db.stmtMu.RUnlock()
}

// ddl runs exclusively; reaching the catalog mutator is fine.
//
// starburst:locks db.stmtMu:write
func (db *DB) ddl() { db.createTable() }

// queryQuiet holds the read lock across a send that provably cannot
// block; the suppression records why.
//
// starburst:locks db.stmtMu:read
func (db *DB) queryQuiet() {
	ch := make(chan int, 1)
	//lint:ignore lock-discipline fixture: buffered send into an empty channel cannot block; demonstrates a justified suppression
	ch <- 1
}
