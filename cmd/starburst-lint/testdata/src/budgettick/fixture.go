//lintfixture:path repro/internal/exec/fixtick

// Package fixtick seeds budget-tick violations under the simulated
// internal/exec import path: row-producing loops over storage
// iterators that never touch the execution budget.
package fixtick

import "repro/internal/storage"

// Ctx mirrors exec.Ctx's budget surface; the analyzer matches the
// tick/countRow method names.
type Ctx struct{}

func (c *Ctx) tick() error          { return nil }
func (c *Ctx) tickRows(n int) error { return nil }
func (c *Ctx) countRow() error      { return nil }

func firing(ctx *Ctx, rel storage.Relation) (int64, error) {
	n := int64(0)
	it := rel.Scan()
	defer it.Close()
	for { // want budget-tick "without calling Ctx.tick or Ctx.countRow"
		_, _, ok := it.Next()
		if !ok {
			break
		}
		n++
	}
	return n, storage.IterErr(it)
}

func clean(ctx *Ctx, rel storage.Relation) (int64, error) {
	n := int64(0)
	it := rel.Scan()
	defer it.Close()
	for {
		_, _, ok := it.Next()
		if !ok {
			break
		}
		if err := ctx.tick(); err != nil {
			return n, err
		}
		n++
	}
	return n, storage.IterErr(it)
}

func cleanBatched(ctx *Ctx, rel storage.Relation) (int64, error) {
	// The batch-amortized checkpoint: one tickRows call charges the
	// whole refill.
	n := int64(0)
	it := rel.Scan()
	defer it.Close()
	for {
		_, _, ok := it.Next()
		if !ok {
			break
		}
		if err := ctx.tickRows(1); err != nil {
			return n, err
		}
		n++
	}
	return n, storage.IterErr(it)
}

func cleanInterior(next func() (bool, error)) error {
	// Loops that pull from another operator (not a storage iterator)
	// are exempt: budgets are charged at the leaves.
	for {
		ok, err := next()
		if err != nil || !ok {
			return err
		}
	}
}

func suppressed(ctx *Ctx, rel storage.Relation) (int64, error) {
	n := int64(0)
	it := rel.Scan()
	defer it.Close()
	//lint:ignore budget-tick fixture: demonstrates a justified suppression
	for {
		_, _, ok := it.Next()
		if !ok {
			break
		}
		n++
	}
	return n, storage.IterErr(it)
}
