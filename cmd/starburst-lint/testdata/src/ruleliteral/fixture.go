//lintfixture:path repro/fixrule

// Package fixrule seeds rule-literal violations: rewrite.Rule literals
// missing Condition or Action.
package fixrule

import (
	"repro/internal/qgm"
	"repro/internal/rewrite"
)

func cond(ctx *rewrite.Context, b *qgm.Box) bool { return false }
func act(ctx *rewrite.Context, b *qgm.Box) error { return nil }

var good = rewrite.Rule{Name: "good", Condition: cond, Action: act}

var noAction = rewrite.Rule{Name: "noAction", Condition: cond} // want rule-literal "missing Action"

var noCondition = &rewrite.Rule{Name: "noCondition", Action: act} // want rule-literal "missing Condition"

var nilAction = rewrite.Rule{Name: "nilAction", Condition: cond, Action: nil} // want rule-literal "sets Action to nil"

//lint:ignore rule-literal fixture: demonstrates a justified suppression
var suppressed = rewrite.Rule{Name: "suppressed", Condition: cond}
