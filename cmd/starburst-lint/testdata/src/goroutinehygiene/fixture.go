//lintfixture:path repro/internal/exec/fixgo

// Package fixgo seeds goroutine-hygiene violations under the simulated
// internal/exec import path: unjoined goroutines and unguarded sends.
package fixgo

import "sync"

func joined(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func unjoined(work func()) {
	go func() { // want goroutine-hygiene "goroutine is not joined"
		work()
	}()
}

func named(work func()) {
	go work() // want goroutine-hygiene "spawns a named function"
}

func suppressedSpawn(work func()) {
	//lint:ignore goroutine-hygiene fixture: demonstrates a justified suppression
	go work()
}

func guardedSends(ch chan int, done chan struct{}) {
	select {
	case ch <- 1:
	case <-done:
	}
	select {
	case ch <- 2:
	default:
	}
}

func nakedSend(ch chan int) {
	ch <- 1 // want goroutine-hygiene "unguarded channel send"
}

func sendOnlySelect(a, b chan int) {
	select {
	case a <- 1: // want goroutine-hygiene "unguarded channel send"
	case b <- 2: // want goroutine-hygiene "unguarded channel send"
	}
}

func suppressedSend(ch chan int) {
	//lint:ignore goroutine-hygiene fixture: demonstrates a justified suppression
	ch <- 1
}
