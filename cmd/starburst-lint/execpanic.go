package main

import (
	"go/ast"
	"go/types"
)

// exec-panic flags calls to the builtin panic inside internal/exec.
// Execution operators run user queries; a malformed plan or datum must
// surface as an error on the Stream, not crash the process.
var execPanicAnalyzer = &analyzer{
	name: "exec-panic",
	doc:  "no naked panic in internal/exec; operators return errors through the Stream",
	run:  runExecPanic,
}

func runExecPanic(p *pass) {
	if !p.inExec() {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := p.info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			p.report(call.Pos(),
				"naked panic in internal/exec; execution operators must return errors through the Stream, not crash the process")
			return true
		})
	}
}
