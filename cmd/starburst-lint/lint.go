package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one lint violation.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Check, f.Msg)
}

// loader type-checks packages on demand. Packages inside the module are
// resolved by mapping the import path onto a directory under the module
// root; everything else (the standard library) is delegated to the
// go/importer source importer. Only the standard library is involved —
// the module has no external dependencies, and the linter enforces that
// implicitly: an unknown import path simply fails to resolve.
type loader struct {
	fset    *token.FileSet
	modRoot string // absolute path of the module root
	modPath string // module path from go.mod, e.g. "repro"
	std     types.Importer
	info    *types.Info // shared across packages so identities stay consistent
	cache   map[string]*types.Package
	files   map[string][]*ast.File // parsed files per cached import path
	loading map[string]bool
}

func newLoader(modRoot, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
		},
		cache:   make(map[string]*types.Package),
		files:   make(map[string][]*ast.File),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		dir := filepath.Join(l.modRoot, filepath.FromSlash(rel))
		pkg, _, err := l.load(dir, path)
		return pkg, err
	}
	return l.std.Import(path)
}

// load returns the type-checked package for importPath, checking it at
// most once per loader. A package must never be checked twice: two
// *types.Package copies of the same path make every cross-package type
// comparison fail ("cannot use x (type T) as T").
func (l *loader) load(dir, importPath string) (*types.Package, []*ast.File, error) {
	if pkg, ok := l.cache[importPath]; ok {
		return pkg, l.files[importPath], nil
	}
	if l.loading[importPath] {
		return nil, nil, fmt.Errorf("import cycle through %q", importPath)
	}
	pkg, files, err := l.typeCheck(dir, importPath)
	if err != nil {
		return nil, nil, err
	}
	l.cache[importPath] = pkg
	l.files[importPath] = files
	return pkg, files, nil
}

// canonicalDir maps a module-internal import path to the directory it
// denotes, or "" for paths outside the module.
func (l *loader) canonicalDir(importPath string) string {
	if importPath != l.modPath && !strings.HasPrefix(importPath, l.modPath+"/") {
		return ""
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.modPath), "/")
	return filepath.Join(l.modRoot, filepath.FromSlash(rel))
}

// typeCheck parses every non-test .go file in dir and type-checks the
// package under the given import path, recording results in the shared
// Info.
func (l *loader) typeCheck(dir, importPath string) (*types.Package, []*ast.File, error) {
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.fset, files, l.info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return pkg, files, nil
}

// LintDir type-checks the package in dir as importPath and runs every
// check over it. importPath is a parameter (rather than derived from
// dir) so tests can lint fixture directories under a simulated path —
// the exec-panic check keys on the import path. Packages whose
// importPath genuinely maps to dir within the module are cached and
// shared with import resolution; fixture dirs (where the mapping does
// not hold) are checked standalone so they cannot poison the cache.
func (l *loader) LintDir(dir, importPath string) ([]Finding, error) {
	var pkg *types.Package
	var files []*ast.File
	var err error
	if l.canonicalDir(importPath) == dir {
		pkg, files, err = l.load(dir, importPath)
	} else {
		pkg, files, err = l.typeCheck(dir, importPath)
	}
	if err != nil {
		return nil, err
	}
	c := &checks{
		modPath:    l.modPath,
		importPath: importPath,
		fset:       l.fset,
		info:       l.info,
	}
	for _, f := range files {
		ast.Inspect(f, c.node)
	}
	c.obsBypass(pkg, files)
	c.ctxSharedMutation(files)
	c.apiBypass(files)
	sort.Slice(c.findings, func(i, j int) bool {
		a, b := c.findings[i].Pos, c.findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return c.findings, nil
}

// checks holds the state shared by the four lint checks.
type checks struct {
	modPath    string
	importPath string
	fset       *token.FileSet
	info       *types.Info
	findings   []Finding
}

func (c *checks) report(pos token.Pos, check, format string, args ...any) {
	c.findings = append(c.findings, Finding{
		Pos:   c.fset.Position(pos),
		Check: check,
		Msg:   fmt.Sprintf(format, args...),
	})
}

func (c *checks) node(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		c.qgmMutation(n)
	case *ast.CompositeLit:
		c.ruleLiteral(n)
	case *ast.BinaryExpr:
		c.datumCompare(n)
	case *ast.CallExpr:
		c.execPanic(n)
		c.dmlDirectMutate(n)
	}
	return true
}

// qgmMutation flags assignments whose left-hand side is the Quants
// field of a qgm.Box or the Boxes field of a qgm.Graph, outside the
// qgm package itself. These slices encode graph structure; splicing
// them by hand bypasses the invariants the helper methods maintain
// (quantifier registration, GC reachability). Assignments *through*
// the slice (q.Quants[i].Input = ...) mutate a quantifier, not the
// slice, and are fine.
func (c *checks) qgmMutation(n *ast.AssignStmt) {
	qgmPath := c.modPath + "/internal/qgm"
	if c.importPath == qgmPath {
		return
	}
	for _, lhs := range n.Lhs {
		se, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		sel, ok := c.info.Selections[se]
		if !ok || sel.Kind() != types.FieldVal {
			continue
		}
		field := sel.Obj()
		if field.Pkg() == nil || field.Pkg().Path() != qgmPath {
			continue
		}
		name := field.Name()
		if name != "Quants" && name != "Boxes" {
			continue
		}
		recv := sel.Recv()
		for {
			p, ok := recv.(*types.Pointer)
			if !ok {
				break
			}
			recv = p.Elem()
		}
		owner := "qgm value"
		if named, ok := recv.(*types.Named); ok {
			owner = "qgm." + named.Obj().Name()
		}
		c.report(se.Pos(), "qgm-mutation",
			"direct assignment to %s.%s outside internal/qgm; use the qgm helpers (AdoptQuants, NewQuant, RemoveQuant, NewBox, GC) so graph invariants hold",
			owner, name)
	}
}

// ruleLiteral flags rewrite.Rule composite literals that do not supply
// both Condition and Action. A rule with a nil Condition never fires;
// a rule with a nil Action panics the engine — both are authoring
// mistakes the compiler cannot catch.
func (c *checks) ruleLiteral(n *ast.CompositeLit) {
	tv, ok := c.info.Types[n]
	if !ok {
		return
	}
	t := tv.Type
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() != "Rule" || obj.Pkg() == nil || obj.Pkg().Path() != c.modPath+"/internal/rewrite" {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	if len(n.Elts) > 0 {
		if _, keyed := n.Elts[0].(*ast.KeyValueExpr); !keyed {
			// Positional literal: the compiler forces every field to be
			// present, so Condition and Action are necessarily set
			// (possibly to nil, which we cannot see past an expression).
			if len(n.Elts) == st.NumFields() {
				return
			}
			return
		}
	}
	have := map[string]ast.Expr{}
	for _, elt := range n.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			have[id.Name] = kv.Value
		}
	}
	for _, want := range []string{"Condition", "Action"} {
		v, ok := have[want]
		if !ok {
			c.report(n.Pos(), "rule-literal",
				"rewrite.Rule literal missing %s; every rule must supply both Condition and Action", want)
			continue
		}
		if id, ok := v.(*ast.Ident); ok && id.Name == "nil" {
			c.report(v.Pos(), "rule-literal",
				"rewrite.Rule literal sets %s to nil; every rule must supply both Condition and Action", want)
		}
	}
}

// datumCompare flags == and != where either operand is a datum.Value.
// Value is a struct with an `any` payload, so == can panic at runtime
// on user-defined types, and it ignores SQL comparison semantics
// (NULL, INT-vs-FLOAT promotion). Code must go through datum.Compare /
// datum.Equal, which check types first. The datum package itself is
// exempt — it implements those primitives.
func (c *checks) datumCompare(n *ast.BinaryExpr) {
	if n.Op != token.EQL && n.Op != token.NEQ {
		return
	}
	datumPath := c.modPath + "/internal/datum"
	if c.importPath == datumPath {
		return
	}
	for _, operand := range []ast.Expr{n.X, n.Y} {
		tv, ok := c.info.Types[operand]
		if !ok {
			continue
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Value" && obj.Pkg() != nil && obj.Pkg().Path() == datumPath {
			c.report(n.OpPos, "datum-compare",
				"datum.Value compared with %s; use datum.Compare or datum.Equal, which check the types first", n.Op)
			return
		}
	}
}

// execPanic flags calls to the builtin panic inside internal/exec.
// Execution operators run user queries; a malformed plan or datum must
// surface as an error on the Stream, not crash the process.
func (c *checks) execPanic(n *ast.CallExpr) {
	if !strings.HasPrefix(c.importPath, c.modPath+"/internal/exec") {
		return
	}
	id, ok := n.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return
	}
	if _, isBuiltin := c.info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	c.report(n.Pos(), "exec-panic",
		"naked panic in internal/exec; execution operators must return errors through the Stream, not crash the process")
}

// obsBypass verifies, inside internal/exec, that every named type
// implementing the package's Stream interface appears as a case in the
// operatorKind type switch — the registration point of the per-operator
// stats decorator. An operator missing from operatorKind still executes,
// but EXPLAIN ANALYZE and the slow-query log would report it under a
// raw %T name, and nothing proves its author thought about
// instrumentation. This is a whole-package check (it needs the full
// type set), so it runs once per LintDir rather than per node.
func (c *checks) obsBypass(pkg *types.Package, files []*ast.File) {
	if pkg == nil || !strings.HasPrefix(c.importPath, c.modPath+"/internal/exec") {
		return
	}
	scope := pkg.Scope()
	streamObj := scope.Lookup("Stream")
	if streamObj == nil {
		return
	}
	iface, ok := streamObj.Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	registered := c.operatorKindCases(files)
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		if !registered[name] {
			c.report(tn.Pos(), "obs-bypass",
				"type %s implements Stream but is not a case in operatorKind; register every QES operator there so the stats decorator and EXPLAIN ANALYZE can name it", name)
		}
	}
}

// operatorKindCases collects the type names switched on inside the
// package's operatorKind function.
func (c *checks) operatorKindCases(files []*ast.File) map[string]bool {
	out := map[string]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "operatorKind" || fd.Recv != nil || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				for _, e := range cc.List {
					tv, ok := c.info.Types[e]
					if !ok {
						continue
					}
					t := tv.Type
					if p, ok := t.(*types.Pointer); ok {
						t = p.Elem()
					}
					if named, ok := t.(*types.Named); ok {
						out[named.Obj().Name()] = true
					}
				}
				return true
			})
		}
	}
	return out
}

// ctxSharedFields are the exec.Ctx fields that hold plain (non-atomic)
// statement-wide mutable state. Exchange workers run on a *copy* of the
// Ctx (Ctx.child), so a worker-side write to one of these fields is
// either lost (value fields on the copy) or a data race (reference
// fields like the rec map shared through the copy).
var ctxSharedFields = map[string]bool{
	"Affected":   true,
	"SubqHits":   true,
	"SubqMisses": true,
	"Rollbacks":  true,
	"corr":       true,
	"rec":        true,
}

// ctxSerialReceivers are the operator types allowed to write those
// fields: the serial-only set. The optimizer's exchange-insertion pass
// refuses to parallelize subtrees containing DML, subqueries or
// recursion, so methods on these types provably run on the root
// statement goroutine. Ctx's own methods are its API and are exempt.
var ctxSerialReceivers = map[string]bool{
	"Ctx":            true,
	"subplanRunner":  true,
	"recUnionOp":     true,
	"recRefOp":       true,
	"insertOp":       true,
	"updateDeleteOp": true,
}

// ctxSerialFuncs are free functions with the same license (the DML
// rollback path, reached only from the serial DML operators).
var ctxSerialFuncs = map[string]bool{
	"rollback": true,
}

// ctxSharedMutation verifies, inside internal/exec, that only the
// serial-only operator set writes non-atomic statement-wide Ctx fields.
// Any Stream that an exchange can clone into concurrent workers must
// instead go through the atomic shared record (Ctx.sh) — a plain
// counter bump from a worker would race or vanish with the worker's
// Ctx copy.
func (c *checks) ctxSharedMutation(files []*ast.File) {
	if !strings.HasPrefix(c.importPath, c.modPath+"/internal/exec") {
		return
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if c.ctxWriteAllowed(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var lhss []ast.Expr
				switch n := n.(type) {
				case *ast.AssignStmt:
					lhss = n.Lhs
				case *ast.IncDecStmt:
					lhss = []ast.Expr{n.X}
				default:
					return true
				}
				for _, lhs := range lhss {
					// An index write (ctx.rec[k] = ...) mutates the shared
					// map just as surely as reassigning the field.
					if ix, ok := lhs.(*ast.IndexExpr); ok {
						lhs = ix.X
					}
					if name, ok := c.ctxFieldWrite(lhs); ok {
						c.report(lhs.Pos(), "ctx-shared-mutation",
							"%s writes Ctx.%s, which is not worker-safe; operators reachable from an exchange must use the atomic shared record (tick/countRow/signalDone), and serial-only writers belong on the lint allowlist",
							funcLabel(fd), name)
					}
				}
				return true
			})
		}
	}
}

// ctxWriteAllowed reports whether fd is on the serial-only allowlist.
func (c *checks) ctxWriteAllowed(fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return ctxSerialFuncs[fd.Name.Name]
	}
	if len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && ctxSerialReceivers[id.Name]
}

// ctxFieldWrite reports whether lhs selects a shared mutable field of
// the exec Ctx, returning the field name.
func (c *checks) ctxFieldWrite(lhs ast.Expr) (string, bool) {
	se, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	sel, ok := c.info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return "", false
	}
	field := sel.Obj()
	if !ctxSharedFields[field.Name()] {
		return "", false
	}
	recv := sel.Recv()
	for {
		p, ok := recv.(*types.Pointer)
		if !ok {
			break
		}
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Ctx" {
		return "", false
	}
	// The real Ctx lives in internal/exec; fixture packages declare
	// their own Ctx, which the import-path gate has already scoped.
	return field.Name(), true
}

// funcLabel names a function for a finding message: "recv.method" or
// "func".
func funcLabel(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// apiBypassCores are the unexported statement cores of the public API:
// the only functions in the module root package allowed to call
// sql.Parse. Every exported entry point (DB.Query, DB.Exec, Session.*,
// the database/sql driver, prepared statements) must funnel through
// them, because they are where the concurrency contract (stmtMu), the
// plan cache, settings snapshots and the *QueryError wrapping live. A
// new exported method that parses for itself silently skips all four.
var apiBypassCores = map[string]bool{
	"DB.query":   true,
	"DB.prepare": true,
}

// apiBypass verifies, inside the module root package, that sql.Parse is
// only called from the blessed unexported cores.
func (c *checks) apiBypass(files []*ast.File) {
	if c.importPath != c.modPath {
		return
	}
	sqlPath := c.modPath + "/internal/sql"
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if apiBypassCores[funcLabel(fd)] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				se, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := c.info.Uses[se.Sel]
				if obj == nil || obj.Name() != "Parse" ||
					obj.Pkg() == nil || obj.Pkg().Path() != sqlPath {
					return true
				}
				c.report(call.Pos(), "api-bypass",
					"%s calls sql.Parse outside the context-first core; route statements through (*DB).query or (*DB).prepare so the concurrency contract, plan cache, settings snapshot and QueryError wrapping all apply",
					funcLabel(fd))
				return true
			})
		}
	}
}

// dmlDirectMutate flags calls to catalog.Catalog's Insert, Update or
// Delete inside internal/exec. DML operators must mutate through the
// undo-logged entry points (InsertLogged, UpdateLogged, DeleteLogged)
// so a mid-statement error can roll the whole statement back; a direct
// mutation silently escapes statement atomicity.
func (c *checks) dmlDirectMutate(n *ast.CallExpr) {
	if !strings.HasPrefix(c.importPath, c.modPath+"/internal/exec") {
		return
	}
	se, ok := n.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	sel, ok := c.info.Selections[se]
	if !ok || sel.Kind() != types.MethodVal {
		return
	}
	m := sel.Obj()
	name := m.Name()
	if name != "Insert" && name != "Update" && name != "Delete" {
		return
	}
	if m.Pkg() == nil || m.Pkg().Path() != c.modPath+"/internal/catalog" {
		return
	}
	recv := sel.Recv()
	for {
		p, ok := recv.(*types.Pointer)
		if !ok {
			break
		}
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Catalog" {
		return
	}
	c.report(n.Pos(), "dml-direct-mutate",
		"direct catalog.%s in internal/exec bypasses statement atomicity; mutate through %sLogged with an UndoLog",
		name, name)
}
