package main

import (
	"go/ast"
	"go/types"
)

// rule-literal flags rewrite.Rule composite literals that do not
// supply both Condition and Action. A rule with a nil Condition never
// fires; a rule with a nil Action panics the engine — both are
// authoring mistakes the compiler cannot catch.
var ruleLiteralAnalyzer = &analyzer{
	name: "rule-literal",
	doc:  "every rewrite.Rule composite literal supplies both Condition and Action",
	run:  runRuleLiteral,
}

func runRuleLiteral(p *pass) {
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			checkRuleLiteral(p, lit)
			return true
		})
	}
}

func checkRuleLiteral(p *pass, n *ast.CompositeLit) {
	tv, ok := p.info.Types[n]
	if !ok {
		return
	}
	named, ok := derefNamed(tv.Type)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() != "Rule" || obj.Pkg() == nil || obj.Pkg().Path() != p.modPath+"/internal/rewrite" {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	if len(n.Elts) > 0 {
		if _, keyed := n.Elts[0].(*ast.KeyValueExpr); !keyed {
			// Positional literal: the compiler forces every field to be
			// present, so Condition and Action are necessarily set
			// (possibly to nil, which we cannot see past an expression).
			_ = st
			return
		}
	}
	have := map[string]ast.Expr{}
	for _, elt := range n.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			have[id.Name] = kv.Value
		}
	}
	for _, want := range []string{"Condition", "Action"} {
		v, ok := have[want]
		if !ok {
			p.report(n.Pos(),
				"rewrite.Rule literal missing %s; every rule must supply both Condition and Action", want)
			continue
		}
		if id, ok := v.(*ast.Ident); ok && id.Name == "nil" {
			p.report(v.Pos(),
				"rewrite.Rule literal sets %s to nil; every rule must supply both Condition and Action", want)
		}
	}
}
