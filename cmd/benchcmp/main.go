// Command benchcmp diffs two benchmark JSON files produced by `make
// bench` (TestEmitBenchJSON) and enforces the performance gates of the
// parallel-execution work:
//
//   - no serial regression: the end-to-end paper query (Fig1EndToEnd)
//     in the new file must be within 5% of the old file's ns/op —
//     adding exchanges, batching, and columnar dispatch must not tax
//     serial plans;
//   - vectorization pays: ColScanFilterAgg must run in at most 2/3 of
//     RowScanFilterAgg's ns/op (≥1.5x on the fused
//     scan→filter→aggregate kernels vs the row-batch path);
//   - parallel speedup: ParallelScanDOP4 must run in at most half the
//     ns/op of ParallelScanDOP1 (≥2x on the I/O-bound scan);
//   - batching pays: ScanFilterProjectBatched must allocate at most
//     75% of ScanFilterProjectTuple's allocs/op;
//   - cache pays: PlanCacheHit must run in at most a fifth of
//     PlanCacheColdCompile's ns/op (≥5x on a compile-dominated
//     statement);
//   - durability is affordable: DiskInsert (WAL append + group fsync
//     per statement) must run within 3x of HeapInsert, and DiskScan
//     (buffer pool over slotted pages) within 2x of HeapScan. Both
//     pairs must be present — the disk path is benchmarked, not
//     optional;
//   - MVCC pays under contention: ConcurrentMixedMVCC (the
//     8-goroutine mixed reader/writer/DDL workload under snapshot
//     isolation) must run in at most half the ns/op of
//     ConcurrentMixedRWMutex (the same stream replayed behind the
//     retired DB-wide statement lock) — retiring the RWMutex must buy
//     at least 2x mixed throughput.
//
// Every benchmark present in both files is printed as a diff table;
// only the gates above fail the run.
//
// Usage:
//
//	benchcmp OLD.json NEW.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type entry map[string]int64

func load(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out map[string]entry
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// ratio returns new/old for the given field, or 0 when either side is
// missing or zero.
func ratio(old, new map[string]entry, name, field string) float64 {
	o, n := old[name][field], new[name][field]
	if o == 0 || n == 0 {
		return 0
	}
	return float64(n) / float64(o)
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp OLD.json NEW.json")
		os.Exit(2)
	}
	old, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	new, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var names []string
	for name := range new {
		if _, ok := old[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Printf("%-28s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, name := range names {
		fmt.Printf("%-28s %14d %14d %8.2f\n",
			name, old[name]["ns_per_op"], new[name]["ns_per_op"],
			ratio(old, new, name, "ns_per_op"))
	}

	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
		failed = true
	}

	if r := ratio(old, new, "Fig1EndToEnd", "ns_per_op"); r == 0 {
		fail("Fig1EndToEnd missing from one of the files")
	} else if r > 1.05 {
		fail("serial regression: Fig1EndToEnd ns/op ratio %.2f exceeds 1.05", r)
	}

	cs, rs := new["ColScanFilterAgg"]["ns_per_op"], new["RowScanFilterAgg"]["ns_per_op"]
	switch {
	case cs == 0 || rs == 0:
		fail("ColScanFilterAgg/RowScanFilterAgg missing from %s", os.Args[2])
	case float64(cs) > float64(rs)/1.5:
		fail("columnar speedup below 1.5x: columnar %dns vs row %dns", cs, rs)
	}

	d1, d4 := new["ParallelScanDOP1"]["ns_per_op"], new["ParallelScanDOP4"]["ns_per_op"]
	switch {
	case d1 == 0 || d4 == 0:
		fail("ParallelScanDOP1/DOP4 missing from %s", os.Args[2])
	case float64(d4) > 0.5*float64(d1):
		fail("parallel speedup below 2x: DOP4 %dns vs DOP1 %dns", d4, d1)
	}

	at, ab := new["ScanFilterProjectTuple"]["allocs_per_op"], new["ScanFilterProjectBatched"]["allocs_per_op"]
	switch {
	case at == 0 || ab == 0:
		fail("ScanFilterProjectTuple/Batched missing from %s", os.Args[2])
	case float64(ab) > 0.75*float64(at):
		fail("batched path saves <25%% allocs: %d vs %d allocs/op", ab, at)
	}

	cold, hit := new["PlanCacheColdCompile"]["ns_per_op"], new["PlanCacheHit"]["ns_per_op"]
	switch {
	case cold == 0 || hit == 0:
		fail("PlanCacheColdCompile/Hit missing from %s", os.Args[2])
	case float64(hit) > 0.2*float64(cold):
		fail("plan-cache speedup below 5x: hit %dns vs cold %dns", hit, cold)
	}

	hi, di := new["HeapInsert"]["ns_per_op"], new["DiskInsert"]["ns_per_op"]
	switch {
	case hi == 0 || di == 0:
		fail("HeapInsert/DiskInsert missing from %s", os.Args[2])
	case float64(di) > 3.0*float64(hi):
		fail("disk write path over 3x heap: disk %dns vs heap %dns", di, hi)
	}

	hs, ds := new["HeapScan"]["ns_per_op"], new["DiskScan"]["ns_per_op"]
	switch {
	case hs == 0 || ds == 0:
		fail("HeapScan/DiskScan missing from %s", os.Args[2])
	case float64(ds) > 2.0*float64(hs):
		fail("disk scan path over 2x heap: disk %dns vs heap %dns", ds, hs)
	}

	mv, rw := new["ConcurrentMixedMVCC"]["ns_per_op"], new["ConcurrentMixedRWMutex"]["ns_per_op"]
	switch {
	case mv == 0 || rw == 0:
		fail("ConcurrentMixedMVCC/RWMutex missing from %s", os.Args[2])
	case float64(mv) > 0.5*float64(rw):
		fail("MVCC mixed-workload speedup below 2x: MVCC %dns vs RWMutex %dns", mv, rw)
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("ok: serial within 5%, columnar ≥1.5x, parallel ≥2x, batched allocs ≤75%, cache hit ≥5x, disk insert ≤3x / scan ≤2x heap, MVCC mixed ≥2x RWMutex")
}
