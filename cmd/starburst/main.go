// Command starburst is an interactive shell over the Starburst
// reproduction: it reads Hydrogen statements (terminated by ';'),
// compiles them through all Figure-1 phases, and prints results.
//
// Usage:
//
//	starburst                 # interactive REPL
//	starburst -e 'stmt; ...'  # execute statements and exit
//	starburst -f script.sql   # execute a file and exit
//
// Inside the REPL, "EXPLAIN <stmt>" shows the QGM before and after
// rewrite plus the chosen plan; "EXPLAIN ANALYZE <stmt>" executes the
// statement and shows the plan annotated with actual per-operator row
// counts, timings and memory; "\d" lists tables and views; "\io" shows
// simulated I/O counters; "\timing" toggles elapsed-time reporting;
// "\metrics" dumps the DB metrics registry; "\cache" shows plan-cache
// statistics; "\trace on" streams each statement's span tree (phases,
// operators, wait events) as JSON; "\q" quits. The SYS schema is
// always available: SELECT * FROM SYS.STATEMENTS, SYS.WAITS, ...
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	starburst "repro"
)

func main() {
	eval := flag.String("e", "", "execute the given statements and exit")
	file := flag.String("f", "", "execute statements from a file and exit")
	audit := flag.Bool("audit", false, "verify the QGM after every rewrite-rule firing and audit chosen plans")
	timeout := flag.Duration("timeout", 0, "per-statement timeout (0 = none)")
	maxRows := flag.Int64("max-rows", 0, "per-statement tuple-processing budget (0 = none)")
	obsAddr := flag.String("obs", "", "serve /metrics and /debug/pprof on this address (e.g. 127.0.0.1:6060)")
	dop := flag.Int("dop", 1, "degree of parallelism for eligible queries (1 = serial)")
	planCache := flag.Int("plan-cache", 0, "enable the shared plan cache with this many entries (0 = off)")
	dataDir := flag.String("data-dir", "", "durable data directory (empty = in-memory)")
	storageMgr := flag.String("storage", "", `default storage manager for CREATE TABLE without USING (e.g. "DISK")`)
	flag.Parse()

	opts := []starburst.Option{starburst.WithPlanCache(*planCache)}
	if *dataDir != "" {
		opts = append(opts, starburst.WithDataDir(*dataDir))
	}
	if *storageMgr != "" {
		opts = append(opts, starburst.WithDefaultStorage(*storageMgr))
	}
	db := starburst.Open(opts...)
	if err := db.OpenErr(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "close:", err)
		}
	}()
	db.SetAudit(*audit)
	db.SetLimits(starburst.Limits{Timeout: *timeout, MaxRows: *maxRows})
	db.SetParallelism(*dop)
	if *obsAddr != "" {
		srv, err := db.StartObsServer(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("observability server on http://%s/metrics\n", srv.Addr())
	}
	sh := &shell{db: db, out: os.Stdout, errOut: os.Stderr, timing: true}
	switch {
	case *eval != "":
		exitOn(sh.runScript(*eval))
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exitOn(sh.runScript(string(data)))
	default:
		sh.repl(os.Stdin)
	}
}

func exitOn(err error) {
	if err != nil {
		os.Exit(1)
	}
}

// shell is one REPL/script session: a DB, the engine Session statements
// run on (so BEGIN/COMMIT/ROLLBACK carry across lines), the sinks
// output goes to, and the \timing toggle.
type shell struct {
	db     *starburst.DB
	sess   *starburst.Session
	out    io.Writer
	errOut io.Writer
	// timing appends "(elapsed)" to statement status lines; toggled by
	// \timing. On by default.
	timing bool
}

// session lazily opens the engine Session every statement runs on.
func (sh *shell) session() *starburst.Session {
	if sh.sess == nil {
		sh.sess = sh.db.NewSession()
	}
	return sh.sess
}

func (sh *shell) runScript(script string) error {
	for _, stmt := range splitStatements(script) {
		if strings.TrimSpace(stmt) == "" {
			continue
		}
		if err := sh.execute(stmt); err != nil {
			fmt.Fprintln(sh.errOut, "error:", err)
			return err
		}
	}
	return nil
}

func (sh *shell) repl(in io.Reader) {
	fmt.Fprintln(sh.out, "Starburst reproduction shell — Hydrogen statements end with ';'")
	fmt.Fprintln(sh.out, `commands: \d (schema)  \io (I/O counters)  \timing (toggle)  \metrics  \cache  \trace on|off  \vectorize  \feedback  \begin \commit \rollback  \q (quit)`)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := ""
	for {
		if buf.Len() == 0 {
			// The * prompt marks an open transaction.
			prompt = "starburst> "
			if sh.sess != nil && sh.sess.Tx() != nil {
				prompt = "starburst*> "
			}
		}
		fmt.Fprint(sh.out, prompt)
		if !sc.Scan() {
			fmt.Fprintln(sh.out)
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if sh.command(trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.Contains(line, ";") {
			stmt := buf.String()
			buf.Reset()
			prompt = "starburst> "
			if err := sh.execute(stmt); err != nil {
				fmt.Fprintln(sh.out, "error:", err)
			}
		} else if buf.Len() > 0 {
			prompt = "      ...> "
		}
	}
}

// command handles one backslash command; reports whether to quit.
func (sh *shell) command(cmd string) (quit bool) {
	switch cmd {
	case `\q`:
		return true
	case `\d`:
		sh.describe()
	case `\io`:
		r, w, ix := sh.db.IOStats()
		fmt.Fprintf(sh.out, "page reads=%d writes=%d index reads=%d\n", r, w, ix)
	case `\timing`:
		sh.timing = !sh.timing
		if sh.timing {
			fmt.Fprintln(sh.out, "timing is on")
		} else {
			fmt.Fprintln(sh.out, "timing is off")
		}
	case `\metrics`:
		if _, err := sh.db.Metrics().WriteTo(sh.out); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		}
	case `\cache`:
		s := sh.db.PlanCacheStats()
		if s.Capacity == 0 {
			fmt.Fprintln(sh.out, "plan cache is off (start with -plan-cache N)")
			break
		}
		fmt.Fprintf(sh.out, "plan cache: %d/%d entries, %d hits, %d misses, %d evictions, %d invalidations\n",
			s.Size, s.Capacity, s.Hits, s.Misses, s.Evictions, s.Invalidations)
	case `\trace on`:
		sh.db.SetSpanExporter(sh.exportSpan)
		fmt.Fprintln(sh.out, "statement trace export is on")
	case `\trace off`, `\trace`:
		sh.db.SetSpanExporter(nil)
		fmt.Fprintln(sh.out, "statement trace export is off")
	case `\vectorize`:
		sh.db.SetVectorized(!sh.db.Vectorized())
		if sh.db.Vectorized() {
			fmt.Fprintln(sh.out, "vectorized execution is on")
		} else {
			fmt.Fprintln(sh.out, "vectorized execution is off")
		}
	case `\feedback`:
		sh.db.SetCardinalityFeedback(!sh.db.CardinalityFeedback())
		if sh.db.CardinalityFeedback() {
			fmt.Fprintln(sh.out, "cardinality feedback is on (statements run instrumented)")
		} else {
			fmt.Fprintln(sh.out, "cardinality feedback is off")
		}
	case `\begin`, `\commit`, `\rollback`:
		// Sugar for the SQL transaction statements, so a transaction can
		// be driven entirely from backslash commands.
		if err := sh.execute(strings.TrimPrefix(cmd, `\`)); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		}
	default:
		fmt.Fprintln(sh.out, "unknown command", cmd)
	}
	return false
}

func (sh *shell) describe() {
	cat := sh.db.Catalog()
	for _, name := range cat.TableNames() {
		t, _ := cat.Table(name)
		var cols []string
		for _, c := range t.Cols {
			cols = append(cols, c.Name)
		}
		fmt.Fprintf(sh.out, "table %s (%s) using %s, %d rows", name, strings.Join(cols, ", "), t.SM, t.Rel.RowCount())
		for _, ix := range t.Indexes {
			fmt.Fprintf(sh.out, " [index %s/%s]", ix.Name, ix.Method)
		}
		fmt.Fprintln(sh.out)
	}
	for _, name := range cat.ViewNames() {
		v, _ := cat.View(name)
		fmt.Fprintf(sh.out, "view %s AS %s\n", name, v.Text)
	}
	for _, name := range cat.SystemTableNames() {
		t, _ := cat.Table(name)
		var cols []string
		for _, c := range t.Cols {
			cols = append(cols, c.Name)
		}
		fmt.Fprintf(sh.out, "system table %s (%s)\n", name, strings.Join(cols, ", "))
	}
}

// exportSpan is the \trace sink: one JSON document per statement.
func (sh *shell) exportSpan(span *starburst.StatementSpan) {
	data, err := span.JSON()
	if err != nil {
		fmt.Fprintln(sh.errOut, "trace:", err)
		return
	}
	fmt.Fprintf(sh.out, "trace: %s\n", data)
}

func (sh *shell) execute(stmt string) error {
	stmt = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(stmt), ";"))
	if stmt == "" {
		return nil
	}
	start := time.Now()
	res, err := sh.session().Exec(stmt, nil)
	if err != nil {
		var aerr *starburst.AuditError
		if errors.As(err, &aerr) {
			fmt.Fprintln(sh.errOut, "audit failure — firing trace:")
			for i, f := range aerr.Trace {
				marker := ""
				if i == aerr.Firing {
					marker = "   <-- offending firing"
				}
				fmt.Fprintf(sh.errOut, "  %3d: rule %s on box %d%s\n", i, f.Rule, f.Box, marker)
			}
		}
		return err
	}
	elapsed := time.Since(start)
	if len(res.Columns) > 0 {
		sh.printTable(res)
	}
	suffix := ""
	if sh.timing {
		suffix = fmt.Sprintf(" (%v)", elapsed.Round(time.Microsecond))
	}
	switch {
	case res.Affected > 0:
		fmt.Fprintf(sh.out, "%d row(s) affected%s\n", res.Affected, suffix)
	case len(res.Columns) > 0:
		fmt.Fprintf(sh.out, "%d row(s)%s\n", len(res.Rows), suffix)
	default:
		fmt.Fprintf(sh.out, "ok%s\n", suffix)
	}
	return nil
}

func (sh *shell) printTable(res *starburst.Result) {
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for ri, row := range res.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sep strings.Builder
	for i, c := range res.Columns {
		fmt.Fprintf(sh.out, "%-*s  ", widths[i], c)
		sep.WriteString(strings.Repeat("-", widths[i]))
		sep.WriteString("  ")
	}
	fmt.Fprintln(sh.out)
	fmt.Fprintln(sh.out, strings.TrimRight(sep.String(), " "))
	for _, row := range cells {
		for i, s := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(sh.out, "%-*s  ", w, s)
		}
		fmt.Fprintln(sh.out)
	}
}

// splitStatements splits on semicolons outside string literals.
func splitStatements(s string) []string {
	var out []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\'':
			inStr = !inStr
			cur.WriteByte(c)
		case c == ';' && !inStr:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if strings.TrimSpace(cur.String()) != "" {
		out = append(out, cur.String())
	}
	return out
}
