// Command starburst is an interactive shell over the Starburst
// reproduction: it reads Hydrogen statements (terminated by ';'),
// compiles them through all Figure-1 phases, and prints results.
//
// Usage:
//
//	starburst                 # interactive REPL
//	starburst -e 'stmt; ...'  # execute statements and exit
//	starburst -f script.sql   # execute a file and exit
//
// Inside the REPL, "EXPLAIN <stmt>" shows the QGM before and after
// rewrite plus the chosen plan; "\d" lists tables and views; "\io"
// shows simulated I/O counters; "\q" quits.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	starburst "repro"
)

func main() {
	eval := flag.String("e", "", "execute the given statements and exit")
	file := flag.String("f", "", "execute statements from a file and exit")
	audit := flag.Bool("audit", false, "verify the QGM after every rewrite-rule firing and audit chosen plans")
	timeout := flag.Duration("timeout", 0, "per-statement timeout (0 = none)")
	maxRows := flag.Int64("max-rows", 0, "per-statement tuple-processing budget (0 = none)")
	flag.Parse()

	db := starburst.Open()
	db.SetAudit(*audit)
	db.SetLimits(starburst.Limits{Timeout: *timeout, MaxRows: *maxRows})
	switch {
	case *eval != "":
		runScript(db, *eval)
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runScript(db, string(data))
	default:
		repl(db)
	}
}

func runScript(db *starburst.DB, script string) {
	for _, stmt := range splitStatements(script) {
		if strings.TrimSpace(stmt) == "" {
			continue
		}
		if err := execute(db, stmt); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
}

func repl(db *starburst.DB) {
	fmt.Println("Starburst reproduction shell — Hydrogen statements end with ';'")
	fmt.Println(`commands: \d (schema)  \io (I/O counters)  \q (quit)`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "starburst> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			switch trimmed {
			case `\q`:
				return
			case `\d`:
				describe(db)
			case `\io`:
				r, w, ix := db.IOStats()
				fmt.Printf("page reads=%d writes=%d index reads=%d\n", r, w, ix)
			default:
				fmt.Println("unknown command", trimmed)
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.Contains(line, ";") {
			stmt := buf.String()
			buf.Reset()
			prompt = "starburst> "
			if err := execute(db, stmt); err != nil {
				fmt.Println("error:", err)
			}
		} else if buf.Len() > 0 {
			prompt = "      ...> "
		}
	}
}

func describe(db *starburst.DB) {
	cat := db.Catalog()
	for _, name := range cat.TableNames() {
		t, _ := cat.Table(name)
		var cols []string
		for _, c := range t.Cols {
			cols = append(cols, c.Name)
		}
		fmt.Printf("table %s (%s) using %s, %d rows", name, strings.Join(cols, ", "), t.SM, t.Rel.RowCount())
		for _, ix := range t.Indexes {
			fmt.Printf(" [index %s/%s]", ix.Name, ix.Method)
		}
		fmt.Println()
	}
	for _, name := range cat.ViewNames() {
		v, _ := cat.View(name)
		fmt.Printf("view %s AS %s\n", name, v.Text)
	}
}

func execute(db *starburst.DB, stmt string) error {
	stmt = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(stmt), ";"))
	if stmt == "" {
		return nil
	}
	start := time.Now()
	res, err := db.Exec(stmt, nil)
	if err != nil {
		var aerr *starburst.AuditError
		if errors.As(err, &aerr) {
			fmt.Fprintln(os.Stderr, "audit failure — firing trace:")
			for i, f := range aerr.Trace {
				marker := ""
				if i == aerr.Firing {
					marker = "   <-- offending firing"
				}
				fmt.Fprintf(os.Stderr, "  %3d: rule %s on box %d%s\n", i, f.Rule, f.Box, marker)
			}
		}
		return err
	}
	elapsed := time.Since(start)
	if len(res.Columns) > 0 {
		printTable(res)
	}
	switch {
	case res.Affected > 0:
		fmt.Printf("%d row(s) affected (%v)\n", res.Affected, elapsed.Round(time.Microsecond))
	case len(res.Columns) > 0:
		fmt.Printf("%d row(s) (%v)\n", len(res.Rows), elapsed.Round(time.Microsecond))
	default:
		fmt.Printf("ok (%v)\n", elapsed.Round(time.Microsecond))
	}
	return nil
}

func printTable(res *starburst.Result) {
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for ri, row := range res.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sep strings.Builder
	for i, c := range res.Columns {
		fmt.Printf("%-*s  ", widths[i], c)
		sep.WriteString(strings.Repeat("-", widths[i]))
		sep.WriteString("  ")
	}
	fmt.Println()
	fmt.Println(strings.TrimRight(sep.String(), " "))
	for _, row := range cells {
		for i, s := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Printf("%-*s  ", w, s)
		}
		fmt.Println()
	}
}

// splitStatements splits on semicolons outside string literals.
func splitStatements(s string) []string {
	var out []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\'':
			inStr = !inStr
			cur.WriteByte(c)
		case c == ';' && !inStr:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if strings.TrimSpace(cur.String()) != "" {
		out = append(out, cur.String())
	}
	return out
}
