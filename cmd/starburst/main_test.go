package main

import "testing"

func TestSplitStatements(t *testing.T) {
	got := splitStatements("SELECT 1; INSERT INTO t VALUES ('a;b'); SELECT 2")
	if len(got) != 3 {
		t.Fatalf("split = %d parts: %q", len(got), got)
	}
	if got[1] != " INSERT INTO t VALUES ('a;b')" {
		t.Errorf("semicolon inside string literal must not split: %q", got[1])
	}
	if len(splitStatements("  ")) != 0 {
		t.Error("blank input")
	}
	if len(splitStatements("SELECT 1")) != 1 {
		t.Error("no trailing semicolon")
	}
}
