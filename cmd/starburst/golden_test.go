package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	starburst "repro"
)

var update = flag.Bool("update", false, "rewrite golden files")

// setupSQL builds the schema every golden script runs against.
const setupSQL = `
CREATE TABLE inv (partno INT, qty INT, type STRING);
INSERT INTO inv VALUES (1, 10, 'CPU');
INSERT INTO inv VALUES (2, 5, 'RAM');
INSERT INTO inv VALUES (3, 7, 'CPU');
CREATE TABLE quot (partno INT, price INT);
INSERT INTO quot VALUES (1, 100);
INSERT INTO quot VALUES (3, 70);
`

// Durations and memory figures vary run to run; golden files store them
// normalized.
var (
	durRe  = regexp.MustCompile(`\d+(\.\d+)?(ns|µs|us|ms|m|h|s)+`)
	memRe  = regexp.MustCompile(`mem=\d+B`)
	dashRe = regexp.MustCompile(`-{4,}`)
)

// normalize strips the run-to-run noise: durations, memory figures, and
// the table padding that tracks their widths.
func normalize(s string) string {
	s = durRe.ReplaceAllString(s, "<dur>")
	s = memRe.ReplaceAllString(s, "mem=<mem>")
	s = dashRe.ReplaceAllString(s, "----")
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = strings.TrimRight(lines[i], " ")
	}
	return strings.Join(lines, "\n")
}

// runGolden executes script in a fresh shell (timing off, so output is
// deterministic) and compares the normalized transcript with the golden
// file. -update rewrites the golden.
func runGolden(t *testing.T, name, script string) {
	t.Helper()
	var out bytes.Buffer
	sh := &shell{db: starburst.Open(), out: &out, errOut: &out, timing: false}
	if err := sh.runScript(setupSQL); err != nil {
		t.Fatalf("setup: %v", err)
	}
	out.Reset()
	if err := sh.runScript(script); err != nil {
		t.Fatalf("script: %v\noutput:\n%s", err, out.String())
	}
	got := normalize(out.String())
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenExplain(t *testing.T) {
	runGolden(t, "explain_join",
		`EXPLAIN SELECT i.partno, q.price FROM inv i, quot q WHERE i.partno = q.partno AND i.type = 'CPU';`)
}

func TestGoldenExplainAnalyzeJoin(t *testing.T) {
	runGolden(t, "analyze_join",
		`EXPLAIN ANALYZE SELECT i.partno, q.price FROM inv i, quot q WHERE i.partno = q.partno AND i.type = 'CPU';`)
}

func TestGoldenExplainAnalyzeSubquery(t *testing.T) {
	runGolden(t, "analyze_subquery",
		`EXPLAIN ANALYZE SELECT partno FROM inv WHERE qty > (SELECT MIN(price) FROM quot WHERE quot.partno = inv.partno);`)
}

func TestGoldenExplainAnalyzeAggregate(t *testing.T) {
	runGolden(t, "analyze_aggregate",
		`EXPLAIN ANALYZE SELECT type, SUM(qty) FROM inv GROUP BY type;`)
}

func TestGoldenExplainAnalyzeDML(t *testing.T) {
	runGolden(t, "analyze_dml", `
EXPLAIN ANALYZE UPDATE inv SET qty = qty + 1 WHERE type = 'CPU';
SELECT partno, qty FROM inv WHERE type = 'CPU';
EXPLAIN ANALYZE DELETE FROM quot WHERE price > 90;
SELECT partno FROM quot;`)
}

func TestTimingToggle(t *testing.T) {
	var out bytes.Buffer
	sh := &shell{db: starburst.Open(), out: &out, errOut: &out, timing: true}
	if err := sh.execute("SELECT 1;"); err != nil {
		t.Fatal(err)
	}
	if !durRe.MatchString(out.String()) {
		t.Errorf("timing on: want elapsed suffix, got %q", out.String())
	}
	if sh.command(`\timing`) {
		t.Fatal("\\timing must not quit")
	}
	if sh.timing {
		t.Fatal("\\timing must toggle off")
	}
	out.Reset()
	if err := sh.execute("SELECT 1;"); err != nil {
		t.Fatal(err)
	}
	if durRe.MatchString(out.String()) {
		t.Errorf("timing off: want no elapsed suffix, got %q", out.String())
	}
}

func TestMetricsCommand(t *testing.T) {
	var out bytes.Buffer
	sh := &shell{db: starburst.Open(), out: &out, errOut: &out}
	if err := sh.execute("SELECT 1;"); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if sh.command(`\metrics`) {
		t.Fatal("\\metrics must not quit")
	}
	if !strings.Contains(out.String(), `starburst_statements_total{kind="SELECT"} 1`) {
		t.Errorf("metrics dump missing statement counter:\n%s", out.String())
	}
}

func TestVectorizeAndFeedbackToggles(t *testing.T) {
	var out bytes.Buffer
	sh := &shell{db: starburst.Open(), out: &out, errOut: &out}
	if !sh.db.Vectorized() {
		t.Fatal("vectorized execution must default on")
	}
	if sh.command(`\vectorize`) {
		t.Fatal("\\vectorize must not quit")
	}
	if sh.db.Vectorized() || !strings.Contains(out.String(), "vectorized execution is off") {
		t.Errorf("\\vectorize did not toggle off: %q", out.String())
	}
	out.Reset()
	sh.command(`\vectorize`)
	if !sh.db.Vectorized() || !strings.Contains(out.String(), "vectorized execution is on") {
		t.Errorf("\\vectorize did not toggle back on: %q", out.String())
	}
	out.Reset()
	if sh.command(`\feedback`) {
		t.Fatal("\\feedback must not quit")
	}
	if !sh.db.CardinalityFeedback() || !strings.Contains(out.String(), "cardinality feedback is on") {
		t.Errorf("\\feedback did not arm: %q", out.String())
	}
	out.Reset()
	sh.command(`\feedback`)
	if sh.db.CardinalityFeedback() || !strings.Contains(out.String(), "cardinality feedback is off") {
		t.Errorf("\\feedback did not disarm: %q", out.String())
	}
}

// TestShellTransactions drives a transaction through the backslash
// sugar and the bare SQL statements: \begin opens a transaction on the
// shell's session, updates stay private until \commit, and \rollback
// discards a BEGIN-opened transaction's writes.
func TestShellTransactions(t *testing.T) {
	var out bytes.Buffer
	sh := &shell{db: starburst.Open(), out: &out, errOut: &out}
	for _, stmt := range []string{
		"CREATE TABLE accts (id INT NOT NULL, bal INT NOT NULL);",
		"INSERT INTO accts VALUES (1, 100);",
		"INSERT INTO accts VALUES (2, 50);",
	} {
		if err := sh.execute(stmt); err != nil {
			t.Fatal(err)
		}
	}

	if sh.command(`\begin`) {
		t.Fatal("\\begin must not quit")
	}
	if sh.sess == nil || sh.sess.Tx() == nil {
		t.Fatal("\\begin did not open a transaction on the shell session")
	}
	if err := sh.execute("UPDATE accts SET bal = bal - 30 WHERE id = 1;"); err != nil {
		t.Fatal(err)
	}
	// The transfer is invisible outside the transaction until commit.
	res, err := sh.db.Exec("SELECT bal FROM accts WHERE id = 1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 100 {
		t.Fatalf("uncommitted update leaked: outside view bal=%d, want 100", got)
	}
	sh.command(`\commit`)
	if sh.sess.Tx() != nil {
		t.Fatal("\\commit left a transaction open")
	}
	res, err = sh.db.Exec("SELECT bal FROM accts WHERE id = 1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 70 {
		t.Fatalf("committed update lost: bal=%d, want 70", got)
	}

	// SQL BEGIN and \rollback compose: the delete is discarded.
	if err := sh.execute("BEGIN;"); err != nil {
		t.Fatal(err)
	}
	if err := sh.execute("DELETE FROM accts WHERE id = 2;"); err != nil {
		t.Fatal(err)
	}
	sh.command(`\rollback`)
	if sh.sess.Tx() != nil {
		t.Fatal("\\rollback left a transaction open")
	}
	res, err = sh.db.Exec("SELECT COUNT(*) FROM accts", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 2 {
		t.Fatalf("rolled-back delete applied: %d rows, want 2", got)
	}

	// \commit with nothing open reports the engine error instead of
	// crashing the shell.
	out.Reset()
	sh.command(`\commit`)
	if !strings.Contains(out.String(), "no transaction in progress") {
		t.Errorf("\\commit outside a transaction: got %q", out.String())
	}
}
