package starburst

// Durability tests: schema and row persistence across reopen, WAL DDL
// replay, HEAP-vs-DISK engine equivalence, and the crash-recovery
// torture harness — a crash fault at every WAL-append, WAL-sync and
// checkpoint-page-write ordinal over a DML+DDL workload, with the
// recovered state checked against a serial oracle replay.

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/datum"
	"repro/internal/storage"
	"repro/internal/storage/disk"
)

// diskOpts keeps pages and checkpoint intervals small so the tests
// exercise page growth, eviction and mid-workload checkpoints.
var diskOpts = disk.Options{PageSize: 512, PoolPages: 8, CheckpointEvery: 3}

// diskDB opens a DISK-default DB over fs. Reopening with the same fs
// recovers the directory.
func diskDB(tb testing.TB, fs disk.FS, extra ...Option) *DB {
	tb.Helper()
	opts := append([]Option{withDataFS("data", fs, diskOpts), WithDefaultStorage("DISK")}, extra...)
	db := Open(opts...)
	if err := db.OpenErr(); err != nil {
		tb.Fatalf("open data dir: %v", err)
	}
	return db
}

// contentSnapshot images every table as its sorted row set (RIDs
// included: recovery replays physiological records, so even physical
// placement must match a serial rerun).
func contentSnapshot(tb testing.TB, db *DB) map[string][]string {
	tb.Helper()
	out := map[string][]string{}
	cat := db.Catalog()
	for _, name := range cat.TableNames() {
		t, ok := cat.Table(name)
		if !ok {
			tb.Fatalf("no table %s", name)
		}
		rows := []string{}
		it := storage.UnwrapRelation(t.Rel).Scan()
		for {
			row, rid, ok := it.Next()
			if !ok {
				break
			}
			rows = append(rows, fmt.Sprintf("%v@%v", datum.RowKey(row), rid))
		}
		it.Close()
		sort.Strings(rows)
		out[name] = rows
	}
	return out
}

func TestDataDirPersistenceAcrossReopen(t *testing.T) {
	fs := disk.NewMemFS()
	db := diskDB(t, fs)
	mustExec(t, db, `CREATE TABLE items (id INT NOT NULL, qty INT, tag STRING)`)
	mustExec(t, db, `CREATE INDEX items_id ON items (id)`)
	mustExec(t, db, `CREATE VIEW big AS SELECT id, qty FROM items WHERE qty > 15`)
	for i := 1; i <= 20; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO items VALUES (%d, %d, 'tag-%d')`, i, i*10, i))
	}
	mustExec(t, db, `DELETE FROM items WHERE id = 7`)
	mustExec(t, db, `UPDATE items SET qty = 0 WHERE id = 9`)
	want := contentSnapshot(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := diskDB(t, fs)
	if got := contentSnapshot(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened state differs:\ngot:  %v\nwant: %v", got, want)
	}
	// Schema objects came back: the index serves queries, the view
	// resolves, and new DML lands in both heap and index.
	checkIndexConsistency(t, db2)
	res := mustExec(t, db2, `SELECT COUNT(*) FROM big`)
	if res.Rows[0][0].Int() != 17 { // 19 live rows, id 9 zeroed, id<=1 filtered: 20-1(deleted)-1(qty 0)-1(qty 10)
		t.Fatalf("view over recovered data: %v", res.Rows)
	}
	mustExec(t, db2, `INSERT INTO items VALUES (100, 1000, 'new')`)
	res = mustExec(t, db2, `SELECT tag FROM items WHERE id = 100`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "new" {
		t.Fatalf("post-recovery insert not visible via index: %v", res.Rows)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDataDirNonDiskTablesPersistSchemaOnly(t *testing.T) {
	fs := disk.NewMemFS()
	// HEAP stays the default here: no WithDefaultStorage.
	db := Open(withDataFS("data", fs, diskOpts))
	if err := db.OpenErr(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE mem (a INT)`)
	mustExec(t, db, `CREATE TABLE dur (a INT) USING DISK`)
	mustExec(t, db, `INSERT INTO mem VALUES (1)`)
	mustExec(t, db, `INSERT INTO dur VALUES (2)`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := Open(withDataFS("data", fs, diskOpts))
	if err := db2.OpenErr(); err != nil {
		t.Fatal(err)
	}
	// The MEMORY-table convention: schema survives, rows do not.
	if res := mustExec(t, db2, `SELECT COUNT(*) FROM mem`); res.Rows[0][0].Int() != 0 {
		t.Fatalf("HEAP rows survived reopen: %v", res.Rows)
	}
	if res := mustExec(t, db2, `SELECT a FROM dur`); len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Fatalf("DISK rows lost: %v", res.Rows)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDataDirDDLReplayAfterCrash(t *testing.T) {
	fs := disk.NewMemFS()
	db := diskDB(t, fs)
	// Force a checkpoint (so a catalog snapshot exists), then run DDL
	// past it — the post-snapshot statements replay from the WAL.
	mustExec(t, db, `CREATE TABLE base (id INT, x FLOAT)`)
	mustExec(t, db, `INSERT INTO base VALUES (1, 1.5)`)
	if err := db.Store().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE late (id INT)`)
	mustExec(t, db, `INSERT INTO late VALUES (42)`)
	mustExec(t, db, `CREATE INDEX base_id ON base (id)`)
	mustExec(t, db, `CREATE TABLE doomed (z INT)`)
	mustExec(t, db, `INSERT INTO doomed VALUES (9)`)
	mustExec(t, db, `DROP TABLE doomed`)
	// Crash without Close: no final checkpoint, recovery replays it all.
	fs.Crash()

	db2 := diskDB(t, fs)
	if res := mustExec(t, db2, `SELECT id FROM late`); len(res.Rows) != 1 || res.Rows[0][0].Int() != 42 {
		t.Fatalf("late table not replayed: %v", res.Rows)
	}
	if _, err := db2.Exec(`SELECT z FROM doomed`, nil); err == nil {
		t.Fatal("dropped table resurrected by replay")
	}
	bt, ok := db2.Catalog().Table("base")
	if !ok || len(bt.Indexes) != 1 || bt.Indexes[0].Name != "BASE_ID" {
		t.Fatalf("replayed index missing: %+v", bt)
	}
	checkIndexConsistency(t, db2)
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineCorpusOnDisk runs a broad statement corpus against a
// DISK-backed DB and an in-memory HEAP DB and requires identical
// results — the durable manager must be observationally equivalent.
func TestEngineCorpusOnDisk(t *testing.T) {
	setup := []string{
		`CREATE TABLE items (id INT NOT NULL, qty INT, tag STRING)`,
		`CREATE INDEX items_id ON items (id)`,
		`CREATE TABLE orders (oid INT, item INT, n INT)`,
		`CREATE VIEW expensive AS SELECT id, qty FROM items WHERE qty >= 40`,
	}
	for i := 1; i <= 12; i++ {
		tag := "CPU"
		if i%2 == 0 {
			tag = "MEM"
		}
		setup = append(setup, fmt.Sprintf(`INSERT INTO items VALUES (%d, %d, '%s')`, i, i*10, tag))
	}
	for i := 1; i <= 9; i++ {
		setup = append(setup, fmt.Sprintf(`INSERT INTO orders VALUES (%d, %d, %d)`, i, i%5+1, i*3))
	}
	setup = append(setup,
		`UPDATE items SET qty = qty + 5 WHERE tag = 'MEM'`,
		`DELETE FROM orders WHERE n > 24`,
		`ANALYZE items`, `ANALYZE orders`,
	)
	queries := []string{
		`SELECT id, qty FROM items WHERE id = 7`,
		`SELECT tag, COUNT(*), SUM(qty) FROM items GROUP BY tag ORDER BY tag`,
		`SELECT i.id, o.n FROM items i, orders o WHERE i.id = o.item ORDER BY i.id, o.n`,
		`SELECT id FROM items WHERE qty > (SELECT AVG(n) FROM orders) ORDER BY id`,
		`SELECT * FROM expensive ORDER BY id`,
		`SELECT DISTINCT tag FROM items ORDER BY tag`,
		`SELECT id FROM items ORDER BY qty DESC LIMIT 3`,
	}

	heap := Open()
	fs := disk.NewMemFS()
	dd := diskDB(t, fs)
	for _, q := range setup {
		mustExec(t, heap, q)
		mustExec(t, dd, q)
	}
	check := func(label string, db *DB) {
		for _, q := range queries {
			want := mustExec(t, heap, q)
			got := mustExec(t, db, q)
			if fmt.Sprint(want.Rows) != fmt.Sprint(got.Rows) {
				t.Fatalf("%s: %s\nheap: %v\ndisk: %v", label, q, want.Rows, got.Rows)
			}
		}
	}
	check("disk", dd)
	if err := dd.Close(); err != nil {
		t.Fatal(err)
	}
	// Same corpus, same answers, after a clean reopen...
	dd2 := diskDB(t, fs)
	check("disk-reopened", dd2)
	// ...and after a hard crash (recovery from checkpoint + WAL).
	fs.Crash()
	dd3 := diskDB(t, fs)
	check("disk-recovered", dd3)
	if err := dd3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskParallelScan drives the PR-4 exchange path over the disk
// manager: DOP>1 morsel scans must see every page range.
func TestDiskParallelScan(t *testing.T) {
	fs := disk.NewMemFS()
	db := diskDB(t, fs, WithParallelism(4))
	mustExec(t, db, `CREATE TABLE big (id INT, v INT)`)
	for i := 0; i < 300; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO big VALUES (%d, %d)`, i, i%7))
	}
	mustExec(t, db, `ANALYZE big`)
	res := mustExec(t, db, `SELECT COUNT(*), SUM(id) FROM big WHERE v < 5`)
	wantN, wantSum := int64(0), int64(0)
	for i := 0; i < 300; i++ {
		if i%7 < 5 {
			wantN++
			wantSum += int64(i)
		}
	}
	if res.Rows[0][0].Int() != wantN || res.Rows[0][1].Int() != wantSum {
		t.Fatalf("parallel disk scan: %v, want [%d %d]", res.Rows, wantN, wantSum)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------
// Crash-recovery torture

// tortureWorkload is the statement sequence the crash harness drives:
// every DML kind from the PR-2 atomicity matrix (multi-row insert,
// insert-select, index-key update, delete) plus post-snapshot DDL
// (create/drop of tables and indexes), all deterministic and
// abort-free.
var tortureWorkload = []string{
	`CREATE TABLE items (id INT NOT NULL, qty INT, tag STRING)`,
	`CREATE INDEX items_id ON items (id)`,
	`INSERT INTO items VALUES (1, 10, 'A')`,
	`INSERT INTO items VALUES (2, 20, 'B'), (3, 30, 'C'), (4, 40, 'D')`,
	`INSERT INTO items SELECT id + 100, qty, 'COPY' FROM items`,
	`UPDATE items SET id = id + 1000 WHERE qty >= 30`,
	`DELETE FROM items WHERE id = 1`,
	`CREATE TABLE extra (a INT, b STRING)`,
	`INSERT INTO extra VALUES (7, 'seven'), (8, 'eight')`,
	`UPDATE items SET tag = 'X' WHERE qty = 20`,
	`DROP TABLE extra`,
	`INSERT INTO items VALUES (500, 50, 'E')`,
}

// runTortureWorkload executes the workload until a crash fault fires,
// returning the number of statements acknowledged as committed and
// whether the store crashed (false = the schedule ran clean).
func runTortureWorkload(t *testing.T, db *DB) (acked int, crashed bool) {
	t.Helper()
	for _, q := range tortureWorkload {
		_, err := db.Exec(q, nil)
		if err == nil {
			acked++
			continue
		}
		var ce *CrashError
		if !errors.As(err, &ce) && !errors.Is(err, disk.ErrCrashed) {
			t.Fatalf("statement %q failed with a non-crash error: %v", q, err)
		}
		if !db.Store().Crashed() {
			t.Fatal("crash error surfaced but the store is not poisoned")
		}
		return acked, true
	}
	return acked, false
}

// oracleState replays the first p workload statements on a fresh
// fault-free store and images the result.
func tortureOracle(t *testing.T, p int) map[string][]string {
	t.Helper()
	db := diskDB(t, disk.NewMemFS())
	for _, q := range tortureWorkload[:p] {
		mustExec(t, db, q)
	}
	return contentSnapshot(t, db)
}

// TestCrashRecoveryTorture is the acceptance gate: for each crash point
// (WAL append, WAL sync, checkpoint page write, torn page write) and
// every ordinal k until the schedule runs clean, kill the store
// mid-workload, reopen, and require the recovered state to be identical
// to a serial oracle replay of the committed prefix. The tolerance is
// exactly one statement: a crash after the commit record is durable but
// before the acknowledgment means acked ≤ committed ≤ acked+1.
func TestCrashRecoveryTorture(t *testing.T) {
	crashPoints := []struct {
		name string
		op   FaultOp
		torn bool
	}{
		{"wal-append", FaultWALAppend, false},
		{"wal-sync", FaultWALSync, false},
		{"page-write", FaultPageWrite, false},
		{"torn-page", FaultPageWrite, true},
	}
	oracles := map[int]map[string][]string{}
	oracle := func(p int) map[string][]string {
		if s, ok := oracles[p]; ok {
			return s
		}
		s := tortureOracle(t, p)
		oracles[p] = s
		return s
	}

	for _, cp := range crashPoints {
		t.Run(cp.name, func(t *testing.T) {
			fired := 0
			for k := int64(0); k < 512; k++ {
				fs := disk.NewMemFS()
				db := diskDB(t, fs)
				// Empty Table matches every table — including the commit
				// and DDL records the store logs without one.
				db.InjectFaults(&Fault{Op: cp.op, After: k, Crash: true, Torn: cp.torn})
				acked, crashed := runTortureWorkload(t, db)
				if !crashed {
					if acked != len(tortureWorkload) {
						t.Fatalf("k=%d: clean run acked %d/%d statements", k, acked, len(tortureWorkload))
					}
					if fired == 0 {
						t.Fatalf("%s fault never fired", cp.op)
					}
					return // schedule exhausted: every ordinal covered
				}
				fired++

				// The machine dies: all unsynced state vanishes.
				fs.Crash()
				rec := diskDB(t, fs)
				got := contentSnapshot(t, rec)
				if !reflect.DeepEqual(got, oracle(acked)) && !reflect.DeepEqual(got, oracle(acked+1)) {
					t.Fatalf("%s k=%d: recovered state matches neither oracle(%d) nor oracle(%d):\ngot: %v\no%d: %v\no%d: %v",
						cp.op, k, acked, acked+1, got, acked, oracle(acked), acked+1, oracle(acked+1))
				}
				checkIndexConsistency(t, rec)
				if n := rec.Faults(); n != nil && n.OpenIterators() != 0 {
					t.Fatalf("k=%d: %d iterators leaked across recovery", k, n.OpenIterators())
				}
				// The recovered store must be fully usable.
				if acked >= 3 { // items exists
					mustExec(t, rec, `INSERT INTO items VALUES (9000, 1, 'post')`)
					res := mustExec(t, rec, `SELECT tag FROM items WHERE id = 9000`)
					if len(res.Rows) != 1 {
						t.Fatalf("k=%d: post-recovery statement lost: %v", k, res.Rows)
					}
				}
				if err := rec.Close(); err != nil {
					t.Fatalf("k=%d: close recovered db: %v", k, err)
				}
			}
			t.Fatalf("%s crash schedule not exhausted after 512 ordinals", cp.op)
		})
	}
}

// TestCrashedStoreRefusesWork: after a crash fault poisons the store,
// every further statement fails fast with ErrCrashed until reopen.
func TestCrashedStoreRefusesWork(t *testing.T) {
	fs := disk.NewMemFS()
	db := diskDB(t, fs)
	mustExec(t, db, `CREATE TABLE t (a INT)`)
	db.InjectFaults(&Fault{Op: FaultWALAppend, Crash: true})
	if _, err := db.Exec(`INSERT INTO t VALUES (1)`, nil); err == nil {
		t.Fatal("armed crash fault did not fire")
	}
	if !db.Store().Crashed() {
		t.Fatal("store not poisoned")
	}
	db.ClearFaults()
	if _, err := db.Exec(`INSERT INTO t VALUES (2)`, nil); !errors.Is(err, disk.ErrCrashed) {
		t.Fatalf("statement on crashed store: %v, want ErrCrashed", err)
	}
	// SELECTs don't touch the WAL and still serve from the cache/pool —
	// matching a real database that stays up read-only after log loss is
	// detected? No: the whole store is poisoned, but reads need no
	// statement bracket. The contract is only that mutations fail.
	fs.Crash()
	db2 := diskDB(t, fs)
	mustExec(t, db2, `INSERT INTO t VALUES (3)`)
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}
