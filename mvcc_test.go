package starburst

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// This file is the MVCC schedule gate (`make mvcc`, run under -race):
// a randomized concurrent-schedule generator drives snapshot readers,
// batch writers, conflicting writers and DDL against one shared
// database, and a history checker validates snapshot isolation over
// what actually happened:
//
//   - atomicity: a writer transaction's batch is all-or-nothing in
//     every view that ever observes it;
//   - stability: repeated reads inside one snapshot transaction are
//     identical, no matter what commits (or which catalog generations
//     publish) around it;
//   - exactness: once every goroutine joins, the final state is
//     precisely the set of committed batches — rolled-back and
//     conflict-aborted work left no trace;
//   - lost-update freedom: a contended counter ends exactly at the
//     number of successful commits, every loser having seen a
//     first-writer-wins conflict.

// mvccBatchRows is the rows-per-transaction unit of atomicity the
// checker asserts on.
const mvccBatchRows = 4

// mvccSchedule parameterizes one randomized run.
type mvccSchedule struct {
	seed        int64
	writers     int  // batch writers on ledger
	readers     int  // snapshot readers asserting stability
	conflictors int  // contended-counter writers
	ddl         bool // concurrent CREATE INDEX / ANALYZE / DROP INDEX
	rollbackPct int  // % of writer transactions that roll back
	rounds      int  // batches per writer / scans per reader
}

// mvccHistory records committed batches as their commits return, so
// the checker can compare the final state against exactly what was
// supposed to survive.
type mvccHistory struct {
	mu        sync.Mutex
	committed map[[2]int]bool
	commits   int // successful counter commits
}

func (h *mvccHistory) commit(writer, batch int) {
	h.mu.Lock()
	h.committed[[2]int{writer, batch}] = true
	h.mu.Unlock()
}

// scanBatches materializes ledger as per-(writer,batch) row counts
// through any query entry point (a Tx, a Session, or the DB itself).
func scanBatches(t *testing.T, q func(string, map[string]Value) (*Result, error)) map[[2]int]int {
	t.Helper()
	res, err := q(`SELECT writer, batch FROM ledger`, nil)
	if err != nil {
		t.Fatalf("ledger scan: %v", err)
	}
	out := make(map[[2]int]int)
	for _, row := range res.Rows {
		out[[2]int{int(row[0].Int()), int(row[1].Int())}]++
	}
	return out
}

// checkAtomic asserts every observed batch is complete: a reader that
// can see part of a transaction's batch has seen a torn commit.
func checkAtomic(t *testing.T, view map[[2]int]int, where string) {
	t.Helper()
	for key, n := range view {
		if n != mvccBatchRows {
			t.Errorf("%s: batch writer=%d batch=%d visible with %d of %d rows (torn transaction)",
				where, key[0], key[1], n, mvccBatchRows)
		}
	}
}

func runMVCCSchedule(t *testing.T, sc mvccSchedule) {
	db := Open()
	mustExec(t, db, `CREATE TABLE ledger (writer INT NOT NULL, batch INT NOT NULL, amt INT)`)
	mustExec(t, db, `CREATE TABLE counter (id INT NOT NULL, v INT)`)
	mustExec(t, db, `INSERT INTO counter VALUES (1, 0)`)

	hist := &mvccHistory{committed: map[[2]int]bool{}}
	ctx := context.Background()
	var wg sync.WaitGroup

	// Batch writers: each transaction inserts one complete batch, then
	// commits or rolls back at random. Distinct (writer,batch) keys mean
	// writers never contend with each other.
	for w := 0; w < sc.writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(sc.seed + int64(w)))
			for b := 0; b < sc.rounds; b++ {
				tx, err := db.Begin(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < mvccBatchRows; i++ {
					stmt := fmt.Sprintf(`INSERT INTO ledger VALUES (%d, %d, %d)`, w, b, rng.Intn(100))
					if _, err := tx.Exec(stmt, nil); err != nil {
						t.Errorf("writer %d batch %d: %v", w, b, err)
						_ = tx.Rollback()
						return
					}
				}
				// A failed statement must leave the transaction usable.
				if rng.Intn(4) == 0 {
					if _, err := tx.Exec(`SELECT nosuch FROM ledger`, nil); err == nil {
						t.Error("statement against a missing column succeeded")
					}
				}
				// Own-write visibility before the batch publishes.
				own := scanBatches(t, tx.Exec)
				if own[[2]int{w, b}] != mvccBatchRows {
					t.Errorf("writer %d batch %d: sees %d of its own rows", w, b, own[[2]int{w, b}])
				}
				if rng.Intn(100) < sc.rollbackPct {
					if err := tx.Rollback(); err != nil {
						t.Errorf("writer %d rollback: %v", w, err)
					}
					continue
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("writer %d commit: %v", w, err)
					continue
				}
				hist.commit(w, b)
			}
		}(w)
	}

	// Snapshot readers: every pair of scans inside one transaction must
	// be identical, and every visible batch complete.
	for r := 0; r < sc.readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < sc.rounds; i++ {
				tx, err := db.Begin(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				first := scanBatches(t, tx.Exec)
				checkAtomic(t, first, fmt.Sprintf("reader %d scan 1", r))
				second := scanBatches(t, tx.Exec)
				if len(first) != len(second) {
					t.Errorf("reader %d: snapshot moved between reads: %d batches then %d", r, len(first), len(second))
				} else {
					for key, n := range first {
						if second[key] != n {
							t.Errorf("reader %d: batch %v changed between reads: %d then %d rows", r, key, n, second[key])
						}
					}
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("reader %d commit: %v", r, err)
				}
			}
		}(r)
	}

	// Conflictors: hammer one row. Losers must fail with
	// ErrWriteConflict and retry on a fresh snapshot; the final counter
	// value must equal the number of successful commits exactly.
	for c := 0; c < sc.conflictors; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for done := 0; done < sc.rounds; {
				tx, err := db.Begin(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				_, err = tx.Exec(`UPDATE counter SET v = v + 1 WHERE id = 1`, nil)
				if err == nil {
					err = tx.Commit()
					if err == nil {
						hist.mu.Lock()
						hist.commits++
						hist.mu.Unlock()
						done++
						continue
					}
				} else {
					_ = tx.Rollback()
				}
				if !errors.Is(err, ErrWriteConflict) {
					t.Errorf("conflictor %d: %v, want ErrWriteConflict", c, err)
					return
				}
			}
		}(c)
	}

	// DDL: publish catalog generations under the readers' feet. Every
	// statement auto-commits; open snapshots must neither block it nor
	// observe it.
	if sc.ddl {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < sc.rounds; i++ {
				ix := fmt.Sprintf(`mvcc_ix_%d`, i)
				if _, err := db.Exec(`CREATE INDEX `+ix+` ON ledger (writer)`, nil); err != nil {
					t.Errorf("create index: %v", err)
					return
				}
				if i%2 == 0 {
					if _, err := db.Exec(`ANALYZE ledger`, nil); err != nil {
						t.Errorf("analyze: %v", err)
						return
					}
				}
				if _, err := db.Exec(`DROP INDEX `+ix+` ON ledger`, nil); err != nil {
					t.Errorf("drop index: %v", err)
					return
				}
			}
		}()
	}

	wg.Wait()

	// Exactness: the final state is precisely the committed history.
	final := scanBatches(t, db.Exec)
	checkAtomic(t, final, "final state")
	hist.mu.Lock()
	defer hist.mu.Unlock()
	for key := range hist.committed {
		if final[key] != mvccBatchRows {
			t.Errorf("committed batch writer=%d batch=%d missing from final state (%d rows)", key[0], key[1], final[key])
		}
	}
	for key := range final {
		if !hist.committed[key] {
			t.Errorf("uncommitted batch writer=%d batch=%d leaked into final state", key[0], key[1])
		}
	}
	if sc.conflictors > 0 {
		res, err := db.Exec(`SELECT v FROM counter WHERE id = 1`, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := int(res.Rows[0][0].Int()); got != hist.commits {
			t.Errorf("lost update: counter = %d, %d commits succeeded", got, hist.commits)
		}
	}
}

func TestMVCCRandomSchedules(t *testing.T) {
	base := int64(20260808)
	t.Run("readers-during-ddl", func(t *testing.T) {
		t.Parallel()
		runMVCCSchedule(t, mvccSchedule{
			seed: base, writers: 3, readers: 3, ddl: true, rollbackPct: 10, rounds: 8,
		})
	})
	t.Run("write-write-conflict", func(t *testing.T) {
		t.Parallel()
		runMVCCSchedule(t, mvccSchedule{
			seed: base + 100, writers: 1, readers: 1, conflictors: 4, rounds: 6,
		})
	})
	t.Run("rollback-heavy", func(t *testing.T) {
		t.Parallel()
		runMVCCSchedule(t, mvccSchedule{
			seed: base + 200, writers: 4, readers: 2, rollbackPct: 50, rounds: 10,
		})
	})
}

// TestMVCCRollbackMidStatement drives a storage fault into the middle
// of a multi-row UPDATE inside an open transaction: the statement must
// roll back atomically, the transaction must survive and stay usable,
// and its eventual rollback must leave no trace of anything.
func TestMVCCRollbackMidStatement(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE r (id INT NOT NULL, v INT)`)
	for i := 0; i < 5; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO r VALUES (%d, 0)`, i))
	}

	tx, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO r VALUES (100, 1)`, nil); err != nil {
		t.Fatal(err)
	}

	// Fail the UPDATE after two of six rows.
	db.InjectFaults(&Fault{Table: "r", Op: FaultUpdate, After: 2, Err: "boom"})
	if _, err := tx.Exec(`UPDATE r SET v = v + 10`, nil); err == nil {
		t.Fatal("faulted UPDATE succeeded")
	}
	db.DetachFaults()

	// Statement atomicity: none of the partial updates survive inside
	// the transaction's own view; the earlier insert does.
	if got := txCount(t, tx.Exec, `SELECT COUNT(*) FROM r WHERE v >= 10`); got != 0 {
		t.Fatalf("mid-statement fault left %d partially updated rows visible", got)
	}
	if got := txCount(t, tx.Exec, `SELECT COUNT(*) FROM r WHERE id = 100`); got != 1 {
		t.Fatalf("statement rollback took the transaction's earlier write with it")
	}

	// The transaction survives its failed statement.
	if _, err := tx.Exec(`UPDATE r SET v = 7 WHERE id = 0`, nil); err != nil {
		t.Fatalf("transaction unusable after mid-statement fault: %v", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	// Nothing leaked: 5 original rows, all untouched.
	if got := txCount(t, db.Exec, `SELECT COUNT(*) FROM r`); got != 5 {
		t.Fatalf("final row count %d, want 5", got)
	}
	if got := txCount(t, db.Exec, `SELECT COUNT(*) FROM r WHERE v = 0`); got != 5 {
		t.Fatalf("rollback left modified rows behind")
	}
}
