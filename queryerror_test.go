package starburst

import (
	"context"
	"errors"
	"testing"
)

// Every public entry point must report failures as *QueryError, with
// the phase filled in and the typed cause still reachable through
// errors.As/errors.Is. This is the conformance suite for that error
// contract across the fault matrix: parse, semantic, DDL, budget,
// injected-fault and cancellation failures, through every entry point.

func asQueryError(t *testing.T, err error, wantPhase string) *QueryError {
	t.Helper()
	if err == nil {
		t.Fatal("want an error, got nil")
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("error does not wrap *QueryError: %T: %v", err, err)
	}
	if wantPhase != "" && qe.Phase != wantPhase {
		t.Fatalf("want phase %q, got %q (%v)", wantPhase, qe.Phase, err)
	}
	return qe
}

func errorDB(t *testing.T) *DB {
	t.Helper()
	db := Open(WithPlanCache(8))
	db.MustExec(`CREATE TABLE items (id INT, qty INT)`, nil)
	for i := 0; i < 8; i++ {
		db.MustExec(`INSERT INTO items VALUES (1, 2)`, nil)
	}
	return db
}

func TestQueryErrorEveryEntryPoint(t *testing.T) {
	db := errorDB(t)
	sess := db.NewSession()
	ctx := context.Background()
	const bad = `SELEC id FROM items`

	_, err := db.Query(ctx, bad, nil)
	asQueryError(t, err, "parse")
	_, err = db.Exec(bad, nil)
	asQueryError(t, err, "parse")
	_, err = db.ExecContext(ctx, bad, nil)
	asQueryError(t, err, "parse")
	_, err = sess.Query(ctx, bad, nil)
	asQueryError(t, err, "parse")
	_, err = sess.Exec(bad, nil)
	asQueryError(t, err, "parse")
	_, err = db.Prepare(bad)
	asQueryError(t, err, "parse")
	_, err = sess.Prepare(bad)
	asQueryError(t, err, "parse")
}

func TestQueryErrorPhases(t *testing.T) {
	db := errorDB(t)
	ctx := context.Background()

	// Semantic analysis failures count as parse (Figure 1 folds them).
	_, err := db.Query(ctx, `SELECT id FROM no_such_table`, nil)
	asQueryError(t, err, "parse")

	// DDL failures carry the ddl phase.
	_, err = db.Query(ctx, `CREATE TABLE items (id INT)`, nil)
	asQueryError(t, err, "ddl")
	_, err = db.Query(ctx, `CREATE TABLE other (id NO_SUCH_TYPE)`, nil)
	asQueryError(t, err, "ddl")
	_, err = db.Query(ctx, `DROP TABLE no_such_table`, nil)
	asQueryError(t, err, "ddl")
	_, err = db.Query(ctx, `ANALYZE no_such_table`, nil)
	asQueryError(t, err, "ddl")

	// Execution failures carry exec and unwrap to their typed cause.
	tight := db.NewSession()
	tight.SetLimits(Limits{MaxMem: 10})
	_, err = tight.Query(ctx, `SELECT id FROM items ORDER BY qty`, nil)
	qe := asQueryError(t, err, "exec")
	var rerr *ResourceError
	if !errors.As(qe, &rerr) || rerr.Budget != "mem" {
		t.Fatalf("want ResourceError(mem) through the chain, got %v", err)
	}
}

func TestQueryErrorInjectedFault(t *testing.T) {
	db := errorDB(t)
	db.InjectFaults(&Fault{Table: "items", Op: FaultScan, Err: "boom"})
	defer db.DetachFaults()
	_, err := db.Query(context.Background(), `SELECT id FROM items`, nil)
	qe := asQueryError(t, err, "exec")
	var ferr *FaultError
	if !errors.As(qe, &ferr) {
		t.Fatalf("want FaultError through the chain, got %v", err)
	}
}

func TestQueryErrorCancellation(t *testing.T) {
	db := errorDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A pre-cancelled context may still lose the race on a tiny table,
	// but when it errors the cause must be context.Canceled.
	_, err := db.Query(ctx, `SELECT a.id FROM items a, items b, items c`, nil)
	if err == nil {
		t.Skip("tiny statement finished before the cancellation check")
	}
	asQueryError(t, err, "exec")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled through the chain, got %v", err)
	}
}

func TestQueryErrorPreparedRun(t *testing.T) {
	db := errorDB(t)
	st, err := db.Prepare(`SELECT id FROM items ORDER BY qty`)
	if err != nil {
		t.Fatal(err)
	}
	sess := db.NewSession()
	sess.SetLimits(Limits{MaxMem: 10})
	stSess, err := sess.Prepare(`SELECT id FROM items ORDER BY qty`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = stSess.Query(context.Background(), nil)
	qe := asQueryError(t, err, "exec")
	var rerr *ResourceError
	if !errors.As(qe, &rerr) {
		t.Fatalf("want ResourceError, got %v", err)
	}
	// The DB-scoped statement stays unlimited: snapshots are per-owner.
	if _, err := st.Run(nil); err != nil {
		t.Fatalf("DB-scoped prepared statement was throttled: %v", err)
	}
}

// Panic capture keeps its original shape: phase + operator + stack,
// still a *QueryError.
func TestQueryErrorPanicShape(t *testing.T) {
	db := errorDB(t)
	if err := db.RegisterScalarFunc(&ScalarFunc{
		Name: "KABOOM", MinArgs: 1, MaxArgs: 1,
		ReturnType: func(args []TypeID) (TypeID, error) { return args[0], nil },
		Eval:       func(args []Value) (Value, error) { panic("kaboom") },
	}); err != nil {
		t.Fatal(err)
	}
	_, err := db.Query(context.Background(), `SELECT KABOOM(id) FROM items`, nil)
	qe := asQueryError(t, err, "exec")
	if qe.Value == nil || len(qe.Stack) == 0 {
		t.Fatalf("captured panic must carry value and stack: %+v", qe)
	}
}
