package starburst

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/datum"
)

// This file is the database/sql bridge: a minimal driver registered
// under the name "starburst", so standard-library callers can reach a
// DB through the interface every Go database client already speaks:
//
//	sdb, _ := sql.Open("starburst", "demo")
//	sdb.Exec(`CREATE TABLE t (a INT)`)
//	rows, _ := sdb.Query(`SELECT a FROM t WHERE a > :p1`, 7)
//
// The DSN names a database: RegisterDSN binds a name to an existing
// *DB (sharing its catalog, extensions and plan cache with native
// callers); an unregistered name creates a fresh DB on first open and
// memoizes it, so every connection in the pool reaches the same
// instance. Each driver connection wraps its own Session.
//
// Parameters: sql.Named("x", v) binds :x; positional arguments bind
// :p1, :p2, ... in order. Transactions map onto the engine's MVCC
// snapshot transactions: sdb.BeginTx opens a Session transaction, and
// sql.LevelDefault / LevelSnapshot / LevelRepeatableRead select
// snapshot isolation while sql.LevelReadCommitted selects per-statement
// snapshots. Read-only transaction requests are accepted (every
// transaction reads from a stable snapshot; writes are simply never
// issued by the caller).

// DriverName is the name this package registers with database/sql.
const DriverName = "starburst"

// Driver is the database/sql/driver implementation.
type Driver struct{}

func init() { sql.Register(DriverName, Driver{}) }

var (
	dsnMu  sync.Mutex
	dsnDBs = map[string]*DB{}
)

// RegisterDSN binds a DSN name to an existing DB, so database/sql
// connections share it with native API callers. Registering again
// replaces the binding; already-open connections keep their sessions.
func RegisterDSN(name string, db *DB) {
	dsnMu.Lock()
	defer dsnMu.Unlock()
	dsnDBs[name] = db
}

// dbForDSN resolves a DSN, creating and memoizing a fresh DB for names
// never registered — sql.Open("starburst", "anything") just works, and
// every pooled connection under one name shares one DB.
func dbForDSN(dsn string) *DB {
	dsnMu.Lock()
	defer dsnMu.Unlock()
	db, ok := dsnDBs[dsn]
	if !ok {
		db = Open()
		dsnDBs[dsn] = db
	}
	return db
}

// Open implements driver.Driver; database/sql calls it once per pooled
// connection.
func (Driver) Open(dsn string) (driver.Conn, error) {
	return &sqlConn{sess: dbForDSN(dsn).NewSession()}, nil
}

// sqlConn is one pooled connection: a Session on the shared DB.
type sqlConn struct {
	sess *Session
}

var errClosed = errors.New("starburst: driver connection is closed")

// Prepare implements driver.Conn.
func (c *sqlConn) Prepare(query string) (driver.Stmt, error) {
	if c.sess == nil {
		return nil, errClosed
	}
	st, err := c.sess.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &sqlStmt{st: st}, nil
}

// Close implements driver.Conn.
func (c *sqlConn) Close() error {
	c.sess = nil
	return nil
}

// Begin implements driver.Conn (legacy entry point; database/sql
// prefers BeginTx).
func (c *sqlConn) Begin() (driver.Tx, error) {
	return c.BeginTx(context.Background(), driver.TxOptions{})
}

// BeginTx implements driver.ConnBeginTx: it opens an engine
// transaction on this connection's session, mapping the
// database/sql isolation level onto the engine's.
func (c *sqlConn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	if c.sess == nil {
		return nil, errClosed
	}
	iso, err := mapIsolation(sql.IsolationLevel(opts.Isolation))
	if err != nil {
		return nil, err
	}
	tx, err := c.sess.Begin(ctx, WithIsolation(iso))
	if err != nil {
		return nil, err
	}
	return sqlTx{tx: tx}, nil
}

// mapIsolation translates database/sql isolation levels to the
// engine's. Snapshot isolation is the engine default and also serves
// repeatable read (a snapshot never re-reads differently); levels the
// engine cannot honor are rejected rather than silently weakened.
func mapIsolation(l sql.IsolationLevel) (IsolationLevel, error) {
	switch l {
	case sql.LevelDefault, sql.LevelSnapshot, sql.LevelRepeatableRead:
		return LevelSnapshot, nil
	case sql.LevelReadCommitted:
		return LevelReadCommitted, nil
	default:
		return 0, fmt.Errorf("starburst: isolation level %s is not supported", l)
	}
}

// sqlTx adapts an engine Tx to driver.Tx. Statements issued on the
// connection while the transaction is open run inside it: the session
// routes them to its open transaction.
type sqlTx struct {
	tx *Tx
}

// Commit implements driver.Tx.
func (t sqlTx) Commit() error { return t.tx.Commit() }

// Rollback implements driver.Tx.
func (t sqlTx) Rollback() error { return t.tx.Rollback() }

// QueryContext implements driver.QueryerContext, so un-prepared
// queries (including EXPLAIN) skip the prepare round trip.
func (c *sqlConn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	res, err := c.run(ctx, query, args)
	if err != nil {
		return nil, err
	}
	return &sqlRows{res: res}, nil
}

// ExecContext implements driver.ExecerContext; DDL and DML statements
// land here, bypassing Prepare (which compiles DML only).
func (c *sqlConn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	res, err := c.run(ctx, query, args)
	if err != nil {
		return nil, err
	}
	return sqlResult{affected: res.Affected}, nil
}

func (c *sqlConn) run(ctx context.Context, query string, args []driver.NamedValue) (*Result, error) {
	if c.sess == nil {
		return nil, errClosed
	}
	params, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	return c.sess.Query(ctx, query, params)
}

// sqlStmt adapts a prepared Stmt to driver.Stmt.
type sqlStmt struct {
	st *Stmt
}

// Close implements driver.Stmt; compiled plans carry no resources.
func (s *sqlStmt) Close() error { return nil }

// NumInput implements driver.Stmt; -1 skips the placeholder count
// check (named parameters make the count text-dependent).
func (s *sqlStmt) NumInput() int { return -1 }

// Exec implements driver.Stmt.
func (s *sqlStmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.ExecContext(context.Background(), positional(args))
}

// Query implements driver.Stmt.
func (s *sqlStmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.QueryContext(context.Background(), positional(args))
}

// ExecContext implements driver.StmtExecContext.
func (s *sqlStmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	res, err := s.run(ctx, args)
	if err != nil {
		return nil, err
	}
	return sqlResult{affected: res.Affected}, nil
}

// QueryContext implements driver.StmtQueryContext.
func (s *sqlStmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	res, err := s.run(ctx, args)
	if err != nil {
		return nil, err
	}
	return &sqlRows{res: res}, nil
}

func (s *sqlStmt) run(ctx context.Context, args []driver.NamedValue) (*Result, error) {
	params, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	return s.st.Query(ctx, params)
}

// positional rebuilds NamedValues from legacy ordinal-only args.
func positional(args []driver.Value) []driver.NamedValue {
	out := make([]driver.NamedValue, len(args))
	for i, v := range args {
		out[i] = driver.NamedValue{Ordinal: i + 1, Value: v}
	}
	return out
}

// bindArgs converts driver arguments to host-variable bindings:
// sql.Named values keep their names, positional values become p1, p2,
// ... matching :p1-style references in the statement text.
func bindArgs(args []driver.NamedValue) (map[string]Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	params := make(map[string]Value, len(args))
	for _, a := range args {
		v, err := toDatum(a.Value)
		if err != nil {
			return nil, err
		}
		name := a.Name
		if name == "" {
			name = fmt.Sprintf("p%d", a.Ordinal)
		}
		params[name] = v
	}
	return params, nil
}

// toDatum converts one driver.Value (already normalized by
// database/sql to the driver-value types) to a datum.
func toDatum(v driver.Value) (Value, error) {
	switch x := v.(type) {
	case nil:
		return Null, nil
	case bool:
		return NewBool(x), nil
	case int64:
		return NewInt(x), nil
	case float64:
		return NewFloat(x), nil
	case string:
		return NewString(x), nil
	case []byte:
		return NewString(string(x)), nil
	}
	return Null, fmt.Errorf("starburst: unsupported driver argument type %T", v)
}

// fromDatum converts a result datum to a driver.Value.
func fromDatum(v Value) driver.Value {
	switch v.Type() {
	case datum.TNull:
		return nil
	case datum.TBool:
		return v.Bool()
	case datum.TInt:
		return v.Int()
	case datum.TFloat:
		return v.Float()
	case datum.TString:
		return v.Str()
	}
	// Externally defined types surface through their string rendering.
	return v.String()
}

// sqlRows adapts a materialized Result to driver.Rows.
type sqlRows struct {
	res *Result
	i   int
}

// Columns implements driver.Rows.
func (r *sqlRows) Columns() []string { return r.res.Columns }

// Close implements driver.Rows.
func (r *sqlRows) Close() error {
	r.i = len(r.res.Rows)
	return nil
}

// Next implements driver.Rows.
func (r *sqlRows) Next(dest []driver.Value) error {
	if r.i >= len(r.res.Rows) {
		return io.EOF
	}
	row := r.res.Rows[r.i]
	r.i++
	for j := range dest {
		dest[j] = fromDatum(row[j])
	}
	return nil
}

// sqlResult implements driver.Result.
type sqlResult struct {
	affected int64
}

// LastInsertId implements driver.Result; the dialect has no rowids.
func (sqlResult) LastInsertId() (int64, error) {
	return 0, errors.New("starburst: LastInsertId is not supported")
}

// RowsAffected implements driver.Result.
func (r sqlResult) RowsAffected() (int64, error) { return r.affected, nil }
