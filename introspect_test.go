package starburst

// Introspection tests: the SYS virtual tables end to end through the
// normal query pipeline, wait-event profiling and per-statement
// attribution, statement span export, write rejection, and fault- and
// cancel-safety mid-scan. `make introspect` runs these in CI.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
)

// sysTables lists every SYS relation; tests that sweep the schema use
// it so a newly added table cannot dodge the safety gates.
var sysTables = []string{
	"SYS.STATEMENTS", "SYS.SESSIONS", "SYS.PLAN_CACHE",
	"SYS.BUFPOOL", "SYS.WAL", "SYS.METRICS", "SYS.WAITS",
}

// sysDB opens a durable DB with a plan cache, an open session, and a
// little executed work, so every SYS table has at least one row.
func sysDB(t testing.TB) (*DB, *Session) {
	t.Helper()
	db := Open(WithDataDir(t.TempDir()), WithDefaultStorage("DISK"), WithPlanCache(8))
	if err := db.OpenErr(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	mustExec(t, db, `CREATE TABLE parts (partno INT, qty INT, type STRING)`)
	mustExec(t, db, `INSERT INTO parts VALUES (1, 10, 'CPU'), (2, 0, 'DISK'), (3, 7, 'CPU')`)
	sess := db.NewSession()
	t.Cleanup(sess.Close)
	for i := 0; i < 2; i++ { // twice: the second run hits the plan cache
		if _, err := sess.Query(context.Background(), `SELECT type, SUM(qty) FROM parts GROUP BY type`, nil); err != nil {
			t.Fatal(err)
		}
	}
	return db, sess
}

func TestSysStatementsThroughPipeline(t *testing.T) {
	db, _ := sysDB(t)

	// The ISSUE's marquee query: ordinary SQL over live engine state.
	res := mustExec(t, db,
		`SELECT name, kind, calls, rows, total_ns FROM SYS.STATEMENTS ORDER BY total_ns DESC LIMIT 10`)
	if len(res.Rows) == 0 {
		t.Fatal("SYS.STATEMENTS is empty")
	}
	var prev int64 = 1<<63 - 1
	byName := map[string][]Value{}
	for _, r := range res.Rows {
		if ns := r[4].Int(); ns > prev {
			t.Fatalf("ORDER BY total_ns DESC violated: %d after %d", ns, prev)
		} else {
			prev = ns
		}
		byName[r[0].Str()] = r
	}
	ins := byName[`INSERT INTO PARTS VALUES (1, 10,'CPU'), (2, 0,'DISK'), (3, 7,'CPU')`]
	if ins == nil {
		t.Fatalf("INSERT not in SYS.STATEMENTS: %v", byName)
	}
	if got := ins[1].Str(); got != "INSERT" {
		t.Errorf("kind = %q, want INSERT", got)
	}
	if got := ins[3].Int(); got != 3 {
		t.Errorf("rows = %d, want 3", got)
	}
	sel := byName[`SELECT TYPE, SUM(QTY) FROM PARTS GROUP BY TYPE`]
	if sel == nil || sel[2].Int() != 2 {
		t.Fatalf("repeated SELECT not aggregated to calls=2: %v", sel)
	}

	// Errors are counted against the normalized statement, and the
	// failing statement itself becomes queryable.
	if _, err := db.Exec(`SELECT nope FROM parts`, nil); err == nil {
		t.Fatal("want error")
	}
	res = mustExec(t, db, `SELECT errors FROM SYS.STATEMENTS WHERE name = 'SELECT NOPE FROM PARTS'`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("failing statement not recorded with errors=1: %v", res.Rows)
	}

	// Plan-cache hits surface per statement.
	res = mustExec(t, db,
		`SELECT plan_cache_hits FROM SYS.STATEMENTS WHERE name = 'SELECT TYPE, SUM(QTY) FROM PARTS GROUP BY TYPE'`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() < 1 {
		t.Fatalf("plan_cache_hits not recorded: %v", res.Rows)
	}
}

func TestSysSessionsAndPlanCache(t *testing.T) {
	db, sess := sysDB(t)

	res := mustExec(t, db, fmt.Sprintf(
		`SELECT state, dop, statements FROM SYS.SESSIONS WHERE id = %d`, sess.ID()))
	if len(res.Rows) != 1 {
		t.Fatalf("session %d not in SYS.SESSIONS: %v", sess.ID(), res.Rows)
	}
	if got := res.Rows[0][0].Str(); got != "idle" {
		t.Errorf("state = %q, want idle", got)
	}
	if got := res.Rows[0][2].Int(); got != 2 {
		t.Errorf("statements = %d, want 2", got)
	}

	// The cached SELECT appears with its hit count.
	res = mustExec(t, db,
		`SELECT name, kind, hits FROM SYS.PLAN_CACHE WHERE name = 'SELECT TYPE, SUM(QTY) FROM PARTS GROUP BY TYPE'`)
	if len(res.Rows) != 1 || res.Rows[0][2].Int() < 1 {
		t.Fatalf("cached plan missing or hitless: %v", res.Rows)
	}

	// Close unregisters; the row disappears on the next scan.
	sess.Close()
	res = mustExec(t, db, fmt.Sprintf(`SELECT id FROM SYS.SESSIONS WHERE id = %d`, sess.ID()))
	if len(res.Rows) != 0 {
		t.Fatalf("closed session still visible: %v", res.Rows)
	}
}

func TestSysWaitsJoinStatements(t *testing.T) {
	db, _ := sysDB(t)

	// The durable INSERT must have waited on the WAL; the join
	// attributes that wait to the statement that suffered it.
	res := mustExec(t, db, `SELECT s.name, w.event, w.count, w.total_ns
		FROM SYS.WAITS w, SYS.STATEMENTS s
		WHERE w.stmt = s.name AND w.event = 'WAL_APPEND'`)
	found := false
	for _, r := range res.Rows {
		if strings.HasPrefix(r[0].Str(), "INSERT INTO PARTS") {
			found = true
			if r[2].Int() < 1 {
				t.Errorf("WAL_APPEND count = %d, want >= 1", r[2].Int())
			}
		}
	}
	if !found {
		t.Fatalf("no WAL_APPEND wait attributed to the INSERT:\n%v", res.Rows)
	}

	// DB-wide profile rows carry a NULL STMT and cover at least the
	// statement lock, which every statement acquires.
	res = mustExec(t, db, `SELECT event, count FROM SYS.WAITS WHERE stmt IS NULL`)
	events := map[string]int64{}
	for _, r := range res.Rows {
		events[r[0].Str()] = r[1].Int()
	}
	for _, want := range []string{"STMT_LOCK", "WAL_APPEND", "WAL_SYNC"} {
		if events[want] < 1 {
			t.Errorf("global profile missing %s: %v", want, events)
		}
	}
}

func TestSysMetricsAggregate(t *testing.T) {
	db, _ := sysDB(t)

	res := mustExec(t, db, `SELECT kind, COUNT(name) FROM SYS.METRICS GROUP BY kind ORDER BY kind`)
	kinds := map[string]int64{}
	for _, r := range res.Rows {
		kinds[r[0].Str()] = r[1].Int()
	}
	for _, want := range []string{"counter", "gauge", "histogram_bucket"} {
		if kinds[want] < 1 {
			t.Errorf("no %s rows in SYS.METRICS: %v", want, kinds)
		}
	}

	// SYS.METRICS and the Prometheus exposition read the same registry:
	// the statements counter must agree with a SQL aggregate over it.
	res = mustExec(t, db,
		`SELECT SUM(value) FROM SYS.METRICS WHERE name = 'starburst_statements_total'`)
	if len(res.Rows) != 1 || res.Rows[0][0].Float() < 1 {
		t.Fatalf("starburst_statements_total missing from SYS.METRICS: %v", res.Rows)
	}
	var buf bytes.Buffer
	if _, err := db.Metrics().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# HELP starburst_statements_total ") {
		t.Error("engine metrics exposition lacks # HELP for starburst_statements_total")
	}
}

func TestSysRejectsWrites(t *testing.T) {
	db, _ := sysDB(t)
	cases := []struct{ sql, op string }{
		{`INSERT INTO SYS.STATEMENTS (name) VALUES ('x')`, "INSERT"},
		{`UPDATE SYS.STATEMENTS SET calls = 0`, "UPDATE"},
		{`DELETE FROM SYS.WAITS`, "DELETE"},
		{`CREATE TABLE SYS.MINE (a INT)`, "CREATE TABLE"},
		{`DROP TABLE SYS.STATEMENTS`, "DROP TABLE"},
		{`CREATE INDEX six ON SYS.STATEMENTS (name)`, "CREATE INDEX"},
		{`CREATE VIEW SYS.V AS SELECT name FROM SYS.STATEMENTS`, "CREATE VIEW"},
		{`ANALYZE SYS.STATEMENTS`, "ANALYZE"},
	}
	for _, c := range cases {
		_, err := db.Exec(c.sql, nil)
		var soe *catalog.SystemObjectError
		if !errors.As(err, &soe) {
			t.Errorf("%s: want *catalog.SystemObjectError, got %v", c.sql, err)
			continue
		}
		if soe.Op != c.op {
			t.Errorf("%s: rejected op = %q, want %q", c.sql, soe.Op, c.op)
		}
	}
	// The engine is unharmed: SYS still scans, user DML still runs.
	mustExec(t, db, `SELECT name FROM SYS.STATEMENTS`)
	mustExec(t, db, `INSERT INTO parts VALUES (4, 1, 'RAM')`)
}

func TestSysScanFaultAndCancelSafety(t *testing.T) {
	db, _ := sysDB(t)
	db.InjectFaults() // attach the injector (and its iterator tracking)

	for _, table := range sysTables {
		// A scan fault on the first row surfaces as a *FaultError and
		// leaks nothing, for every SYS table.
		db.InjectFaults(&Fault{Table: table, Op: FaultScan, Err: "sysfault"})
		_, err := db.Exec(`SELECT COUNT(*) FROM `+table, nil)
		var fe *FaultError
		if !errors.As(err, &fe) || fe.Table != table {
			t.Fatalf("%s: want *FaultError for the table, got %v", table, err)
		}
		if n := db.Faults().OpenIterators(); n != 0 {
			t.Fatalf("%s: %d iterators leaked after fault", table, n)
		}
		db.ClearFaults()
		// The table scans clean again afterwards.
		mustExec(t, db, `SELECT COUNT(*) FROM `+table)
	}

	// Cancellation mid-scan: a latency fault stalls the SYS scan and the
	// context abort must cut it short without leaking iterators.
	db.InjectFaults(&Fault{Table: "SYS.METRICS", Op: FaultScan, Latency: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := db.Query(ctx, `SELECT name FROM SYS.METRICS`, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if n := db.Faults().OpenIterators(); n != 0 {
		t.Fatalf("%d iterators leaked after cancel", n)
	}
	db.ClearFaults()

	// The tuple budget trips mid-scan of virtual relations too.
	db.SetLimits(Limits{MaxRows: 100})
	_, err = db.Exec(`SELECT COUNT(a.name) FROM SYS.METRICS a, SYS.METRICS b, SYS.METRICS c`, nil)
	var re *ResourceError
	if !errors.As(err, &re) || re.Budget != "rows" {
		t.Fatalf("want ResourceError(rows), got %v", err)
	}
	if n := db.Faults().OpenIterators(); n != 0 {
		t.Fatalf("%d iterators leaked after budget trip", n)
	}
	db.SetLimits(Limits{})
	mustExec(t, db, `SELECT COUNT(name) FROM SYS.METRICS`)
}

func TestSpanExportStructure(t *testing.T) {
	db := robustDB(t)
	var mu sync.Mutex
	var spans []*StatementSpan
	db.SetSpanExporter(func(sp *StatementSpan) {
		mu.Lock()
		spans = append(spans, sp)
		mu.Unlock()
	})
	mustExec(t, db, `SELECT i.id FROM items i, orders o WHERE i.id = o.item`)
	if _, err := db.Exec(`SELECT id FROM nowhere`, nil); err == nil {
		t.Fatal("want error")
	}
	db.SetSpanExporter(nil)
	mustExec(t, db, `SELECT id FROM items`) // after clearing: not exported

	if len(spans) != 2 {
		t.Fatalf("exported %d spans, want 2", len(spans))
	}
	ok, bad := spans[0], spans[1]
	if ok.SQL == "" || ok.Kind != "SELECT" || ok.Error != "" || ok.TotalNanos <= 0 {
		t.Fatalf("root span malformed: %+v", ok)
	}
	if bad.Error == "" {
		t.Fatalf("failed statement span carries no error: %+v", bad)
	}

	// The successful span holds phase children, an operator subtree with
	// row counts, and its wait annotations.
	kinds := map[string]int{}
	var rowsAttr bool
	var walk func(sp *Span)
	walk = func(sp *Span) {
		kinds[sp.Kind]++
		if sp.Kind == "operator" && sp.Attrs["rows"] != "" {
			rowsAttr = true
		}
		if sp.DurNanos < 0 {
			t.Errorf("negative duration on span %s", sp.Name)
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(ok.Root)
	if kinds["phase"] < 4 || kinds["operator"] < 2 || kinds["call"] < 3 {
		t.Fatalf("span tree too sparse: %v", kinds)
	}
	if !rowsAttr {
		t.Fatal("no operator span carries a rows attribute")
	}
	lock := false
	for _, w := range ok.Root.Waits {
		if w.Event == "STMT_LOCK" && w.Count >= 1 {
			lock = true
		}
	}
	if !lock {
		t.Fatalf("root span waits missing STMT_LOCK: %+v", ok.Root.Waits)
	}

	// The wire format round-trips as one JSON document.
	data, err := ok.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("span JSON invalid: %v", err)
	}
	if m["sql"] != ok.SQL {
		t.Fatalf("JSON sql = %v, want %q", m["sql"], ok.SQL)
	}
}

func TestWaitProfileRecordsBlockingSites(t *testing.T) {
	db, _ := sysDB(t)
	for i := 0; i < 8; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO parts VALUES (%d, %d, 'X')`, 100+i, i))
	}
	stats := map[string]WaitStat{}
	for _, st := range db.WaitStats() {
		stats[st.Event.String()] = st
	}
	for _, want := range []string{"WAL_APPEND", "WAL_SYNC", "STMT_LOCK"} {
		st, ok := stats[want]
		if !ok || st.Count < 1 {
			t.Errorf("profile missing %s: %v", want, stats)
			continue
		}
		var bucketed int64
		for _, b := range st.Buckets {
			bucketed += b
		}
		if bucketed != st.Count {
			t.Errorf("%s: histogram holds %d obs, count says %d", want, bucketed, st.Count)
		}
		if st.MaxNanos > st.Nanos {
			t.Errorf("%s: max %d > total %d", want, st.MaxNanos, st.Nanos)
		}
	}
}

// TestSlowQueryLogWaits: at DOP 4 a slow statement emits exactly one
// record, and the record names its top wait events. Run under -race by
// `make introspect`.
func TestSlowQueryLogWaits(t *testing.T) {
	db := robustDB(t)
	db.SetParallelism(4)
	var buf bytes.Buffer
	var mu sync.Mutex
	db.SetSlowQueryLog(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil))
	db.SetSlowQueryThreshold(time.Nanosecond)
	mustExec(t, db, `SELECT i.tag, SUM(o.n) FROM items i, orders o WHERE i.id = o.item GROUP BY i.tag`)
	db.SetSlowQueryThreshold(0)
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if got := strings.Count(out, "slow query"); got != 1 {
		t.Fatalf("%d slow records, want exactly 1:\n%s", got, out)
	}
	if !strings.Contains(out, "wait1.event=") {
		t.Fatalf("slow record names no wait events:\n%s", out)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestSysConcurrentScans: SYS tables are scanned while sessions mutate
// the very state being scanned, at DOP 4. Run under -race by
// `make introspect`; the invariant is simply no race, no error, no
// deadlock (SYS sources never take the statement lock).
func TestSysConcurrentScans(t *testing.T) {
	db, _ := sysDB(t)
	db.SetParallelism(4)
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.NewSession()
			defer sess.Close()
			for i := 0; i < 15; i++ {
				if _, err := sess.Query(context.Background(),
					`SELECT type, SUM(qty) FROM parts GROUP BY type`, nil); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				for _, q := range []string{
					`SELECT name, calls FROM SYS.STATEMENTS`,
					`SELECT stmt, event, count FROM SYS.WAITS`,
					`SELECT id, state FROM SYS.SESSIONS`,
				} {
					if _, err := db.Exec(q, nil); err != nil {
						errc <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
