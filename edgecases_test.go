package starburst

import (
	"fmt"
	"strings"
	"testing"
)

// Edge-case end-to-end coverage beyond the per-experiment tests.

func TestGroupByExpressionKey(t *testing.T) {
	db := paperDB(t)
	// Group by a computed expression; select list repeats it.
	res := mustExec(t, db, `SELECT partno % 2, COUNT(*) FROM quotations
		GROUP BY partno % 2 ORDER BY 1`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %v", res.Rows)
	}
	if res.Rows[0][1].Int() != 4 || res.Rows[1][1].Int() != 4 {
		t.Errorf("even/odd counts = %v", res.Rows)
	}
}

func TestHavingWithSubquery(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, `SELECT type, COUNT(*) FROM inventory GROUP BY type
		HAVING COUNT(*) > (SELECT COUNT(*) FROM inventory WHERE type = 'DISK')`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "CPU" {
		t.Fatalf("having subquery = %v", res.Rows)
	}
}

func TestNestedViews(t *testing.T) {
	db := paperDB(t)
	mustExec(t, db, "CREATE VIEW v1 AS SELECT partno, price FROM quotations WHERE price > 20")
	mustExec(t, db, "CREATE VIEW v2 AS SELECT partno FROM v1 WHERE price < 60")
	mustExec(t, db, "CREATE VIEW v3 AS SELECT partno FROM v2 WHERE partno > 2")
	res := mustExec(t, db, "SELECT partno FROM v3 ORDER BY 1")
	// price = 10p+0.5 → >20 ⇒ p≥2; <60 ⇒ p≤5; >2 ⇒ 3,4,5.
	if !eqInts(intsOf(t, res, 0), []int64{3, 4, 5}) {
		t.Fatalf("nested views = %v", intsOf(t, res, 0))
	}
	// All three views merge into a single box.
	ex := mustExec(t, db, "EXPLAIN SELECT partno FROM v3")
	text := resultText(ex)
	after := text[strings.Index(text, "after rewrite"):]
	if strings.Count(after, "Box") > 3 { // top select + base + header line
		t.Errorf("views did not fully merge:\n%s", after)
	}
}

func TestViewOnViewCycleRejected(t *testing.T) {
	db := paperDB(t)
	// A view can't be created referencing a missing table...
	if _, err := db.Exec("CREATE VIEW bad AS SELECT * FROM missing", nil); err == nil {
		t.Fatal("view over missing table must fail at definition time")
	}
}

func TestInsertFromSetOperation(t *testing.T) {
	db := paperDB(t)
	mustExec(t, db, "CREATE TABLE allparts (p INT)")
	res := mustExec(t, db, `INSERT INTO allparts
		SELECT partno FROM quotations UNION SELECT partno FROM inventory`)
	if res.Affected != 8 {
		t.Fatalf("affected = %d", res.Affected)
	}
}

func TestInsertTypeCoercion(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (f FLOAT, i INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 2.9)") // int→float, float→int
	res := mustExec(t, db, "SELECT f, i FROM t")
	if res.Rows[0][0].Float() != 1.0 || res.Rows[0][1].Int() != 2 {
		t.Fatalf("coercion = %v", res.Rows[0])
	}
}

func TestStringFunctionsEndToEnd(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, `SELECT LOWER(type), LENGTH(type), SUBSTR(type, 1, 2), type || '-x'
		FROM inventory WHERE partno = 1`)
	r := res.Rows[0]
	if r[0].Str() != "cpu" || r[1].Int() != 3 || r[2].Str() != "CP" || r[3].Str() != "CPU-x" {
		t.Fatalf("string funcs = %v", r)
	}
	res = mustExec(t, db, "SELECT COALESCE(NULL, partno, 99) FROM inventory WHERE partno = 2")
	if res.Rows[0][0].Int() != 2 {
		t.Error("coalesce")
	}
	res = mustExec(t, db, "SELECT ABS(0 - partno), SQRT(partno * partno) FROM inventory WHERE partno = 4")
	if res.Rows[0][0].Int() != 4 || res.Rows[0][1].Float() != 4 {
		t.Errorf("abs/sqrt = %v", res.Rows[0])
	}
}

func TestCaseInWhere(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, `SELECT partno FROM inventory
		WHERE CASE WHEN type = 'CPU' THEN onhand_qty ELSE 0 END > 2 ORDER BY 1`)
	if !eqInts(intsOf(t, res, 0), []int64{3, 5}) {
		t.Fatalf("case in where = %v", intsOf(t, res, 0))
	}
}

func TestArithmeticEdge(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE n (a INT, b INT)")
	mustExec(t, db, "INSERT INTO n VALUES (7, 2), (7, 0)")
	// Division by zero is an execution error (DB2 style).
	if _, err := db.Exec("SELECT a / b FROM n", nil); err == nil {
		t.Fatal("division by zero must error")
	}
	res := mustExec(t, db, "SELECT a / b, a % b FROM n WHERE b <> 0")
	if res.Rows[0][0].Int() != 3 || res.Rows[0][1].Int() != 1 {
		t.Errorf("int division = %v", res.Rows[0])
	}
	res = mustExec(t, db, "SELECT -a FROM n WHERE b = 0")
	if res.Rows[0][0].Int() != -7 {
		t.Error("negation")
	}
}

func TestThreeValuedWhereSemantics(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (NULL), (3)")
	// NULL <> 1 is UNKNOWN → row dropped; NOT wraps stay UNKNOWN.
	res := mustExec(t, db, "SELECT a FROM t WHERE a <> 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 {
		t.Fatalf("3VL: %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT a FROM t WHERE NOT (a = 1)")
	if len(res.Rows) != 1 {
		t.Fatalf("NOT 3VL: %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT a FROM t WHERE a IS NULL")
	if len(res.Rows) != 1 || !res.Rows[0][0].IsNull() {
		t.Fatal("IS NULL")
	}
	// NULLs group together.
	mustExec(t, db, "INSERT INTO t VALUES (NULL)")
	res = mustExec(t, db, "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY 1")
	if len(res.Rows) != 3 { // NULL group first
		t.Fatalf("groups = %v", res.Rows)
	}
	if !res.Rows[0][0].IsNull() || res.Rows[0][1].Int() != 2 {
		t.Fatalf("NULL group = %v", res.Rows[0])
	}
	// DISTINCT treats NULLs as identical.
	res = mustExec(t, db, "SELECT DISTINCT a FROM t")
	if len(res.Rows) != 3 {
		t.Fatalf("distinct with NULLs = %v", res.Rows)
	}
}

func TestOuterJoinThenAggregate(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, `SELECT COUNT(*), COUNT(i.onhand_qty) FROM quotations q
		LEFT OUTER JOIN inventory i ON q.partno = i.partno`)
	// COUNT(*) counts all 8; COUNT(col) skips the 3 NULL-extended rows.
	if res.Rows[0][0].Int() != 8 || res.Rows[0][1].Int() != 5 {
		t.Fatalf("outer join aggregate = %v", res.Rows[0])
	}
}

func TestUnionInSubquery(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, `SELECT partno FROM quotations WHERE partno IN
		(SELECT partno FROM inventory WHERE type = 'CPU'
		 UNION SELECT partno FROM inventory WHERE type = 'DISK') ORDER BY 1`)
	if !eqInts(intsOf(t, res, 0), []int64{1, 2, 3, 4, 5}) {
		t.Fatalf("union subquery = %v", intsOf(t, res, 0))
	}
}

func TestDerivedTableWithAggregateJoined(t *testing.T) {
	// Hydrogen's orthogonality: an aggregating derived table joined to
	// a base table (SQL-1989 forbade the equivalent through views).
	db := paperDB(t)
	res := mustExec(t, db, `SELECT q.partno, q.order_qty, t.avg_qty
		FROM quotations q, (SELECT AVG(order_qty) avg_qty FROM quotations) t
		WHERE q.order_qty > t.avg_qty ORDER BY 1`)
	// avg order_qty = 5*(1..8)/8 = 22.5 → parts 5..8.
	if !eqInts(intsOf(t, res, 0), []int64{5, 6, 7, 8}) {
		t.Fatalf("agg derived join = %v", intsOf(t, res, 0))
	}
}

func TestSelfJoinAliases(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, `SELECT a.partno, b.partno FROM inventory a, inventory b
		WHERE a.partno + 1 = b.partno AND a.type = b.type ORDER BY 1`)
	// Same type pairs with consecutive partno: (1,3,5 CPU), (2,4 DISK):
	// consecutive pairs none (1→2 differ). So empty.
	if len(res.Rows) != 0 {
		t.Fatalf("self join = %v", res.Rows)
	}
}

func TestExplainDML(t *testing.T) {
	db := paperDB(t)
	ex := mustExec(t, db, "EXPLAIN UPDATE inventory SET onhand_qty = 0 WHERE type = 'CPU'")
	text := resultText(ex)
	if !strings.Contains(text, "UPDATE") {
		t.Errorf("explain update:\n%s", text)
	}
	ex = mustExec(t, db, "EXPLAIN INSERT INTO inventory VALUES (9, 9, 'X')")
	if !strings.Contains(resultText(ex), "INSERT") {
		t.Error("explain insert")
	}
	// EXPLAIN does not execute.
	res := mustExec(t, db, "SELECT COUNT(*) FROM inventory WHERE partno = 9")
	if res.Rows[0][0].Int() != 0 {
		t.Error("EXPLAIN must not execute the statement")
	}
}

func TestLimitZeroAndParams(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, "SELECT partno FROM quotations LIMIT 0")
	if len(res.Rows) != 0 {
		t.Error("limit 0")
	}
	stmt, err := db.Prepare("SELECT partno FROM quotations ORDER BY partno LIMIT :n")
	if err != nil {
		t.Fatal(err)
	}
	r, err := stmt.Run(map[string]Value{"n": NewInt(2)})
	if err != nil || len(r.Rows) != 2 {
		t.Fatalf("param limit: %v %v", r, err)
	}
	if _, err := stmt.Run(nil); err == nil {
		t.Error("unbound limit param must error")
	}
}

func TestUpdateSwapColumns(t *testing.T) {
	// All SET expressions see the OLD row (simultaneous assignment).
	db := Open()
	mustExec(t, db, "CREATE TABLE t (a INT, b INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 2)")
	mustExec(t, db, "UPDATE t SET a = b, b = a")
	res := mustExec(t, db, "SELECT a, b FROM t")
	if res.Rows[0][0].Int() != 2 || res.Rows[0][1].Int() != 1 {
		t.Fatalf("swap = %v", res.Rows[0])
	}
}

func TestDeleteAllAndReuse(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	res := mustExec(t, db, "DELETE FROM t")
	if res.Affected != 3 {
		t.Fatal("delete all")
	}
	mustExec(t, db, "INSERT INTO t VALUES (9)")
	r := mustExec(t, db, "SELECT COUNT(*) FROM t")
	if r.Rows[0][0].Int() != 1 {
		t.Fatal("reuse after delete")
	}
}

func TestCTEShadowsTable(t *testing.T) {
	// A table expression shadows a stored table of the same name.
	db := paperDB(t)
	res := mustExec(t, db, `WITH inventory AS (SELECT 99 AS partno)
		SELECT partno FROM inventory`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 99 {
		t.Fatalf("cte shadowing = %v", res.Rows)
	}
}

func TestMultipleSubqueriesOneBox(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, `SELECT partno FROM quotations
		WHERE partno IN (SELECT partno FROM inventory WHERE type = 'CPU')
		AND order_qty > (SELECT MIN(onhand_qty) FROM inventory)
		AND EXISTS (SELECT 1 FROM inventory) ORDER BY 1`)
	if !eqInts(intsOf(t, res, 0), []int64{1, 3, 5}) {
		t.Fatalf("multiple subqueries = %v", intsOf(t, res, 0))
	}
}

func TestWideRowAndManyColumns(t *testing.T) {
	db := Open()
	cols := make([]string, 40)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d INT", i)
	}
	mustExec(t, db, "CREATE TABLE wide ("+strings.Join(cols, ", ")+")")
	vals := make([]string, 40)
	for i := range vals {
		vals[i] = fmt.Sprintf("%d", i)
	}
	mustExec(t, db, "INSERT INTO wide VALUES ("+strings.Join(vals, ", ")+")")
	res := mustExec(t, db, "SELECT c39, c0 FROM wide WHERE c20 = 20")
	if res.Rows[0][0].Int() != 39 || res.Rows[0][1].Int() != 0 {
		t.Fatal("wide row")
	}
}

func TestUserDefinedTypeColumnEndToEnd(t *testing.T) {
	// Externally defined column types flow through DDL, storage,
	// comparison and ORDER BY.
	db := Open()
	_, err := db.RegisterType(TypeDef{
		Name:    "MONEY",
		Compare: func(a, b any) int { return int(a.(int64) - b.(int64)) },
		Format:  func(a any) string { return fmt.Sprintf("$%d", a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE prices (id INT, amount MONEY)")
	tbl, _ := db.Catalog().Table("prices")
	for i, cents := range []int64{500, 100, 300} {
		if _, err := db.Catalog().Insert(tbl, Row{NewInt(int64(i)), newMoney(t, db, cents)}); err != nil {
			t.Fatal(err)
		}
	}
	res := mustExec(t, db, "SELECT id FROM prices ORDER BY amount")
	if !eqInts(intsOf(t, res, 0), []int64{1, 2, 0}) {
		t.Fatalf("money order = %v", intsOf(t, res, 0))
	}
	res = mustExec(t, db, "SELECT amount FROM prices WHERE id = 0")
	if res.Rows[0][0].String() != "$500" {
		t.Fatalf("money format = %v", res.Rows[0][0])
	}
}

func newMoney(t *testing.T, db *DB, cents int64) Value {
	t.Helper()
	id, ok := TypeByName("MONEY")
	if !ok {
		t.Fatal("MONEY not registered")
	}
	return NewUser(id, cents)
}

// TestLateralTableExpression: Hydrogen table expressions "may be
// correlated with other parts of the query" (section 2) — a derived
// table in FROM referencing a sibling is applied per outer tuple.
func TestLateralTableExpression(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, `SELECT q.partno, top_inv.onhand_qty
		FROM quotations q,
		     (SELECT onhand_qty FROM inventory i WHERE i.partno = q.partno) top_inv
		ORDER BY 1`)
	// One row per quotation with matching inventory (parts 1..5).
	if !eqInts(intsOf(t, res, 0), []int64{1, 2, 3, 4, 5}) {
		t.Fatalf("lateral = %v", intsOf(t, res, 0))
	}
	for _, r := range res.Rows {
		if r[1].Int() != r[0].Int() {
			t.Fatalf("lateral row mismatch: %v", r)
		}
	}
	// Lateral with an aggregate inside.
	res = mustExec(t, db, `SELECT q.partno, s.total
		FROM quotations q,
		     (SELECT SUM(onhand_qty) total FROM inventory i WHERE i.partno <= q.partno) s
		WHERE q.partno <= 3 ORDER BY 1`)
	want := []int64{1, 3, 6} // prefix sums of 1,2,3
	for i, r := range res.Rows {
		if r[1].Int() != want[i] {
			t.Fatalf("lateral aggregate row %d = %v, want %d", i, r, want[i])
		}
	}
}

// TestBudget1PartialRewriteExecutes: Rule 1 without the merge (a
// correlated setformer) must still produce a runnable, correct plan.
func TestBudget1PartialRewriteExecutes(t *testing.T) {
	db := paperDB(t)
	mustExec(t, db, "CREATE UNIQUE INDEX inv_pk ON inventory (partno)")
	db.Rewrite.Budget = 1
	res := mustExec(t, db, `SELECT partno FROM quotations Q1
		WHERE Q1.partno IN
		  (SELECT partno FROM inventory Q3
		   WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')`)
	if !eqInts(sortedInts(intsOf(t, res, 0)), []int64{1, 3, 5}) {
		t.Fatalf("partial rewrite result = %v", intsOf(t, res, 0))
	}
}

func TestExplainRecursive(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE e (s INT, d INT)")
	mustExec(t, db, "INSERT INTO e VALUES (1, 2)")
	ex := mustExec(t, db, `EXPLAIN WITH RECURSIVE r (s, d) AS (
		SELECT s, d FROM e UNION SELECT r.s, e.d FROM r, e WHERE r.d = e.s)
		SELECT COUNT(*) FROM r`)
	text := resultText(ex)
	for _, want := range []string{"RECUNION", "RECREF", "recursive"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain recursive missing %q", want)
		}
	}
}

func TestSetOpTypeUnification(t *testing.T) {
	db := Open()
	res := mustExec(t, db, "SELECT 1 UNION SELECT 2.5 ORDER BY 1")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[1][0].Float() != 2.5 {
		t.Fatalf("float preserved: %v", res.Rows[1][0])
	}
	// NULL-typed first branch adopts the second branch's type.
	res = mustExec(t, db, "SELECT NULL UNION SELECT 7")
	if len(res.Rows) != 2 {
		t.Fatalf("null union = %v", res.Rows)
	}
}

func TestPrepareRejectsDDL(t *testing.T) {
	db := Open()
	if _, err := db.Prepare("CREATE TABLE t (a INT)"); err == nil {
		t.Fatal("Prepare of DDL must fail")
	}
}

func TestQuantifiedCmpInWrongPosition(t *testing.T) {
	db := paperDB(t)
	// op ALL under OR is not a top-level conjunct: clear error, not a
	// wrong answer.
	if _, err := db.Exec(`SELECT partno FROM quotations
		WHERE partno = 1 OR price > ALL (SELECT price FROM quotations)`, nil); err == nil {
		t.Fatal("quantified comparison under OR must be rejected")
	}
}

func TestScalarSubqueryEmptyIsNull(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, `SELECT partno,
		(SELECT onhand_qty FROM inventory i WHERE i.partno = q.partno) o
		FROM quotations q WHERE partno = 8`)
	if !res.Rows[0][1].IsNull() {
		t.Fatalf("empty scalar subquery must be NULL: %v", res.Rows[0])
	}
}
