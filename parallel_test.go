package starburst

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
)

// This file tests intra-query parallelism end to end: plan shape
// (exchange insertion and its cost gate), result equivalence between
// serial and parallel execution over the random query corpus, exact
// ordering for ORDER BY, early termination for LIMIT, the fault /
// cancellation / budget matrix under concurrent workers, and the
// parallel observability surface. The whole file runs under -race in
// CI, which is half the point.

// genParallelDB is genDB grown past the optimizer's page gate: the
// equivalence corpus tables get enough rows to span multiple simulated
// pages so exchanges are actually inserted (with the threshold lowered
// to 1).
func genParallelDB(t testing.TB, seed int64) *DB {
	t.Helper()
	db := genDB(t, seed)
	rng := rand.New(rand.NewSource(seed * 31))
	val := func(limit int) string {
		if rng.Intn(8) == 0 {
			return "NULL"
		}
		return fmt.Sprintf("%d", rng.Intn(limit))
	}
	str := func() string {
		if rng.Intn(8) == 0 {
			return "NULL"
		}
		return fmt.Sprintf("'s%d'", rng.Intn(4))
	}
	for i := 0; i < 280; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO ta VALUES (%s, %s, %s)", val(10), val(20), str()))
	}
	for i := 0; i < 200; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO tb VALUES (%s, %s)", val(10), val(20)))
	}
	for i := 0; i < 140; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO tc VALUES (%s, %s)", val(10), str()))
	}
	mustExec(t, db, "ANALYZE ta")
	mustExec(t, db, "ANALYZE tb")
	mustExec(t, db, "ANALYZE tc")
	db.SetParallelThreshold(1)
	return db
}

// runAtDOP runs one query at the given DOP and returns the result.
func runAtDOP(t *testing.T, db *DB, dop int, q string) *Result {
	t.Helper()
	db.SetParallelism(dop)
	res, err := db.Exec(q, nil)
	if err != nil {
		t.Fatalf("dop=%d: %s: %v", dop, q, err)
	}
	return res
}

// explainText renders EXPLAIN output as one string.
func explainText(t *testing.T, db *DB, q string) string {
	t.Helper()
	res, err := db.Exec("EXPLAIN "+q, nil)
	if err != nil {
		t.Fatalf("EXPLAIN %s: %v", q, err)
	}
	var b strings.Builder
	for _, r := range res.Rows {
		b.WriteString(r[0].String())
		b.WriteString("\n")
	}
	return b.String()
}

// TestParallelPlanShape checks exchange insertion and its gates.
func TestParallelPlanShape(t *testing.T) {
	db := genParallelDB(t, 7)

	db.SetParallelism(4)
	plan := explainText(t, db, "SELECT x.k, x.v FROM ta x WHERE x.v < 10")
	if !strings.Contains(plan, "GATHER") {
		t.Fatalf("parallel-eligible scan got no GATHER:\n%s", plan)
	}
	if !strings.Contains(plan, "dop=4") {
		t.Fatalf("GATHER does not render dop:\n%s", plan)
	}
	if n := strings.Count(plan, "GATHER"); n != 1 {
		t.Fatalf("want exactly 1 GATHER, got %d:\n%s", n, plan)
	}

	// ORDER BY: the gather must carry merge keys (order-preserving).
	plan = explainText(t, db, "SELECT x.k, x.v FROM ta x ORDER BY x.k")
	if !strings.Contains(plan, "GATHER merge") {
		t.Fatalf("ordered gather missing merge keys:\n%s", plan)
	}
	if !strings.Contains(plan, "SORT") {
		t.Fatalf("parallel ORDER BY lost its SORT:\n%s", plan)
	}

	// GROUP BY: repartition below the per-worker GROUP.
	plan = explainText(t, db, "SELECT k, COUNT(*) FROM ta GROUP BY k")
	if !strings.Contains(plan, "GATHER") || !strings.Contains(plan, "REPART") {
		t.Fatalf("parallel GROUP BY missing GATHER/REPART:\n%s", plan)
	}

	// DML must never parallelize.
	plan = explainText(t, db, "UPDATE ta SET v = 0 WHERE k = 1")
	if strings.Contains(plan, "GATHER") {
		t.Fatalf("DML plan got an exchange:\n%s", plan)
	}

	// Correlated subqueries capture serial executor state: no exchange.
	plan = explainText(t, db, "SELECT x.k FROM ta x WHERE EXISTS (SELECT 1 FROM tb WHERE tb.k = x.k)")
	if strings.Contains(plan, "GATHER") {
		t.Fatalf("subquery plan got an exchange:\n%s", plan)
	}

	// DOP=1 inserts nothing.
	db.SetParallelism(1)
	plan = explainText(t, db, "SELECT x.k, x.v FROM ta x WHERE x.v < 10")
	if strings.Contains(plan, "GATHER") {
		t.Fatalf("DOP=1 plan got an exchange:\n%s", plan)
	}

	// Small tables stay under the cardinality threshold.
	db.SetParallelism(4)
	db.SetParallelThreshold(0) // default 512 again
	plan = explainText(t, db, "SELECT x.k FROM tc x")
	if strings.Contains(plan, "GATHER") {
		t.Fatalf("sub-threshold scan got an exchange:\n%s", plan)
	}
	db.SetParallelThreshold(1)
}

// TestParallelEquivalenceCorpus runs the random equivalence corpus at
// DOP=1 and DOP=4 and requires identical result sets.
func TestParallelEquivalenceCorpus(t *testing.T) {
	db := genParallelDB(t, 11)
	gen := &queryGen{rng: rand.New(rand.NewSource(23))}
	sawParallel := false
	for i := 0; i < 60; i++ {
		q := gen.query()
		if i%7 == 3 {
			q = gen.lateralQuery()
		}
		serial := runAtDOP(t, db, 1, q)
		par := runAtDOP(t, db, 4, q)
		if canonical(serial) != canonical(par) {
			t.Fatalf("DOP=4 diverged on %s\nserial: %s\nparallel: %s",
				q, canonical(serial), canonical(par))
		}
		if strings.Contains(explainText(t, db, q), "GATHER") {
			sawParallel = true
		}
	}
	if !sawParallel {
		t.Fatal("corpus never produced a parallel plan; test is vacuous")
	}
}

// TestParallelAggregates covers the repartitioned operators: GROUP BY,
// scalar aggregates, and DISTINCT.
func TestParallelAggregates(t *testing.T) {
	db := genParallelDB(t, 13)
	queries := []string{
		"SELECT k, COUNT(*), SUM(v) FROM ta GROUP BY k",
		"SELECT k, MIN(v), MAX(v) FROM tb GROUP BY k",
		"SELECT COUNT(*) FROM ta",
		"SELECT SUM(v), COUNT(v) FROM ta WHERE k IS NOT NULL",
		"SELECT DISTINCT k FROM ta",
		"SELECT DISTINCT k, v FROM tb",
		"SELECT x.k, COUNT(*) FROM ta x, tb y WHERE x.k = y.k GROUP BY x.k",
	}
	for _, q := range queries {
		serial := runAtDOP(t, db, 1, q)
		par := runAtDOP(t, db, 4, q)
		if canonical(serial) != canonical(par) {
			t.Errorf("DOP=4 diverged on %s\nserial: %s\nparallel: %s",
				q, canonical(serial), canonical(par))
		}
	}
}

// TestParallelOrderByExactOrder requires parallel ORDER BY to
// reproduce the serial ordering row for row, not just the same set:
// the gather's sorted merge must be deterministic even for duplicate
// keys (full-row tiebreak).
func TestParallelOrderByExactOrder(t *testing.T) {
	db := genParallelDB(t, 17)
	queries := []string{
		"SELECT x.k, x.v FROM ta x ORDER BY x.k",
		"SELECT x.k, x.v, x.s FROM ta x ORDER BY x.k DESC, x.v",
		"SELECT x.k, y.v FROM ta x, tb y WHERE x.k = y.k ORDER BY x.k, y.v DESC",
		"SELECT x.v FROM ta x WHERE x.v < 15 ORDER BY x.v",
	}
	for _, q := range queries {
		serial := runAtDOP(t, db, 1, q)
		par := runAtDOP(t, db, 4, q)
		if len(serial.Rows) != len(par.Rows) {
			t.Fatalf("%s: row count %d vs %d", q, len(serial.Rows), len(par.Rows))
		}
		for i := range serial.Rows {
			if datum.RowKey(serial.Rows[i]) != datum.RowKey(par.Rows[i]) {
				t.Fatalf("%s: row %d differs: %v vs %v", q, i, serial.Rows[i], par.Rows[i])
			}
		}
	}
}

// TestParallelLimit checks LIMIT semantics and early termination above
// an exchange: exact row counts, and exact rows for ORDER BY + LIMIT.
func TestParallelLimit(t *testing.T) {
	db := genParallelDB(t, 19)
	db.SetParallelism(4)

	res, err := db.Exec("SELECT x.k FROM ta x LIMIT 7", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("LIMIT 7 returned %d rows", len(res.Rows))
	}

	serial := runAtDOP(t, db, 1, "SELECT x.k, x.v FROM ta x ORDER BY x.k, x.v LIMIT 11")
	par := runAtDOP(t, db, 4, "SELECT x.k, x.v FROM ta x ORDER BY x.k, x.v LIMIT 11")
	if len(par.Rows) != len(serial.Rows) {
		t.Fatalf("ORDER BY LIMIT: %d vs %d rows", len(serial.Rows), len(par.Rows))
	}
	for i := range serial.Rows {
		if datum.RowKey(serial.Rows[i]) != datum.RowKey(par.Rows[i]) {
			t.Fatalf("ORDER BY LIMIT row %d differs", i)
		}
	}
}

// TestParallelBatchedEquivalence toggles the batched row path off and
// on: results (and order, for ORDER BY) must be identical.
func TestParallelBatchedEquivalence(t *testing.T) {
	db := genParallelDB(t, 29)
	gen := &queryGen{rng: rand.New(rand.NewSource(31))}
	for _, dop := range []int{1, 4} {
		db.SetParallelism(dop)
		for i := 0; i < 20; i++ {
			q := gen.query()
			db.SetBatchSize(1) // tuple-at-a-time
			tup, err := db.Exec(q, nil)
			if err != nil {
				t.Fatalf("tuple dop=%d: %s: %v", dop, q, err)
			}
			db.SetBatchSize(0) // default batching
			bat, err := db.Exec(q, nil)
			if err != nil {
				t.Fatalf("batched dop=%d: %s: %v", dop, q, err)
			}
			if canonical(tup) != canonical(bat) {
				t.Fatalf("batched diverged (dop=%d) on %s", dop, q)
			}
		}
	}
	db.SetBatchSize(0)
}

// parallelEligibleQuery is used throughout the fault matrix: a
// scan-join the optimizer parallelizes on genParallelDB.
const parallelEligibleQuery = "SELECT x.k, x.v, y.v FROM ta x, tb y WHERE x.k = y.k AND x.v < 18"

// TestParallelFaultMatrix drives parallel plans through the PR-2
// robustness matrix: clean, faulted, cancelled, and budget-tripped.
func TestParallelFaultMatrix(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		db := genParallelDB(t, 37)
		serial := runAtDOP(t, db, 1, parallelEligibleQuery)
		par := runAtDOP(t, db, 4, parallelEligibleQuery)
		if canonical(serial) != canonical(par) {
			t.Fatal("clean parallel run diverged")
		}
	})

	t.Run("faulted-forces-serial", func(t *testing.T) {
		db := genParallelDB(t, 41)
		db.SetParallelism(4)
		want := canonical(runAtDOP(t, db, 4, parallelEligibleQuery))

		// With an injector attached, execution is forced serial — fault
		// schedules count operations deterministically — but compiled
		// plans still carry the exchange, exercising its inline mode.
		db.InjectFaults(&Fault{Table: "ta", Op: FaultScan, After: 50, Err: "boom"})
		if _, err := db.Exec(parallelEligibleQuery, nil); err == nil {
			t.Fatal("faulted scan did not surface an error")
		}
		db.ClearFaults()
		// Injector still attached (cleared): still forced serial; the
		// inline exchange must produce the full result.
		res, err := db.Exec(parallelEligibleQuery, nil)
		if err != nil {
			t.Fatal(err)
		}
		if canonical(res) != want {
			t.Fatal("inline (forced-serial) exchange diverged")
		}
		db.DetachFaults()
		res, err = db.Exec(parallelEligibleQuery, nil)
		if err != nil {
			t.Fatal(err)
		}
		if canonical(res) != want {
			t.Fatal("post-fault parallel run diverged")
		}
	})

	t.Run("cancelled", func(t *testing.T) {
		db := genParallelDB(t, 43)
		db.SetParallelism(4)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := db.ExecContext(ctx, parallelEligibleQuery, nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		if g := db.Metrics().Gauge(MetricParallelWorkers).Value(); g != 0 {
			t.Fatalf("cancelled statement leaked %d workers", g)
		}
		// The DB stays usable.
		if _, err := db.Exec(parallelEligibleQuery, nil); err != nil {
			t.Fatalf("statement after cancellation: %v", err)
		}
	})

	t.Run("budget-tripped", func(t *testing.T) {
		db := genParallelDB(t, 47)
		db.SetParallelism(4)
		db.SetLimits(Limits{MaxRows: 64})
		_, err := db.Exec(parallelEligibleQuery, nil)
		var rerr *ResourceError
		if !errors.As(err, &rerr) || rerr.Budget != "rows" {
			t.Fatalf("want rows ResourceError, got %v", err)
		}
		if g := db.Metrics().Gauge(MetricParallelWorkers).Value(); g != 0 {
			t.Fatalf("budget-tripped statement leaked %d workers", g)
		}
		db.SetLimits(Limits{})
		if _, err := db.Exec(parallelEligibleQuery, nil); err != nil {
			t.Fatalf("statement after budget trip: %v", err)
		}
	})

	t.Run("timeout", func(t *testing.T) {
		db := genParallelDB(t, 53)
		db.SetParallelism(4)
		db.SetLimits(Limits{Timeout: time.Nanosecond})
		_, err := db.Exec(parallelEligibleQuery, nil)
		var rerr *ResourceError
		if !errors.As(err, &rerr) || rerr.Budget != "time" {
			t.Fatalf("want time ResourceError, got %v", err)
		}
		db.SetLimits(Limits{})
		if g := db.Metrics().Gauge(MetricParallelWorkers).Value(); g != 0 {
			t.Fatalf("timed-out statement leaked %d workers", g)
		}
	})
}

// TestParallelObservability covers the metrics and the EXPLAIN ANALYZE
// rendering of parallel execution.
func TestParallelObservability(t *testing.T) {
	db := genParallelDB(t, 59)
	db.SetParallelism(4)
	m := db.Metrics()

	before := m.Counter(MetricParallelStatements).Value()
	for i := 0; i < 3; i++ {
		if _, err := db.Exec(parallelEligibleQuery, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Counter(MetricParallelStatements).Value(); got < before+3 {
		t.Fatalf("parallel statements counter %d, want >= %d", got, before+3)
	}
	if g := m.Gauge(MetricParallelWorkers).Value(); g != 0 {
		t.Fatalf("worker gauge %d after statements finished, want 0", g)
	}
	if m.Histogram(MetricExchangeBatchRows, exchangeBatchBuckets).Count() == 0 {
		t.Fatal("exchange batch histogram never observed")
	}

	res, err := db.Exec("EXPLAIN ANALYZE "+parallelEligibleQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	for _, r := range res.Rows {
		text.WriteString(r[0].String())
		text.WriteString("\n")
	}
	out := text.String()
	if !strings.Contains(out, "GATHER") {
		t.Fatalf("EXPLAIN ANALYZE lost the exchange:\n%s", out)
	}
	if !strings.Contains(out, "workers=[") {
		t.Fatalf("EXPLAIN ANALYZE has no per-worker row counts:\n%s", out)
	}
}

// runInstrumentedParallel mirrors runInstrumented (observe_test.go) but
// also arms the statement with the DB's parallelism knobs, so exchange
// operators actually spawn workers under the shared Instrumentation.
func runInstrumentedParallel(db *DB, instr *exec.Instrumentation, compiled *plan.Compiled,
	params map[string]Value, goCtx context.Context) ([]Row, error) {
	s, err := db.builder.Instrumented(instr).Build(compiled.Root, nil)
	if err != nil {
		return nil, err
	}
	ctx := exec.NewCtx(db.cat, params)
	ctx.Arm(goCtx, db.GetLimits())
	db.armParallel(ctx, db.snapshot())
	return exec.Run(ctx, s)
}

// TestParallelStatsCumulative reruns one prepared parallel statement
// against a single shared Instrumentation and checks that every plan
// node's counters stay cumulative-monotone across executions (the PR-3
// invariant, now under worker concurrency) — including across a failed
// leg, where workers are cancelled mid-flight.
func TestParallelStatsCumulative(t *testing.T) {
	db := genParallelDB(t, 61)
	db.SetParallelism(4)

	compiled := preparedPlan(parallelEligibleQuery)(t, db)
	if n := plan.CollectOps(compiled.Root)[plan.OpGather]; n != 1 {
		t.Fatalf("prepared plan has %d GATHER nodes, want 1", n)
	}

	instr := exec.NewInstrumentation()
	var prev map[*plan.Node]obs.OpStats
	var wantKeys []string
	for i := 0; i < 3; i++ {
		rows, err := runInstrumentedParallel(db, instr, compiled, nil, context.Background())
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if i == 0 {
			for _, r := range rows {
				wantKeys = append(wantKeys, datum.RowKey(datum.Row(r)))
			}
		} else if len(rows) != len(wantKeys) {
			t.Fatalf("run %d: got %d rows, want %d", i, len(rows), len(wantKeys))
		}
		prev = checkStatsInvariants(t, instr, compiled.Root, prev)
	}

	// Failure leg: a pre-cancelled context kills the workers mid-open,
	// but the harvested counters must still only move forward.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := runInstrumentedParallel(db, instr, compiled, nil, cancelled); err == nil {
		t.Fatal("cancelled run succeeded")
	}
	prev = checkStatsInvariants(t, instr, compiled.Root, prev)

	// And a clean run after the failure keeps accumulating.
	if _, err := runInstrumentedParallel(db, instr, compiled, nil, context.Background()); err != nil {
		t.Fatal(err)
	}
	checkStatsInvariants(t, instr, compiled.Root, prev)
}
