package starburst

import "testing"

func TestDMLWithSubqueries(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, `DELETE FROM quotations WHERE partno IN
		(SELECT partno FROM inventory WHERE type = 'DISK')`)
	if res.Affected != 2 {
		t.Fatalf("delete-in affected = %d", res.Affected)
	}
	res = mustExec(t, db, `UPDATE inventory SET onhand_qty =
		(SELECT MAX(order_qty) FROM quotations) WHERE type = 'CPU'`)
	if res.Affected != 3 {
		t.Fatalf("update-scalar affected = %d", res.Affected)
	}
	r := mustExec(t, db, "SELECT onhand_qty FROM inventory WHERE partno = 1")
	if r.Rows[0][0].Int() != 40 { // max remaining order_qty = 8*5
		t.Fatalf("updated value = %v", r.Rows[0][0])
	}
	res = mustExec(t, db, `DELETE FROM inventory WHERE EXISTS
		(SELECT 1 FROM quotations q WHERE q.partno = inventory.partno AND q.order_qty > 20)`)
	// Remaining quotations: parts 1,3,5,6,7,8 with order_qty 5p; only
	// inventory part 5 has a quotation with order_qty > 20.
	if res.Affected != 1 {
		t.Fatalf("correlated delete affected = %d, want 1", res.Affected)
	}
}
