package starburst

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"

	"repro/internal/exec"
	"repro/internal/storage"
)

// This file is the robustness surface of the DB: per-statement resource
// limits, context-based cancellation, deterministic storage fault
// injection, and a panic barrier that converts any panic escaping a
// compilation phase or a QES operator — most likely a DBC extension —
// into a structured error instead of crashing the process.

// Re-exported robustness types.
type (
	// Limits are per-statement execution budgets (rows, memory, time);
	// zero values are unlimited.
	Limits = exec.Limits
	// ResourceError reports an exhausted execution budget.
	ResourceError = exec.ResourceError
	// Fault is one injected storage failure.
	Fault = storage.Fault
	// FaultError is the typed error produced by an injected fault.
	FaultError = storage.FaultError
	// FaultOp names an injectable storage operation.
	FaultOp = storage.FaultOp
	// CrashError is the panic value of a crash fault: the simulated
	// process kill the recovery torture tests drive. It reaches callers
	// wrapped in a *QueryError (Value/Unwrap).
	CrashError = storage.CrashError
)

// The injectable storage operations, re-exported.
const (
	FaultScan     = storage.FaultScan
	FaultInsert   = storage.FaultInsert
	FaultDelete   = storage.FaultDelete
	FaultUpdate   = storage.FaultUpdate
	FaultIxInsert = storage.FaultIxInsert
	FaultIxDelete = storage.FaultIxDelete
	FaultIxSearch = storage.FaultIxSearch
	// Durability crash points (WithDataDir stores only): checked at
	// every WAL append, around every WAL fsync, and before every
	// checkpoint page write. With Fault.Crash set they panic with a
	// *CrashError, poisoning the store until it is reopened.
	FaultWALAppend = storage.FaultWALAppend
	FaultWALSync   = storage.FaultWALSync
	FaultPageWrite = storage.FaultPageWrite
)

// QueryError is the uniform error type of the public API: every error
// a statement entry point returns — parse failures, semantic errors,
// DDL conflicts, exhausted budgets, injected faults, and panics caught
// at the statement boundary — is (or wraps into) a *QueryError naming
// the phase it came from. Typed causes stay reachable through
// errors.As/errors.Is: ResourceError, FaultError, AuditError,
// context.Canceled and friends unwrap through it.
type QueryError struct {
	// Phase is where the error escaped: parse, rewrite, optimize, exec,
	// or ddl.
	Phase string
	// Err is the underlying error for ordinary (non-panic) failures.
	Err error
	// Operator is the failing QES operator type (e.g. "scanOp"), empty
	// when the error did not originate under an operator. Set only for
	// captured panics.
	Operator string
	// Value is the recovered panic value; nil for ordinary errors.
	Value any
	// Stack is the goroutine stack captured at recovery; nil for
	// ordinary errors.
	Stack []byte
}

func (e *QueryError) Error() string {
	if e.Err != nil {
		// Pass the underlying message through verbatim: the phase is
		// structured data, not message decoration.
		return e.Err.Error()
	}
	if e.Operator != "" {
		return fmt.Sprintf("starburst: panic during %s (operator %s): %v", e.Phase, e.Operator, e.Value)
	}
	return fmt.Sprintf("starburst: panic during %s: %v", e.Phase, e.Value)
}

// Unwrap exposes the underlying error (or the panic value when it was
// an error), keeping errors.As/errors.Is chains intact.
func (e *QueryError) Unwrap() error {
	if e.Err != nil {
		return e.Err
	}
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// wrapQueryError folds a plain error into a *QueryError carrying the
// phase it escaped from; errors that already are (or wrap) a
// *QueryError pass through unchanged. The statement entry points defer
// it after the recover barrier, making *QueryError the single error
// type of the public API.
func wrapQueryError(phase string, err error) error {
	if err == nil {
		return nil
	}
	var qe *QueryError
	if errors.As(err, &qe) {
		return err
	}
	return &QueryError{Phase: phase, Err: err}
}

// recoverQueryError is the single recover barrier: statement entry
// points defer it with a pointer to their phase marker and error return.
func recoverQueryError(phase *string, err *error) {
	p := recover()
	if p == nil {
		return
	}
	stack := debug.Stack()
	*err = &QueryError{Phase: *phase, Operator: operatorFromStack(stack), Value: p, Stack: stack}
}

// operatorFromStack attributes a panic to the innermost QES operator
// method on the stack, e.g. "repro/internal/exec.(*scanOp).Next(...)".
func operatorFromStack(stack []byte) string {
	for _, line := range strings.Split(string(stack), "\n") {
		line = strings.TrimSpace(line)
		rest, ok := strings.CutPrefix(line, "repro/internal/exec.(*")
		if !ok {
			continue
		}
		if name, _, ok := strings.Cut(rest, ")"); ok {
			return name
		}
	}
	return ""
}

// SetLimits installs the default per-statement execution budgets
// applied to every subsequent statement on this DB (sessions snapshot
// them at creation and may override); the zero Limits removes them.
func (db *DB) SetLimits(l Limits) {
	if l == (Limits{}) {
		db.limits.Store(nil)
		return
	}
	db.limits.Store(&l)
}

// GetLimits reports the current default per-statement budgets.
func (db *DB) GetLimits() Limits {
	if l := db.limits.Load(); l != nil {
		return *l
	}
	return Limits{}
}

// ExecContext is Query under another name, kept so existing callers
// keep compiling; new code should call Query.
func (db *DB) ExecContext(ctx context.Context, query string, params map[string]Value) (*Result, error) {
	return db.Query(ctx, query, params)
}

// ---------------------------------------------------------------------
// Fault injection

// InjectFaults arms storage faults, decorating this DB's storage with a
// fault injector on first use: every registered storage manager and
// access method is wrapped through the registries (the same extension
// path a DBC uses), and existing tables and indexes are wrapped in
// place. Deterministic: the (After+1)th matching operation fails.
func (db *DB) InjectFaults(faults ...*Fault) {
	// Attaching rewraps live storage objects in place — exclusive
	// ownership of the engine, so no statement is in flight over an
	// object being rewrapped (the attach also bumps the catalog version,
	// invalidating cached plans compiled over unwrapped storage).
	db.lockAdminExcl(nil)
	defer db.adminMu.Unlock()
	if db.faults == nil {
		db.faults = storage.NewFaultInjector()
		db.cat.AttachFaults(db.faults)
		fi := db.faults
		db.metrics.GaugeFunc(MetricFaultsFired, fi.Fired)
		if db.store != nil {
			db.store.SetFaultInjector(fi)
		}
	}
	db.faults.Add(faults...)
}

// ClearFaults disarms every injected fault; the injector stays attached
// (its counters keep running) until DetachFaults.
func (db *DB) ClearFaults() {
	if db.faults != nil {
		db.faults.ClearFaults()
	}
}

// DetachFaults removes fault decoration entirely.
func (db *DB) DetachFaults() {
	db.lockAdminExcl(nil)
	defer db.adminMu.Unlock()
	if db.faults != nil {
		db.cat.DetachFaults()
		if db.store != nil {
			db.store.SetFaultInjector(nil)
		}
		db.faults = nil
	}
}

// Faults exposes the attached injector (nil before InjectFaults) for
// inspecting operation counts and open-iterator tracking.
func (db *DB) Faults() *storage.FaultInjector { return db.faults }
