package starburst

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"

	"repro/internal/exec"
	"repro/internal/storage"
)

// This file is the robustness surface of the DB: per-statement resource
// limits, context-based cancellation, deterministic storage fault
// injection, and a panic barrier that converts any panic escaping a
// compilation phase or a QES operator — most likely a DBC extension —
// into a structured error instead of crashing the process.

// Re-exported robustness types.
type (
	// Limits are per-statement execution budgets (rows, memory, time);
	// zero values are unlimited.
	Limits = exec.Limits
	// ResourceError reports an exhausted execution budget.
	ResourceError = exec.ResourceError
	// Fault is one injected storage failure.
	Fault = storage.Fault
	// FaultError is the typed error produced by an injected fault.
	FaultError = storage.FaultError
	// FaultOp names an injectable storage operation.
	FaultOp = storage.FaultOp
)

// The injectable storage operations, re-exported.
const (
	FaultScan     = storage.FaultScan
	FaultInsert   = storage.FaultInsert
	FaultDelete   = storage.FaultDelete
	FaultUpdate   = storage.FaultUpdate
	FaultIxInsert = storage.FaultIxInsert
	FaultIxDelete = storage.FaultIxDelete
	FaultIxSearch = storage.FaultIxSearch
)

// QueryError reports a panic captured at the statement boundary: the
// compilation/execution phase it escaped from, the QES operator it can
// be attributed to (when one is on the stack), the panic value, and the
// stack at the point of the panic.
type QueryError struct {
	// Phase is where the panic escaped: parse, rewrite, optimize, exec.
	Phase string
	// Operator is the failing QES operator type (e.g. "scanOp"), empty
	// when the panic did not originate under an operator.
	Operator string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *QueryError) Error() string {
	if e.Operator != "" {
		return fmt.Sprintf("starburst: panic during %s (operator %s): %v", e.Phase, e.Operator, e.Value)
	}
	return fmt.Sprintf("starburst: panic during %s: %v", e.Phase, e.Value)
}

// Unwrap exposes the panic value when it was an error.
func (e *QueryError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// recoverQueryError is the single recover barrier: statement entry
// points defer it with a pointer to their phase marker and error return.
func recoverQueryError(phase *string, err *error) {
	p := recover()
	if p == nil {
		return
	}
	stack := debug.Stack()
	*err = &QueryError{Phase: *phase, Operator: operatorFromStack(stack), Value: p, Stack: stack}
}

// operatorFromStack attributes a panic to the innermost QES operator
// method on the stack, e.g. "repro/internal/exec.(*scanOp).Next(...)".
func operatorFromStack(stack []byte) string {
	for _, line := range strings.Split(string(stack), "\n") {
		line = strings.TrimSpace(line)
		rest, ok := strings.CutPrefix(line, "repro/internal/exec.(*")
		if !ok {
			continue
		}
		if name, _, ok := strings.Cut(rest, ")"); ok {
			return name
		}
	}
	return ""
}

// SetLimits installs per-statement execution budgets applied to every
// subsequent Exec/ExecContext/Stmt.Run on this DB; the zero Limits
// removes them.
func (db *DB) SetLimits(l Limits) { db.limits = l }

// GetLimits reports the current per-statement budgets.
func (db *DB) GetLimits() Limits { return db.limits }

// ExecContext is Exec under a context: cancelling ctx aborts the
// statement at the next tuple boundary, and aborts injected fault
// latency immediately.
func (db *DB) ExecContext(ctx context.Context, query string, params map[string]Value) (*Result, error) {
	return db.exec(ctx, query, params)
}

// ---------------------------------------------------------------------
// Fault injection

// InjectFaults arms storage faults, decorating this DB's storage with a
// fault injector on first use: every registered storage manager and
// access method is wrapped through the registries (the same extension
// path a DBC uses), and existing tables and indexes are wrapped in
// place. Deterministic: the (After+1)th matching operation fails.
func (db *DB) InjectFaults(faults ...*Fault) {
	if db.faults == nil {
		db.faults = storage.NewFaultInjector()
		db.cat.AttachFaults(db.faults)
		fi := db.faults
		db.metrics.GaugeFunc(MetricFaultsFired, fi.Fired)
	}
	db.faults.Add(faults...)
}

// ClearFaults disarms every injected fault; the injector stays attached
// (its counters keep running) until DetachFaults.
func (db *DB) ClearFaults() {
	if db.faults != nil {
		db.faults.ClearFaults()
	}
}

// DetachFaults removes fault decoration entirely.
func (db *DB) DetachFaults() {
	if db.faults != nil {
		db.cat.DetachFaults()
		db.faults = nil
	}
}

// Faults exposes the attached injector (nil before InjectFaults) for
// inspecting operation counts and open-iterator tracking.
func (db *DB) Faults() *storage.FaultInjector { return db.faults }
