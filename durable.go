package starburst

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage/disk"
)

// This file wires the durable disk store (internal/storage/disk) into
// the engine: the WithDataDir option, crash recovery at open (snapshot
// schema recreation + WAL DDL/data replay + index rebuild), the
// statement bracket for DDL, and DB.Close.
//
// Durability boundary: tables created USING DISK persist rows; tables
// under any other manager (HEAP, FIXED, ...) persist schema only and
// come back empty — the MEMORY-table convention. Indexes are rebuilt
// from table data at every open, never persisted. Table statistics are
// volatile; rerun ANALYZE after reopening.

// WithDataDir makes the database durable: the directory holds one page
// file per DISK table, a write-ahead log, and a catalog snapshot.
// Opening an existing directory recovers it (committed statements
// survive, uncommitted ones vanish). The DISK storage manager is
// registered; HEAP remains the default unless WithDefaultStorage says
// otherwise. A DB opened with a data directory should be Closed.
//
// Open cannot return an error, so a failed attach or recovery is
// reported by every subsequent statement (and by DB.OpenErr).
func WithDataDir(dir string) Option {
	return func(db *DB) { db.attachStore(dir, disk.OSFS{}, disk.Options{}) }
}

// withDataFS is WithDataDir over an arbitrary filesystem; crash tests
// use it with a disk.MemFS.
func withDataFS(dir string, fsys disk.FS, opts disk.Options) Option {
	return func(db *DB) { db.attachStore(dir, fsys, opts) }
}

// WithDefaultStorage selects the storage manager an empty USING clause
// resolves to (e.g. "DISK" to make every new table durable). Order
// matters: place it after WithDataDir.
//
// Reopen a data directory with the same default as when it was written:
// replayed CREATE TABLE statements resolve their empty USING clause
// against the default active during recovery.
func WithDefaultStorage(name string) Option {
	return func(db *DB) {
		if err := db.cat.Storage.SetDefaultStorageManager(strings.ToUpper(name)); err != nil && db.openErr == nil {
			db.openErr = err
		}
	}
}

// OpenErr reports why WithDataDir failed to attach or recover, nil when
// the DB is healthy. Every statement against a broken DB returns the
// same error.
func (db *DB) OpenErr() error { return db.openErr }

// DataDir reports the durable data directory, empty for an in-memory
// DB.
func (db *DB) DataDir() string { return db.dataDir }

// Store exposes the durable store (nil for an in-memory DB): stats,
// explicit Checkpoint, crash state.
func (db *DB) Store() *disk.Store { return db.store }

func (db *DB) attachStore(dir string, fsys disk.FS, opts disk.Options) {
	if db.openErr != nil {
		return
	}
	if db.store != nil {
		db.openErr = fmt.Errorf("starburst: data directory already attached (%s)", db.dataDir)
		return
	}
	st, err := disk.Open(dir, fsys, opts)
	if err != nil {
		db.openErr = err
		return
	}
	if err := db.cat.Storage.RegisterStorageManager(st.Manager()); err != nil {
		db.openErr = err
		return
	}
	db.store = st
	db.dataDir = dir
	st.SetWaitObs(db.waitProf)
	st.SetSnapshot(db.snapshotCatalog)
	if err := db.recoverCatalog(); err != nil {
		db.openErr = fmt.Errorf("starburst: recover %s: %w", dir, err)
		return
	}
	db.metrics.GaugeFunc(MetricBufferPoolHits, func() int64 { return st.Stats().PoolHits })
	db.metrics.GaugeFunc(MetricBufferPoolMisses, func() int64 { return st.Stats().PoolMisses })
	db.metrics.GaugeFunc(MetricWALBytes, func() int64 { return st.Stats().WALBytes })
	db.metrics.GaugeFunc(MetricWALSyncs, func() int64 { return st.Stats().WALSyncs })
	db.metrics.GaugeFunc(MetricCheckpoints, func() int64 { return st.Stats().Checkpoints })
}

// Close checkpoints and closes the durable store. The DB must not be
// used afterwards. In-memory DBs Close as a no-op.
func (db *DB) Close() error {
	if db.store == nil {
		return nil
	}
	db.adminMu.Lock()
	defer db.adminMu.Unlock()
	st := db.store
	db.store = nil
	return st.Close()
}

// ---------------------------------------------------------------------
// Transaction durability

// txnDurableHook returns the commit hook for one transaction: the
// function the transaction manager runs under the commit mutex, after
// conflict-free validation but before the commit timestamp publishes.
// Explicit transactions against a durable store append the WAL
// transaction-commit record (and fsync) there, so a crash either keeps
// the whole transaction or none of it. Implicit transactions ride the
// per-statement WAL bracket and need no hook; in-memory DBs have
// nothing to make durable.
func (db *DB) txnDurableHook(tx *Tx) func(cts int64) error {
	if db.store == nil || tx.ts.Txn.Implicit {
		return nil
	}
	id := tx.ts.Txn.ID
	return func(cts int64) error { return db.store.CommitTxn(id) }
}

// txnAborted tells the store a transaction ended without a commit
// record, releasing its open-transaction entry (checkpoints are held
// back while any tagged transaction is open).
func (db *DB) txnAborted(tx *Tx) {
	if db.store == nil || tx.ts.Txn.Implicit {
		return
	}
	db.store.AbortTxn(tx.ts.Txn.ID)
}

// rollbackDurable applies a transaction's write-log compensations. For
// an explicit transaction against a durable store the compensating
// page mutations are bracketed in a WAL statement group tagged with
// the transaction ID: the tag keeps them from replaying after a crash
// (the transaction has no commit record, so neither its statements nor
// their compensations replay), while an untagged group would replay
// the compensations alone and corrupt the recovered pages.
func (db *DB) rollbackDurable(tx *Tx) error {
	if db.store == nil || tx.ts.Txn.Implicit || tx.ts.Writes() == 0 {
		return tx.ts.Rollback(db.cat)
	}
	if err := db.store.BeginTxnStmt(tx.ts.Txn.ID); err != nil {
		// The WAL bracket could not open (store closing); undo the
		// in-memory state regardless.
		return errors.Join(err, tx.ts.Rollback(db.cat))
	}
	err := tx.ts.Rollback(db.cat)
	if err != nil {
		db.store.AbortStmt()
		return err
	}
	return db.store.CommitStmt()
}

// ---------------------------------------------------------------------
// DDL durability

// execDDLDurable wraps execDDL in a WAL statement group: the raw SQL is
// logged and replayed on recovery. ANALYZE is excluded (statistics are
// volatile). Serialization against other DDL comes from the catalog's
// mutation lock; running statements are unaffected (they read their
// pinned generations).
func (db *DB) execDDLDurable(stmt sql.Statement, raw string) (*Result, error) {
	if db.store == nil {
		return db.execDDL(stmt)
	}
	if _, ok := stmt.(*sql.AnalyzeStmt); ok {
		return db.execDDL(stmt)
	}
	if err := db.store.BeginStmt(); err != nil {
		return nil, err
	}
	// Exactly one of AbortStmt/CommitStmt must release the bracket; the
	// defer covers error returns and crash-fault panics before the
	// commit hand-off.
	committed := false
	defer func() {
		if !committed {
			db.store.AbortStmt()
		}
	}()
	res, err := db.execDDL(stmt)
	if err != nil {
		return nil, err
	}
	if err := db.store.LogDDL(raw); err != nil {
		return nil, err
	}
	committed = true
	if err := db.store.CommitStmt(); err != nil {
		return nil, err
	}
	if d, ok := stmt.(*sql.DropStmt); ok && d.Kind == "TABLE" {
		if err := db.store.DropTableData(d.Name); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// rootIsDML reports whether a compiled plan mutates a table (its root,
// under any exchange operators, is a DML LOLEPOP). Only such plans need
// the WAL statement bracket.
func rootIsDML(n *plan.Node) bool {
	for n != nil {
		switch n.Op {
		case plan.OpInsert, plan.OpUpdate, plan.OpDelete:
			return true
		case plan.OpGather, plan.OpRepart:
			if len(n.Inputs) == 0 {
				return false
			}
			n = n.Inputs[0]
		default:
			return false
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Catalog snapshot (schema persistence)

// The snapshot is the engine-level half of catalog durability: the
// store persists it opaquely in catalog.json at each checkpoint, and
// hands it back at open for recreation. DDL committed after the
// snapshot replays from the WAL on top of it.

type snapSchema struct {
	Tables []snapTable `json:"tables"`
	Views  []snapView  `json:"views,omitempty"`
}

type snapTable struct {
	Name    string      `json:"name"`
	Cols    []snapCol   `json:"cols"`
	SM      string      `json:"sm"`
	Indexes []snapIndex `json:"indexes,omitempty"`
}

type snapCol struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	NotNull bool   `json:"notnull,omitempty"`
}

type snapIndex struct {
	Name   string   `json:"name"`
	Cols   []string `json:"cols"`
	Method string   `json:"method"`
	Unique bool     `json:"unique,omitempty"`
}

type snapView struct {
	Name string   `json:"name"`
	Cols []string `json:"cols,omitempty"`
	Text string   `json:"text"`
}

// snapshotCatalog serializes the schema for the checkpoint. Called by
// the store with no statement in flight; safe against DML, which never
// changes schema.
func (db *DB) snapshotCatalog() ([]byte, error) {
	var snap snapSchema
	for _, name := range db.cat.TableNames() {
		t, ok := db.cat.Table(name)
		if !ok || t.System {
			// SYS virtual tables are re-registered at every Open, never
			// persisted.
			continue
		}
		st := snapTable{Name: t.Name, SM: t.SM}
		for _, c := range t.Cols {
			st.Cols = append(st.Cols, snapCol{Name: c.Name, Type: datum.TypeName(c.Type), NotNull: c.NotNull})
		}
		for _, ix := range t.Indexes {
			cols := make([]string, len(ix.KeyCols))
			for i, ord := range ix.KeyCols {
				cols[i] = t.Cols[ord].Name
			}
			st.Indexes = append(st.Indexes, snapIndex{Name: ix.Name, Cols: cols, Method: ix.Method, Unique: ix.Unique})
		}
		snap.Tables = append(snap.Tables, st)
	}
	for _, name := range db.cat.ViewNames() {
		v, ok := db.cat.View(name)
		if !ok {
			continue
		}
		snap.Views = append(snap.Views, snapView{Name: v.Name, Cols: v.ColNames, Text: v.Text})
	}
	return json.Marshal(snap)
}

// ---------------------------------------------------------------------
// Recovery

// pendingIndex is an index whose build is deferred until data replay is
// complete: indexes are volatile, so every index — from the snapshot or
// a replayed CREATE INDEX — is rebuilt by backfill at the end.
type pendingIndex struct {
	name   string
	table  string
	cols   []string
	method string
	unique bool
}

// replayState marks the DB as replaying WAL DDL and collects deferred
// index builds. Checked by execDDL paths that must behave differently
// under replay.
type replayState struct {
	indexes []pendingIndex
}

// recoverCatalog rebuilds the engine state from the store: recreate the
// snapshot schema (attaching to existing page files), replay the WAL
// (committed DDL re-executes; data records restore pages), rebuild
// every index, and checkpoint so the next open starts clean.
func (db *DB) recoverCatalog() error {
	replay := &replayState{}
	if blob := db.store.SnapshotSchema(); len(blob) > 0 {
		var snap snapSchema
		if err := json.Unmarshal(blob, &snap); err != nil {
			return fmt.Errorf("parse catalog snapshot: %w", err)
		}
		for _, t := range snap.Tables {
			cols := make([]catalog.Column, len(t.Cols))
			for i, c := range t.Cols {
				tid, ok := datum.TypeIDByName(c.Type)
				if !ok {
					return fmt.Errorf("table %s column %s has unknown type %s (register user types before WithDataDir)", t.Name, c.Name, c.Type)
				}
				cols[i] = catalog.Column{Name: c.Name, Type: tid, NotNull: c.NotNull}
			}
			if _, err := db.cat.CreateTable(t.Name, cols, t.SM); err != nil {
				return fmt.Errorf("recreate table %s: %w", t.Name, err)
			}
			for _, ix := range t.Indexes {
				replay.indexes = append(replay.indexes, pendingIndex{
					name: ix.Name, table: t.Name, cols: ix.Cols, method: ix.Method, unique: ix.Unique,
				})
			}
		}
		for _, v := range snap.Views {
			if err := db.cat.CreateView(v.Name, v.Cols, v.Text); err != nil {
				return fmt.Errorf("recreate view %s: %w", v.Name, err)
			}
		}
	}

	db.replay = replay
	err := db.store.Recover(func(sqlText string) error { return db.replayDDL(replay, sqlText) })
	db.replay = nil
	if err != nil {
		return err
	}

	for _, ix := range replay.indexes {
		if _, err := db.cat.CreateIndex(ix.name, ix.table, ix.cols, ix.method, ix.unique); err != nil {
			return fmt.Errorf("rebuild index %s on %s: %w", ix.name, ix.table, err)
		}
	}
	return db.store.Checkpoint()
}

// replayDDL re-executes one committed WAL DDL statement. Index DDL is
// diverted into the pending list (built after data replay); DROPs prune
// it so an index dropped later is never built.
func (db *DB) replayDDL(replay *replayState, sqlText string) error {
	//lint:ignore api-bypass WAL replay runs inside attachStore, before the DB is usable: the statement lock is not yet contended, the plan cache does not exist, and errors surface through openErr rather than QueryError
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return err
	}
	switch s := stmt.(type) {
	case *sql.CreateIndexStmt:
		replay.indexes = append(replay.indexes, pendingIndex{
			name: strings.ToUpper(s.Name), table: strings.ToUpper(s.Table),
			cols: s.Cols, method: s.Method, unique: s.Unique,
		})
		return nil
	case *sql.DropStmt:
		switch s.Kind {
		case "INDEX":
			replay.indexes = prunePending(replay.indexes, func(p pendingIndex) bool {
				return strings.EqualFold(p.table, s.Table) && strings.EqualFold(p.name, s.Name)
			})
			return nil
		case "TABLE":
			replay.indexes = prunePending(replay.indexes, func(p pendingIndex) bool {
				return strings.EqualFold(p.table, s.Name)
			})
			if _, err := db.execDDL(stmt); err != nil {
				return err
			}
			return db.store.DropTableData(s.Name)
		}
	}
	_, err = db.execDDL(stmt)
	return err
}

func prunePending(list []pendingIndex, drop func(pendingIndex) bool) []pendingIndex {
	out := list[:0]
	for _, p := range list {
		if !drop(p) {
			out = append(out, p)
		}
	}
	return out
}
