package starburst

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/rewrite"
)

// This file is the session layer of the public API. A DB is shared,
// long-lived state — catalog, rule sets, plan cache, metrics. A Session
// is a cheap per-client handle carrying the tuning knobs that used to
// live only on the DB: degree of parallelism, batch size, per-statement
// budgets, tracing, rewrite configuration. Each statement snapshots its
// session's settings once at entry, so concurrent sessions never race
// on shared knobs and a setting change mid-statement cannot tear.

// settings is the per-statement snapshot of every knob that influences
// how one statement compiles and runs. It is taken once at statement
// entry and threaded by value through compile and execution.
type settings struct {
	// limits are the execution budgets (rows, memory, time).
	limits Limits
	// dop is the degree of parallelism the optimizer plans for.
	dop int
	// batchSize tunes batched execution; 0 is the executor default.
	batchSize int
	// tracing attaches a phase trace to the statement's Result.
	tracing bool
	// skipRewrite bypasses the query rewrite phase.
	skipRewrite bool
	// rewrite configures the rewrite engine when it runs.
	rewrite rewrite.Options
	// vectorize enables columnar execution over eligible operators.
	vectorize bool
}

// snapshot captures the DB-wide defaults as one statement's settings.
func (db *DB) snapshot() settings {
	return settings{
		limits:      db.GetLimits(),
		dop:         db.Parallelism(),
		batchSize:   int(db.batchSize.Load()),
		tracing:     db.tracing.Load(),
		skipRewrite: db.SkipRewrite,
		rewrite:     db.Rewrite,
		vectorize:   db.Vectorized(),
	}
}

// fingerprint renders every setting that can change which plan the
// compiler produces for a given statement text: the session's degree of
// parallelism, the rewrite configuration (including the rule-set
// generation), and the optimizer-wide switches and STAR-array
// generation. Statements compiled under different fingerprints never
// share a plan-cache entry; see plancache.go.
func (db *DB) fingerprint(set settings) string {
	rw := "off"
	if !set.skipRewrite {
		r := set.rewrite
		rw = fmt.Sprintf("st%v,so%v,b%d,cls[%s],seed%d,val%t,aud%t,gen%d",
			r.Strategy, r.Search, r.Budget, strings.Join(r.Classes, "+"),
			r.Seed, r.Validate, r.Audit, db.rewriter.Generation())
	}
	return fmt.Sprintf("dop=%d|rw=%s|opt=%s", set.dop, rw, db.opt.Fingerprint())
}

// cacheKey keys the plan cache: normalized statement text plus the
// settings fingerprint, separated by a byte that cannot appear in SQL.
func (db *DB) cacheKey(query string, set settings) string {
	return normalizeSQL(query) + "\x00" + db.fingerprint(set)
}

// Session is an independent client handle on a shared DB. Sessions are
// cheap to create, safe for use from one goroutine at a time, and
// isolated from each other: a setting changed on one session affects
// that session alone, while DDL, data, extensions and the plan cache
// remain shared through the DB. Any number of sessions may execute
// statements concurrently; see the concurrency contract on DB.Query.
//
// A session carries at most one open transaction. Session.Begin (or
// the SQL BEGIN statement) opens it; until Commit or Rollback every
// Session.Query/Exec runs inside it. With autocommit switched off (see
// SetAutocommit) the first statement opens a transaction implicitly
// and COMMIT / ROLLBACK ends it.
type Session struct {
	db *DB
	// id identifies the session in SYS.SESSIONS.
	id int64

	mu  sync.Mutex
	set settings
	// tx is the session's open transaction, nil between transactions.
	tx *Tx
	// autocommit, when false, makes the first statement after a commit
	// or rollback begin a new transaction implicitly (the classic
	// chained mode); true (the default) wraps each standalone statement
	// in its own auto-commit transaction.
	autocommit bool

	// cur is the in-flight statement text, nil when idle; stmts counts
	// statements executed. Both feed SYS.SESSIONS.
	cur   atomic.Pointer[string]
	stmts atomic.Int64
}

// NewSession opens a session initialized with the DB's current default
// settings. Sessions appear in SYS.SESSIONS until Closed.
func (db *DB) NewSession() *Session {
	s := &Session{db: db, set: db.snapshot(), autocommit: true}
	s.id = db.sessions.add(s)
	return s
}

// ID returns the session's SYS.SESSIONS identifier.
func (s *Session) ID() int64 { return s.id }

// Close removes the session from SYS.SESSIONS. The handle stays usable
// (statements still execute) but is no longer listed; Close is
// idempotent.
func (s *Session) Close() { s.db.sessions.remove(s.id) }

// begin/end bracket one statement for the SYS.SESSIONS live view.
func (s *Session) begin(query string) {
	s.cur.Store(&query)
	s.stmts.Add(1)
}

func (s *Session) end() { s.cur.Store(nil) }

// DB returns the shared database this session is a handle on.
func (s *Session) DB() *DB { return s.db }

// snapshot returns this session's settings for one statement.
func (s *Session) snapshot() settings {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.set
}

// Query parses, compiles and executes one statement under this
// session's settings. It is the session-level twin of DB.Query. While
// the session has an open transaction the statement runs inside it;
// otherwise it runs in its own auto-commit transaction (or, with
// autocommit off, opens the session's next transaction implicitly).
func (s *Session) Query(ctx context.Context, query string, params map[string]Value) (*Result, error) {
	s.begin(query)
	defer s.end()
	if tx := s.openTx(); tx != nil {
		return tx.run(ctx, query, params, s.snapshot())
	}
	return s.db.query(ctx, query, params, s.snapshot(), s, nil)
}

// Exec is Query without a context, kept for symmetry with DB.Exec.
func (s *Session) Exec(query string, params map[string]Value) (*Result, error) {
	return s.Query(context.Background(), query, params)
}

// Begin opens an explicit transaction on this session. Until Commit or
// Rollback, every statement the session executes runs inside it; a
// second Begin before then is an error. The SQL BEGIN statement is
// equivalent.
func (s *Session) Begin(ctx context.Context, opts ...TxOption) (*Tx, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tx != nil {
		return nil, fmt.Errorf("starburst: transaction already in progress on this session")
	}
	tx, err := s.db.beginTx(ctx, s.snapshot, s, false, opts...)
	if err != nil {
		return nil, err
	}
	s.tx = tx
	return tx, nil
}

// beginLazy opens the session's next transaction implicitly: the
// statement core calls it for the first statement after a commit or
// rollback when autocommit is off.
func (s *Session) beginLazy(ctx context.Context) (*Tx, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tx != nil {
		return s.tx, nil
	}
	tx, err := s.db.beginTx(ctx, s.snapshot, s, false)
	if err != nil {
		return nil, err
	}
	s.tx = tx
	return tx, nil
}

// openTx returns the session's open transaction, nil when idle.
func (s *Session) openTx() *Tx {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tx
}

// Tx returns the session's open transaction, or nil when the session
// is between transactions.
func (s *Session) Tx() *Tx { return s.openTx() }

// clearTx detaches a finished transaction from the session.
func (s *Session) clearTx(tx *Tx) {
	s.mu.Lock()
	if s.tx == tx {
		s.tx = nil
	}
	s.mu.Unlock()
}

// SetAutocommit switches the session between auto-commit mode (the
// default: each standalone statement is its own transaction) and
// chained mode (off: the first statement after a commit or rollback
// implicitly begins the next transaction, which stays open until
// COMMIT or ROLLBACK). An already-open transaction is unaffected.
func (s *Session) SetAutocommit(on bool) {
	s.mu.Lock()
	s.autocommit = on
	s.mu.Unlock()
}

// Autocommit reports whether the session is in auto-commit mode.
func (s *Session) Autocommit() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.autocommit
}

// Prepare compiles a DML statement for repeated execution; the
// returned Stmt re-snapshots this session's settings on every run and
// joins the session's open transaction, if any, when run.
func (s *Session) Prepare(query string) (*Stmt, error) {
	st, err := s.db.prepare(query, s.snapshot)
	if err != nil {
		return nil, err
	}
	st.sess = s
	return st, nil
}

// SetParallelism sets this session's degree of parallelism; n <= 1
// plans serial execution. Other sessions and the DB default are
// unaffected.
func (s *Session) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.set.dop = n
	s.mu.Unlock()
}

// Parallelism reports this session's degree of parallelism.
func (s *Session) Parallelism() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.set.dop
}

// SetBatchSize tunes this session's batched execution path; n <= 1
// disables batching, 0 restores the executor default.
func (s *Session) SetBatchSize(n int) {
	s.mu.Lock()
	s.set.batchSize = n
	s.mu.Unlock()
}

// SetLimits installs this session's per-statement execution budgets;
// the zero Limits removes them.
func (s *Session) SetLimits(l Limits) {
	s.mu.Lock()
	s.set.limits = l
	s.mu.Unlock()
}

// GetLimits reports this session's per-statement budgets.
func (s *Session) GetLimits() Limits {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.set.limits
}

// SetTracing arms per-statement phase tracing for this session.
func (s *Session) SetTracing(on bool) {
	s.mu.Lock()
	s.set.tracing = on
	s.mu.Unlock()
}

// Tracing reports whether this session collects phase traces.
func (s *Session) Tracing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.set.tracing
}

// SetVectorized switches columnar (vectorized) execution on or off for
// this session. On by default; plans are unaffected — the switch picks
// between columnar and row operators at execution time, per operator.
func (s *Session) SetVectorized(on bool) {
	s.mu.Lock()
	s.set.vectorize = on
	s.mu.Unlock()
}

// Vectorized reports whether this session executes columnar.
func (s *Session) Vectorized() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.set.vectorize
}

// SetSkipRewrite bypasses the query rewrite phase for this session.
func (s *Session) SetSkipRewrite(skip bool) {
	s.mu.Lock()
	s.set.skipRewrite = skip
	s.mu.Unlock()
}

// SetRewriteOptions configures the rewrite engine for this session.
func (s *Session) SetRewriteOptions(o RewriteOptions) {
	s.mu.Lock()
	s.set.rewrite = o
	s.mu.Unlock()
}

// ---------------------------------------------------------------------
// Functional options for Open

// Option configures a DB at Open time.
type Option func(*DB)

// WithParallelism sets the DB-wide default degree of parallelism (see
// SetParallelism).
func WithParallelism(n int) Option {
	return func(db *DB) { db.SetParallelism(n) }
}

// WithBatchSize sets the DB-wide default execution batch size (see
// SetBatchSize).
func WithBatchSize(n int) Option {
	return func(db *DB) { db.SetBatchSize(n) }
}

// WithLimits sets the DB-wide default per-statement budgets (see
// SetLimits).
func WithLimits(l Limits) Option {
	return func(db *DB) { db.SetLimits(l) }
}

// WithPlanCache enables the shared plan cache, bounded to capacity
// compiled statements; capacity <= 0 leaves the cache disabled. See
// plancache.go for keying and invalidation.
func WithPlanCache(capacity int) Option {
	return func(db *DB) {
		if capacity > 0 {
			db.cache = newPlanCache(capacity, db.metrics)
		}
	}
}

// WithAudit opens the DB with self-checking compilation armed (see
// SetAudit).
func WithAudit(on bool) Option {
	return func(db *DB) { db.SetAudit(on) }
}

// WithVectorized sets the DB-wide default for columnar execution (on
// unless disabled; see Session.SetVectorized).
func WithVectorized(on bool) Option {
	return func(db *DB) { db.SetVectorized(on) }
}

// SetVectorized sets the DB-wide default for columnar (vectorized)
// execution. On by default: eligible scan, filter, project and
// aggregate operators run fused per-type kernels over column vectors,
// falling back to row execution per operator when an expression has no
// kernel. Plans and results are unaffected.
func (db *DB) SetVectorized(on bool) { db.vecDisabled.Store(!on) }

// Vectorized reports the DB-wide columnar execution default.
func (db *DB) Vectorized() bool { return !db.vecDisabled.Load() }
