package starburst

import (
	"math"
	"sync/atomic"

	"repro/internal/optimizer"
	"repro/internal/plan"
)

// Cardinality feedback closes the optimizer's estimation loop: while
// enabled, every statement runs instrumented, and at statement end the
// actual row count of each table scan is compared with the optimizer's
// estimate. A scan that diverged by 2x or more folds its actual
// cardinality into the table's observed-cardinality overlays
// (catalog.Table.ObserveCard — bounded, decayed), and the catalog
// version is bumped once for the statement so the plan cache's
// generational invalidation replans every affected statement with the
// corrected estimates.
//
// The cost of the loop is the instrumentation itself: statements run
// through the per-operator stats decorator (the row-oriented path, as
// under EXPLAIN ANALYZE), so feedback is an opt-in learning mode —
// enable it while a workload warms up or after bulk loads, and turn it
// off once plans have settled to return to full-speed (vectorized)
// execution. A fresh ANALYZE clears a table's learned corrections.

// cardDivergence is the estimate-vs-actual ratio at which a scan's
// cardinality is considered wrong enough to learn from. Below it the
// estimate is left alone, which is also what terminates the loop: once
// a replanned statement's estimates track its actuals, no further folds
// (or catalog version bumps) occur.
const cardDivergence = 2.0

// SetCardinalityFeedback enables or disables the feedback loop. Off by
// default.
func (db *DB) SetCardinalityFeedback(on bool) { db.cardFeedback.Store(on) }

// CardinalityFeedback reports whether the feedback loop is enabled.
func (db *DB) CardinalityFeedback() bool { return db.cardFeedback.Load() }

// WithCardinalityFeedback opens the DB with the feedback loop enabled
// (see SetCardinalityFeedback).
func WithCardinalityFeedback(on bool) Option {
	return func(db *DB) { db.SetCardinalityFeedback(on) }
}

// captureCardFeedback folds one finished statement's scan actuals into
// the catalog overlays and reports how many scans were folded. Runs
// after the statement released the statement lock; the overlay store
// has its own synchronization.
func (db *DB) captureCardFeedback(o *observation) int64 {
	if !db.cardFeedback.Load() || o.instr == nil || o.root == nil {
		return 0
	}
	// A plan that can stop early makes scan actuals an artifact of how
	// many rows the consumer pulled, not of the data; learn nothing.
	early := false
	plan.Walk(o.root, func(n *plan.Node) bool {
		if n.Op == plan.OpLimit {
			early = true
		}
		return !early
	})
	if early {
		return 0
	}
	var folds int64
	plan.Walk(o.root, func(n *plan.Node) bool {
		if n.Op != plan.OpScan || n.Table == nil || n.Table.System {
			return true
		}
		st := o.instr.OpStats(n)
		// Exactly one Open: a re-opened scan (nested-loop inner, recursive
		// fixpoint) accumulates rows across runs and a never-opened one
		// saw no data; neither is a cardinality observation.
		if st == nil || atomic.LoadInt64(&st.Opens) != 1 {
			return true
		}
		actual := float64(atomic.LoadInt64(&st.Rows))
		est := math.Max(1, n.Props.Rows)
		a := math.Max(1, actual)
		if a/est < cardDivergence && est/a < cardDivergence {
			return true
		}
		n.Table.ObserveCard(optimizer.ScanPredsKey(n.Preds), actual)
		folds++
		return true
	})
	if folds > 0 {
		// One bump per statement: stale cached plans (compiled against the
		// old estimates) are invalidated generationally and replan on
		// their next use.
		db.cat.BumpVersion()
	}
	return folds
}
