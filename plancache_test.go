package starburst

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// cacheDB opens a plan-cached DB with a populated inventory table.
func cacheDB(t testing.TB, capacity int) *DB {
	t.Helper()
	db := Open(WithPlanCache(capacity))
	db.MustExec(`CREATE TABLE inventory (partno INT, onhand_qty INT, type STRING)`, nil)
	for i := 0; i < 32; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO inventory VALUES (%d, %d, '%s')`,
			i, i*10, []string{"CPU", "DISK", "RAM", "NIC"}[i%4]), nil)
	}
	db.cache.reset() // measure from a clean slate
	return db
}

func TestPlanCacheHitMiss(t *testing.T) {
	db := cacheDB(t, 16)
	base := db.PlanCacheStats()

	const q = `SELECT partno FROM inventory WHERE type = 'CPU'`
	db.MustExec(q, nil)
	s := db.PlanCacheStats()
	if s.Misses != base.Misses+1 || s.Hits != base.Hits {
		t.Fatalf("first execution: want 1 miss 0 hits, got %+v", s)
	}
	db.MustExec(q, nil)
	db.MustExec(q, nil)
	s = db.PlanCacheStats()
	if s.Hits != base.Hits+2 || s.Misses != base.Misses+1 {
		t.Fatalf("re-executions must hit: got %+v", s)
	}
	if s.Size != 1 {
		t.Fatalf("want 1 live entry, got %d", s.Size)
	}

	// Results from a cached plan match a fresh compile.
	cold := Open()
	cold.MustExec(`CREATE TABLE inventory (partno INT, onhand_qty INT, type STRING)`, nil)
	for i := 0; i < 32; i++ {
		cold.MustExec(fmt.Sprintf(`INSERT INTO inventory VALUES (%d, %d, '%s')`,
			i, i*10, []string{"CPU", "DISK", "RAM", "NIC"}[i%4]), nil)
	}
	want := cold.MustExec(q, nil)
	got := db.MustExec(q, nil)
	if fmt.Sprint(want.Rows) != fmt.Sprint(got.Rows) {
		t.Fatalf("cached result diverged:\nwant %v\ngot  %v", want.Rows, got.Rows)
	}
}

func TestPlanCacheNormalization(t *testing.T) {
	db := cacheDB(t, 16)
	db.MustExec(`SELECT partno FROM inventory WHERE type = 'CPU'`, nil)
	// Same statement modulo case and whitespace: must hit.
	db.MustExec("select   partno\n\tFROM inventory WHERE type = 'CPU'", nil)
	s := db.PlanCacheStats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("normalized respelling must hit: %+v", s)
	}
	// Different literal content (including case inside the literal):
	// distinct entries.
	db.MustExec(`SELECT partno FROM inventory WHERE type = 'cpu'`, nil)
	s = db.PlanCacheStats()
	if s.Misses != 2 {
		t.Fatalf("literal-differing statement must miss: %+v", s)
	}
	// Parameterized statement: one entry across bindings.
	const qp = `SELECT partno FROM inventory WHERE type = :t`
	db.MustExec(qp, map[string]Value{"t": NewString("CPU")})
	r1 := db.MustExec(qp, map[string]Value{"t": NewString("DISK")})
	s = db.PlanCacheStats()
	if s.Misses != 3 || s.Hits != 2 {
		t.Fatalf("parameter rebinding must reuse one entry: %+v", s)
	}
	if len(r1.Rows) == 0 {
		t.Fatal("rebound execution returned no rows")
	}
}

// Every DDL statement kind and the statistics updater must invalidate
// affected cached plans.
func TestPlanCacheInvalidationEveryDDLKind(t *testing.T) {
	ddls := []string{
		`CREATE TABLE scratch (a INT)`,
		`CREATE INDEX scratch_a ON scratch (a)`,
		`CREATE VIEW vscratch AS SELECT a FROM scratch`,
		`ANALYZE inventory`,
		`DROP VIEW vscratch`,
		`DROP INDEX scratch_a ON scratch`,
		`DROP TABLE scratch`,
	}
	db := cacheDB(t, 16)
	const q = `SELECT partno FROM inventory WHERE onhand_qty > 50`
	for i, ddl := range ddls {
		db.MustExec(q, nil) // prime (miss or re-prime after invalidation)
		db.MustExec(q, nil) // hit proves it is cached
		before := db.PlanCacheStats()
		db.MustExec(ddl, nil)
		db.MustExec(q, nil)
		after := db.PlanCacheStats()
		if after.Invalidations != before.Invalidations+1 {
			t.Fatalf("step %d (%s): want invalidation %d, got %d",
				i, ddl, before.Invalidations+1, after.Invalidations)
		}
		if after.Hits != before.Hits {
			t.Fatalf("step %d (%s): post-DDL execution must not hit a stale plan", i, ddl)
		}
		if after.Misses != before.Misses+1 {
			t.Fatalf("step %d (%s): post-DDL execution must recompile", i, ddl)
		}
	}
}

// Sessions with different plan-affecting settings must not share
// entries: a DOP-4 session's plan may contain exchange operators a
// serial session must never execute.
func TestPlanCacheFingerprintIsolation(t *testing.T) {
	db := cacheDB(t, 16)
	db.SetParallelThreshold(1)

	serial := db.NewSession()
	parallel := db.NewSession()
	parallel.SetParallelism(4)

	const q = `SELECT type FROM inventory ORDER BY type`
	ctx := context.Background()
	r1, err := serial.Query(ctx, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := parallel.Query(ctx, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := db.PlanCacheStats()
	if s.Misses != 2 || s.Hits != 0 || s.Size != 2 {
		t.Fatalf("DOP 1 and DOP 4 must compile separate entries: %+v", s)
	}
	// Each session hits its own entry on re-execution.
	if _, err := serial.Query(ctx, q, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := parallel.Query(ctx, q, nil); err != nil {
		t.Fatal(err)
	}
	if s = db.PlanCacheStats(); s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("per-fingerprint re-execution must hit: %+v", s)
	}
	if fmt.Sprint(r1.Rows) != fmt.Sprint(r2.Rows) {
		t.Fatalf("serial and parallel plans disagree:\n%v\n%v", r1.Rows, r2.Rows)
	}
}

func TestPlanCacheLRUBound(t *testing.T) {
	const capacity = 4
	db := cacheDB(t, capacity)
	for i := 0; i < 3*capacity; i++ {
		db.MustExec(fmt.Sprintf(`SELECT partno FROM inventory WHERE partno = %d`, i), nil)
	}
	s := db.PlanCacheStats()
	if s.Size > capacity {
		t.Fatalf("cache exceeded its bound: %+v", s)
	}
	if s.Evictions != int64(3*capacity-capacity) {
		t.Fatalf("want %d evictions, got %+v", 3*capacity-capacity, s)
	}
	// The most recently used entries survive churn.
	last := fmt.Sprintf(`SELECT partno FROM inventory WHERE partno = %d`, 3*capacity-1)
	db.MustExec(last, nil)
	if got := db.PlanCacheStats(); got.Hits != s.Hits+1 {
		t.Fatalf("most recent entry must still be cached: %+v", got)
	}
}

func TestPlanCacheMetricsExposed(t *testing.T) {
	db := cacheDB(t, 8)
	const q = `SELECT partno FROM inventory`
	db.MustExec(q, nil)
	db.MustExec(q, nil)
	var b strings.Builder
	if _, err := db.Metrics().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	dump := b.String()
	for _, metric := range []string{
		MetricPlanCacheHits, MetricPlanCacheMisses,
		MetricPlanCacheEvictions, MetricPlanCacheInvalidations,
		MetricPlanCacheSize,
	} {
		if !strings.Contains(dump, metric) {
			t.Fatalf("metrics exposition missing %s:\n%s", metric, dump)
		}
	}
}

func TestPlanCachePrepareShares(t *testing.T) {
	db := cacheDB(t, 8)
	const q = `SELECT partno FROM inventory WHERE type = :t`
	db.MustExec(q, map[string]Value{"t": NewString("CPU")})
	st, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	s := db.PlanCacheStats()
	if s.Hits != 1 {
		t.Fatalf("Prepare of an ad-hoc-cached statement must hit: %+v", s)
	}
	res, err := st.Run(map[string]Value{"t": NewString("DISK")})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("prepared run returned no rows")
	}
}

// Disabled cache: zero stats, no caching.
func TestPlanCacheDisabled(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (a INT)`, nil)
	db.MustExec(`SELECT a FROM t`, nil)
	db.MustExec(`SELECT a FROM t`, nil)
	if s := db.PlanCacheStats(); s != (PlanCacheStats{}) {
		t.Fatalf("cache-off DB must report zero stats, got %+v", s)
	}
}

// sortedRows renders a result set order-independently, so serial and
// parallel executions compare as multisets.
func sortedRows(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

// TestConcurrentSessionsStress is the concurrency-contract stress: many
// goroutines running mixed queries, prepared statements, cancellations,
// and DDL (on scratch tables disjoint from the queried data, so query
// results stay comparable to serial execution) against one shared DB
// with the plan cache on. Run under -race this validates the RWMutex
// statement contract and the immutability of shared cached plans.
func TestConcurrentSessionsStress(t *testing.T) {
	const (
		goroutines = 8
		iters      = 60
	)
	db := cacheDB(t, 32)
	db.SetParallelThreshold(1)

	queries := []string{
		`SELECT partno FROM inventory WHERE type = 'CPU'`,
		`SELECT type, COUNT(*) FROM inventory GROUP BY type`,
		`SELECT partno, onhand_qty FROM inventory WHERE onhand_qty > :q ORDER BY partno`,
		`SELECT DISTINCT type FROM inventory`,
	}
	params := map[string]Value{"q": NewInt(100)}

	// Serial baseline, computed before any concurrency.
	want := make([][]string, len(queries))
	for i, q := range queries {
		res, err := db.Exec(q, params)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sortedRows(res.Rows)
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.NewSession()
			sess.SetParallelism(1 + g%4) // mix of serial and parallel sessions
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				switch {
				case g == 0 && i%10 == 4:
					// DDL churn on scratch tables: exclusive lock plus
					// cache invalidation, interleaved with queries.
					name := fmt.Sprintf("scratch_%d", i)
					if _, err := sess.Query(ctx, `CREATE TABLE `+name+` (a INT)`, nil); err != nil {
						t.Errorf("create %s: %v", name, err)
						continue
					}
					if _, err := sess.Query(ctx, `DROP TABLE `+name, nil); err != nil {
						t.Errorf("drop %s: %v", name, err)
					}
				case g == 1 && i%10 == 7:
					// ANALYZE is the statistics-update invalidation path.
					if _, err := sess.Query(ctx, `ANALYZE inventory`, nil); err != nil {
						t.Errorf("analyze: %v", err)
					}
				case g == 2 && i%10 == 5:
					// Pre-cancelled statements must fail cleanly, not race.
					cctx, cancel := context.WithCancel(ctx)
					cancel()
					if _, err := sess.Query(cctx, queries[i%len(queries)], params); err == nil {
						// A cancelled context may still win the race on
						// tiny results; either outcome is acceptable.
						continue
					}
				case g == 3 && i%10 == 9:
					// Prepared statements share the cache too.
					st, err := sess.Prepare(queries[i%len(queries)])
					if err != nil {
						t.Errorf("prepare: %v", err)
						continue
					}
					res, err := st.Query(ctx, params)
					if err != nil {
						t.Errorf("prepared run: %v", err)
						continue
					}
					q := i % len(queries)
					if got := sortedRows(res.Rows); fmt.Sprint(got) != fmt.Sprint(want[q]) {
						t.Errorf("goroutine %d prepared query %d diverged from serial", g, q)
					}
				default:
					q := i % len(queries)
					res, err := sess.Query(ctx, queries[q], params)
					if err != nil {
						t.Errorf("goroutine %d query %d: %v", g, q, err)
						continue
					}
					if got := sortedRows(res.Rows); fmt.Sprint(got) != fmt.Sprint(want[q]) {
						t.Errorf("goroutine %d query %d diverged from serial:\nwant %v\ngot  %v",
							g, q, want[q], got)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// After the dust settles the cache is still bounded and consistent,
	// and the DB still answers queries.
	s := db.PlanCacheStats()
	if s.Size > s.Capacity {
		t.Fatalf("cache over capacity after stress: %+v", s)
	}
	for i, q := range queries {
		res, err := db.Exec(q, params)
		if err != nil {
			t.Fatal(err)
		}
		if got := sortedRows(res.Rows); fmt.Sprint(got) != fmt.Sprint(want[i]) {
			t.Fatalf("post-stress query %d diverged from serial", i)
		}
	}
}

// Sessions are isolated: a limit set on one session must not throttle
// another, and a DB-level default applies only to snapshots taken
// after it.
func TestSessionSettingIsolation(t *testing.T) {
	db := cacheDB(t, 8)
	tight := db.NewSession()
	tight.SetLimits(Limits{MaxMem: 100})
	loose := db.NewSession()

	// The sort must materialize well over 100 bytes, tripping the
	// memory budget at reservation time (not amortized).
	const q = `SELECT partno FROM inventory ORDER BY onhand_qty`
	ctx := context.Background()
	if _, err := tight.Query(ctx, q, nil); err == nil {
		t.Fatal("100-byte memory budget must trip on a 32-row sort")
	} else {
		var rerr *ResourceError
		if !errors.As(err, &rerr) {
			t.Fatalf("want ResourceError through the wrap chain, got %T: %v", err, err)
		}
	}
	if _, err := loose.Query(ctx, q, nil); err != nil {
		t.Fatalf("unlimited session was throttled: %v", err)
	}
}
