package starburst

// Columnar-execution equivalence and robustness: the random query
// corpus must return identical results row-at-a-time, row-batched, and
// columnar (serial and at DOP 4) — vectorization changes the plan's
// execution shape, never its meaning — and the columnar operators must
// survive the same fault / cancellation / budget matrix as the row
// path. This file runs under -race in CI alongside parallel_test.go.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/exec"
)

// execMode is one execution configuration of the same DB.
type execMode struct {
	name  string
	vec   bool
	batch int // 0 keeps the default size
}

// threeWayModes is the row == batch == columnar comparison set, with
// degenerate and odd batch sizes to stress container-boundary reuse.
var threeWayModes = []execMode{
	{name: "row", vec: false, batch: 1},
	{name: "batch", vec: false, batch: 0},
	{name: "batch-odd", vec: false, batch: 3},
	{name: "columnar", vec: true, batch: 0},
	{name: "columnar-tiny", vec: true, batch: 2},
}

// runMode executes q under one mode at the given DOP.
func runMode(t *testing.T, db *DB, m execMode, dop int, q string) string {
	t.Helper()
	db.SetVectorized(m.vec)
	db.SetBatchSize(m.batch)
	db.SetParallelism(dop)
	res, err := db.Exec(q, nil)
	if err != nil {
		t.Fatalf("mode %s dop=%d: %s: %v", m.name, dop, q, err)
	}
	return canonical(res)
}

// TestColumnarEquivalenceCorpus runs the random corpus through every
// execution mode, serial and parallel, against the row-at-a-time
// serial baseline.
func TestColumnarEquivalenceCorpus(t *testing.T) {
	db := genParallelDB(t, 17)
	gen := &queryGen{rng: rand.New(rand.NewSource(29))}
	for i := 0; i < 50; i++ {
		q := gen.query()
		if i%7 == 3 {
			q = gen.lateralQuery()
		}
		want := runMode(t, db, threeWayModes[0], 1, q)
		for _, m := range threeWayModes[1:] {
			for _, dop := range []int{1, 4} {
				if got := runMode(t, db, m, dop, q); got != want {
					t.Fatalf("mode %s dop=%d diverged on %s\nrow:  %s\ngot:  %s",
						m.name, dop, q, want, got)
				}
			}
		}
	}
}

// TestColumnarAggregates aims the mode matrix at the columnar group
// operator specifically: the corpus generator emits no aggregates, and
// the fused hash-aggregate kernels (typed COUNT/SUM/AVG lanes, boxed
// MIN/MAX fallback, NULL group keys) deserve directed coverage.
func TestColumnarAggregates(t *testing.T) {
	db := genParallelDB(t, 19)
	queries := []string{
		"SELECT k, COUNT(*), SUM(v) FROM ta GROUP BY k",
		"SELECT k, MIN(v), MAX(v), AVG(v) FROM tb GROUP BY k",
		"SELECT s, COUNT(v) FROM ta GROUP BY s",
		"SELECT COUNT(*) FROM ta",
		"SELECT SUM(v), AVG(v) FROM tb WHERE k > 3",
		"SELECT k, COUNT(*) FROM ta WHERE v >= 5 AND s IS NOT NULL GROUP BY k",
		"SELECT DISTINCT k FROM tc",
		"SELECT x.k, COUNT(*) FROM ta x, tb y WHERE x.k = y.k GROUP BY x.k",
	}
	for _, q := range queries {
		want := runMode(t, db, threeWayModes[0], 1, q)
		for _, m := range threeWayModes[1:] {
			for _, dop := range []int{1, 4} {
				if got := runMode(t, db, m, dop, q); got != want {
					t.Fatalf("mode %s dop=%d diverged on %s\nrow:  %s\ngot:  %s",
						m.name, dop, q, want, got)
				}
			}
		}
	}
}

// TestColumnarBuildEngages guards the corpus against vacuity: a
// vectorized build of scan / filter / project / aggregate plans must
// actually produce columnar streams, and a row build must not.
func TestColumnarBuildEngages(t *testing.T) {
	db := genDB(t, 1)
	for _, q := range []string{
		"SELECT k, v, s FROM ta",
		"SELECT k FROM ta WHERE v > 5 AND k <> 3",
		"SELECT v FROM tb WHERE k IS NOT NULL",
	} {
		compiled := preparedPlan(q)(t, db)
		st, err := db.builder.Vectorized(true).Build(compiled.Root, nil)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if _, ok := st.(exec.ColBatchStream); !ok {
			t.Fatalf("vectorized build of %q produced %T, not a ColBatchStream", q, st)
		}
		st, err = db.builder.Vectorized(false).Build(compiled.Root, nil)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if _, ok := st.(exec.ColBatchStream); ok {
			t.Fatalf("row build of %q produced a ColBatchStream (%T)", q, st)
		}
	}
}

// TestColumnarFaultMatrix injects storage faults under each columnar
// operator (the vectorized path is the default, so db.Exec runs it):
// the statement must fail with a FaultError, leak no iterators, and
// leave the DB reusable.
func TestColumnarFaultMatrix(t *testing.T) {
	cases := []struct {
		name  string
		sql   string
		fault *Fault
	}{
		{name: "col-scan", sql: `SELECT id FROM items`,
			fault: &Fault{Table: "items", Op: FaultScan, Err: "boom"}},
		{name: "col-scan-midbatch", sql: `SELECT id FROM items`,
			fault: &Fault{Table: "items", Op: FaultScan, After: 3, Err: "boom"}},
		{name: "col-filter", sql: `SELECT id FROM items WHERE qty > 20 AND id <> 5`,
			fault: &Fault{Table: "items", Op: FaultScan, After: 2, Err: "boom"}},
		{name: "col-project", sql: `SELECT qty, tag FROM items WHERE qty >= 0`,
			fault: &Fault{Table: "items", Op: FaultScan, Err: "boom"}},
		{name: "col-agg", sql: `SELECT tag, COUNT(*), SUM(qty) FROM items WHERE qty > 0 GROUP BY tag`,
			fault: &Fault{Table: "items", Op: FaultScan, After: 4, Err: "boom"}},
		{name: "col-join-filter", sql: `SELECT o.oid FROM orders o, items i WHERE o.item = i.id AND i.qty > 10`,
			fault: &Fault{Table: "orders", Op: FaultScan, Err: "boom"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			db := robustDB(t)
			if !db.Vectorized() {
				t.Fatal("vectorized execution is not the default")
			}
			db.InjectFaults(c.fault)
			_, err := db.Exec(c.sql, nil)
			var fe *FaultError
			if !errors.As(err, &fe) {
				t.Fatalf("want FaultError, got %v", err)
			}
			if n := db.Faults().OpenIterators(); n != 0 {
				t.Fatalf("%d iterators leaked", n)
			}
			db.ClearFaults()
			mustExec(t, db, c.sql)
		})
	}
}

// TestColumnarCancelAndBudgets drives the cancellation path and every
// resource budget through vectorized statements: the batch-amortized
// tick must still observe deadlines, row quotas, and the memory
// charge, and cancellation must not strand the arena scan.
func TestColumnarCancelAndBudgets(t *testing.T) {
	t.Run("cancel", func(t *testing.T) {
		db := robustDB(t)
		db.InjectFaults(&Fault{Table: "items", Op: FaultScan, Latency: 10 * time.Second})
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err := db.ExecContext(ctx, `SELECT tag, COUNT(*) FROM items WHERE qty > 0 GROUP BY tag`, nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Fatalf("cancellation took %v, want < 100ms", elapsed)
		}
		if n := db.Faults().OpenIterators(); n != 0 {
			t.Fatalf("%d iterators leaked", n)
		}
	})

	t.Run("timeout", func(t *testing.T) {
		db := bigDB(t)
		db.SetLimits(Limits{Timeout: time.Millisecond})
		_, err := db.Exec(`SELECT COUNT(*) FROM nums a, nums b, nums c WHERE a.n < b.n AND b.n < c.n`, nil)
		var re *ResourceError
		if !errors.As(err, &re) || re.Budget != "time" {
			t.Fatalf("want ResourceError(time), got %v", err)
		}
	})

	t.Run("rows", func(t *testing.T) {
		db := bigDB(t)
		db.SetLimits(Limits{MaxRows: 100})
		_, err := db.Exec(`SELECT COUNT(*) FROM nums WHERE n >= 0`, nil)
		var re *ResourceError
		if !errors.As(err, &re) || re.Budget != "rows" {
			t.Fatalf("want ResourceError(rows), got %v", err)
		}
		db.SetLimits(Limits{MaxRows: 1000_000})
		mustExec(t, db, `SELECT COUNT(*) FROM nums WHERE n >= 0`)
	})

	t.Run("mem", func(t *testing.T) {
		db := bigDB(t)
		db.SetLimits(Limits{MaxMem: 100})
		_, err := db.Exec(`SELECT n, COUNT(*) FROM nums GROUP BY n`, nil)
		var re *ResourceError
		if !errors.As(err, &re) || re.Budget != "mem" {
			t.Fatalf("want ResourceError(mem), got %v", err)
		}
		db.SetLimits(Limits{MaxMem: 1 << 20})
		mustExec(t, db, `SELECT n, COUNT(*) FROM nums GROUP BY n`)
	})
}

// TestColumnarFaultMatrixUnderTinyBatches repeats the fault sweep with
// the batch width degenerate, so fault indices land on batch
// boundaries as well as inside them.
func TestColumnarFaultMatrixUnderTinyBatches(t *testing.T) {
	for after := 0; after <= 6; after++ {
		db := robustDB(t)
		db.SetBatchSize(2)
		db.InjectFaults(&Fault{Table: "items", Op: FaultScan, After: int64(after), Err: "boom"})
		_, err := db.Exec(`SELECT tag, SUM(qty) FROM items WHERE qty > 0 GROUP BY tag`, nil)
		var fe *FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("after=%d: want FaultError, got %v", after, err)
		}
		if n := db.Faults().OpenIterators(); n != 0 {
			t.Fatalf("after=%d: %d iterators leaked", after, n)
		}
		db.ClearFaults()
		res := mustExec(t, db, fmt.Sprintf(`SELECT COUNT(*) FROM items WHERE id > %d`, after%3))
		if res.Rows[0][0].Int() == 0 {
			t.Fatalf("after=%d: DB unusable after cleared fault", after)
		}
	}
}
