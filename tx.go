package starburst

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/txn"
)

// This file is the transaction-first half of the public API. Every
// statement the engine executes runs inside a transaction: an explicit
// one opened with DB.Begin / Session.Begin (or the SQL BEGIN
// statement), or an implicit auto-commit transaction wrapped around a
// single statement. A transaction captures an MVCC snapshot at Begin —
// a commit-timestamp watermark plus its own ID — and a pinned
// copy-on-write catalog generation, so its statements observe a stable
// view of both data and schema while concurrent writers and DDL
// proceed without blocking it.

// Transaction errors, re-exported from the internal txn package so
// callers can classify failures with errors.Is / errors.As.
var (
	// ErrTxDone is returned by operations on a transaction that has
	// already been committed or rolled back.
	ErrTxDone = errors.New("starburst: transaction has already been committed or rolled back")
	// ErrWriteConflict is wrapped by every first-writer-wins conflict:
	// the row a statement wrote was written by another transaction that
	// is still in flight or that committed after this transaction's
	// snapshot. Roll back and retry.
	ErrWriteConflict = txn.ErrWriteConflict
)

// ConflictError is the typed first-writer-wins conflict, naming the
// table and (when known) the competing in-flight transaction.
type ConflictError = txn.ConflictError

// MetricGCErrors counts version-garbage-collection passes that reported
// an error (individual row cleanups that failed; the queue keeps
// draining past them).
const MetricGCErrors = "starburst_txn_gc_errors_total"

// IsolationLevel selects how a transaction's statements capture their
// MVCC snapshots.
type IsolationLevel int

const (
	// LevelSnapshot (the default) captures one snapshot at Begin; every
	// statement of the transaction reads that same stable view,
	// regardless of what commits around it.
	LevelSnapshot IsolationLevel = iota
	// LevelReadCommitted re-captures the snapshot at each statement
	// start, so every statement sees all transactions committed before
	// it began (but never uncommitted writes).
	LevelReadCommitted
)

func (l IsolationLevel) String() string {
	switch l {
	case LevelSnapshot:
		return "snapshot"
	case LevelReadCommitted:
		return "read committed"
	default:
		return "unknown"
	}
}

// TxOption configures one transaction at Begin.
type TxOption func(*txConfig)

type txConfig struct {
	iso IsolationLevel
}

// WithIsolation selects the transaction's isolation level. The default
// is LevelSnapshot: one stable snapshot for the whole transaction.
func WithIsolation(l IsolationLevel) TxOption {
	return func(c *txConfig) { c.iso = l }
}

// Tx is one open transaction: a handle whose Query/Exec run statements
// against the transaction's snapshot and whose Commit/Rollback end it.
// A Tx is safe for use from one goroutine at a time. Statements of a
// transaction see their own uncommitted writes; no other transaction
// does until Commit publishes them atomically.
type Tx struct {
	db   *DB
	sess *Session // owning session, nil for DB-level transactions
	iso  IsolationLevel
	// cat is the catalog generation pinned at Begin: concurrent DDL
	// publishes new generations without disturbing this view.
	cat *catalog.Catalog
	// ts carries the transaction identity, snapshot and write log.
	ts *catalog.TxnState
	// snapSet re-reads the owning handle's settings per statement.
	snapSet func() settings
	// durable is the commit hook run under the commit mutex while the
	// outcome is still invisible (WAL transaction commit + fsync); nil
	// for in-memory databases.
	durable func(cts int64) error

	mu   sync.Mutex
	done bool
}

// beginTx is the single transaction constructor behind DB.Begin,
// Session.Begin and the SQL BEGIN statement.
func (db *DB) beginTx(goCtx context.Context, snapSet func() settings, sess *Session, implicit bool, opts ...TxOption) (*Tx, error) {
	if db.openErr != nil {
		return nil, db.openErr
	}
	if goCtx != nil {
		if err := goCtx.Err(); err != nil {
			return nil, err
		}
	}
	cfg := txConfig{iso: LevelSnapshot}
	for _, o := range opts {
		o(&cfg)
	}
	tx := &Tx{
		db:      db,
		sess:    sess,
		iso:     cfg.iso,
		cat:     db.cat.Pin(),
		ts:      catalog.NewTxnState(db.mgr.Begin(implicit)),
		snapSet: snapSet,
	}
	tx.durable = db.txnDurableHook(tx)
	return tx, nil
}

// autoTx wraps one statement in an implicit auto-commit transaction.
// The statement core owns its lifecycle: commit on success, roll back
// on error.
func (db *DB) autoTx() *Tx { return db.autoTxOn(db.cat.Pin()) }

// autoTxOn is autoTx over an already-pinned catalog generation: the
// plan-cache fast path validates its entry against a generation before
// it knows whether it needs a transaction, and the transaction must
// read the same generation the plan was validated against.
func (db *DB) autoTxOn(cat *catalog.Catalog) *Tx {
	tx := &Tx{
		db:  db,
		iso: LevelSnapshot,
		cat: cat,
		ts:  catalog.NewTxnState(db.mgr.Begin(true)),
	}
	tx.durable = db.txnDurableHook(tx)
	return tx
}

// Begin opens an explicit transaction on the DB's default settings.
// The returned Tx must be ended with Commit or Rollback; until then its
// statements all run against the snapshot captured here.
func (db *DB) Begin(ctx context.Context, opts ...TxOption) (*Tx, error) {
	return db.beginTx(ctx, db.snapshot, nil, false, opts...)
}

// ID reports the transaction identifier (as shown by SYS.TRANSACTIONS).
func (tx *Tx) ID() int64 { return tx.ts.Txn.ID }

// Isolation reports the transaction's isolation level.
func (tx *Tx) Isolation() IsolationLevel { return tx.iso }

// settings snapshots the owning handle's settings for one statement.
func (tx *Tx) settings() settings {
	if tx.snapSet != nil {
		return tx.snapSet()
	}
	return tx.db.snapshot()
}

// stmtStart prepares the transaction for one statement: it counts the
// statement and, under read-committed isolation, refreshes the
// snapshot to the current watermark.
func (tx *Tx) stmtStart() {
	tx.ts.Txn.NoteStmt()
	if tx.iso == LevelReadCommitted {
		tx.db.mgr.Refresh(tx.ts.Txn)
	}
}

// snapshot is the visibility snapshot the transaction's next statement
// reads through.
func (tx *Tx) snapshot() txn.Snapshot { return tx.ts.Txn.Snap }

// walTxn is the WAL transaction tag the transaction's statement groups
// carry: 0 for implicit auto-commit transactions (their single
// statement group is self-committing, the pre-transaction WAL format),
// the transaction ID for explicit ones (their groups replay only after
// a transaction-commit record).
func (tx *Tx) walTxn() int64 {
	if tx.ts.Txn.Implicit {
		return 0
	}
	return tx.ts.Txn.ID
}

// Query parses, compiles and executes one statement inside the
// transaction. A failed statement rolls back its own effects but
// leaves the transaction open and usable.
func (tx *Tx) Query(ctx context.Context, query string, params map[string]Value) (*Result, error) {
	return tx.run(ctx, query, params, tx.settings())
}

// Exec is Query under context.Background().
func (tx *Tx) Exec(query string, params map[string]Value) (*Result, error) {
	return tx.run(context.Background(), query, params, tx.settings())
}

// run serializes the transaction's statements and funnels them into
// the DB statement core.
func (tx *Tx) run(goCtx context.Context, query string, params map[string]Value, set settings) (*Result, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return nil, ErrTxDone
	}
	return tx.db.query(goCtx, query, params, set, tx.sess, tx)
}

// Commit publishes the transaction's writes atomically: the commit
// record is made durable, every row version it wrote is stamped with
// the next commit timestamp, and the watermark advances so future
// snapshots see them. Commit returns ErrTxDone on an ended
// transaction.
func (tx *Tx) Commit() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	tx.db.adminMu.RLock()
	defer tx.db.adminMu.RUnlock()
	return tx.finish(true, nil)
}

// Rollback undoes every write the transaction made — heap images,
// version entries and index entries are restored by the write log's
// compensating actions — and ends it. Rollback returns ErrTxDone on an
// ended transaction.
func (tx *Tx) Rollback() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	tx.db.adminMu.RLock()
	defer tx.db.adminMu.RUnlock()
	return tx.finish(false, nil)
}

// finish ends the transaction. Callers hold tx.mu and the shared admin
// lock; the statement core calls it directly from inside a statement
// (COMMIT / ROLLBACK statements, auto-commit), the public
// Commit/Rollback wrap it. The commit hook, rollback compensations and
// version GC all touch storage, which surfaces injected faults as
// panics, so finish carries its own recover barrier: the statement
// core's barrier has already run by the time the auto-commit defer
// calls in here.
func (tx *Tx) finish(commit bool, ws *obs.WaitSet) (err error) {
	if tx.done {
		return ErrTxDone
	}
	phase := "txn"
	defer recoverQueryError(&phase, &err)
	tx.done = true
	defer tx.detach()
	db := tx.db
	t := tx.ts.Txn
	if !commit {
		err := db.rollbackDurable(tx)
		db.txnAborted(tx)
		db.mgr.Finish(t)
		db.runGC()
		return err
	}
	if tx.ts.Writes() == 0 {
		// Read-only: nothing to publish, no commit timestamp needed.
		db.txnAborted(tx)
		db.mgr.Finish(t)
		return nil
	}
	start := time.Now()
	_, err = db.mgr.Commit(t, tx.durable)
	d := time.Since(start).Nanoseconds()
	db.waitProf.Record(obs.WaitTxnCommit, d)
	ws.Record(obs.WaitTxnCommit, d)
	if err != nil {
		rb := db.rollbackDurable(tx)
		db.txnAborted(tx)
		db.mgr.Finish(t)
		return errors.Join(err, rb)
	}
	db.cat.EnqueueGC(tx.ts)
	db.runGC()
	return nil
}

// detach clears the owning session's open-transaction slot.
func (tx *Tx) detach() {
	if tx.sess != nil {
		tx.sess.clearTx(tx)
	}
}

// finishAuto ends a statement's implicit transaction: commit when the
// statement succeeded, roll back when it failed. The statement's own
// error wins; a rollback failure is joined to it.
func (db *DB) finishAuto(tx *Tx, err error, ws *obs.WaitSet) error {
	if err != nil {
		if rb := tx.finish(false, ws); rb != nil && !errors.Is(rb, ErrTxDone) {
			err = errors.Join(err, rb)
		}
		return err
	}
	return tx.finish(true, ws)
}

// runGC opportunistically drains the version-cleanup queue against the
// oldest active snapshot. Called after every commit and rollback;
// cheap when the queue is empty.
func (db *DB) runGC() {
	if err := db.cat.RunGC(db.mgr.Horizon()); err != nil {
		db.metrics.Counter(MetricGCErrors).Inc()
	}
}
