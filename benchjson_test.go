package starburst

import (
	"encoding/json"
	"os"
	"testing"
)

// TestEmitBenchJSON records the Figure-1 phase, parallel-execution and
// plan-cache benchmarks as JSON so successive PRs can track the
// performance trajectory (`make bench` writes BENCH_PR5.json; `make
// bench-compare` gates it against the PR-4 baseline). Skipped unless
// BENCH_JSON names the output file.
func TestEmitBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to emit benchmark JSON")
	}
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"Fig1PhaseParse", BenchmarkFig1PhaseParse},
		{"Fig1PhaseTranslate", BenchmarkFig1PhaseTranslate},
		{"Fig1PhaseRewrite", BenchmarkFig1PhaseRewrite},
		{"Fig1PhaseOptimize", BenchmarkFig1PhaseOptimize},
		{"Fig1PhaseExecute", BenchmarkFig1PhaseExecute},
		{"Fig1EndToEnd", BenchmarkFig1EndToEnd},
		// Tracing-off vs tracing-on vs fully instrumented: the pair below
		// bounds the observability overhead against Fig1EndToEnd.
		{"Fig1EndToEndTraced", BenchmarkFig1EndToEndTraced},
		{"Fig1EndToEndInstrumented", BenchmarkFig1EndToEndInstrumented},
		// PR-4 parallel/batched execution: exchange speedup on an
		// I/O-bound scan, and the allocation saving of the batched path.
		{"ParallelScanDOP1", BenchmarkParallelScanDOP1},
		{"ParallelScanDOP4", BenchmarkParallelScanDOP4},
		{"ScanFilterProjectTuple", BenchmarkScanFilterProjectTuple},
		{"ScanFilterProjectBatched", BenchmarkScanFilterProjectBatched},
		// PR-5 plan cache: cold compile-every-time vs served-from-cache
		// on a compile-dominated 6-way join chain.
		{"PlanCacheColdCompile", BenchmarkPlanCacheColdCompile},
		{"PlanCacheHit", BenchmarkPlanCacheHit},
		// PR-7 durable storage: DISK insert (WAL append + group fsync)
		// and scan (buffer pool) vs the same workload on the heap.
		{"DiskInsert", BenchmarkDiskInsert},
		{"HeapInsert", BenchmarkHeapInsert},
		{"DiskScan", BenchmarkDiskScan},
		{"HeapScan", BenchmarkHeapScan},
		// PR-9 columnar execution: the fused scan→filter→aggregate
		// kernels vs the row-batch path, and the cardinality-feedback
		// loop's steady-state and replan-cycle costs.
		{"ColScanFilterAgg", BenchmarkColScanFilterAgg},
		{"RowScanFilterAgg", BenchmarkRowScanFilterAgg},
		{"FeedbackOffExec", BenchmarkFeedbackOffExec},
		{"FeedbackArmedExec", BenchmarkFeedbackArmedExec},
		{"FeedbackReplan", BenchmarkFeedbackReplan},
		// PR-10 MVCC: the 8-goroutine mixed reader/writer/DDL workload
		// under snapshot isolation vs the same stream replayed behind
		// the retired DB-wide statement RWMutex.
		{"ConcurrentMixedMVCC", BenchmarkConcurrentMixedMVCC},
		{"ConcurrentMixedRWMutex", BenchmarkConcurrentMixedRWMutex},
	}
	out := map[string]map[string]int64{}
	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		out[bm.name] = map[string]int64{
			"ns_per_op":     r.NsPerOp(),
			"allocs_per_op": r.AllocsPerOp(),
			"bytes_per_op":  r.AllocedBytesPerOp(),
			"n":             int64(r.N),
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
