package starburst

import (
	"repro/internal/exec"
)

// This file is the DB-level surface of intra-query parallelism: the
// degree-of-parallelism and batch-size knobs, the parallel-execution
// metrics, and the runtime safety interlock that forces serial
// execution while a fault injector is attached (fault schedules count
// operations deterministically, which concurrent workers would break)
// — DML statements never parallelize in the first place, because the
// optimizer's exchange-insertion pass stops at DML operators.

// Parallel-execution metric names (see Metrics).
const (
	// MetricParallelStatements counts statements that actually executed
	// with parallel workers (an exchange that went parallel).
	MetricParallelStatements = "starburst_parallel_statements_total"
	// MetricParallelWorkers is a gauge of currently running exchange
	// worker goroutines; it returns to zero between statements.
	MetricParallelWorkers = "starburst_parallel_workers"
	// MetricExchangeBatchRows is a histogram of rows per merged
	// exchange batch.
	MetricExchangeBatchRows = "starburst_exchange_batch_rows"
	// MetricExchangeBackpressure counts times an exchange worker found
	// the merge channel full and had to block (producer faster than
	// consumer).
	MetricExchangeBackpressure = "starburst_exchange_backpressure_total"
)

// exchangeBatchBuckets are the MetricExchangeBatchRows bounds: batch
// sizes are small integers, so the buckets are too.
var exchangeBatchBuckets = []float64{1, 4, 16, 64, 256, 1024}

// SetParallelism sets the degree of parallelism (DOP) for subsequent
// statements: n > 1 lets the optimizer insert exchange operators that
// run eligible plan subtrees on n worker goroutines; n <= 1 restores
// serial execution. Parallel plans produce the same result sets as
// serial ones (and the same order, for ORDER BY queries — the exchange
// merge preserves sort order).
func (db *DB) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	db.dop.Store(int32(n))
	db.opt.SetParallelism(n)
}

// Parallelism reports the configured DOP.
func (db *DB) Parallelism() int {
	if d := db.dop.Load(); d > 1 {
		return int(d)
	}
	return 1
}

// SetParallelThreshold overrides the minimum estimated scan cardinality
// before the optimizer considers parallelizing a plan; n <= 0 restores
// the default. Mainly for tests and experiments on small tables.
func (db *DB) SetParallelThreshold(n int64) { db.opt.SetParallelThreshold(n) }

// SetBatchSize tunes the batched execution path: operators that support
// it move rows in batches of n instead of one at a time. n <= 1
// disables batching (pure tuple-at-a-time interpretation), n == 0
// restores the default (64).
func (db *DB) SetBatchSize(n int) { db.batchSize.Store(int32(n)) }

// effectiveDOP is the DOP a statement actually runs with: the
// snapshotted session value, forced to 1 while a fault injector is
// attached.
func (db *DB) effectiveDOP(set settings) int {
	if db.faults != nil {
		return 1
	}
	return set.dop
}

// parallelObs builds the exec-layer observability hooks backed by this
// DB's metrics registry.
func (db *DB) parallelObs() *exec.ParallelObs {
	m := db.metrics
	workers := m.Gauge(MetricParallelWorkers)
	batchRows := m.Histogram(MetricExchangeBatchRows, exchangeBatchBuckets)
	return &exec.ParallelObs{
		ParallelStatement: m.Counter(MetricParallelStatements).Inc,
		WorkerStart:       func() { workers.Add(1) },
		WorkerDone:        func() { workers.Add(-1) },
		Batch:             func(rows int) { batchRows.Observe(float64(rows)) },
		Backpressure:      m.Counter(MetricExchangeBackpressure).Inc,
	}
}

// armParallel configures one statement's execution context from its
// settings snapshot.
func (db *DB) armParallel(ctx *exec.Ctx, set settings) {
	ctx.SetDOP(db.effectiveDOP(set))
	ctx.SetBatchSize(set.batchSize)
	ctx.SetParallelObs(db.parallelObs())
}
