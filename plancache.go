package starburst

import (
	"container/list"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/plan"
)

// This file is the shared plan cache: a bounded LRU of compiled plans
// keyed by normalized statement text plus a fingerprint of every
// setting that influences plan choice. The paper stresses that a
// compiled plan is a reusable artifact — "the result of the compilation
// stage can be stored for future use" (section 3) — and every
// industrial descendant of Starburst leans on plan reuse to amortize
// compile cost under concurrent load.
//
// Correctness rests on two properties:
//
//   - entries are generation-stamped: each entry records the catalog
//     version it compiled against, and every DDL statement kind and
//     every statistics update bumps that version, so a lookup that
//     finds a stale entry evicts it lazily and reports a miss;
//   - *plan.Compiled values are immutable after compilation: the
//     executor builds a fresh operator tree from the shared plan per
//     execution and never writes through it, so any number of sessions
//     can execute one cached entry concurrently.

// Plan-cache metric names (see DB.Metrics).
const (
	// MetricPlanCacheHits counts statements served from the plan cache.
	MetricPlanCacheHits = "starburst_plan_cache_hits_total"
	// MetricPlanCacheMisses counts lookups that had to compile.
	MetricPlanCacheMisses = "starburst_plan_cache_misses_total"
	// MetricPlanCacheEvictions counts entries dropped by the LRU bound.
	MetricPlanCacheEvictions = "starburst_plan_cache_evictions_total"
	// MetricPlanCacheInvalidations counts entries dropped because the
	// catalog generation moved (DDL or statistics update).
	MetricPlanCacheInvalidations = "starburst_plan_cache_invalidations_total"
	// MetricPlanCacheSize gauges the number of live cached plans.
	MetricPlanCacheSize = "starburst_plan_cache_size"
)

// PlanCacheStats is a point-in-time snapshot of plan-cache behaviour
// (also exported through the metrics registry).
type PlanCacheStats struct {
	Hits, Misses, Evictions, Invalidations int64
	// Size is the current entry count; Capacity the LRU bound.
	Size, Capacity int
}

// cacheEntry is one cached compilation.
type cacheEntry struct {
	key      string
	compiled *plan.Compiled
	// kind is the statement classification ("SELECT", "INSERT", ...)
	// recorded so cache hits keep the per-kind statement metrics right
	// without re-parsing.
	kind string
	// gen is the catalog version the plan compiled against.
	gen int64
	// hits counts lookups served by this entry (under the cache lock);
	// surfaced per entry through SYS.PLAN_CACHE.
	hits int64
}

// planCache is the shared, bounded LRU. All methods are safe for
// concurrent use; the cache never blocks execution — the lock covers
// map/list surgery only.
type planCache struct {
	mu      sync.Mutex
	cap     int
	byKey   map[string]*list.Element
	lru     *list.List // front = most recently used; values are *cacheEntry
	stats   PlanCacheStats
	metrics struct {
		hits, misses, evictions, invalidations *obs.Counter
	}
}

// newPlanCache returns a cache bounded to capacity entries, wired to
// the given metrics registry.
func newPlanCache(capacity int, m *obs.Registry) *planCache {
	c := &planCache{
		cap:   capacity,
		byKey: map[string]*list.Element{},
		lru:   list.New(),
	}
	c.stats.Capacity = capacity
	c.metrics.hits = m.Counter(MetricPlanCacheHits)
	c.metrics.misses = m.Counter(MetricPlanCacheMisses)
	c.metrics.evictions = m.Counter(MetricPlanCacheEvictions)
	c.metrics.invalidations = m.Counter(MetricPlanCacheInvalidations)
	m.GaugeFunc(MetricPlanCacheSize, func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(c.lru.Len())
	})
	return c
}

// get returns the cached compilation for key if one exists and its
// generation matches the current catalog version. A stale entry is
// evicted lazily (counted as an invalidation) and reported as absent.
// Misses are not counted here: a lookup can precede parsing, so only
// the caller knows whether the statement was cacheable at all — it
// counts the miss via miss() when it compiles one.
func (c *planCache) get(key string, curGen int64) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != curGen {
		c.removeLocked(el)
		c.stats.Invalidations++
		c.metrics.invalidations.Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	e.hits++
	c.metrics.hits.Inc()
	return e, true
}

// miss records that a cacheable statement had to compile.
func (c *planCache) miss() {
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	c.metrics.misses.Inc()
}

// put inserts a freshly compiled entry, evicting from the LRU tail when
// the bound is exceeded. A concurrent insert under the same key wins by
// last-writer; both plans are equivalent (same text, same fingerprint,
// same generation), so which survives is immaterial.
func (c *planCache) put(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[e.key]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[e.key] = c.lru.PushFront(e)
	for c.lru.Len() > c.cap {
		c.removeLocked(c.lru.Back())
		c.stats.Evictions++
		c.metrics.evictions.Inc()
	}
}

func (c *planCache) removeLocked(el *list.Element) {
	delete(c.byKey, el.Value.(*cacheEntry).key)
	c.lru.Remove(el)
}

// reset empties the cache and zeroes the stats snapshot (the
// cumulative registry counters keep running); tests use it to measure
// from a clean slate after setup traffic.
func (c *planCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byKey = map[string]*list.Element{}
	c.lru.Init()
	c.stats = PlanCacheStats{Capacity: c.cap}
}

// cacheEntryInfo is one SYS.PLAN_CACHE row: the normalized statement
// text (the key with its settings fingerprint stripped), the statement
// kind, the catalog generation the plan compiled against, and the
// entry's hit count.
type cacheEntryInfo struct {
	name string
	kind string
	gen  int64
	hits int64
}

// entries snapshots every live entry, sorted by statement text then
// kind (two sessions with different fingerprints may cache the same
// text).
func (c *planCache) entries() []cacheEntryInfo {
	c.mu.Lock()
	out := make([]cacheEntryInfo, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		name := e.key
		if i := strings.IndexByte(name, 0); i >= 0 {
			name = name[:i]
		}
		out = append(out, cacheEntryInfo{name: name, kind: e.kind, gen: e.gen, hits: e.hits})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].kind < out[j].kind
	})
	return out
}

// snapshot returns current cache statistics.
func (c *planCache) snapshot() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = c.lru.Len()
	return s
}

// PlanCacheStats reports plan-cache behaviour; the zero value when the
// cache is disabled (see WithPlanCache).
func (db *DB) PlanCacheStats() PlanCacheStats {
	if db.cache == nil {
		return PlanCacheStats{}
	}
	return db.cache.snapshot()
}

// normalizeSQL canonicalizes statement text for cache keying: outside
// string literals, runs of whitespace collapse to one space and letters
// fold to upper case (the dialect is case-insensitive there); inside
// literals the text is preserved byte for byte. Two spellings of the
// same statement therefore share a cache entry, while statements
// differing only inside a literal still get distinct keys.
func normalizeSQL(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	inStr := false
	space := false
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if inStr {
			b.WriteByte(ch)
			if ch == '\'' {
				inStr = false
			}
			continue
		}
		switch {
		case ch == '\'':
			inStr = true
			space = false
			b.WriteByte(ch)
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			space = true
		default:
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			if 'a' <= ch && ch <= 'z' {
				ch -= 'a' - 'A'
			}
			b.WriteByte(ch)
		}
	}
	return b.String()
}
