package starburst

// Robustness tests: the fault matrix (every QES operator over a failing
// store), statement atomicity at every mutation index, cancellation and
// resource budgets, panic containment, and DML re-runnability. A fuzz
// target feeds random fault schedules through a fixed statement mix.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/qgm"
	"repro/internal/rewrite"
	"repro/internal/sql"
	"repro/internal/storage"
)

// robustDB builds the fixture schema for the robustness tests: items
// (indexed on id), orders, and an acyclic edges table for recursion.
func robustDB(tb testing.TB) *DB {
	tb.Helper()
	db := Open()
	mustExec(tb, db, `CREATE TABLE items (id INT NOT NULL, qty INT, tag STRING)`)
	mustExec(tb, db, `CREATE INDEX items_id ON items (id)`)
	mustExec(tb, db, `CREATE TABLE orders (oid INT, item INT, n INT)`)
	mustExec(tb, db, `CREATE TABLE edges (src INT, dst INT)`)
	for i := 1; i <= 8; i++ {
		tag := "CPU"
		if i%2 == 0 {
			tag = "DISK"
		}
		mustExec(tb, db, fmt.Sprintf(`INSERT INTO items VALUES (%d, %d, '%s')`, i, i*10, tag))
	}
	for i := 1; i <= 6; i++ {
		mustExec(tb, db, fmt.Sprintf(`INSERT INTO orders VALUES (%d, %d, %d)`, i, i%4+1, i*5))
	}
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 5}} {
		mustExec(tb, db, fmt.Sprintf(`INSERT INTO edges VALUES (%d, %d)`, e[0], e[1]))
	}
	for _, tn := range []string{"items", "orders", "edges"} {
		mustExec(tb, db, "ANALYZE "+tn)
	}
	return db
}

// relSnap is a byte-comparable image of one table: heap records with
// their RIDs in scan order, plus every index's entries in key order.
type relSnap struct {
	Heap    []string
	Indexes map[string][]string
}

// snapshotAll images every table through the raw (unwrapped) store, so
// snapshots are immune to injected faults.
func snapshotAll(tb testing.TB, db *DB) map[string]relSnap {
	tb.Helper()
	out := map[string]relSnap{}
	cat := db.Catalog()
	for _, name := range cat.TableNames() {
		t, ok := cat.Table(name)
		if !ok {
			tb.Fatalf("no table %s", name)
		}
		s := relSnap{Indexes: map[string][]string{}}
		it := storage.UnwrapRelation(t.Rel).Scan()
		for {
			row, rid, ok := it.Next()
			if !ok {
				break
			}
			s.Heap = append(s.Heap, fmt.Sprintf("%v@%v", datum.RowKey(row), rid))
		}
		it.Close()
		for _, ix := range t.Indexes {
			eit := storage.UnwrapAttachment(ix.At).Search(storage.Unbounded, storage.Unbounded)
			for {
				e, ok := eit.Next()
				if !ok {
					break
				}
				s.Indexes[ix.Name] = append(s.Indexes[ix.Name],
					fmt.Sprintf("%v@%v", datum.RowKey(e.Key), e.RID))
			}
			eit.Close()
		}
		out[name] = s
	}
	return out
}

func requireUnchanged(tb testing.TB, label string, before, after map[string]relSnap) {
	tb.Helper()
	if !reflect.DeepEqual(before, after) {
		tb.Fatalf("%s: partial mutation survived a failed statement:\nbefore: %v\nafter:  %v",
			label, before, after)
	}
}

// checkIndexConsistency verifies every index agrees with its heap: each
// entry's key matches the record at its RID, and entry count equals row
// count.
func checkIndexConsistency(tb testing.TB, db *DB) {
	tb.Helper()
	cat := db.Catalog()
	for _, name := range cat.TableNames() {
		t, ok := cat.Table(name)
		if !ok {
			tb.Fatalf("no table %s", name)
		}
		rows := map[string]datum.Row{}
		it := storage.UnwrapRelation(t.Rel).Scan()
		n := 0
		for {
			row, rid, ok := it.Next()
			if !ok {
				break
			}
			rows[fmt.Sprintf("%v", rid)] = row
			n++
		}
		it.Close()
		for _, ix := range t.Indexes {
			entries := 0
			eit := storage.UnwrapAttachment(ix.At).Search(storage.Unbounded, storage.Unbounded)
			for {
				e, ok := eit.Next()
				if !ok {
					break
				}
				entries++
				row, ok := rows[fmt.Sprintf("%v", e.RID)]
				if !ok {
					tb.Fatalf("%s.%s: entry %v points at missing record %v", name, ix.Name, e.Key, e.RID)
				}
				for ki, col := range ix.KeyCols {
					if cmp, ok := datum.Compare(e.Key[ki], row[col]); !ok || cmp != 0 {
						tb.Fatalf("%s.%s: entry key %v disagrees with record %v at %v",
							name, ix.Name, e.Key, row, e.RID)
					}
				}
			}
			eit.Close()
			if entries != n {
				tb.Fatalf("%s.%s: %d entries for %d records", name, ix.Name, entries, n)
			}
		}
	}
}

// registerSample installs the SAMPLE(table, n) table function.
func registerSample(tb testing.TB, db *DB) {
	tb.Helper()
	if err := db.RegisterTableFunc(&TableFunc{
		Name: "SAMPLE", NumTables: 1, NumScalars: 1,
		OutputCols: func(in [][]ColumnDef, _ []Value) ([]ColumnDef, error) { return in[0], nil },
		Eval: func(in []*Relation, scalars []Value) (*Relation, error) {
			n := int(scalars[0].Int())
			if n > len(in[0].Rows) {
				n = len(in[0].Rows)
			}
			return &Relation{Cols: in[0].Cols, Rows: in[0].Rows[:n]}, nil
		},
	}); err != nil {
		tb.Fatal(err)
	}
}

// TestFaultMatrix drives every operator exec.Build can emit over a
// failing store and asserts: the injected error propagates (typed, no
// panic), no iterator leaks, and no table is left partially mutated.
// mcase is one operator-coverage case, shared by the fault matrix and
// the observability-invariants test: a statement (or built plan) whose
// compiled form must contain the named operator, plus the fault that
// hits it.
type mcase struct {
	name  string
	op    string // plan op that must be present in the compiled plan
	sql   string
	fault *Fault
	// setup runs before compilation (optimizer forcing, DBC registration).
	setup func(t *testing.T, db *DB)
	// build overrides SQL compilation for plan shapes without syntax.
	build  func(t *testing.T, db *DB) *plan.Compiled
	params map[string]Value
}

// compilePlan resolves a case to its compiled plan (build override or
// SQL), asserting the expected operator is present.
func (c *mcase) compilePlan(t *testing.T, db *DB) *plan.Compiled {
	var compiled *plan.Compiled
	if c.build != nil {
		compiled = c.build(t, db)
	} else {
		compiled = preparedPlan(c.sql)(t, db)
	}
	ops := plan.CollectOps(compiled.Root)
	if ops[c.op] == 0 {
		t.Fatalf("plan for %q does not contain %s: %v", c.sql, c.op, ops)
	}
	return compiled
}

func preparedPlan(q string) func(*testing.T, *DB) *plan.Compiled {
	return func(t *testing.T, db *DB) *plan.Compiled {
		st, err := db.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		return st.compiled
	}
}

// faultMatrixCases is the operator-coverage table: every plan operator
// exec.Build handles, with a statement exercising it.
func faultMatrixCases() []mcase {
	scanFault := func(table string) *Fault {
		return &Fault{Table: table, Op: FaultScan, Err: "boom"}
	}
	prepared := preparedPlan
	recursiveQ := `WITH RECURSIVE reach (src, dst) AS (
		SELECT src, dst FROM edges WHERE src = 1
		UNION SELECT r.src, e.dst FROM reach r, edges e WHERE r.dst = e.src)
		SELECT src, dst FROM reach`
	return []mcase{
		{name: "scan", op: plan.OpScan,
			sql: `SELECT id, qty FROM items WHERE qty > 0`, fault: scanFault("items")},
		{name: "index-scan", op: plan.OpIndex,
			sql:   `SELECT qty FROM items WHERE id = 3`,
			fault: &Fault{Table: "items", Op: FaultIxSearch, Err: "boom"},
			setup: func(t *testing.T, db *DB) {
				db.Optimizer().Generator().RemoveAlternative("ACCESS", "TableScan")
			}},
		// A grouped derived table cannot be merged into the outer SELECT,
		// so the plan keeps an ACCESS over the box, and the predicate on
		// the aggregate output stays above it as a FILTER.
		{name: "access", op: plan.OpAccess,
			sql: `SELECT d.tag FROM (SELECT tag, COUNT(*) AS c FROM items GROUP BY tag) d WHERE d.c > 1`, fault: scanFault("items")},
		{name: "filter", op: plan.OpFilter,
			sql: `SELECT d.tag FROM (SELECT tag, COUNT(*) AS c FROM items GROUP BY tag) d WHERE d.c > 1`, fault: scanFault("items")},
		{name: "project", op: plan.OpProject,
			sql: `SELECT id + qty FROM items`, fault: scanFault("items")},
		{name: "sort", op: plan.OpSort,
			sql: `SELECT id FROM items ORDER BY qty`, fault: scanFault("items")},
		{name: "limit", op: plan.OpLimit,
			sql: `SELECT id FROM items LIMIT 3`, fault: scanFault("items")},
		{name: "nl-join", op: plan.OpNLJoin,
			sql: `SELECT i.id FROM items i, orders o WHERE i.qty < o.n`, fault: scanFault("orders")},
		{name: "hash-join", op: plan.OpHSJoin,
			sql:   `SELECT i.id FROM items i, orders o WHERE i.id = o.item`,
			fault: scanFault("orders"),
			setup: func(t *testing.T, db *DB) {
				g := db.Optimizer().Generator()
				g.RemoveAlternative("JOIN", "NestedLoop")
				g.RemoveAlternative("JOIN", "MergeJoin")
			}},
		{name: "merge-join", op: plan.OpSMJoin,
			sql:   `SELECT i.id FROM items i, orders o WHERE i.id = o.item`,
			fault: scanFault("orders"),
			setup: func(t *testing.T, db *DB) {
				g := db.Optimizer().Generator()
				g.RemoveAlternative("JOIN", "NestedLoop")
				g.RemoveAlternative("JOIN", "HashJoin")
			}},
		{name: "subquery", op: plan.OpSubq,
			sql: `SELECT oid FROM orders WHERE n > ALL (SELECT qty FROM items)`, fault: scanFault("items")},
		{name: "group", op: plan.OpGroup,
			sql: `SELECT tag, COUNT(*) FROM items GROUP BY tag`, fault: scanFault("items")},
		{name: "distinct", op: plan.OpDistinct,
			sql: `SELECT DISTINCT tag FROM items`, fault: scanFault("items")},
		{name: "union", op: plan.OpUnion,
			sql: `SELECT id FROM items UNION SELECT oid FROM orders`, fault: scanFault("orders")},
		{name: "intersect", op: plan.OpInter,
			sql: `SELECT id FROM items INTERSECT SELECT oid FROM orders`, fault: scanFault("orders")},
		{name: "except", op: plan.OpExcept,
			sql: `SELECT id FROM items EXCEPT SELECT oid FROM orders`, fault: scanFault("orders")},
		{name: "values", op: plan.OpValues,
			sql:   `INSERT INTO orders VALUES (99, 9, 9)`,
			fault: &Fault{Table: "orders", Op: FaultInsert, Err: "boom"}},
		{name: "insert", op: plan.OpInsert,
			sql:   `INSERT INTO orders SELECT id, id, qty FROM items`,
			fault: &Fault{Table: "orders", Op: FaultInsert, After: 3, Err: "boom"}},
		{name: "update", op: plan.OpUpdate,
			sql:   `UPDATE items SET qty = qty + 1 WHERE qty > 0`,
			fault: &Fault{Table: "items", Op: FaultUpdate, After: 2, Err: "boom"}},
		// Under MVCC a DELETE tombstones version entries; the physical
		// delete is deferred to GC, which bypasses fault decoration. The
		// statement's faultable storage operation is its read phase.
		{name: "delete", op: plan.OpDelete,
			sql:   `DELETE FROM items WHERE qty > 0`,
			fault: &Fault{Table: "items", Op: FaultScan, After: 2, Err: "boom"}},
		{name: "table-fn", op: plan.OpTableFn,
			sql: `SELECT COUNT(*) FROM SAMPLE(items, 3) s`, fault: scanFault("items"),
			setup: func(t *testing.T, db *DB) { registerSample(t, db) }},
		{name: "rec-union", op: plan.OpRecUnion,
			sql: recursiveQ, fault: &Fault{Table: "edges", Op: FaultScan, After: 6, Err: "boom"}},
		{name: "rec-ref", op: plan.OpRecRef,
			sql: recursiveQ, fault: scanFault("edges")},
		{name: "choose", op: plan.OpChoose,
			fault:  scanFault("items"),
			params: map[string]Value{"want": NewString("cpu")},
			build: func(t *testing.T, db *DB) *plan.Compiled {
				stmt, err := sql.Parse(`SELECT id FROM items WHERE tag = 'CPU'`)
				if err != nil {
					t.Fatal(err)
				}
				g, err := qgm.TranslateStatement(db.cat, stmt)
				if err != nil {
					t.Fatal(err)
				}
				alt := rewrite.CloneSubgraph(g, g.Top)
				for _, p := range alt.Preds {
					p.Expr = expr.Transform(p.Expr, func(x expr.Expr) expr.Expr {
						if c, ok := x.(*expr.Const); ok && c.Val.Type() == datum.TString {
							return expr.NewConst(datum.NewString("DISK"))
						}
						return x
					})
				}
				ch := rewrite.WrapChoose(g, g.Top, alt)
				ch.ChooseConds = []expr.Expr{
					&expr.Cmp{Op: expr.OpEq,
						L: &expr.Param{Name: "want", Typ: datum.TString},
						R: expr.NewConst(datum.NewString("cpu"))},
					nil,
				}
				g.Top = ch
				g.GC()
				if err := g.Check(); err != nil {
					t.Fatal(err)
				}
				compiled, err := db.opt.Optimize(g)
				if err != nil {
					t.Fatal(err)
				}
				return compiled
			}},
		{name: "temp", op: plan.OpTemp,
			fault: scanFault("items"),
			build: func(t *testing.T, db *DB) *plan.Compiled {
				c := prepared(`SELECT id FROM items`)(t, db)
				root := c.Root
				c.Root = &plan.Node{Op: plan.OpTemp, Inputs: []*plan.Node{root},
					Cols: root.Cols, Types: root.Types}
				return c
			}},
		{name: "custom-operator", op: "FAULTPASS",
			fault: scanFault("items"),
			setup: func(t *testing.T, db *DB) {
				db.RegisterOperator("FAULTPASS",
					func(b *exec.Builder, n *plan.Node, inputs []exec.Stream, corr map[plan.ColRef]int) (exec.Stream, error) {
						return inputs[0], nil
					})
			},
			build: func(t *testing.T, db *DB) *plan.Compiled {
				c := prepared(`SELECT id FROM items`)(t, db)
				root := c.Root
				c.Root = &plan.Node{Op: "FAULTPASS", Inputs: []*plan.Node{root},
					Cols: root.Cols, Types: root.Types}
				return c
			}},
	}
}

func TestFaultMatrix(t *testing.T) {
	cases := faultMatrixCases()

	// Completeness: every operator exec.Build handles must appear in some
	// case's expected-op column (custom operators via FAULTPASS).
	covered := map[string]bool{"FAULTPASS": true}
	for _, c := range cases {
		covered[c.op] = true
	}
	for _, op := range []string{
		plan.OpScan, plan.OpIndex, plan.OpAccess, plan.OpFilter, plan.OpProject,
		plan.OpSort, plan.OpNLJoin, plan.OpSMJoin, plan.OpHSJoin, plan.OpSubq,
		plan.OpGroup, plan.OpDistinct, plan.OpUnion, plan.OpInter, plan.OpExcept,
		plan.OpValues, plan.OpTableFn, plan.OpTemp, plan.OpRecUnion, plan.OpRecRef,
		plan.OpChoose, plan.OpLimit, plan.OpInsert, plan.OpUpdate, plan.OpDelete,
	} {
		if !covered[op] {
			t.Fatalf("fault matrix does not cover operator %s", op)
		}
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			db := robustDB(t)
			if c.setup != nil {
				c.setup(t, db)
			}
			compiled := c.compilePlan(t, db)
			before := snapshotAll(t, db)
			db.InjectFaults(c.fault)
			res, err := db.run(context.Background(), compiled, c.params)
			if err == nil {
				t.Fatalf("statement succeeded despite injected %s fault", c.fault.Op)
			}
			var fe *FaultError
			if !errors.As(err, &fe) {
				t.Fatalf("error is not a FaultError: %v", err)
			}
			if res != nil {
				t.Fatalf("failed statement returned a result: %+v", res)
			}
			if n := db.Faults().OpenIterators(); n != 0 {
				t.Fatalf("%d iterators leaked", n)
			}
			db.ClearFaults()
			requireUnchanged(t, c.name, before, snapshotAll(t, db))
			checkIndexConsistency(t, db)
		})
	}
}

// TestDMLAtomicityEveryMutationIndex proves statement atomicity
// exhaustively: for each DML kind and each relevant storage operation,
// inject a fault at every mutation index k until the statement runs
// clean, asserting after every failure that heap and indexes are
// byte-identical to the pre-statement snapshot.
func TestDMLAtomicityEveryMutationIndex(t *testing.T) {
	cases := []struct {
		name string
		sql  string
		ops  []FaultOp
	}{
		{"insert", `INSERT INTO items SELECT oid + 100, n, 'NEW' FROM orders`,
			[]FaultOp{FaultInsert, FaultIxInsert}},
		// id is the index key: each updated row inserts its new-key entry
		// eagerly. The old-key entry stays linked for older snapshots
		// (unlinked later by GC), so no index delete happens in-statement.
		{"update", `UPDATE items SET id = id + 100 WHERE qty > 0`,
			[]FaultOp{FaultUpdate, FaultIxInsert}},
		// MVCC deletes only tombstone version entries; the physical
		// delete and index unlink are GC work, outside fault decoration.
		// The statement's faultable operations are its scan phase.
		{"delete", `DELETE FROM items WHERE qty > 0`,
			[]FaultOp{FaultScan}},
	}
	for _, c := range cases {
		for _, op := range c.ops {
			t.Run(c.name+"/"+string(op), func(t *testing.T) {
				fired := 0
				for k := 0; k < 64; k++ {
					db := robustDB(t)
					before := snapshotAll(t, db)
					db.InjectFaults(&Fault{Table: "items", Op: op, After: int64(k), Err: "boom"})
					_, err := db.Exec(c.sql, nil)
					if err == nil {
						// k exceeded the statement's operation count: ran clean.
						if fired == 0 {
							t.Fatalf("fault on %s never fired", op)
						}
						return
					}
					fired++
					var fe *FaultError
					if !errors.As(err, &fe) {
						t.Fatalf("k=%d: error is not a FaultError: %v", k, err)
					}
					requireUnchanged(t, fmt.Sprintf("%s k=%d", op, k), before, snapshotAll(t, db))
					checkIndexConsistency(t, db)
					if n := db.Faults().OpenIterators(); n != 0 {
						t.Fatalf("k=%d: %d iterators leaked", k, n)
					}
				}
				t.Fatalf("fault on %s still firing after 64 mutation indexes", op)
			})
		}
	}
}

// TestDMLAtomicityConstraintFailure: a mid-statement constraint
// violation (not an injected fault) must also roll back cleanly.
func TestDMLAtomicityConstraintFailure(t *testing.T) {
	db := robustDB(t)
	// One orders row carries a NULL item; inserting it into items.id
	// (NOT NULL) fails after earlier rows already landed.
	mustExec(t, db, `INSERT INTO orders VALUES (9, NULL, 45)`)
	before := snapshotAll(t, db)
	_, err := db.Exec(`INSERT INTO items SELECT item, n, 'X' FROM orders`, nil)
	if err == nil || !strings.Contains(err.Error(), "NOT NULL") {
		t.Fatalf("want NOT NULL violation, got %v", err)
	}
	requireUnchanged(t, "constraint", before, snapshotAll(t, db))
	checkIndexConsistency(t, db)
}

// TestCancelDuringFaultLatency: cancelling the statement context aborts
// an in-flight injected latency immediately — a 10s stall returns well
// inside 100ms.
func TestCancelDuringFaultLatency(t *testing.T) {
	db := robustDB(t)
	db.InjectFaults(&Fault{Table: "items", Op: FaultScan, Latency: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := db.ExecContext(ctx, `SELECT id FROM items`, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("cancellation took %v, want < 100ms", elapsed)
	}
	if n := db.Faults().OpenIterators(); n != 0 {
		t.Fatalf("%d iterators leaked", n)
	}
}

// bigDB builds a table large enough that cross joins dominate runtime.
func bigDB(tb testing.TB) *DB {
	tb.Helper()
	db := Open()
	mustExec(tb, db, `CREATE TABLE nums (n INT)`)
	for i := 0; i < 12; i++ {
		mustExec(tb, db, fmt.Sprintf(`INSERT INTO nums VALUES (%d)`, i))
	}
	for i := 0; i < 5; i++ { // 12 → 384 rows
		mustExec(tb, db, `INSERT INTO nums SELECT n + 1000 FROM nums`)
	}
	mustExec(tb, db, `ANALYZE nums`)
	return db
}

// TestStatementTimeout: the deadline surfaces as a typed ResourceError
// through the amortized tick path.
func TestStatementTimeout(t *testing.T) {
	db := bigDB(t)
	db.SetLimits(Limits{Timeout: time.Millisecond})
	_, err := db.Exec(`SELECT COUNT(*) FROM nums a, nums b, nums c WHERE a.n < b.n AND b.n < c.n`, nil)
	var re *ResourceError
	if !errors.As(err, &re) || re.Budget != "time" {
		t.Fatalf("want ResourceError(time), got %v", err)
	}
}

// TestMaxRows: the tuple-processing budget bounds work, not result
// size — a small cross-join output still exhausts it.
func TestMaxRows(t *testing.T) {
	db := bigDB(t)
	db.SetLimits(Limits{MaxRows: 1000})
	_, err := db.Exec(`SELECT COUNT(*) FROM nums a, nums b`, nil)
	var re *ResourceError
	if !errors.As(err, &re) || re.Budget != "rows" {
		t.Fatalf("want ResourceError(rows), got %v", err)
	}
	// Within budget runs clean.
	db.SetLimits(Limits{MaxRows: 1000_000})
	mustExec(t, db, `SELECT COUNT(*) FROM nums a, nums b`)
}

// TestMaxMem: materializing operators charge their state against the
// memory budget.
func TestMaxMem(t *testing.T) {
	db := robustDB(t)
	db.SetLimits(Limits{MaxMem: 100})
	_, err := db.Exec(`SELECT id FROM items ORDER BY qty`, nil)
	var re *ResourceError
	if !errors.As(err, &re) || re.Budget != "mem" {
		t.Fatalf("want ResourceError(mem), got %v", err)
	}
	db.SetLimits(Limits{MaxMem: 1 << 20})
	mustExec(t, db, `SELECT id FROM items ORDER BY qty`)
}

// TestPanicContainment: a panic out of a DBC extension is converted at
// the statement boundary into a structured QueryError naming the phase
// (and operator when one is on the stack); the process survives and the
// DB keeps working.
func TestPanicContainment(t *testing.T) {
	db := robustDB(t)
	if err := db.RegisterScalarFunc(&ScalarFunc{
		Name: "BOOMFN", MinArgs: 1, MaxArgs: 1,
		ReturnType: func(args []TypeID) (TypeID, error) { return args[0], nil },
		Eval: func(args []Value) (Value, error) {
			panic("extension bug")
		},
	}); err != nil {
		t.Fatal(err)
	}
	_, err := db.Exec(`SELECT BOOMFN(id) FROM items`, nil)
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("want QueryError, got %v", err)
	}
	if qe.Phase != "exec" {
		t.Fatalf("phase = %q, want exec", qe.Phase)
	}
	if qe.Operator == "" {
		t.Fatalf("panic not attributed to an operator:\n%s", qe.Stack)
	}
	// The DB is still usable.
	mustExec(t, db, `SELECT COUNT(*) FROM items`)

	// A panicking rewrite rule is caught with phase = rewrite.
	if err := db.RegisterRewriteRule(&RewriteRule{
		Name: "panic-rule", Class: "test",
		Condition: func(ctx *rewrite.Context, b *qgm.Box) bool { panic("rule bug") },
		Action:    func(ctx *rewrite.Context, b *qgm.Box) error { return nil },
	}); err != nil {
		t.Fatal(err)
	}
	_, err = db.Exec(`SELECT id FROM items`, nil)
	if !errors.As(err, &qe) || qe.Phase != "rewrite" {
		t.Fatalf("want QueryError in rewrite, got %v", err)
	}
}

// TestDMLStreamReopen: a DML plan built once is re-runnable — the QES
// stream contract (Open again after Close) holds for mutations too.
func TestDMLStreamReopen(t *testing.T) {
	db := robustDB(t)
	st, err := db.Prepare(`INSERT INTO orders VALUES (50, 5, 5)`)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := db.builder.Build(st.compiled.Root, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		tx := db.autoTx()
		ctx := exec.NewCtx(tx.cat, nil)
		ctx.Snap = tx.snapshot()
		ctx.Txn = tx.ts
		if _, err := exec.Run(ctx, stream); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if ctx.Affected != 1 {
			t.Fatalf("run %d: affected = %d", i, ctx.Affected)
		}
		if err := db.finishAuto(tx, nil, nil); err != nil {
			t.Fatalf("run %d commit: %v", i, err)
		}
	}
	res := mustExec(t, db, `SELECT COUNT(*) FROM orders WHERE oid = 50`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("re-run inserted %v rows, want 2", res.Rows[0][0])
	}
	checkIndexConsistency(t, db)

	// Prepared statements re-run through the public surface as well.
	st2, err := db.Prepare(`DELETE FROM orders WHERE oid = 50`)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := st2.Run(nil)
	if err != nil || r1.Affected != 2 {
		t.Fatalf("first delete: %v affected=%v", err, r1)
	}
	r2, err := st2.Run(nil)
	if err != nil || r2.Affected != 0 {
		t.Fatalf("second delete: %v affected=%v", err, r2)
	}
}

// FuzzFaultSchedule feeds random fault schedules through a fixed
// statement mix; whatever fails, failed statements must not mutate
// state, indexes must stay consistent with heaps, and no iterator may
// leak.
func FuzzFaultSchedule(f *testing.F) {
	for _, seed := range []int64{1, 2, 3, 42, 1989} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		db := robustDB(t)
		db.InjectFaults(storage.RandomSchedule(seed, 4, 30)...)
		stmts := []string{
			`SELECT i.id FROM items i, orders o WHERE i.id = o.item ORDER BY i.id`,
			`INSERT INTO items SELECT oid + 200, n, 'F' FROM orders`,
			`UPDATE items SET id = id + 1000 WHERE qty >= 20`,
			`DELETE FROM items WHERE qty <= 20`,
			`SELECT COUNT(*) FROM items WHERE id > 0`,
		}
		for _, s := range stmts {
			before := snapshotAll(t, db)
			if _, err := db.Exec(s, nil); err != nil {
				requireUnchanged(t, s, before, snapshotAll(t, db))
			}
			if n := db.Faults().OpenIterators(); n != 0 {
				t.Fatalf("%q: %d iterators leaked", s, n)
			}
			checkIndexConsistency(t, db)
		}
	})
}
