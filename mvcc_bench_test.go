package starburst

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datum"
)

// Concurrent mixed workload: 8 goroutines over one table whose scans
// carry simulated per-page I/O latency (the slowRel wrapper from the
// parallel-execution benchmarks — on a single-CPU container the gains
// must come from overlapping waits, exactly like real page I/O). The
// stream is half scans, half single-key UPDATEs, with an occasional
// ANALYZE as the DDL representative. The pair measures what retiring
// the DB-wide statement RWMutex bought:
//
//   - ConcurrentMixedMVCC runs the statements bare — each against its
//     own snapshot, so scans overlap each other AND every writer's
//     statement, and writers on disjoint keys overlap too;
//   - ConcurrentMixedRWMutex replays the retired discipline with an
//     external sync.RWMutex (every DML/DDL exclusive, every scan
//     shared): writers serialize against everything, and each writer
//     drains all readers before its page waits even start.
//
// The two run identical statement streams against identical data, so
// the ns/op ratio isolates the locking discipline. benchcmp gates the
// MVCC side at ≤0.5x the RWMutex side (≥2x mixed throughput).
const mixedGoroutines = 8

func mixedBenchDB(b *testing.B) *DB {
	b.Helper()
	db := Open()
	mustExec(b, db, `CREATE TABLE mixed (k INT NOT NULL, v INT NOT NULL)`)
	tbl, _ := db.cat.Table("mixed")
	for i := 0; i < 256; i++ {
		row := datum.Row{datum.NewInt(int64(i)), datum.NewInt(int64(i))}
		if _, err := db.cat.Insert(tbl, row); err != nil {
			b.Fatal(err)
		}
	}
	mustExec(b, db, `ANALYZE mixed`)
	// Wrap after seeding and ANALYZE so setup stays fast. ANALYZE
	// published a fresh catalog generation with a cloned Table struct,
	// so re-resolve before wrapping; later generations (the in-loop
	// ANALYZE) clone the current struct and carry the wrapper along.
	tbl, _ = db.cat.Table("mixed")
	tbl.Rel = &slowRel{Relation: tbl.Rel, perPage: 300 * time.Microsecond}
	return db
}

func benchConcurrentMixed(b *testing.B, exclusive bool) {
	db := mixedBenchDB(b)
	var mu sync.RWMutex // stand-in for the retired DB-wide statement lock
	var next int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < mixedGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= b.N {
					return
				}
				var err error
				switch {
				case i%64 == 5: // DDL: republish stats under everyone's feet
					if exclusive {
						mu.Lock()
					}
					_, err = db.Exec(`ANALYZE mixed`, nil)
					if exclusive {
						mu.Unlock()
					}
				case i%2 == 0: // scan
					if exclusive {
						mu.RLock()
					}
					_, err = db.Exec(`SELECT COUNT(*), SUM(v) FROM mixed WHERE v >= 0`, nil)
					if exclusive {
						mu.RUnlock()
					}
				default: // single-row DML in this goroutine's own key range
					if exclusive {
						mu.Lock()
					}
					q := fmt.Sprintf(`UPDATE mixed SET v = v + 1 WHERE k = %d`, g*32+i%32)
					_, err = db.Exec(q, nil)
					if exclusive {
						mu.Unlock()
					}
				}
				if err != nil {
					b.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkConcurrentMixedMVCC(b *testing.B)    { benchConcurrentMixed(b, false) }
func BenchmarkConcurrentMixedRWMutex(b *testing.B) { benchConcurrentMixed(b, true) }
