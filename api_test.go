package starburst

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

// The exported API surface is a contract: the context-first core, the
// Session/option redesign and the driver shim all promised a specific
// shape, and an accidental new entry point (or a vanished one) should
// fail CI, not surface in a user's build. This test renders every
// exported declaration of the package to a canonical one-line form and
// diffs the result against the api.txt golden.
//
// After a deliberate API change, regenerate with:
//
//	UPDATE_API=1 go test ./ -run TestPublicAPIGolden
//
// and review the api.txt diff like any other code change.

const apiGoldenFile = "api.txt"

func TestPublicAPIGolden(t *testing.T) {
	got := renderPublicAPI(t)
	if os.Getenv("UPDATE_API") != "" {
		if err := os.WriteFile(apiGoldenFile, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d lines)", apiGoldenFile, strings.Count(got, "\n"))
		return
	}
	wantBytes, err := os.ReadFile(apiGoldenFile)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_API=1 go test ./ -run TestPublicAPIGolden)", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotSet := splitLines(got)
	wantSet := splitLines(want)
	var report strings.Builder
	for _, l := range diffLines(wantSet, gotSet) {
		fmt.Fprintf(&report, "  -%s\n", l)
	}
	for _, l := range diffLines(gotSet, wantSet) {
		fmt.Fprintf(&report, "  +%s\n", l)
	}
	t.Fatalf("exported API surface drifted from %s:\n%s"+
		"if the change is intentional, regenerate with UPDATE_API=1 go test ./ -run TestPublicAPIGolden",
		apiGoldenFile, report.String())
}

func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}

// diffLines returns the lines of a that are missing from b, in order.
func diffLines(a, b []string) []string {
	have := make(map[string]bool, len(b))
	for _, l := range b {
		have[l] = true
	}
	var out []string
	for _, l := range a {
		if !have[l] {
			out = append(out, l)
		}
	}
	return out
}

// renderPublicAPI parses every non-test Go file in the package
// directory and renders the exported declarations, one per line,
// sorted. Types are rendered from source (so they read as written:
// "context.Context", not a fully-qualified types.Type), and parameter
// names are dropped — renaming a parameter is not an API change.
func renderPublicAPI(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			lines = append(lines, renderDecl(fset, decl)...)
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func renderDecl(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil {
			recv, ok := recvString(fset, d.Recv)
			if !ok {
				return nil // method on an unexported type
			}
			return []string{fmt.Sprintf("method (%s) %s%s", recv, d.Name.Name, signature(fset, d.Type))}
		}
		return []string{fmt.Sprintf("func %s%s", d.Name.Name, signature(fset, d.Type))}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() {
					out = append(out, renderType(fset, s)...)
				}
			case *ast.ValueSpec:
				kw := "var"
				if d.Tok == token.CONST {
					kw = "const"
				}
				for _, n := range s.Names {
					if n.IsExported() {
						out = append(out, fmt.Sprintf("%s %s", kw, n.Name))
					}
				}
			}
		}
		return out
	}
	return nil
}

// recvString renders a method receiver type ("*DB", "Session"),
// reporting false when the receiver's base type is unexported.
func recvString(fset *token.FileSet, recv *ast.FieldList) (string, bool) {
	if len(recv.List) == 0 {
		return "", false
	}
	typ := recv.List[0].Type
	base := typ
	if star, ok := base.(*ast.StarExpr); ok {
		base = star.X
	}
	// Generic receivers would appear as IndexExpr; the package has none.
	id, ok := base.(*ast.Ident)
	if !ok || !id.IsExported() {
		return "", false
	}
	return exprString(fset, typ), true
}

// signature renders a FuncType as "(T1, T2) (R1, R2)" with parameter
// names elided.
func signature(fset *token.FileSet, ft *ast.FuncType) string {
	var b strings.Builder
	b.WriteString("(")
	b.WriteString(fieldTypes(fset, ft.Params))
	b.WriteString(")")
	if ft.Results != nil && len(ft.Results.List) > 0 {
		rs := fieldTypes(fset, ft.Results)
		if len(ft.Results.List) == 1 && len(ft.Results.List[0].Names) == 0 {
			b.WriteString(" " + rs)
		} else {
			b.WriteString(" (" + rs + ")")
		}
	}
	return b.String()
}

func fieldTypes(fset *token.FileSet, fl *ast.FieldList) string {
	if fl == nil {
		return ""
	}
	var parts []string
	for _, f := range fl.List {
		ts := exprString(fset, f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			parts = append(parts, ts)
		}
	}
	return strings.Join(parts, ", ")
}

// renderType renders an exported type: its kind line plus one line per
// exported struct field or interface method. Unexported fields are the
// implementation's business and stay out of the golden.
func renderType(fset *token.FileSet, s *ast.TypeSpec) []string {
	name := s.Name.Name
	switch t := s.Type.(type) {
	case *ast.StructType:
		out := []string{fmt.Sprintf("type %s struct", name)}
		for _, f := range t.Fields.List {
			if len(f.Names) == 0 { // embedded
				ts := exprString(fset, f.Type)
				if ast.IsExported(lastName(ts)) {
					out = append(out, fmt.Sprintf("field %s.%s %s", name, lastName(ts), ts))
				}
				continue
			}
			for _, fn := range f.Names {
				if fn.IsExported() {
					out = append(out, fmt.Sprintf("field %s.%s %s", name, fn.Name, exprString(fset, f.Type)))
				}
			}
		}
		return out
	case *ast.InterfaceType:
		out := []string{fmt.Sprintf("type %s interface", name)}
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 { // embedded interface
				out = append(out, fmt.Sprintf("method %s.%s (embedded)", name, exprString(fset, m.Type)))
				continue
			}
			ft, ok := m.Type.(*ast.FuncType)
			if !ok {
				continue
			}
			for _, mn := range m.Names {
				if mn.IsExported() {
					out = append(out, fmt.Sprintf("method %s.%s%s", name, mn.Name, signature(fset, ft)))
				}
			}
		}
		return out
	default:
		eq := ""
		if s.Assign.IsValid() {
			eq = "= "
		}
		return []string{fmt.Sprintf("type %s %s%s", name, eq, exprString(fset, s.Type))}
	}
}

// lastName returns the final identifier of a (possibly qualified,
// possibly pointered) type expression string.
func lastName(s string) string {
	s = strings.TrimPrefix(s, "*")
	if i := strings.LastIndex(s, "."); i >= 0 {
		s = s[i+1:]
	}
	return s
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return fmt.Sprintf("<%T>", e)
	}
	return buf.String()
}
