package starburst

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sql"
)

// This file is the observability surface of the DB: per-statement phase
// tracing, the metrics registry, the slow-query log, and the EXPLAIN
// ANALYZE renderer. All of it is always compiled in and default-off;
// the only always-on cost is one counter bump and one histogram
// observation per statement.

// Re-exported observability types.
type (
	// Trace is the per-statement phase trace: wall time per
	// compilation/execution phase, rewrite-rule firing counts, and
	// STAR expansion counts.
	Trace = obs.Trace
	// OpStats is the per-operator runtime profile collected under
	// EXPLAIN ANALYZE or an armed slow-query log.
	OpStats = obs.OpStats
	// Registry is the dependency-free metrics registry backing
	// DB.Metrics.
	Registry = obs.Registry
	// ObsServer serves /metrics and /debug/pprof for one DB.
	ObsServer = obs.Server
)

// Metric names exported by every DB.
const (
	// MetricStatements counts statements by kind label.
	MetricStatements = "starburst_statements_total"
	// MetricStatementErrors counts failed statements by the phase the
	// error escaped from.
	MetricStatementErrors = "starburst_statement_errors_total"
	// MetricBudgetTrips counts ResourceError returns by budget label
	// (rows, mem, time).
	MetricBudgetTrips = "starburst_budget_trips_total"
	// MetricRollbacks counts statement-atomicity undo rollbacks.
	MetricRollbacks = "starburst_rollbacks_total"
	// MetricSubqCacheHits / Misses count subquery-cache lookups.
	MetricSubqCacheHits   = "starburst_subq_cache_hits_total"
	MetricSubqCacheMisses = "starburst_subq_cache_misses_total"
	// MetricSlowQueries counts statements over the slow threshold.
	MetricSlowQueries = "starburst_slow_queries_total"
	// MetricFaultsFired reports fault injections fired (gauge; tracks
	// the attached injector).
	MetricFaultsFired = "starburst_faults_fired"
	// MetricStatementSeconds is the statement latency histogram.
	MetricStatementSeconds = "starburst_statement_seconds"

	// Durable-store gauges, registered when the DB has a data directory
	// (see WithDataDir).
	MetricBufferPoolHits   = "starburst_buffer_pool_hits"
	MetricBufferPoolMisses = "starburst_buffer_pool_misses"
	MetricWALBytes         = "starburst_wal_bytes"
	MetricWALSyncs         = "starburst_wal_syncs"
	MetricCheckpoints      = "starburst_checkpoints"
)

// SetTracing arms per-statement phase tracing: subsequent statements
// carry a Trace on their Result (phase wall times, rewrite rules fired,
// STARs expanded, subquery-cache and rollback counters). Off by
// default; when off, statements run the exact uninstrumented path.
func (db *DB) SetTracing(on bool) { db.tracing.Store(on) }

// Tracing reports whether phase tracing is armed.
func (db *DB) Tracing() bool { return db.tracing.Load() }

// Metrics exposes the DB's metrics registry (counters, gauges, the
// statement latency histogram). Always non-nil.
func (db *DB) Metrics() *Registry { return db.metrics }

// MetricsHandler returns an http.Handler serving the registry in
// Prometheus text exposition format at /metrics plus net/http/pprof
// under /debug/pprof/.
func (db *DB) MetricsHandler() http.Handler { return obs.Handler(db.metrics) }

// StartObsServer listens on addr (e.g. "127.0.0.1:0") and serves
// MetricsHandler until Close.
func (db *DB) StartObsServer(addr string) (*ObsServer, error) {
	return obs.StartServer(addr, db.metrics)
}

// SetSlowQueryThreshold arms the slow-query log: any statement whose
// end-to-end wall time reaches d is reported through the slow-query
// sink with its SQL text, phase timings, and the top 3 operators by
// self-time. d = 0 disarms. While armed, statements run instrumented
// (per-operator stats are needed for the report).
func (db *DB) SetSlowQueryThreshold(d time.Duration) { db.slowNanos.Store(int64(d)) }

// SetSlowQueryLog installs the slog handler slow-query records are
// emitted to; nil restores the default (slog.Default's handler).
func (db *DB) SetSlowQueryLog(h slog.Handler) {
	if h == nil {
		db.slowLog.Store(nil)
		return
	}
	l := slog.New(h)
	db.slowLog.Store(l)
}

func (db *DB) slowLogger() *slog.Logger {
	if l := db.slowLog.Load(); l != nil {
		return l
	}
	return slog.Default()
}

// instrumentWanted reports whether statements should run with
// per-operator stats (needed by the armed slow-query log, by the
// operator spans of an installed span exporter, and by the
// cardinality-feedback loop's actual-row capture).
func (db *DB) instrumentWanted() bool {
	return db.slowNanos.Load() > 0 || db.spanExp.Load() != nil || db.cardFeedback.Load()
}

// stmtKind classifies a statement for the statements-by-kind counter.
func stmtKind(stmt sql.Statement) string {
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		return "SELECT"
	case *sql.InsertStmt:
		return "INSERT"
	case *sql.UpdateStmt:
		return "UPDATE"
	case *sql.DeleteStmt:
		return "DELETE"
	case *sql.CreateTableStmt, *sql.CreateIndexStmt, *sql.CreateViewStmt:
		return "CREATE"
	case *sql.DropStmt:
		return "DROP"
	case *sql.AnalyzeStmt:
		return "ANALYZE"
	case *sql.BeginStmt:
		return "BEGIN"
	case *sql.CommitStmt:
		return "COMMIT"
	case *sql.RollbackStmt:
		return "ROLLBACK"
	case *sql.ExplainStmt:
		if s.Analyze {
			return "EXPLAIN ANALYZE"
		}
		return "EXPLAIN"
	}
	return "OTHER"
}

// observation carries everything the per-statement observe defer needs;
// fields are filled in as the statement progresses.
type observation struct {
	query string
	kind  string
	start time.Time
	trace *obs.Trace
	instr *exec.Instrumentation
	root  *plan.Node
	// waits accumulates the statement's wait events; shared with every
	// worker goroutine through exec.Ctx (nil only for untracked runs).
	waits *obs.WaitSet
	// rows is the statement's output size (rows affected for DML, rows
	// returned otherwise); feeds SYS.STATEMENTS.
	rows int64
	// cacheHit records that the statement was served from the plan cache.
	cacheHit bool
}

// observe records a finished statement into the metrics registry and,
// when it was slow, emits a slow-query record. phase and err are read
// at defer time: the recover barrier (registered after, so it runs
// first) has already converted any panic into *QueryError.
func (db *DB) observe(o *observation, phase string, err error) {
	elapsed := time.Since(o.start)
	m := db.metrics
	m.CounterWith(MetricStatements, "kind", o.kind).Inc()
	m.Histogram(MetricStatementSeconds, obs.DefaultLatencyBuckets).Observe(elapsed.Seconds())
	if err != nil {
		m.CounterWith(MetricStatementErrors, "phase", phase).Inc()
		var rerr *exec.ResourceError
		if errors.As(err, &rerr) {
			m.CounterWith(MetricBudgetTrips, "budget", rerr.Budget).Inc()
		}
	}
	folds := int64(0)
	if err == nil {
		// Close the optimizer loop: fold diverging scan actuals into the
		// catalog's observed-cardinality overlays (no-op unless feedback
		// is enabled; see feedback.go).
		folds = db.captureCardFeedback(o)
	}
	db.stmts.record(normalizeSQL(o.query), o.kind, elapsed.Nanoseconds(), o.rows,
		o.instr.MemHighWater(), o.cacheHit, err != nil, folds, o.waits.Snapshot())
	if exp := db.spanExporter(); exp != nil {
		exp(db.buildSpan(o, err, elapsed))
	}
	if th := db.slowNanos.Load(); th > 0 && elapsed.Nanoseconds() >= th {
		m.Counter(MetricSlowQueries).Inc()
		db.emitSlow(o, elapsed, err)
	}
}

// emitSlow writes one structured slow-query record through the sink.
func (db *DB) emitSlow(o *observation, elapsed time.Duration, err error) {
	attrs := []slog.Attr{
		slog.String("sql", strings.TrimSpace(o.query)),
		slog.String("kind", o.kind),
		slog.Duration("elapsed", elapsed),
	}
	if o.trace != nil {
		for p := obs.Phase(0); p < obs.NumPhases; p++ {
			attrs = append(attrs, slog.Duration("phase_"+p.String(), o.trace.Phases[p]))
		}
	}
	if o.instr != nil && o.root != nil {
		for i, op := range o.instr.TopBySelfTime(o.root, 3) {
			attrs = append(attrs, slog.Group(fmt.Sprintf("op%d", i+1),
				slog.String("op", op.Op),
				slog.Duration("self", time.Duration(op.SelfNanos)),
				slog.Int64("rows", op.Rows)))
		}
	}
	for i, w := range o.waits.TopWaits(3) {
		attrs = append(attrs, slog.Group(fmt.Sprintf("wait%d", i+1),
			slog.String("event", w.Event.String()),
			slog.Duration("total", time.Duration(w.Nanos)),
			slog.Int64("count", w.Count)))
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	db.slowLogger().LogAttrs(context.Background(), slog.LevelWarn, "slow query", attrs...)
}

// recordCtx folds one execution's Ctx counters into the metrics
// registry and the statement trace.
func (db *DB) recordCtx(ctx *exec.Ctx, tr *obs.Trace) {
	if tr != nil {
		tr.SubqHits += ctx.SubqHits
		tr.SubqMisses += ctx.SubqMisses
		tr.Rollbacks += ctx.Rollbacks
	}
	if ctx.SubqHits > 0 {
		db.metrics.Counter(MetricSubqCacheHits).Add(ctx.SubqHits)
	}
	if ctx.SubqMisses > 0 {
		db.metrics.Counter(MetricSubqCacheMisses).Add(ctx.SubqMisses)
	}
	if ctx.Rollbacks > 0 {
		db.metrics.Counter(MetricRollbacks).Add(ctx.Rollbacks)
	}
}

// runObserved is the execution core plus observability: it optionally
// times the build and execute phases into tr and, when instrument is
// set (EXPLAIN ANALYZE, armed slow log), builds the plan through the
// per-operator stats decorator. The settings snapshot supplies the
// budgets and parallelism knobs, so concurrent sessions execute under
// their own configuration. The plan executes inside tx: scans resolve
// row versions against its snapshot, DML writes through its write log,
// and table lookups read its pinned catalog generation.
// starburst:locks db.adminMu:read
func (db *DB) runObserved(goCtx context.Context, compiled *plan.Compiled, params map[string]Value,
	tr *obs.Trace, instrument bool, set settings, waits *obs.WaitSet, tx *Tx) (*Result, *exec.Instrumentation, error) {
	if goCtx == nil {
		goCtx = context.Background()
	}
	limits := set.limits
	if limits.Timeout > 0 {
		var cancel context.CancelFunc
		goCtx, cancel = context.WithTimeout(goCtx, limits.Timeout)
		defer cancel()
	}
	if db.faults != nil {
		// Injected fault latency must abort as soon as the statement is
		// cancelled, not when the sleep elapses.
		db.faults.SetInterrupt(goCtx.Done())
		defer db.faults.SetInterrupt(nil)
	}
	builder := db.builder.Vectorized(set.vectorize)
	var instr *exec.Instrumentation
	if instrument || db.instrumentWanted() {
		instr = exec.NewInstrumentation()
		builder = builder.Instrumented(instr)
	}
	t0 := time.Now()
	stream, err := builder.Build(compiled.Root, nil)
	tr.AddPhase(obs.PhaseBuild, time.Since(t0))
	if err != nil {
		return nil, instr, err
	}
	// A DML statement against a durable DB runs inside a WAL statement
	// group: its records replay after a crash only if the commit record
	// below lands on disk. The defer covers panics (injected crashes,
	// runtime faults) — an unresolved group is abandoned, never logged
	// as committed.
	stmtOpen := false
	if db.store != nil && rootIsDML(compiled.Root) {
		if err := db.store.BeginTxnStmt(tx.walTxn()); err != nil {
			return nil, instr, err
		}
		stmtOpen = true
		// WAL waits inside the bracket are attributed to this statement;
		// the store detaches the wait set when the bracket resolves.
		db.store.SetStmtWaits(waits)
		defer func() {
			if stmtOpen {
				db.store.AbortStmt()
			}
		}()
	}
	ctx := exec.NewCtx(tx.cat, params)
	ctx.Snap = tx.snapshot()
	ctx.Txn = tx.ts
	ctx.SetWaits(db.waitProf, waits)
	ctx.Arm(goCtx, limits)
	db.armParallel(ctx, set)
	mark := tx.ts.Mark()
	t0 = time.Now()
	rows, err := exec.Run(ctx, stream)
	tr.AddPhase(obs.PhaseExec, time.Since(t0))
	db.recordCtx(ctx, tr)
	if err != nil && tx.ts.Writes() > mark {
		// Statement atomicity: a failing statement undoes its own writes,
		// leaving earlier statements of the transaction intact. The
		// compensations run while the WAL statement group is still open,
		// so aborting the group below drops originals and compensations
		// together.
		if rberr := tx.ts.RollbackTo(db.cat, mark); rberr != nil {
			err = errors.Join(err, rberr)
		}
		db.metrics.Counter(MetricRollbacks).Inc()
	}
	if stmtOpen {
		stmtOpen = false
		if err != nil {
			db.store.AbortStmt()
		} else if cerr := db.store.CommitStmt(); cerr != nil {
			err = cerr
		}
	}
	if err != nil {
		return nil, instr, err
	}
	return &Result{
		Columns:  compiled.OutputNames,
		Rows:     rows,
		Affected: ctx.Affected,
	}, instr, nil
}

// explainAnalyze compiles and EXECUTES the inner statement through the
// stats decorator, then renders the plan annotated with actual row
// counts, timings, memory high-water marks and cache hit ratios, plus
// the phase-timing summary. DML side effects are applied as usual.
// starburst:locks db.adminMu:read
func (db *DB) explainAnalyze(goCtx context.Context, inner sql.Statement, phase *string,
	params map[string]Value, tr *obs.Trace, o *observation, set settings, tx *Tx) (*Result, error) {
	compiled, err := db.compile(tx.cat, inner, phase, tr, set)
	if err != nil {
		return nil, err
	}
	o.root = compiled.Root
	*phase = "exec"
	res, instr, err := db.runObserved(goCtx, compiled, params, tr, true, set, o.waits, tx)
	o.instr = instr
	if err != nil {
		return nil, err
	}
	o.rows = res.Affected
	if o.rows == 0 {
		o.rows = int64(len(res.Rows))
	}

	var b strings.Builder
	b.WriteString("=== Query evaluation plan (analyzed) ===\n")
	b.WriteString(plan.RenderAnnotated(compiled.Root, instr.Annotate))
	fmt.Fprintf(&b, "=== Execution summary ===\n")
	fmt.Fprintf(&b, "phase times: %s\n", tr)
	if len(tr.RuleFirings) > 0 {
		b.WriteString("rewrite rules fired: " + countList(tr.RuleFirings) + "\n")
	}
	if len(tr.StarExpansions) > 0 {
		b.WriteString("STARs expanded: " + countList(tr.StarExpansions) + "\n")
	}
	if tr.SubqHits+tr.SubqMisses > 0 {
		fmt.Fprintf(&b, "subquery cache: %d hits / %d misses\n", tr.SubqHits, tr.SubqMisses)
	}
	if res.Affected > 0 {
		fmt.Fprintf(&b, "%d row(s) affected\n", res.Affected)
	} else {
		fmt.Fprintf(&b, "%d row(s) returned\n", len(res.Rows))
	}

	out := &Result{Columns: []string{"EXPLAIN ANALYZE"}, Affected: res.Affected}
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		out.Rows = append(out.Rows, Row{NewString(line)})
	}
	out.Trace = tr
	return out, nil
}

// countList renders a name→count map deterministically: "a=2 b=1".
func countList(m map[string]int) string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, m[n])
	}
	return strings.Join(parts, " ")
}

// obsState groups the DB's observability knobs (embedded in DB).
type obsState struct {
	// metrics is the per-DB registry; created in Open.
	metrics *obs.Registry
	// tracing arms per-statement phase tracing.
	tracing atomic.Bool
	// slowNanos is the slow-query threshold; 0 disarmed.
	slowNanos atomic.Int64
	// slowLog overrides the slow-query sink (nil = slog.Default).
	slowLog atomic.Pointer[slog.Logger]
}
