// Benchmarks for the PR-4 parallel/batched execution work. Two claims
// are measured here and recorded in BENCH_PR4.json:
//
//   - exchange parallelism overlaps I/O waits: on a table whose scans
//     carry a simulated per-page latency, DOP=4 finishes the same
//     statement several times faster than DOP=1 (the container may
//     have a single CPU, so the speedup must come from overlapping
//     waits, exactly like real page I/O — CPU-bound gains would need
//     real cores);
//   - the batched row path allocates materially less than
//     tuple-at-a-time interpretation for scan-filter-project plans.
package starburst

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/storage"
)

// slowRel wraps a Relation so every scanned page charges a simulated
// I/O latency, paid up front per page range. The wrapper preserves
// PageRangeScanner, so the optimizer still sees a splittable leaf; the
// morsel dispenser hands disjoint ranges to workers, whose sleeps then
// overlap — the effect intra-query parallelism exists to exploit.
type slowRel struct {
	storage.Relation
	perPage time.Duration
}

func (s *slowRel) Scan() storage.RowIterator {
	time.Sleep(time.Duration(s.PageCount()) * s.perPage)
	return s.Relation.Scan()
}

func (s *slowRel) ScanPages(lo, hi int64) storage.RowIterator {
	time.Sleep(time.Duration(hi-lo) * s.perPage)
	return s.Relation.(storage.PageRangeScanner).ScanPages(lo, hi)
}

// slowScanDB builds a table of nRows rows whose scans cost perPage of
// simulated latency per page.
func slowScanDB(b *testing.B, nRows int, perPage time.Duration) *DB {
	b.Helper()
	db := Open()
	mustExec(b, db, `CREATE TABLE big (k INT, v INT)`)
	tbl, _ := db.cat.Table("big")
	for i := 0; i < nRows; i++ {
		row := datum.Row{datum.NewInt(int64(i % 97)), datum.NewInt(int64(i % 1000))}
		if _, err := db.cat.Insert(tbl, row); err != nil {
			b.Fatal(err)
		}
	}
	mustExec(b, db, "ANALYZE big")
	// Wrap after ANALYZE so setup scans stay fast; compiled plans see
	// the wrapper (eligibility is checked against Table.Rel). ANALYZE
	// published a fresh catalog generation with a cloned Table struct,
	// so re-resolve before wrapping — the pre-ANALYZE pointer is stale.
	tbl, _ = db.cat.Table("big")
	tbl.Rel = &slowRel{Relation: tbl.Rel, perPage: perPage}
	return db
}

const parallelBenchQuery = `SELECT k, v FROM big WHERE v < 900`

func benchParallelScan(b *testing.B, dop int) {
	db := slowScanDB(b, 4096, 200*time.Microsecond)
	db.SetParallelism(dop)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(parallelBenchQuery, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkParallelScanDOP1(b *testing.B) { benchParallelScan(b, 1) }
func BenchmarkParallelScanDOP4(b *testing.B) { benchParallelScan(b, 4) }

// scanFilterProjectDB is a plain (full-speed) table for the allocation
// comparison; the workload is dominated by the per-row path, which is
// what batching attacks.
func scanFilterProjectDB(b *testing.B) *DB {
	b.Helper()
	db := Open()
	mustExec(b, db, `CREATE TABLE sfp (k INT, v INT, w INT)`)
	tbl, _ := db.cat.Table("sfp")
	for i := 0; i < 4096; i++ {
		row := datum.Row{
			datum.NewInt(int64(i)),
			datum.NewInt(int64(i % 512)),
			datum.NewInt(int64(i % 7)),
		}
		if _, err := db.cat.Insert(tbl, row); err != nil {
			b.Fatal(err)
		}
	}
	mustExec(b, db, "ANALYZE sfp")
	return db
}

func benchScanFilterProject(b *testing.B, batchSize int) {
	db := scanFilterProjectDB(b)
	db.SetVectorized(false) // this pair measures the row path; see colbench_test.go
	db.SetBatchSize(batchSize)
	q := `SELECT k, v + w FROM sfp WHERE v < 400`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(q, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// Tuple-at-a-time (batching disabled) vs the default batched path.
func BenchmarkScanFilterProjectTuple(b *testing.B)   { benchScanFilterProject(b, 1) }
func BenchmarkScanFilterProjectBatched(b *testing.B) { benchScanFilterProject(b, 0) }

// TestParallelBenchSanity keeps the benchmark fixtures honest outside
// benchmark runs: the slow-scan DB parallelizes and returns the same
// rows at every DOP, and the wrapper really slows scans down.
func TestParallelBenchSanity(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE big (k INT, v INT)`)
	tbl, _ := db.cat.Table("big")
	for i := 0; i < 1024; i++ {
		row := datum.Row{datum.NewInt(int64(i % 97)), datum.NewInt(int64(i % 1000))}
		if _, err := db.cat.Insert(tbl, row); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(t, db, "ANALYZE big")
	tbl, _ = db.cat.Table("big") // ANALYZE cloned the Table; re-resolve before wrapping
	tbl.Rel = &slowRel{Relation: tbl.Rel, perPage: time.Microsecond}

	want := canonical(runAtDOP(t, db, 1, parallelBenchQuery))
	got := canonical(runAtDOP(t, db, 4, parallelBenchQuery))
	if got != want {
		t.Fatal("slow-scan parallel result diverged from serial")
	}
	db.SetParallelism(4)
	plan := mustExec(t, db, "EXPLAIN "+parallelBenchQuery)
	var txt string
	for _, r := range plan.Rows {
		txt += fmt.Sprint(r[0]) + "\n"
	}
	if !strings.Contains(txt, "GATHER") {
		t.Fatalf("slow-scan plan not parallelized:\n%s", txt)
	}
}
