package starburst

// Access-method fault tests (satellite of the durability PR): the PR-2
// DML atomicity matrix extended to a table carrying BOTH ordered
// (BTREE) and spatial (RTREE) attachments, plus fault injection on the
// index-search path for each method. After every injected failure the
// heap and all index structures must be byte-identical to the
// pre-statement snapshot and no iterator may leak.

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/internal/storage"
	"repro/internal/storage/disk"
)

// sortIndexSnaps normalizes a snapshot for comparison across an
// aborted statement: the R-tree's enumeration order depends on its
// insertion history (undo restores the entry set, not the node
// layout), so index entries compare as sorted sets while heap order
// stays strict.
func sortIndexSnaps(s map[string]relSnap) map[string]relSnap {
	out := map[string]relSnap{}
	for name, rs := range s {
		norm := relSnap{Heap: rs.Heap, Indexes: map[string][]string{}}
		for ix, entries := range rs.Indexes {
			cp := append([]string(nil), entries...)
			sort.Strings(cp)
			norm.Indexes[ix] = cp
		}
		out[name] = norm
	}
	return out
}

// spatialDB builds pts: a side x side grid of points with a BTREE
// index on id and an RTREE index on (x, y), so a single DML statement
// maintains both attachment kinds.
func spatialDB(tb testing.TB, side int) *DB {
	tb.Helper()
	db := Open()
	if err := db.RegisterAccessMethod(storage.RTreeMethod{}); err != nil {
		tb.Fatalf("register rtree: %v", err)
	}
	mustExec(tb, db, `CREATE TABLE pts (id INT NOT NULL, x FLOAT, y FLOAT)`)
	mustExec(tb, db, `CREATE INDEX pts_id ON pts (id)`)
	mustExec(tb, db, `CREATE INDEX pts_xy ON pts (x, y) USING rtree`)
	n := 0
	for gx := 0; gx < side; gx++ {
		for gy := 0; gy < side; gy++ {
			n++
			mustExec(tb, db, fmt.Sprintf(`INSERT INTO pts VALUES (%d, %d.0, %d.0)`, n, gx, gy))
		}
	}
	mustExec(tb, db, `ANALYZE pts`)
	return db
}

// TestAccessMethodDMLAtomicity reruns the mutation-index fault matrix
// over a table with btree + rtree attachments: every DML kind, every
// index operation, a fault at every ordinal k until the statement runs
// clean.
func TestAccessMethodDMLAtomicity(t *testing.T) {
	cases := []struct {
		name string
		sql  string
		ops  []FaultOp
	}{
		// Each inserted row lands in the heap, the btree, and the rtree.
		{"insert", `INSERT INTO pts SELECT id + 100, x + 10.0, y + 10.0 FROM pts WHERE id <= 6`,
			[]FaultOp{FaultInsert, FaultIxInsert}},
		// id and x are both index keys: the update inserts new-key
		// entries into both trees eagerly; old-key entries stay linked
		// for older snapshots (GC unlinks them outside the statement).
		{"update", `UPDATE pts SET id = id + 100, x = x + 100.0 WHERE y >= 2.0`,
			[]FaultOp{FaultUpdate, FaultIxInsert}},
		// MVCC deletes tombstone version entries only; physical deletes
		// and index unlinks are deferred to GC, outside fault
		// decoration. The scan phase is the statement's faultable work.
		{"delete", `DELETE FROM pts WHERE x >= 1.0 AND x <= 3.0`,
			[]FaultOp{FaultScan}},
	}
	for _, c := range cases {
		for _, op := range c.ops {
			t.Run(c.name+"/"+string(op), func(t *testing.T) {
				fired := 0
				for k := 0; k < 128; k++ {
					db := spatialDB(t, 5)
					before := sortIndexSnaps(snapshotAll(t, db))
					db.InjectFaults(&Fault{Table: "pts", Op: op, After: int64(k), Err: "boom"})
					_, err := db.Exec(c.sql, nil)
					if err == nil {
						if fired == 0 {
							t.Fatalf("fault on %s never fired", op)
						}
						return
					}
					fired++
					var fe *FaultError
					if !errors.As(err, &fe) {
						t.Fatalf("k=%d: error is not a FaultError: %v", k, err)
					}
					requireUnchanged(t, fmt.Sprintf("%s k=%d", op, k), before, sortIndexSnaps(snapshotAll(t, db)))
					checkIndexConsistency(t, db)
					if n := db.Faults().OpenIterators(); n != 0 {
						t.Fatalf("k=%d: %d iterators leaked", k, n)
					}
				}
				t.Fatalf("fault on %s still firing after 128 mutation indexes", op)
			})
		}
	}
}

// TestAccessMethodSearchFaults injects failures into the index-search
// path of each access method. The queries are chosen so the optimizer
// routes them through the index (btree: key equality; rtree: a window
// bounding every key column) — the k=0 fault firing at all proves the
// plan actually used the attachment.
func TestAccessMethodSearchFaults(t *testing.T) {
	queries := []struct {
		name string
		sql  string
	}{
		{"btree-equality", `SELECT x, y FROM pts WHERE id = 13`},
		{"rtree-window", `SELECT id FROM pts WHERE x >= 1.0 AND x <= 3.0 AND y >= 1.0 AND y <= 3.0`},
	}
	for _, q := range queries {
		t.Run(q.name, func(t *testing.T) {
			// 225 points: enough that the cost model prefers the index
			// over a full scan for both query shapes.
			db := spatialDB(t, 15)
			before := snapshotAll(t, db)
			fired := 0
			for k := 0; k < 64; k++ {
				db.InjectFaults(&Fault{Table: "pts", Op: FaultIxSearch, After: int64(k), Err: "boom"})
				_, err := db.Exec(q.sql, nil)
				if err == nil {
					if fired == 0 {
						t.Fatalf("IXSEARCH fault never fired: %s did not route through the index", q.sql)
					}
					break
				}
				fired++
				var fe *FaultError
				if !errors.As(err, &fe) {
					t.Fatalf("k=%d: error is not a FaultError: %v", k, err)
				}
				if n := db.Faults().OpenIterators(); n != 0 {
					t.Fatalf("k=%d: %d iterators leaked after failed search", k, n)
				}
			}
			db.ClearFaults()
			// Reads must not have perturbed anything, and the index still
			// answers correctly once faults are gone.
			requireUnchanged(t, q.name, before, snapshotAll(t, db))
			checkIndexConsistency(t, db)
			res := mustExec(t, db, q.sql)
			if len(res.Rows) == 0 {
				t.Fatalf("%s returned no rows after faults cleared", q.sql)
			}
		})
	}
}

// TestAccessMethodSearchFaultsOnDisk repeats the search-fault check
// with the btree attachment layered over the DISK storage manager:
// volatile indexes over durable heaps fail and recover the same way.
func TestAccessMethodSearchFaultsOnDisk(t *testing.T) {
	db := diskDB(t, disk.NewMemFS())
	mustExec(t, db, `CREATE TABLE pts (id INT NOT NULL, x FLOAT)`)
	mustExec(t, db, `CREATE INDEX pts_id ON pts (id)`)
	for i := 1; i <= 200; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO pts VALUES (%d, %d.0)`, i, i))
	}
	mustExec(t, db, `ANALYZE pts`)
	fired := 0
	for k := 0; k < 64; k++ {
		db.InjectFaults(&Fault{Table: "pts", Op: FaultIxSearch, After: int64(k), Err: "boom"})
		_, err := db.Exec(`SELECT x FROM pts WHERE id = 11`, nil)
		if err == nil {
			if fired == 0 {
				t.Fatal("IXSEARCH fault never fired on the disk-backed table")
			}
			break
		}
		fired++
		var fe *FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("k=%d: error is not a FaultError: %v", k, err)
		}
		if n := db.Faults().OpenIterators(); n != 0 {
			t.Fatalf("k=%d: %d iterators leaked", k, n)
		}
	}
	db.ClearFaults()
	checkIndexConsistency(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
