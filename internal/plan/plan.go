// Package plan defines the Query Evaluation Plan (QEP): "an operator
// tree similar to a query specification in the relational algebra"
// (section 7). Nodes are invocations of LOLEPOPs — low-level plan
// operators, "a variation of the relational algebra supplemented with
// physical operators such as SCAN, SORT" (section 6) — produced by the
// optimizer's STAR expansion and interpreted by the Query Evaluation
// System.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/qgm"
)

// Op names the built-in LOLEPOPs. The set is open: a DBC may register
// new operators with the QES and emit them from custom STARs.
const (
	OpScan     = "SCAN"     // stored table → stream, optional predicates
	OpIndex    = "ISCAN"    // index range/window access + fetch
	OpAccess   = "ACCESS"   // derived-table access: relabels a box plan's columns
	OpFilter   = "FILTER"   // apply predicates
	OpProject  = "PROJECT"  // compute output expressions
	OpSort     = "SORT"     // order by keys
	OpNLJoin   = "NLJN"     // nested-loop join (any kind)
	OpSMJoin   = "SMJN"     // sort-merge join (equijoin; inputs ordered)
	OpHSJoin   = "HSJN"     // hash join (equijoin)
	OpSubq     = "SUBQ"     // apply a subquery quantifier (join kinds: exists/all/scalar/custom)
	OpGroup    = "GROUP"    // grouping + aggregation
	OpDistinct = "DISTINCT" // duplicate elimination
	OpUnion    = "UNION"
	OpInter    = "INTERSECT"
	OpExcept   = "EXCEPT"
	OpValues   = "VALUES"
	OpTableFn  = "TABLEFN"
	OpTemp     = "TEMP"     // materialize input
	OpRecUnion = "RECUNION" // recursive fixpoint union
	OpRecRef   = "RECREF"   // reference to the enclosing recursive table
	OpChoose   = "CHOOSE"   // runtime alternative selection (section 5)
	OpLimit    = "LIMIT"
	OpGather   = "GATHER" // exchange: merge DOP parallel clones of the input subtree
	OpRepart   = "REPART" // exchange: hash-repartition the input across DOP workers
	OpInsert   = "INSERT"
	OpUpdate   = "UPDATE"
	OpDelete   = "DELETE"
)

// ColRef identifies a QGM column (quantifier id, ordinal) occupying one
// slot of a node's output row.
type ColRef struct {
	QID int
	Ord int
}

// SortKey is one ordering key over output slots.
type SortKey struct {
	Slot int
	Desc bool
}

// JoinKind separates what a join computes from how it computes it
// (section 7: "by clearly separating the control structure of the
// join, i.e., the join method, from the function performed during the
// join, i.e., the join kind"). Kinds are open strings; these are built
// in.
const (
	KindRegular   = "regular"
	KindLeftOuter = "leftouter"
	KindExists    = "exists" // semi-join; negated → anti
	KindAll       = "op-all"
	KindScalarSub = "scalar-subquery"
	// KindLateral applies a correlated derived table per outer tuple
	// (correlated table expressions; also the intermediate state after
	// Rule 1 converts a correlated existential to a setformer before
	// operation merging flattens it).
	KindLateral = "lateral"
)

// Props carries the three property classes of section 6: relational
// (which quantifiers/predicates are accounted for), operational (tuple
// order), and estimated (cost, cardinality).
type Props struct {
	// Tables is the set of local quantifier ids joined so far.
	Tables map[int]bool
	// Order is the (possibly empty) sort-order prefix of the output.
	Order []SortKey
	// Rows is the estimated output cardinality.
	Rows float64
	// Cost is the estimated cumulative cost (abstract units: 1.0 per
	// page I/O, see optimizer cost model).
	Cost float64
}

// OrderSatisfies reports whether the plan's order satisfies a required
// prefix.
func (p *Props) OrderSatisfies(req []SortKey) bool {
	if len(req) > len(p.Order) {
		return false
	}
	for i, k := range req {
		if p.Order[i] != k {
			return false
		}
	}
	return true
}

// Node is one LOLEPOP invocation. Each node takes 0+ input streams and
// produces one output stream whose schema is Cols.
type Node struct {
	Op     string
	Inputs []*Node
	// Cols is the output schema: which QGM column sits in each slot.
	Cols []ColRef
	// Types are the slot types, parallel to Cols.
	Types []datum.TypeID

	// SCAN / ISCAN / DML target.
	Table *catalog.Table
	// Index for ISCAN.
	Index *catalog.Index
	// LoVals/HiVals are start/stop key expressions for ISCAN (evaluated
	// at open; may reference correlation). Inclusive bounds.
	LoVals, HiVals []expr.Expr
	// QID is the quantifier whose columns a SCAN/ISCAN/ACCESS/RECREF
	// node produces.
	QID int

	// Preds are predicates applied by SCAN/ISCAN/FILTER (residual for
	// joins).
	Preds []expr.Expr

	// Exprs are PROJECT output expressions or UPDATE assignments, and
	// VALUES rows are in Rows.
	Exprs []expr.Expr
	Rows  [][]expr.Expr

	// SortKeys order SORT output; for SMJN they are the equi-key slots
	// of each input (EquiLeft/EquiRight below).
	SortKeys []SortKey

	// Join parameters.
	JoinKind string
	Negated  bool
	// JoinPred is the non-equi part of the join condition (may be nil).
	JoinPred expr.Expr
	// EquiLeft/EquiRight are matching slot lists for HSJN/SMJN keys.
	EquiLeft, EquiRight []int
	// SetPred names the set-predicate function folding per-element
	// truth for SUBQ nodes (ANY/ALL/custom).
	SetPred string
	// CorrCols lists the outer columns the right/inner input needs
	// (correlation vector), as refs into the LEFT input's schema plus
	// enclosing correlation.
	CorrCols []ColRef

	// Group parameters: the first GroupCols slots of the input are the
	// grouping key; Aggs computes the remaining outputs.
	GroupCols []int
	Aggs      []*expr.AggCall

	// Distinct for set operations: false means ALL.
	All bool

	// TableFn parameters.
	TableFn *expr.TableFunc
	TFArgs  []expr.Expr

	// RecBoxID links RECREF nodes to their enclosing RECUNION.
	RecBoxID int

	// Limit row count expression.
	LimitExpr expr.Expr

	// DOP is the degree of parallelism of a GATHER exchange: how many
	// worker clones of the input subtree run concurrently. GATHER also
	// reuses SortKeys as its merge keys (order-preserving gather), and
	// REPART reuses GroupCols as its hash partitioning key.
	DOP int

	// TargetCols are the column ordinals written by INSERT/UPDATE.
	TargetCols []int

	// Props are the optimizer's estimated properties.
	Props Props

	// Ext lets DBC-defined operators carry their own parameters.
	Ext map[string]any
}

// SlotOf finds the slot holding a QGM column, or -1.
func (n *Node) SlotOf(qid, ord int) int {
	for i, c := range n.Cols {
		if c.QID == qid && c.Ord == ord {
			return i
		}
	}
	return -1
}

// String renders the plan tree for EXPLAIN.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0, nil)
	return b.String()
}

// RenderAnnotated renders the tree like String, appending annot(n) to
// every node's line — EXPLAIN ANALYZE uses it to print actual execution
// statistics beside the optimizer's estimates.
func RenderAnnotated(n *Node, annot func(*Node) string) string {
	var b strings.Builder
	n.render(&b, 0, annot)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int, annot func(*Node) string) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Op)
	switch {
	case n.Table != nil && n.Index != nil:
		fmt.Fprintf(b, " %s via %s(%s)", n.Table.Name, n.Index.Name, n.Index.Method)
	case n.Table != nil:
		fmt.Fprintf(b, " %s", n.Table.Name)
	}
	if n.JoinKind != "" && n.JoinKind != KindRegular {
		fmt.Fprintf(b, " kind=%s", n.JoinKind)
	}
	if n.Negated {
		b.WriteString(" negated")
	}
	for _, p := range n.Preds {
		fmt.Fprintf(b, " [%s]", p)
	}
	if n.JoinPred != nil {
		fmt.Fprintf(b, " on [%s]", n.JoinPred)
	}
	if len(n.SortKeys) > 0 && (n.Op == OpSort || n.Op == OpGather) {
		if n.Op == OpGather {
			b.WriteString(" merge")
		} else {
			b.WriteString(" by")
		}
		for _, k := range n.SortKeys {
			dir := ""
			if k.Desc {
				dir = " desc"
			}
			fmt.Fprintf(b, " #%d%s", k.Slot, dir)
		}
	}
	if n.Op == OpGather && n.DOP > 0 {
		fmt.Fprintf(b, " dop=%d", n.DOP)
	}
	if n.Op == OpRepart && len(n.GroupCols) > 0 {
		b.WriteString(" on")
		for _, s := range n.GroupCols {
			fmt.Fprintf(b, " #%d", s)
		}
	}
	if n.Props.Rows > 0 {
		fmt.Fprintf(b, "  {rows=%.0f cost=%.1f}", n.Props.Rows, n.Props.Cost)
	}
	if annot != nil {
		b.WriteString(annot(n))
	}
	b.WriteString("\n")
	for _, in := range n.Inputs {
		in.render(b, depth+1, annot)
	}
}

// Walk visits the tree preorder.
func Walk(n *Node, f func(*Node) bool) bool {
	if n == nil {
		return true
	}
	if !f(n) {
		return false
	}
	for _, in := range n.Inputs {
		if !Walk(in, f) {
			return false
		}
	}
	return true
}

// CollectOps returns the multiset of operator names in the tree, for
// plan-shape assertions in tests.
func CollectOps(n *Node) map[string]int {
	out := map[string]int{}
	Walk(n, func(x *Node) bool {
		out[x.Op]++
		return true
	})
	return out
}

// SubplanInfo is the refined payload of an expr.Subplan: the compiled
// plan of a subquery that stayed inside an expression (OR-of-subquery
// predicates, section 7). The QES installs an evaluate-on-demand Run
// closure from it.
type SubplanInfo struct {
	Plan *Node
	// Mode is "SCALAR", "EXISTS" or "IN".
	Mode    string
	Negated bool
	// Lhs is the IN left operand (references outer columns).
	Lhs expr.Expr
	// CorrCols is the correlation vector the subplan needs.
	CorrCols []ColRef
}

// A Compiled plan pairs the operator tree with the query's result
// metadata.
type Compiled struct {
	Root *Node
	// OutputNames are the result column names (from the top box head).
	OutputNames []string
	// OutputTypes are the result column types.
	OutputTypes []datum.TypeID
	// Graph retains the rewritten QGM for EXPLAIN.
	Graph *qgm.Graph
}
