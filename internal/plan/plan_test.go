package plan

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/expr"
)

func sampleTree(t *testing.T) *Node {
	t.Helper()
	cat := catalog.New()
	tbl, err := cat.CreateTable("T", []catalog.Column{
		{Name: "K", Type: datum.TInt}, {Name: "V", Type: datum.TInt},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex("T_K", "T", []string{"K"}, "", true); err != nil {
		t.Fatal(err)
	}
	// DDL publishes a new copy-on-write generation; re-resolve the
	// table so the index is visible.
	tbl, _ = cat.Table("T")
	scan := &Node{
		Op: OpScan, Table: tbl, QID: 1,
		Cols:  []ColRef{{QID: 1, Ord: 0}, {QID: 1, Ord: 1}},
		Types: []datum.TypeID{datum.TInt, datum.TInt},
		Preds: []expr.Expr{&expr.Cmp{Op: expr.OpGt, L: expr.NewCol(1, 0, "T.K", datum.TInt), R: expr.NewConst(datum.NewInt(5))}},
		Props: Props{Rows: 10, Cost: 3.5},
	}
	iscan := &Node{
		Op: OpIndex, Table: tbl, Index: tbl.Indexes[0], QID: 2,
		Cols:  []ColRef{{QID: 2, Ord: 0}, {QID: 2, Ord: 1}},
		Types: []datum.TypeID{datum.TInt, datum.TInt},
		Props: Props{Rows: 1, Cost: 1.2},
	}
	join := &Node{
		Op: OpNLJoin, Inputs: []*Node{scan, iscan},
		Cols:     append(append([]ColRef(nil), scan.Cols...), iscan.Cols...),
		JoinKind: KindLeftOuter,
		Negated:  true,
		JoinPred: &expr.Cmp{Op: expr.OpEq,
			L: expr.NewCol(1, 0, "T.K", datum.TInt), R: expr.NewCol(2, 0, "U.K", datum.TInt)},
		Props: Props{Rows: 10, Cost: 9.9},
	}
	return &Node{
		Op: OpSort, Inputs: []*Node{join},
		Cols:     join.Cols,
		SortKeys: []SortKey{{Slot: 0}, {Slot: 1, Desc: true}},
		Props:    Props{Rows: 10, Cost: 12},
	}
}

func TestStringRendering(t *testing.T) {
	s := sampleTree(t).String()
	for _, want := range []string{
		"SORT by #0 #1 desc",
		"NLJN kind=leftouter negated",
		"on [T.K = U.K]",
		"SCAN T [T.K > 5]",
		"ISCAN T via T_K(BTREE)",
		"{rows=10 cost=9.9}",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
	// Indentation reflects depth.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "  ") || !strings.HasPrefix(lines[2], "    ") {
		t.Error("indentation wrong")
	}
}

func TestWalkAndCollect(t *testing.T) {
	root := sampleTree(t)
	n := 0
	Walk(root, func(*Node) bool { n++; return true })
	if n != 4 {
		t.Errorf("walk visited %d", n)
	}
	n = 0
	Walk(root, func(*Node) bool { n++; return false })
	if n != 1 {
		t.Error("early stop")
	}
	if !Walk(nil, func(*Node) bool { return false }) {
		t.Error("nil walk")
	}
	ops := CollectOps(root)
	if ops[OpScan] != 1 || ops[OpIndex] != 1 || ops[OpNLJoin] != 1 || ops[OpSort] != 1 {
		t.Errorf("ops = %v", ops)
	}
}

func TestSlotOf(t *testing.T) {
	root := sampleTree(t)
	if root.SlotOf(1, 1) != 1 {
		t.Error("slot of (1,1)")
	}
	if root.SlotOf(2, 0) != 2 {
		t.Error("slot of (2,0)")
	}
	if root.SlotOf(9, 9) != -1 {
		t.Error("missing ref")
	}
}

func TestOrderSatisfies(t *testing.T) {
	p := Props{Order: []SortKey{{Slot: 2}, {Slot: 0, Desc: true}}}
	cases := []struct {
		req  []SortKey
		want bool
	}{
		{nil, true},
		{[]SortKey{{Slot: 2}}, true},
		{[]SortKey{{Slot: 2}, {Slot: 0, Desc: true}}, true},
		{[]SortKey{{Slot: 0}}, false},
		{[]SortKey{{Slot: 2}, {Slot: 0}}, false},
		{[]SortKey{{Slot: 2}, {Slot: 0, Desc: true}, {Slot: 1}}, false},
	}
	for i, tc := range cases {
		if got := p.OrderSatisfies(tc.req); got != tc.want {
			t.Errorf("case %d: %v", i, got)
		}
	}
}
