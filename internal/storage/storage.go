// Package storage is the reproduction of the parts of Core — the
// Starburst data manager — that Corona, the language processor, drives:
// record management (locating, retrieving, storing records), and the
// data management extension architecture of [LIND87] that lets a
// database customizer add new storage managers and new kinds of
// attachments (access methods) such as B-trees or R-trees.
//
// The paper's Core also provides buffer management, concurrency control
// and recovery; those are below the interfaces Corona uses and are
// substituted here by an in-memory page-structured store that counts
// simulated page I/O, so that the optimizer's cost model has real
// signals to validate against (see DESIGN.md, "Substitutions").
package storage

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/datum"
)

// RID identifies a stored record: page number and slot within the page.
type RID struct {
	Page int32
	Slot int32
}

// String renders a RID for debugging.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// Less orders RIDs, used as a duplicate-key tiebreak in attachments.
func (r RID) Less(o RID) bool {
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}

// IOStats counts simulated I/O so experiments can observe access-path
// behaviour. A DB owns one; all relations of that DB share it.
type IOStats struct {
	mu         sync.Mutex
	PageReads  int64
	PageWrites int64
	IndexReads int64
}

// ReadPage records one simulated page read.
func (s *IOStats) ReadPage() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.PageReads++
	s.mu.Unlock()
}

// WritePage records one simulated page write.
func (s *IOStats) WritePage() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.PageWrites++
	s.mu.Unlock()
}

// ReadIndex records one simulated index node read.
func (s *IOStats) ReadIndex() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.IndexReads++
	s.mu.Unlock()
}

// Snapshot returns current counters.
func (s *IOStats) Snapshot() (reads, writes, index int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.PageReads, s.PageWrites, s.IndexReads
}

// Reset zeroes the counters.
func (s *IOStats) Reset() {
	s.mu.Lock()
	s.PageReads, s.PageWrites, s.IndexReads = 0, 0, 0
	s.mu.Unlock()
}

// RowIterator streams stored records.
type RowIterator interface {
	// Next returns the next record, its RID, and whether one was
	// produced.
	Next() (datum.Row, RID, bool)
	// Close releases iterator resources.
	Close()
}

// BatchScanner is an optional RowIterator capability: fill dst with up
// to len(dst) records in one call, returning how many were produced.
// Zero means exhaustion (a batch scanner never returns a zero count
// with records remaining). The rows handed out are caller-retainable —
// built-in implementations materialize each batch in a single shared
// arena, so a batch costs O(1) allocations instead of one clone per
// row. Page-read accounting is identical to tuple iteration.
type BatchScanner interface {
	NextRows(dst []datum.Row) int
}

// ColScanner is an optional RowIterator capability: decompose up to max
// stored records directly into the column vectors of b (which the
// caller has Reset), returning how many rows were appended. Zero means
// exhaustion, exactly like BatchScanner. The vectors are the arena —
// values land in typed lanes with no per-row allocation. Page-read
// accounting is identical to tuple iteration. Iterators that lack this
// capability (fault-wrapped decorations, DISK, VIRTUAL) are adapted by
// the executor through the row path instead.
type ColScanner interface {
	NextCols(b *datum.ColBatch, max int) int
}

// PageRangeScanner is an optional Relation capability: scan only pages
// [lo, hi) of the relation. Exchange operators use it to split one
// table scan into disjoint morsels claimed dynamically by parallel
// workers; the union of the per-range scans over a partition of
// [0, PageCount()) is exactly Scan().
type PageRangeScanner interface {
	ScanPages(lo, hi int64) RowIterator
}

// Relation is a handle to a stored table, the unit a storage manager
// manages. All built-in and DBC storage managers produce Relations.
type Relation interface {
	// Insert stores a record and returns its RID.
	Insert(r datum.Row) (RID, error)
	// Delete removes the record at rid.
	Delete(rid RID) error
	// Update replaces the record at rid.
	Update(rid RID, r datum.Row) error
	// Fetch retrieves a single record by RID.
	Fetch(rid RID) (datum.Row, bool)
	// Scan streams every record. When stats is enabled each page
	// touched counts one read.
	Scan() RowIterator
	// RowCount reports the number of stored records.
	RowCount() int64
	// PageCount reports the number of simulated pages occupied.
	PageCount() int64
	// Truncate removes all records.
	Truncate()
}

// StorageManager creates Relations. DBCs register additional managers
// (the paper's example: one that "handles fixed-length records only —
// but extremely efficiently"); Corona must invoke the correct manager
// when a table is accessed, which it does by recording the manager name
// in the catalog.
type StorageManager interface {
	// Name identifies the manager in CREATE TABLE ... USING <name>.
	Name() string
	// Create allocates storage for a table of the given width.
	Create(tableName string, numCols int, stats *IOStats) (Relation, error)
}

// ---------------------------------------------------------------------
// Access methods (attachments)

// Bound is one end of a key range; Unbounded means no constraint.
type Bound struct {
	Key       datum.Row
	Inclusive bool
	Unbounded bool
}

// Unbounded is the missing bound.
var Unbounded = Bound{Unbounded: true}

// Include constructs an inclusive bound.
func Include(key datum.Row) Bound { return Bound{Key: key, Inclusive: true} }

// Exclude constructs an exclusive bound.
func Exclude(key datum.Row) Bound { return Bound{Key: key} }

// Entry is a key/RID pair stored in an attachment.
type Entry struct {
	Key datum.Row
	RID RID
}

// EntryIterator streams index entries in key order (where the access
// method is ordered).
type EntryIterator interface {
	Next() (Entry, bool)
	Close()
}

// Attachment is an index instance attached to a relation, per the data
// management extension architecture. Implementations include the
// built-in B-tree and the R-tree extension.
type Attachment interface {
	// Insert adds an entry.
	Insert(key datum.Row, rid RID) error
	// Delete removes an entry (key and rid must both match).
	Delete(key datum.Row, rid RID) error
	// Search streams entries with key in [lo, hi] under the method's
	// ordering. Unordered methods may reject range searches.
	Search(lo, hi Bound) EntryIterator
	// Len reports the number of entries.
	Len() int64
}

// AccessMethodCaps describes what an access method can do; the
// optimizer consults this when matching predicates to attachments.
type AccessMethodCaps struct {
	// Ordered access methods produce entries in key order, usable to
	// satisfy ORDER BY and merge-join input requirements.
	Ordered bool
	// Equality supports exact-key lookup.
	Equality bool
	// Range supports one-dimensional key ranges.
	Range bool
	// Spatial supports multi-dimensional window queries (each key
	// column independently range-constrained), the R-tree case.
	Spatial bool
}

// AccessMethod is a kind of attachment a DBC may register (B-tree is
// built in; the paper's example extension is an R-tree [GUTT84]).
type AccessMethod interface {
	// Name identifies the method in CREATE INDEX ... USING <name>.
	Name() string
	// Caps reports the method's capabilities.
	Caps() AccessMethodCaps
	// New creates an attachment instance for keys of the given types.
	New(keyTypes []datum.TypeID, unique bool, stats *IOStats) (Attachment, error)
}

// CompareKeys orders composite keys lexicographically with the total
// order of datum.SortCompare; shorter prefixes compare less when equal
// so far (enables prefix searches).
func CompareKeys(a, b datum.Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := datum.SortCompare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------
// Registries (the extension architecture)

// DuplicateError reports an attempt to register a storage manager or
// access method under a name that is already taken. Extensions must
// pick distinct names; replacing a live manager would silently reroute
// every table that recorded the old name in the catalog.
type DuplicateError struct {
	Kind string // "storage manager" or "access method"
	Name string
}

// Error implements error.
func (e *DuplicateError) Error() string {
	return fmt.Sprintf("storage: %s %q already registered", e.Kind, e.Name)
}

// Registry holds the storage managers and access methods known to one
// database instance.
type Registry struct {
	mu         sync.RWMutex
	mgrs       map[string]StorageManager
	methods    map[string]AccessMethod
	defaultMgr string
}

// NewRegistry returns a registry seeded with the built-in heap storage
// manager and B-tree access method; HEAP is the default manager.
func NewRegistry() *Registry {
	heap := NewHeapManager(64)
	bt := BTreeMethod{}
	return &Registry{
		mgrs:       map[string]StorageManager{heap.Name(): heap},
		methods:    map[string]AccessMethod{bt.Name(): bt},
		defaultMgr: heap.Name(),
	}
}

// RegisterStorageManager installs a storage manager by name, rejecting
// duplicates with a *DuplicateError.
func (r *Registry) RegisterStorageManager(m StorageManager) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.mgrs[m.Name()]; ok {
		return &DuplicateError{Kind: "storage manager", Name: m.Name()}
	}
	r.mgrs[m.Name()] = m
	return nil
}

// RegisterAccessMethod installs an access method (attachment type),
// rejecting duplicates with a *DuplicateError.
func (r *Registry) RegisterAccessMethod(m AccessMethod) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.methods[m.Name()]; ok {
		return &DuplicateError{Kind: "access method", Name: m.Name()}
	}
	r.methods[m.Name()] = m
	return nil
}

// ReplaceStorageManager installs a manager under its name even when the
// name is taken. This is the decoration hook: fault injection swaps a
// registered manager for a wrapped one (and back) under the same name,
// which duplicate rejection must not break.
func (r *Registry) ReplaceStorageManager(m StorageManager) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mgrs[m.Name()] = m
}

// ReplaceAccessMethod installs an access method under its name even
// when the name is taken; the decoration counterpart of
// ReplaceStorageManager.
func (r *Registry) ReplaceAccessMethod(m AccessMethod) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.methods[m.Name()] = m
}

// SetDefaultStorageManager selects the manager an empty USING clause
// resolves to. The named manager must be registered.
func (r *Registry) SetDefaultStorageManager(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.mgrs[name]; !ok {
		return fmt.Errorf("storage: unknown storage manager %q", name)
	}
	r.defaultMgr = name
	return nil
}

// DefaultStorageManager reports the manager an empty USING clause
// resolves to.
func (r *Registry) DefaultStorageManager() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.defaultMgr
}

// StorageManager resolves a manager by name; empty name means the
// registry's default manager (HEAP unless reconfigured).
func (r *Registry) StorageManager(name string) (StorageManager, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		name = r.defaultMgr
	}
	m, ok := r.mgrs[name]
	if !ok {
		return nil, fmt.Errorf("storage: unknown storage manager %q", name)
	}
	return m, nil
}

// AccessMethod resolves an access method by name; empty means B-tree.
func (r *Registry) AccessMethod(name string) (AccessMethod, error) {
	if name == "" {
		name = "BTREE"
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.methods[name]
	if !ok {
		return nil, fmt.Errorf("storage: unknown access method %q", name)
	}
	return m, nil
}

// StorageManagerNames lists registered managers, sorted.
func (r *Registry) StorageManagerNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for n := range r.mgrs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AccessMethodNames lists registered access methods, sorted.
func (r *Registry) AccessMethodNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for n := range r.methods {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
