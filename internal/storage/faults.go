package storage

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/datum"
)

// This file implements deterministic fault injection for the storage
// layer. The paper's Core provides recovery below the interfaces Corona
// uses; our reproduction substitutes it away, so the only way to
// exercise the error paths under the QES is to make the store fail on
// purpose. A FaultInjector decorates any registered StorageManager or
// AccessMethod through the same registries a DBC would use ([LIND87]'s
// extension architecture doubles as a test harness): the wrapped
// manager keeps its name, so re-registering it transparently replaces
// the original for all future CREATE TABLE statements, and existing
// relations and attachments are wrapped in place by the catalog.

// FaultOp names an injectable storage operation.
type FaultOp string

// The injectable operations. SCAN and IXSEARCH faults surface as
// deferred iterator errors (see IterErr); the mutation faults surface
// directly from the wrapped call.
const (
	FaultScan     FaultOp = "SCAN"     // Nth row read through a relation scan
	FaultInsert   FaultOp = "INSERT"   // Nth record insert
	FaultDelete   FaultOp = "DELETE"   // Nth record delete
	FaultUpdate   FaultOp = "UPDATE"   // Nth record update
	FaultIxInsert FaultOp = "IXINSERT" // Nth index-entry insert
	FaultIxDelete FaultOp = "IXDELETE" // Nth index-entry delete
	FaultIxSearch FaultOp = "IXSEARCH" // Nth entry read through an index search

	// Durable-storage fault points, checked by the disk store (see
	// internal/storage/disk). These are the crash-injection boundaries:
	// a Fault with Crash set at one of them simulates a process kill at
	// that exact point in the logging protocol.
	FaultWALAppend FaultOp = "WALAPPEND" // Nth WAL record append
	FaultWALSync   FaultOp = "WALSYNC"   // Nth WAL fsync
	FaultPageWrite FaultOp = "PAGEWRITE" // Nth data-page write-back
)

// AllFaultOps lists every injectable operation on the in-memory path,
// for schedule generators.
var AllFaultOps = []FaultOp{
	FaultScan, FaultInsert, FaultDelete, FaultUpdate,
	FaultIxInsert, FaultIxDelete, FaultIxSearch,
}

// CrashFaultOps lists the durable-storage crash boundaries.
var CrashFaultOps = []FaultOp{FaultWALAppend, FaultWALSync, FaultPageWrite}

// Fault is one injected failure: the (After+1)th matching operation
// sleeps Latency (interruptibly) and then, if Err is non-empty, fails
// with a *FaultError. One-shot unless Repeat is set.
type Fault struct {
	// Table restricts the fault to one table (case-insensitive); empty
	// matches every table.
	Table string
	// Op is the operation to fail.
	Op FaultOp
	// After skips that many matching operations first (0 = fail the
	// first one).
	After int64
	// Err is the injected error text; empty makes a latency-only fault.
	Err string
	// Latency is slept before failing (or instead of failing, when Err
	// is empty). The sleep aborts early when the injector's interrupt
	// channel fires, returning context.Canceled.
	Latency time.Duration
	// Repeat keeps the fault armed after its first firing.
	Repeat bool
	// Crash turns the firing into a simulated process kill: check
	// returns a *CrashError, which the disk store converts into a
	// panic after poisoning itself. Meaningful only on the durable
	// fault points (WALAPPEND/WALSYNC/PAGEWRITE).
	Crash bool
	// Torn asks the disk store to durably flush HALF of the in-flight
	// page before crashing — the torn-page case. Meaningful only with
	// Crash on PAGEWRITE.
	Torn bool

	seen  int64
	fired bool
}

// FaultError is the typed error produced by an injected fault.
type FaultError struct {
	Table string
	Op    FaultOp
	// N is the 1-based ordinal of the operation that failed.
	N   int64
	Msg string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("storage: injected fault: %s #%d on %s: %s", e.Op, e.N, e.Table, e.Msg)
}

// CrashError is the typed error produced by a crash-point fault. The
// disk store panics with it after marking itself crashed; the engine's
// panic barrier converts it into a QueryError, and the torture harness
// then simulates the machine dying (dropping unsynced writes) and
// reopens the directory.
type CrashError struct {
	Table string
	Op    FaultOp
	// N is the 1-based ordinal of the operation that crashed.
	N    int64
	Torn bool
}

func (e *CrashError) Error() string {
	kind := "crash"
	if e.Torn {
		kind = "torn-page crash"
	}
	return fmt.Sprintf("storage: injected %s: %s #%d on %s", kind, e.Op, e.N, e.Table)
}

// CountKey identifies one per-table operation counter.
type CountKey struct {
	Table string
	Op    FaultOp
}

// FaultInjector injects deterministic faults into wrapped relations and
// attachments, counts every operation (so tests can enumerate mutation
// indexes), and tracks open iterators (so tests can prove none leak).
type FaultInjector struct {
	mu        sync.Mutex
	faults    []*Fault
	counts    map[CountKey]int64
	interrupt <-chan struct{}
	openIters int64
	fired     int64
}

// NewFaultInjector returns an empty injector.
func NewFaultInjector() *FaultInjector {
	return &FaultInjector{counts: map[CountKey]int64{}}
}

// Add arms faults.
func (fi *FaultInjector) Add(faults ...*Fault) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	for _, f := range faults {
		f.Table = strings.ToUpper(f.Table)
		f.seen, f.fired = 0, false
		fi.faults = append(fi.faults, f)
	}
}

// ClearFaults disarms every fault but keeps counters and wrapping.
func (fi *FaultInjector) ClearFaults() {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.faults = nil
}

// ResetCounts zeroes the per-operation counters.
func (fi *FaultInjector) ResetCounts() {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.counts = map[CountKey]int64{}
}

// Counts snapshots the per-(table, op) operation counters.
func (fi *FaultInjector) Counts() map[CountKey]int64 {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	out := make(map[CountKey]int64, len(fi.counts))
	for k, v := range fi.counts {
		out[k] = v
	}
	return out
}

// Fired reports how many injected faults have fired (latency-only
// firings included) since the injector was created.
func (fi *FaultInjector) Fired() int64 {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.fired
}

// OpenIterators reports how many wrapped iterators are currently open;
// zero after a statement proves no operator leaked one.
func (fi *FaultInjector) OpenIterators() int64 {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.openIters
}

// SetInterrupt installs the channel that aborts injected latency
// sleeps; execution wires the statement context's Done channel here.
// The injector is shared by all statements of a DB, so concurrent
// statements share one interrupt.
func (fi *FaultInjector) SetInterrupt(ch <-chan struct{}) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.interrupt = ch
}

// CheckOp counts one operation and fires the first matching armed
// fault. It is the fault point external storage implementations (the
// disk store) call at their own boundaries; the built-in decorators
// funnel through it too. A nil injector is a no-op.
func (fi *FaultInjector) CheckOp(table string, op FaultOp) error {
	if fi == nil {
		return nil
	}
	return fi.check(table, op)
}

// check counts one operation and fires the first matching armed fault.
func (fi *FaultInjector) check(table string, op FaultOp) error {
	fi.mu.Lock()
	key := CountKey{Table: table, Op: op}
	fi.counts[key]++
	n := fi.counts[key]
	var hit *Fault
	for _, f := range fi.faults {
		if f.Op != op || (f.Table != "" && f.Table != table) {
			continue
		}
		if f.fired && !f.Repeat {
			continue
		}
		f.seen++
		if f.seen > f.After {
			f.fired = true
			hit = f
			break
		}
	}
	var latency time.Duration
	var errText string
	if hit != nil {
		fi.fired++
		latency, errText = hit.Latency, hit.Err
	}
	interrupt := fi.interrupt
	fi.mu.Unlock()
	if hit == nil {
		return nil
	}
	if latency > 0 {
		t := time.NewTimer(latency)
		select {
		case <-t.C:
		case <-interrupt:
			t.Stop()
			return context.Canceled
		}
	}
	if hit.Crash {
		return &CrashError{Table: table, Op: op, N: n, Torn: hit.Torn}
	}
	if errText == "" {
		return nil
	}
	return &FaultError{Table: table, Op: op, N: n, Msg: errText}
}

func (fi *FaultInjector) iterOpened() {
	fi.mu.Lock()
	fi.openIters++
	fi.mu.Unlock()
}

func (fi *FaultInjector) iterClosed() {
	fi.mu.Lock()
	fi.openIters--
	fi.mu.Unlock()
}

// RandomSchedule derives a deterministic fault schedule from a seed:
// nFaults one-shot error faults over the given ops, each firing within
// the first maxAfter matching operations. Fuzzing feeds random seeds.
func RandomSchedule(seed int64, nFaults, maxAfter int) []*Fault {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Fault, 0, nFaults)
	for i := 0; i < nFaults; i++ {
		out = append(out, &Fault{
			Op:    AllFaultOps[rng.Intn(len(AllFaultOps))],
			After: int64(rng.Intn(maxAfter)),
			Err:   fmt.Sprintf("random fault %d (seed %d)", i, seed),
		})
	}
	return out
}

// ---------------------------------------------------------------------
// Deferred iterator errors

// IterErr reports the deferred error of an iterator, if it carries one.
// RowIterator and EntryIterator cannot return errors from Next (their
// built-in implementations never fail), so fallible wrappers expose an
// Err method instead; consumers must call IterErr when Next reports
// exhaustion.
func IterErr(it any) error {
	if e, ok := it.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// Restorer is an optional Relation capability: put a previously deleted
// record back at its original RID. The undo log uses it so a rolled-back
// DELETE restores the exact pre-statement scan order and RIDs.
type Restorer interface {
	Restore(rid RID, r datum.Row) error
}

// UnwrapRelation peels fault decoration off a relation, returning the
// raw store (itself when undecorated). Compensating actions run against
// the raw store: rollback must not be failed by the very injector that
// aborted the statement.
func UnwrapRelation(rel Relation) Relation {
	for {
		w, ok := rel.(interface{ Unwrap() Relation })
		if !ok {
			return rel
		}
		rel = w.Unwrap()
	}
}

// UnwrapAttachment peels fault decoration off an attachment.
func UnwrapAttachment(at Attachment) Attachment {
	for {
		w, ok := at.(interface{ Unwrap() Attachment })
		if !ok {
			return at
		}
		at = w.Unwrap()
	}
}

// ---------------------------------------------------------------------
// Storage manager decoration

type faultManager struct {
	inner StorageManager
	fi    *FaultInjector
}

// WrapManager decorates a storage manager: same name, but every
// relation it creates is fault-wrapped. Registering the result replaces
// the original in the registry — the decorator flows through the same
// extension path a DBC manager would.
func (fi *FaultInjector) WrapManager(m StorageManager) StorageManager {
	if w, ok := m.(*faultManager); ok && w.fi == fi {
		return m
	}
	return &faultManager{inner: m, fi: fi}
}

func (m *faultManager) Name() string { return m.inner.Name() }

func (m *faultManager) Unwrap() StorageManager { return m.inner }

func (m *faultManager) Create(tableName string, numCols int, stats *IOStats) (Relation, error) {
	rel, err := m.inner.Create(tableName, numCols, stats)
	if err != nil {
		return nil, err
	}
	return m.fi.WrapRelation(tableName, rel), nil
}

// UnwrapManager peels fault decoration off a storage manager.
func UnwrapManager(m StorageManager) StorageManager {
	for {
		w, ok := m.(interface{ Unwrap() StorageManager })
		if !ok {
			return m
		}
		m = w.Unwrap()
	}
}

// ---------------------------------------------------------------------
// Access method decoration

type faultMethod struct {
	inner AccessMethod
	fi    *FaultInjector
}

// WrapMethod decorates an access method: every attachment it creates is
// fault-wrapped. The owner table is unknown at New time; the catalog
// names the attachment after creation via SetOwner.
func (fi *FaultInjector) WrapMethod(m AccessMethod) AccessMethod {
	if w, ok := m.(*faultMethod); ok && w.fi == fi {
		return m
	}
	return &faultMethod{inner: m, fi: fi}
}

func (m *faultMethod) Name() string           { return m.inner.Name() }
func (m *faultMethod) Caps() AccessMethodCaps { return m.inner.Caps() }
func (m *faultMethod) Unwrap() AccessMethod   { return m.inner }

func (m *faultMethod) New(keyTypes []datum.TypeID, unique bool, stats *IOStats) (Attachment, error) {
	at, err := m.inner.New(keyTypes, unique, stats)
	if err != nil {
		return nil, err
	}
	return m.fi.WrapAttachment("", at), nil
}

// UnwrapMethod peels fault decoration off an access method.
func UnwrapMethod(m AccessMethod) AccessMethod {
	for {
		w, ok := m.(interface{ Unwrap() AccessMethod })
		if !ok {
			return m
		}
		m = w.Unwrap()
	}
}

// ---------------------------------------------------------------------
// Relation decoration

// FaultRelation is a Relation decorated with fault injection.
type FaultRelation struct {
	inner Relation
	table string
	fi    *FaultInjector
}

// WrapRelation decorates a relation; table names the counter bucket.
func (fi *FaultInjector) WrapRelation(table string, rel Relation) Relation {
	if w, ok := rel.(*FaultRelation); ok && w.fi == fi {
		return rel
	}
	return &FaultRelation{inner: rel, table: strings.ToUpper(table), fi: fi}
}

// Unwrap returns the undecorated relation.
func (r *FaultRelation) Unwrap() Relation { return r.inner }

// Insert implements Relation with an INSERT fault point.
func (r *FaultRelation) Insert(row datum.Row) (RID, error) {
	if err := r.fi.check(r.table, FaultInsert); err != nil {
		return RID{}, err
	}
	return r.inner.Insert(row)
}

// Delete implements Relation with a DELETE fault point.
func (r *FaultRelation) Delete(rid RID) error {
	if err := r.fi.check(r.table, FaultDelete); err != nil {
		return err
	}
	return r.inner.Delete(rid)
}

// Update implements Relation with an UPDATE fault point.
func (r *FaultRelation) Update(rid RID, row datum.Row) error {
	if err := r.fi.check(r.table, FaultUpdate); err != nil {
		return err
	}
	return r.inner.Update(rid, row)
}

// Fetch implements Relation (no fault point: Fetch cannot report
// errors; index-scan fetches are covered by IXSEARCH instead).
func (r *FaultRelation) Fetch(rid RID) (datum.Row, bool) { return r.inner.Fetch(rid) }

// Scan implements Relation; the iterator carries SCAN fault points and
// is tracked for leak detection.
func (r *FaultRelation) Scan() RowIterator {
	r.fi.iterOpened()
	return &faultRowIterator{inner: r.inner.Scan(), rel: r}
}

// RowCount implements Relation.
func (r *FaultRelation) RowCount() int64 { return r.inner.RowCount() }

// PageCount implements Relation.
func (r *FaultRelation) PageCount() int64 { return r.inner.PageCount() }

// Truncate implements Relation.
func (r *FaultRelation) Truncate() { r.inner.Truncate() }

// Restore forwards to the raw store when it supports restoration. The
// undo path is never fault-checked: compensation must succeed.
func (r *FaultRelation) Restore(rid RID, row datum.Row) error {
	if res, ok := r.inner.(Restorer); ok {
		return res.Restore(rid, row)
	}
	return fmt.Errorf("storage: %T cannot restore records", r.inner)
}

type faultRowIterator struct {
	inner  RowIterator
	rel    *FaultRelation
	err    error
	closed bool
}

func (it *faultRowIterator) Next() (datum.Row, RID, bool) {
	if it.err != nil {
		return nil, RID{}, false
	}
	if err := it.rel.fi.check(it.rel.table, FaultScan); err != nil {
		it.err = err
		return nil, RID{}, false
	}
	return it.inner.Next()
}

func (it *faultRowIterator) Close() {
	if !it.closed {
		it.closed = true
		it.rel.fi.iterClosed()
	}
	it.inner.Close()
}

// Err reports the injected error that terminated the scan, if any.
func (it *faultRowIterator) Err() error { return it.err }

// ---------------------------------------------------------------------
// Attachment decoration

// FaultAttachment is an Attachment decorated with fault injection.
type FaultAttachment struct {
	inner Attachment
	owner string
	fi    *FaultInjector
}

// WrapAttachment decorates an attachment; owner names the counter
// bucket (the owning table), possibly set later via SetOwner.
func (fi *FaultInjector) WrapAttachment(owner string, at Attachment) Attachment {
	if w, ok := at.(*FaultAttachment); ok && w.fi == fi {
		return at
	}
	return &FaultAttachment{inner: at, owner: strings.ToUpper(owner), fi: fi}
}

// Unwrap returns the undecorated attachment.
func (a *FaultAttachment) Unwrap() Attachment { return a.inner }

// Owner reports the counter bucket this attachment charges.
func (a *FaultAttachment) Owner() string { return a.owner }

// SetOwner names the counter bucket; the catalog calls this after
// CREATE INDEX, when the owning table is known.
func (a *FaultAttachment) SetOwner(owner string) { a.owner = strings.ToUpper(owner) }

// Insert implements Attachment with an IXINSERT fault point.
func (a *FaultAttachment) Insert(key datum.Row, rid RID) error {
	if err := a.fi.check(a.owner, FaultIxInsert); err != nil {
		return err
	}
	return a.inner.Insert(key, rid)
}

// Delete implements Attachment with an IXDELETE fault point.
func (a *FaultAttachment) Delete(key datum.Row, rid RID) error {
	if err := a.fi.check(a.owner, FaultIxDelete); err != nil {
		return err
	}
	return a.inner.Delete(key, rid)
}

// Search implements Attachment; the iterator carries IXSEARCH fault
// points and is tracked for leak detection.
func (a *FaultAttachment) Search(lo, hi Bound) EntryIterator {
	a.fi.iterOpened()
	return &faultEntryIterator{inner: a.inner.Search(lo, hi), at: a}
}

// Len implements Attachment.
func (a *FaultAttachment) Len() int64 { return a.inner.Len() }

type faultEntryIterator struct {
	inner  EntryIterator
	at     *FaultAttachment
	err    error
	closed bool
}

func (it *faultEntryIterator) Next() (Entry, bool) {
	if it.err != nil {
		return Entry{}, false
	}
	if err := it.at.fi.check(it.at.owner, FaultIxSearch); err != nil {
		it.err = err
		return Entry{}, false
	}
	return it.inner.Next()
}

func (it *faultEntryIterator) Close() {
	if !it.closed {
		it.closed = true
		it.at.fi.iterClosed()
	}
	it.inner.Close()
}

// Err reports the injected error that terminated the search, if any.
func (it *faultEntryIterator) Err() error { return it.err }
