package disk

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/datum"
)

// Row codec: one tag byte per value, then a type-specific payload.
//
//	0 NULL    —
//	1 BOOL    false
//	2 BOOL    true
//	3 INT     zigzag varint
//	4 FLOAT   8-byte little-endian IEEE 754 bits
//	5 STRING  uvarint length + bytes
//
// User-defined types are rejected: their values round-trip through the
// registered TypeDef formatting hooks, which have no stable inverse the
// storage layer could rely on across restarts. This mirrors the FIXED
// manager, which rejects variable-length types it cannot hold.
const (
	tagNull   = 0
	tagFalse  = 1
	tagTrue   = 2
	tagInt    = 3
	tagFloat  = 4
	tagString = 5
)

// encodeRow appends row's encoding to dst and returns the result.
func encodeRow(dst []byte, row datum.Row) ([]byte, error) {
	for _, v := range row {
		if v.IsNull() {
			dst = append(dst, tagNull)
			continue
		}
		switch v.Type() {
		case datum.TBool:
			if v.Bool() {
				dst = append(dst, tagTrue)
			} else {
				dst = append(dst, tagFalse)
			}
		case datum.TInt:
			dst = append(dst, tagInt)
			dst = binary.AppendVarint(dst, v.Int())
		case datum.TFloat:
			dst = append(dst, tagFloat)
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.Float()))
			dst = append(dst, b[:]...)
		case datum.TString:
			dst = append(dst, tagString)
			s := v.Str()
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		default:
			return nil, fmt.Errorf("disk: cannot store value of user-defined type %v (DISK tables support NULL/BOOL/INT/FLOAT/STRING)", v.Type())
		}
	}
	return dst, nil
}

// decodeRow parses numCols values from rec into a fresh row.
func decodeRow(rec []byte, numCols int) (datum.Row, error) {
	row := make(datum.Row, numCols)
	pos := 0
	for i := 0; i < numCols; i++ {
		if pos >= len(rec) {
			return nil, fmt.Errorf("disk: truncated record (col %d of %d)", i, numCols)
		}
		tag := rec[pos]
		pos++
		switch tag {
		case tagNull:
			row[i] = datum.Null
		case tagFalse:
			row[i] = datum.NewBool(false)
		case tagTrue:
			row[i] = datum.NewBool(true)
		case tagInt:
			v, n := binary.Varint(rec[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("disk: bad varint in record col %d", i)
			}
			pos += n
			row[i] = datum.NewInt(v)
		case tagFloat:
			if pos+8 > len(rec) {
				return nil, fmt.Errorf("disk: truncated float in record col %d", i)
			}
			row[i] = datum.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(rec[pos:])))
			pos += 8
		case tagString:
			n, w := binary.Uvarint(rec[pos:])
			if w <= 0 || pos+w+int(n) > len(rec) {
				return nil, fmt.Errorf("disk: truncated string in record col %d", i)
			}
			pos += w
			row[i] = datum.NewString(string(rec[pos : pos+int(n)]))
			pos += int(n)
		default:
			return nil, fmt.Errorf("disk: unknown value tag %d in record col %d", tag, i)
		}
	}
	if pos != len(rec) {
		return nil, fmt.Errorf("disk: %d trailing bytes after record", len(rec)-pos)
	}
	return row, nil
}
