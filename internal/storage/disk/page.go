package disk

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// DefaultPageSize is the page size used unless Options overrides it.
const DefaultPageSize = 4096

// Slotted-page layout (all integers little-endian):
//
//	offset 0  u64  pageLSN   — LSN of the last record applied to the page
//	offset 8  u32  crc32     — IEEE CRC of the page with this field zeroed
//	offset 12 u16  slotCount — entries in the slot directory
//	offset 14 u16  dataStart — low-water mark of the record heap
//	offset 16 ...  slot directory, 4 bytes per slot:
//	              u16 recOff (0 = dead slot), u16 recLen
//	...       ...  record heap growing down from the page end
const (
	pageHeaderSize = 16
	slotSize       = 4

	offLSN       = 0
	offCRC       = 8
	offSlotCount = 12
	offDataStart = 14
)

// page wraps one page-sized buffer with slotted-record accessors. It is
// a view, not a copy: mutations write straight into buf.
type page struct {
	buf []byte
}

func newPage(buf []byte) page {
	if len(buf) < pageHeaderSize+slotSize {
		panic(fmt.Sprintf("disk: page buffer too small: %d", len(buf)))
	}
	return page{buf: buf}
}

// init formats buf as an empty page.
func (p page) init() {
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.setDataStart(uint16(len(p.buf)))
}

func (p page) lsn() uint64       { return binary.LittleEndian.Uint64(p.buf[offLSN:]) }
func (p page) setLSN(lsn uint64) { binary.LittleEndian.PutUint64(p.buf[offLSN:], lsn) }

func (p page) slotCount() int     { return int(binary.LittleEndian.Uint16(p.buf[offSlotCount:])) }
func (p page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p.buf[offSlotCount:], uint16(n)) }
func (p page) dataStart() int     { return int(binary.LittleEndian.Uint16(p.buf[offDataStart:])) }
func (p page) setDataStart(v uint16) {
	binary.LittleEndian.PutUint16(p.buf[offDataStart:], v)
}

func (p page) slot(i int) (off, length int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.buf[base:])),
		int(binary.LittleEndian.Uint16(p.buf[base+2:]))
}

func (p page) setSlot(i, off, length int) {
	base := pageHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:], uint16(length))
}

// record returns the live record bytes at slot i, or nil for a dead or
// out-of-range slot. The slice aliases the page buffer.
func (p page) record(i int) []byte {
	if i < 0 || i >= p.slotCount() {
		return nil
	}
	off, length := p.slot(i)
	if off == 0 {
		return nil
	}
	return p.buf[off : off+length]
}

// free reports the bytes available for one more record including its
// slot entry (conservative: ignores reclaimable dead-record space that
// compaction could recover, which insert handles on demand).
func (p page) free() int {
	return p.dataStart() - (pageHeaderSize + p.slotCount()*slotSize)
}

// liveBytes sums the lengths of live records.
func (p page) liveBytes() int {
	total := 0
	for i := 0; i < p.slotCount(); i++ {
		if off, length := p.slot(i); off != 0 {
			total += length
		}
	}
	return total
}

// canFit reports whether a record of recLen fits after compaction,
// assuming it may need a fresh slot entry.
func (p page) canFit(recLen int) bool {
	avail := len(p.buf) - pageHeaderSize - (p.slotCount()+1)*slotSize - p.liveBytes()
	return recLen <= avail
}

// insertCapacity reports the largest record insertable after compaction
// assuming a fresh slot entry — the free-space-map value for this page.
func (p page) insertCapacity() int {
	avail := len(p.buf) - pageHeaderSize - (p.slotCount()+1)*slotSize - p.liveBytes()
	if avail < 0 {
		return 0
	}
	return avail
}

// canUpdate reports whether a replacement record of newLen fits at a
// live slot (in place or after compaction). The write path checks this
// BEFORE logging the update so a logged record is always applicable —
// at apply time and again at replay.
func (p page) canUpdate(slot, newLen int) bool {
	if slot < 0 || slot >= p.slotCount() {
		return false
	}
	off, length := p.slot(slot)
	if off == 0 {
		return false
	}
	if newLen <= length {
		return true
	}
	avail := len(p.buf) - pageHeaderSize - p.slotCount()*slotSize - (p.liveBytes() - length)
	return newLen <= avail
}

// compact rewrites the record heap contiguously at the page end,
// preserving slot numbers (RIDs are physical and must survive).
func (p page) compact() {
	type liveRec struct {
		slot int
		data []byte
	}
	var live []liveRec
	for i := 0; i < p.slotCount(); i++ {
		if rec := p.record(i); rec != nil {
			live = append(live, liveRec{i, append([]byte(nil), rec...)})
		}
	}
	pos := len(p.buf)
	for _, r := range live {
		pos -= len(r.data)
		copy(p.buf[pos:], r.data)
		_, length := p.slot(r.slot)
		p.setSlot(r.slot, pos, length)
	}
	p.setDataStart(uint16(pos))
}

// insert appends rec into the first free slot (a dead slot is reused,
// else a new one), compacting first when fragmented. Returns the slot
// number, or false when the record cannot fit even after compaction.
func (p page) insert(rec []byte) (int, bool) {
	slot := -1
	for i := 0; i < p.slotCount(); i++ {
		if off, _ := p.slot(i); off == 0 {
			slot = i
			break
		}
	}
	need := len(rec)
	if slot == -1 {
		need += slotSize
	}
	if p.free() < need {
		if !p.canFit(len(rec)) {
			return 0, false
		}
		p.compact()
	}
	if slot == -1 {
		slot = p.slotCount()
		p.setSlotCount(slot + 1)
	}
	p.place(slot, rec)
	return slot, true
}

// insertAt installs rec at an exact slot number, growing the directory
// (padding the gap with dead slots) as needed. Used by WAL replay and
// Restorer put-back, where the slot is dictated by the record's RID.
// Fails when the slot is already live or the record cannot fit.
func (p page) insertAt(slot int, rec []byte) error {
	if slot < 0 || slot > 0xffff {
		return fmt.Errorf("disk: slot %d out of range", slot)
	}
	grow := 0
	if slot >= p.slotCount() {
		grow = slot + 1 - p.slotCount()
	} else if off, _ := p.slot(slot); off != 0 {
		return fmt.Errorf("disk: slot %d already occupied", slot)
	}
	need := len(rec) + grow*slotSize
	if p.free() < need {
		avail := len(p.buf) - pageHeaderSize - (p.slotCount()+grow)*slotSize - p.liveBytes()
		if len(rec) > avail {
			return fmt.Errorf("disk: record of %d bytes does not fit in page", len(rec))
		}
		p.compact()
	}
	if grow > 0 {
		old := p.slotCount()
		p.setSlotCount(slot + 1)
		for i := old; i <= slot; i++ {
			p.setSlot(i, 0, 0)
		}
	}
	p.place(slot, rec)
	return nil
}

// nextSlot returns the slot insert would choose: the first dead slot,
// else a fresh one. The write path needs the slot number before the
// insert happens, to log it.
func (p page) nextSlot() int {
	for i := 0; i < p.slotCount(); i++ {
		if off, _ := p.slot(i); off == 0 {
			return i
		}
	}
	return p.slotCount()
}

// place writes rec at the heap low-water mark and points slot at it.
// Caller has ensured the space exists.
func (p page) place(slot int, rec []byte) {
	pos := p.dataStart() - len(rec)
	copy(p.buf[pos:], rec)
	p.setDataStart(uint16(pos))
	p.setSlot(slot, pos, len(rec))
}

// delete kills a slot. Record bytes stay until compaction. Reports
// whether the slot was live.
func (p page) delete(slot int) bool {
	if slot < 0 || slot >= p.slotCount() {
		return false
	}
	if off, _ := p.slot(slot); off == 0 {
		return false
	}
	p.setSlot(slot, 0, 0)
	return true
}

// update replaces the record at a live slot, in place when the new
// record is no longer, else via delete+re-place (same slot).
func (p page) update(slot int, rec []byte) error {
	if slot < 0 || slot >= p.slotCount() {
		return fmt.Errorf("disk: slot %d out of range", slot)
	}
	off, length := p.slot(slot)
	if off == 0 {
		return fmt.Errorf("disk: slot %d is dead", slot)
	}
	if len(rec) <= length {
		copy(p.buf[off:], rec)
		p.setSlot(slot, off, len(rec))
		return nil
	}
	p.setSlot(slot, 0, 0)
	if p.free() < len(rec) {
		if !p.canFit(len(rec)) {
			p.setSlot(slot, off, length) // restore; caller must relocate
			return fmt.Errorf("disk: updated record of %d bytes does not fit in page", len(rec))
		}
		p.compact()
	}
	p.place(slot, rec)
	return nil
}

// liveCount returns the number of live records.
func (p page) liveCount() int {
	n := 0
	for i := 0; i < p.slotCount(); i++ {
		if off, _ := p.slot(i); off != 0 {
			n++
		}
	}
	return n
}

// checksum computes the page CRC with the checksum field zeroed.
func (p page) checksum() uint32 {
	crc := crc32.NewIEEE()
	crc.Write(p.buf[:offCRC])
	var zero [4]byte
	crc.Write(zero[:])
	crc.Write(p.buf[offCRC+4:])
	return crc.Sum32()
}

// seal stamps the stored checksum; call before writing the page out.
func (p page) seal() {
	binary.LittleEndian.PutUint32(p.buf[offCRC:], p.checksum())
}

// verify reports whether the stored checksum matches the content — a
// torn or corrupted page fails this.
func (p page) verify() bool {
	return binary.LittleEndian.Uint32(p.buf[offCRC:]) == p.checksum()
}
