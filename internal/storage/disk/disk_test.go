package disk

// White-box tests for the durable storage layer: slotted pages, the row
// codec, WAL framing and torn-tail scanning, buffer-pool eviction, and
// store-level crash recovery over the in-memory filesystem (MemFS
// discards every write that was not explicitly fsynced, so a Crash()
// plus reopen is a faithful kill -9).

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/datum"
	"repro/internal/storage"
)

// ---------------------------------------------------------------------
// Slotted page

func TestPageInsertFetchDeleteUpdate(t *testing.T) {
	buf := make([]byte, 512)
	p := newPage(buf)
	p.init()

	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	var slots []int
	for _, r := range recs {
		s, ok := p.insert(r)
		if !ok {
			t.Fatalf("insert %q failed", r)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		if got := p.record(s); !bytes.Equal(got, recs[i]) {
			t.Fatalf("slot %d: got %q want %q", s, got, recs[i])
		}
	}
	if n := p.liveCount(); n != 3 {
		t.Fatalf("liveCount = %d, want 3", n)
	}

	if !p.delete(slots[1]) {
		t.Fatal("delete failed")
	}
	if p.record(slots[1]) != nil {
		t.Fatal("deleted slot still has a record")
	}
	if p.delete(slots[1]) {
		t.Fatal("double delete reported success")
	}

	// In-place update (same length) and growing update.
	if err := p.update(slots[0], []byte("ALPHA")); err != nil {
		t.Fatal(err)
	}
	if err := p.update(slots[2], []byte("a-much-longer-gamma-record")); err != nil {
		t.Fatal(err)
	}
	if got := p.record(slots[2]); string(got) != "a-much-longer-gamma-record" {
		t.Fatalf("after grow: %q", got)
	}

	// Reuse of the dead slot: nextSlot must return it, insertAt must land
	// exactly there.
	if ns := p.nextSlot(); ns != slots[1] {
		t.Fatalf("nextSlot = %d, want dead slot %d", ns, slots[1])
	}
	if err := p.insertAt(slots[1], []byte("beta2")); err != nil {
		t.Fatal(err)
	}
	if got := p.record(slots[1]); string(got) != "beta2" {
		t.Fatalf("reused slot: %q", got)
	}
}

func TestPageCompactPreservesSlots(t *testing.T) {
	buf := make([]byte, 256)
	p := newPage(buf)
	p.init()
	var slots []int
	i := 0
	for {
		s, ok := p.insert([]byte(fmt.Sprintf("rec-%02d", i)))
		if !ok {
			break
		}
		slots = append(slots, s)
		i++
	}
	if len(slots) < 4 {
		t.Fatalf("page too small for the test: %d records", len(slots))
	}
	// Delete every even slot, then force a compaction by inserting a
	// record larger than the contiguous gap.
	for j := 0; j < len(slots); j += 2 {
		p.delete(slots[j])
	}
	big := make([]byte, p.insertCapacity()-slotSize)
	for k := range big {
		big[k] = 'x'
	}
	s, ok := p.insert(big)
	if !ok {
		t.Fatalf("insert after compaction failed (capacity %d)", p.insertCapacity())
	}
	if got := p.record(s); !bytes.Equal(got, big) {
		t.Fatal("compacted insert corrupted the record")
	}
	// Survivors keep their slot numbers and contents.
	for j := 1; j < len(slots); j += 2 {
		want := fmt.Sprintf("rec-%02d", j)
		if got := p.record(slots[j]); string(got) != want {
			t.Fatalf("slot %d after compact: got %q want %q", slots[j], got, want)
		}
	}
}

func TestPageChecksum(t *testing.T) {
	buf := make([]byte, 256)
	p := newPage(buf)
	p.init()
	if _, ok := p.insert([]byte("payload")); !ok {
		t.Fatal("insert failed")
	}
	p.seal()
	if !p.verify() {
		t.Fatal("sealed page fails verification")
	}
	buf[len(buf)-1] ^= 0xFF
	if p.verify() {
		t.Fatal("corrupted page passes verification")
	}
}

func TestPageCanUpdate(t *testing.T) {
	buf := make([]byte, 128)
	p := newPage(buf)
	p.init()
	s, ok := p.insert([]byte("12345678"))
	if !ok {
		t.Fatal("insert failed")
	}
	if !p.canUpdate(s, 4) {
		t.Fatal("shrink must always fit")
	}
	if p.canUpdate(s, len(buf)) {
		t.Fatal("page-sized update cannot fit")
	}
	if p.canUpdate(99, 4) {
		t.Fatal("canUpdate on a missing slot")
	}
	// canUpdate's yes must be insert-guaranteed: log-before-apply relies
	// on it.
	grow := p.insertCapacity() + len(p.record(s)) - 1
	if p.canUpdate(s, grow) {
		if err := p.update(s, make([]byte, grow)); err != nil {
			t.Fatalf("canUpdate said yes but update failed: %v", err)
		}
	}
}

// ---------------------------------------------------------------------
// Row codec

func TestCodecRoundTrip(t *testing.T) {
	rows := []datum.Row{
		{datum.NewInt(0), datum.NewInt(-1), datum.NewInt(1 << 40)},
		{datum.Null, datum.NewBool(true), datum.NewBool(false)},
		{datum.NewFloat(3.25), datum.NewString(""), datum.NewString("héllo")},
	}
	for _, row := range rows {
		rec, err := encodeRow(nil, row)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeRow(rec, len(row))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(row) {
			t.Fatalf("decoded %d cols, want %d", len(got), len(row))
		}
		for i := range row {
			if row[i].IsNull() {
				if !got[i].IsNull() {
					t.Fatalf("col %d: want NULL, got %v", i, got[i])
				}
				continue
			}
			if cmp, ok := datum.Compare(got[i], row[i]); !ok || cmp != 0 {
				t.Fatalf("col %d: got %v want %v", i, got[i], row[i])
			}
		}
	}
}

func TestCodecRejectsShortRecord(t *testing.T) {
	rec, err := encodeRow(nil, datum.Row{datum.NewInt(7)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeRow(rec, 2); err == nil {
		t.Fatal("decode of a one-column record as two columns succeeded")
	}
}

// ---------------------------------------------------------------------
// WAL

func TestWalAppendScanRoundTrip(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.OpenFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	w, err := newWalFile(f)
	if err != nil {
		t.Fatal(err)
	}
	want := []*walRecord{
		{kind: walInsert, stmtID: 1, table: "T", pageNo: 3, slot: 2, data: []byte("row")},
		{kind: walDelete, stmtID: 1, table: "T", pageNo: 3, slot: 2},
		{kind: walCommit, stmtID: 1},
		{kind: walDDL, stmtID: 2, data: []byte("CREATE TABLE X (a INT)")},
	}
	for _, r := range want {
		if _, err := w.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.sync(w.nextLSN - 1); err != nil {
		t.Fatal(err)
	}

	size, err := fs.Stat("wal")
	if err != nil {
		t.Fatal(err)
	}
	got, intactEnd, lastLSN, err := walScan(f, size)
	if err != nil {
		t.Fatal(err)
	}
	if intactEnd != size {
		t.Fatalf("intactEnd = %d, want %d", intactEnd, size)
	}
	if lastLSN != uint64(len(want)) {
		t.Fatalf("lastLSN = %d, want %d", lastLSN, len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		w := want[i]
		if r.lsn != uint64(i+1) || r.kind != w.kind || r.stmtID != w.stmtID ||
			r.table != w.table || r.pageNo != w.pageNo || r.slot != w.slot ||
			!bytes.Equal(r.data, w.data) {
			t.Fatalf("record %d: got %+v want %+v", i, r, w)
		}
	}
}

func TestWalScanTruncatesTornTail(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.OpenFile("wal")
	w, err := newWalFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(&walRecord{kind: walInsert, stmtID: 1, table: "T", data: []byte("good")}); err != nil {
		t.Fatal(err)
	}
	if err := w.sync(w.nextLSN - 1); err != nil {
		t.Fatal(err)
	}
	goodEnd := w.off
	// A torn append: frame header promising more bytes than exist.
	if _, err := f.WriteAt([]byte{0xFF, 0x00, 0x00, 0x00, 0xAA, 0xBB}, goodEnd); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	size, _ := fs.Stat("wal")
	recs, intactEnd, lastLSN, err := walScan(f, size)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || lastLSN != 1 {
		t.Fatalf("got %d records lastLSN=%d, want 1 record lastLSN=1", len(recs), lastLSN)
	}
	if intactEnd != goodEnd {
		t.Fatalf("intactEnd = %d, want %d", intactEnd, goodEnd)
	}

	// A corrupt frame (bad CRC) is also a tail boundary.
	if _, err := f.WriteAt([]byte{4, 0, 0, 0, 1, 2, 3, 4, 9, 9, 9, 9}, goodEnd); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	size, _ = fs.Stat("wal")
	recs, intactEnd, _, err = walScan(f, size)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || intactEnd != goodEnd {
		t.Fatalf("corrupt frame not treated as tail: %d records, intactEnd %d want %d", len(recs), intactEnd, goodEnd)
	}
}

// ---------------------------------------------------------------------
// Buffer pool

func TestPoolHitMissEvict(t *testing.T) {
	p := newPool(4) // 4 is also the enforced minimum capacity
	loads := 0
	load := func(table string, page uint32) func([]byte) error {
		return func(buf []byte) error {
			loads++
			buf[0] = byte(page)
			return nil
		}
	}
	get := func(table string, page uint32) *frame {
		fr, err := p.get(frameKey{table, page}, 64, load(table, page))
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}

	a := get("T", 0)
	p.unpin(a, false, 0)
	b := get("T", 0) // hit
	p.unpin(b, false, 0)
	if a != b {
		t.Fatal("second get of the same page missed")
	}
	for pg := uint32(1); pg < 4; pg++ {
		p.unpin(get("T", pg), false, 0)
	}
	// Fifth distinct page in a 4-frame pool: someone clean gets evicted.
	c := get("T", 4)
	p.unpin(c, false, 0)
	hits, misses, evicts, overflow := p.stats()
	if hits != 1 || misses != 5 {
		t.Fatalf("hits=%d misses=%d, want 1/5", hits, misses)
	}
	if evicts != 1 || overflow != 0 {
		t.Fatalf("evicts=%d overflow=%d, want 1/0", evicts, overflow)
	}
	if loads != 5 {
		t.Fatalf("loads = %d, want 5", loads)
	}
}

func TestPoolDirtyPagesNotEvicted(t *testing.T) {
	p := newPool(4)
	load := func(buf []byte) error { return nil }
	var first *frame
	for pg := uint32(0); pg < 4; pg++ {
		fr, err := p.get(frameKey{"T", pg}, 64, load)
		if err != nil {
			t.Fatal(err)
		}
		if pg == 0 {
			first = fr
		}
		p.unpin(fr, true, uint64(pg+5)) // dirty: no-steal pool must keep it
	}
	// Every frame dirty: the pool must overflow rather than steal.
	c, err := p.get(frameKey{"T", 9}, 64, load)
	if err != nil {
		t.Fatal(err)
	}
	p.unpin(c, false, 0)
	_, _, evicts, overflow := p.stats()
	if evicts != 0 {
		t.Fatalf("a dirty page was evicted (evicts=%d)", evicts)
	}
	if overflow != 1 {
		t.Fatalf("overflow = %d, want 1", overflow)
	}
	if len(p.dirtyFrames()) != 4 {
		t.Fatalf("dirtyFrames = %d, want 4", len(p.dirtyFrames()))
	}
	p.clean(first)
	if len(p.dirtyFrames()) != 3 {
		t.Fatal("clean() did not clear the dirty bit")
	}
}

func TestPoolLoadErrorNotCached(t *testing.T) {
	p := newPool(2)
	boom := errors.New("boom")
	if _, err := p.get(frameKey{"T", 0}, 64, func([]byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("want load error, got %v", err)
	}
	loaded := false
	fr, err := p.get(frameKey{"T", 0}, 64, func(buf []byte) error { loaded = true; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !loaded {
		t.Fatal("failed load was cached; second get did not reload")
	}
	p.unpin(fr, false, 0)
}

// ---------------------------------------------------------------------
// Store-level crash recovery (MemFS)

// testStore opens a store over fs with small pages so multi-page tables
// are cheap.
func testStore(t *testing.T, fs FS) *Store {
	t.Helper()
	s, err := Open("data", fs, Options{PageSize: 256, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func rowRec(t *testing.T, id int64, tag string) []byte {
	t.Helper()
	rec, err := encodeRow(nil, datum.Row{datum.NewInt(id), datum.NewString(tag)})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// insertCommitted inserts ids in one committed statement group.
func insertCommitted(t *testing.T, s *Store, tf *tableFile, ids ...int64) {
	t.Helper()
	if err := s.BeginStmt(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if _, err := s.insertRecord(tf, rowRec(t, id, fmt.Sprintf("tag-%d", id))); err != nil {
			s.AbortStmt()
			t.Fatal(err)
		}
	}
	if err := s.CommitStmt(); err != nil {
		t.Fatal(err)
	}
}

// tableIDs scans every live record of tf and returns the first column.
func tableIDs(t *testing.T, s *Store, tf *tableFile) []int64 {
	t.Helper()
	var ids []int64
	tf.mu.RLock()
	pages := tf.pages
	tf.mu.RUnlock()
	for p := int64(0); p < pages; p++ {
		fr, err := s.pin(tf, uint32(p))
		if err != nil {
			t.Fatal(err)
		}
		pg := newPage(fr.buf)
		for slot := 0; slot < pg.slotCount(); slot++ {
			rec := pg.record(slot)
			if rec == nil {
				continue
			}
			row, err := decodeRow(rec, 2)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, row[0].Int())
		}
		s.pool.unpin(fr, false, 0)
	}
	return ids
}

// reopen simulates the post-crash open: Crash() drops unsynced bytes,
// then the directory is reopened and recovered with the table attached.
func reopen(t *testing.T, fs *MemFS) (*Store, *tableFile) {
	t.Helper()
	fs.Crash()
	s := testStore(t, fs)
	tf, err := s.createTable("T", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(func(string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	return s, tf
}

func TestStoreCommittedSurvivesCrashUncommittedVanishes(t *testing.T) {
	fs := NewMemFS()
	s := testStore(t, fs)
	tf, err := s.createTable("T", 2)
	if err != nil {
		t.Fatal(err)
	}
	insertCommitted(t, s, tf, 1, 2, 3)

	// An uncommitted group: appended to the WAL but never committed, and
	// the process dies before AbortStmt.
	if err := s.BeginStmt(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.insertRecord(tf, rowRec(t, 99, "ghost")); err != nil {
		t.Fatal(err)
	}
	// no CommitStmt — crash now
	s2, tf2 := reopen(t, fs)
	ids := tableIDs(t, s2, tf2)
	if fmt.Sprint(ids) != "[1 2 3]" {
		t.Fatalf("recovered ids %v, want [1 2 3]", ids)
	}
	if tf2.rows != 3 {
		t.Fatalf("recovered rows = %d, want 3", tf2.rows)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRecoveryIdempotentAcrossRepeatedCrashes(t *testing.T) {
	fs := NewMemFS()
	s := testStore(t, fs)
	tf, err := s.createTable("T", 2)
	if err != nil {
		t.Fatal(err)
	}
	insertCommitted(t, s, tf, 1, 2)
	// Crash, recover, crash again without writing, recover again: same
	// state both times (replay must be idempotent).
	s2, tf2 := reopen(t, fs)
	if got := fmt.Sprint(tableIDs(t, s2, tf2)); got != "[1 2]" {
		t.Fatalf("first recovery: %v", got)
	}
	s3, tf3 := reopen(t, fs)
	if got := fmt.Sprint(tableIDs(t, s3, tf3)); got != "[1 2]" {
		t.Fatalf("second recovery: %v", got)
	}
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCheckpointThenCrashReplaysNothing(t *testing.T) {
	fs := NewMemFS()
	s := testStore(t, fs)
	tf, err := s.createTable("T", 2)
	if err != nil {
		t.Fatal(err)
	}
	insertCommitted(t, s, tf, 1, 2, 3, 4)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint mutations, committed: survive via WAL replay on
	// top of checkpointed pages.
	if err := s.BeginStmt(); err != nil {
		t.Fatal(err)
	}
	if err := s.deleteRecord(tf, storage.RID{Page: 0, Slot: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.insertRecord(tf, rowRec(t, 5, "five")); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitStmt(); err != nil {
		t.Fatal(err)
	}
	s2, tf2 := reopen(t, fs)
	got := map[int64]bool{}
	for _, id := range tableIDs(t, s2, tf2) {
		got[id] = true
	}
	if got[1] || !got[2] || !got[3] || !got[4] || !got[5] {
		t.Fatalf("recovered ids %v, want {2,3,4,5}", got)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreUpdateAndTruncateReplay(t *testing.T) {
	fs := NewMemFS()
	s := testStore(t, fs)
	tf, err := s.createTable("T", 2)
	if err != nil {
		t.Fatal(err)
	}
	insertCommitted(t, s, tf, 1, 2)
	if err := s.BeginStmt(); err != nil {
		t.Fatal(err)
	}
	if err := s.updateRecord(tf, storage.RID{Page: 0, Slot: 0}, rowRec(t, 10, "updated")); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitStmt(); err != nil {
		t.Fatal(err)
	}
	s2, tf2 := reopen(t, fs)
	got := map[int64]bool{}
	for _, id := range tableIDs(t, s2, tf2) {
		got[id] = true
	}
	if !got[10] || !got[2] || got[1] {
		t.Fatalf("after update replay: %v, want {10,2}", got)
	}

	// Truncate, commit, crash: recovery must come back empty even though
	// older inserts precede the truncate record in the log.
	if err := s2.BeginStmt(); err != nil {
		t.Fatal(err)
	}
	if err := s2.truncateTable(tf2); err != nil {
		t.Fatal(err)
	}
	if err := s2.CommitStmt(); err != nil {
		t.Fatal(err)
	}
	s3, tf3 := reopen(t, fs)
	if ids := tableIDs(t, s3, tf3); len(ids) != 0 {
		t.Fatalf("after truncate replay: %v, want empty", ids)
	}
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreTornPageRepairedByFPI(t *testing.T) {
	fs := NewMemFS()
	s := testStore(t, fs)
	tf, err := s.createTable("T", 2)
	if err != nil {
		t.Fatal(err)
	}
	insertCommitted(t, s, tf, 1, 2, 3)

	// Arm a torn crash at the first checkpoint page write: half the page
	// image becomes durable, then the process dies. The checkpoint has
	// already logged and fsynced the FPI by then, so recovery must repair
	// the torn page from it.
	fi := storage.NewFaultInjector()
	fi.Add(&storage.Fault{Op: storage.FaultPageWrite, Crash: true, Torn: true})
	s.SetFaultInjector(fi)
	func() {
		defer func() {
			ce, ok := recover().(*storage.CrashError)
			if !ok {
				t.Fatalf("checkpoint did not crash with a CrashError")
			}
			if !ce.Torn {
				t.Fatal("crash error lost the Torn flag")
			}
		}()
		_ = s.Checkpoint()
		t.Fatal("checkpoint returned despite armed crash fault")
	}()
	if !s.Crashed() {
		t.Fatal("store not poisoned after crash")
	}
	if err := s.BeginStmt(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("BeginStmt on crashed store: %v, want ErrCrashed", err)
	}

	s2, tf2 := reopen(t, fs)
	if got := fmt.Sprint(tableIDs(t, s2, tf2)); got != "[1 2 3]" {
		t.Fatalf("after torn-page repair: %v, want [1 2 3]", got)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCrashAtEveryWALAppend(t *testing.T) {
	// Exhaustive crash schedule at the store level: for k = 0, 1, 2, ...
	// arm a crash at the k-th WAL append, run three committed groups, and
	// verify the recovered table is exactly the committed prefix.
	for k := int64(0); ; k++ {
		fs := NewMemFS()
		s := testStore(t, fs)
		tf, err := s.createTable("T", 2)
		if err != nil {
			t.Fatal(err)
		}
		fi := storage.NewFaultInjector()
		fi.Add(&storage.Fault{Op: storage.FaultWALAppend, After: k, Crash: true})
		s.SetFaultInjector(fi)

		acked := 0
		crashed := false
		func() {
			defer func() {
				if p := recover(); p != nil {
					if _, ok := p.(*storage.CrashError); !ok {
						panic(p)
					}
					crashed = true
				}
			}()
			for g := 0; g < 3; g++ {
				if err := s.BeginStmt(); err != nil {
					t.Fatal(err)
				}
				if _, err := s.insertRecord(tf, rowRec(t, int64(g), "g")); err != nil {
					t.Fatal(err)
				}
				if err := s.CommitStmt(); err != nil {
					t.Fatal(err)
				}
				acked++
			}
		}()
		s2, tf2 := reopen(t, fs)
		ids := tableIDs(t, s2, tf2)
		// Every acked group must be durable; at most the in-flight group
		// may additionally have survived (commit record written but the
		// crash hit before the ack).
		if len(ids) < acked || len(ids) > acked+1 {
			t.Fatalf("k=%d: recovered %d rows, acked %d", k, len(ids), acked)
		}
		for i, id := range ids {
			if id != int64(i) {
				t.Fatalf("k=%d: recovered ids %v", k, ids)
			}
		}
		if !crashed {
			// Fault never fired: the schedule is exhausted.
			if acked != 3 {
				t.Fatalf("clean run acked %d groups, want 3", acked)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			return
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreDropTableDataRemovesFile(t *testing.T) {
	fs := NewMemFS()
	s := testStore(t, fs)
	if _, err := s.createTable("T", 2); err != nil {
		t.Fatal(err)
	}
	tf := s.table("T")
	insertCommitted(t, s, tf, 1)
	if err := s.DropTableData("T"); err != nil {
		t.Fatal(err)
	}
	if s.table("T") != nil {
		t.Fatal("dropped table still registered")
	}
	for _, name := range fs.Files() {
		if name == "data/t.tbl" {
			t.Fatal("dropped table's page file still exists")
		}
	}
}
