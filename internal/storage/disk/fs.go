// Package disk implements the durable storage manager of the
// reproduction: a page-based heap file per table (fixed-size slotted
// pages with per-page checksums and a free-space map), a bounded buffer
// pool with pin/unpin and clock eviction, and a write-ahead log of
// physiological redo records with group fsync, redo-on-open recovery
// and quiesced checkpointing. It registers through the same
// storage.Registry extension point as the in-memory managers — the
// paper's [LIND87] attachment architecture — so the engine above needs
// no knowledge of which manager holds a table.
//
// See DESIGN.md, "Durability", for the on-disk formats and the recovery
// protocol.
package disk

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS abstracts the filesystem the store writes through. Production uses
// OSFS; crash-recovery tests use a MemFS whose unsynced writes are
// dropped on a simulated crash, so "fsync happened" and "write
// happened" are genuinely different events under test.
type FS interface {
	// OpenFile opens name, creating it when absent (never truncating).
	OpenFile(name string) (File, error)
	// Remove deletes a file; removing a missing file is an error.
	Remove(name string) error
	// Rename atomically replaces newname with oldname's file.
	Rename(oldname, newname string) error
	// Stat reports a file's size, or an error satisfying
	// errors.Is(err, fs.ErrNotExist) when absent.
	Stat(name string) (int64, error)
	// MkdirAll ensures a directory exists.
	MkdirAll(dir string) error
}

// File is the per-file surface the store needs: positional I/O, fsync,
// truncate. Append offsets are tracked by the caller.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Sync forces written data to durable storage.
	Sync() error
	// Truncate resizes the file.
	Truncate(size int64) error
	// Close releases the handle.
	Close() error
}

// TornWriter is the optional FS capability the torn-page fault uses:
// durably write a partial page image, simulating the kernel flushing
// half of an in-flight page write before a crash. MemFS implements it;
// OSFS has no need to.
type TornWriter interface {
	SyncPartial(name string, off int64, p []byte)
}

// ---------------------------------------------------------------------
// Real filesystem

// OSFS is the production FS, backed by the os package.
type OSFS struct{}

type osFile struct{ f *os.File }

// OpenFile implements FS.
func (OSFS) OpenFile(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &osFile{f: f}, nil
}

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Rename implements FS. The rename is followed by a best-effort fsync
// of the containing directory so the replacement itself is durable.
func (OSFS) Rename(oldname, newname string) error {
	if err := os.Rename(oldname, newname); err != nil {
		return err
	}
	if d, err := os.Open(filepath.Dir(newname)); err == nil {
		serr := d.Sync()
		cerr := d.Close()
		if serr != nil {
			return serr
		}
		return cerr
	}
	return nil
}

// Stat implements FS.
func (OSFS) Stat(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (f *osFile) ReadAt(p []byte, off int64) (int, error)  { return f.f.ReadAt(p, off) }
func (f *osFile) WriteAt(p []byte, off int64) (int, error) { return f.f.WriteAt(p, off) }
func (f *osFile) Sync() error                              { return f.f.Sync() }
func (f *osFile) Truncate(size int64) error                { return f.f.Truncate(size) }
func (f *osFile) Close() error                             { return f.f.Close() }

// ---------------------------------------------------------------------
// Crash-simulating in-memory filesystem

// MemFS is an in-memory FS with crash semantics: every write lands in a
// volatile buffer that becomes durable only on Sync. Crash discards all
// unsynced data, modeling a process kill plus lost page-cache
// writeback. Metadata operations (create, remove, rename) are treated
// as immediately durable — the store orders them after content fsyncs,
// which is the property under test.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memData
}

type memData struct {
	data   []byte // current (volatile) content
	synced []byte // content as of the last Sync
}

// NewMemFS returns an empty crash-simulating filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memData{}}
}

// Crash drops every unsynced write, reverting each file to its last
// fsynced image. Open handles keep working (the test reopens the store
// afterwards; a crashed store never touches the FS again).
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.data = append([]byte(nil), f.synced...)
	}
}

// SyncPartial durably writes a prefix of one write — the torn-page
// case: the kernel flushed half a page on its own before the crash. The
// bytes land in both the volatile and the synced image.
func (m *MemFS) SyncPartial(name string, off int64, p []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.file(name)
	f.data = writeAt(f.data, off, p)
	f.synced = writeAt(f.synced, off, p)
}

// Files lists the filesystem's paths, sorted; for test assertions.
func (m *MemFS) Files() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for n := range m.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (m *MemFS) file(name string) *memData {
	f, ok := m.files[name]
	if !ok {
		f = &memData{}
		m.files[name] = f
	}
	return f
}

// OpenFile implements FS.
func (m *MemFS) OpenFile(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return &memFile{fs: m, d: m.file(name), name: name}, nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Stat implements FS.
func (m *MemFS) Stat(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return 0, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	return int64(len(f.data)), nil
}

// MkdirAll implements FS (directories are implicit in a flat map).
func (m *MemFS) MkdirAll(string) error { return nil }

type memFile struct {
	fs   *MemFS
	d    *memData
	name string
}

func writeAt(dst []byte, off int64, p []byte) []byte {
	end := off + int64(len(p))
	for int64(len(dst)) < end {
		dst = append(dst, 0)
	}
	copy(dst[off:end], p)
	return dst
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off >= int64(len(f.d.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("memfs: negative offset %d", off)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.d.data = writeAt(f.d.data, off, p)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.d.synced = append(f.d.synced[:0], f.d.data...)
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	for int64(len(f.d.data)) < size {
		f.d.data = append(f.d.data, 0)
	}
	f.d.data = f.d.data[:size]
	return nil
}

func (f *memFile) Close() error { return nil }
