package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Write-ahead log format. The file opens with an 8-byte magic, then a
// sequence of framed records:
//
//	u32 payloadLen | u32 crc32(payload) | payload
//
// Each payload starts with u64 lsn, u8 kind, then kind-specific fields
// (strings are u16 length + bytes). Records are physiological redo:
// they name a table, page and slot, so replay is idempotent under the
// pageLSN check and independent of in-page free-space bookkeeping.
//
// There are no begin or abort records. A statement's changes become
// replayable only when its commit record is on disk; recovery replays
// exactly the record groups whose commit was found, in LSN order, and
// everything else — aborted statements, the in-flight tail — is
// naturally dropped.
//
// Multi-statement transactions add one level of framing on top: a
// statement group may carry a transaction tag (txnID on its commit
// record). Tagged groups replay only when the transaction's own commit
// record (walTxnCommit) is also on disk, so a crash mid-transaction
// drops every statement of the transaction even though their statement
// commits were logged. Untagged groups (txnID 0) are the standalone
// auto-commit case and replay exactly as before.
//
// A torn tail (short frame, bad length, or CRC mismatch) ends replay at
// the last intact record, which is exactly the no-steal/fsync-on-commit
// contract: anything after the torn point was never acknowledged.

var walMagic = []byte("SBWALv1\n")

const (
	walInsert    = 1 // stmtID, table, page, slot, record bytes
	walDelete    = 2 // stmtID, table, page, slot
	walUpdate    = 3 // stmtID, table, page, slot, record bytes
	walTruncate  = 4 // stmtID, table
	walDDL       = 5 // stmtID, sql text
	walCommit    = 6 // stmtID, txnID (0 = standalone statement)
	walFPI       = 7 // table, page, full page image (checkpoint-only; no stmt)
	walTxnCommit = 8 // txnID
)

// walRecord is one decoded log record.
type walRecord struct {
	lsn    uint64
	kind   byte
	stmtID uint64
	txnID  uint64 // transaction tag on walCommit/walTxnCommit; 0 = none
	table  string
	pageNo uint32
	slot   uint32
	data   []byte // record bytes (insert/update), page image (fpi), sql (ddl)
}

func (r *walRecord) encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, r.lsn)
	dst = append(dst, r.kind)
	switch r.kind {
	case walCommit:
		dst = binary.LittleEndian.AppendUint64(dst, r.stmtID)
		dst = binary.LittleEndian.AppendUint64(dst, r.txnID)
	case walTxnCommit:
		dst = binary.LittleEndian.AppendUint64(dst, r.txnID)
	case walTruncate:
		dst = binary.LittleEndian.AppendUint64(dst, r.stmtID)
		dst = appendWalString(dst, r.table)
	case walDDL:
		dst = binary.LittleEndian.AppendUint64(dst, r.stmtID)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.data)))
		dst = append(dst, r.data...)
	case walInsert, walUpdate, walDelete:
		dst = binary.LittleEndian.AppendUint64(dst, r.stmtID)
		dst = appendWalString(dst, r.table)
		dst = binary.LittleEndian.AppendUint32(dst, r.pageNo)
		dst = binary.LittleEndian.AppendUint32(dst, r.slot)
		if r.kind != walDelete {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.data)))
			dst = append(dst, r.data...)
		}
	case walFPI:
		dst = appendWalString(dst, r.table)
		dst = binary.LittleEndian.AppendUint32(dst, r.pageNo)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.data)))
		dst = append(dst, r.data...)
	default:
		panic(fmt.Sprintf("disk: encoding unknown wal kind %d", r.kind))
	}
	return dst
}

func appendWalString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

var errWalTruncated = errors.New("disk: truncated wal payload")

type walDecoder struct {
	buf []byte
	pos int
}

func (d *walDecoder) u8() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, errWalTruncated
	}
	v := d.buf[d.pos]
	d.pos++
	return v, nil
}

func (d *walDecoder) u16() (uint16, error) {
	if d.pos+2 > len(d.buf) {
		return 0, errWalTruncated
	}
	v := binary.LittleEndian.Uint16(d.buf[d.pos:])
	d.pos += 2
	return v, nil
}

func (d *walDecoder) u32() (uint32, error) {
	if d.pos+4 > len(d.buf) {
		return 0, errWalTruncated
	}
	v := binary.LittleEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *walDecoder) u64() (uint64, error) {
	if d.pos+8 > len(d.buf) {
		return 0, errWalTruncated
	}
	v := binary.LittleEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return v, nil
}

func (d *walDecoder) str() (string, error) {
	n, err := d.u16()
	if err != nil {
		return "", err
	}
	if d.pos+int(n) > len(d.buf) {
		return "", errWalTruncated
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *walDecoder) bytes() ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if d.pos+int(n) > len(d.buf) {
		return nil, errWalTruncated
	}
	b := append([]byte(nil), d.buf[d.pos:d.pos+int(n)]...)
	d.pos += int(n)
	return b, nil
}

func decodeWalRecord(payload []byte) (*walRecord, error) {
	d := &walDecoder{buf: payload}
	r := &walRecord{}
	var err error
	if r.lsn, err = d.u64(); err != nil {
		return nil, err
	}
	if r.kind, err = d.u8(); err != nil {
		return nil, err
	}
	switch r.kind {
	case walCommit:
		if r.stmtID, err = d.u64(); err == nil {
			r.txnID, err = d.u64()
		}
	case walTxnCommit:
		r.txnID, err = d.u64()
	case walTruncate:
		if r.stmtID, err = d.u64(); err == nil {
			r.table, err = d.str()
		}
	case walDDL:
		if r.stmtID, err = d.u64(); err == nil {
			r.data, err = d.bytes()
		}
	case walInsert, walUpdate, walDelete:
		if r.stmtID, err = d.u64(); err != nil {
			break
		}
		if r.table, err = d.str(); err != nil {
			break
		}
		if r.pageNo, err = d.u32(); err != nil {
			break
		}
		if r.slot, err = d.u32(); err != nil {
			break
		}
		if r.kind != walDelete {
			r.data, err = d.bytes()
		}
	case walFPI:
		if r.table, err = d.str(); err != nil {
			break
		}
		if r.pageNo, err = d.u32(); err != nil {
			break
		}
		r.data, err = d.bytes()
	default:
		return nil, fmt.Errorf("disk: unknown wal record kind %d", r.kind)
	}
	if err != nil {
		return nil, err
	}
	if d.pos != len(payload) {
		return nil, fmt.Errorf("disk: %d trailing bytes in wal payload", len(payload)-d.pos)
	}
	return r, nil
}

// walWriter appends framed records to the log file and tracks which LSN
// prefix has been fsynced, so commits that lost the group-fsync race
// can skip their own Sync.
type walWriter struct {
	f         File
	off       int64  // append position
	nextLSN   uint64 // LSN the next record receives
	syncedLSN uint64 // highest LSN known durable

	// I/O accounting, reported through Store.Stats.
	bytes  int64
	syncs  int64
	frames int64
}

// openWalWriter positions a writer at the end of the intact record
// prefix of f (scanned by walScan); appends after a torn tail overwrite
// the garbage.
func openWalWriter(f File, intactEnd int64, lastLSN uint64) *walWriter {
	return &walWriter{f: f, off: intactEnd, nextLSN: lastLSN + 1, syncedLSN: lastLSN}
}

func newWalFile(f File) (*walWriter, error) {
	if _, err := f.WriteAt(walMagic, 0); err != nil {
		return nil, err
	}
	return &walWriter{f: f, off: int64(len(walMagic)), nextLSN: 1}, nil
}

// append assigns the next LSN, frames and writes the record (no fsync),
// and returns the assigned LSN.
func (w *walWriter) append(r *walRecord) (uint64, error) {
	r.lsn = w.nextLSN
	payload := r.encode(nil)
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if _, err := w.f.WriteAt(frame, w.off); err != nil {
		return 0, fmt.Errorf("disk: wal append: %w", err)
	}
	w.off += int64(len(frame))
	w.bytes += int64(len(frame))
	w.frames++
	w.nextLSN++
	return r.lsn, nil
}

// sync makes every appended record durable. The syncedLSN check is the
// group-commit short-circuit: a caller whose records were already
// covered by another caller's fsync returns without touching the disk.
func (w *walWriter) sync(upTo uint64) error {
	if w.syncedLSN >= upTo {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("disk: wal fsync: %w", err)
	}
	w.syncedLSN = w.nextLSN - 1
	w.syncs++
	return nil
}

// walScan reads the intact record prefix of a WAL file, returning the
// records, the byte offset just past the last intact frame, and the
// last LSN seen. A missing or short magic means an empty/new log. Any
// framing damage — short header, absurd length, CRC mismatch, short or
// undecodable payload — terminates the scan without error: that is the
// torn tail.
func walScan(f File, size int64) (recs []*walRecord, intactEnd int64, lastLSN uint64, err error) {
	magic := make([]byte, len(walMagic))
	if _, rerr := f.ReadAt(magic, 0); rerr != nil || string(magic) != string(walMagic) {
		return nil, 0, 0, nil
	}
	pos := int64(len(walMagic))
	for {
		var hdr [8]byte
		if _, rerr := f.ReadAt(hdr[:], pos); rerr != nil {
			break
		}
		payloadLen := binary.LittleEndian.Uint32(hdr[:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		if payloadLen == 0 || int64(payloadLen) > size-pos-8 {
			break
		}
		payload := make([]byte, payloadLen)
		if n, rerr := f.ReadAt(payload, pos+8); n != len(payload) {
			_ = rerr
			break
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			break
		}
		rec, derr := decodeWalRecord(payload)
		if derr != nil {
			break
		}
		recs = append(recs, rec)
		pos += 8 + int64(payloadLen)
		lastLSN = rec.lsn
	}
	return recs, pos, lastLSN, nil
}
