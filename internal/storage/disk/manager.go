package disk

import (
	"fmt"

	"repro/internal/datum"
	"repro/internal/storage"
)

// ManagerName is the registry name of the durable storage manager:
// CREATE TABLE ... USING DISK.
const ManagerName = "DISK"

// Manager adapts a Store to the storage.StorageManager extension point,
// so durable tables register through the same [LIND87] attachment
// architecture as the in-memory managers.
type Manager struct {
	s *Store
}

// Manager returns the store's storage-manager face.
func (s *Store) Manager() *Manager { return &Manager{s: s} }

// Name implements storage.StorageManager.
func (m *Manager) Name() string { return ManagerName }

// Create implements storage.StorageManager: it binds the table to its
// page file (attaching to existing pages when the store is recovering a
// snapshot, truncating otherwise).
func (m *Manager) Create(tableName string, numCols int, stats *storage.IOStats) (storage.Relation, error) {
	tf, err := m.s.createTable(tableName, numCols)
	if err != nil {
		return nil, err
	}
	return &relation{s: m.s, tf: tf, stats: stats}, nil
}

// relation is the durable storage.Relation: every mutation is WAL-
// logged through the store, every page touch goes through the buffer
// pool.
type relation struct {
	s     *Store
	tf    *tableFile
	stats *storage.IOStats
}

var (
	_ storage.Relation         = (*relation)(nil)
	_ storage.PageRangeScanner = (*relation)(nil)
	_ storage.Restorer         = (*relation)(nil)
)

// Insert implements storage.Relation.
func (r *relation) Insert(row datum.Row) (storage.RID, error) {
	rec, err := encodeRow(nil, row)
	if err != nil {
		return storage.RID{}, fmt.Errorf("disk: %s: %w", r.tf.name, err)
	}
	rid, err := r.s.insertRecord(r.tf, rec)
	if err != nil {
		return storage.RID{}, err
	}
	r.stats.WritePage()
	return rid, nil
}

// Delete implements storage.Relation.
func (r *relation) Delete(rid storage.RID) error {
	if err := r.s.deleteRecord(r.tf, rid); err != nil {
		return err
	}
	r.stats.WritePage()
	return nil
}

// Update implements storage.Relation.
func (r *relation) Update(rid storage.RID, row datum.Row) error {
	rec, err := encodeRow(nil, row)
	if err != nil {
		return fmt.Errorf("disk: %s: %w", r.tf.name, err)
	}
	if err := r.s.updateRecord(r.tf, rid, rec); err != nil {
		return err
	}
	r.stats.WritePage()
	return nil
}

// Restore implements storage.Restorer: undo-log put-back of a deleted
// record at its original RID.
func (r *relation) Restore(rid storage.RID, row datum.Row) error {
	rec, err := encodeRow(nil, row)
	if err != nil {
		return fmt.Errorf("disk: %s: %w", r.tf.name, err)
	}
	if err := r.s.restoreRecord(r.tf, rid, rec); err != nil {
		return err
	}
	r.stats.WritePage()
	return nil
}

// Fetch implements storage.Relation.
func (r *relation) Fetch(rid storage.RID) (datum.Row, bool) {
	rec, ok := r.s.fetchRecord(r.tf, rid)
	if !ok {
		return nil, false
	}
	r.stats.ReadPage()
	row, err := decodeRow(rec, r.tf.numCols)
	if err != nil {
		return nil, false
	}
	return row, true
}

// Scan implements storage.Relation. The page range is fixed at open;
// records inserted behind the cursor are not revisited, matching the
// in-memory heap's visibility.
func (r *relation) Scan() storage.RowIterator {
	return r.ScanPages(0, r.PageCount())
}

// ScanPages implements storage.PageRangeScanner, the morsel-parallelism
// hook: scan only pages [lo, hi).
func (r *relation) ScanPages(lo, hi int64) storage.RowIterator {
	if lo < 0 {
		lo = 0
	}
	return &diskIterator{r: r, page: lo, end: hi}
}

// RowCount implements storage.Relation.
func (r *relation) RowCount() int64 {
	r.tf.mu.RLock()
	defer r.tf.mu.RUnlock()
	return r.tf.rows
}

// PageCount implements storage.Relation.
func (r *relation) PageCount() int64 {
	r.tf.mu.RLock()
	defer r.tf.mu.RUnlock()
	return r.tf.pages
}

// Truncate implements storage.Relation. The removal is logged like any
// mutation; page files shrink at the next checkpoint.
func (r *relation) Truncate() {
	// The interface is infallible (the in-memory managers cannot fail);
	// a WAL error here aborts the enclosing statement group instead, and
	// a crash fault propagates by panic.
	_ = r.s.truncateTable(r.tf)
}

// diskIterator streams a page range, decoding one pinned page at a time
// into a row buffer. One simulated page read is counted per page
// visited, the same accounting as the in-memory heap.
type diskIterator struct {
	r    *relation
	page int64
	end  int64

	rows []datum.Row
	rids []storage.RID
	idx  int
	err  error
}

var _ storage.BatchScanner = (*diskIterator)(nil)

// fill decodes pages until one yields records or the range ends,
// leaving the batch in rows/rids. Reports whether anything was
// produced.
func (it *diskIterator) fill() bool {
	it.rows = it.rows[:0]
	it.rids = it.rids[:0]
	it.idx = 0
	if it.err != nil {
		return false
	}
	tf := it.r.tf
	for it.page < it.end {
		p := it.page
		it.page++
		tf.mu.RLock()
		if p >= tf.pages {
			tf.mu.RUnlock()
			continue
		}
		fr, err := it.r.s.pin(tf, uint32(p))
		if err != nil {
			tf.mu.RUnlock()
			it.err = err
			return false
		}
		pg := newPage(fr.buf)
		it.r.stats.ReadPage()
		for slot := 0; slot < pg.slotCount(); slot++ {
			rec := pg.record(slot)
			if rec == nil {
				continue
			}
			row, derr := decodeRow(rec, tf.numCols)
			if derr != nil {
				it.err = fmt.Errorf("disk: %s page %d slot %d: %w", tf.name, p, slot, derr)
				break
			}
			it.rows = append(it.rows, row)
			it.rids = append(it.rids, storage.RID{Page: int32(p), Slot: int32(slot)})
		}
		it.r.s.pool.unpin(fr, false, 0)
		tf.mu.RUnlock()
		if it.err != nil {
			return false
		}
		if len(it.rows) > 0 {
			return true
		}
	}
	return false
}

// Next implements storage.RowIterator.
func (it *diskIterator) Next() (datum.Row, storage.RID, bool) {
	for it.idx >= len(it.rows) {
		if !it.fill() {
			return nil, storage.RID{}, false
		}
	}
	i := it.idx
	it.idx++
	return it.rows[i], it.rids[i], true
}

// NextRows implements storage.BatchScanner.
func (it *diskIterator) NextRows(dst []datum.Row) int {
	n := 0
	for n < len(dst) {
		if it.idx >= len(it.rows) {
			if !it.fill() {
				break
			}
		}
		take := copy(dst[n:], it.rows[it.idx:])
		it.idx += take
		n += take
	}
	return n
}

// Err reports a deferred scan error (storage.IterErr contract).
func (it *diskIterator) Err() error { return it.err }

// Close implements storage.RowIterator.
func (it *diskIterator) Close() {}
