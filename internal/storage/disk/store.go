package disk

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

// Store is one durable data directory: a WAL, a catalog snapshot, and
// one page file per table, served through a bounded buffer pool.
//
// Protocol summary (details in DESIGN.md, "Durability"):
//
//   - No-steal, redo-only. Dirty pages are written back only at
//     checkpoints; the WAL carries physiological redo records grouped
//     by statement, and a statement's group replays only if its commit
//     record reached the disk.
//   - Statements bracket their mutations with BeginStmt/CommitStmt/
//     AbortStmt. Mutations outside a bracket auto-commit.
//   - A checkpoint (triggered by commit count, WAL volume, or dirty-
//     page pressure, always at a commit boundary) logs full-page images
//     of every dirty frame, fsyncs the WAL, writes the pages back,
//     fsyncs the data files, snapshots the catalog, and rotates the
//     WAL.
//
// Lock order: Store.writeMu → Store.mu → tableFile.mu → pool.mu.
type Store struct {
	fs   FS
	dir  string
	opts Options

	pool *pool

	// writeMu serializes writing statements (the statement bracket) and
	// checkpoints. Readers never take it.
	writeMu sync.Mutex

	// mu guards the WAL writer, the table map, the open statement, the
	// open-transaction set and the checkpoint counters.
	mu      sync.Mutex
	wal     *walWriter
	walFile File
	tables  map[string]*tableFile
	curStmt *stmt
	nextID  uint64
	fi      *storage.FaultInjector
	// openTxns tracks explicit transactions with tagged statement groups
	// in this WAL that have not yet committed or aborted. While any is
	// open, checkpoints are deferred (ckptPending): the buffer pool holds
	// their uncommitted page state, and a checkpoint would both persist
	// it unfiltered and rotate their records away.
	openTxns    map[uint64]bool
	ckptPending bool

	snapshotFn func() ([]byte, error)

	// Carried from Open until Recover consumes them.
	scanned    []*walRecord
	snapSchema []byte
	snapLSN    uint64

	attachMode bool // Create attaches to existing files (pre-recovery)
	recovering bool
	crashed    atomic.Bool

	commitsSinceCkpt  int
	walBytesSinceCkpt int64

	// Cumulative counters (survive WAL rotation), reported via Stats.
	statWALBytes   int64
	statWALRecords int64
	statWALSyncs   int64
	statCkpts      int64

	// waitProf, when set, receives WAL and buffer-pool wait events
	// (DB-wide, always on). stmtWaits additionally attributes WAL waits
	// to the statement currently holding the write bracket — writeMu
	// serializes writers, so one pointer is enough; reads of it race
	// only with the engine swapping statements, hence the atomic.
	waitProf  *obs.WaitProfile
	stmtWaits atomic.Pointer[obs.WaitSet]
}

// Options configures a Store; zero values select defaults.
type Options struct {
	// PageSize is the page size in bytes (default DefaultPageSize).
	PageSize int
	// PoolPages is the buffer pool budget in frames (default 64).
	PoolPages int
	// CheckpointEvery checkpoints after N committed statements
	// (default 64).
	CheckpointEvery int
	// CheckpointWALBytes checkpoints once the WAL grows past this many
	// bytes since the last checkpoint (default 1 MiB).
	CheckpointWALBytes int64
}

func (o *Options) defaults() {
	if o.PageSize <= 0 {
		o.PageSize = DefaultPageSize
	}
	if o.PoolPages <= 0 {
		o.PoolPages = 64
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 64
	}
	if o.CheckpointWALBytes <= 0 {
		o.CheckpointWALBytes = 1 << 20
	}
}

// ErrCrashed is returned by every operation after an injected crash
// fault fired: the store is poisoned and the directory must be reopened
// to recover.
var ErrCrashed = errors.New("disk: store has crashed; reopen the data directory to recover")

// stmt is one open statement group. txnID tags the group with its
// owning explicit transaction; 0 means standalone (auto-commit).
type stmt struct {
	id    uint64
	txnID uint64
	wrote bool
}

// tableFile is the in-memory state of one table's page file.
type tableFile struct {
	mu       sync.RWMutex
	name     string // canonical (upper-case) table name
	fileName string
	file     File
	numCols  int

	pages int64
	rows  int64
	// free is the free-space map: per page, the largest insertable
	// record. lastIns remembers the last page inserted into.
	free    []int
	lastIns int

	// truncLSN is the LSN of the last logical truncate: pages whose
	// pageLSN predates it read as empty. Physical file truncation
	// happens at the next checkpoint.
	truncLSN uint64

	// pendingRepair marks pages that failed their checksum during
	// recovery and await a full-page image from the WAL.
	pendingRepair map[uint32]bool
}

// snapshotFile is the JSON layout of catalog.json: the engine's schema
// blob plus the LSN horizon it reflects (DDL records at or below it are
// already folded in and must not replay).
type snapshotFile struct {
	LastLSN uint64          `json:"last_lsn"`
	Schema  json.RawMessage `json:"schema,omitempty"`
}

const (
	walFileName     = "wal.log"
	catalogFileName = "catalog.json"
)

func tableFileName(name string) string {
	return strings.ToLower(name) + ".tbl"
}

// Open opens or creates a data directory. The returned store is in
// attach mode: table creates bind to existing files without truncating
// them. The caller must recreate the snapshot schema (SnapshotSchema)
// and then call Recover before doing anything else.
func Open(dir string, fsys FS, opts Options) (*Store, error) {
	opts.defaults()
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("disk: create data dir: %w", err)
	}
	walPath := filepath.Join(dir, walFileName)
	size, err := fsys.Stat(walPath)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("disk: stat wal: %w", err)
	}
	f, err := fsys.OpenFile(walPath)
	if err != nil {
		return nil, fmt.Errorf("disk: open wal: %w", err)
	}
	recs, intactEnd, walLast, err := walScan(f, size)
	if err != nil {
		return nil, err
	}

	s := &Store{
		fs:         fsys,
		dir:        dir,
		opts:       opts,
		pool:       newPool(opts.PoolPages),
		walFile:    f,
		tables:     map[string]*tableFile{},
		scanned:    recs,
		attachMode: true,
	}
	if err := s.readSnapshotFile(); err != nil {
		return nil, err
	}

	if intactEnd == 0 {
		// Empty or unrecognizable log: start a fresh one. LSNs continue
		// past the snapshot horizon so they stay monotonic across WAL
		// rotations.
		w, err := newWalFile(f)
		if err != nil {
			return nil, err
		}
		w.nextLSN = s.snapLSN + 1
		w.syncedLSN = s.snapLSN
		s.wal = w
	} else {
		last := walLast
		if s.snapLSN > last {
			last = s.snapLSN
		}
		s.wal = openWalWriter(f, intactEnd, last)
	}
	return s, nil
}

func (s *Store) readSnapshotFile() (err error) {
	path := filepath.Join(s.dir, catalogFileName)
	size, err := s.fs.Stat(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("disk: stat catalog snapshot: %w", err)
	}
	f, err := s.fs.OpenFile(path)
	if err != nil {
		return fmt.Errorf("disk: open catalog snapshot: %w", err)
	}
	defer func() {
		err = errors.Join(err, f.Close())
	}()
	buf := make([]byte, size)
	if n, rerr := f.ReadAt(buf, 0); int64(n) != size {
		return fmt.Errorf("disk: read catalog snapshot: %v", rerr)
	}
	var snap snapshotFile
	if err := json.Unmarshal(buf, &snap); err != nil {
		return fmt.Errorf("disk: parse catalog snapshot: %w", err)
	}
	s.snapSchema = snap.Schema
	s.snapLSN = snap.LastLSN
	return nil
}

// SnapshotSchema returns the engine schema blob from the catalog
// snapshot read at Open, or nil for a fresh directory.
func (s *Store) SnapshotSchema() []byte { return s.snapSchema }

// SetSnapshot installs the callback that serializes the engine's
// catalog at checkpoint time.
func (s *Store) SetSnapshot(fn func() ([]byte, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapshotFn = fn
}

// SetFaultInjector wires (or, with nil, unwires) crash-point fault
// injection into the store's WAL and page-write boundaries.
func (s *Store) SetFaultInjector(fi *storage.FaultInjector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fi = fi
}

// Crashed reports whether an injected crash fault has poisoned the
// store.
func (s *Store) Crashed() bool { return s.crashed.Load() }

// Stats is a point-in-time snapshot of the store's I/O counters.
type Stats struct {
	PoolHits      int64
	PoolMisses    int64
	PoolEvictions int64
	PoolOverflow  int64
	WALRecords    int64
	WALBytes      int64
	WALSyncs      int64
	Checkpoints   int64
	Tables        int
}

// Stats returns current counters.
func (s *Store) Stats() Stats {
	h, m, e, o := s.pool.stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		PoolHits: h, PoolMisses: m, PoolEvictions: e, PoolOverflow: o,
		WALRecords:  s.statWALRecords,
		WALBytes:    s.statWALBytes,
		WALSyncs:    s.statWALSyncs,
		Checkpoints: s.statCkpts,
		Tables:      len(s.tables),
	}
}

// ---------------------------------------------------------------------
// Fault points

// checkFault is the crash boundary: a non-crash fault comes back as an
// error; a crash fault poisons the store and panics with the
// *storage.CrashError (the engine's panic barrier turns it into a
// QueryError, and the torture harness then simulates the machine
// dying).
func (s *Store) checkFault(table string, op storage.FaultOp) error {
	s.mu.Lock()
	fi := s.fi
	s.mu.Unlock()
	err := fi.CheckOp(table, op)
	var ce *storage.CrashError
	if errors.As(err, &ce) {
		s.crash(ce)
	}
	return err
}

// checkPageWrite is checkFault for the data-page write-back boundary,
// with the torn-page twist: before the simulated kill, half of the
// in-flight page image is made durable.
func (s *Store) checkPageWrite(tf *tableFile, pageNo uint32, img []byte) error {
	s.mu.Lock()
	fi := s.fi
	s.mu.Unlock()
	err := fi.CheckOp(tf.name, storage.FaultPageWrite)
	var ce *storage.CrashError
	if errors.As(err, &ce) {
		if ce.Torn {
			if tw, ok := s.fs.(TornWriter); ok {
				off := int64(pageNo) * int64(s.opts.PageSize)
				tw.SyncPartial(tf.fileName, off, img[:len(img)/2])
			}
		}
		s.crash(ce)
	}
	return err
}

func (s *Store) crash(ce *storage.CrashError) {
	s.crashed.Store(true)
	panic(ce)
}

// ---------------------------------------------------------------------
// Wait events

// SetWaitObs points WAL and buffer-pool instrumentation at a wait
// profile. Call once right after Open, before any concurrent use.
func (s *Store) SetWaitObs(p *obs.WaitProfile) {
	s.waitProf = p
	s.pool.waitProf = p
}

// SetStmtWaits attributes subsequent WAL waits to ws (pass nil to
// detach). The engine calls this inside the statement bracket, which
// writeMu serializes, so a single slot suffices.
func (s *Store) SetStmtWaits(ws *obs.WaitSet) {
	s.stmtWaits.Store(ws)
}

// recordWait charges one elapsed wait to the store-wide profile and to
// the statement currently holding the write bracket, if any.
func (s *Store) recordWait(e obs.WaitEvent, start time.Time) {
	if s.waitProf == nil {
		return
	}
	d := time.Since(start).Nanoseconds()
	s.waitProf.Record(e, d)
	s.stmtWaits.Load().Record(e, d)
}

// ---------------------------------------------------------------------
// WAL plumbing

// walAppend logs one record (no fsync) after clearing the WALAPPEND
// fault point. Caller must not hold s.mu.
//
// starburst:waits WAL_APPEND
func (s *Store) walAppend(table string, r *walRecord) (uint64, error) {
	if err := s.checkFault(table, storage.FaultWALAppend); err != nil {
		return 0, err
	}
	var start time.Time
	if s.waitProf != nil {
		start = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.recordWait(obs.WaitWALAppend, start)
	before := s.wal.bytes
	lsn, err := s.wal.append(r)
	if err != nil {
		return 0, err
	}
	d := s.wal.bytes - before
	s.statWALBytes += d
	s.walBytesSinceCkpt += d
	s.statWALRecords++
	return lsn, nil
}

// walSync makes every appended record durable, with the group-commit
// short-circuit. The WALSYNC fault point is checked both before and
// after the fsync: a crash in the window after the sync but before the
// acknowledgment is exactly the "committed but never reported" case the
// torture oracle must tolerate.
//
// starburst:waits WAL_SYNC
func (s *Store) walSync(table string) error {
	s.mu.Lock()
	upTo := s.wal.nextLSN - 1
	done := s.wal.syncedLSN >= upTo
	s.mu.Unlock()
	if done {
		return nil
	}
	if err := s.checkFault(table, storage.FaultWALSync); err != nil {
		return err
	}
	var start time.Time
	if s.waitProf != nil {
		start = time.Now()
	}
	s.mu.Lock()
	err := s.wal.sync(upTo)
	if err == nil {
		s.statWALSyncs++
	}
	s.mu.Unlock()
	s.recordWait(obs.WaitWALSync, start)
	if err != nil {
		return err
	}
	return s.checkFault(table, storage.FaultWALSync)
}

// ---------------------------------------------------------------------
// Statement bracket

// BeginStmt opens a standalone (auto-commit) statement group; every
// mutation until CommitStmt or AbortStmt joins it. Statements are
// serialized: a second BeginStmt blocks until the first resolves.
func (s *Store) BeginStmt() error { return s.BeginTxnStmt(0) }

// BeginTxnStmt opens a statement group tagged with an explicit
// transaction (txnID != 0): the group's records replay after a crash
// only if CommitTxn's record also reached the disk. txnID 0 is the
// standalone auto-commit case (BeginStmt).
func (s *Store) BeginTxnStmt(txnID int64) error {
	if s.crashed.Load() {
		return ErrCrashed
	}
	s.writeMu.Lock()
	if s.crashed.Load() {
		s.writeMu.Unlock()
		return ErrCrashed
	}
	s.mu.Lock()
	s.nextID++
	s.curStmt = &stmt{id: s.nextID, txnID: uint64(txnID)}
	if txnID != 0 {
		if s.openTxns == nil {
			s.openTxns = map[uint64]bool{}
		}
		s.openTxns[uint64(txnID)] = true
	}
	s.mu.Unlock()
	return nil
}

// CommitStmt logs the group's commit record; for a standalone group it
// fsyncs the WAL (the statement is durable exactly when CommitStmt
// returns nil) and may run a checkpoint afterwards. For a
// transaction-tagged group both are deferred to CommitTxn — one fsync
// covers the whole transaction. Always releases the statement bracket.
func (s *Store) CommitStmt() error {
	defer s.writeMu.Unlock()
	defer s.stmtWaits.Store(nil) // before the bracket opens to the next statement
	s.mu.Lock()
	st := s.curStmt
	s.curStmt = nil
	s.mu.Unlock()
	if st == nil {
		return errors.New("disk: CommitStmt without BeginStmt")
	}
	if s.crashed.Load() {
		return ErrCrashed
	}
	if !st.wrote {
		return nil
	}
	if _, err := s.walAppend("", &walRecord{kind: walCommit, stmtID: st.id, txnID: st.txnID}); err != nil {
		return err
	}
	if st.txnID != 0 {
		return nil
	}
	if err := s.walSync(""); err != nil {
		return err
	}
	s.mu.Lock()
	s.commitsSinceCkpt++
	need := s.commitsSinceCkpt >= s.opts.CheckpointEvery ||
		s.walBytesSinceCkpt >= s.opts.CheckpointWALBytes
	s.mu.Unlock()
	if !need && s.pool.dirtyCount() >= s.pool.capacity/2 {
		need = true
	}
	if need {
		return s.checkpointLocked()
	}
	return nil
}

// CommitTxn makes an explicit transaction durable: it appends the
// transaction-commit record and fsyncs the WAL, after which every
// tagged statement group of the transaction replays on recovery. The
// engine calls it from the commit hook, under the transaction
// manager's commit mutex, before the commit timestamp publishes. Runs
// any checkpoint that was deferred while the transaction was open.
//
// starburst:locks mgr.commitMu:write
func (s *Store) CommitTxn(txnID int64) error {
	if s.crashed.Load() {
		return ErrCrashed
	}
	if _, err := s.walAppend("", &walRecord{kind: walTxnCommit, txnID: uint64(txnID)}); err != nil {
		return err
	}
	if err := s.walSync(""); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.openTxns, uint64(txnID))
	s.commitsSinceCkpt++
	need := s.ckptPending ||
		s.commitsSinceCkpt >= s.opts.CheckpointEvery ||
		s.walBytesSinceCkpt >= s.opts.CheckpointWALBytes
	s.mu.Unlock()
	if !need && s.pool.dirtyCount() >= s.pool.capacity/2 {
		need = true
	}
	if need {
		return s.Checkpoint()
	}
	return nil
}

// AbortTxn releases an explicit transaction that ends without a commit
// record: its tagged groups stay in the WAL but never replay. Runs any
// checkpoint that was deferred while the transaction was open
// (best-effort; a failure resurfaces at the next commit).
func (s *Store) AbortTxn(txnID int64) {
	s.mu.Lock()
	delete(s.openTxns, uint64(txnID))
	pending := s.ckptPending && len(s.openTxns) == 0
	s.mu.Unlock()
	if pending && !s.crashed.Load() {
		_ = s.Checkpoint()
	}
}

// AbortStmt abandons the open statement group: nothing is logged, so
// the group's records never replay. Always releases the bracket.
func (s *Store) AbortStmt() {
	defer s.writeMu.Unlock()
	defer s.stmtWaits.Store(nil)
	s.mu.Lock()
	s.curStmt = nil
	s.mu.Unlock()
}

// LogDDL records the raw SQL of a DDL statement in the open group; on
// recovery the engine re-executes it.
func (s *Store) LogDDL(sqlText string) error {
	if s.crashed.Load() {
		return ErrCrashed
	}
	s.mu.Lock()
	st := s.curStmt
	s.mu.Unlock()
	if st == nil {
		return errors.New("disk: LogDDL outside a statement")
	}
	if _, err := s.walAppend("", &walRecord{kind: walDDL, stmtID: st.id, data: []byte(sqlText)}); err != nil {
		return err
	}
	st.wrote = true
	return nil
}

// runMutation executes fn inside the open statement group, or brackets
// it as a single-mutation auto-commit when none is open.
func (s *Store) runMutation(fn func(st *stmt) error) error {
	if s.crashed.Load() {
		return ErrCrashed
	}
	s.mu.Lock()
	st := s.curStmt
	s.mu.Unlock()
	if st != nil {
		return fn(st)
	}
	if err := s.BeginStmt(); err != nil {
		return err
	}
	s.mu.Lock()
	st = s.curStmt
	s.mu.Unlock()
	if err := fn(st); err != nil {
		s.AbortStmt()
		return err
	}
	return s.CommitStmt()
}

// ---------------------------------------------------------------------
// Table lifecycle

// createTable binds a table name to its page file. In attach mode
// (between Open and Recover) an existing file is adopted as-is for the
// snapshot's tables; otherwise the file is truncated — a fresh CREATE
// must not resurrect pages from an older incarnation.
func (s *Store) createTable(name string, numCols int) (*tableFile, error) {
	if s.crashed.Load() {
		return nil, ErrCrashed
	}
	key := strings.ToUpper(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if tf, ok := s.tables[key]; ok {
		// Recreate over a live binding: only DROP removes one, so this
		// is CREATE after an engine-side drop that skipped
		// DropTableData. Reset it.
		tf.mu.Lock()
		tf.pages, tf.rows, tf.free, tf.lastIns = 0, 0, nil, 0
		tf.numCols = numCols
		tf.mu.Unlock()
		s.pool.dropTable(key)
		if err := tf.file.Truncate(0); err != nil {
			return nil, fmt.Errorf("disk: reset table %s: %w", key, err)
		}
		return tf, nil
	}
	path := filepath.Join(s.dir, tableFileName(key))
	f, err := s.fs.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("disk: open table file %s: %w", path, err)
	}
	tf := &tableFile{
		name:          key,
		fileName:      path,
		file:          f,
		numCols:       numCols,
		pendingRepair: map[uint32]bool{},
	}
	if s.attachMode {
		size, err := s.fs.Stat(path)
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("disk: stat table file %s: %w", path, err)
		}
		ps := int64(s.opts.PageSize)
		tf.pages = (size + ps - 1) / ps // free map and row count rebuilt by recovery
	} else {
		s.pool.dropTable(key)
		if err := f.Truncate(0); err != nil {
			return nil, fmt.Errorf("disk: truncate table file %s: %w", path, err)
		}
	}
	s.tables[key] = tf
	return tf, nil
}

// DropTableData removes a table's binding and deletes its page file.
// The engine calls it after a DROP TABLE commits (and during replay of
// one).
func (s *Store) DropTableData(name string) error {
	key := strings.ToUpper(name)
	s.mu.Lock()
	tf := s.tables[key]
	delete(s.tables, key)
	s.mu.Unlock()
	if tf == nil {
		return nil
	}
	s.pool.dropTable(key)
	if err := tf.file.Close(); err != nil {
		return fmt.Errorf("disk: close %s: %w", tf.fileName, err)
	}
	if err := s.fs.Remove(tf.fileName); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("disk: remove %s: %w", tf.fileName, err)
	}
	return nil
}

func (s *Store) table(name string) *tableFile {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tables[strings.ToUpper(name)]
}

// ---------------------------------------------------------------------
// Page access

// pin returns the pinned frame for (tf, pageNo), reading the page from
// disk on a pool miss. Callers hold tf.mu (any mode).
func (s *Store) pin(tf *tableFile, pageNo uint32) (*frame, error) {
	return s.pool.get(frameKey{table: tf.name, pageNo: pageNo}, s.opts.PageSize, func(buf []byte) error {
		return s.loadPage(tf, pageNo, buf)
	})
}

// loadPage reads one page into buf, resolving the three kinds of
// "empty": never written (short or zero read), all-zero region, or
// logically truncated (pageLSN below truncLSN). A checksum failure is
// fatal in normal operation; during recovery it flags the page for
// repair by a WAL full-page image.
func (s *Store) loadPage(tf *tableFile, pageNo uint32, buf []byte) error {
	off := int64(pageNo) * int64(s.opts.PageSize)
	n, _ := tf.file.ReadAt(buf, off)
	if n == 0 {
		newPage(buf).init()
		return nil
	}
	for i := n; i < len(buf); i++ {
		buf[i] = 0
	}
	pg := newPage(buf)
	if pg.dataStart() == 0 {
		pg.init()
		return nil
	}
	if pg.lsn() < tf.truncLSN {
		pg.init()
		return nil
	}
	if !pg.verify() {
		if s.recovering {
			tf.pendingRepair[pageNo] = true
			pg.init()
			return nil
		}
		return fmt.Errorf("disk: table %s page %d failed checksum", tf.name, pageNo)
	}
	return nil
}

// ---------------------------------------------------------------------
// Mutations (called via the relation handles in manager.go)

func (s *Store) insertRecord(tf *tableFile, rec []byte) (storage.RID, error) {
	maxRec := s.opts.PageSize - pageHeaderSize - slotSize
	if len(rec) > maxRec {
		return storage.RID{}, fmt.Errorf("disk: record of %d bytes exceeds page capacity %d", len(rec), maxRec)
	}
	var rid storage.RID
	err := s.runMutation(func(st *stmt) error {
		tf.mu.Lock()
		defer tf.mu.Unlock()
		pageNo := tf.choosePage(len(rec))
		fr, err := s.pin(tf, uint32(pageNo))
		if err != nil {
			return err
		}
		pg := newPage(fr.buf)
		slot := pg.nextSlot()
		lsn, err := s.walAppend(tf.name, &walRecord{
			kind: walInsert, stmtID: st.id, table: tf.name,
			pageNo: uint32(pageNo), slot: uint32(slot), data: rec,
		})
		if err != nil {
			s.pool.unpin(fr, false, 0)
			return err
		}
		if ierr := pg.insertAt(slot, rec); ierr != nil {
			// The free map guaranteed the fit; failure here is an
			// invariant violation, and the record is already logged.
			s.pool.unpin(fr, false, 0)
			return fmt.Errorf("disk: free-space map out of sync on %s page %d: %w", tf.name, pageNo, ierr)
		}
		pg.setLSN(lsn)
		st.wrote = true
		tf.free[pageNo] = pg.insertCapacity()
		tf.lastIns = pageNo
		tf.rows++
		s.pool.unpin(fr, true, lsn)
		rid = storage.RID{Page: int32(pageNo), Slot: int32(slot)}
		return nil
	})
	return rid, err
}

// choosePage picks a page with room for a record of n bytes, growing
// the table when none has space. Caller holds tf.mu.
func (tf *tableFile) choosePage(n int) int {
	if tf.lastIns < len(tf.free) && tf.free[tf.lastIns] >= n {
		return tf.lastIns
	}
	for p, avail := range tf.free {
		if avail >= n {
			return p
		}
	}
	tf.free = append(tf.free, 0)
	tf.pages = int64(len(tf.free))
	return len(tf.free) - 1
}

func (s *Store) deleteRecord(tf *tableFile, rid storage.RID) error {
	return s.runMutation(func(st *stmt) error {
		tf.mu.Lock()
		defer tf.mu.Unlock()
		if rid.Page < 0 || int64(rid.Page) >= tf.pages {
			return fmt.Errorf("disk: %s: no record %s", tf.name, rid)
		}
		fr, err := s.pin(tf, uint32(rid.Page))
		if err != nil {
			return err
		}
		pg := newPage(fr.buf)
		if pg.record(int(rid.Slot)) == nil {
			s.pool.unpin(fr, false, 0)
			return fmt.Errorf("disk: %s: no record %s", tf.name, rid)
		}
		lsn, err := s.walAppend(tf.name, &walRecord{
			kind: walDelete, stmtID: st.id, table: tf.name,
			pageNo: uint32(rid.Page), slot: uint32(rid.Slot),
		})
		if err != nil {
			s.pool.unpin(fr, false, 0)
			return err
		}
		pg.delete(int(rid.Slot))
		pg.setLSN(lsn)
		st.wrote = true
		tf.free[rid.Page] = pg.insertCapacity()
		tf.rows--
		s.pool.unpin(fr, true, lsn)
		return nil
	})
}

func (s *Store) updateRecord(tf *tableFile, rid storage.RID, rec []byte) error {
	return s.runMutation(func(st *stmt) error {
		tf.mu.Lock()
		defer tf.mu.Unlock()
		if rid.Page < 0 || int64(rid.Page) >= tf.pages {
			return fmt.Errorf("disk: %s: no record %s", tf.name, rid)
		}
		fr, err := s.pin(tf, uint32(rid.Page))
		if err != nil {
			return err
		}
		pg := newPage(fr.buf)
		if pg.record(int(rid.Slot)) == nil {
			s.pool.unpin(fr, false, 0)
			return fmt.Errorf("disk: %s: no record %s", tf.name, rid)
		}
		// Fit is verified before logging so a logged update always
		// applies — here and at replay. Records are pinned to their RID
		// (indexes and undo entries hold it), so an update that outgrows
		// its page is rejected rather than relocated.
		if !pg.canUpdate(int(rid.Slot), len(rec)) {
			s.pool.unpin(fr, false, 0)
			return fmt.Errorf("disk: %s: updated record of %d bytes does not fit in page %d", tf.name, len(rec), rid.Page)
		}
		lsn, err := s.walAppend(tf.name, &walRecord{
			kind: walUpdate, stmtID: st.id, table: tf.name,
			pageNo: uint32(rid.Page), slot: uint32(rid.Slot), data: rec,
		})
		if err != nil {
			s.pool.unpin(fr, false, 0)
			return err
		}
		if uerr := pg.update(int(rid.Slot), rec); uerr != nil {
			s.pool.unpin(fr, false, 0)
			return fmt.Errorf("disk: update after fit check failed on %s %s: %w", tf.name, rid, uerr)
		}
		pg.setLSN(lsn)
		st.wrote = true
		tf.free[rid.Page] = pg.insertCapacity()
		s.pool.unpin(fr, true, lsn)
		return nil
	})
}

// restoreRecord is undo-log put-back: reinsert a record at its exact
// original RID. Logged as a plain insert with a dictated slot.
func (s *Store) restoreRecord(tf *tableFile, rid storage.RID, rec []byte) error {
	return s.runMutation(func(st *stmt) error {
		tf.mu.Lock()
		defer tf.mu.Unlock()
		if rid.Page < 0 || rid.Slot < 0 {
			return fmt.Errorf("disk: %s: bad restore RID %s", tf.name, rid)
		}
		for int64(len(tf.free)) <= int64(rid.Page) {
			tf.free = append(tf.free, s.opts.PageSize-pageHeaderSize-slotSize)
		}
		if int64(len(tf.free)) > tf.pages {
			tf.pages = int64(len(tf.free))
		}
		fr, err := s.pin(tf, uint32(rid.Page))
		if err != nil {
			return err
		}
		pg := newPage(fr.buf)
		lsn, err := s.walAppend(tf.name, &walRecord{
			kind: walInsert, stmtID: st.id, table: tf.name,
			pageNo: uint32(rid.Page), slot: uint32(rid.Slot), data: rec,
		})
		if err != nil {
			s.pool.unpin(fr, false, 0)
			return err
		}
		if ierr := pg.insertAt(int(rid.Slot), rec); ierr != nil {
			s.pool.unpin(fr, false, 0)
			return fmt.Errorf("disk: restore %s %s: %w", tf.name, rid, ierr)
		}
		pg.setLSN(lsn)
		st.wrote = true
		tf.free[rid.Page] = pg.insertCapacity()
		tf.rows++
		s.pool.unpin(fr, true, lsn)
		return nil
	})
}

func (s *Store) truncateTable(tf *tableFile) error {
	return s.runMutation(func(st *stmt) error {
		tf.mu.Lock()
		defer tf.mu.Unlock()
		lsn, err := s.walAppend(tf.name, &walRecord{kind: walTruncate, stmtID: st.id, table: tf.name})
		if err != nil {
			return err
		}
		st.wrote = true
		tf.truncLSN = lsn
		tf.pages, tf.rows, tf.free, tf.lastIns = 0, 0, nil, 0
		s.pool.dropTable(tf.name)
		return nil
	})
}

func (s *Store) fetchRecord(tf *tableFile, rid storage.RID) ([]byte, bool) {
	if rid.Page < 0 || rid.Slot < 0 {
		return nil, false
	}
	tf.mu.RLock()
	defer tf.mu.RUnlock()
	if int64(rid.Page) >= tf.pages {
		return nil, false
	}
	fr, err := s.pin(tf, uint32(rid.Page))
	if err != nil {
		return nil, false
	}
	defer s.pool.unpin(fr, false, 0)
	rec := newPage(fr.buf).record(int(rid.Slot))
	if rec == nil {
		return nil, false
	}
	return append([]byte(nil), rec...), true
}

// ---------------------------------------------------------------------
// Checkpoint

// Checkpoint forces a full checkpoint: all committed state becomes
// durable in the page files and the WAL is rotated empty.
func (s *Store) Checkpoint() error {
	if s.crashed.Load() {
		return ErrCrashed
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.crashed.Load() {
		return ErrCrashed
	}
	return s.checkpointLocked()
}

// checkpointLocked runs the checkpoint protocol. Caller holds writeMu
// (so no statement is in flight and every dirty frame is committed
// state):
//
//  1. log a full-page image of every dirty frame (torn-page repair
//     source), 2. fsync the WAL, 3. write the dirty pages back,
//  4. truncate + fsync the data files, 5. write the catalog snapshot
//     (tmp + rename), 6. rotate the WAL (tmp + rename).
//
// A crash at any point is recoverable: before step 6 the old WAL still
// replays everything; after it, the snapshot + empty WAL are the
// complete state.
//
// While an explicit transaction is open the checkpoint is deferred
// instead: dirty frames hold the transaction's uncommitted page state
// (the FPIs and write-back would persist it without the replay-time
// commit filter), and the rotation would discard its tagged records.
// The deferral is noted and honored by the transaction's CommitTxn or
// AbortTxn.
func (s *Store) checkpointLocked() error {
	s.mu.Lock()
	if len(s.openTxns) > 0 {
		s.ckptPending = true
		s.mu.Unlock()
		return nil
	}
	s.ckptPending = false
	s.mu.Unlock()

	frames := s.pool.dirtyFrames()
	sort.Slice(frames, func(i, j int) bool {
		if frames[i].key.table != frames[j].key.table {
			return frames[i].key.table < frames[j].key.table
		}
		return frames[i].key.pageNo < frames[j].key.pageNo
	})

	// 1. Full-page images. Sealed copies double as the write-back
	// images in step 3.
	imgs := make([][]byte, len(frames))
	for i, fr := range frames {
		img := append([]byte(nil), fr.buf...)
		newPage(img).seal()
		imgs[i] = img
		if err := s.checkFault(fr.key.table, storage.FaultWALAppend); err != nil {
			return err
		}
		s.mu.Lock()
		before := s.wal.bytes
		_, err := s.wal.append(&walRecord{kind: walFPI, table: fr.key.table, pageNo: fr.key.pageNo, data: img})
		if err == nil {
			s.statWALBytes += s.wal.bytes - before
			s.statWALRecords++
		}
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}

	// 2. WAL fsync: the repair images are durable before any page file
	// is touched.
	if err := s.walSync(""); err != nil {
		return err
	}

	// 3. Dirty page write-back.
	touched := map[*tableFile]bool{}
	for i, fr := range frames {
		tf := s.table(fr.key.table)
		if tf == nil {
			s.pool.clean(fr)
			continue
		}
		if err := s.checkPageWrite(tf, fr.key.pageNo, imgs[i]); err != nil {
			return err
		}
		off := int64(fr.key.pageNo) * int64(s.opts.PageSize)
		if _, err := tf.file.WriteAt(imgs[i], off); err != nil {
			return fmt.Errorf("disk: write %s page %d: %w", tf.name, fr.key.pageNo, err)
		}
		s.pool.clean(fr)
		touched[tf] = true
	}

	// 4. Apply pending logical truncations physically, then fsync every
	// touched file.
	s.mu.Lock()
	all := make([]*tableFile, 0, len(s.tables))
	for _, tf := range s.tables {
		all = append(all, tf)
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	for _, tf := range all {
		tf.mu.RLock()
		want := tf.pages * int64(s.opts.PageSize)
		tf.mu.RUnlock()
		size, err := s.fs.Stat(tf.fileName)
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("disk: stat %s: %w", tf.fileName, err)
		}
		if size > want {
			if err := tf.file.Truncate(want); err != nil {
				return fmt.Errorf("disk: truncate %s: %w", tf.fileName, err)
			}
			touched[tf] = true
		}
	}
	for _, tf := range all {
		if !touched[tf] {
			continue
		}
		if err := tf.file.Sync(); err != nil {
			return fmt.Errorf("disk: fsync %s: %w", tf.fileName, err)
		}
	}

	// 5. Catalog snapshot.
	s.mu.Lock()
	lastLSN := s.wal.nextLSN - 1
	snapFn := s.snapshotFn
	s.mu.Unlock()
	var schema []byte
	if snapFn != nil {
		blob, err := snapFn()
		if err != nil {
			return fmt.Errorf("disk: snapshot catalog: %w", err)
		}
		schema = blob
	}
	blob, err := json.Marshal(snapshotFile{LastLSN: lastLSN, Schema: schema})
	if err != nil {
		return err
	}
	if err := s.writeFileAtomic(catalogFileName, blob); err != nil {
		return err
	}

	// 6. Rotate the WAL.
	tmp := filepath.Join(s.dir, walFileName+".tmp")
	nf, err := s.fs.OpenFile(tmp)
	if err != nil {
		return fmt.Errorf("disk: rotate wal: %w", err)
	}
	if err := nf.Truncate(0); err != nil {
		return fmt.Errorf("disk: rotate wal: %w", err)
	}
	nw, err := newWalFile(nf)
	if err != nil {
		return fmt.Errorf("disk: rotate wal: %w", err)
	}
	if err := nf.Sync(); err != nil {
		return fmt.Errorf("disk: rotate wal: %w", err)
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, walFileName)); err != nil {
		return fmt.Errorf("disk: rotate wal: %w", err)
	}
	nw.nextLSN = lastLSN + 1
	nw.syncedLSN = lastLSN
	s.mu.Lock()
	old := s.walFile
	s.walFile = nf
	s.wal = nw
	s.commitsSinceCkpt = 0
	s.walBytesSinceCkpt = 0
	s.statCkpts++
	s.snapLSN = lastLSN
	s.mu.Unlock()
	if err := old.Close(); err != nil {
		return fmt.Errorf("disk: close rotated wal: %w", err)
	}
	return nil
}

// writeFileAtomic writes name under the data dir via tmp + fsync +
// rename.
func (s *Store) writeFileAtomic(name string, data []byte) error {
	path := filepath.Join(s.dir, name)
	tmp := path + ".tmp"
	f, err := s.fs.OpenFile(tmp)
	if err != nil {
		return fmt.Errorf("disk: write %s: %w", name, err)
	}
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("disk: write %s: %w", name, err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		return fmt.Errorf("disk: write %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("disk: write %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("disk: close %s: %w", name, err)
	}
	return s.fs.Rename(tmp, path)
}

// ---------------------------------------------------------------------
// Recovery

// Recover replays the WAL against the attached page files. The engine
// has already recreated the snapshot schema; applyDDL re-executes a
// committed post-snapshot DDL statement (the engine defers index builds
// until data replay is done). Recover must be called exactly once,
// before any other use of the store.
func (s *Store) Recover(applyDDL func(sqlText string) error) error {
	s.attachMode = false
	s.recovering = true
	defer func() { s.recovering = false }()

	// Two-level commit filter: a statement group replays only when its
	// commit record was found AND, if the group is tagged with an
	// explicit transaction, that transaction's commit record was found
	// too — a crash mid-transaction drops every statement of it.
	committed := map[uint64]bool{}
	stmtTxn := map[uint64]uint64{}
	txnCommitted := map[uint64]bool{}
	for _, r := range s.scanned {
		switch r.kind {
		case walCommit:
			committed[r.stmtID] = true
			if r.txnID != 0 {
				stmtTxn[r.stmtID] = r.txnID
			}
		case walTxnCommit:
			txnCommitted[r.txnID] = true
		}
	}
	replayable := func(stmtID uint64) bool {
		if !committed[stmtID] {
			return false
		}
		if t := stmtTxn[stmtID]; t != 0 && !txnCommitted[t] {
			return false
		}
		return true
	}
	for _, r := range s.scanned {
		switch r.kind {
		case walCommit, walTxnCommit:
			// markers only
		case walFPI:
			if err := s.replayFPI(r); err != nil {
				return err
			}
		case walDDL:
			if !replayable(r.stmtID) || r.lsn <= s.snapLSN {
				continue
			}
			if err := applyDDL(string(r.data)); err != nil {
				return fmt.Errorf("disk: replay DDL %q: %w", r.data, err)
			}
		case walInsert, walDelete, walUpdate, walTruncate:
			if !replayable(r.stmtID) {
				continue
			}
			if err := s.replayData(r); err != nil {
				return err
			}
		default:
			return fmt.Errorf("disk: replaying unknown wal kind %d", r.kind)
		}
	}
	s.scanned = nil
	return s.finishRecovery()
}

// replayFPI installs a checkpoint full-page image when the on-disk page
// is older or damaged. FPIs capture only committed state (they are
// logged under the checkpoint quiesce), so no commit gating applies.
func (s *Store) replayFPI(r *walRecord) error {
	tf := s.table(r.table)
	if tf == nil {
		return nil // table dropped later in the log
	}
	if len(r.data) != s.opts.PageSize {
		return fmt.Errorf("disk: FPI for %s page %d has %d bytes, want %d", r.table, r.pageNo, len(r.data), s.opts.PageSize)
	}
	img := newPage(r.data)
	tf.mu.Lock()
	defer tf.mu.Unlock()
	if img.lsn() < tf.truncLSN {
		return nil
	}
	fr, err := s.pin(tf, r.pageNo)
	if err != nil {
		return err
	}
	cur := newPage(fr.buf)
	if tf.pendingRepair[r.pageNo] || cur.dataStart() == 0 || cur.lsn() < img.lsn() {
		copy(fr.buf, r.data)
		delete(tf.pendingRepair, r.pageNo)
		s.pool.unpin(fr, true, img.lsn())
	} else {
		s.pool.unpin(fr, false, 0)
	}
	if int64(r.pageNo) >= tf.pages {
		tf.pages = int64(r.pageNo) + 1
	}
	return nil
}

// replayData applies one committed physiological record, gated by the
// page LSN so replay is idempotent.
func (s *Store) replayData(r *walRecord) error {
	tf := s.table(r.table)
	if tf == nil {
		return nil // table dropped later in the log
	}
	tf.mu.Lock()
	defer tf.mu.Unlock()
	if r.kind == walTruncate {
		tf.truncLSN = r.lsn
		tf.pages, tf.rows, tf.free, tf.lastIns = 0, 0, nil, 0
		s.pool.dropTable(tf.name)
		return nil
	}
	if tf.pendingRepair[r.pageNo] {
		// The page is damaged; a later FPI both repairs it and carries
		// this record's effect.
		return nil
	}
	fr, err := s.pin(tf, r.pageNo)
	if err != nil {
		return err
	}
	pg := newPage(fr.buf)
	if tf.pendingRepair[r.pageNo] {
		// Damage detected by this very load.
		s.pool.unpin(fr, false, 0)
		return nil
	}
	if pg.lsn() >= r.lsn {
		s.pool.unpin(fr, false, 0)
		return nil
	}
	switch r.kind {
	case walInsert:
		if err := pg.insertAt(int(r.slot), r.data); err != nil {
			s.pool.unpin(fr, false, 0)
			return fmt.Errorf("disk: replay insert %s page %d slot %d: %w", r.table, r.pageNo, r.slot, err)
		}
	case walDelete:
		pg.delete(int(r.slot))
	case walUpdate:
		if err := pg.update(int(r.slot), r.data); err != nil {
			s.pool.unpin(fr, false, 0)
			return fmt.Errorf("disk: replay update %s page %d slot %d: %w", r.table, r.pageNo, r.slot, err)
		}
	}
	pg.setLSN(r.lsn)
	s.pool.unpin(fr, true, r.lsn)
	if int64(r.pageNo) >= tf.pages {
		tf.pages = int64(r.pageNo) + 1
	}
	return nil
}

// finishRecovery walks every page of every table rebuilding the free
// map and row counts, and verifies no damaged page was left without a
// repair image.
func (s *Store) finishRecovery() error {
	s.mu.Lock()
	all := make([]*tableFile, 0, len(s.tables))
	for _, tf := range s.tables {
		all = append(all, tf)
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	for _, tf := range all {
		tf.mu.Lock()
		tf.rows = 0
		tf.free = make([]int, tf.pages)
		tf.lastIns = 0
		for p := int64(0); p < tf.pages; p++ {
			fr, err := s.pin(tf, uint32(p))
			if err != nil {
				tf.mu.Unlock()
				return err
			}
			pg := newPage(fr.buf)
			if tf.pendingRepair[uint32(p)] {
				s.pool.unpin(fr, false, 0)
				tf.mu.Unlock()
				return fmt.Errorf("disk: table %s page %d is torn and no repair image was logged", tf.name, p)
			}
			tf.rows += int64(pg.liveCount())
			tf.free[p] = pg.insertCapacity()
			s.pool.unpin(fr, false, 0)
		}
		tf.mu.Unlock()
	}
	return nil
}

// ---------------------------------------------------------------------
// Shutdown

// Close checkpoints (unless crashed) and closes every file handle. The
// store is unusable afterwards.
func (s *Store) Close() error {
	var errs []error
	if !s.crashed.Load() {
		if err := s.Checkpoint(); err != nil && !errors.Is(err, ErrCrashed) {
			errs = append(errs, err)
		}
	}
	s.mu.Lock()
	tables := make([]*tableFile, 0, len(s.tables))
	for _, tf := range s.tables {
		tables = append(tables, tf)
	}
	walFile := s.walFile
	s.walFile = nil
	s.mu.Unlock()
	sort.Slice(tables, func(i, j int) bool { return tables[i].name < tables[j].name })
	for _, tf := range tables {
		if err := tf.file.Close(); err != nil {
			errs = append(errs, fmt.Errorf("disk: close %s: %w", tf.fileName, err))
		}
	}
	if walFile != nil {
		if err := walFile.Close(); err != nil {
			errs = append(errs, fmt.Errorf("disk: close wal: %w", err))
		}
	}
	return errors.Join(errs...)
}
