package disk

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// pool is the bounded buffer pool: a fixed budget of page frames keyed
// by (table, pageNo), with pin counts and clock (second-chance)
// eviction over clean unpinned frames.
//
// The store runs a no-steal policy: a dirty frame is never written back
// outside a checkpoint, so eviction considers only clean frames. When
// every frame is dirty or pinned the pool grows past its budget rather
// than blocking — the overflow is counted and the store's checkpoint
// trigger (dirty ≥ capacity/2) keeps it rare and bounded.
type pool struct {
	mu       sync.Mutex
	capacity int
	frames   map[frameKey]*frame
	clock    []*frame // eviction ring; grows with the pool
	hand     int

	hits     int64
	misses   int64
	evicts   int64
	overflow int64 // frames allocated beyond capacity

	// waitProf, when set (Store.SetWaitObs, before concurrent use),
	// receives BUFPOOL_LOAD for page reads on the miss path and
	// BUFPOOL_WAIT for hitters blocked on another getter's in-flight
	// load. Reads have no statement bracket, so pool waits are profiled
	// DB-wide only, never attributed per statement.
	waitProf *obs.WaitProfile
}

type frameKey struct {
	table  string
	pageNo uint32
}

type frame struct {
	key    frameKey
	buf    []byte
	pins   int
	dirty  bool
	ref    bool // clock second-chance bit
	dead   bool // evicted; no longer in the map
	recLSN uint64

	// ready is closed once the load that populated buf finished (check
	// loadErr after waiting). A frame is published in the map before its
	// page is read so concurrent getters coalesce on one load.
	ready   chan struct{}
	loadErr error
}

func newPool(capacity int) *pool {
	if capacity < 4 {
		capacity = 4
	}
	return &pool{capacity: capacity, frames: map[frameKey]*frame{}}
}

// get returns the pinned frame for key, loading the page via load on a
// miss. The miss path publishes the frame before loading (so concurrent
// getters coalesce on one read) and runs load outside the pool lock;
// hitters wait on the ready channel before touching buf.
//
// starburst:waits BUFPOOL_LOAD BUFPOOL_WAIT
func (p *pool) get(key frameKey, pageSize int, load func(buf []byte) error) (*frame, error) {
	p.mu.Lock()
	if fr, ok := p.frames[key]; ok {
		fr.pins++
		fr.ref = true
		p.hits++
		p.mu.Unlock()
		select {
		case <-fr.ready:
			// Fast path: the load already finished; a pure hit pays no
			// clock reads.
		default:
			start := time.Now()
			<-fr.ready
			p.waitProf.Record(obs.WaitBufPoolWait, time.Since(start).Nanoseconds())
		}
		if fr.loadErr != nil {
			p.mu.Lock()
			fr.pins--
			p.mu.Unlock()
			return nil, fr.loadErr
		}
		return fr, nil
	}
	p.misses++
	fr := p.allocFrame(key, pageSize)
	fr.pins = 1
	fr.ref = true
	fr.ready = make(chan struct{})
	fr.loadErr = nil
	p.frames[key] = fr
	p.mu.Unlock()

	if p.waitProf != nil {
		start := time.Now()
		fr.loadErr = load(fr.buf)
		p.waitProf.Record(obs.WaitBufPoolLoad, time.Since(start).Nanoseconds())
	} else {
		fr.loadErr = load(fr.buf)
	}
	close(fr.ready)
	if fr.loadErr != nil {
		p.mu.Lock()
		fr.pins--
		if p.frames[key] == fr {
			delete(p.frames, key)
			fr.dead = true
		}
		p.mu.Unlock()
		return nil, fr.loadErr
	}
	return fr, nil
}

// allocFrame reuses an evicted frame when at capacity, else allocates.
// Caller holds p.mu.
func (p *pool) allocFrame(key frameKey, pageSize int) *frame {
	if len(p.frames) >= p.capacity {
		if fr := p.evict(); fr != nil {
			fr.key = key
			fr.dirty = false
			fr.dead = false
			fr.recLSN = 0
			if len(fr.buf) != pageSize {
				fr.buf = make([]byte, pageSize)
			}
			return fr
		}
		p.overflow++
	}
	fr := &frame{key: key, buf: make([]byte, pageSize)}
	p.clock = append(p.clock, fr)
	return fr
}

// evict runs the clock over the ring looking for a clean, unpinned,
// unreferenced frame; referenced frames lose their second chance in
// passing. Returns nil when nothing is evictable. Caller holds p.mu.
func (p *pool) evict() *frame {
	if len(p.clock) == 0 {
		return nil
	}
	for sweep := 0; sweep < 2*len(p.clock); sweep++ {
		fr := p.clock[p.hand]
		p.hand = (p.hand + 1) % len(p.clock)
		if fr.dead {
			// Already out of the map (dropped table or failed load);
			// reusable as soon as the last reader unpins.
			if fr.pins == 0 {
				return fr
			}
			continue
		}
		if fr.pins > 0 || fr.dirty {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		delete(p.frames, fr.key)
		p.evicts++
		return fr
	}
	return nil
}

// unpin releases one pin, marking the frame dirty (with the LSN of the
// record that dirtied it, for checkpoint FPIs) when the caller mutated
// the page.
func (p *pool) unpin(fr *frame, dirty bool, lsn uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr.pins <= 0 {
		panic(fmt.Sprintf("disk: unpin of unpinned frame %v", fr.key))
	}
	fr.pins--
	if dirty {
		fr.dirty = true
		if fr.recLSN == 0 || lsn < fr.recLSN {
			fr.recLSN = lsn
		}
	}
}

// dirtyFrames snapshots the dirty frame set, sorted deterministically
// by the caller. Frames stay dirty until clean() after a successful
// checkpoint write-back.
func (p *pool) dirtyFrames() []*frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*frame
	for _, fr := range p.frames {
		if fr.dirty {
			out = append(out, fr)
		}
	}
	return out
}

func (p *pool) dirtyCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, fr := range p.frames {
		if fr.dirty {
			n++
		}
	}
	return n
}

// clean marks a frame written back.
func (p *pool) clean(fr *frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fr.dirty = false
	fr.recLSN = 0
}

// dropTable discards every frame of a table (after DROP TABLE or
// truncate-on-replay); dirty contents are intentionally lost.
func (p *pool) dropTable(table string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, fr := range p.frames {
		if k.table == table {
			delete(p.frames, k)
			fr.dead = true
			fr.dirty = false
		}
	}
}

// stats returns (hits, misses, evictions, overflow allocations).
func (p *pool) stats() (hits, misses, evicts, overflow int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.evicts, p.overflow
}
