package storage

import (
	"fmt"
	"sync"

	"repro/internal/datum"
)

// BTreeMethod is the built-in ordered access method: a B+tree over
// composite keys with duplicate support (entries are ordered by key,
// then RID). It supports equality, ranges, and ordered scans, so the
// optimizer may use it both for sargable predicates and to satisfy
// interesting orders (merge join, ORDER BY).
type BTreeMethod struct{}

// Name implements AccessMethod.
func (BTreeMethod) Name() string { return "BTREE" }

// Caps implements AccessMethod.
func (BTreeMethod) Caps() AccessMethodCaps {
	return AccessMethodCaps{Ordered: true, Equality: true, Range: true}
}

// New implements AccessMethod.
func (BTreeMethod) New(keyTypes []datum.TypeID, unique bool, stats *IOStats) (Attachment, error) {
	if len(keyTypes) == 0 {
		return nil, fmt.Errorf("storage: btree needs at least one key column")
	}
	return &btree{order: 64, unique: unique, stats: stats}, nil
}

// btree is a B+tree. Interior nodes hold separator keys; leaves hold
// entries and are chained for range scans. The order is the maximum
// number of children (interior) or entries (leaf).
type btree struct {
	mu     sync.RWMutex
	order  int
	unique bool
	root   *btnode
	first  *btnode // leftmost leaf
	size   int64
	stats  *IOStats
}

type btnode struct {
	leaf bool
	keys []datum.Row // separators (interior) or entry keys (leaf)
	rids []RID       // parallel to keys; in interior nodes the RID
	// is part of the separator so that duplicate keys spanning leaves
	// remain findable from their leftmost position.
	children []*btnode // interior only: len(keys)+1
	next     *btnode   // leaf chain
}

// cmpEntry orders (key, rid) pairs: key order first, RID as tiebreak so
// duplicates have a stable total order.
func cmpEntry(aKey datum.Row, aRID RID, bKey datum.Row, bRID RID) int {
	if c := CompareKeys(aKey, bKey); c != 0 {
		return c
	}
	switch {
	case aRID.Less(bRID):
		return -1
	case bRID.Less(aRID):
		return 1
	}
	return 0
}

// leafFind returns the index of the first entry in the leaf >= (key, rid).
func (n *btnode) leafFind(key datum.Row, rid RID) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmpEntry(n.keys[mid], n.rids[mid], key, rid) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childFor returns the child index to descend into for (key, rid).
// Separators carry the minimum (key, rid) of their right subtree, so
// comparing the full entry identity keeps duplicates findable from the
// leftmost leaf when searching with a minimal RID.
func (n *btnode) childFor(key datum.Row, rid RID) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmpEntry(n.keys[mid], n.rids[mid], key, rid) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (t *btree) Insert(key datum.Row, rid RID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == nil {
		leaf := &btnode{leaf: true}
		t.root, t.first = leaf, leaf
	}
	if t.unique {
		leaf, i := t.search(key, RID{Page: -1 << 30, Slot: 0})
		if leaf != nil && i == len(leaf.keys) {
			leaf, i = leaf.next, 0
		}
		if leaf != nil && i < len(leaf.keys) && CompareKeys(leaf.keys[i], key) == 0 {
			return fmt.Errorf("storage: duplicate key %v in unique index", key)
		}
	}
	split, sepKey, sepRID, right := t.insert(t.root, key.Clone(), rid)
	if split {
		newRoot := &btnode{
			keys:     []datum.Row{sepKey},
			rids:     []RID{sepRID},
			children: []*btnode{t.root, right},
		}
		t.root = newRoot
	}
	t.size++
	return nil
}

// insert descends to a leaf; on overflow it splits and propagates the
// separator upward. Returns (split, separatorKey, separatorRID, rightNode).
func (t *btree) insert(n *btnode, key datum.Row, rid RID) (bool, datum.Row, RID, *btnode) {
	t.stats.ReadIndex()
	if n.leaf {
		i := n.leafFind(key, rid)
		n.keys = append(n.keys, nil)
		n.rids = append(n.rids, RID{})
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.rids[i+1:], n.rids[i:])
		n.keys[i] = key
		n.rids[i] = rid
		if len(n.keys) <= t.order {
			return false, nil, RID{}, nil
		}
		// Split leaf.
		mid := len(n.keys) / 2
		right := &btnode{
			leaf: true,
			keys: append([]datum.Row(nil), n.keys[mid:]...),
			rids: append([]RID(nil), n.rids[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid:mid]
		n.rids = n.rids[:mid:mid]
		n.next = right
		return true, right.keys[0], right.rids[0], right
	}
	ci := n.childFor(key, rid)
	split, sepKey, sepRID, right := t.insert(n.children[ci], key, rid)
	if !split {
		return false, nil, RID{}, nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sepKey
	n.rids = append(n.rids, RID{})
	copy(n.rids[ci+1:], n.rids[ci:])
	n.rids[ci] = sepRID
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.children) <= t.order {
		return false, nil, RID{}, nil
	}
	// Split interior: the middle separator moves up.
	midKey := len(n.keys) / 2
	sk, sr := n.keys[midKey], n.rids[midKey]
	rn := &btnode{
		keys:     append([]datum.Row(nil), n.keys[midKey+1:]...),
		rids:     append([]RID(nil), n.rids[midKey+1:]...),
		children: append([]*btnode(nil), n.children[midKey+1:]...),
	}
	n.keys = n.keys[:midKey:midKey]
	n.rids = n.rids[:midKey:midKey]
	n.children = n.children[: midKey+1 : midKey+1]
	return true, sk, sr, rn
}

// search descends to the leaf that would contain (key, rid) and returns
// the leaf and the position of the first entry >= (key, rid). The
// position may equal len(leaf.keys), meaning "continue at next leaf".
func (t *btree) search(key datum.Row, rid RID) (*btnode, int) {
	n := t.root
	if n == nil {
		return nil, 0
	}
	for !n.leaf {
		t.stats.ReadIndex()
		n = n.children[n.childFor(key, rid)]
	}
	t.stats.ReadIndex()
	i := n.leafFind(key, rid)
	// Duplicates of key may start in an earlier leaf because childFor
	// biases right; back up along the leftmost possible position by
	// re-searching with the minimal RID when i lands at 0.
	return n, i
}

func (t *btree) Delete(key datum.Row, rid RID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf, i := t.search(key, rid)
	if leaf == nil {
		return fmt.Errorf("storage: btree delete: empty tree")
	}
	// The exact (key, rid) entry may be at i in this leaf or the next
	// (when i == len(keys)).
	for leaf != nil {
		if i < len(leaf.keys) {
			if cmpEntry(leaf.keys[i], leaf.rids[i], key, rid) == 0 {
				leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
				leaf.rids = append(leaf.rids[:i], leaf.rids[i+1:]...)
				t.size--
				// Lazy deletion: underfull leaves are tolerated and
				// reclaimed on rebuild, trading strict occupancy for
				// simplicity (documented substitute for full rebalance).
				return nil
			}
			break
		}
		leaf, i = leaf.next, 0
	}
	return fmt.Errorf("storage: btree delete: entry not found")
}

func (t *btree) Search(lo, hi Bound) EntryIterator {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var leaf *btnode
	var i int
	minRID := RID{Page: -1 << 30}
	switch {
	case t.root == nil:
		return &sliceEntryIterator{}
	case lo.Unbounded:
		leaf, i = t.first, 0
		t.stats.ReadIndex()
	default:
		leaf, i = t.search(lo.Key, minRID)
		// Skip entries equal to lo.Key if the bound is exclusive.
		if !lo.Inclusive {
			for leaf != nil {
				if i >= len(leaf.keys) {
					leaf, i = leaf.next, 0
					continue
				}
				if keyPrefixCompare(leaf.keys[i], lo.Key) > 0 {
					break
				}
				i++
			}
		}
	}
	// Materialize the matching range while the tree lock is held: leaf
	// pointers captured here would go stale under a concurrent insert's
	// node split, and with MVCC there is no statement-level lock keeping
	// index scans and DML apart. The slice is a consistent
	// point-in-time image of the range; visibility filtering happens
	// above this layer.
	var out []Entry
	for leaf != nil {
		if i >= len(leaf.keys) {
			leaf, i = leaf.next, 0
			if leaf != nil {
				t.stats.ReadIndex()
			}
			continue
		}
		key, rid := leaf.keys[i], leaf.rids[i]
		i++
		if !hi.Unbounded {
			c := keyPrefixCompare(key, hi.Key)
			if c > 0 || (c == 0 && !hi.Inclusive) {
				break
			}
		}
		out = append(out, Entry{Key: key, RID: rid})
	}
	return &sliceEntryIterator{entries: out}
}

// keyPrefixCompare compares an entry key against a (possibly shorter)
// search key prefix: only the prefix columns participate, so a search
// on the first column of a composite index works naturally.
func keyPrefixCompare(entryKey, searchKey datum.Row) int {
	n := len(searchKey)
	if len(entryKey) < n {
		n = len(entryKey)
	}
	for i := 0; i < n; i++ {
		if c := datum.SortCompare(entryKey[i], searchKey[i]); c != 0 {
			return c
		}
	}
	return 0
}

func (t *btree) Len() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}
