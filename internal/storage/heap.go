package storage

import (
	"fmt"
	"sync"

	"repro/internal/datum"
)

// HeapManager is the default storage manager: an unordered heap of
// slotted pages. Page granularity is simulated (rowsPerPage records per
// page) so scans charge realistic page-read counts to IOStats.
type HeapManager struct {
	rowsPerPage int
}

// NewHeapManager returns a heap manager with the given simulated page
// capacity (records per page).
func NewHeapManager(rowsPerPage int) *HeapManager {
	if rowsPerPage <= 0 {
		rowsPerPage = 64
	}
	return &HeapManager{rowsPerPage: rowsPerPage}
}

// Name implements StorageManager.
func (*HeapManager) Name() string { return "HEAP" }

// Create implements StorageManager.
func (m *HeapManager) Create(tableName string, numCols int, stats *IOStats) (Relation, error) {
	if numCols <= 0 {
		return nil, fmt.Errorf("storage: table %s must have columns", tableName)
	}
	return &heapRelation{
		name:        tableName,
		numCols:     numCols,
		rowsPerPage: m.rowsPerPage,
		stats:       stats,
	}, nil
}

type heapPage struct {
	rows []datum.Row // nil slot = deleted
	live int
}

type heapRelation struct {
	mu          sync.RWMutex
	name        string
	numCols     int
	rowsPerPage int
	pages       []*heapPage
	rowCount    int64
	stats       *IOStats
	// freePages holds indexes of pages with free slots at the end; heap
	// inserts go to the last page with room (append-mostly).
}

func (h *heapRelation) Insert(r datum.Row) (RID, error) {
	if len(r) != h.numCols {
		return RID{}, fmt.Errorf("storage: %s: row width %d, want %d", h.name, len(r), h.numCols)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var pg *heapPage
	var pgIdx int
	if n := len(h.pages); n > 0 && len(h.pages[n-1].rows) < h.rowsPerPage {
		pgIdx = n - 1
		pg = h.pages[pgIdx]
	} else {
		pg = &heapPage{rows: make([]datum.Row, 0, h.rowsPerPage)}
		h.pages = append(h.pages, pg)
		pgIdx = len(h.pages) - 1
	}
	pg.rows = append(pg.rows, r.Clone())
	pg.live++
	h.rowCount++
	h.stats.WritePage()
	return RID{Page: int32(pgIdx), Slot: int32(len(pg.rows) - 1)}, nil
}

func (h *heapRelation) locate(rid RID) (*heapPage, error) {
	if rid.Page < 0 || int(rid.Page) >= len(h.pages) {
		return nil, fmt.Errorf("storage: %s: bad page %d", h.name, rid.Page)
	}
	pg := h.pages[rid.Page]
	if rid.Slot < 0 || int(rid.Slot) >= len(pg.rows) {
		return nil, fmt.Errorf("storage: %s: bad slot %s", h.name, rid)
	}
	return pg, nil
}

func (h *heapRelation) Delete(rid RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	pg, err := h.locate(rid)
	if err != nil {
		return err
	}
	if pg.rows[rid.Slot] == nil {
		return fmt.Errorf("storage: %s: record %s already deleted", h.name, rid)
	}
	pg.rows[rid.Slot] = nil
	pg.live--
	h.rowCount--
	h.stats.WritePage()
	return nil
}

func (h *heapRelation) Update(rid RID, r datum.Row) error {
	if len(r) != h.numCols {
		return fmt.Errorf("storage: %s: row width %d, want %d", h.name, len(r), h.numCols)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	pg, err := h.locate(rid)
	if err != nil {
		return err
	}
	if pg.rows[rid.Slot] == nil {
		return fmt.Errorf("storage: %s: record %s deleted", h.name, rid)
	}
	pg.rows[rid.Slot] = r.Clone()
	h.stats.WritePage()
	return nil
}

// Restore implements Restorer: it puts a deleted record back into its
// original slot, so a rolled-back DELETE reproduces the exact
// pre-statement RIDs and scan order.
func (h *heapRelation) Restore(rid RID, r datum.Row) error {
	if len(r) != h.numCols {
		return fmt.Errorf("storage: %s: row width %d, want %d", h.name, len(r), h.numCols)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	pg, err := h.locate(rid)
	if err != nil {
		return err
	}
	if pg.rows[rid.Slot] != nil {
		return fmt.Errorf("storage: %s: slot %s is occupied", h.name, rid)
	}
	pg.rows[rid.Slot] = r.Clone()
	pg.live++
	h.rowCount++
	h.stats.WritePage()
	return nil
}

func (h *heapRelation) Fetch(rid RID) (datum.Row, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	pg, err := h.locate(rid)
	if err != nil || pg.rows[rid.Slot] == nil {
		return nil, false
	}
	h.stats.ReadPage()
	return pg.rows[rid.Slot].Clone(), true
}

func (h *heapRelation) Scan() RowIterator {
	return &heapIterator{rel: h, end: -1}
}

// ScanPages implements PageRangeScanner.
func (h *heapRelation) ScanPages(lo, hi int64) RowIterator {
	return &heapIterator{rel: h, page: int(lo), end: int(hi)}
}

func (h *heapRelation) RowCount() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rowCount
}

func (h *heapRelation) PageCount() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return int64(len(h.pages))
}

func (h *heapRelation) Truncate() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.pages = nil
	h.rowCount = 0
}

type heapIterator struct {
	rel    *heapRelation
	page   int
	slot   int
	opened bool
	// end bounds the scan to pages [start, end); -1 means unbounded.
	end int
}

func (it *heapIterator) pastEnd(pages int) int {
	if it.end >= 0 && it.end < pages {
		return it.end
	}
	return pages
}

func (it *heapIterator) Next() (datum.Row, RID, bool) {
	it.rel.mu.RLock()
	defer it.rel.mu.RUnlock()
	for it.page < it.pastEnd(len(it.rel.pages)) {
		pg := it.rel.pages[it.page]
		if it.slot == 0 {
			it.rel.stats.ReadPage() // first touch of this page
		}
		for it.slot < len(pg.rows) {
			s := it.slot
			it.slot++
			if pg.rows[s] != nil {
				return pg.rows[s].Clone(), RID{Page: int32(it.page), Slot: int32(s)}, true
			}
		}
		it.page++
		it.slot = 0
	}
	return nil, RID{}, false
}

// NextRows implements BatchScanner: it fills dst with up to len(dst)
// records, materializing all of their values in one shared arena so the
// whole batch costs two allocations rather than one per row. Page reads
// are counted exactly as tuple iteration counts them.
func (it *heapIterator) NextRows(dst []datum.Row) int {
	if len(dst) == 0 {
		return 0
	}
	it.rel.mu.RLock()
	defer it.rel.mu.RUnlock()
	arena := make([]datum.Value, 0, len(dst)*it.rel.numCols)
	n := 0
	for n < len(dst) && it.page < it.pastEnd(len(it.rel.pages)) {
		pg := it.rel.pages[it.page]
		if it.slot == 0 {
			it.rel.stats.ReadPage()
		}
		for n < len(dst) && it.slot < len(pg.rows) {
			s := it.slot
			it.slot++
			if pg.rows[s] == nil {
				continue
			}
			start := len(arena)
			arena = append(arena, pg.rows[s]...)
			dst[n] = datum.Row(arena[start:len(arena):len(arena)])
			n++
		}
		if it.slot >= len(pg.rows) {
			it.page++
			it.slot = 0
		}
	}
	return n
}

// NextCols implements ColScanner: the columnar twin of NextRows. Stored
// rows decompose straight into b's typed vectors (the vectors are the
// arena), with page-read accounting identical to tuple iteration.
func (it *heapIterator) NextCols(b *datum.ColBatch, max int) int {
	if max <= 0 {
		return 0
	}
	it.rel.mu.RLock()
	defer it.rel.mu.RUnlock()
	n := 0
	for n < max && it.page < it.pastEnd(len(it.rel.pages)) {
		pg := it.rel.pages[it.page]
		if it.slot == 0 {
			it.rel.stats.ReadPage()
		}
		for n < max && it.slot < len(pg.rows) {
			s := it.slot
			it.slot++
			if pg.rows[s] == nil {
				continue
			}
			b.AppendRow(pg.rows[s])
			n++
		}
		if it.slot >= len(pg.rows) {
			it.page++
			it.slot = 0
		}
	}
	return n
}

func (it *heapIterator) Close() {}

// ---------------------------------------------------------------------

// FixedManager is the paper's worked storage-manager extension: it
// "handles fixed-length records only — but extremely efficiently". It
// stores rows in one flat slice (no page indirection, denser simulated
// pages) and rejects variable-length (STRING and user-typed) values.
// It exists to prove that Corona invokes the correct storage manager
// per table; see TestFixedStorageManager and the quickstart example.
type FixedManager struct {
	rowsPerPage int
}

// NewFixedManager returns the fixed-length storage manager. Its pages
// hold four times as many records as the default heap, modeling the
// density advantage of fixed-length layouts.
func NewFixedManager() *FixedManager { return &FixedManager{rowsPerPage: 256} }

// Name implements StorageManager.
func (*FixedManager) Name() string { return "FIXED" }

// Create implements StorageManager.
func (m *FixedManager) Create(tableName string, numCols int, stats *IOStats) (Relation, error) {
	if numCols <= 0 {
		return nil, fmt.Errorf("storage: table %s must have columns", tableName)
	}
	return &fixedRelation{name: tableName, numCols: numCols, rowsPerPage: m.rowsPerPage, stats: stats}, nil
}

type fixedRelation struct {
	mu          sync.RWMutex
	name        string
	numCols     int
	rowsPerPage int
	rows        []datum.Row // nil = deleted
	live        int64
	stats       *IOStats
}

func (f *fixedRelation) checkFixed(r datum.Row) error {
	for i, v := range r {
		switch v.Type() {
		case datum.TNull, datum.TBool, datum.TInt, datum.TFloat:
		default:
			return fmt.Errorf("storage: FIXED manager: column %d of %s is variable-length (%s)",
				i, f.name, datum.TypeName(v.Type()))
		}
	}
	return nil
}

func (f *fixedRelation) Insert(r datum.Row) (RID, error) {
	if len(r) != f.numCols {
		return RID{}, fmt.Errorf("storage: %s: row width %d, want %d", f.name, len(r), f.numCols)
	}
	if err := f.checkFixed(r); err != nil {
		return RID{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rows = append(f.rows, r.Clone())
	f.live++
	f.stats.WritePage()
	n := len(f.rows) - 1
	return RID{Page: int32(n / f.rowsPerPage), Slot: int32(n % f.rowsPerPage)}, nil
}

func (f *fixedRelation) idx(rid RID) (int, error) {
	i := int(rid.Page)*f.rowsPerPage + int(rid.Slot)
	if i < 0 || i >= len(f.rows) {
		return 0, fmt.Errorf("storage: %s: bad rid %s", f.name, rid)
	}
	return i, nil
}

func (f *fixedRelation) Delete(rid RID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	i, err := f.idx(rid)
	if err != nil {
		return err
	}
	if f.rows[i] == nil {
		return fmt.Errorf("storage: %s: record %s already deleted", f.name, rid)
	}
	f.rows[i] = nil
	f.live--
	f.stats.WritePage()
	return nil
}

func (f *fixedRelation) Update(rid RID, r datum.Row) error {
	if err := f.checkFixed(r); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	i, err := f.idx(rid)
	if err != nil {
		return err
	}
	if f.rows[i] == nil {
		return fmt.Errorf("storage: %s: record %s deleted", f.name, rid)
	}
	f.rows[i] = r.Clone()
	f.stats.WritePage()
	return nil
}

// Restore implements Restorer (see heapRelation.Restore).
func (f *fixedRelation) Restore(rid RID, r datum.Row) error {
	if err := f.checkFixed(r); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	i, err := f.idx(rid)
	if err != nil {
		return err
	}
	if f.rows[i] != nil {
		return fmt.Errorf("storage: %s: slot %s is occupied", f.name, rid)
	}
	f.rows[i] = r.Clone()
	f.live++
	f.stats.WritePage()
	return nil
}

func (f *fixedRelation) Fetch(rid RID) (datum.Row, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	i, err := f.idx(rid)
	if err != nil || f.rows[i] == nil {
		return nil, false
	}
	f.stats.ReadPage()
	return f.rows[i].Clone(), true
}

func (f *fixedRelation) Scan() RowIterator {
	return &fixedIterator{rel: f, end: -1}
}

// ScanPages implements PageRangeScanner.
func (f *fixedRelation) ScanPages(lo, hi int64) RowIterator {
	return &fixedIterator{rel: f, i: int(lo) * f.rowsPerPage, end: int(hi)}
}

func (f *fixedRelation) RowCount() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.live
}

func (f *fixedRelation) PageCount() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64((len(f.rows) + f.rowsPerPage - 1) / f.rowsPerPage)
}

func (f *fixedRelation) Truncate() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rows = nil
	f.live = 0
}

type fixedIterator struct {
	rel *fixedRelation
	i   int
	// end bounds the scan to rows of pages [_, end); -1 means unbounded.
	end int
}

func (it *fixedIterator) stop(total int) int {
	if it.end < 0 {
		return total
	}
	if s := it.end * it.rel.rowsPerPage; s < total {
		return s
	}
	return total
}

func (it *fixedIterator) Next() (datum.Row, RID, bool) {
	it.rel.mu.RLock()
	defer it.rel.mu.RUnlock()
	for it.i < it.stop(len(it.rel.rows)) {
		i := it.i
		it.i++
		if i%it.rel.rowsPerPage == 0 {
			it.rel.stats.ReadPage()
		}
		if it.rel.rows[i] != nil {
			return it.rel.rows[i].Clone(),
				RID{Page: int32(i / it.rel.rowsPerPage), Slot: int32(i % it.rel.rowsPerPage)}, true
		}
	}
	return nil, RID{}, false
}

// NextRows implements BatchScanner (see heapIterator.NextRows).
func (it *fixedIterator) NextRows(dst []datum.Row) int {
	if len(dst) == 0 {
		return 0
	}
	it.rel.mu.RLock()
	defer it.rel.mu.RUnlock()
	arena := make([]datum.Value, 0, len(dst)*it.rel.numCols)
	n := 0
	for n < len(dst) && it.i < it.stop(len(it.rel.rows)) {
		i := it.i
		it.i++
		if i%it.rel.rowsPerPage == 0 {
			it.rel.stats.ReadPage()
		}
		if it.rel.rows[i] == nil {
			continue
		}
		start := len(arena)
		arena = append(arena, it.rel.rows[i]...)
		dst[n] = datum.Row(arena[start:len(arena):len(arena)])
		n++
	}
	return n
}

// NextCols implements ColScanner (see heapIterator.NextCols).
func (it *fixedIterator) NextCols(b *datum.ColBatch, max int) int {
	if max <= 0 {
		return 0
	}
	it.rel.mu.RLock()
	defer it.rel.mu.RUnlock()
	n := 0
	for n < max && it.i < it.stop(len(it.rel.rows)) {
		i := it.i
		it.i++
		if i%it.rel.rowsPerPage == 0 {
			it.rel.stats.ReadPage()
		}
		if it.rel.rows[i] == nil {
			continue
		}
		b.AppendRow(it.rel.rows[i])
		n++
	}
	return n
}

func (it *fixedIterator) Close() {}
