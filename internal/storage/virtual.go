package storage

import (
	"fmt"
	"sync"

	"repro/internal/datum"
)

// VirtualManager is a read-only storage manager whose relations
// materialize their rows from a registered snapshot function each time
// they are scanned. It is the third Registry entry beside HEAP and
// DISK, and backs the SYS introspection schema: the engine registers
// one source per SYS table, the catalog registers the tables normally,
// and queries over live engine state run through the ordinary
// parse→QGM→optimize→exec path.
//
// Sources return a complete snapshot up front, so iteration holds no
// engine locks: a scan can be cancelled, fault-injected or abandoned
// mid-way without deadlocking against the state it observes, and a
// query joining two SYS tables never observes either one mid-update.
type VirtualManager struct {
	name    string
	mu      sync.RWMutex
	sources map[string]VirtualSource
}

// VirtualSource produces one snapshot of a virtual table's rows. The
// returned rows are owned by the iterator; sources must not retain or
// mutate them after returning.
type VirtualSource func() ([]datum.Row, error)

// NewVirtualManager returns a virtual manager registering under the
// given name (the SYS schema uses "SYS").
func NewVirtualManager(name string) *VirtualManager {
	return &VirtualManager{name: name, sources: map[string]VirtualSource{}}
}

// Name implements StorageManager.
func (m *VirtualManager) Name() string { return m.name }

// SetSource registers (or replaces) the snapshot function behind a
// table. Tables may be created before their source exists; scanning a
// sourceless table yields a deferred iterator error.
func (m *VirtualManager) SetSource(tableName string, src VirtualSource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sources[tableName] = src
}

func (m *VirtualManager) source(tableName string) VirtualSource {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.sources[tableName]
}

// Create implements StorageManager.
func (m *VirtualManager) Create(tableName string, numCols int, stats *IOStats) (Relation, error) {
	if numCols <= 0 {
		return nil, fmt.Errorf("storage: table %s must have columns", tableName)
	}
	return &virtualRelation{mgr: m, name: tableName, numCols: numCols, stats: stats}, nil
}

// virtualRelation is a read-only view over its manager's source.
// Mutations fail with a typed ReadOnlyError; the engine additionally
// rejects DML/DDL against system tables at compile time, so these are
// defense in depth for direct storage-API callers.
type virtualRelation struct {
	mgr     *VirtualManager
	name    string
	numCols int
	stats   *IOStats
}

// ReadOnlyError reports a mutation attempted on a read-only (virtual)
// relation.
type ReadOnlyError struct {
	Table string
	Op    string
}

func (e *ReadOnlyError) Error() string {
	return fmt.Sprintf("storage: %s on read-only table %s", e.Op, e.Table)
}

func (r *virtualRelation) Insert(datum.Row) (RID, error) {
	return RID{}, &ReadOnlyError{Table: r.name, Op: "INSERT"}
}

func (r *virtualRelation) Delete(RID) error {
	return &ReadOnlyError{Table: r.name, Op: "DELETE"}
}

func (r *virtualRelation) Update(RID, datum.Row) error {
	return &ReadOnlyError{Table: r.name, Op: "UPDATE"}
}

func (r *virtualRelation) snapshot() ([]datum.Row, error) {
	src := r.mgr.source(r.name)
	if src == nil {
		return nil, fmt.Errorf("storage: virtual table %s has no source", r.name)
	}
	return src()
}

// Fetch re-snapshots and resolves the synthetic RID assigned by a
// previous scan; rows may have shifted between snapshots, so RIDs over
// virtual tables are best-effort (SYS tables carry no indexes).
func (r *virtualRelation) Fetch(rid RID) (datum.Row, bool) {
	rows, err := r.snapshot()
	if err != nil || rid.Page != 0 || rid.Slot < 0 || int(rid.Slot) >= len(rows) {
		return nil, false
	}
	r.stats.ReadPage()
	return rows[rid.Slot], true
}

// Scan implements Relation: the snapshot is taken eagerly, so the
// iterator touches no engine state (and takes no locks) after Scan
// returns. A source error is deferred to IterErr, the storage layer's
// convention for scan-time failures.
func (r *virtualRelation) Scan() RowIterator {
	rows, err := r.snapshot()
	if err == nil {
		r.stats.ReadPage()
	}
	return &virtualIterator{rows: rows, err: err}
}

func (r *virtualRelation) RowCount() int64 {
	rows, err := r.snapshot()
	if err != nil {
		return 0
	}
	return int64(len(rows))
}

func (r *virtualRelation) PageCount() int64 {
	// One simulated page: snapshots are materialized wholesale, so the
	// optimizer should never parallelize or heavily cost SYS scans.
	return 1
}

func (r *virtualRelation) Truncate() {
	// Read-only: TRUNCATE is rejected before reaching storage; nothing
	// to do here (the interface offers no error return).
}

type virtualIterator struct {
	rows []datum.Row
	i    int
	err  error
}

func (it *virtualIterator) Next() (datum.Row, RID, bool) {
	if it.err != nil || it.i >= len(it.rows) {
		return nil, RID{}, false
	}
	i := it.i
	it.i++
	return it.rows[i], RID{Page: 0, Slot: int32(i)}, true
}

// IterErr reports a snapshot failure, deferred per the storage
// iterator convention (see storage.IterErr).
func (it *virtualIterator) IterErr() error { return it.err }

func (it *virtualIterator) Close() {}
