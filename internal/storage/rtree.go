package storage

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/datum"
)

// RTreeMethod is the paper's worked access-method extension: "a DBC
// could define a new type of access method, e.g., an R-tree [GUTT84].
// Corona must recognize when this access method is useful for a query
// and when to invoke it." It indexes points (rows of numeric key
// columns) and answers multi-dimensional window queries, which the
// optimizer routes to it when every key column is range-constrained.
//
// It is not registered by default; the spatial example and tests
// register it through the DBC extension API, proving the attachment
// architecture accepts new methods without core changes.
type RTreeMethod struct{}

// Name implements AccessMethod.
func (RTreeMethod) Name() string { return "RTREE" }

// Caps implements AccessMethod.
func (RTreeMethod) Caps() AccessMethodCaps {
	return AccessMethodCaps{Equality: true, Spatial: true}
}

// New implements AccessMethod.
func (RTreeMethod) New(keyTypes []datum.TypeID, unique bool, stats *IOStats) (Attachment, error) {
	if unique {
		return nil, fmt.Errorf("storage: rtree does not support unique constraints")
	}
	if len(keyTypes) == 0 {
		return nil, fmt.Errorf("storage: rtree needs at least one key column")
	}
	for _, t := range keyTypes {
		if t != datum.TInt && t != datum.TFloat {
			return nil, fmt.Errorf("storage: rtree key columns must be numeric, got %s", datum.TypeName(t))
		}
	}
	return &rtree{dims: len(keyTypes), maxEntries: 16, stats: stats}, nil
}

// rect is an axis-aligned bounding box in dims dimensions.
type rect struct {
	min, max []float64
}

func pointRect(dims int, key datum.Row) (rect, error) {
	if len(key) != dims {
		return rect{}, fmt.Errorf("storage: rtree key width %d, want %d", len(key), dims)
	}
	pt := make([]float64, dims)
	for i, v := range key {
		if v.IsNull() {
			return rect{}, fmt.Errorf("storage: rtree keys may not be NULL")
		}
		pt[i] = v.Float()
	}
	return rect{min: pt, max: append([]float64(nil), pt...)}, nil
}

func (r rect) contains(o rect) bool {
	for i := range r.min {
		if o.min[i] < r.min[i] || o.max[i] > r.max[i] {
			return false
		}
	}
	return true
}

func (r rect) intersects(o rect) bool {
	for i := range r.min {
		if o.max[i] < r.min[i] || o.min[i] > r.max[i] {
			return false
		}
	}
	return true
}

func (r rect) union(o rect) rect {
	out := rect{min: make([]float64, len(r.min)), max: make([]float64, len(r.max))}
	for i := range r.min {
		out.min[i] = math.Min(r.min[i], o.min[i])
		out.max[i] = math.Max(r.max[i], o.max[i])
	}
	return out
}

func (r rect) area() float64 {
	a := 1.0
	for i := range r.min {
		a *= r.max[i] - r.min[i]
	}
	return a
}

func (r rect) enlargement(o rect) float64 {
	return r.union(o).area() - r.area()
}

type rtEntry struct {
	box   rect
	key   datum.Row // leaf entries only
	rid   RID
	child *rtNode // interior entries only
}

type rtNode struct {
	leaf    bool
	entries []rtEntry
}

func (n *rtNode) mbr() rect {
	box := n.entries[0].box
	for _, e := range n.entries[1:] {
		box = box.union(e.box)
	}
	return box
}

// rtree is an in-memory R-tree with quadratic split.
type rtree struct {
	mu         sync.RWMutex
	dims       int
	maxEntries int
	root       *rtNode
	size       int64
	stats      *IOStats
}

func (t *rtree) Insert(key datum.Row, rid RID) error {
	box, err := pointRect(t.dims, key)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == nil {
		t.root = &rtNode{leaf: true}
	}
	entry := rtEntry{box: box, key: key.Clone(), rid: rid}
	split := t.insert(t.root, entry)
	if split != nil {
		// Grow the tree: new root with the old root and the split node.
		old := t.root
		t.root = &rtNode{entries: []rtEntry{
			{box: old.mbr(), child: old},
			{box: split.mbr(), child: split},
		}}
	}
	t.size++
	return nil
}

// insert adds an entry beneath n and returns a new sibling when n split.
func (t *rtree) insert(n *rtNode, e rtEntry) *rtNode {
	t.stats.ReadIndex()
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxEntries {
			return t.split(n)
		}
		return nil
	}
	// Choose the subtree whose MBR needs least enlargement.
	best, bestEnl, bestArea := -1, math.Inf(1), math.Inf(1)
	for i, c := range n.entries {
		enl := c.box.enlargement(e.box)
		if enl < bestEnl || (enl == bestEnl && c.box.area() < bestArea) {
			best, bestEnl, bestArea = i, enl, c.box.area()
		}
	}
	child := n.entries[best].child
	if split := t.insert(child, e); split != nil {
		n.entries[best].box = child.mbr()
		n.entries = append(n.entries, rtEntry{box: split.mbr(), child: split})
		if len(n.entries) > t.maxEntries {
			return t.split(n)
		}
		return nil
	}
	n.entries[best].box = n.entries[best].box.union(e.box)
	return nil
}

// split performs a quadratic split of an overflowing node, keeping one
// group in n and returning the other as a new node.
func (t *rtree) split(n *rtNode) *rtNode {
	entries := n.entries
	// Pick the two seeds wasting the most area if grouped together.
	s1, s2, worst := 0, 1, math.Inf(-1)
	for i := range entries {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].box.union(entries[j].box).area() -
				entries[i].box.area() - entries[j].box.area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	g1 := []rtEntry{entries[s1]}
	g2 := []rtEntry{entries[s2]}
	b1, b2 := entries[s1].box, entries[s2].box
	minFill := (t.maxEntries + 1) / 2
	for i, e := range entries {
		if i == s1 || i == s2 {
			continue
		}
		rest := len(entries) - i - 1
		switch {
		case len(g1)+rest+1 <= minFill: // g1 must take the rest
			g1 = append(g1, e)
			b1 = b1.union(e.box)
		case len(g2)+rest+1 <= minFill:
			g2 = append(g2, e)
			b2 = b2.union(e.box)
		case b1.enlargement(e.box) <= b2.enlargement(e.box):
			g1 = append(g1, e)
			b1 = b1.union(e.box)
		default:
			g2 = append(g2, e)
			b2 = b2.union(e.box)
		}
	}
	n.entries = g1
	return &rtNode{leaf: n.leaf, entries: g2}
}

func (t *rtree) Delete(key datum.Row, rid RID) error {
	box, err := pointRect(t.dims, key)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == nil {
		return fmt.Errorf("storage: rtree delete: empty tree")
	}
	if t.delete(t.root, box, rid) {
		t.size--
		return nil
	}
	return fmt.Errorf("storage: rtree delete: entry not found")
}

func (t *rtree) delete(n *rtNode, box rect, rid RID) bool {
	if n.leaf {
		for i, e := range n.entries {
			if e.rid == rid && e.box.contains(box) && box.contains(e.box) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true
			}
		}
		return false
	}
	for i := range n.entries {
		if n.entries[i].box.intersects(box) && t.delete(n.entries[i].child, box, rid) {
			if len(n.entries[i].child.entries) > 0 {
				n.entries[i].box = n.entries[i].child.mbr()
			}
			return true
		}
	}
	return false
}

// Search implements a window query: lo.Key and hi.Key are the per-
// dimension minima and maxima. Unbounded sides extend to ±infinity.
// Both bounds are treated as inclusive, matching the optimizer's
// window-predicate extraction; exclusive spatial bounds are re-checked
// by the residual predicate at execution.
func (t *rtree) Search(lo, hi Bound) EntryIterator {
	win := rect{min: make([]float64, t.dims), max: make([]float64, t.dims)}
	for i := 0; i < t.dims; i++ {
		win.min[i] = math.Inf(-1)
		win.max[i] = math.Inf(1)
	}
	fill := func(b Bound, dst []float64) {
		if b.Unbounded {
			return
		}
		for i, v := range b.Key {
			if i >= t.dims {
				break
			}
			if !v.IsNull() {
				dst[i] = v.Float()
			}
		}
	}
	fill(lo, win.min)
	fill(hi, win.max)

	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Entry
	if t.root != nil {
		t.collect(t.root, win, &out)
	}
	return &sliceEntryIterator{entries: out}
}

func (t *rtree) collect(n *rtNode, win rect, out *[]Entry) {
	t.stats.ReadIndex()
	for _, e := range n.entries {
		if !win.intersects(e.box) {
			continue
		}
		if n.leaf {
			*out = append(*out, Entry{Key: e.key, RID: e.rid})
		} else {
			t.collect(e.child, win, out)
		}
	}
}

func (t *rtree) Len() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// sliceEntryIterator streams a materialized entry list.
type sliceEntryIterator struct {
	entries []Entry
	i       int
}

func (it *sliceEntryIterator) Next() (Entry, bool) {
	if it.i >= len(it.entries) {
		return Entry{}, false
	}
	e := it.entries[it.i]
	it.i++
	return e, true
}

func (it *sliceEntryIterator) Close() {}
