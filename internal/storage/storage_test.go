package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datum"
)

func intRow(vals ...int64) datum.Row {
	r := make(datum.Row, len(vals))
	for i, v := range vals {
		r[i] = datum.NewInt(v)
	}
	return r
}

func TestHeapInsertFetchScan(t *testing.T) {
	stats := &IOStats{}
	rel, err := NewHeapManager(4).Create("T", 2, stats)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := int64(0); i < 10; i++ {
		rid, err := rel.Insert(intRow(i, i*10))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if rel.RowCount() != 10 {
		t.Fatalf("RowCount = %d", rel.RowCount())
	}
	if rel.PageCount() != 3 { // 4 rows/page → ceil(10/4)
		t.Fatalf("PageCount = %d", rel.PageCount())
	}
	r, ok := rel.Fetch(rids[7])
	if !ok || r[0].Int() != 7 {
		t.Fatalf("Fetch: %v %v", r, ok)
	}
	// Scan sees all rows once.
	seen := map[int64]bool{}
	it := rel.Scan()
	defer it.Close()
	for {
		row, _, ok := it.Next()
		if !ok {
			break
		}
		seen[row[0].Int()] = true
	}
	if len(seen) != 10 {
		t.Fatalf("scan saw %d rows", len(seen))
	}
}

func TestHeapDeleteUpdate(t *testing.T) {
	rel, _ := NewHeapManager(4).Create("T", 1, &IOStats{})
	rid1, _ := rel.Insert(intRow(1))
	rid2, _ := rel.Insert(intRow(2))
	if err := rel.Delete(rid1); err != nil {
		t.Fatal(err)
	}
	if err := rel.Delete(rid1); err == nil {
		t.Error("double delete must fail")
	}
	if _, ok := rel.Fetch(rid1); ok {
		t.Error("deleted row visible")
	}
	if rel.RowCount() != 1 {
		t.Error("count after delete")
	}
	if err := rel.Update(rid2, intRow(20)); err != nil {
		t.Fatal(err)
	}
	r, _ := rel.Fetch(rid2)
	if r[0].Int() != 20 {
		t.Error("update not visible")
	}
	if err := rel.Update(rid1, intRow(0)); err == nil {
		t.Error("update of deleted row must fail")
	}
	if err := rel.Update(rid2, intRow(1, 2)); err == nil {
		t.Error("width mismatch must fail")
	}
	if _, err := rel.Insert(intRow(1, 2)); err == nil {
		t.Error("insert width mismatch must fail")
	}
	if err := rel.Delete(RID{Page: 99, Slot: 0}); err == nil {
		t.Error("bad rid must fail")
	}
	rel.Truncate()
	if rel.RowCount() != 0 || rel.PageCount() != 0 {
		t.Error("truncate")
	}
}

func TestHeapScanSkipsDeleted(t *testing.T) {
	rel, _ := NewHeapManager(4).Create("T", 1, &IOStats{})
	var rids []RID
	for i := int64(0); i < 8; i++ {
		rid, _ := rel.Insert(intRow(i))
		rids = append(rids, rid)
	}
	for i := 0; i < 8; i += 2 {
		rel.Delete(rids[i])
	}
	n := 0
	it := rel.Scan()
	for {
		row, _, ok := it.Next()
		if !ok {
			break
		}
		if row[0].Int()%2 == 0 {
			t.Error("deleted row surfaced")
		}
		n++
	}
	if n != 4 {
		t.Errorf("scan saw %d rows, want 4", n)
	}
}

func TestHeapIOAccounting(t *testing.T) {
	stats := &IOStats{}
	rel, _ := NewHeapManager(10).Create("T", 1, stats)
	for i := int64(0); i < 100; i++ {
		rel.Insert(intRow(i))
	}
	stats.Reset()
	it := rel.Scan()
	for {
		if _, _, ok := it.Next(); !ok {
			break
		}
	}
	reads, _, _ := stats.Snapshot()
	if reads != 10 { // 100 rows / 10 per page
		t.Errorf("scan page reads = %d, want 10", reads)
	}
}

func TestIOStatsNilSafe(t *testing.T) {
	var s *IOStats
	s.ReadPage()
	s.WritePage()
	s.ReadIndex() // must not panic
}

func TestFixedStorageManager(t *testing.T) {
	// The paper's worked example: a storage manager for fixed-length
	// records only, but extremely efficient.
	stats := &IOStats{}
	rel, err := NewFixedManager().Create("F", 2, stats)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := rel.Insert(intRow(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rel.Insert(datum.Row{datum.NewString("x"), datum.NewInt(1)}); err == nil {
		t.Error("FIXED must reject variable-length values")
	}
	if err := rel.Update(rid, datum.Row{datum.NewString("x"), datum.NewInt(1)}); err == nil {
		t.Error("FIXED update must reject variable-length values")
	}
	r, ok := rel.Fetch(rid)
	if !ok || r[1].Int() != 2 {
		t.Error("fetch")
	}
	if err := rel.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if rel.RowCount() != 0 {
		t.Error("count")
	}
	// Density: 1000 fixed rows use fewer simulated pages than heap.
	heap, _ := NewHeapManager(64).Create("H", 1, stats)
	fixed, _ := NewFixedManager().Create("F2", 1, stats)
	for i := int64(0); i < 1000; i++ {
		heap.Insert(intRow(i))
		fixed.Insert(intRow(i))
	}
	if fixed.PageCount() >= heap.PageCount() {
		t.Errorf("fixed pages %d !< heap pages %d", fixed.PageCount(), heap.PageCount())
	}
}

func TestRegistryDefaults(t *testing.T) {
	r := NewRegistry()
	if m, err := r.StorageManager(""); err != nil || m.Name() != "HEAP" {
		t.Error("default storage manager")
	}
	if m, err := r.AccessMethod(""); err != nil || m.Name() != "BTREE" {
		t.Error("default access method")
	}
	if _, err := r.StorageManager("NOPE"); err == nil {
		t.Error("unknown manager must fail")
	}
	if _, err := r.AccessMethod("NOPE"); err == nil {
		t.Error("unknown method must fail")
	}
	// DBC registration.
	r.RegisterStorageManager(NewFixedManager())
	if m, err := r.StorageManager("FIXED"); err != nil || m.Name() != "FIXED" {
		t.Error("registered manager not found")
	}
	r.RegisterAccessMethod(RTreeMethod{})
	if m, err := r.AccessMethod("RTREE"); err != nil || !m.Caps().Spatial {
		t.Error("registered rtree not found")
	}
	names := r.StorageManagerNames()
	if len(names) != 2 || names[0] != "FIXED" || names[1] != "HEAP" {
		t.Errorf("manager names = %v", names)
	}
	if len(r.AccessMethodNames()) != 2 {
		t.Errorf("method names = %v", r.AccessMethodNames())
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	// HEAP and BTREE are seeded; re-registering either must fail with a
	// typed *DuplicateError, not silently overwrite — tables record the
	// manager name in the catalog, so a swap would reroute them.
	var dup *DuplicateError
	if err := r.RegisterStorageManager(NewHeapManager(64)); !errors.As(err, &dup) {
		t.Fatalf("duplicate manager: got %v, want *DuplicateError", err)
	} else if dup.Kind != "storage manager" || dup.Name != "HEAP" {
		t.Fatalf("duplicate manager error = %+v", dup)
	}
	if err := r.RegisterAccessMethod(BTreeMethod{}); !errors.As(err, &dup) {
		t.Fatalf("duplicate method: got %v, want *DuplicateError", err)
	} else if dup.Kind != "access method" || dup.Name != "BTREE" {
		t.Fatalf("duplicate method error = %+v", dup)
	}
	// A fresh name registers fine, and only its first registration wins.
	if err := r.RegisterAccessMethod(RTreeMethod{}); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterAccessMethod(RTreeMethod{}); !errors.As(err, &dup) {
		t.Fatalf("second RTREE registration: got %v", err)
	}
	// Replace* is the sanctioned in-place swap (fault decoration).
	before, _ := r.StorageManager("HEAP")
	r.ReplaceStorageManager(NewHeapManager(64))
	after, err := r.StorageManager("HEAP")
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Fatal("ReplaceStorageManager did not swap the manager")
	}
}

func TestRegistryDefaultStorageManager(t *testing.T) {
	r := NewRegistry()
	if got := r.DefaultStorageManager(); got != "HEAP" {
		t.Fatalf("initial default = %q, want HEAP", got)
	}
	if err := r.SetDefaultStorageManager("NOPE"); err == nil {
		t.Fatal("setting an unregistered default must fail")
	}
	if err := r.RegisterStorageManager(NewFixedManager()); err != nil {
		t.Fatal(err)
	}
	if err := r.SetDefaultStorageManager("FIXED"); err != nil {
		t.Fatal(err)
	}
	if m, err := r.StorageManager(""); err != nil || m.Name() != "FIXED" {
		t.Fatalf("empty lookup after SetDefault: %v, %v", m, err)
	}
}

// ---------------------------------------------------------------------
// B-tree

func newBTree(t *testing.T, unique bool) Attachment {
	t.Helper()
	at, err := BTreeMethod{}.New([]datum.TypeID{datum.TInt}, unique, &IOStats{})
	if err != nil {
		t.Fatal(err)
	}
	return at
}

func collectKeys(t *testing.T, it EntryIterator) []int64 {
	t.Helper()
	var out []int64
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, e.Key[0].Int())
	}
	it.Close()
	return out
}

func TestBTreeOrderedScan(t *testing.T) {
	bt := newBTree(t, false)
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(1000)
	for _, v := range perm {
		if err := bt.Insert(intRow(int64(v)), RID{Page: int32(v), Slot: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if bt.Len() != 1000 {
		t.Fatalf("Len = %d", bt.Len())
	}
	keys := collectKeys(t, bt.Search(Unbounded, Unbounded))
	if len(keys) != 1000 {
		t.Fatalf("scan returned %d keys", len(keys))
	}
	for i, k := range keys {
		if k != int64(i) {
			t.Fatalf("keys[%d] = %d, not sorted", i, k)
		}
	}
}

func TestBTreeRangeSearch(t *testing.T) {
	bt := newBTree(t, false)
	for i := int64(0); i < 100; i++ {
		bt.Insert(intRow(i), RID{Page: int32(i)})
	}
	cases := []struct {
		lo, hi     Bound
		first, num int64
	}{
		{Include(intRow(10)), Include(intRow(20)), 10, 11},
		{Exclude(intRow(10)), Include(intRow(20)), 11, 10},
		{Include(intRow(10)), Exclude(intRow(20)), 10, 10},
		{Unbounded, Include(intRow(5)), 0, 6},
		{Include(intRow(95)), Unbounded, 95, 5},
		{Include(intRow(200)), Unbounded, -1, 0},
		{Include(intRow(50)), Include(intRow(50)), 50, 1},
		{Include(intRow(60)), Include(intRow(40)), -1, 0}, // empty range
	}
	for i, tc := range cases {
		keys := collectKeys(t, bt.Search(tc.lo, tc.hi))
		if int64(len(keys)) != tc.num {
			t.Errorf("case %d: %d keys, want %d", i, len(keys), tc.num)
			continue
		}
		if tc.num > 0 && keys[0] != tc.first {
			t.Errorf("case %d: first = %d, want %d", i, keys[0], tc.first)
		}
	}
}

func TestBTreeDuplicates(t *testing.T) {
	bt := newBTree(t, false)
	// 300 duplicates of each of 5 keys forces duplicates to span leaves.
	for i := 0; i < 300; i++ {
		for k := int64(0); k < 5; k++ {
			bt.Insert(intRow(k), RID{Page: int32(k), Slot: int32(i)})
		}
	}
	keys := collectKeys(t, bt.Search(Include(intRow(2)), Include(intRow(2))))
	if len(keys) != 300 {
		t.Fatalf("equality over duplicates returned %d, want 300", len(keys))
	}
	for _, k := range keys {
		if k != 2 {
			t.Fatal("wrong key in equality search")
		}
	}
	// Delete one specific duplicate.
	if err := bt.Delete(intRow(2), RID{Page: 2, Slot: 150}); err != nil {
		t.Fatal(err)
	}
	if got := len(collectKeys(t, bt.Search(Include(intRow(2)), Include(intRow(2))))); got != 299 {
		t.Fatalf("after delete: %d, want 299", got)
	}
	if err := bt.Delete(intRow(2), RID{Page: 2, Slot: 150}); err == nil {
		t.Error("deleting missing entry must fail")
	}
}

func TestBTreeUnique(t *testing.T) {
	bt := newBTree(t, true)
	if err := bt.Insert(intRow(1), RID{Page: 1}); err != nil {
		t.Fatal(err)
	}
	if err := bt.Insert(intRow(1), RID{Page: 2}); err == nil {
		t.Error("unique violation must fail")
	}
	if err := bt.Insert(intRow(2), RID{Page: 2}); err != nil {
		t.Error("distinct key must succeed")
	}
}

func TestBTreeCompositeKeyPrefix(t *testing.T) {
	at, err := BTreeMethod{}.New([]datum.TypeID{datum.TInt, datum.TString}, false, &IOStats{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		for _, s := range []string{"a", "b", "c"} {
			at.Insert(datum.Row{datum.NewInt(i), datum.NewString(s)}, RID{Page: int32(i)})
		}
	}
	// Prefix search on the first column only.
	keys := collectKeys(t, at.Search(Include(intRow(5)), Include(intRow(5))))
	if len(keys) != 3 {
		t.Fatalf("prefix search returned %d, want 3", len(keys))
	}
	// Full composite key.
	it := at.Search(
		Include(datum.Row{datum.NewInt(5), datum.NewString("b")}),
		Include(datum.Row{datum.NewInt(5), datum.NewString("b")}))
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("composite equality returned %d, want 1", n)
	}
}

func TestBTreeEmptyAndErrors(t *testing.T) {
	bt := newBTree(t, false)
	if keys := collectKeys(t, bt.Search(Unbounded, Unbounded)); len(keys) != 0 {
		t.Error("empty tree scan")
	}
	if err := bt.Delete(intRow(1), RID{}); err == nil {
		t.Error("delete from empty tree must fail")
	}
	if _, err := (BTreeMethod{}).New(nil, false, nil); err == nil {
		t.Error("zero key columns must fail")
	}
}

func TestBTreePropertySortedAndComplete(t *testing.T) {
	f := func(vals []int16) bool {
		bt, _ := BTreeMethod{}.New([]datum.TypeID{datum.TInt}, false, &IOStats{})
		want := map[int64]int{}
		for i, v := range vals {
			bt.Insert(intRow(int64(v)), RID{Page: int32(i)})
			want[int64(v)]++
		}
		it := bt.Search(Unbounded, Unbounded)
		var prev int64
		first := true
		got := map[int64]int{}
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			k := e.Key[0].Int()
			if !first && k < prev {
				return false
			}
			prev, first = k, false
			got[k]++
		}
		if len(got) != len(want) {
			return false
		}
		for k, n := range want {
			if got[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------------
// R-tree

func pt(x, y float64) datum.Row {
	return datum.Row{datum.NewFloat(x), datum.NewFloat(y)}
}

func newRTree(t *testing.T) Attachment {
	t.Helper()
	at, err := RTreeMethod{}.New([]datum.TypeID{datum.TFloat, datum.TFloat}, false, &IOStats{})
	if err != nil {
		t.Fatal(err)
	}
	return at
}

func TestRTreeWindowQuery(t *testing.T) {
	rt := newRTree(t)
	id := int32(0)
	for x := 0.0; x < 20; x++ {
		for y := 0.0; y < 20; y++ {
			if err := rt.Insert(pt(x, y), RID{Page: id}); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	if rt.Len() != 400 {
		t.Fatalf("Len = %d", rt.Len())
	}
	it := rt.Search(Include(pt(5, 5)), Include(pt(7, 7)))
	n := 0
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		x, y := e.Key[0].Float(), e.Key[1].Float()
		if x < 5 || x > 7 || y < 5 || y > 7 {
			t.Fatalf("point (%v,%v) outside window", x, y)
		}
		n++
	}
	if n != 9 {
		t.Fatalf("window returned %d points, want 9", n)
	}
}

func TestRTreeHalfOpenWindow(t *testing.T) {
	rt := newRTree(t)
	for i := 0; i < 50; i++ {
		rt.Insert(pt(float64(i), float64(i)), RID{Page: int32(i)})
	}
	// Only x-min bounded: lo=(40, -inf).
	it := rt.Search(Bound{Key: datum.Row{datum.NewFloat(40), datum.Null}, Inclusive: true}, Unbounded)
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("half-open window returned %d, want 10", n)
	}
}

func TestRTreeDelete(t *testing.T) {
	rt := newRTree(t)
	for i := 0; i < 100; i++ {
		rt.Insert(pt(float64(i%10), float64(i/10)), RID{Page: int32(i)})
	}
	if err := rt.Delete(pt(3, 4), RID{Page: 43}); err != nil {
		t.Fatal(err)
	}
	if rt.Len() != 99 {
		t.Error("len after delete")
	}
	if err := rt.Delete(pt(3, 4), RID{Page: 43}); err == nil {
		t.Error("double delete must fail")
	}
	it := rt.Search(Include(pt(3, 4)), Include(pt(3, 4)))
	if _, ok := it.Next(); ok {
		t.Error("deleted point still found")
	}
}

func TestRTreeValidation(t *testing.T) {
	if _, err := (RTreeMethod{}).New([]datum.TypeID{datum.TString}, false, nil); err == nil {
		t.Error("non-numeric keys must fail")
	}
	if _, err := (RTreeMethod{}).New([]datum.TypeID{datum.TFloat}, true, nil); err == nil {
		t.Error("unique rtree must fail")
	}
	if _, err := (RTreeMethod{}).New(nil, false, nil); err == nil {
		t.Error("empty keys must fail")
	}
	rt := newRTree(t)
	if err := rt.Insert(datum.Row{datum.NewFloat(1)}, RID{}); err == nil {
		t.Error("wrong key width must fail")
	}
	if err := rt.Insert(datum.Row{datum.Null, datum.NewFloat(1)}, RID{}); err == nil {
		t.Error("NULL key must fail")
	}
	if err := rt.Delete(pt(1, 1), RID{}); err == nil {
		t.Error("delete from empty rtree must fail")
	}
}

func TestRTreePropertyWindowComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rt := newRTree(t)
	type p struct{ x, y float64 }
	var pts []p
	for i := 0; i < 500; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		pts = append(pts, p{x, y})
		rt.Insert(pt(x, y), RID{Page: int32(i)})
	}
	for trial := 0; trial < 20; trial++ {
		x1, y1 := rng.Float64()*80, rng.Float64()*80
		x2, y2 := x1+rng.Float64()*20, y1+rng.Float64()*20
		want := 0
		for _, q := range pts {
			if q.x >= x1 && q.x <= x2 && q.y >= y1 && q.y <= y2 {
				want++
			}
		}
		it := rt.Search(Include(pt(x1, y1)), Include(pt(x2, y2)))
		got := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			got++
		}
		if got != want {
			t.Fatalf("trial %d: window [%v,%v]x[%v,%v]: got %d, want %d",
				trial, x1, x2, y1, y2, got, want)
		}
	}
}

func TestCompareKeys(t *testing.T) {
	cases := []struct {
		a, b datum.Row
		want int
	}{
		{intRow(1), intRow(2), -1},
		{intRow(2, 1), intRow(2, 2), -1},
		{intRow(2), intRow(2, 1), -1}, // prefix is less
		{intRow(2, 1), intRow(2, 1), 0},
		{datum.Row{datum.Null}, intRow(0), -1}, // NULLs first
	}
	for _, tc := range cases {
		if got := CompareKeys(tc.a, tc.b); got != tc.want {
			t.Errorf("CompareKeys(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := CompareKeys(tc.b, tc.a); got != -tc.want {
			t.Errorf("CompareKeys(%v,%v) = %d, want %d", tc.b, tc.a, got, -tc.want)
		}
	}
}

func TestRIDOrdering(t *testing.T) {
	a, b := RID{Page: 1, Slot: 5}, RID{Page: 2, Slot: 0}
	if !a.Less(b) || b.Less(a) {
		t.Error("page ordering")
	}
	c := RID{Page: 1, Slot: 6}
	if !a.Less(c) || c.Less(a) {
		t.Error("slot ordering")
	}
	if a.String() != "(1,5)" {
		t.Errorf("String = %s", a.String())
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	bt, _ := BTreeMethod{}.New([]datum.TypeID{datum.TInt}, false, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Insert(intRow(int64(i*2654435761)), RID{Page: int32(i)})
	}
}

func BenchmarkBTreeSearch(b *testing.B) {
	bt, _ := BTreeMethod{}.New([]datum.TypeID{datum.TInt}, false, nil)
	for i := int64(0); i < 100000; i++ {
		bt.Insert(intRow(i), RID{Page: int32(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i % 100000)
		it := bt.Search(Include(intRow(k)), Include(intRow(k)))
		it.Next()
		it.Close()
	}
}

func BenchmarkHeapScan(b *testing.B) {
	rel, _ := NewHeapManager(64).Create("T", 2, nil)
	for i := int64(0); i < 10000; i++ {
		rel.Insert(intRow(i, i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := rel.Scan()
		for {
			if _, _, ok := it.Next(); !ok {
				break
			}
		}
	}
}

func ExampleRegistry() {
	reg := NewRegistry()
	reg.RegisterAccessMethod(RTreeMethod{})
	fmt.Println(reg.AccessMethodNames())
	// Output: [BTREE RTREE]
}
