package rewrite

import (
	"repro/internal/expr"
	"repro/internal/qgm"
)

// BaseRules returns the rule set provided for the base system
// operations, falling into the paper's three main classes — predicate
// migration, projection push-down, and operation merging — plus the
// subquery-to-join conversions and redundant-join elimination.
func BaseRules() []*Rule {
	return []*Rule{
		SubqueryToJoinRule(),
		SubqueryToDistinctJoinRule(),
		OperationMergeRule(),
		PredicatePushdownRule(),
		PredicateIntoGroupByRule(),
		ProjectionPushdownRule(),
		RedundantJoinRule(),
		RecursiveSelectionPushdownRule(),
		PredicateReplicationRule(),
	}
}

// SubqueryToJoinRule is the paper's Rule 1 (Subquery to Join):
//
//	IF OP1.type=Select ∧ Q2.type='E' ∧
//	   (at each evaluation of the existential predicate at most one
//	    tuple of T2 satisfies the predicate)
//	THEN Q2.type = 'F'  /* convert to join */
//
// Uniqueness is established when the subquery's output is provably
// duplicate-free (DISTINCT, GROUP BY, set operation, or projection of a
// unique-index key) and the quantifier is linked by an equality on its
// single output column.
func SubqueryToJoinRule() *Rule {
	match := func(ctx *Context, b *qgm.Box) *qgm.Quantifier {
		if b.Kind != qgm.KindSelect {
			return nil
		}
		for _, q := range b.Quants {
			if q.Type != qgm.QExists || q.Negated || q.SetPred != "ANY" {
				continue
			}
			if len(q.Input.Head) != 1 || !ProvablyDistinct(q.Input) {
				continue
			}
			if EqualityLinkFor(b, q) == nil {
				continue
			}
			if _, sole := ctx.SoleRanger(q.Input); sole == nil {
				continue
			}
			return q
		}
		return nil
	}
	return &Rule{
		Name:     "subquery-to-join",
		Class:    "subquery",
		Priority: 90,
		Condition: func(ctx *Context, b *qgm.Box) bool {
			return match(ctx, b) != nil
		},
		Action: func(ctx *Context, b *qgm.Box) error {
			q := match(ctx, b)
			q.Type = qgm.ForEach
			q.SetPred = ""
			return nil
		},
	}
}

// SubqueryToDistinctJoinRule is the generalized conversion ([KIM82],
// [GANS87]): an existential quantifier linked by an equality on its
// only output column can always become a join over the
// duplicate-eliminated subquery, because x IN S ≡ x ⋈ DISTINCT(S).
func SubqueryToDistinctJoinRule() *Rule {
	match := func(ctx *Context, b *qgm.Box) *qgm.Quantifier {
		if b.Kind != qgm.KindSelect {
			return nil
		}
		for _, q := range b.Quants {
			if q.Type != qgm.QExists || q.Negated || q.SetPred != "ANY" {
				continue
			}
			if len(q.Input.Head) != 1 {
				continue
			}
			if q.Input.Kind != qgm.KindSelect && q.Input.Kind != qgm.KindGroupBy {
				continue
			}
			// PRESERVE is frozen: the rule may not strengthen it to
			// ENFORCE (audit mode would flag the transition).
			if q.Input.Distinct == qgm.PreserveDuplicates {
				continue
			}
			if EqualityLinkFor(b, q) == nil {
				continue
			}
			// Correlated subqueries depend on the outer tuple; forcing
			// DISTINCT per evaluation is still per-outer-tuple, which a
			// plain join cannot express — require no correlation.
			if correlated(ctx, q.Input, b) {
				continue
			}
			if _, sole := ctx.SoleRanger(q.Input); sole == nil {
				continue
			}
			return q
		}
		return nil
	}
	return &Rule{
		Name:     "subquery-to-distinct-join",
		Class:    "subquery",
		Priority: 80,
		Condition: func(ctx *Context, b *qgm.Box) bool {
			return match(ctx, b) != nil
		},
		Action: func(ctx *Context, b *qgm.Box) error {
			q := match(ctx, b)
			q.Input.Distinct = qgm.EnforceDistinct
			q.Type = qgm.ForEach
			q.SetPred = ""
			return nil
		},
	}
}

// correlated reports whether any expression inside sub (or boxes below
// it) references a quantifier that does not belong to sub's subtree —
// i.e. the subquery depends on outer tuples.
func correlated(ctx *Context, sub *qgm.Box, outer *qgm.Box) bool {
	own := map[int]bool{}
	var collect func(b *qgm.Box, seen map[*qgm.Box]bool)
	collect = func(b *qgm.Box, seen map[*qgm.Box]bool) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, q := range b.Quants {
			own[q.QID] = true
			collect(q.Input, seen)
		}
	}
	collect(sub, map[*qgm.Box]bool{})
	foreign := false
	check := func(e expr.Expr) {
		expr.Walk(e, func(x expr.Expr) bool {
			if c, ok := x.(*expr.Col); ok && c.QID >= 0 && !own[c.QID] {
				foreign = true
				return false
			}
			return true
		})
	}
	seen := map[*qgm.Box]bool{}
	var scan func(b *qgm.Box)
	scan = func(b *qgm.Box) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, hc := range b.Head {
			if hc.Expr != nil {
				check(hc.Expr)
			}
		}
		for _, p := range b.Preds {
			check(p.Expr)
		}
		for _, ge := range b.GroupBy {
			check(ge)
		}
		for _, q := range b.Quants {
			scan(q.Input)
		}
	}
	scan(sub)
	return foreign
}

// OperationMergeRule is the paper's Rule 2 (Operation Merging):
//
//	IF OP1.type = Select ∧ OP2.type = Select ∧ Q2.type = 'F'
//	   ∧ NOT (T1.distinct = false ∧ OP2.eliminate-duplicate = true)
//	THEN merge OP2 into OP1;
//	     IF OP2.eliminate-duplicate THEN OP1.eliminate-duplicate
//
// View merging falls into this class: a view reference is just a
// quantifier over the view's SELECT box.
func OperationMergeRule() *Rule {
	match := func(ctx *Context, b *qgm.Box) *qgm.Quantifier {
		if b.Kind != qgm.KindSelect {
			return nil
		}
		for _, q := range b.Quants {
			if q.Type != qgm.ForEach || q.Input.Kind != qgm.KindSelect {
				continue
			}
			lower := q.Input
			// The paper's duplicate condition.
			if !b.OutputDistinct() && lower.Distinct == qgm.EnforceDistinct {
				continue
			}
			// Sole ownership: merging a shared table expression would
			// duplicate work; the merge-vs-materialize choice for
			// shared boxes is the CHOOSE operation's job.
			if _, sole := ctx.SoleRanger(lower); sole == nil {
				continue
			}
			return q
		}
		return nil
	}
	return &Rule{
		Name:     "operation-merge",
		Class:    "merge",
		Priority: 70,
		Condition: func(ctx *Context, b *qgm.Box) bool {
			return match(ctx, b) != nil
		},
		Action: func(ctx *Context, b *qgm.Box) error {
			q := match(ctx, b)
			return MergeQuant(ctx, b, q)
		},
	}
}

// PredicatePushdownRule migrates a predicate referencing exactly one
// local quantifier down into the derived table it ranges over,
// minimizing the data produced by the lower operation (predicate
// migration class). The "from" and "to" halves the paper describes are
// both checked by PredicatePushable: SELECT gives predicates away and
// SELECT receives them.
func PredicatePushdownRule() *Rule {
	match := func(ctx *Context, b *qgm.Box) (*qgm.Predicate, *qgm.Quantifier) {
		if b.Kind != qgm.KindSelect && b.Kind != qgm.KindOuterJoin {
			return nil, nil
		}
		for _, p := range b.Preds {
			for _, q := range b.Quants {
				if b.Kind == qgm.KindOuterJoin && q.Type == qgm.PreserveForeach {
					// The base rule never pushes predicates out of an
					// outer join's preserved side: they are part of the
					// join condition and removing tuples early would
					// change which rows are preserved... unless pushed
					// *through* the PF quantifier by the outer-join
					// extension rule (registered separately).
					continue
				}
				if b.Kind == qgm.KindOuterJoin && q.Type == qgm.ForEach {
					// ON-clause predicates of the null-producing side
					// must stay with the join.
					continue
				}
				if PredicatePushable(ctx, b, p, q) {
					return p, q
				}
			}
		}
		return nil, nil
	}
	return &Rule{
		Name:     "predicate-pushdown",
		Class:    "predmigration",
		Priority: 60,
		Condition: func(ctx *Context, b *qgm.Box) bool {
			p, _ := match(ctx, b)
			return p != nil
		},
		Action: func(ctx *Context, b *qgm.Box) error {
			p, q := match(ctx, b)
			return PushPredicate(ctx, b, p, q)
		},
	}
}

// PredicateIntoGroupByRule pushes a predicate that references only
// grouping columns through a GROUP BY box into its input: filtering
// whole groups early is equivalent to filtering their rows first.
func PredicateIntoGroupByRule() *Rule {
	match := func(ctx *Context, b *qgm.Box) (*qgm.Predicate, *qgm.Quantifier) {
		if b.Kind != qgm.KindSelect {
			return nil, nil
		}
		for _, q := range b.Quants {
			if q.Type != qgm.ForEach || q.Input.Kind != qgm.KindGroupBy {
				continue
			}
			gb := q.Input
			if _, sole := ctx.SoleRanger(gb); sole == nil {
				continue
			}
			nGroup := len(gb.GroupBy)
			for _, p := range b.Preds {
				if expr.HasSubplan(p.Expr) || expr.HasAggregate(p.Expr) {
					continue
				}
				refs := p.QIDs()
				if len(refs) != 1 || !refs[q.QID] {
					continue
				}
				onlyGroupCols := true
				for _, c := range expr.Cols(p.Expr) {
					if c.QID == q.QID && c.Ord >= nGroup {
						onlyGroupCols = false
						break
					}
				}
				if onlyGroupCols {
					return p, q
				}
			}
		}
		return nil, nil
	}
	return &Rule{
		Name:     "predicate-through-groupby",
		Class:    "predmigration",
		Priority: 55,
		Condition: func(ctx *Context, b *qgm.Box) bool {
			p, _ := match(ctx, b)
			return p != nil
		},
		Action: func(ctx *Context, b *qgm.Box) error {
			p, q := match(ctx, b)
			gb := q.Input
			// Rewrite through the GROUP BY head (group columns are
			// col refs over gb's own quantifier), landing the predicate
			// on the group box's input quantifier's columns.
			ne := expr.SubstituteCols(p.Expr, func(c *expr.Col) expr.Expr {
				if c.QID != q.QID {
					return nil
				}
				return gb.Head[c.Ord].Expr
			})
			gb.Preds = append(gb.Preds, &qgm.Predicate{Expr: ne})
			for i, x := range b.Preds {
				if x == p {
					b.Preds = append(b.Preds[:i], b.Preds[i+1:]...)
					break
				}
			}
			// A GROUPBY box does not itself filter; immediately migrate
			// the new predicate into its input SELECT box when possible
			// to keep the graph executable.
			in := gb.Quants[0]
			np := gb.Preds[len(gb.Preds)-1]
			if PredicatePushable(ctx, gb, np, in) {
				return PushPredicate(ctx, gb, np, in)
			}
			return nil
		},
	}
}

// ProjectionPushdownRule trims unused output columns of derived tables
// ("rules for projection push-down avoid the retrieval of unused
// columns of tables or views"); it interacts with predicate migration —
// once a predicate moves down, columns only it referenced become
// unused above.
func ProjectionPushdownRule() *Rule {
	canTrim := func(ctx *Context, b *qgm.Box) bool {
		for _, q := range b.Quants {
			lower := q.Input
			if lower.Kind != qgm.KindSelect && lower.Kind != qgm.KindGroupBy {
				continue
			}
			if lower.Distinct == qgm.EnforceDistinct {
				continue
			}
			used := usedOrdinals(ctx, lower)
			if len(used) > 0 && len(used) < len(lower.Head) {
				return true
			}
		}
		return false
	}
	return &Rule{
		Name:     "projection-pushdown",
		Class:    "projection",
		Priority: 40,
		Condition: func(ctx *Context, b *qgm.Box) bool {
			return canTrim(ctx, b)
		},
		Action: func(ctx *Context, b *qgm.Box) error {
			for _, q := range b.Quants {
				if _, err := TrimHead(ctx, q.Input); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// RedundantJoinRule eliminates a self-join on a complete unique key
// ([OTT82], "removing redundant join operations in queries involving
// views"): if q1 and q2 range over the same stored table and are joined
// by equality on every column of a unique index, the rows are
// identical, so q2's references collapse onto q1.
func RedundantJoinRule() *Rule {
	match := func(ctx *Context, b *qgm.Box) (*qgm.Quantifier, *qgm.Quantifier) {
		if b.Kind != qgm.KindSelect {
			return nil, nil
		}
		for i, q1 := range b.Quants {
			if q1.Type != qgm.ForEach || q1.Input.Kind != qgm.KindBase {
				continue
			}
			for _, q2 := range b.Quants[i+1:] {
				if q2.Type != qgm.ForEach || q2.Input != q1.Input {
					continue
				}
				// Collect ordinals equated between q1 and q2.
				equated := map[int]bool{}
				for _, p := range b.Preds {
					cmp, ok := p.Expr.(*expr.Cmp)
					if !ok || cmp.Op != expr.OpEq {
						continue
					}
					c1, ok1 := cmp.L.(*expr.Col)
					c2, ok2 := cmp.R.(*expr.Col)
					if !ok1 || !ok2 {
						continue
					}
					if c1.QID == q1.QID && c2.QID == q2.QID && c1.Ord == c2.Ord {
						equated[c1.Ord] = true
					}
					if c1.QID == q2.QID && c2.QID == q1.QID && c1.Ord == c2.Ord {
						equated[c1.Ord] = true
					}
				}
				for _, ix := range q1.Input.Table.Indexes {
					if !ix.Unique {
						continue
					}
					all := true
					for _, k := range ix.KeyCols {
						if !equated[k] {
							all = false
							break
						}
					}
					if all {
						return q1, q2
					}
				}
			}
		}
		return nil, nil
	}
	return &Rule{
		Name:     "redundant-join-elimination",
		Class:    "merge",
		Priority: 75,
		Condition: func(ctx *Context, b *qgm.Box) bool {
			q1, _ := match(ctx, b)
			return q1 != nil
		},
		Action: func(ctx *Context, b *qgm.Box) error {
			q1, q2 := match(ctx, b)
			redirect := func(e expr.Expr) expr.Expr {
				return expr.Transform(e, func(x expr.Expr) expr.Expr {
					c, ok := x.(*expr.Col)
					if !ok || c.QID != q2.QID {
						return x
					}
					nc := *c
					nc.QID = q1.QID
					return &nc
				})
			}
			// Redirect references anywhere in the graph (the quantifier
			// may be referenced by correlated subqueries).
			for _, box := range ctx.Graph.Boxes {
				for i := range box.Head {
					if box.Head[i].Expr != nil {
						box.Head[i].Expr = redirect(box.Head[i].Expr)
					}
				}
				for _, p := range box.Preds {
					p.Expr = redirect(p.Expr)
				}
				for i := range box.GroupBy {
					box.GroupBy[i] = redirect(box.GroupBy[i])
				}
			}
			b.RemoveQuant(q2.QID)
			// Drop tautological self-equalities produced by the merge.
			var kept []*qgm.Predicate
			for _, p := range b.Preds {
				if cmp, ok := p.Expr.(*expr.Cmp); ok && cmp.Op == expr.OpEq {
					if c1, ok1 := cmp.L.(*expr.Col); ok1 {
						if c2, ok2 := cmp.R.(*expr.Col); ok2 &&
							c1.QID == c2.QID && c1.Ord == c2.Ord {
							// q1.k = q1.k: drop, but preserve its NULL
							// rejection (k IS NOT NULL) to stay exact.
							kept = append(kept, &qgm.Predicate{
								Expr: &expr.IsNull{E: cmp.L, Negated: true}})
							continue
						}
					}
				}
				kept = append(kept, p)
			}
			b.Preds = kept
			return nil
		},
	}
}

// PredicateReplicationRule implements the paper's "predicates may also
// be replicated, and replicas migrated to multiple operations to reduce
// execution cost": given an equality join predicate q1.a = q2.b and a
// constant restriction on one side (q1.a = 5, q1.a < 5, ...), an
// equivalent restriction on the other side is added. The replica then
// migrates independently (e.g. into the other table's scan, where it
// may enable an index).
func PredicateReplicationRule() *Rule {
	type repl struct {
		newPred expr.Expr
	}
	match := func(ctx *Context, b *qgm.Box) *repl {
		if b.Kind != qgm.KindSelect {
			return nil
		}
		// Collect column-equality pairs and single-column constant
		// restrictions.
		type colKey struct{ qid, ord int }
		var pairs [][2]*expr.Col
		for _, p := range b.Preds {
			cmp, ok := p.Expr.(*expr.Cmp)
			if !ok || cmp.Op != expr.OpEq {
				continue
			}
			lc, lok := cmp.L.(*expr.Col)
			rc, rok := cmp.R.(*expr.Col)
			if lok && rok && (lc.QID != rc.QID || lc.Ord != rc.Ord) {
				pairs = append(pairs, [2]*expr.Col{lc, rc})
			}
		}
		if len(pairs) == 0 {
			return nil
		}
		have := map[string]bool{}
		for _, p := range b.Preds {
			have[p.Expr.String()] = true
		}
		for _, p := range b.Preds {
			cmp, ok := p.Expr.(*expr.Cmp)
			if !ok {
				continue
			}
			// One side a column, the other constant-only.
			col, konst, op := cmp.L, cmp.R, cmp.Op
			c, isCol := col.(*expr.Col)
			if !isCol {
				col, konst, op = cmp.R, cmp.L, cmp.Op.Flip()
				c, isCol = col.(*expr.Col)
			}
			if !isCol {
				continue
			}
			if _, isConst := konst.(*expr.Const); !isConst {
				continue
			}
			_ = colKey{c.QID, c.Ord}
			for _, pr := range pairs {
				var other *expr.Col
				if pr[0].QID == c.QID && pr[0].Ord == c.Ord {
					other = pr[1]
				} else if pr[1].QID == c.QID && pr[1].Ord == c.Ord {
					other = pr[0]
				} else {
					continue
				}
				replica := &expr.Cmp{Op: op, L: other, R: konst}
				// Idempotence across migrations: a generated replica
				// may immediately be pushed elsewhere by other rules;
				// the box remembers what it generated so the rule does
				// not regenerate (and re-push) forever.
				key := "replicated:" + replica.String()
				already := false
				if b.Ext != nil {
					_, already = b.Ext[key]
				}
				if !have[replica.String()] && !already {
					return &repl{newPred: replica}
				}
			}
		}
		return nil
	}
	return &Rule{
		Name:     "predicate-replication",
		Class:    "predmigration",
		Priority: 58,
		Condition: func(ctx *Context, b *qgm.Box) bool {
			return match(ctx, b) != nil
		},
		Action: func(ctx *Context, b *qgm.Box) error {
			r := match(ctx, b)
			b.Preds = append(b.Preds, &qgm.Predicate{Expr: r.newPred})
			if b.Ext == nil {
				b.Ext = map[string]any{}
			}
			b.Ext["replicated:"+r.newPred.String()] = true
			return nil
		},
	}
}
