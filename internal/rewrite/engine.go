// Package rewrite implements Starburst's query rewrite phase (section 5
// of the paper, [HASA88]): a rule system transforming one consistent
// QGM into another, equivalent, consistent QGM for better performance.
//
// The three components the paper describes are kept orthogonal:
//
//   - the rewrite rules — condition/action pairs (here Go funcs, as the
//     paper's were C funcs), grouped into rule classes;
//   - the rule engine — forward chaining with sequential, priority, or
//     statistical control strategies and a firing budget that always
//     stops at a consistent QGM;
//   - the search facility — browses the QGM depth-first (top down) or
//     breadth-first, providing the context rules work on.
package rewrite

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"repro/internal/qgm"
)

// Context is handed to rule conditions and actions: the graph being
// rewritten plus helper queries over it.
type Context struct {
	Graph *qgm.Graph
}

// SoleRanger returns the unique quantifier ranging over box, or nil if
// the box has zero or multiple rangers. Many rules require sole
// ownership before destructive restructuring.
func (c *Context) SoleRanger(box *qgm.Box) (*qgm.Box, *qgm.Quantifier) {
	rs := c.Graph.RangersOver(box)
	if len(rs) != 1 {
		return nil, nil
	}
	return rs[0].Box, rs[0].Quant
}

// Rule is one rewrite rule: when Condition holds on a box, Action
// transforms the graph. Every rule must complete a transformation —
// turn a consistent QGM into another consistent QGM.
type Rule struct {
	Name string
	// Class groups rules so subsets can be enabled and ordered; the
	// paper's base classes are predicate migration, projection
	// push-down, and operation merging.
	Class string
	// Priority orders rules under the Priority and Statistical control
	// strategies (higher first / more likely).
	Priority int
	// Condition reports whether the rule applies to this box.
	Condition func(ctx *Context, b *qgm.Box) bool
	// Action applies the transformation.
	Action func(ctx *Context, b *qgm.Box) error
}

// Strategy selects how the engine orders candidate rules.
type Strategy int

// Control strategies (section 5: "sequential ... priority ...
// statistical").
const (
	Sequential Strategy = iota
	Priority
	Statistical
)

// SearchOrder selects how the search facility browses QGM boxes.
type SearchOrder int

// Search orders.
const (
	DepthFirst SearchOrder = iota // top down
	BreadthFirst
)

// Options configures one rewrite run.
type Options struct {
	Strategy Strategy
	Search   SearchOrder
	// Budget bounds the number of rule firings; 0 means unlimited.
	// When exhausted, processing stops at a consistent QGM state.
	Budget int
	// Classes restricts execution to the named rule classes; empty
	// means all.
	Classes []string
	// Seed drives the Statistical strategy.
	Seed int64
	// Validate runs Graph.Check after every firing (slower; used in
	// tests to prove each rule preserves consistency).
	Validate bool
	// Audit runs the deep semantic verifier after every firing and, on
	// failure, returns a structured *AuditError naming the offending
	// rule, the firing index, and a before/after dump of the box it
	// mutated. It also enforces the distinct-mode transition lattice
	// (PERMIT→ENFORCE only; PRESERVE frozen). Strictly stronger and
	// slower than Validate.
	Audit bool
}

// Engine executes rewrite rules against QGM graphs. A DB owns one
// engine; DBC extensions register additional rules into it.
type Engine struct {
	rules []*Rule
	// generation counts rule-set mutations; plan caches fold it into
	// their settings fingerprint so plans compiled under an earlier
	// rule set are never reused after a DBC registers a new rule.
	generation atomic.Int64
}

// Generation reports how many times the rule set has been mutated.
func (e *Engine) Generation() int64 { return e.generation.Load() }

// NewEngine returns an engine with no rules. Use NewDefaultEngine for
// the base system's rule set.
func NewEngine() *Engine { return &Engine{} }

// NewDefaultEngine returns an engine loaded with the base rules for the
// built-in operations (view/operation merging, subquery-to-join,
// predicate migration, projection push-down, redundant join
// elimination).
func NewDefaultEngine() *Engine {
	e := NewEngine()
	for _, r := range BaseRules() {
		e.Register(r)
	}
	return e
}

// Register adds a rule. Rules registered later run after earlier ones
// under the Sequential strategy.
func (e *Engine) Register(r *Rule) error {
	if r.Name == "" || r.Condition == nil || r.Action == nil {
		return fmt.Errorf("rewrite: rule needs Name, Condition and Action")
	}
	e.rules = append(e.rules, r)
	e.generation.Add(1)
	return nil
}

// Rules lists registered rules (for introspection and tests).
func (e *Engine) Rules() []*Rule { return append([]*Rule(nil), e.rules...) }

// Fired describes one rule firing, for EXPLAIN-style tracing.
type Fired struct {
	Rule string
	Box  int
}

// FiringCounts aggregates a firing trace per rule name, for phase
// tracing and observability.
func FiringCounts(trace []Fired) map[string]int {
	out := make(map[string]int, len(trace))
	for _, f := range trace {
		out[f.Rule]++
	}
	return out
}

// Rewrite runs rules to fixpoint (or budget exhaustion) and reports the
// firing trace.
func (e *Engine) Rewrite(g *qgm.Graph, opt Options) ([]Fired, error) {
	ctx := &Context{Graph: g}
	active := e.activeRules(opt)
	// Seed the rule-order RNG lazily: only the Statistical strategy
	// draws from it, and seeding math/rand costs ~10µs — too much to
	// pay on every statement's rewrite phase.
	var rng *rand.Rand
	if opt.Strategy == Statistical {
		rng = rand.New(rand.NewSource(opt.Seed + 1))
	}
	var trace []Fired

	for {
		if opt.Budget > 0 && len(trace) >= opt.Budget {
			return trace, nil // stop at a consistent state
		}
		boxes := e.searchOrder(g, opt.Search)
		fired := false
	boxLoop:
		for _, b := range boxes {
			order := e.ruleOrder(active, opt.Strategy, rng)
			for _, r := range order {
				if !r.Condition(ctx, b) {
					continue
				}
				var before string
				var modes map[*qgm.Box]qgm.DistinctMode
				if opt.Audit {
					before = qgm.DumpBox(b, b == g.Top)
					modes = distinctSnapshot(g)
				}
				if err := r.Action(ctx, b); err != nil {
					return trace, fmt.Errorf("rewrite: rule %s on box %d: %w", r.Name, b.ID, err)
				}
				g.GC()
				if opt.Audit {
					if aerr := auditFiring(g, r.Name, len(trace), b, before, modes); aerr != nil {
						trace = append(trace, Fired{Rule: r.Name, Box: b.ID})
						aerr.Trace = trace
						return trace, aerr
					}
				} else if opt.Validate {
					if err := g.Check(); err != nil {
						return trace, fmt.Errorf("rewrite: rule %s left inconsistent QGM: %w", r.Name, err)
					}
				}
				trace = append(trace, Fired{Rule: r.Name, Box: b.ID})
				fired = true
				break boxLoop // graph changed; restart the search
			}
		}
		if !fired {
			return trace, nil
		}
	}
}

func (e *Engine) activeRules(opt Options) []*Rule {
	if len(opt.Classes) == 0 {
		return e.rules
	}
	allowed := map[string]bool{}
	for _, c := range opt.Classes {
		allowed[c] = true
	}
	var out []*Rule
	for _, r := range e.rules {
		if allowed[r.Class] {
			out = append(out, r)
		}
	}
	return out
}

func (e *Engine) ruleOrder(rules []*Rule, s Strategy, rng *rand.Rand) []*Rule {
	out := append([]*Rule(nil), rules...)
	switch s {
	case Sequential:
		// registration order
	case Priority:
		sort.SliceStable(out, func(i, j int) bool { return out[i].Priority > out[j].Priority })
	case Statistical:
		// Weighted shuffle: each rule's weight is priority+1.
		total := 0
		for _, r := range out {
			total += r.Priority + 1
		}
		var shuffled []*Rule
		remaining := append([]*Rule(nil), out...)
		for len(remaining) > 0 {
			pick := rng.Intn(total)
			acc := 0
			for i, r := range remaining {
				acc += r.Priority + 1
				if pick < acc {
					shuffled = append(shuffled, r)
					total -= r.Priority + 1
					remaining = append(remaining[:i], remaining[i+1:]...)
					break
				}
			}
		}
		out = shuffled
	}
	return out
}

// searchOrder lists boxes reachable from the top in the requested
// browse order; DepthFirst is top-down preorder, BreadthFirst is level
// order.
func (e *Engine) searchOrder(g *qgm.Graph, order SearchOrder) []*qgm.Box {
	if g.Top == nil {
		return nil
	}
	seen := map[*qgm.Box]bool{}
	var out []*qgm.Box
	switch order {
	case DepthFirst:
		var dfs func(b *qgm.Box)
		dfs = func(b *qgm.Box) {
			if b == nil || seen[b] {
				return
			}
			seen[b] = true
			out = append(out, b)
			for _, q := range b.Quants {
				dfs(q.Input)
			}
		}
		dfs(g.Top)
	case BreadthFirst:
		queue := []*qgm.Box{g.Top}
		seen[g.Top] = true
		for len(queue) > 0 {
			b := queue[0]
			queue = queue[1:]
			out = append(out, b)
			for _, q := range b.Quants {
				if q.Input != nil && !seen[q.Input] {
					seen[q.Input] = true
					queue = append(queue, q.Input)
				}
			}
		}
	}
	return out
}
