package rewrite

import (
	"repro/internal/expr"
	"repro/internal/qgm"
)

// RecursiveSelectionPushdownRule is the reproduction's magic-sets-style
// transformation for recursive queries (section 5: "recently we have
// been adding rewrite rules for recursive queries, including rules to
// do magic set transformations [BANC86]").
//
// It covers the workhorse case: a selection on a recursive table
// expression restricted to columns that every recursive branch
// propagates unchanged (e.g. "SELECT ... FROM reach WHERE src = 1" when
// the recursive rule copies src from the recursive tuple). Then
// filtering the *seed* branches is equivalent to filtering the result:
// by induction, every derived tuple inherits the restricted column
// values from a tuple that already satisfied the predicate, and no
// unrestricted tuple can derive a restricted one. The fixpoint then
// never materializes the irrelevant part of the closure — the magic-set
// benefit (computing reach from one source instead of all sources).
func RecursiveSelectionPushdownRule() *Rule {
	match := func(ctx *Context, b *qgm.Box) (*qgm.Predicate, *qgm.Quantifier) {
		if b.Kind != qgm.KindSelect {
			return nil, nil
		}
		for _, q := range b.Quants {
			if q.Type != qgm.ForEach {
				continue
			}
			u := q.Input
			if u.Kind != qgm.KindUnion || !u.Recursive {
				continue
			}
			// The union must be referenced only by this quantifier and
			// by its own recursive branches.
			external := 0
			for _, r := range ctx.Graph.RangersOver(u) {
				if !subtreeOf(u, r.Box) {
					external++
				}
			}
			if external != 1 {
				continue
			}
			for _, p := range b.Preds {
				if expr.HasSubplan(p.Expr) || expr.HasAggregate(p.Expr) {
					continue
				}
				refs := p.QIDs()
				if len(refs) != 1 || !refs[q.QID] {
					continue
				}
				// Which output ordinals does the predicate touch?
				ords := map[int]bool{}
				for _, c := range expr.Cols(p.Expr) {
					if c.QID == q.QID {
						ords[c.Ord] = true
					}
				}
				if propagatesUnchanged(u, ords) && seedsCanReceive(ctx, u) {
					return p, q
				}
			}
		}
		return nil, nil
	}
	return &Rule{
		Name:     "recursive-selection-pushdown",
		Class:    "recursion",
		Priority: 85,
		Condition: func(ctx *Context, b *qgm.Box) bool {
			p, _ := match(ctx, b)
			return p != nil
		},
		Action: func(ctx *Context, b *qgm.Box) error {
			p, q := match(ctx, b)
			u := q.Input
			for _, branch := range u.Quants {
				if subtreeReferencesBox(branch.Input, u) {
					continue // recursive branches inherit the restriction
				}
				seed := branch.Input
				// Map the predicate through the quantifier and the
				// seed's head expressions.
				np := expr.SubstituteCols(p.Expr, func(c *expr.Col) expr.Expr {
					if c.QID != q.QID {
						return nil
					}
					return seed.Head[c.Ord].Expr
				})
				seed.Preds = append(seed.Preds, &qgm.Predicate{Expr: np})
			}
			for i, x := range b.Preds {
				if x == p {
					b.Preds = append(b.Preds[:i], b.Preds[i+1:]...)
					break
				}
			}
			return nil
		},
	}
}

// propagatesUnchanged reports whether every recursive branch's head
// passes the given output ordinals through from its own quantifier over
// the union, unchanged.
func propagatesUnchanged(u *qgm.Box, ords map[int]bool) bool {
	for _, branch := range u.Quants {
		if !subtreeReferencesBox(branch.Input, u) {
			continue
		}
		r := branch.Input
		if r.Kind != qgm.KindSelect {
			return false
		}
		// Find the quantifier(s) over u inside r (direct reference only
		// — deeper nesting is out of this rule's scope).
		var recQ *qgm.Quantifier
		for _, rq := range r.Quants {
			if rq.Input == u {
				if recQ != nil {
					return false // non-linear: conservatively skip
				}
				recQ = rq
			}
		}
		if recQ == nil {
			return false // reference is nested deeper
		}
		for ord := range ords {
			c, ok := r.Head[ord].Expr.(*expr.Col)
			if !ok || c.QID != recQ.QID || c.Ord != ord {
				return false
			}
		}
	}
	return true
}

// seedsCanReceive reports whether every seed branch is a SELECT box
// solely referenced by its union quantifier (so a predicate can land).
func seedsCanReceive(ctx *Context, u *qgm.Box) bool {
	for _, branch := range u.Quants {
		if subtreeReferencesBox(branch.Input, u) {
			continue
		}
		if branch.Input.Kind != qgm.KindSelect {
			return false
		}
		if rs := ctx.Graph.RangersOver(branch.Input); len(rs) != 1 {
			return false
		}
		// Head expressions must exist to substitute through.
		for _, hc := range branch.Input.Head {
			if hc.Expr == nil {
				return false
			}
		}
	}
	return true
}

// subtreeOf reports whether candidate is reachable from root via range
// edges (candidate is inside root's subtree).
func subtreeOf(root, candidate *qgm.Box) bool {
	if root == candidate {
		return true
	}
	seen := map[*qgm.Box]bool{}
	var walk func(b *qgm.Box) bool
	walk = func(b *qgm.Box) bool {
		if b == candidate {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, q := range b.Quants {
			if walk(q.Input) {
				return true
			}
		}
		return false
	}
	return walk(root)
}

// subtreeReferencesBox reports whether the subtree under start contains
// a quantifier ranging over target.
func subtreeReferencesBox(start, target *qgm.Box) bool {
	seen := map[*qgm.Box]bool{}
	var walk func(b *qgm.Box) bool
	walk = func(b *qgm.Box) bool {
		if b == nil || seen[b] {
			return false
		}
		seen[b] = true
		for _, q := range b.Quants {
			if q.Input == target || walk(q.Input) {
				return true
			}
		}
		return false
	}
	return walk(start)
}
