package rewrite

import (
	"fmt"
	"strings"

	"repro/internal/qgm"
	"repro/internal/verify"
)

// AuditError reports that a rule firing left the QGM invalid while the
// engine ran with Options.Audit. It names the offending rule and firing
// index, carries the full verifier report, and includes a before/after
// dump of the box the rule fired on so the mutation is visible.
type AuditError struct {
	// Rule is the name of the offending rule.
	Rule string
	// Firing is the 0-based index of the firing in the trace.
	Firing int
	// BoxID identifies the box the rule fired on.
	BoxID int
	// Before and After are qgm.DumpBox renderings of that box around
	// the firing ("(box removed by the firing)" when it was deleted).
	Before, After string
	// Report holds the verifier violations, including illegal
	// distinct-mode transitions detected by the engine itself.
	Report *verify.Report
	// Trace is the full firing trace up to and including the offender.
	Trace []Fired
}

func (e *AuditError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rewrite: audit: rule %s (firing %d) left an invalid QGM on box %d: %s",
		e.Rule, e.Firing, e.BoxID, e.Report.Error())
	fmt.Fprintf(&b, "\nbox %d before:\n%s", e.BoxID, indent(e.Before))
	fmt.Fprintf(&b, "box %d after:\n%s", e.BoxID, indent(e.After))
	return strings.TrimRight(b.String(), "\n")
}

func (e *AuditError) Unwrap() error { return e.Report }

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}

// distinctSnapshot records each registered box's duplicate-handling
// mode so auditFiring can validate transitions afterwards.
func distinctSnapshot(g *qgm.Graph) map[*qgm.Box]qgm.DistinctMode {
	out := make(map[*qgm.Box]qgm.DistinctMode, len(g.Boxes))
	for _, b := range g.Boxes {
		out[b] = b.Distinct
	}
	return out
}

// auditFiring verifies the graph after one rule firing and checks the
// distinct-mode lattice transitions: PERMIT may strengthen to ENFORCE,
// ENFORCE must never weaken back to PERMIT, and PRESERVE is frozen in
// both directions. Boxes the firing deleted are exempt (their mode is
// moot; e.g. merging a duplicate-free box propagates ENFORCE upward).
func auditFiring(g *qgm.Graph, rule string, firing int, b *qgm.Box, before string,
	modes map[*qgm.Box]qgm.DistinctMode) *AuditError {
	var violations []verify.Violation
	if rep := verify.Graph(g); rep != nil {
		violations = append(violations, rep.Violations...)
	}
	registered := make(map[*qgm.Box]bool, len(g.Boxes))
	for _, x := range g.Boxes {
		registered[x] = true
	}
	for box, old := range modes {
		if !registered[box] || box.Distinct == old {
			continue
		}
		bad := ""
		switch {
		case old == qgm.EnforceDistinct && box.Distinct == qgm.PermitDuplicates:
			bad = "ENFORCE weakened to PERMIT (duplicates could reappear)"
		case old == qgm.PreserveDuplicates:
			bad = fmt.Sprintf("PRESERVE changed to %s (PRESERVE is frozen)", box.Distinct)
		case box.Distinct == qgm.PreserveDuplicates:
			bad = fmt.Sprintf("%s changed to PRESERVE (PRESERVE is frozen)", old)
		}
		if bad != "" {
			violations = append(violations, verify.Violation{
				Class: verify.ClassDistinct,
				Path:  fmt.Sprintf("box %d (%s)", box.ID, box.Kind),
				Msg:   "illegal distinct transition: " + bad,
			})
		}
	}
	if len(violations) == 0 {
		return nil
	}
	after := "(box removed by the firing)\n"
	if registered[b] {
		after = qgm.DumpBox(b, b == g.Top)
	}
	return &AuditError{
		Rule:   rule,
		Firing: firing,
		BoxID:  b.ID,
		Before: before,
		After:  after,
		Report: &verify.Report{Violations: violations},
	}
}
