package rewrite

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/qgm"
)

func edgesCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	if _, err := c.CreateTable("EDGES", []catalog.Column{
		{Name: "SRC", Type: datum.TInt}, {Name: "DST", Type: datum.TInt},
	}, ""); err != nil {
		t.Fatal(err)
	}
	return c
}

const reachQuery = `WITH RECURSIVE reach (src, dst) AS (
	SELECT src, dst FROM edges
	UNION SELECT r.src, e.dst FROM reach r, edges e WHERE r.dst = e.src)
	SELECT src, dst FROM reach WHERE src = 1`

// TestRecursiveSelectionPushdown: the magic-sets-style rule pushes the
// src=1 restriction into the seed branch — the recursive branch
// propagates src unchanged, so the fixpoint computes only the relevant
// part of the closure.
func TestRecursiveSelectionPushdown(t *testing.T) {
	c := edgesCatalog(t)
	g := translate(t, c, reachQuery)
	trace := rewriteAll(t, g, Options{})
	fired := false
	for _, f := range trace {
		if f.Rule == "recursive-selection-pushdown" {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("rule must fire; trace = %v\n%s", trace, g)
	}
	// The restriction must now be below the recursive union: find the
	// seed branch and check its predicate.
	var u *qgm.Box
	for _, b := range g.Boxes {
		if b.Recursive {
			u = b
		}
	}
	if u == nil {
		t.Fatal("no recursive box")
	}
	var seed *qgm.Box
	for _, q := range u.Quants {
		if !subtreeReferencesBox(q.Input, u) {
			seed = q.Input
		}
	}
	if seed == nil {
		t.Fatal("no seed branch")
	}
	foundInSeed := false
	for _, p := range seed.Preds {
		if p.Expr.String() != "" && containsConst1(p) {
			foundInSeed = true
		}
	}
	if !foundInSeed {
		t.Fatalf("restriction not pushed into the seed:\n%s", g)
	}
}

func containsConst1(p *qgm.Predicate) bool {
	s := p.Expr.String()
	return len(s) > 0 && s[len(s)-1] == '1'
}

// TestRecursivePushdownBlockedOnNonPropagatedColumn: a restriction on
// dst must NOT be pushed — the recursive branch rewrites dst, so
// filtering seeds on dst would lose multi-hop paths.
func TestRecursivePushdownBlockedOnNonPropagatedColumn(t *testing.T) {
	c := edgesCatalog(t)
	g := translate(t, c, `WITH RECURSIVE reach (src, dst) AS (
		SELECT src, dst FROM edges
		UNION SELECT r.src, e.dst FROM reach r, edges e WHERE r.dst = e.src)
		SELECT src, dst FROM reach WHERE dst = 4`)
	trace := rewriteAll(t, g, Options{})
	for _, f := range trace {
		if f.Rule == "recursive-selection-pushdown" {
			t.Fatalf("rule fired on a non-propagated column; trace = %v", trace)
		}
	}
}

// TestRecursivePushdownBlockedOnNonLinear: non-linear recursion
// (two references to the recursive table) is conservatively skipped.
func TestRecursivePushdownBlockedOnNonLinear(t *testing.T) {
	c := edgesCatalog(t)
	g := translate(t, c, `WITH RECURSIVE reach (src, dst) AS (
		SELECT src, dst FROM edges
		UNION SELECT a.src, b.dst FROM reach a, reach b WHERE a.dst = b.src)
		SELECT src, dst FROM reach WHERE src = 1`)
	trace := rewriteAll(t, g, Options{})
	for _, f := range trace {
		if f.Rule == "recursive-selection-pushdown" {
			t.Fatalf("rule fired on non-linear recursion; trace = %v", trace)
		}
	}
}
