package rewrite

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/qgm"
)

// This file is the "rich set of primitives for manipulating query
// graphs" the paper's rule system requires. Rules compose these;
// DBC-written rules may use them too.

// substituteQuant replaces references to quantifier qid in e with the
// head expressions of the box it ranges over (the core of merging).
func substituteQuant(e expr.Expr, qid int, head []qgm.HeadCol) expr.Expr {
	return expr.SubstituteCols(e, func(c *expr.Col) expr.Expr {
		if c.QID != qid {
			return nil
		}
		h := head[c.Ord].Expr
		if h == nil {
			return nil
		}
		return h
	})
}

// MergeQuant merges the box under quantifier q into owner: q's input
// box's quantifiers and predicates move up, and every reference to q in
// owner is replaced by the corresponding head expression. The merged
// box must be a SELECT solely referenced by q. This implements the
// action of the paper's Rule 2 (operation merging / view merging).
func MergeQuant(ctx *Context, owner *qgm.Box, q *qgm.Quantifier) error {
	lower := q.Input
	if lower.Kind != qgm.KindSelect {
		return fmt.Errorf("rewrite: can only merge SELECT boxes, got %s", lower.Kind)
	}
	if rs := ctx.Graph.RangersOver(lower); len(rs) != 1 {
		return fmt.Errorf("rewrite: box %d has %d rangers; merge requires sole ownership", lower.ID, len(rs))
	}
	// Rewrite owner's head, predicates and grouping expressions.
	for i := range owner.Head {
		if owner.Head[i].Expr != nil {
			owner.Head[i].Expr = substituteQuant(owner.Head[i].Expr, q.QID, lower.Head)
		}
	}
	for _, p := range owner.Preds {
		p.Expr = substituteQuant(p.Expr, q.QID, lower.Head)
	}
	for i := range owner.GroupBy {
		owner.GroupBy[i] = substituteQuant(owner.GroupBy[i], q.QID, lower.Head)
	}
	// Move body parts up.
	owner.AdoptQuants(lower)
	owner.Preds = append(owner.Preds, lower.Preds...)
	lower.Preds = nil
	// Paper: IF OP2.eliminate-duplicate THEN OP1.eliminate-duplicate.
	if lower.Distinct == qgm.EnforceDistinct {
		owner.Distinct = qgm.EnforceDistinct
	}
	owner.RemoveQuant(q.QID)
	ctx.Graph.RemoveBox(lower)
	return nil
}

// PredicatePushable reports whether predicate p of box can be pushed
// down to the box under quantifier q: p must reference exactly q among
// box's quantifiers (correlated references to OUTER quantifiers are
// allowed and stay correlated), q must be a plain setformer, and the
// target must be a SELECT box solely referenced by q. Predicates
// containing deferred subplans never migrate.
func PredicatePushable(ctx *Context, box *qgm.Box, p *qgm.Predicate, q *qgm.Quantifier) bool {
	if q.Type != qgm.ForEach || q.Input.Kind != qgm.KindSelect {
		return false
	}
	if q.Input.Distinct == qgm.EnforceDistinct {
		// Pushing below duplicate elimination is still sound for
		// selections (filter then dedup == dedup then filter), so allow.
		_ = q
	}
	if expr.HasSubplan(p.Expr) || expr.HasAggregate(p.Expr) {
		return false
	}
	refs := p.QIDs()
	if !refs[q.QID] {
		return false
	}
	// Every referenced quantifier must be either q itself or belong to
	// an enclosing box (correlation), i.e. not one of box's others.
	for _, other := range box.Quants {
		if other.QID != q.QID && refs[other.QID] {
			return false
		}
	}
	if _, soleQ := ctx.SoleRanger(q.Input); soleQ == nil {
		return false
	}
	return true
}

// PushPredicate moves predicate p from box into the box under q,
// rewriting column references through q's head. Use PredicatePushable
// first.
func PushPredicate(ctx *Context, box *qgm.Box, p *qgm.Predicate, q *qgm.Quantifier) error {
	lower := q.Input
	ne := substituteQuant(p.Expr, q.QID, lower.Head)
	lower.Preds = append(lower.Preds, &qgm.Predicate{Expr: ne})
	for i, x := range box.Preds {
		if x == p {
			box.Preds = append(box.Preds[:i], box.Preds[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("rewrite: predicate not found in box %d", box.ID)
}

// usedOrdinals computes which output columns of box are referenced by
// any ranger (head, predicates, grouping) anywhere in the graph.
func usedOrdinals(ctx *Context, box *qgm.Box) map[int]bool {
	used := map[int]bool{}
	visit := func(e expr.Expr, qid int) {
		expr.Walk(e, func(x expr.Expr) bool {
			if c, ok := x.(*expr.Col); ok && c.QID == qid {
				used[c.Ord] = true
			}
			return true
		})
	}
	for _, r := range ctx.Graph.RangersOver(box) {
		qid := r.Quant.QID
		for _, b := range ctx.Graph.Boxes {
			for _, hc := range b.Head {
				if hc.Expr != nil {
					visit(hc.Expr, qid)
				}
			}
			for _, p := range b.Preds {
				visit(p.Expr, qid)
			}
			for _, ge := range b.GroupBy {
				visit(ge, qid)
			}
		}
	}
	return used
}

// TrimHead removes unused output columns from a derived box and remaps
// every reference (projection push-down). Distinct-enforcing and set
// operation boxes keep their full head (trimming would change
// duplicate semantics).
func TrimHead(ctx *Context, box *qgm.Box) (bool, error) {
	if box.Kind != qgm.KindSelect && box.Kind != qgm.KindGroupBy {
		return false, nil
	}
	if box.Distinct == qgm.EnforceDistinct {
		return false, nil
	}
	used := usedOrdinals(ctx, box)
	if len(used) == len(box.Head) {
		return false, nil
	}
	if len(used) == 0 {
		// Keep one column: empty heads are not meaningful tables.
		used[0] = true
	}
	remap := make([]int, len(box.Head))
	var newHead []qgm.HeadCol
	for i, hc := range box.Head {
		if used[i] {
			remap[i] = len(newHead)
			newHead = append(newHead, hc)
		} else {
			remap[i] = -1
		}
	}
	box.Head = newHead
	// Remap all references through every ranger.
	for _, r := range ctx.Graph.RangersOver(box) {
		qid := r.Quant.QID
		fix := func(e expr.Expr) expr.Expr {
			return expr.Transform(e, func(x expr.Expr) expr.Expr {
				c, ok := x.(*expr.Col)
				if !ok || c.QID != qid {
					return x
				}
				nc := *c
				nc.Ord = remap[c.Ord]
				return &nc
			})
		}
		for _, b := range ctx.Graph.Boxes {
			for i := range b.Head {
				if b.Head[i].Expr != nil {
					b.Head[i].Expr = fix(b.Head[i].Expr)
				}
			}
			for _, p := range b.Preds {
				p.Expr = fix(p.Expr)
			}
			for i := range b.GroupBy {
				b.GroupBy[i] = fix(b.GroupBy[i])
			}
		}
	}
	return true, nil
}

// ProvablyDistinct reports whether box's output provably has no
// duplicates per evaluation: either structurally (DISTINCT, GROUP BY,
// set operation) or because it projects a complete unique-index key of
// a single stored table — the uniqueness knowledge behind the paper's
// Rule 1 ("at most one tuple of T2 satisfies the predicate").
func ProvablyDistinct(box *qgm.Box) bool {
	if box.OutputDistinct() {
		return true
	}
	if box.Kind != qgm.KindSelect {
		return false
	}
	sfs := box.Setformers()
	if len(sfs) != 1 || len(box.Quants) != len(sfs) {
		return false
	}
	base := sfs[0].Input
	if base.Kind != qgm.KindBase {
		return false
	}
	// Which base-table ordinals does the head project (as plain cols)?
	headOrds := map[int]bool{}
	for _, hc := range box.Head {
		if c, ok := hc.Expr.(*expr.Col); ok && c.QID == sfs[0].QID {
			headOrds[c.Ord] = true
		}
	}
	// Ordinals bound to constants or outer values by equality
	// predicates also contribute to key coverage.
	for _, p := range box.Preds {
		if c, ok := equalityBoundCol(p.Expr, sfs[0].QID); ok {
			headOrds[c] = true
		}
	}
	for _, ix := range base.Table.Indexes {
		if !ix.Unique {
			continue
		}
		all := true
		for _, k := range ix.KeyCols {
			if !headOrds[k] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// equalityBoundCol recognizes predicates of the form q.col = <expr not
// referencing q> (either orientation) and returns the bound ordinal.
func equalityBoundCol(e expr.Expr, qid int) (int, bool) {
	cmp, ok := e.(*expr.Cmp)
	if !ok || cmp.Op != expr.OpEq {
		return 0, false
	}
	try := func(side, other expr.Expr) (int, bool) {
		c, ok := side.(*expr.Col)
		if !ok || c.QID != qid {
			return 0, false
		}
		if expr.QIDs(other)[qid] {
			return 0, false
		}
		return c.Ord, true
	}
	if ord, ok := try(cmp.L, cmp.R); ok {
		return ord, true
	}
	return try(cmp.R, cmp.L)
}

// EqualityLinkFor finds a predicate of box of the form "<outer expr> =
// q.col" linking the subquery quantifier q on its only output column;
// required by the subquery-to-join rules.
func EqualityLinkFor(box *qgm.Box, q *qgm.Quantifier) *qgm.Predicate {
	for _, p := range box.Preds {
		cmp, ok := p.Expr.(*expr.Cmp)
		if !ok || cmp.Op != expr.OpEq {
			continue
		}
		refs := p.QIDs()
		if !refs[q.QID] {
			continue
		}
		isQCol := func(e expr.Expr) bool {
			c, ok := e.(*expr.Col)
			return ok && c.QID == q.QID && c.Ord == 0
		}
		if isQCol(cmp.L) && !expr.QIDs(cmp.R)[q.QID] {
			return p
		}
		if isQCol(cmp.R) && !expr.QIDs(cmp.L)[q.QID] {
			return p
		}
	}
	return nil
}

// CloneSubgraph deep-copies the subgraph reachable from box into the
// same graph with fresh quantifier ids, returning the copied root.
// Shared BASE boxes are not copied (they carry no mutable state).
// Column references to quantifiers outside the subgraph (correlation)
// are preserved. Used to build CHOOSE alternatives.
func CloneSubgraph(g *qgm.Graph, box *qgm.Box) *qgm.Box {
	boxMap := map[*qgm.Box]*qgm.Box{}
	qidMap := map[int]int{}

	// Phase 1: clone the box/quantifier structure, registering every
	// quantifier-id mapping before any expression is touched, so that
	// correlated references between cloned boxes remap correctly.
	var cloneStructure func(b *qgm.Box) *qgm.Box
	cloneStructure = func(b *qgm.Box) *qgm.Box {
		if b.Kind == qgm.KindBase {
			return b
		}
		if nb, ok := boxMap[b]; ok {
			return nb
		}
		nb := g.NewBox(b.Kind)
		boxMap[b] = nb
		nb.Distinct = b.Distinct
		nb.SetAll = b.SetAll
		nb.Recursive = b.Recursive
		nb.Table = b.Table
		nb.TableFn = b.TableFn
		nb.TargetTable = b.TargetTable
		nb.TargetCols = append([]int(nil), b.TargetCols...)
		for _, q := range b.Quants {
			nq := g.NewQuant(nb, q.Type, q.Name, nil)
			nq.Negated = q.Negated
			nq.SetPred = q.SetPred
			qidMap[q.QID] = nq.QID
		}
		for i, q := range b.Quants {
			nb.Quants[i].Input = cloneStructure(q.Input)
		}
		return nb
	}
	cloneStructure(box)

	// Phase 2: copy expressions with quantifier ids remapped.
	// References to quantifiers outside the subgraph (correlation with
	// the uncloned part) are left intact by design.
	remap := func(e expr.Expr) expr.Expr {
		return expr.Transform(e, func(x expr.Expr) expr.Expr {
			c, ok := x.(*expr.Col)
			if !ok {
				return x
			}
			if nid, ok := qidMap[c.QID]; ok {
				nc := *c
				nc.QID = nid
				return &nc
			}
			return x
		})
	}
	for b, nb := range boxMap {
		for _, hc := range b.Head {
			nhc := hc
			if hc.Expr != nil {
				nhc.Expr = remap(hc.Expr)
			}
			nb.Head = append(nb.Head, nhc)
		}
		for _, p := range b.Preds {
			nb.Preds = append(nb.Preds, &qgm.Predicate{Expr: remap(p.Expr)})
		}
		for _, ge := range b.GroupBy {
			nb.GroupBy = append(nb.GroupBy, remap(ge))
		}
		for _, row := range b.Rows {
			var nrow []expr.Expr
			for _, e := range row {
				nrow = append(nrow, remap(e))
			}
			nb.Rows = append(nb.Rows, nrow)
		}
		for _, e := range b.TFScalarArgs {
			nb.TFScalarArgs = append(nb.TFScalarArgs, remap(e))
		}
	}
	return boxMap[box]
}

// WrapChoose replaces every range edge into box with a CHOOSE box whose
// alternatives are box itself and the provided alternatives (section 5:
// "we have therefore added a new operation, CHOOSE, to QGM to link
// together the alternatives"). The optimizer later keeps the cheapest
// alternative.
func WrapChoose(g *qgm.Graph, box *qgm.Box, alternatives ...*qgm.Box) *qgm.Box {
	ch := g.NewBox(qgm.KindChoose)
	ch.Head = append([]qgm.HeadCol(nil), box.Head...)
	for i := range ch.Head {
		ch.Head[i].Expr = nil
	}
	rangers := g.RangersOver(box)
	g.NewQuant(ch, qgm.ForEach, "", box)
	for _, alt := range alternatives {
		g.NewQuant(ch, qgm.ForEach, "", alt)
	}
	for _, r := range rangers {
		if r.Box == ch {
			continue
		}
		r.Quant.Input = ch
	}
	return ch
}
