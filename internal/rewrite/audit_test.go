package rewrite

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/qgm"
	"repro/internal/verify"
)

// auditQueries exercises the main QGM shapes the default rules fire on.
var auditQueries = []string{
	paperQuery,
	"SELECT * FROM inventory",
	"SELECT DISTINCT type FROM inventory",
	`SELECT type, COUNT(*), SUM(onhand_qty) total
		FROM inventory WHERE partno > 0 GROUP BY type HAVING COUNT(*) > 1`,
	"SELECT partno FROM quotations UNION SELECT partno FROM inventory",
	"SELECT a.partno FROM quotations a, quotations b WHERE a.partno = b.partno",
}

// TestAuditCleanOnDefaultRules: every firing of the base rule set over
// the seed queries must leave the graph semantically valid — the audit
// returns no error and the rewrite still fires the expected rules.
func TestAuditCleanOnDefaultRules(t *testing.T) {
	for _, unique := range []bool{false, true} {
		c := paperCatalog(t, unique)
		for _, q := range auditQueries {
			g := translate(t, c, q)
			if _, err := NewDefaultEngine().Rewrite(g, Options{Audit: true}); err != nil {
				t.Errorf("uniquePartno=%v %s: %v", unique, q, err)
			}
		}
	}
}

// TestAuditCatchesIllegalDistinctTransition: a rule that downgrades
// ENFORCE to PERMIT is legal by the static checks (a SELECT box may
// permit duplicates) but violates the transition lattice; only the
// per-firing snapshot can catch it.
func TestAuditCatchesIllegalDistinctTransition(t *testing.T) {
	e := NewEngine()
	if err := e.Register(&Rule{
		Name:  "drop-distinct",
		Class: "test",
		Condition: func(ctx *Context, b *qgm.Box) bool {
			return b.Kind == qgm.KindSelect && b.Distinct == qgm.EnforceDistinct
		},
		Action: func(ctx *Context, b *qgm.Box) error {
			b.Distinct = qgm.PermitDuplicates
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	c := paperCatalog(t, false)
	g := translate(t, c, "SELECT DISTINCT type FROM inventory")

	trace, err := e.Rewrite(g, Options{Audit: true})
	if err == nil {
		t.Fatal("audit missed the ENFORCE→PERMIT transition")
	}
	var aerr *AuditError
	if !errors.As(err, &aerr) {
		t.Fatalf("error is %T, want *AuditError", err)
	}
	if aerr.Rule != "drop-distinct" {
		t.Errorf("Rule = %q, want drop-distinct", aerr.Rule)
	}
	if aerr.Firing != 0 {
		t.Errorf("Firing = %d, want 0", aerr.Firing)
	}
	if !aerr.Report.Has(verify.ClassDistinct) {
		t.Errorf("report lacks a distinct violation:\n%v", aerr.Report)
	}
	if aerr.Before == "" || aerr.After == "" {
		t.Error("AuditError must carry before/after box dumps")
	}
	if len(aerr.Trace) == 0 || aerr.Trace[len(aerr.Trace)-1].Rule != "drop-distinct" {
		t.Errorf("Trace must end with the offending firing, got %v", aerr.Trace)
	}
	if len(trace) != len(aerr.Trace) {
		t.Errorf("returned trace (%d firings) differs from AuditError.Trace (%d)", len(trace), len(aerr.Trace))
	}
	if !strings.Contains(aerr.Error(), "drop-distinct") {
		t.Errorf("Error() should name the rule: %s", aerr.Error())
	}
}

// TestAuditCatchesGraphCorruption: a rule that structurally damages the
// graph (out-of-range column ordinal) is caught by the per-firing deep
// verification even though no distinct mode changed.
func TestAuditCatchesGraphCorruption(t *testing.T) {
	fired := false
	e := NewEngine()
	if err := e.Register(&Rule{
		Name:  "corrupt-ordinal",
		Class: "test",
		Condition: func(ctx *Context, b *qgm.Box) bool {
			return !fired && b == ctx.Graph.Top
		},
		Action: func(ctx *Context, b *qgm.Box) error {
			fired = true
			for i := range b.Head {
				if col, ok := b.Head[i].Expr.(*expr.Col); ok {
					col.Ord = 99
					return nil
				}
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	c := paperCatalog(t, false)
	g := translate(t, c, "SELECT partno FROM inventory")

	_, err := e.Rewrite(g, Options{Audit: true})
	var aerr *AuditError
	if !errors.As(err, &aerr) {
		t.Fatalf("audit missed the corrupted ordinal: %v", err)
	}
	if aerr.Rule != "corrupt-ordinal" {
		t.Errorf("Rule = %q, want corrupt-ordinal", aerr.Rule)
	}
	if !aerr.Report.Has(verify.ClassOrdinal) {
		t.Errorf("report lacks an ordinal violation:\n%v", aerr.Report)
	}
}

// TestAuditRandomizedOrders runs the Statistical control strategy over
// a spread of seeds with auditing on: whatever order the rules fire in,
// every intermediate graph must verify.
func TestAuditRandomizedOrders(t *testing.T) {
	for _, unique := range []bool{false, true} {
		c := paperCatalog(t, unique)
		for seed := int64(0); seed < 16; seed++ {
			for _, q := range auditQueries {
				g := translate(t, c, q)
				if _, err := NewDefaultEngine().Rewrite(g, Options{
					Strategy: Statistical,
					Seed:     seed,
					Audit:    true,
				}); err != nil {
					t.Errorf("seed=%d uniquePartno=%v %s: %v", seed, unique, q, err)
				}
			}
		}
	}
}

// FuzzRewriteAudit drives the Statistical strategy from fuzzed seeds
// and query picks; the audit invariant is the oracle — no rule order
// may ever produce a graph that fails deep verification.
func FuzzRewriteAudit(f *testing.F) {
	f.Add(int64(0), uint8(0))
	f.Add(int64(1), uint8(1))
	f.Add(int64(42), uint8(3))
	f.Add(int64(-7), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, pick uint8) {
		q := auditQueries[int(pick)%len(auditQueries)]
		c := paperCatalog(t, seed%2 == 0)
		g := translate(t, c, q)
		if _, err := NewDefaultEngine().Rewrite(g, Options{
			Strategy: Statistical,
			Seed:     seed,
			Audit:    true,
		}); err != nil {
			t.Fatalf("seed=%d query=%q: %v", seed, q, err)
		}
	})
}
