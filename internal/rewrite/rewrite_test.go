package rewrite

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/qgm"
	"repro/internal/sql"
)

func paperCatalog(t *testing.T, uniquePartno bool) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	if _, err := c.CreateTable("QUOTATIONS", []catalog.Column{
		{Name: "PARTNO", Type: datum.TInt},
		{Name: "PRICE", Type: datum.TFloat},
		{Name: "ORDER_QTY", Type: datum.TInt},
	}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("INVENTORY", []catalog.Column{
		{Name: "PARTNO", Type: datum.TInt},
		{Name: "ONHAND_QTY", Type: datum.TInt},
		{Name: "TYPE", Type: datum.TString},
	}, ""); err != nil {
		t.Fatal(err)
	}
	if uniquePartno {
		if _, err := c.CreateIndex("INV_PK", "INVENTORY", []string{"PARTNO"}, "", true); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func translate(t *testing.T, c *catalog.Catalog, src string) *qgm.Graph {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, err := qgm.TranslateStatement(c, stmt)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return g
}

func rewriteAll(t *testing.T, g *qgm.Graph, opt Options) []Fired {
	t.Helper()
	opt.Validate = true
	trace, err := NewDefaultEngine().Rewrite(g, opt)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	return trace
}

const paperQuery = `SELECT partno, price, order_qty FROM quotations Q1
	WHERE Q1.partno IN
	  (SELECT partno FROM inventory Q3
	   WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')`

// TestFigure2bRewrite reproduces the paper's Figure 2(b): applying Rule
// 1 (subquery to join, justified by a unique index on inventory.partno)
// and Rule 2 (operation merging) to the Figure 2(a) QGM collapses the
// two SELECT boxes into one whose body holds Q1 and Q3 with three
// conjuncts: the join predicate, the migrated correlation predicate,
// and the local type predicate.
func TestFigure2bRewrite(t *testing.T) {
	c := paperCatalog(t, true)
	g := translate(t, c, paperQuery)

	trace := rewriteAll(t, g, Options{})
	fired := map[string]bool{}
	for _, f := range trace {
		fired[f.Rule] = true
	}
	if !fired["subquery-to-join"] {
		t.Error("Rule 1 (subquery-to-join) must fire")
	}
	if !fired["operation-merge"] {
		t.Error("Rule 2 (operation-merge) must fire")
	}

	top := g.Top
	// One box: all SELECT boxes merged.
	selects := 0
	for _, b := range g.Boxes {
		if b.Kind == qgm.KindSelect {
			selects++
		}
	}
	if selects != 1 {
		t.Fatalf("after rewrite: %d SELECT boxes, want 1\n%s", selects, g)
	}
	// Body: Q1 over quotations and Q3 over inventory, both setformers.
	if len(top.Quants) != 2 {
		t.Fatalf("merged box has %d quantifiers\n%s", len(top.Quants), g)
	}
	for _, q := range top.Quants {
		if q.Type != qgm.ForEach {
			t.Errorf("quantifier %s type = %s, want F", q.Name, q.Type)
		}
		if q.Input.Kind != qgm.KindBase {
			t.Errorf("quantifier %s over %s, want BASE", q.Name, q.Input.Kind)
		}
	}
	// Three conjuncts, as in Figure 2(b).
	if len(top.Preds) != 3 {
		t.Fatalf("merged box has %d predicates, want 3\n%s", len(top.Preds), g)
	}
	s := g.String()
	for _, want := range []string{"Q1.PARTNO = ", "'CPU'"} {
		if !strings.Contains(s, want) {
			t.Errorf("rewritten QGM missing %q:\n%s", want, s)
		}
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestRule1RequiresUniqueness: without the unique index the direct
// conversion must NOT fire (duplicates would multiply outer tuples);
// the generalized distinct-join conversion takes over only for
// uncorrelated subqueries — the paper query is correlated, so it must
// remain a subquery.
func TestRule1RequiresUniqueness(t *testing.T) {
	c := paperCatalog(t, false)
	g := translate(t, c, paperQuery)
	trace := rewriteAll(t, g, Options{})
	for _, f := range trace {
		if f.Rule == "subquery-to-join" {
			t.Fatal("Rule 1 fired without a uniqueness guarantee")
		}
		if f.Rule == "subquery-to-distinct-join" {
			t.Fatal("distinct-join conversion fired on a correlated subquery")
		}
	}
	// The E quantifier survives.
	hasE := false
	for _, b := range g.Boxes {
		for _, q := range b.Quants {
			if q.Type == qgm.QExists {
				hasE = true
			}
		}
	}
	if !hasE {
		t.Error("existential quantifier must survive")
	}
}

func TestDistinctJoinConversionUncorrelated(t *testing.T) {
	c := paperCatalog(t, false)
	g := translate(t, c, `SELECT partno FROM quotations
		WHERE partno IN (SELECT partno FROM inventory WHERE type = 'CPU')`)
	trace := rewriteAll(t, g, Options{})
	converted := false
	for _, f := range trace {
		if f.Rule == "subquery-to-distinct-join" {
			converted = true
		}
	}
	if !converted {
		t.Fatalf("uncorrelated IN should convert via distinct join; trace=%v\n%s", trace, g)
	}
	// The subquery box must now enforce duplicate elimination, and the
	// paper's Rule 2 must NOT merge it (that would lose the dedup).
	for _, b := range g.Boxes {
		for _, q := range b.Quants {
			if q.Input.Kind == qgm.KindSelect && q.Type == qgm.ForEach && q.Input.Distinct != qgm.EnforceDistinct {
				t.Error("converted subquery must enforce DISTINCT")
			}
		}
	}
}

func TestNegatedSubqueryNeverConverts(t *testing.T) {
	c := paperCatalog(t, true)
	g := translate(t, c, `SELECT partno FROM quotations
		WHERE partno NOT IN (SELECT partno FROM inventory)`)
	trace := rewriteAll(t, g, Options{})
	for _, f := range trace {
		if strings.HasPrefix(f.Rule, "subquery-to") {
			t.Fatalf("negated quantifier converted by %s", f.Rule)
		}
	}
}

func TestViewMergeRule(t *testing.T) {
	c := paperCatalog(t, false)
	if err := c.CreateView("cpuview", nil,
		"SELECT partno, onhand_qty FROM inventory WHERE type = 'CPU'"); err != nil {
		t.Fatal(err)
	}
	g := translate(t, c, "SELECT partno FROM cpuview WHERE onhand_qty < 5")
	trace := rewriteAll(t, g, Options{})
	merged := false
	for _, f := range trace {
		if f.Rule == "operation-merge" {
			merged = true
		}
	}
	if !merged {
		t.Fatal("view must merge into the query")
	}
	// Result: a single SELECT over the base table with both predicates.
	if g.Top.Kind != qgm.KindSelect || len(g.Top.Preds) != 2 {
		t.Fatalf("merged view shape wrong:\n%s", g)
	}
	if g.Top.Quants[0].Input.Kind != qgm.KindBase {
		t.Error("quantifier over base table after merge")
	}
}

func TestMergeBlockedByDistinct(t *testing.T) {
	// Paper Rule 2 condition: a duplicate-eliminating lower box cannot
	// merge into an upper box whose output allows duplicates.
	c := paperCatalog(t, false)
	if err := c.CreateView("dv", nil, "SELECT DISTINCT partno FROM inventory"); err != nil {
		t.Fatal(err)
	}
	g := translate(t, c, "SELECT partno FROM dv")
	rewriteAll(t, g, Options{})
	selects := 0
	for _, b := range g.Boxes {
		if b.Kind == qgm.KindSelect {
			selects++
		}
	}
	if selects != 2 {
		t.Fatalf("distinct view must not merge; got %d selects\n%s", selects, g)
	}
	// But it CAN merge when the upper box is itself distinct.
	g = translate(t, c, "SELECT DISTINCT partno FROM dv")
	rewriteAll(t, g, Options{})
	selects = 0
	for _, b := range g.Boxes {
		if b.Kind == qgm.KindSelect {
			selects++
		}
	}
	if selects != 1 {
		t.Fatalf("distinct-into-distinct must merge; got %d selects\n%s", selects, g)
	}
}

func TestPredicatePushdown(t *testing.T) {
	c := paperCatalog(t, false)
	// Table expression with two references — merge is blocked, so the
	// outer predicate must be pushed into it instead... but pushdown
	// also needs sole ownership. Use a nested derived table that stays
	// separate because of DISTINCT.
	g := translate(t, c, `SELECT partno FROM
		(SELECT DISTINCT partno, type FROM inventory) d WHERE d.type = 'CPU'`)
	trace := rewriteAll(t, g, Options{})
	pushed := false
	for _, f := range trace {
		if f.Rule == "predicate-pushdown" {
			pushed = true
		}
	}
	if !pushed {
		t.Fatalf("predicate must push into the distinct derived table; trace=%v", trace)
	}
	// The pushed predicate now sits on the box over the base table.
	var inner *qgm.Box
	for _, b := range g.Boxes {
		if b.Kind == qgm.KindSelect && b.Distinct == qgm.EnforceDistinct {
			inner = b
		}
	}
	if inner == nil || len(inner.Preds) != 1 {
		t.Fatalf("pushed predicate missing:\n%s", g)
	}
	if len(g.Top.Preds) != 0 {
		t.Error("outer predicate should be gone")
	}
}

func TestPredicateThroughGroupBy(t *testing.T) {
	c := paperCatalog(t, false)
	g := translate(t, c, `SELECT type, total FROM
		(SELECT type, SUM(onhand_qty) total FROM inventory GROUP BY type) s
		WHERE s.type = 'CPU' AND s.total > 100`)
	trace := rewriteAll(t, g, Options{})
	through := false
	for _, f := range trace {
		if f.Rule == "predicate-through-groupby" {
			through = true
		}
	}
	if !through {
		t.Fatalf("group-column predicate must pass through GROUP BY; trace=%v\n%s", trace, g)
	}
	// The type predicate must reach the box below the GROUP BY; the
	// total predicate (aggregate column) must stay above it.
	var gb *qgm.Box
	for _, b := range g.Boxes {
		if b.Kind == qgm.KindGroupBy {
			gb = b
		}
	}
	if gb == nil {
		t.Fatal("no group box")
	}
	lower := gb.Quants[0].Input
	foundType := false
	for _, p := range lower.Preds {
		if strings.Contains(p.Expr.String(), "CPU") {
			foundType = true
		}
	}
	if !foundType {
		t.Errorf("type predicate must be below the GROUP BY:\n%s", g)
	}
}

func TestProjectionPushdown(t *testing.T) {
	c := paperCatalog(t, false)
	g := translate(t, c, `SELECT partno FROM
		(SELECT partno, price, order_qty FROM quotations) w`)
	trace := rewriteAll(t, g, Options{Classes: []string{"projection"}})
	if len(trace) == 0 {
		t.Fatal("projection pushdown must fire")
	}
	var inner *qgm.Box
	for _, b := range g.Boxes {
		if b.Kind == qgm.KindSelect && b != g.Top {
			inner = b
		}
	}
	if inner == nil {
		t.Fatalf("inner box gone?\n%s", g)
	}
	if len(inner.Head) != 1 {
		t.Errorf("inner head = %d cols, want 1 after trim\n%s", len(inner.Head), g)
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRedundantJoinElimination(t *testing.T) {
	c := paperCatalog(t, true)
	g := translate(t, c, `SELECT a.onhand_qty FROM inventory a, inventory b
		WHERE a.partno = b.partno AND b.type = 'CPU'`)
	trace := rewriteAll(t, g, Options{})
	fired := false
	for _, f := range trace {
		if f.Rule == "redundant-join-elimination" {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("redundant self-join on unique key must be eliminated; trace=%v", trace)
	}
	if len(g.Top.Quants) != 1 {
		t.Fatalf("one quantifier should remain:\n%s", g)
	}
	// The type predicate must survive, now on the surviving quantifier.
	found := false
	for _, p := range g.Top.Preds {
		if strings.Contains(p.Expr.String(), "CPU") {
			found = true
		}
	}
	if !found {
		t.Error("predicate lost during join elimination")
	}
}

func TestRedundantJoinNotEliminatedWithoutKey(t *testing.T) {
	c := paperCatalog(t, false) // no unique index
	g := translate(t, c, `SELECT a.onhand_qty FROM inventory a, inventory b
		WHERE a.partno = b.partno AND b.type = 'CPU'`)
	trace := rewriteAll(t, g, Options{})
	for _, f := range trace {
		if f.Rule == "redundant-join-elimination" {
			t.Fatal("join elimination fired without a unique key")
		}
	}
}

func TestRuleClasses(t *testing.T) {
	c := paperCatalog(t, true)
	g := translate(t, c, paperQuery)
	// Only the subquery class: conversion happens, merge does not.
	trace := rewriteAll(t, g, Options{Classes: []string{"subquery"}})
	for _, f := range trace {
		if f.Rule == "operation-merge" {
			t.Fatal("merge class was not requested")
		}
	}
	if len(trace) == 0 {
		t.Fatal("subquery class must fire")
	}
	selects := 0
	for _, b := range g.Boxes {
		if b.Kind == qgm.KindSelect {
			selects++
		}
	}
	if selects != 2 {
		t.Error("boxes must remain unmerged")
	}
}

func TestBudgetStopsAtConsistentState(t *testing.T) {
	c := paperCatalog(t, true)
	g := translate(t, c, paperQuery)
	trace := rewriteAll(t, g, Options{Budget: 1})
	if len(trace) != 1 {
		t.Fatalf("budget 1: fired %d", len(trace))
	}
	if err := g.Check(); err != nil {
		t.Fatalf("budget-stopped QGM must be consistent: %v", err)
	}
}

func TestControlStrategiesConverge(t *testing.T) {
	// All three control strategies must reach the same fixpoint shape
	// on the paper query (rule order may differ).
	for _, s := range []Strategy{Sequential, Priority, Statistical} {
		for _, search := range []SearchOrder{DepthFirst, BreadthFirst} {
			c := paperCatalog(t, true)
			g := translate(t, c, paperQuery)
			rewriteAll(t, g, Options{Strategy: s, Search: search, Seed: 7})
			selects := 0
			for _, b := range g.Boxes {
				if b.Kind == qgm.KindSelect {
					selects++
				}
			}
			if selects != 1 {
				t.Errorf("strategy %v/%v: %d selects, want 1", s, search, selects)
			}
		}
	}
}

func TestDBCRuleRegistration(t *testing.T) {
	// A DBC can add rules; here: a toy rule that removes constant TRUE
	// predicates.
	e := NewDefaultEngine()
	err := e.Register(&Rule{
		Name:  "drop-true",
		Class: "misc",
		Condition: func(ctx *Context, b *qgm.Box) bool {
			for _, p := range b.Preds {
				if c, ok := p.Expr.(*expr.Const); ok && c.Val.Type() == datum.TBool && c.Val.Bool() {
					return true
				}
			}
			return false
		},
		Action: func(ctx *Context, b *qgm.Box) error {
			var kept []*qgm.Predicate
			for _, p := range b.Preds {
				if c, ok := p.Expr.(*expr.Const); ok && c.Val.Type() == datum.TBool && c.Val.Bool() {
					continue
				}
				kept = append(kept, p)
			}
			b.Preds = kept
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := paperCatalog(t, false)
	g := translate(t, c, "SELECT partno FROM inventory WHERE TRUE AND type = 'CPU'")
	trace, err := e.Rewrite(g, Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	dropped := false
	for _, f := range trace {
		if f.Rule == "drop-true" {
			dropped = true
		}
	}
	if !dropped {
		t.Fatal("DBC rule must fire")
	}
	if err := e.Register(&Rule{Name: ""}); err == nil {
		t.Error("invalid rule must be rejected")
	}
}

func TestCloneSubgraph(t *testing.T) {
	c := paperCatalog(t, false)
	g := translate(t, c, paperQuery)
	clone := CloneSubgraph(g, g.Top)
	if clone == g.Top {
		t.Fatal("clone must be a new box")
	}
	if len(clone.Quants) != len(g.Top.Quants) {
		t.Fatal("quantifier count differs")
	}
	for i := range clone.Quants {
		if clone.Quants[i].QID == g.Top.Quants[i].QID {
			t.Error("quantifier ids must be fresh")
		}
	}
	// Correlated reference inside the cloned subquery must point at the
	// CLONED outer quantifier.
	innerClone := clone.Quants[1].Input
	q1Clone := clone.Quants[0]
	foundCorrelation := false
	for _, p := range innerClone.Preds {
		if p.QIDs()[q1Clone.QID] {
			foundCorrelation = true
		}
		if p.QIDs()[g.Top.Quants[0].QID] {
			t.Error("cloned subquery still references the original outer quantifier")
		}
	}
	if !foundCorrelation {
		t.Error("cloned correlation must target the cloned quantifier")
	}
	// Both share the BASE boxes.
	if clone.Quants[0].Input != g.Top.Quants[0].Input {
		t.Error("BASE boxes are shared, not cloned")
	}
	if err := g.Check(); err == nil {
		// Check fails only because clone isn't wired to top; wire it
		// through CHOOSE and the graph must validate.
		t.Log("graph valid before choose (clone reachable check skipped)")
	}
	ch := WrapChoose(g, g.Top, clone)
	g.Top = ch
	g.GC()
	if err := g.Check(); err != nil {
		t.Fatalf("after WrapChoose: %v", err)
	}
	if ch.Kind != qgm.KindChoose || len(ch.Quants) != 2 {
		t.Errorf("choose box = %+v", ch)
	}
}

func TestRewriteTraceOrderDeterministic(t *testing.T) {
	c := paperCatalog(t, true)
	g1 := translate(t, c, paperQuery)
	g2 := translate(t, c, paperQuery)
	t1 := rewriteAll(t, g1, Options{})
	t2 := rewriteAll(t, g2, Options{})
	if len(t1) != len(t2) {
		t.Fatal("non-deterministic trace length")
	}
	for i := range t1 {
		if t1[i].Rule != t2[i].Rule {
			t.Fatal("non-deterministic trace")
		}
	}
}

func TestPredicateReplication(t *testing.T) {
	c := paperCatalog(t, false)
	g := translate(t, c, `SELECT q.price FROM quotations q, inventory i
		WHERE q.partno = i.partno AND q.partno = 3`)
	trace := rewriteAll(t, g, Options{})
	fired := false
	for _, f := range trace {
		if f.Rule == "predicate-replication" {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("replication must fire; trace = %v", trace)
	}
	// The replica i.partno = 3 must exist.
	found := false
	for _, p := range g.Top.Preds {
		s := p.Expr.String()
		if strings.Contains(s, "i.PARTNO = 3") {
			found = true
		}
	}
	if !found {
		t.Fatalf("replica missing:\n%s", g)
	}
	// Termination: re-running fires nothing new.
	again := rewriteAll(t, g, Options{})
	for _, f := range again {
		if f.Rule == "predicate-replication" {
			t.Fatal("replication must not refire")
		}
	}
}

func TestPredicateReplicationRange(t *testing.T) {
	c := paperCatalog(t, false)
	g := translate(t, c, `SELECT q.price FROM quotations q, inventory i
		WHERE q.partno = i.partno AND i.partno < 4`)
	rewriteAll(t, g, Options{})
	found := false
	for _, p := range g.Top.Preds {
		if strings.Contains(p.Expr.String(), "q.PARTNO < 4") {
			found = true
		}
	}
	if !found {
		t.Fatalf("range replica missing:\n%s", g)
	}
}
