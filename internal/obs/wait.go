package obs

import (
	"sync/atomic"
	"time"
)

// This file implements the wait-event layer: cheap nanosecond-clock
// instrumentation at every blocking site in the engine (WAL append and
// fsync, buffer-pool page loads and load-coalescing, the DB statement
// lock, exchange-channel backpressure, context-cancel stalls),
// accumulated per event class. Two accumulators exist:
//
//   - WaitProfile: one per DB, always on, lock-free. Counters, total
//     and max durations, and a power-of-two duration histogram per
//     class. SYS.WAITS global rows come from here.
//   - WaitSet: one per statement, shared by every worker goroutine of
//     that statement (exec.Ctx.child copies the pointer). Feeds the
//     per-statement wait attribution in SYS.STATEMENTS / SYS.WAITS and
//     the span annotations.
//
// Blocking sites record into both through nil-safe Record methods, so
// instrumentation never needs a nil check at the call site.

// WaitEvent identifies one class of blocking site.
type WaitEvent uint8

// Wait-event classes. NumWaitEvents bounds the fixed accumulator
// arrays; new classes append before it.
const (
	WaitWALAppend   WaitEvent = iota // WAL mutex + record append
	WaitWALSync                      // group-commit fsync (incl. wait for a peer's sync)
	WaitBufPoolLoad                  // buffer-pool miss: reading the page from disk
	WaitBufPoolWait                  // buffer-pool load-coalesce: blocked on a peer's read
	WaitStmtLock                     // admin latch acquisition (name kept from the retired statement lock)
	WaitExchange                     // exchange-operator channel backpressure
	WaitCancelStall                  // draining/joining workers after cancellation
	WaitTxnCommit                    // serialized commit protocol (commitMu + durable hook)
	WaitTxnConflict                  // first-writer-wins conflict detected (count-only; no block)
	NumWaitEvents
)

var waitEventNames = [NumWaitEvents]string{
	"WAL_APPEND",
	"WAL_SYNC",
	"BUFPOOL_LOAD",
	"BUFPOOL_WAIT",
	"STMT_LOCK",
	"EXCHANGE",
	"CANCEL_STALL",
	"TXN_COMMIT",
	"TXN_CONFLICT",
}

// String returns the stable upper-case event name used in SYS.WAITS,
// slow-query log records and span annotations.
func (e WaitEvent) String() string {
	if int(e) < len(waitEventNames) {
		return waitEventNames[e]
	}
	return "UNKNOWN"
}

// NumWaitBuckets is the number of histogram buckets per class: bucket i
// counts waits shorter than WaitBucketBound(i).
const NumWaitBuckets = 16

// WaitBucketBound returns the exclusive upper bound, in nanoseconds, of
// histogram bucket i: 1µs << i, with the last bucket unbounded.
func WaitBucketBound(i int) int64 {
	if i >= NumWaitBuckets-1 {
		return int64(1) << 62
	}
	return int64(time.Microsecond) << uint(i)
}

func waitBucket(nanos int64) int {
	b := 0
	for b < NumWaitBuckets-1 && nanos >= WaitBucketBound(b) {
		b++
	}
	return b
}

// WaitStat is one snapshot row: cumulative totals for one event class.
type WaitStat struct {
	Event    WaitEvent
	Count    int64
	Nanos    int64
	MaxNanos int64
	// Buckets is the non-cumulative duration histogram (profile
	// snapshots only; per-statement sets keep totals, not shapes).
	Buckets [NumWaitBuckets]int64
}

type waitClass struct {
	count   atomic.Int64
	nanos   atomic.Int64
	max     atomic.Int64
	buckets [NumWaitBuckets]atomic.Int64
}

func (c *waitClass) record(nanos int64) {
	if nanos < 0 {
		nanos = 0
	}
	c.count.Add(1)
	c.nanos.Add(nanos)
	for {
		old := c.max.Load()
		if nanos <= old || c.max.CompareAndSwap(old, nanos) {
			break
		}
	}
	c.buckets[waitBucket(nanos)].Add(1)
}

// WaitProfile is the DB-wide wait accumulator: always on, lock-free,
// cheap enough for the WAL and buffer-pool hot paths.
type WaitProfile struct {
	classes [NumWaitEvents]waitClass
}

// NewWaitProfile returns an empty profile.
func NewWaitProfile() *WaitProfile { return &WaitProfile{} }

// Record adds one wait of the given duration. Nil-safe.
func (p *WaitProfile) Record(e WaitEvent, nanos int64) {
	if p == nil || e >= NumWaitEvents {
		return
	}
	p.classes[e].record(nanos)
}

// Snapshot returns the cumulative totals per event class, in event
// order, omitting classes that never fired.
func (p *WaitProfile) Snapshot() []WaitStat {
	if p == nil {
		return nil
	}
	var out []WaitStat
	for e := WaitEvent(0); e < NumWaitEvents; e++ {
		c := &p.classes[e]
		n := c.count.Load()
		if n == 0 {
			continue
		}
		st := WaitStat{Event: e, Count: n, Nanos: c.nanos.Load(), MaxNanos: c.max.Load()}
		for i := range st.Buckets {
			st.Buckets[i] = c.buckets[i].Load()
		}
		out = append(out, st)
	}
	return out
}

// WaitSet is the per-statement wait accumulator. One is allocated per
// statement and shared (by pointer) across that statement's worker
// goroutines, so fields are atomic. It keeps count/total/max per class
// but no histogram — the shape lives in the DB-wide profile.
type WaitSet struct {
	counts [NumWaitEvents]atomic.Int64
	nanos  [NumWaitEvents]atomic.Int64
	maxes  [NumWaitEvents]atomic.Int64
}

// NewWaitSet returns an empty per-statement wait set.
func NewWaitSet() *WaitSet { return &WaitSet{} }

// Record adds one wait of the given duration. Nil-safe.
func (s *WaitSet) Record(e WaitEvent, nanos int64) {
	if s == nil || e >= NumWaitEvents {
		return
	}
	if nanos < 0 {
		nanos = 0
	}
	s.counts[e].Add(1)
	s.nanos[e].Add(nanos)
	for {
		old := s.maxes[e].Load()
		if nanos <= old || s.maxes[e].CompareAndSwap(old, nanos) {
			break
		}
	}
}

// Snapshot returns the non-zero classes in event order.
func (s *WaitSet) Snapshot() []WaitStat {
	if s == nil {
		return nil
	}
	var out []WaitStat
	for e := WaitEvent(0); e < NumWaitEvents; e++ {
		n := s.counts[e].Load()
		if n == 0 {
			continue
		}
		out = append(out, WaitStat{
			Event: e, Count: n, Nanos: s.nanos[e].Load(), MaxNanos: s.maxes[e].Load(),
		})
	}
	return out
}

// TopWaits returns the k classes with the largest total wait time,
// descending, for slow-query log records.
func (s *WaitSet) TopWaits(k int) []WaitStat {
	stats := s.Snapshot()
	for i := 1; i < len(stats); i++ { // insertion sort; len ≤ NumWaitEvents
		for j := i; j > 0 && stats[j].Nanos > stats[j-1].Nanos; j-- {
			stats[j], stats[j-1] = stats[j-1], stats[j]
		}
	}
	if k < len(stats) {
		stats = stats[:k]
	}
	return stats
}
