package obs

import "encoding/json"

// This file defines the structured statement-trace export format: a
// per-statement span tree with the compile/execute phases from Trace,
// one span per operator (with its open/next-loop/close split as child
// spans), and wait events attached as annotations. The tree is plain
// data, JSON-marshalable with the standard library, and convertible to
// flamegraph folded-stack format by walking Children.

// Span is one node of a statement span tree. Durations are cumulative
// (a parent's duration includes its children), which is the nesting
// flamegraph converters expect; self time is duration minus the sum of
// child durations.
type Span struct {
	// Name identifies the span: the statement kind for the root, the
	// phase name for phase spans, the operator kind (e.g. "HSJOIN") for
	// operator spans, and "open"/"next"/"close" for an operator's
	// call-site split.
	Name string `json:"name"`
	// Kind is the span class: "statement", "phase", "operator" or
	// "call".
	Kind     string            `json:"kind"`
	DurNanos int64             `json:"dur_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Waits    []WaitAnnotation  `json:"waits,omitempty"`
	Children []*Span           `json:"children,omitempty"`
}

// WaitAnnotation attaches one wait-event class total to a span.
type WaitAnnotation struct {
	Event   string `json:"event"`
	Count   int64  `json:"count"`
	Nanos   int64  `json:"total_ns"`
	MaxNans int64  `json:"max_ns"`
}

// WaitAnnotations converts a statement wait-set snapshot into span
// annotations.
func WaitAnnotations(stats []WaitStat) []WaitAnnotation {
	var out []WaitAnnotation
	for _, st := range stats {
		out = append(out, WaitAnnotation{
			Event: st.Event.String(), Count: st.Count,
			Nanos: st.Nanos, MaxNans: st.MaxNanos,
		})
	}
	return out
}

// StatementSpan is the exported record for one statement: the SQL, the
// outcome, and the span tree rooted at the statement span (phase spans
// as children; the operator tree nested under the "execute" phase).
type StatementSpan struct {
	SQL          string `json:"sql"`
	Kind         string `json:"kind"`
	Error        string `json:"error,omitempty"`
	PlanCacheHit bool   `json:"plan_cache_hit,omitempty"`
	TotalNanos   int64  `json:"total_ns"`
	Root         *Span  `json:"root"`
}

// JSON renders the statement span as a single JSON document.
func (s *StatementSpan) JSON() ([]byte, error) {
	return json.Marshal(s)
}

// PhaseSpans converts a Trace's phase timings into phase spans, in
// phase order, omitting phases that never ran.
func PhaseSpans(tr *Trace) []*Span {
	if tr == nil {
		return nil
	}
	var out []*Span
	for p := Phase(0); p < NumPhases; p++ {
		d := tr.Phases[p]
		if d == 0 {
			continue
		}
		out = append(out, &Span{Name: p.String(), Kind: "phase", DurNanos: int64(d)})
	}
	return out
}
