package obs

import (
	"context"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestExpositionConformance parses WriteTo output line by line against
// the exposition-format contract: every line is a # HELP comment, a
// # TYPE comment, or a sample; HELP immediately precedes its TYPE;
// every sample belongs to the most recently declared family; and no
// family is declared twice.
func TestExpositionConformance(t *testing.T) {
	r := NewRegistry()
	r.Describe("a_total", "statements executed, total")
	r.Counter("a_total").Inc()
	r.Describe("b_total", "errors with a\nnewline and a \\ backslash")
	r.CounterWith("b_total", "phase", "exec").Add(3)
	r.Describe("g", "a gauge")
	r.Gauge("g").Set(-1)
	r.Describe("h_seconds", "latency")
	r.Histogram("h_seconds", DefaultLatencyBuckets).Observe(0.2)
	r.Counter("undescribed_total").Inc() // no HELP line is fine; TYPE is mandatory

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}

	helpRe := regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.+)$`)
	typeRe := regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? [0-9.eE+-]+(Inf)?$`)

	declared := map[string]bool{}
	var pendingHelp, family string
	sawHelp := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			m := helpRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed HELP line: %q", line)
			}
			if strings.ContainsAny(m[2], "\n") {
				t.Fatalf("unescaped newline in HELP: %q", line)
			}
			pendingHelp = m[1]
			sawHelp[m[1]] = true
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if declared[m[1]] {
				t.Fatalf("family %s declared twice", m[1])
			}
			declared[m[1]] = true
			if pendingHelp != "" && pendingHelp != m[1] {
				t.Fatalf("HELP for %s not followed by its TYPE (got %s)", pendingHelp, m[1])
			}
			pendingHelp = ""
			family = m[1]
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("unparseable sample line: %q", line)
			}
			// Histogram samples carry the family name plus a suffix.
			if !strings.HasPrefix(m[1], family) {
				t.Fatalf("sample %s outside its family block (current family %s)", m[1], family)
			}
		}
	}
	for _, name := range []string{"a_total", "b_total", "g", "h_seconds"} {
		if !sawHelp[name] {
			t.Errorf("described metric %s emitted no # HELP line", name)
		}
		if !declared[name] {
			t.Errorf("metric %s emitted no # TYPE line", name)
		}
	}
	// The escaped HELP text must round-trip the newline and backslash.
	if !strings.Contains(b.String(), `errors with a\nnewline and a \\ backslash`) {
		t.Errorf("HELP escaping drifted:\n%s", b.String())
	}
}

// TestServerShutdown: graceful shutdown drains and closes the listener;
// a second shutdown is a no-op error-wise.
func TestServerShutdown(t *testing.T) {
	r := NewRegistry()
	r.Counter("up").Inc()
	s, err := StartServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if _, err := http.Get("http://" + addr + "/metrics"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
	if err := s.Shutdown(ctx); err != nil && !strings.Contains(err.Error(), "closed") {
		t.Fatalf("second shutdown: %v", err)
	}
}
