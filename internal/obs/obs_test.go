package obs

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.AddPhase(PhaseParse, time.Millisecond)
	tr.CountRule("r")
	tr.CountStar("s")
	if tr.Total() != 0 {
		t.Fatal("nil trace should total zero")
	}
	if tr.String() != "" {
		t.Fatal("nil trace should render empty")
	}
}

func TestTraceAccrual(t *testing.T) {
	tr := NewTrace()
	tr.AddPhase(PhaseParse, 2*time.Millisecond)
	tr.AddPhase(PhaseExec, 3*time.Millisecond)
	tr.CountRule("merge")
	tr.CountRule("merge")
	tr.CountStar("JOIN")
	if tr.Total() != 5*time.Millisecond {
		t.Fatalf("total = %v", tr.Total())
	}
	if tr.RuleFirings["merge"] != 2 || tr.StarExpansions["JOIN"] != 1 {
		t.Fatalf("counts = %v %v", tr.RuleFirings, tr.StarExpansions)
	}
	s := tr.String()
	for _, want := range []string{"parse=2ms", "execute=3ms", "rewrite=0s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("stmts").Inc()
	r.Counter("stmts").Add(2)
	if got := r.Counter("stmts").Value(); got != 3 {
		t.Fatalf("counter = %d", got)
	}
	r.CounterWith("by_kind", "kind", "SELECT").Inc()
	if got := r.CounterValue("by_kind", "kind", "SELECT"); got != 1 {
		t.Fatalf("labelled counter = %d", got)
	}
	if got := r.CounterValue("by_kind", "kind", "INSERT"); got != 0 {
		t.Fatalf("absent series = %d", got)
	}
	r.Gauge("open").Set(7)
	r.Gauge("open").Add(-2)
	if got := r.Gauge("open").Value(); got != 5 {
		t.Fatalf("gauge = %d", got)
	}
	r.GaugeFunc("computed", func() int64 { return 42 })
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "computed 42") {
		t.Fatalf("gauge func missing from:\n%s", b.String())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5.555 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_bucket{le="0.01"} 1`,
		`lat_bucket{le="0.1"} 2`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="+Inf"} 4`,
		"lat_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c").Inc()
				r.CounterWith("l", "k", "v").Inc()
				r.Histogram("h", DefaultLatencyBuckets).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 4000 {
		t.Fatalf("counter = %d", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 4000 {
		t.Fatalf("histogram count = %d", got)
	}
}

// promLine matches one sample line of the Prometheus text format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [0-9.eE+-]+(Inf)?$`)

// TestPrometheusTextParseable checks every emitted line against the
// exposition-format grammar (comments or samples, nothing else).
func TestPrometheusTextParseable(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	r.CounterWith("b_total", "phase", "exec").Add(3)
	r.Gauge("g").Set(-1)
	r.GaugeFunc("gf", func() int64 { return 9 })
	r.Histogram("h_seconds", DefaultLatencyBuckets).Observe(0.2)
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("unparseable exposition line: %q", line)
		}
	}
}

func TestServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("up").Inc()
	s, err := StartServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "up 1") {
		t.Fatalf("metrics body:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	// The pprof index must answer too.
	resp2, err := http.Get("http://" + s.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", resp2.StatusCode)
	}
}
