// Package obs is the observability layer of the reproduction: phase
// tracing, per-operator runtime statistics, and a dependency-free
// metrics registry with Prometheus text exposition. It sits below every
// other internal package (it imports nothing from the repository) so
// the SQL layer, the rewrite engine, the optimizer, the QES and the
// storage layer can all record into it.
//
// The layer is always compiled in but default-off: when no Trace is
// armed and no statement is instrumented, the execution hot path pays
// nothing (see the exec package's stats decorator, which simply is not
// installed). The registry's per-statement counters are a handful of
// atomic increments per statement, not per tuple.
package obs

import (
	"fmt"
	"strings"
	"time"
)

// Phase indexes the compilation/execution phases of Figure 1.
type Phase int

// The five phases a statement passes through. PhaseExec covers stream
// interpretation only; plan refinement (exec.Build) is PhaseBuild.
const (
	PhaseParse Phase = iota
	PhaseRewrite
	PhaseOptimize
	PhaseBuild
	PhaseExec
	NumPhases
)

var phaseNames = [NumPhases]string{"parse", "rewrite", "optimize", "build", "execute"}

func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// Trace records where one statement's time went: wall clock per phase,
// rewrite-rule firing counts, and optimizer STAR expansion counts. A
// nil *Trace is a valid no-op receiver for every method, so callers
// thread it unconditionally and pay only a nil check when tracing is
// off.
type Trace struct {
	// Phases holds cumulative wall time per phase.
	Phases [NumPhases]time.Duration
	// RuleFirings counts query-rewrite rule firings by rule name.
	RuleFirings map[string]int
	// StarExpansions counts optimizer STAR evaluations by STAR name.
	StarExpansions map[string]int
	// SubqHits/SubqMisses total the subquery-cache behaviour of the
	// statement (evaluate-on-demand, section 7).
	SubqHits, SubqMisses int64
	// Rollbacks counts undo-log rollbacks performed by the statement.
	Rollbacks int64
	// PlanCacheHit records that the statement reused a compiled plan
	// from the shared plan cache (the compile phases were skipped).
	PlanCacheHit bool
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{RuleFirings: map[string]int{}, StarExpansions: map[string]int{}}
}

// AddPhase accrues wall time to a phase; nil-safe.
func (t *Trace) AddPhase(p Phase, d time.Duration) {
	if t == nil || p < 0 || p >= NumPhases {
		return
	}
	t.Phases[p] += d
}

// CountRule counts one rewrite-rule firing; nil-safe.
func (t *Trace) CountRule(rule string) {
	if t == nil {
		return
	}
	if t.RuleFirings == nil {
		t.RuleFirings = map[string]int{}
	}
	t.RuleFirings[rule]++
}

// CountStar counts one STAR expansion; nil-safe.
func (t *Trace) CountStar(star string) {
	if t == nil {
		return
	}
	if t.StarExpansions == nil {
		t.StarExpansions = map[string]int{}
	}
	t.StarExpansions[star]++
}

// Total sums the phase times.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	var d time.Duration
	for _, p := range t.Phases {
		d += p
	}
	return d
}

// String renders the phase breakdown on one line, e.g.
// "parse=12µs rewrite=40µs optimize=96µs build=8µs execute=1.2ms".
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	parts := make([]string, 0, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		parts = append(parts, fmt.Sprintf("%s=%v", p, t.Phases[p]))
	}
	return strings.Join(parts, " ")
}

// OpStats accumulates the runtime behaviour of one plan operator, filled
// in by the QES stats decorator. Counters are cumulative across re-opens
// (a nested-loop inner or recursive branch runs many times per
// statement).
type OpStats struct {
	// Rows counts tuples the operator produced (successful Next calls).
	Rows int64
	// Opens/Nexts/Closes count calls; Nexts includes the final
	// exhausted call.
	Opens, Nexts, Closes int64
	// OpenNanos/NextNanos/CloseNanos are cumulative wall nanoseconds
	// inside each call, children included (see SelfNanos in exec for the
	// exclusive figure).
	OpenNanos, NextNanos, CloseNanos int64
	// MemHighWater is the highest statement-wide memory reservation
	// observed while this operator was running.
	MemHighWater int64
	// CacheHits/CacheMisses are subquery-cache statistics, nonzero only
	// for operators that evaluate subplans on demand.
	CacheHits, CacheMisses int64

	// WorkerRows breaks Rows down by exchange worker, set only for
	// exchange operators. It is harvested at the exchange's Close —
	// after every worker goroutine has joined — so unlike the counters
	// above it is written from a single goroutine.
	WorkerRows []int64
}

// TotalNanos is the operator's cumulative wall time, children included.
func (s *OpStats) TotalNanos() int64 {
	if s == nil {
		return 0
	}
	return s.OpenNanos + s.NextNanos + s.CloseNanos
}
