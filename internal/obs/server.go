package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the registry at /metrics (Prometheus text format) and
// the standard Go profiling endpoints under /debug/pprof/.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is an optional HTTP observability endpoint over one registry.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr (e.g. "127.0.0.1:0") and serves Handler
// in a background goroutine until Close.
func StartServer(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(r)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound address, for addr ":0" callers.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// DefaultShutdownTimeout bounds a graceful Shutdown when the caller's
// context carries no deadline of its own.
const DefaultShutdownTimeout = 5 * time.Second

// Shutdown drains the server gracefully: it stops accepting new
// connections and waits for in-flight scrapes to finish, up to the
// context's deadline (DefaultShutdownTimeout is applied when ctx has
// none). On deadline it falls back to Close, the hard stop.
func (s *Server) Shutdown(ctx context.Context) error {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultShutdownTimeout)
		defer cancel()
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		closeErr := s.srv.Close()
		if closeErr != nil && err == context.DeadlineExceeded {
			return closeErr
		}
		return err
	}
	return nil
}

// Close shuts the listener down immediately, aborting in-flight
// requests; prefer Shutdown for a graceful drain.
func (s *Server) Close() error { return s.srv.Close() }
