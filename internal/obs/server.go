package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry at /metrics (Prometheus text format) and
// the standard Go profiling endpoints under /debug/pprof/.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is an optional HTTP observability endpoint over one registry.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr (e.g. "127.0.0.1:0") and serves Handler
// in a background goroutine until Close.
func StartServer(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(r)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound address, for addr ":0" callers.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
