package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a dependency-free metrics registry: named counters,
// gauges and histograms, each with at most one label dimension, rendered
// in the Prometheus text exposition format. Metric handles are cheap to
// look up and cheap to bump (atomic increments), so a DB keeps one
// registry for its lifetime and statements record into it directly.
type Registry struct {
	mu         sync.Mutex
	counters   map[metricKey]*Counter
	gauges     map[metricKey]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
	help       map[string]string
}

// metricKey identifies one metric series: a name plus an optional
// single label pair.
type metricKey struct {
	name, label, value string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[metricKey]*Counter{},
		gauges:     map[metricKey]*Gauge{},
		gaugeFuncs: map[string]func() int64{},
		hists:      map[string]*Histogram{},
		help:       map[string]string{},
	}
}

// Describe attaches a one-line description to a metric name; WriteTo
// emits it as the metric's # HELP line. Call it once when the metric is
// created; re-describing a name replaces the text.
func (r *Registry) Describe(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// helpEscaper applies the Prometheus HELP escaping rules (backslash and
// newline; HELP text does not escape quotes).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution (cumulative buckets, sum and
// count), Prometheus-style. Observations and snapshots are mutex-
// guarded; histograms are bumped once per statement, not per tuple.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []int64   // non-cumulative counts per bound, plus overflow
	count   int64
	sum     float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(h.bounds)]++
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the running total of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// DefaultLatencyBuckets spans 100µs to ~100s in decades, in seconds.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 100,
}

// Counter returns (creating on first use) the unlabelled counter name.
func (r *Registry) Counter(name string) *Counter {
	return r.CounterWith(name, "", "")
}

// CounterWith returns the counter series name{label="value"}.
func (r *Registry) CounterWith(name, label, value string) *Counter {
	k := metricKey{name, label, value}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[k]
	if c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating on first use) the unlabelled gauge name.
func (r *Registry) Gauge(name string) *Gauge {
	return r.GaugeWith(name, "", "")
}

// GaugeWith returns the gauge series name{label="value"}.
func (r *Registry) GaugeWith(name, label, value string) *Gauge {
	k := metricKey{name, label, value}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// GaugeFunc registers a gauge computed at scrape time (e.g. a counter
// owned by another subsystem). Re-registering a name replaces the
// function.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns (creating on first use) the named histogram; bounds
// are ascending bucket upper limits and are fixed at first creation.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// CounterValue reads a counter series for tests; zero when absent.
func (r *Registry) CounterValue(name, label, value string) int64 {
	r.mu.Lock()
	c := r.counters[metricKey{name, label, value}]
	r.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// Sample is one metric series value in a registry snapshot, the row
// format of the SYS.METRICS virtual table. Histograms expand into one
// sample per bucket (Kind "histogram_bucket", Label "le") plus their
// _sum and _count.
type Sample struct {
	Name       string
	Kind       string // counter | gauge | histogram_bucket | histogram_sum | histogram_count
	Label      string
	LabelValue string
	Value      float64
	Help       string
}

// Snapshot dumps every metric series, sorted by name then label value,
// in the same order WriteTo renders them.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	var out []Sample
	for k, c := range r.counters {
		out = append(out, Sample{Name: k.name, Kind: "counter", Label: k.label,
			LabelValue: k.value, Value: float64(c.Value()), Help: r.help[k.name]})
	}
	for k, g := range r.gauges {
		out = append(out, Sample{Name: k.name, Kind: "gauge", Label: k.label,
			LabelValue: k.value, Value: float64(g.Value()), Help: r.help[k.name]})
	}
	for name, fn := range r.gaugeFuncs {
		out = append(out, Sample{Name: name, Kind: "gauge",
			Value: float64(fn()), Help: r.help[name]})
	}
	for name, h := range r.hists {
		ht := r.help[name]
		h.mu.Lock()
		var run int64
		for i, b := range h.bounds {
			run += h.buckets[i]
			out = append(out, Sample{Name: name, Kind: "histogram_bucket", Label: "le",
				LabelValue: strconv.FormatFloat(b, 'g', -1, 64), Value: float64(run), Help: ht})
		}
		out = append(out, Sample{Name: name, Kind: "histogram_bucket", Label: "le",
			LabelValue: "+Inf", Value: float64(h.count), Help: ht})
		out = append(out, Sample{Name: name, Kind: "histogram_sum", Value: h.sum, Help: ht})
		out = append(out, Sample{Name: name, Kind: "histogram_count", Value: float64(h.count), Help: ht})
		h.mu.Unlock()
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].LabelValue < out[j].LabelValue
	})
	return out
}

// WriteTo renders every metric in the Prometheus text exposition
// format, sorted by name then label value, with # TYPE headers.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	type series struct {
		key metricKey
		val string
	}
	group := map[string][]series{} // name → series
	typ := map[string]string{}
	for k, c := range r.counters {
		group[k.name] = append(group[k.name], series{k, strconv.FormatInt(c.Value(), 10)})
		typ[k.name] = "counter"
	}
	for k, g := range r.gauges {
		group[k.name] = append(group[k.name], series{k, strconv.FormatInt(g.Value(), 10)})
		typ[k.name] = "gauge"
	}
	for name, fn := range r.gaugeFuncs {
		group[name] = append(group[name], series{metricKey{name: name}, strconv.FormatInt(fn(), 10)})
		typ[name] = "gauge"
	}
	type histSnap struct {
		name   string
		bounds []float64
		cumul  []int64
		count  int64
		sum    float64
	}
	var hists []histSnap
	for name, h := range r.hists {
		h.mu.Lock()
		hs := histSnap{name: name, bounds: append([]float64(nil), h.bounds...),
			count: h.count, sum: h.sum}
		var run int64
		for _, b := range h.buckets {
			run += b
			hs.cumul = append(hs.cumul, run)
		}
		h.mu.Unlock()
		hists = append(hists, hs)
	}
	help := make(map[string]string, len(r.help))
	for name, text := range r.help {
		help[name] = text
	}
	r.mu.Unlock()

	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	names := make([]string, 0, len(group))
	for name := range group {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if h := help[name]; h != "" {
			if err := emit("# HELP %s %s\n", name, helpEscaper.Replace(h)); err != nil {
				return total, err
			}
		}
		if err := emit("# TYPE %s %s\n", name, typ[name]); err != nil {
			return total, err
		}
		ss := group[name]
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].key.label != ss[j].key.label {
				return ss[i].key.label < ss[j].key.label
			}
			return ss[i].key.value < ss[j].key.value
		})
		for _, s := range ss {
			if s.key.label == "" {
				if err := emit("%s %s\n", name, s.val); err != nil {
					return total, err
				}
				continue
			}
			if err := emit("%s{%s=%q} %s\n", name, s.key.label, s.key.value, s.val); err != nil {
				return total, err
			}
		}
	}
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, h := range hists {
		if ht := help[h.name]; ht != "" {
			if err := emit("# HELP %s %s\n", h.name, helpEscaper.Replace(ht)); err != nil {
				return total, err
			}
		}
		if err := emit("# TYPE %s histogram\n", h.name); err != nil {
			return total, err
		}
		for i, b := range h.bounds {
			if err := emit("%s_bucket{le=%q} %d\n", h.name,
				strconv.FormatFloat(b, 'g', -1, 64), h.cumul[i]); err != nil {
				return total, err
			}
		}
		if err := emit("%s_bucket{le=\"+Inf\"} %d\n", h.name, h.count); err != nil {
			return total, err
		}
		if err := emit("%s_sum %s\n", h.name, strconv.FormatFloat(h.sum, 'g', -1, 64)); err != nil {
			return total, err
		}
		if err := emit("%s_count %d\n", h.name, h.count); err != nil {
			return total, err
		}
	}
	return total, nil
}
