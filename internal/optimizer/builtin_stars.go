package optimizer

import (
	"fmt"
	"math"

	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/qgm"
)

// BuiltinSTARs returns the base STAR array. The paper reports that all
// R* strategies plus several new ones fit "in under 20 rules"; this
// array reproduces that economy — see TestSTARCountUnder20.
//
// Grammar sketch (nonterminals are STAR names):
//
//	PLAN(box)      → SelectPlan | GroupByPlan | SetOpPlan | OuterJoinPlan
//	               | ValuesPlan | TableFnPlan | ChoosePlan | RecUnionPlan
//	               | DMLPlan | BasePlan
//	ACCESS(quant)  → TableScan | IndexScan* | Derived | RecRef
//	JOIN(l, r, p)  → NestedLoop | HashJoin | MergeJoin(GLUE ...)
//	GLUE(plans, o) → AlreadyOrdered | AddSort
func BuiltinSTARs() []*STAR {
	return []*STAR{
		{Name: "PLAN", Alternatives: []*Alternative{
			{Name: "Select", Condition: boxKind(qgm.KindSelect), Build: buildSelect},
			{Name: "GroupBy", Condition: boxKind(qgm.KindGroupBy), Build: buildGroupBy},
			{Name: "SetOp", Condition: func(ctx *Ctx, a Args) bool {
				switch a.Box.Kind {
				case qgm.KindUnion, qgm.KindIntersect, qgm.KindExcept:
					return !a.Box.Recursive
				}
				return false
			}, Build: buildSetOp},
			{Name: "RecUnion", Condition: func(ctx *Ctx, a Args) bool {
				return a.Box.Kind == qgm.KindUnion && a.Box.Recursive
			}, Build: buildRecUnion},
			{Name: "OuterJoin", Condition: boxKind(qgm.KindOuterJoin), Build: buildOuterJoin},
			{Name: "Values", Condition: boxKind(qgm.KindValues), Build: buildValues},
			{Name: "TableFn", Condition: boxKind(qgm.KindTableFn), Build: buildTableFn},
			{Name: "Choose", Condition: boxKind(qgm.KindChoose), Build: buildChoose},
			{Name: "Base", Condition: boxKind(qgm.KindBase), Build: buildBareBase},
			{Name: "DML", Condition: func(ctx *Ctx, a Args) bool {
				switch a.Box.Kind {
				case qgm.KindInsert, qgm.KindUpdate, qgm.KindDelete:
					return true
				}
				return false
			}, Build: buildDML},
		}},
		{Name: "ACCESS", Alternatives: []*Alternative{
			{Name: "TableScan", Rank: 1,
				Condition: func(ctx *Ctx, a Args) bool { return a.Quant.Input.Kind == qgm.KindBase },
				Build:     buildTableScan},
			{Name: "IndexScan", Rank: 2,
				Condition: func(ctx *Ctx, a Args) bool {
					return a.Quant.Input.Kind == qgm.KindBase && len(a.Quant.Input.Table.Indexes) > 0
				},
				Build: buildIndexScans},
			{Name: "Derived", Rank: 1,
				Condition: func(ctx *Ctx, a Args) bool {
					b := a.Quant.Input
					return b.Kind != qgm.KindBase && !ctx.Opt.inProgress[b]
				},
				Build: buildDerivedAccess},
			{Name: "RecRef", Rank: 1,
				Condition: func(ctx *Ctx, a Args) bool {
					b := a.Quant.Input
					return b.Recursive && ctx.Opt.inProgress[b]
				},
				Build: buildRecRef},
		}},
		{Name: "JOIN", Alternatives: []*Alternative{
			{Name: "NestedLoop", Rank: 1, Build: buildNLJoin},
			{Name: "HashJoin", Rank: 1,
				Condition: hasEquiPred,
				Build:     buildHashJoin},
			{Name: "MergeJoin", Rank: 2,
				// The merge executor implements only the regular kind;
				// outer joins use the nested-loop or hash methods.
				Condition: func(ctx *Ctx, a Args) bool {
					if a.JoinKind != "" && a.JoinKind != plan.KindRegular {
						return false
					}
					return hasEquiPred(ctx, a)
				},
				Build: buildMergeJoin},
		}},
		{Name: "GLUE", Alternatives: []*Alternative{
			{Name: "AlreadyOrdered", Rank: 1, Build: func(ctx *Ctx, a Args) ([]*plan.Node, error) {
				if p := cheapestWithOrder(a.Plans, a.ReqOrder); p != nil {
					return []*plan.Node{p}, nil
				}
				return nil, nil
			}},
			{Name: "AddSort", Rank: 1, Build: func(ctx *Ctx, a Args) ([]*plan.Node, error) {
				p := cheapest(a.Plans)
				if p == nil {
					return nil, nil
				}
				return []*plan.Node{sortNode(p, a.ReqOrder)}, nil
			}},
		}},
	}
}

func boxKind(kind string) func(*Ctx, Args) bool {
	return func(ctx *Ctx, a Args) bool { return a.Box.Kind == kind }
}

// ---------------------------------------------------------------------
// Access alternatives

// pushableScanPreds splits single-quantifier predicates into those the
// storage scan can evaluate (the paper: functions may be invoked "in
// the predicate evaluator" to reduce data returned) and residuals.
func pushableScanPreds(preds []expr.Expr) (push, residual []expr.Expr) {
	for _, p := range preds {
		if expr.HasSubplan(p) {
			residual = append(residual, p)
			continue
		}
		push = append(push, p)
	}
	return push, residual
}

func buildTableScan(ctx *Ctx, a Args) ([]*plan.Node, error) {
	q := a.Quant
	t := q.Input.Table
	push, residual := pushableScanPreds(a.Preds)
	cols := make([]plan.ColRef, len(t.Cols))
	types := make([]datum.TypeID, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = plan.ColRef{QID: q.QID, Ord: i}
		types[i] = c.Type
	}
	props := ctx.Opt.costScan(t, push)
	props.Tables = map[int]bool{q.QID: true}
	n := &plan.Node{
		Op:    plan.OpScan,
		Table: t,
		QID:   q.QID,
		Cols:  cols,
		Types: types,
		Preds: push,
		Props: props,
	}
	return []*plan.Node{filterNode(ctx.Opt, n, residual)}, nil
}

// sargFor matches predicates against an index's key columns and builds
// inclusive lo/hi bound expressions. It recognizes equality prefixes
// plus one range predicate on the next key column (ordered methods),
// and full windows for spatial methods (every key column independently
// range-bound) — how Corona "recognizes when this access method is
// useful for a query".
func sargFor(ix *qgmIndex, qid int, preds []expr.Expr) (lo, hi []expr.Expr, used map[expr.Expr]bool, selectivity float64, ok bool) {
	used = map[expr.Expr]bool{}
	// For each key column, find bounding expressions.
	type bounds struct {
		lo, hi expr.Expr
		eq     bool
	}
	per := make([]bounds, len(ix.KeyCols))
	for _, p := range preds {
		cmp, isCmp := p.(*expr.Cmp)
		if !isCmp || expr.HasSubplan(p) {
			continue
		}
		col, other, op := sargSides(cmp, qid)
		if col == nil {
			continue
		}
		for ki, ord := range ix.KeyCols {
			if col.Ord != ord {
				continue
			}
			switch op {
			case expr.OpEq:
				per[ki] = bounds{lo: other, hi: other, eq: true}
				used[p] = true
			case expr.OpGe, expr.OpGt:
				if per[ki].lo == nil && !per[ki].eq {
					per[ki].lo = other
					used[p] = true
				}
			case expr.OpLe, expr.OpLt:
				if per[ki].hi == nil && !per[ki].eq {
					per[ki].hi = other
					used[p] = true
				}
			}
		}
	}
	if ix.Caps.Spatial {
		// Window query: every dimension must have at least one bound.
		anyBound := false
		for _, b := range per {
			if b.lo != nil || b.hi != nil {
				anyBound = true
			}
		}
		if !anyBound {
			return nil, nil, nil, 0, false
		}
		for _, b := range per {
			lo = append(lo, orNullExpr(b.lo))
			hi = append(hi, orNullExpr(b.hi))
		}
		return lo, hi, used, 0.1, true
	}
	// Ordered method: equality prefix, then optional range column.
	kPrefix := 0
	for kPrefix < len(per) && per[kPrefix].eq {
		kPrefix++
	}
	sel := 1.0
	if kPrefix == 0 {
		if len(per) == 0 || (per[0].lo == nil && per[0].hi == nil) {
			return nil, nil, nil, 0, false
		}
		// Pure range on first column.
		lo = []expr.Expr{orNullExpr(per[0].lo)}
		hi = []expr.Expr{orNullExpr(per[0].hi)}
		if per[0].lo != nil && per[0].hi != nil {
			sel = defaultRangeSel / 2
		} else {
			sel = defaultRangeSel
		}
		return lo, hi, used, sel, true
	}
	for i := 0; i < kPrefix; i++ {
		lo = append(lo, per[i].lo)
		hi = append(hi, per[i].hi)
		sel *= defaultEqSel
	}
	if kPrefix < len(per) && (per[kPrefix].lo != nil || per[kPrefix].hi != nil) {
		lo = append(lo, orNullExpr(per[kPrefix].lo))
		hi = append(hi, orNullExpr(per[kPrefix].hi))
		sel *= defaultRangeSel
	}
	return lo, hi, used, sel, true
}

// orNullExpr stands in for an unbounded side (NULL sorts first, so a
// NULL lo bound means "from the start"; exec interprets NULL hi as
// unbounded).
func orNullExpr(e expr.Expr) expr.Expr {
	if e == nil {
		return expr.NewConst(datum.Null)
	}
	return e
}

// sargSides decomposes cmp into (indexed column of qid, other side,
// operator-with-column-on-left), requiring the other side to be free of
// qid (constants, parameters, or correlation columns).
func sargSides(cmp *expr.Cmp, qid int) (*expr.Col, expr.Expr, expr.CmpOp) {
	if c, ok := cmp.L.(*expr.Col); ok && c.QID == qid && !expr.QIDs(cmp.R)[qid] {
		return c, cmp.R, cmp.Op
	}
	if c, ok := cmp.R.(*expr.Col); ok && c.QID == qid && !expr.QIDs(cmp.L)[qid] {
		return c, cmp.L, cmp.Op.Flip()
	}
	return nil, nil, 0
}

// qgmIndex is a narrow view of catalog.Index used by sargFor.
type qgmIndex struct {
	KeyCols []int
	Caps    struct {
		Spatial bool
		Ordered bool
	}
}

func buildIndexScans(ctx *Ctx, a Args) ([]*plan.Node, error) {
	q := a.Quant
	t := q.Input.Table
	var out []*plan.Node
	cols := make([]plan.ColRef, len(t.Cols))
	types := make([]datum.TypeID, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = plan.ColRef{QID: q.QID, Ord: i}
		types[i] = c.Type
	}
	for _, ix := range t.Indexes {
		vix := &qgmIndex{KeyCols: ix.KeyCols}
		vix.Caps.Spatial = ix.Caps.Spatial
		vix.Caps.Ordered = ix.Caps.Ordered
		lo, hi, used, matchSel, ok := sargFor(vix, q.QID, a.Preds)
		if ok {
			// Refine the match estimate with column statistics: the
			// index qualifies exactly the rows its used predicates
			// select.
			var usedPreds []expr.Expr
			for _, p := range a.Preds {
				if used[p] {
					usedPreds = append(usedPreds, p)
				}
			}
			if len(usedPreds) > 0 {
				matchSel = ctx.Opt.conjunctSelectivity(usedPreds)
			}
		}
		var residual []expr.Expr
		if ok {
			for _, p := range a.Preds {
				if !used[p] || rangeBound(p) {
					// Re-check range predicates (inclusive index bounds
					// over-approximate strict comparisons).
					if !used[p] || strictCmp(p) {
						residual = append(residual, p)
					}
				}
			}
		} else if ix.Caps.Ordered {
			// Full ordered scan: useful only for its order property.
			lo, hi = nil, nil
			matchSel = 1.0
			residual = a.Preds
		} else {
			continue
		}
		props := ctx.Opt.costIndexScan(t, matchSel, residual, len(ix.KeyCols))
		props.Tables = map[int]bool{q.QID: true}
		if ix.Caps.Ordered {
			for _, ord := range ix.KeyCols {
				props.Order = append(props.Order, plan.SortKey{Slot: ord})
			}
		}
		out = append(out, &plan.Node{
			Op:     plan.OpIndex,
			Table:  t,
			Index:  ix,
			QID:    q.QID,
			Cols:   cols,
			Types:  types,
			LoVals: lo,
			HiVals: hi,
			Preds:  residual,
			Props:  props,
		})
	}
	return out, nil
}

// rangeBound reports whether p is a range comparison (kept as residual
// to enforce strict bounds over inclusive index ranges).
func rangeBound(p expr.Expr) bool {
	cmp, ok := p.(*expr.Cmp)
	if !ok {
		return false
	}
	switch cmp.Op {
	case expr.OpLt, expr.OpGt, expr.OpLe, expr.OpGe:
		return true
	}
	return false
}

func strictCmp(p expr.Expr) bool {
	cmp, ok := p.(*expr.Cmp)
	if !ok {
		return false
	}
	return cmp.Op == expr.OpLt || cmp.Op == expr.OpGt
}

func buildDerivedAccess(ctx *Ctx, a Args) ([]*plan.Node, error) {
	inner, err := ctx.Opt.PlanBox(a.Quant.Input)
	if err != nil {
		return nil, err
	}
	n := accessNode(a.Quant, inner)
	return []*plan.Node{filterNode(ctx.Opt, n, a.Preds)}, nil
}

func buildRecRef(ctx *Ctx, a Args) ([]*plan.Node, error) {
	q := a.Quant
	cols := make([]plan.ColRef, len(q.Input.Head))
	types := make([]datum.TypeID, len(q.Input.Head))
	for i, hc := range q.Input.Head {
		cols[i] = plan.ColRef{QID: q.QID, Ord: i}
		types[i] = hc.Type
	}
	n := &plan.Node{
		Op:       plan.OpRecRef,
		QID:      q.QID,
		RecBoxID: q.Input.ID,
		Cols:     cols,
		Types:    types,
		Props: plan.Props{
			Tables: map[int]bool{q.QID: true},
			Rows:   100, // refined after the seed is planned
			Cost:   1,
		},
	}
	return []*plan.Node{filterNode(ctx.Opt, n, a.Preds)}, nil
}

// ---------------------------------------------------------------------
// Join alternatives

// equiPairs extracts hash/merge-join key pairs from join predicates.
func equiPairs(preds []expr.Expr, l, r *plan.Node) (lslots, rslots []int, residual []expr.Expr) {
	for _, p := range preds {
		cmp, ok := p.(*expr.Cmp)
		if !ok || cmp.Op != expr.OpEq || expr.HasSubplan(p) {
			residual = append(residual, p)
			continue
		}
		lc, lok := cmp.L.(*expr.Col)
		rc, rok := cmp.R.(*expr.Col)
		if !lok || !rok {
			residual = append(residual, p)
			continue
		}
		ls, rs := l.SlotOf(lc.QID, lc.Ord), r.SlotOf(rc.QID, rc.Ord)
		if ls >= 0 && rs >= 0 {
			lslots = append(lslots, ls)
			rslots = append(rslots, rs)
			continue
		}
		ls, rs = l.SlotOf(rc.QID, rc.Ord), r.SlotOf(lc.QID, lc.Ord)
		if ls >= 0 && rs >= 0 {
			lslots = append(lslots, ls)
			rslots = append(rslots, rs)
			continue
		}
		residual = append(residual, p)
	}
	return
}

func hasEquiPred(ctx *Ctx, a Args) bool {
	if len(a.Left) == 0 || len(a.Right) == 0 {
		return false
	}
	ls, _, _ := equiPairs(a.Preds, a.Left[0], a.Right[0])
	return len(ls) > 0
}

func joinCols(l, r *plan.Node) ([]plan.ColRef, []datum.TypeID) {
	cols := append(append([]plan.ColRef(nil), l.Cols...), r.Cols...)
	types := append(append([]datum.TypeID(nil), l.Types...), r.Types...)
	return cols, types
}

func joinTables(l, r *plan.Node) map[int]bool {
	out := map[int]bool{}
	for q := range l.Props.Tables {
		out[q] = true
	}
	for q := range r.Props.Tables {
		out[q] = true
	}
	return out
}

func buildNLJoin(ctx *Ctx, a Args) ([]*plan.Node, error) {
	var out []*plan.Node
	r := cheapest(a.Right)
	if r == nil {
		return nil, nil
	}
	kind := a.JoinKind
	if kind == "" {
		kind = plan.KindRegular
	}
	for _, l := range a.Left {
		sel := ctx.Opt.conjunctSelectivity(a.Preds)
		props := ctx.Opt.costNLJoin(l.Props, r.Props, sel, len(a.Preds))
		props.Tables = joinTables(l, r)
		cols, types := joinCols(l, r)
		out = append(out, &plan.Node{
			Op:       plan.OpNLJoin,
			Inputs:   []*plan.Node{l, r},
			Cols:     cols,
			Types:    types,
			JoinKind: kind,
			JoinPred: expr.AndAll(a.Preds),
			Props:    props,
		})
	}
	return out, nil
}

func buildHashJoin(ctx *Ctx, a Args) ([]*plan.Node, error) {
	l, r := cheapest(a.Left), cheapest(a.Right)
	if l == nil || r == nil {
		return nil, nil
	}
	ls, rs, residual := equiPairs(a.Preds, l, r)
	if len(ls) == 0 {
		return nil, nil
	}
	kind := a.JoinKind
	if kind == "" {
		kind = plan.KindRegular
	}
	sel := ctx.Opt.conjunctSelectivity(a.Preds)
	props := ctx.Opt.costHashJoin(l.Props, r.Props, sel)
	props.Tables = joinTables(l, r)
	props = ctx.Opt.costFilter(props, residual)
	props.Tables = joinTables(l, r)
	cols, types := joinCols(l, r)
	return []*plan.Node{{
		Op:        plan.OpHSJoin,
		Inputs:    []*plan.Node{l, r},
		Cols:      cols,
		Types:     types,
		JoinKind:  kind,
		EquiLeft:  ls,
		EquiRight: rs,
		JoinPred:  expr.AndAll(residual),
		Props:     props,
	}}, nil
}

func buildMergeJoin(ctx *Ctx, a Args) ([]*plan.Node, error) {
	l0, r0 := cheapest(a.Left), cheapest(a.Right)
	if l0 == nil || r0 == nil {
		return nil, nil
	}
	ls, rs, residual := equiPairs(a.Preds, l0, r0)
	if len(ls) == 0 {
		return nil, nil
	}
	// "The merge join requires its input table streams to be ordered by
	// the join columns. Required properties are achieved by additional
	// glue STARs."
	lorder := make([]plan.SortKey, len(ls))
	rorder := make([]plan.SortKey, len(rs))
	for i := range ls {
		lorder[i] = plan.SortKey{Slot: ls[i]}
		rorder[i] = plan.SortKey{Slot: rs[i]}
	}
	lp, err := ctx.Evaluate("GLUE", Args{Plans: a.Left, ReqOrder: lorder})
	if err != nil {
		return nil, err
	}
	rp, err := ctx.Evaluate("GLUE", Args{Plans: a.Right, ReqOrder: rorder})
	if err != nil {
		return nil, err
	}
	l, r := cheapest(lp), cheapest(rp)
	if l == nil || r == nil {
		return nil, nil
	}
	kind := a.JoinKind
	if kind == "" {
		kind = plan.KindRegular
	}
	sel := ctx.Opt.conjunctSelectivity(a.Preds)
	props := ctx.Opt.costMergeJoin(l.Props, r.Props, sel)
	props.Tables = joinTables(l, r)
	props.Order = lorder
	cols, types := joinCols(l, r)
	return []*plan.Node{{
		Op:        plan.OpSMJoin,
		Inputs:    []*plan.Node{l, r},
		Cols:      cols,
		Types:     types,
		JoinKind:  kind,
		EquiLeft:  ls,
		EquiRight: rs,
		JoinPred:  expr.AndAll(residual),
		SortKeys:  lorder,
		Props:     props,
	}}, nil
}

// ---------------------------------------------------------------------
// Box plan alternatives

func buildSelect(ctx *Ctx, a Args) ([]*plan.Node, error) {
	o := ctx.Opt
	b := a.Box
	base, err := o.planSelectBody(ctx, b)
	if err != nil {
		return nil, err
	}
	// Project the head (compiling any deferred subqueries inside head
	// expressions).
	cols, types := boxCols(b)
	exprs := make([]expr.Expr, len(b.Head))
	for i, hc := range b.Head {
		he, err := o.compileSubplans(hc.Expr, b)
		if err != nil {
			return nil, err
		}
		exprs[i] = he
	}
	props := plan.Props{
		Rows: base.Props.Rows,
		Cost: base.Props.Cost + base.Props.Rows*float64(len(exprs))*costRowCPU,
	}
	n := &plan.Node{
		Op:     plan.OpProject,
		Inputs: []*plan.Node{base},
		Cols:   cols,
		Types:  types,
		Exprs:  exprs,
		Props:  props,
	}
	// Order survives projection when the sort columns are projected
	// plainly; conservatively drop it (ORDER BY adds its own SORT).
	if b.Distinct == qgm.EnforceDistinct {
		n = &plan.Node{
			Op:     plan.OpDistinct,
			Inputs: []*plan.Node{n},
			Cols:   cols,
			Types:  types,
			Props:  costDistinct(n.Props),
		}
	}
	return []*plan.Node{n}, nil
}

// planSelectBody joins a SELECT box's setformers, applies its subquery
// quantifiers, and applies residual predicates; the head projection is
// added by buildSelect.
func (o *Optimizer) planSelectBody(ctx *Ctx, b *qgm.Box) (*plan.Node, error) {
	allSetformers := b.Setformers()
	subqs := b.SubqueryQuants()
	subqQID := map[int]bool{}
	for _, q := range subqs {
		subqQID[q.QID] = true
	}
	bQIDs := map[int]bool{}
	for _, q := range b.Quants {
		bQIDs[q.QID] = true
	}

	// Partition setformers into independent ones (join-enumerable) and
	// lateral ones: a setformer whose derived table references sibling
	// quantifiers of this box (a correlated table expression, or the
	// intermediate state after Rule 1 fires on a correlated subquery)
	// must be applied per outer tuple, like a subquery quantifier.
	var setformers, laterals []*qgm.Quantifier
	lateralQID := map[int]bool{}
	for _, q := range allSetformers {
		isLateral := false
		if q.Input.Kind != qgm.KindBase {
			for _, ref := range foreignCorrCols(q.Input, b) {
				if bQIDs[ref.QID] {
					isLateral = true
					break
				}
			}
		}
		if isLateral {
			laterals = append(laterals, q)
			lateralQID[q.QID] = true
		} else {
			setformers = append(setformers, q)
		}
	}

	// Classify predicates.
	scanPreds := map[int][]expr.Expr{}
	var joinPreds, residual, pendingLateral []expr.Expr
	subqPreds := map[int][]expr.Expr{} // keyed by subquery quantifier
	for _, p := range b.Preds {
		if expr.HasSubplan(p.Expr) {
			residual = append(residual, p.Expr)
			continue
		}
		local := localQIDs(p.Expr, b)
		var subRefs []int
		nSet := 0
		oneSet := -1
		touchesLateral := false
		for qid := range local {
			switch {
			case subqQID[qid]:
				subRefs = append(subRefs, qid)
			case lateralQID[qid]:
				touchesLateral = true
			default:
				nSet++
				oneSet = qid
			}
		}
		switch {
		case touchesLateral:
			pendingLateral = append(pendingLateral, p.Expr)
		case len(subRefs) == 1:
			subqPreds[subRefs[0]] = append(subqPreds[subRefs[0]], p.Expr)
		case len(subRefs) > 1:
			residual = append(residual, p.Expr)
		case nSet == 1:
			scanPreds[oneSet] = append(scanPreds[oneSet], p.Expr)
		case nSet == 0:
			residual = append(residual, p.Expr) // constant or pure correlation
		default:
			joinPreds = append(joinPreds, p.Expr)
		}
	}
	joinPreds = append(joinPreds, impliedEqualities(joinPreds)...)

	var cur *plan.Node
	if len(setformers) == 0 {
		// SELECT without FROM: one empty row.
		cur = &plan.Node{
			Op:    plan.OpValues,
			Rows:  [][]expr.Expr{{}},
			Props: plan.Props{Rows: 1, Cost: 0},
		}
	} else {
		joined, err := o.enumerateJoins(ctx, setformers, scanPreds, joinPreds)
		if err != nil {
			return nil, err
		}
		cur = cheapest(joined)
		if cur == nil {
			return nil, fmt.Errorf("optimizer: join enumeration produced no plan for box %d", b.ID)
		}
	}

	// Apply lateral setformers in dependency order.
	applied := map[int]bool{}
	for _, q := range setformers {
		applied[q.QID] = true
	}
	available := func(refs []plan.ColRef, self int) bool {
		for _, r := range refs {
			if bQIDs[r.QID] && r.QID != self && !applied[r.QID] {
				return false
			}
		}
		return true
	}
	remaining := append([]*qgm.Quantifier(nil), laterals...)
	for len(remaining) > 0 {
		progressed := false
		for i, q := range remaining {
			corr := foreignCorrCols(q.Input, b)
			if !available(corr, q.QID) {
				continue
			}
			inner, err := o.PlanBox(q.Input)
			if err != nil {
				return nil, err
			}
			cols := append([]plan.ColRef(nil), cur.Cols...)
			types := append([]datum.TypeID(nil), cur.Types...)
			for hi, hc := range q.Input.Head {
				cols = append(cols, plan.ColRef{QID: q.QID, Ord: hi})
				types = append(types, hc.Type)
			}
			// Attach pending predicates now coverable.
			var preds []expr.Expr
			var still []expr.Expr
			for _, p := range pendingLateral {
				ok := true
				for qid := range localQIDs(p, b) {
					if qid != q.QID && !applied[qid] {
						ok = false
						break
					}
				}
				if ok {
					preds = append(preds, p)
				} else {
					still = append(still, p)
				}
			}
			pendingLateral = still
			sel := o.conjunctSelectivity(preds)
			cur = &plan.Node{
				Op:       plan.OpSubq,
				Inputs:   []*plan.Node{cur, inner},
				Cols:     cols,
				Types:    types,
				JoinKind: plan.KindLateral,
				Preds:    preds,
				CorrCols: corr,
				QID:      q.QID,
				Props: plan.Props{
					Tables: cur.Props.Tables,
					Rows:   math.Max(1, cur.Props.Rows*inner.Props.Rows*sel),
					Cost:   cur.Props.Cost + cur.Props.Rows*(inner.Props.Cost*0.5+costRowCPU),
				},
			}
			applied[q.QID] = true
			remaining = append(remaining[:i], remaining[i+1:]...)
			progressed = true
			break
		}
		if !progressed {
			return nil, fmt.Errorf("optimizer: cyclic lateral references in box %d", b.ID)
		}
	}
	residual = append(residual, pendingLateral...)

	// Apply subquery quantifiers (each a join of its own kind).
	for _, q := range subqs {
		inner, err := o.PlanBox(q.Input)
		if err != nil {
			return nil, err
		}
		kind := plan.KindScalarSub
		switch q.Type {
		case qgm.QExists:
			kind = plan.KindExists
		case qgm.QAll:
			kind = plan.KindAll
		case qgm.QScalar:
			kind = plan.KindScalarSub
		default:
			kind = q.Type // custom set-predicate quantifier
		}
		corr := foreignCorrCols(q.Input, b)
		cols := cur.Cols
		types := cur.Types
		var preds []expr.Expr
		if q.Type == qgm.QScalar {
			// Scalar quantifiers append the (single-row) value; linking
			// predicates become residual filters above.
			for i, hc := range q.Input.Head {
				cols = append(append([]plan.ColRef(nil), cols...), plan.ColRef{QID: q.QID, Ord: i})
				types = append(append([]datum.TypeID(nil), types...), hc.Type)
			}
			residual = append(residual, subqPreds[q.QID]...)
		} else {
			preds = subqPreds[q.QID]
		}
		perRow := inner.Props.Cost
		if len(corr) == 0 {
			perRow = 0 // evaluated once, cached (evaluate-on-demand)
		}
		outRows := cur.Props.Rows * 0.5
		if q.Type == qgm.QScalar {
			outRows = cur.Props.Rows
		}
		props := plan.Props{
			Tables: cur.Props.Tables,
			Order:  cur.Props.Order,
			Rows:   outRows,
			Cost:   cur.Props.Cost + inner.Props.Cost + cur.Props.Rows*(perRow*0.5+costRowCPU),
		}
		cur = &plan.Node{
			Op:       plan.OpSubq,
			Inputs:   []*plan.Node{cur, inner},
			Cols:     cols,
			Types:    types,
			JoinKind: kind,
			Negated:  q.Negated,
			SetPred:  q.SetPred,
			Preds:    preds,
			CorrCols: corr,
			QID:      q.QID,
			Props:    props,
		}
	}
	// Compile deferred subqueries (OR-of-subquery predicates) hiding
	// inside residual expressions, so the QES can install their
	// evaluate-on-demand closures.
	for i, r := range residual {
		nr, err := o.compileSubplans(r, b)
		if err != nil {
			return nil, err
		}
		residual[i] = nr
	}
	return filterNode(o, cur, residual), nil
}

// compileSubplans replaces translation-time DeferredSubquery payloads
// with compiled SubplanInfo payloads.
func (o *Optimizer) compileSubplans(e expr.Expr, b *qgm.Box) (expr.Expr, error) {
	var firstErr error
	out := expr.Transform(e, func(x expr.Expr) expr.Expr {
		sp, ok := x.(*expr.Subplan)
		if !ok {
			return x
		}
		ds, ok := sp.Aux.(*qgm.DeferredSubquery)
		if !ok {
			return x
		}
		inner, err := o.PlanBox(ds.Box)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return x
		}
		return &expr.Subplan{
			Label: sp.Label,
			Typ:   sp.Typ,
			Aux: &plan.SubplanInfo{
				Plan:     inner,
				Mode:     ds.Mode,
				Negated:  ds.Negated,
				Lhs:      ds.Lhs,
				CorrCols: foreignCorrCols(ds.Box, b),
			},
		}
	})
	return out, firstErr
}

func buildGroupBy(ctx *Ctx, a Args) ([]*plan.Node, error) {
	o := ctx.Opt
	b := a.Box
	q := b.Quants[0]
	inner, err := o.PlanBox(q.Input)
	if err != nil {
		return nil, err
	}
	in := accessNode(q, inner)
	// Predicates parked on the group box (pushed by rewrite but not yet
	// migrated into the input) filter rows before grouping.
	var preds []expr.Expr
	for _, p := range b.Preds {
		preds = append(preds, p.Expr)
	}
	in = filterNode(o, in, preds)

	groupSlots := make([]int, len(b.GroupBy))
	for i, ge := range b.GroupBy {
		c, ok := ge.(*expr.Col)
		if !ok {
			return nil, fmt.Errorf("optimizer: non-column grouping expression %s", ge)
		}
		groupSlots[i] = in.SlotOf(c.QID, c.Ord)
		if groupSlots[i] < 0 {
			return nil, fmt.Errorf("optimizer: grouping column %s not in input", ge)
		}
	}
	var aggs []*expr.AggCall
	for _, hc := range b.Head[len(b.GroupBy):] {
		ac, ok := hc.Expr.(*expr.AggCall)
		if !ok {
			return nil, fmt.Errorf("optimizer: group head column %s is not an aggregate", hc.Name)
		}
		aggs = append(aggs, ac)
	}
	cols, types := boxCols(b)
	return []*plan.Node{{
		Op:        plan.OpGroup,
		Inputs:    []*plan.Node{in},
		Cols:      cols,
		Types:     types,
		GroupCols: groupSlots,
		Aggs:      aggs,
		Props:     costGroup(in.Props, len(aggs)),
	}}, nil
}

func buildSetOp(ctx *Ctx, a Args) ([]*plan.Node, error) {
	o := ctx.Opt
	b := a.Box
	var ins []*plan.Node
	var props plan.Props
	for _, q := range b.Quants {
		inner, err := o.PlanBox(q.Input)
		if err != nil {
			return nil, err
		}
		n := accessNode(q, inner)
		ins = append(ins, n)
		props.Cost += n.Props.Cost
		props.Rows += n.Props.Rows
	}
	op := map[string]string{
		qgm.KindUnion:     plan.OpUnion,
		qgm.KindIntersect: plan.OpInter,
		qgm.KindExcept:    plan.OpExcept,
	}[b.Kind]
	if !b.SetAll {
		props.Cost += props.Rows * costHashCPU
		props.Rows = math.Max(1, props.Rows*0.7)
	}
	cols, types := boxCols(b)
	return []*plan.Node{{
		Op:     op,
		Inputs: ins,
		Cols:   cols,
		Types:  types,
		All:    b.SetAll,
		Props:  props,
	}}, nil
}

func buildRecUnion(ctx *Ctx, a Args) ([]*plan.Node, error) {
	o := ctx.Opt
	b := a.Box
	var seeds, recs []*plan.Node
	for _, q := range b.Quants {
		if subtreeReferences(q.Input, b) {
			continue
		}
		inner, err := o.PlanBox(q.Input)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, accessNode(q, inner))
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("optimizer: recursive union %d has no seed branch", b.ID)
	}
	for _, q := range b.Quants {
		if !subtreeReferences(q.Input, b) {
			continue
		}
		inner, err := o.PlanBox(q.Input)
		if err != nil {
			return nil, err
		}
		recs = append(recs, accessNode(q, inner))
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("optimizer: union %d marked recursive but has no recursive branch", b.ID)
	}
	cols, types := boxCols(b)
	seed := combineAll(seeds, cols, types)
	rec := combineAll(recs, cols, types)
	props := plan.Props{
		Rows: guessRecRows(seed) * 2,
		Cost: seed.Props.Cost + rec.Props.Cost*4,
	}
	return []*plan.Node{{
		Op:       plan.OpRecUnion,
		Inputs:   []*plan.Node{seed, rec},
		Cols:     cols,
		Types:    types,
		RecBoxID: b.ID,
		Props:    props,
	}}, nil
}

// combineAll unions multiple branch plans (ALL semantics; the fixpoint
// dedups).
func combineAll(ps []*plan.Node, cols []plan.ColRef, types []datum.TypeID) *plan.Node {
	if len(ps) == 1 {
		return ps[0]
	}
	var props plan.Props
	for _, p := range ps {
		props.Cost += p.Props.Cost
		props.Rows += p.Props.Rows
	}
	return &plan.Node{Op: plan.OpUnion, Inputs: ps, Cols: cols, Types: types, All: true, Props: props}
}

func buildOuterJoin(ctx *Ctx, a Args) ([]*plan.Node, error) {
	o := ctx.Opt
	b := a.Box
	var preserved, inner []*qgm.Quantifier
	for _, q := range b.Quants {
		if q.Type == qgm.PreserveForeach {
			preserved = append(preserved, q)
		} else {
			inner = append(inner, q)
		}
	}
	if len(preserved) == 0 || len(inner) == 0 {
		return nil, fmt.Errorf("optimizer: outer join box %d needs PF and F sides", b.ID)
	}
	innerQID := map[int]bool{}
	for _, q := range inner {
		innerQID[q.QID] = true
	}
	// ON predicates referencing only the inner side may pre-filter it;
	// everything else stays in the join condition.
	scanPreds := map[int][]expr.Expr{}
	var joinPreds []expr.Expr
	var innerJoin []expr.Expr
	for _, p := range b.Preds {
		local := localQIDs(p.Expr, b)
		onlyInner := true
		n := 0
		one := -1
		for qid := range local {
			n++
			one = qid
			if !innerQID[qid] {
				onlyInner = false
			}
		}
		switch {
		case onlyInner && n == 1:
			scanPreds[one] = append(scanPreds[one], p.Expr)
		case onlyInner:
			innerJoin = append(innerJoin, p.Expr)
		default:
			joinPreds = append(joinPreds, p.Expr)
		}
	}
	lplans, err := o.enumerateJoins(ctx, preserved, scanPreds, nil)
	if err != nil {
		return nil, err
	}
	rplans, err := o.enumerateJoins(ctx, inner, scanPreds, innerJoin)
	if err != nil {
		return nil, err
	}
	joins, err := ctx.Evaluate("JOIN", Args{
		Left: lplans, Right: rplans, Preds: joinPreds, JoinKind: plan.KindLeftOuter,
	})
	if err != nil {
		return nil, err
	}
	base := cheapest(joins)
	if base == nil {
		return nil, fmt.Errorf("optimizer: no outer join plan for box %d", b.ID)
	}
	cols, types := boxCols(b)
	exprs := make([]expr.Expr, len(b.Head))
	for i, hc := range b.Head {
		exprs[i] = hc.Expr
	}
	return []*plan.Node{{
		Op:     plan.OpProject,
		Inputs: []*plan.Node{base},
		Cols:   cols,
		Types:  types,
		Exprs:  exprs,
		Props:  plan.Props{Rows: base.Props.Rows, Cost: base.Props.Cost + base.Props.Rows*costRowCPU},
	}}, nil
}

func buildValues(ctx *Ctx, a Args) ([]*plan.Node, error) {
	b := a.Box
	cols, types := boxCols(b)
	return []*plan.Node{{
		Op:    plan.OpValues,
		Cols:  cols,
		Types: types,
		Rows:  b.Rows,
		Props: plan.Props{Rows: float64(len(b.Rows)), Cost: float64(len(b.Rows)) * costRowCPU},
	}}, nil
}

func buildTableFn(ctx *Ctx, a Args) ([]*plan.Node, error) {
	o := ctx.Opt
	b := a.Box
	var ins []*plan.Node
	cost := 0.0
	for _, q := range b.Quants {
		inner, err := o.PlanBox(q.Input)
		if err != nil {
			return nil, err
		}
		n := accessNode(q, inner)
		ins = append(ins, n)
		cost += n.Props.Cost
	}
	cols, types := boxCols(b)
	return []*plan.Node{{
		Op:      plan.OpTableFn,
		Inputs:  ins,
		Cols:    cols,
		Types:   types,
		TableFn: b.TableFn,
		TFArgs:  b.TFScalarArgs,
		Props:   plan.Props{Rows: 100, Cost: cost + 10},
	}}, nil
}

func buildChoose(ctx *Ctx, a Args) ([]*plan.Node, error) {
	o := ctx.Opt
	b := a.Box
	cols, types := boxCols(b)
	// With guard conditions the CHOOSE survives into the plan: the
	// decision is made at runtime from host-language parameters.
	hasConds := false
	for _, c := range b.ChooseConds {
		if c != nil {
			hasConds = true
		}
	}
	if hasConds {
		var ins []*plan.Node
		var worst plan.Props
		for _, q := range b.Quants {
			inner, err := o.PlanBox(q.Input)
			if err != nil {
				return nil, err
			}
			ins = append(ins, inner)
			if inner.Props.Cost > worst.Cost {
				worst = inner.Props
			}
		}
		conds := append([]expr.Expr(nil), b.ChooseConds...)
		for len(conds) < len(ins) {
			conds = append(conds, nil)
		}
		return []*plan.Node{{
			Op:     plan.OpChoose,
			Inputs: ins,
			Cols:   cols,
			Types:  types,
			Exprs:  conds,
			Props:  worst, // costed pessimistically
		}}, nil
	}
	// Otherwise the optimizer "chooses an alternative" and eliminates
	// the CHOOSE: plan every child, keep the cheapest, relabel.
	var best *plan.Node
	for _, q := range b.Quants {
		inner, err := o.PlanBox(q.Input)
		if err != nil {
			return nil, err
		}
		if best == nil || inner.Props.Cost < best.Props.Cost {
			best = inner
		}
	}
	if best == nil {
		return nil, fmt.Errorf("optimizer: CHOOSE box %d has no alternatives", b.ID)
	}
	return []*plan.Node{{
		Op:     plan.OpAccess,
		Inputs: []*plan.Node{best},
		Cols:   cols,
		Types:  types,
		Props:  best.Props,
	}}, nil
}

func buildBareBase(ctx *Ctx, a Args) ([]*plan.Node, error) {
	// A BASE box planned directly (no quantifier context): full scan.
	b := a.Box
	t := b.Table
	cols, types := boxCols(b)
	props := ctx.Opt.costScan(t, nil)
	return []*plan.Node{{
		Op:    plan.OpScan,
		Table: t,
		QID:   -b.ID,
		Cols:  cols,
		Types: types,
		Props: props,
	}}, nil
}

func buildDML(ctx *Ctx, a Args) ([]*plan.Node, error) {
	o := ctx.Opt
	b := a.Box
	switch b.Kind {
	case qgm.KindInsert:
		q := b.Quants[0]
		inner, err := o.PlanBox(q.Input)
		if err != nil {
			return nil, err
		}
		src := accessNode(q, inner)
		return []*plan.Node{{
			Op:         plan.OpInsert,
			Inputs:     []*plan.Node{src},
			Table:      b.TargetTable,
			TargetCols: b.TargetCols,
			Props:      plan.Props{Rows: src.Props.Rows, Cost: src.Props.Cost + src.Props.Rows},
		}}, nil
	case qgm.KindUpdate, qgm.KindDelete:
		// The single quantifier ranges over the target's BASE box; scan
		// it with predicates, carry RIDs implicitly in the executor.
		// Subqueries in the search condition or SET expressions are
		// deferred subplans: compile them here.
		q := b.Quants[0]
		var preds []expr.Expr
		for _, p := range b.Preds {
			pe, err := o.compileSubplans(p.Expr, b)
			if err != nil {
				return nil, err
			}
			preds = append(preds, pe)
		}
		op := plan.OpUpdate
		if b.Kind == qgm.KindDelete {
			op = plan.OpDelete
		}
		var exprs []expr.Expr
		for _, hc := range b.Head {
			he, err := o.compileSubplans(hc.Expr, b)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, he)
		}
		props := o.costScan(b.TargetTable, preds)
		return []*plan.Node{{
			Op:         op,
			Table:      b.TargetTable,
			QID:        q.QID,
			TargetCols: b.TargetCols,
			Preds:      preds,
			Exprs:      exprs,
			Props:      props,
		}}, nil
	}
	return nil, fmt.Errorf("optimizer: unknown DML kind %s", b.Kind)
}
