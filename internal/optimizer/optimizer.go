package optimizer

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/qgm"
	"repro/internal/verify"
)

// Optimizer chooses a query evaluation plan for a QGM graph by
// optimizing each operation independently, bottom up, with rules
// peculiar to each operation's type (section 6).
type Optimizer struct {
	cat *catalog.Catalog
	gen *Generator

	// AllowBushy admits composite-inner join trees ("bushy trees");
	// off by default, as System R and R* always pruned them.
	AllowBushy bool
	// AllowCartesian admits joins with no join predicate; off by
	// default. Disconnected quantifier sets still get Cartesian
	// products as a fallback so every query remains plannable.
	AllowCartesian bool
	// Audit verifies every chosen plan against the QGM head (arity,
	// types, required order) and the per-operator shape invariants
	// before returning it; failures surface as compile errors instead
	// of wrong results at execution time.
	Audit bool

	// mu serializes Optimize calls: the memo, graph and trace fields
	// are per-compilation state. Executing already-compiled plans is
	// concurrency-safe; compilation itself is serialized per optimizer.
	mu         sync.Mutex
	graph      *qgm.Graph
	memo       map[*qgm.Box]*plan.Node
	inProgress map[*qgm.Box]bool
	// trace receives STAR expansion counts for the current compilation;
	// nil when the caller is not tracing.
	trace *obs.Trace

	// dop and parThreshold configure the parallelism pass (parallel.go);
	// atomic so SetParallelism can race with compilation.
	dop          atomic.Int32
	parThreshold atomic.Int64

	// cfg is the per-compilation override of the parallelism knobs,
	// valid only while mu is held (OptimizeConfig sets it, the deferred
	// reset clears it). It lets concurrent sessions compile with
	// different degrees of parallelism without racing on the
	// optimizer-wide atomics.
	cfg Config
}

// Config overrides the optimizer-wide parallelism knobs for a single
// compilation. Zero fields fall back to the optimizer-wide settings.
type Config struct {
	// DOP is the degree of parallelism to plan for; 0 uses the
	// optimizer-wide SetParallelism value, 1 forces a serial plan.
	DOP int
	// ParallelThreshold is the minimum estimated scan cardinality for
	// exchange insertion; 0 uses the optimizer-wide setting.
	ParallelThreshold int64
}

// New returns an optimizer over the catalog with the built-in STAR
// array.
func New(cat *catalog.Catalog) *Optimizer {
	o := &Optimizer{cat: cat}
	o.gen = NewGenerator(BuiltinSTARs())
	return o
}

// Generator exposes the STAR array for DBC extension.
func (o *Optimizer) Generator() *Generator { return o.gen }

// Fingerprint summarizes every optimizer-wide setting that can change
// which plan is chosen for a given QGM: the search-space switches, audit
// mode, rank pruning, and the STAR-array generation. Plan caches fold it
// (together with per-session settings such as the degree of
// parallelism) into their keys, so two compilations share a cache entry
// only when they would have produced the same plan.
func (o *Optimizer) Fingerprint() string {
	return fmt.Sprintf("bushy=%t,cart=%t,audit=%t,maxrank=%d,stars=%d,thr=%d",
		o.AllowBushy, o.AllowCartesian, o.Audit, o.gen.MaxRank, o.gen.Generation(),
		o.parThreshold.Load())
}

// Optimize compiles a rewritten QGM graph into a query evaluation plan.
func (o *Optimizer) Optimize(g *qgm.Graph) (*plan.Compiled, error) {
	return o.OptimizeTraced(g, nil)
}

// OptimizeTraced is Optimize recording per-STAR expansion counts into
// tr (nil-safe: a nil trace records nothing).
func (o *Optimizer) OptimizeTraced(g *qgm.Graph, tr *obs.Trace) (*plan.Compiled, error) {
	return o.OptimizeConfig(g, tr, Config{})
}

// OptimizeConfig is OptimizeTraced under a per-compilation Config:
// session-scoped parallelism settings apply to this compilation only,
// leaving the optimizer-wide knobs untouched.
func (o *Optimizer) OptimizeConfig(g *qgm.Graph, tr *obs.Trace, cfg Config) (*plan.Compiled, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.trace = tr
	o.cfg = cfg
	defer func() { o.trace = nil; o.cfg = Config{} }()
	o.graph = g
	o.memo = map[*qgm.Box]*plan.Node{}
	o.inProgress = map[*qgm.Box]bool{}
	root, err := o.PlanBox(g.Top)
	if err != nil {
		return nil, err
	}
	if len(g.OrderBy) > 0 {
		keys := make([]plan.SortKey, len(g.OrderBy))
		for i, os := range g.OrderBy {
			keys[i] = plan.SortKey{Slot: os.Col, Desc: os.Desc}
		}
		if !root.Props.OrderSatisfies(keys) {
			root = sortNode(root, keys)
		}
	}
	if g.HiddenOrderCols > 0 {
		// Project away the hidden sort-key columns appended by the
		// translator.
		keep := len(root.Cols) - g.HiddenOrderCols
		exprs := make([]expr.Expr, keep)
		for i := 0; i < keep; i++ {
			exprs[i] = expr.NewCol(root.Cols[i].QID, root.Cols[i].Ord, "", root.Types[i])
		}
		root = &plan.Node{
			Op:     plan.OpProject,
			Inputs: []*plan.Node{root},
			Cols:   append([]plan.ColRef(nil), root.Cols[:keep]...),
			Types:  append([]datum.TypeID(nil), root.Types[:keep]...),
			Exprs:  exprs,
			Props:  root.Props,
		}
	}
	if g.Limit != nil {
		root = &plan.Node{
			Op:        plan.OpLimit,
			Inputs:    []*plan.Node{root},
			Cols:      root.Cols,
			Types:     root.Types,
			LimitExpr: g.Limit,
			Props:     root.Props,
		}
	}
	root = o.insertExchanges(root)
	out := &plan.Compiled{Root: root, Graph: g}
	visible := g.Top.Head[:len(g.Top.Head)-g.HiddenOrderCols]
	for _, hc := range visible {
		out.OutputNames = append(out.OutputNames, hc.Name)
		out.OutputTypes = append(out.OutputTypes, hc.Type)
	}
	if len(out.OutputNames) == 0 && g.Top.Kind == qgm.KindBase {
		for _, hc := range g.Top.Head {
			out.OutputNames = append(out.OutputNames, hc.Name)
			out.OutputTypes = append(out.OutputTypes, hc.Type)
		}
	}
	if o.Audit {
		if rep := verify.Plan(out); rep != nil {
			return nil, fmt.Errorf("optimizer: plan audit failed: %w", rep)
		}
	}
	return out, nil
}

// PlanBox optimizes one QGM box (memoized). Exposed for the join
// enumerator and for DBC STAR alternatives.
func (o *Optimizer) PlanBox(b *qgm.Box) (*plan.Node, error) {
	if p, ok := o.memo[b]; ok {
		return p, nil
	}
	if o.inProgress[b] {
		return nil, fmt.Errorf("optimizer: cyclic reference to box %d outside a recursive union", b.ID)
	}
	o.inProgress[b] = true
	defer delete(o.inProgress, b)
	ctx := &Ctx{Opt: o, Gen: o.gen}
	plans, err := ctx.Evaluate("PLAN", Args{Box: b})
	if err != nil {
		return nil, err
	}
	best := cheapest(plans)
	if best == nil {
		return nil, fmt.Errorf("optimizer: no plan for box %d (%s)", b.ID, b.Kind)
	}
	o.memo[b] = best
	return best, nil
}

// boxCols labels a box plan's output columns: slot i carries the box's
// i-th head column, identified by the pseudo-quantifier id -boxID.
func boxCols(b *qgm.Box) ([]plan.ColRef, []datum.TypeID) {
	cols := make([]plan.ColRef, len(b.Head))
	types := make([]datum.TypeID, len(b.Head))
	for i, hc := range b.Head {
		cols[i] = plan.ColRef{QID: -b.ID, Ord: i}
		types[i] = hc.Type
	}
	return cols, types
}

// accessNode relabels a box plan's outputs as quantifier q's columns.
func accessNode(q *qgm.Quantifier, inner *plan.Node) *plan.Node {
	cols := make([]plan.ColRef, len(q.Input.Head))
	types := make([]datum.TypeID, len(q.Input.Head))
	for i, hc := range q.Input.Head {
		cols[i] = plan.ColRef{QID: q.QID, Ord: i}
		types[i] = hc.Type
	}
	return &plan.Node{
		Op:     plan.OpAccess,
		Inputs: []*plan.Node{inner},
		Cols:   cols,
		Types:  types,
		QID:    q.QID,
		Props: plan.Props{
			Tables: map[int]bool{q.QID: true},
			Order:  inner.Props.Order,
			Rows:   inner.Props.Rows,
			Cost:   inner.Props.Cost,
		},
	}
}

func sortNode(in *plan.Node, keys []plan.SortKey) *plan.Node {
	return &plan.Node{
		Op:       plan.OpSort,
		Inputs:   []*plan.Node{in},
		Cols:     in.Cols,
		Types:    in.Types,
		SortKeys: keys,
		Props:    costSort(in.Props, keys),
	}
}

func filterNode(o *Optimizer, in *plan.Node, preds []expr.Expr) *plan.Node {
	if len(preds) == 0 {
		return in
	}
	return &plan.Node{
		Op:     plan.OpFilter,
		Inputs: []*plan.Node{in},
		Cols:   in.Cols,
		Types:  in.Types,
		Preds:  preds,
		Props:  o.costFilter(in.Props, preds),
	}
}

// localQIDs intersects an expression's quantifier references with a
// box's own quantifiers; foreign references are correlation.
func localQIDs(e expr.Expr, b *qgm.Box) map[int]bool {
	out := map[int]bool{}
	for qid := range expr.QIDs(e) {
		if b.FindQuant(qid) != nil {
			out[qid] = true
		}
	}
	return out
}

// subtreeReferences reports whether the subgraph under start contains a
// quantifier ranging over target (detects recursive references).
func subtreeReferences(start, target *qgm.Box) bool {
	seen := map[*qgm.Box]bool{}
	var walk func(b *qgm.Box) bool
	walk = func(b *qgm.Box) bool {
		if b == nil || seen[b] {
			return false
		}
		seen[b] = true
		for _, q := range b.Quants {
			if q.Input == target || walk(q.Input) {
				return true
			}
		}
		return false
	}
	return walk(start)
}

// foreignCorrCols lists every (qid, ord) column referenced inside the
// subtree under sub that belongs to a quantifier OUTSIDE the subtree —
// the correlation vector a SUBQ node must supply. Entries referencing
// quantifiers of enclosing queries (multi-level correlation) are
// resolved from the enclosing correlation vector at build time.
func foreignCorrCols(sub *qgm.Box, owner *qgm.Box) []plan.ColRef {
	own := map[int]bool{}
	seen := map[*qgm.Box]bool{}
	var mark func(b *qgm.Box)
	mark = func(b *qgm.Box) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for _, q := range b.Quants {
			own[q.QID] = true
			mark(q.Input)
		}
	}
	mark(sub)

	var out []plan.ColRef
	have := map[plan.ColRef]bool{}
	collect := func(e expr.Expr) {
		expr.Walk(e, func(x expr.Expr) bool {
			if c, ok := x.(*expr.Col); ok && c.QID >= 0 && !own[c.QID] {
				ref := plan.ColRef{QID: c.QID, Ord: c.Ord}
				if !have[ref] {
					have[ref] = true
					out = append(out, ref)
				}
			}
			return true
		})
	}
	seen = map[*qgm.Box]bool{}
	var scan func(b *qgm.Box)
	scan = func(b *qgm.Box) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for _, hc := range b.Head {
			if hc.Expr != nil {
				collect(hc.Expr)
			}
		}
		for _, p := range b.Preds {
			collect(p.Expr)
		}
		for _, ge := range b.GroupBy {
			collect(ge)
		}
		for _, row := range b.Rows {
			for _, e := range row {
				collect(e)
			}
		}
		for _, e := range b.TFScalarArgs {
			collect(e)
		}
		for _, q := range b.Quants {
			scan(q.Input)
		}
	}
	scan(sub)
	return out
}

// impliedEqualities derives transitive equality predicates: from a=b
// and b=c it adds a=c, giving the enumerator additional join edges
// (section 6: "the enumeration exploits ... implied predicates").
func impliedEqualities(preds []expr.Expr) []expr.Expr {
	type colKey struct{ qid, ord int }
	parent := map[colKey]colKey{}
	var find func(k colKey) colKey
	find = func(k colKey) colKey {
		p, ok := parent[k]
		if !ok || p == k {
			return k
		}
		r := find(p)
		parent[k] = r
		return r
	}
	union := func(a, b colKey) {
		parent[find(a)] = find(b)
	}
	type pair struct {
		l, r   colKey
		lc, rc *expr.Col
	}
	var pairs []pair
	members := map[colKey]*expr.Col{}
	for _, p := range preds {
		cmp, ok := p.(*expr.Cmp)
		if !ok || cmp.Op != expr.OpEq {
			continue
		}
		lc, lok := cmp.L.(*expr.Col)
		rc, rok := cmp.R.(*expr.Col)
		if !lok || !rok {
			continue
		}
		lk := colKey{lc.QID, lc.Ord}
		rk := colKey{rc.QID, rc.Ord}
		if _, ok := parent[lk]; !ok {
			parent[lk] = lk
		}
		if _, ok := parent[rk]; !ok {
			parent[rk] = rk
		}
		union(lk, rk)
		members[lk], members[rk] = lc, rc
		pairs = append(pairs, pair{lk, rk, lc, rc})
	}
	// Existing direct pairs.
	direct := map[[2]colKey]bool{}
	for _, pr := range pairs {
		direct[[2]colKey{pr.l, pr.r}] = true
		direct[[2]colKey{pr.r, pr.l}] = true
	}
	// Group members by class root.
	classes := map[colKey][]colKey{}
	for k := range parent {
		r := find(k)
		classes[r] = append(classes[r], k)
	}
	var out []expr.Expr
	for _, ms := range classes {
		for i := 0; i < len(ms); i++ {
			for j := i + 1; j < len(ms); j++ {
				a, b := ms[i], ms[j]
				if a.qid == b.qid || direct[[2]colKey{a, b}] {
					continue
				}
				out = append(out, &expr.Cmp{Op: expr.OpEq, L: members[a], R: members[b]})
			}
		}
	}
	return out
}

// guessRecRows estimates a recursive reference's cardinality from the
// seed branch.
func guessRecRows(seed *plan.Node) float64 {
	if seed == nil {
		return 100
	}
	return math.Max(10, seed.Props.Rows*4)
}
