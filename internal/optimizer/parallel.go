package optimizer

import (
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// This file is the optimizer's parallelism pass: after the serial plan
// is chosen, insertExchanges decides whether intra-query parallelism
// pays and, if so, inserts exchange operators — at most one GATHER per
// statement, placed on the root spine so it is never re-opened per
// outer tuple by a nested-loop inner or TEMP, optionally over a REPART
// when grouping/deduplication must see hash-partitioned inputs.
//
// The pass is cost-gated, not unconditional: exchanges pay goroutine
// and channel overhead (costExchStartup per worker, costExchRowCPU per
// merged row), so only plans scanning enough rows and pages to amortize
// that — the parallelThreshold — are parallelized.

// Exchange cost-model constants, in the same unit as cost.go (one
// simulated page I/O = 1.0).
const (
	// costExchStartup is the per-worker fixed cost of an exchange:
	// goroutine spawn, channel setup, scheduling.
	costExchStartup = 0.5
	// costExchRowCPU is the per-row cost of moving a tuple through the
	// exchange's merge channel (batched, so far below costRowCPU).
	costExchRowCPU = 0.002
)

// defaultParallelThreshold is the minimum estimated base-table row
// count under a plan spine before an exchange is considered.
const defaultParallelThreshold = 512

// SetParallelism sets the degree of parallelism the optimizer plans
// for: n > 1 enables exchange insertion with n workers, n <= 1 disables
// it. Safe to call concurrently with compilation.
func (o *Optimizer) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	o.dop.Store(int32(n))
}

// Parallelism reports the configured degree of parallelism.
func (o *Optimizer) Parallelism() int {
	if d := o.dop.Load(); d > 1 {
		return int(d)
	}
	return 1
}

// SetParallelThreshold overrides the minimum estimated scan
// cardinality for exchange insertion; n <= 0 restores the default.
// Tests use a threshold of 1 to parallelize tiny tables.
func (o *Optimizer) SetParallelThreshold(n int64) {
	o.parThreshold.Store(n)
}

func (o *Optimizer) parallelThreshold() int64 {
	if t := o.cfg.ParallelThreshold; t > 0 {
		return t
	}
	if t := o.parThreshold.Load(); t > 0 {
		return t
	}
	return defaultParallelThreshold
}

// effectiveDOP is the degree of parallelism this compilation plans for:
// the per-compilation Config when set, the optimizer-wide knob
// otherwise. Called with mu held (cfg is per-compilation state).
func (o *Optimizer) effectiveDOP() int {
	if o.cfg.DOP > 0 {
		return o.cfg.DOP
	}
	return o.Parallelism()
}

// insertExchanges walks the root spine of a chosen plan and inserts at
// most one exchange. Walking only the spine — never join inners or
// subplans — guarantees the gather is opened exactly once per
// statement, so its worker pool cannot be respawned per outer tuple.
func (o *Optimizer) insertExchanges(root *plan.Node) *plan.Node {
	dop := o.effectiveDOP()
	if dop <= 1 {
		return root
	}
	return o.spine(root, dop)
}

// spine descends through operators that must stay above the exchange
// (LIMIT, final projections, ACCESS relabels) and places the exchange
// at the highest node whose whole subtree can run per-worker.
func (o *Optimizer) spine(n *plan.Node, dop int) *plan.Node {
	switch n.Op {
	case plan.OpLimit, plan.OpProject, plan.OpFilter, plan.OpAccess, plan.OpTemp:
		// Keep these serial and parallelize below: LIMIT must see the
		// merged stream; a lone PROJECT/FILTER above the exchange costs
		// little and keeps the exchange lower, where more of the tree
		// runs per-worker — except when the whole subtree is eligible,
		// handled by the parallelize attempt first.
		if len(n.Inputs) != 1 {
			return n
		}
		if g := o.parallelize(n, dop); g != nil {
			return g
		}
		n.Inputs[0] = o.spine(n.Inputs[0], dop)
		return n
	case plan.OpSort:
		// SORT parallelizes as sort-per-worker + order-preserving merge
		// in the gather; when its own subtree is not splittable (e.g. a
		// GROUP underneath), something deeper may still be — sorts accept
		// unordered input, so an exchange below is always order-safe.
		if g := o.parallelize(n, dop); g != nil {
			return g
		}
		if len(n.Inputs) == 1 {
			n.Inputs[0] = o.spine(n.Inputs[0], dop)
		}
		return n
	case plan.OpGroup, plan.OpDistinct:
		if g := o.parallelize(n, dop); g != nil {
			return g
		}
		return n
	case plan.OpScan, plan.OpNLJoin, plan.OpHSJoin, plan.OpSMJoin:
		if g := o.parallelize(n, dop); g != nil {
			return g
		}
		return n
	default:
		// DML, set operations, recursion, subquery application, CHOOSE,
		// VALUES, index scans: stay serial.
		return n
	}
}

// parallelize attempts to wrap subtree n in an exchange: it checks
// that every operator under n can run cloned per-worker, that the
// probe-side scan leaf is splittable and big enough to pay for the
// exchange, and then builds GATHER(n) — inserting a REPART below
// GROUP/DISTINCT so each worker sees complete key groups, and merge
// keys on the gather when n is sorted. Returns nil when n must stay
// serial.
func (o *Optimizer) parallelize(n *plan.Node, dop int) *plan.Node {
	if !subtreeParallelSafe(n) {
		return nil
	}
	switch n.Op {
	case plan.OpGroup, plan.OpDistinct:
		// The morsel-splittable leaf must sit below the REPART that will
		// be inserted under this node — that subtree is what the repart
		// producers clone, so probe it, not n itself.
		child := n.Inputs[0]
		leaf := probeLeaf(child)
		if leaf == nil || !o.leafEligible(leaf) {
			return nil
		}
		if n.Op == plan.OpGroup && len(n.GroupCols) == 0 {
			// Scalar aggregate: grand totals cannot be split by worker
			// without a combine phase; gather below the GROUP instead,
			// parallelizing the input scan.
			n.Inputs[0] = gatherNode(child, dop, nil)
			return n
		}
		// GATHER(op(REPART(input))): hash-partition the input on the
		// grouping key (all columns for DISTINCT) so each worker sees
		// every row of its groups and per-worker results concatenate
		// correctly.
		keys := n.GroupCols
		if n.Op == plan.OpDistinct {
			keys = make([]int, len(child.Cols))
			for i := range keys {
				keys[i] = i
			}
		}
		n.Inputs[0] = repartNode(child, keys)
		return gatherNode(n, dop, nil)
	case plan.OpSort:
		// Workers each sort their partition; the gather merge-preserves
		// the order, reproducing the serial output exactly.
		leaf := probeLeaf(n)
		if leaf == nil || !o.leafEligible(leaf) {
			return nil
		}
		return gatherNode(n, dop, n.SortKeys)
	default:
		leaf := probeLeaf(n)
		if leaf == nil || !o.leafEligible(leaf) {
			return nil
		}
		var merge []plan.SortKey
		if len(n.Props.Order) > 0 {
			merge = n.Props.Order
		}
		return gatherNode(n, dop, merge)
	}
}

// subtreeParallelSafe reports whether every operator of the subtree can
// be cloned into concurrent workers: only dataflow operators with no
// subplan references (subqueries capture serial-only executor state),
// no DML, no recursion, no runtime CHOOSE.
func subtreeParallelSafe(n *plan.Node) bool {
	safe := true
	plan.Walk(n, func(m *plan.Node) bool {
		switch m.Op {
		case plan.OpScan, plan.OpFilter, plan.OpProject, plan.OpAccess, plan.OpSort,
			plan.OpTemp, plan.OpNLJoin, plan.OpHSJoin, plan.OpSMJoin, plan.OpValues,
			plan.OpGroup, plan.OpDistinct, plan.OpLimit:
		default:
			safe = false
			return false
		}
		for _, p := range m.Preds {
			if expr.HasSubplan(p) {
				safe = false
				return false
			}
		}
		if m.JoinPred != nil && expr.HasSubplan(m.JoinPred) {
			safe = false
			return false
		}
		for _, e := range m.Exprs {
			if expr.HasSubplan(e) {
				safe = false
				return false
			}
		}
		if m.LimitExpr != nil && expr.HasSubplan(m.LimitExpr) {
			safe = false
			return false
		}
		return true
	})
	return safe
}

// probeLeaf finds the SCAN the morsel dispenser would split: the
// left-spine leaf (joins descend their probe/outer input; the build
// side is replicated per worker). The descent list must mirror the
// executor's morsel binding (exec.morselLeafOf) exactly — an op the
// executor cannot descend through (GROUP, DISTINCT, LIMIT, VALUES)
// would degrade the exchange to a useless inline gather.
func probeLeaf(n *plan.Node) *plan.Node {
	for n != nil {
		switch n.Op {
		case plan.OpScan:
			return n
		case plan.OpFilter, plan.OpProject, plan.OpAccess, plan.OpSort, plan.OpTemp,
			plan.OpNLJoin, plan.OpHSJoin, plan.OpSMJoin:
			if len(n.Inputs) == 0 {
				return nil
			}
			n = n.Inputs[0]
		default:
			return nil
		}
	}
	return nil
}

// leafEligible applies the cost gate: the scan's table must support
// page-range scans, span multiple pages, and be estimated big enough
// that per-worker exchange startup and per-row channel costs are
// amortized.
func (o *Optimizer) leafEligible(leaf *plan.Node) bool {
	if leaf.Table == nil || leaf.Table.Rel == nil {
		return false
	}
	if _, ok := leaf.Table.Rel.(storage.PageRangeScanner); !ok {
		return false
	}
	rows, pages := tableStats(leaf.Table)
	return rows >= float64(o.parallelThreshold()) && pages >= 2
}

// gatherNode wraps n in a GATHER exchange with the given DOP and
// optional merge keys (order-preserving gather).
func gatherNode(n *plan.Node, dop int, merge []plan.SortKey) *plan.Node {
	props := n.Props
	// Parallel speedup on the child's cost, paid back by exchange
	// startup and per-row merge CPU. The estimate is deliberately
	// simple: its job is EXPLAIN legibility, not plan choice (the
	// exchange is inserted after the serial plan is chosen).
	props.Cost = n.Props.Cost/float64(dop) +
		float64(dop)*costExchStartup + n.Props.Rows*costExchRowCPU
	if merge == nil {
		props.Order = nil
	}
	return &plan.Node{
		Op:       plan.OpGather,
		Inputs:   []*plan.Node{n},
		Cols:     n.Cols,
		Types:    n.Types,
		SortKeys: merge,
		DOP:      dop,
		Props:    props,
	}
}

// repartNode wraps n in a hash REPART exchange on the given key slots.
func repartNode(n *plan.Node, keys []int) *plan.Node {
	props := n.Props
	props.Cost += n.Props.Rows * costExchRowCPU
	props.Order = nil
	return &plan.Node{
		Op:        plan.OpRepart,
		Inputs:    []*plan.Node{n},
		Cols:      n.Cols,
		Types:     n.Types,
		GroupCols: append([]int(nil), keys...),
		Props:     props,
	}
}
