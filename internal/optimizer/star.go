package optimizer

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/qgm"
)

// Args parameterizes a STAR invocation. Different STARs read different
// fields (a STAR "consists of a name, zero or more parameters, and one
// or more alternative definitions").
type Args struct {
	// Box is the QGM operation being planned (PLAN star).
	Box *qgm.Box
	// Quant is the iterator being accessed (ACCESS star).
	Quant *qgm.Quantifier
	// Preds are the predicates this invocation should apply.
	Preds []expr.Expr
	// Left and Right are alternative plans for each join operand
	// (JOIN star).
	Left, Right []*plan.Node
	// Plans are candidate plans for GLUE to enforce properties on.
	Plans []*plan.Node
	// ReqOrder is the order GLUE must achieve.
	ReqOrder []plan.SortKey
	// JoinKind carries the requested kind ("" = regular).
	JoinKind string
}

// Alternative is one definition of a STAR: an optional applicability
// condition (the paper's attached IF), a rank for pruning, and a body
// producing candidate plans (possibly by evaluating other STARs through
// the Ctx).
type Alternative struct {
	Name string
	// Condition gates the alternative; nil means always applicable.
	Condition func(ctx *Ctx, a Args) bool
	// Rank orders and prunes alternatives: those exceeding the
	// generator's MaxRank are skipped.
	Rank int
	// Build produces candidate plans.
	Build func(ctx *Ctx, a Args) ([]*plan.Node, error)
}

// STAR is a strategy alternative rule: a named nonterminal of the plan
// grammar with one or more alternative definitions.
type STAR struct {
	Name         string
	Alternatives []*Alternative
}

// SearchStrategy orders alternative evaluation. It is deliberately
// separate from both the rules and the rule evaluator ("the search
// strategy can be changed without affecting the rule evaluator or the
// STARs").
type SearchStrategy interface {
	Order(alts []*Alternative) []*Alternative
}

// DeclaredOrder evaluates alternatives in declaration order (the
// default depth-first expansion).
type DeclaredOrder struct{}

// Order implements SearchStrategy.
func (DeclaredOrder) Order(alts []*Alternative) []*Alternative { return alts }

// RankOrder evaluates lower-rank (preferred) alternatives first — the
// prioritized-queue mechanism of section 6.
type RankOrder struct{}

// Order implements SearchStrategy.
func (RankOrder) Order(alts []*Alternative) []*Alternative {
	out := append([]*Alternative(nil), alts...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// Generator is the rule-driven plan generator: "(1) a general-purpose
// STAR evaluator, (2) a search strategy that chooses the next STAR to
// evaluate, and (3) an array of STARs", each replaceable independently.
type Generator struct {
	stars map[string]*STAR
	// MaxRank prunes alternatives whose rank exceeds it (0 = no limit).
	MaxRank int
	// Strategy orders alternative evaluation.
	Strategy SearchStrategy
	// generation counts STAR-array mutations; plan caches fold it into
	// their settings fingerprint so plans chosen under an earlier STAR
	// array are never reused after a DBC adds or removes alternatives.
	generation atomic.Int64
}

// Generation reports how many times the STAR array has been mutated.
func (g *Generator) Generation() int64 { return g.generation.Load() }

// NewGenerator returns a generator with the given STAR array.
func NewGenerator(stars []*STAR) *Generator {
	g := &Generator{stars: map[string]*STAR{}, Strategy: DeclaredOrder{}}
	for _, s := range stars {
		g.stars[s.Name] = s
	}
	return g
}

// AddAlternative appends an alternative to an existing STAR (or creates
// the STAR) — the DBC extension hook: "the optimizer designer [can]
// add, change, or delete rules in the STAR array without affecting the
// code for the search strategy or the rule evaluator".
func (g *Generator) AddAlternative(star string, alt *Alternative) {
	s := g.stars[star]
	if s == nil {
		s = &STAR{Name: star}
		g.stars[star] = s
	}
	s.Alternatives = append(s.Alternatives, alt)
	g.generation.Add(1)
}

// RemoveAlternative deletes a named alternative.
func (g *Generator) RemoveAlternative(star, name string) bool {
	s := g.stars[star]
	if s == nil {
		return false
	}
	for i, a := range s.Alternatives {
		if a.Name == name {
			s.Alternatives = append(s.Alternatives[:i], s.Alternatives[i+1:]...)
			g.generation.Add(1)
			return true
		}
	}
	return false
}

// STARs lists the rule array (for the under-20-rules experiment).
func (g *Generator) STARs() []*STAR {
	var out []*STAR
	for _, s := range g.stars {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CountAlternatives totals rules across all STARs.
func (g *Generator) CountAlternatives() int {
	n := 0
	for _, s := range g.stars {
		n += len(s.Alternatives)
	}
	return n
}

// Ctx is the evaluation context threaded through STAR expansion.
type Ctx struct {
	Opt *Optimizer
	Gen *Generator
}

// Evaluate expands a STAR: each applicable alternative contributes
// candidate plans, "much as is done by a macro processor, until all
// STARs are fully refined to LOLEPOPs".
func (ctx *Ctx) Evaluate(star string, a Args) ([]*plan.Node, error) {
	s := ctx.Gen.stars[star]
	if s == nil {
		return nil, fmt.Errorf("optimizer: unknown STAR %s", star)
	}
	if ctx.Opt != nil {
		// CountStar is nil-safe; the trace is per-compilation state
		// guarded by the optimizer mutex.
		ctx.Opt.trace.CountStar(star)
	}
	var out []*plan.Node
	for _, alt := range ctx.Gen.Strategy.Order(s.Alternatives) {
		if ctx.Gen.MaxRank > 0 && alt.Rank > ctx.Gen.MaxRank {
			continue // pruned by rank
		}
		if alt.Condition != nil && !alt.Condition(ctx, a) {
			continue
		}
		plans, err := alt.Build(ctx, a)
		if err != nil {
			return nil, fmt.Errorf("optimizer: STAR %s/%s: %w", star, alt.Name, err)
		}
		out = append(out, plans...)
	}
	return out, nil
}

// prunePlans keeps, from a candidate set, every plan that is not
// dominated: a plan survives if no other plan has lower-or-equal cost
// AND an order satisfying the survivor's order (interesting orders keep
// more expensive but usefully ordered plans alive).
func prunePlans(cands []*plan.Node) []*plan.Node {
	var out []*plan.Node
	for i, p := range cands {
		dominated := false
		for j, q := range cands {
			if i == j {
				continue
			}
			if q.Props.Cost <= p.Props.Cost && q.Props.OrderSatisfies(p.Props.Order) {
				// Tie-break deterministically on index to avoid mutual
				// elimination of identical plans.
				if q.Props.Cost < p.Props.Cost || j < i {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// cheapest returns the lowest-cost plan of a set.
func cheapest(plans []*plan.Node) *plan.Node {
	var best *plan.Node
	for _, p := range plans {
		if best == nil || p.Props.Cost < best.Props.Cost {
			best = p
		}
	}
	return best
}

// cheapestWithOrder returns the lowest-cost plan satisfying an order,
// or nil.
func cheapestWithOrder(plans []*plan.Node, req []plan.SortKey) *plan.Node {
	var best *plan.Node
	for _, p := range plans {
		if !p.Props.OrderSatisfies(req) {
			continue
		}
		if best == nil || p.Props.Cost < best.Props.Cost {
			best = p
		}
	}
	return best
}
