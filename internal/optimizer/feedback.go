package optimizer

import (
	"sort"
	"strings"

	"repro/internal/expr"
)

// ScanPredsKey renders the canonical fingerprint of a table scan's
// predicate set, the key of the observed-cardinality overlays
// (catalog.Table.ObserveCard). Rendering is order-insensitive so the
// same logical scan fingerprints identically however the compiler
// ordered its conjuncts; the empty set (a full scan) keys to "".
// Both the costing side (costScan) and the capture side (the DB's
// post-statement feedback fold) must use this function, or learned
// corrections would never be consulted.
func ScanPredsKey(preds []expr.Expr) string {
	if len(preds) == 0 {
		return ""
	}
	ss := make([]string, len(preds))
	for i, p := range preds {
		ss[i] = p.String()
	}
	sort.Strings(ss)
	return strings.Join(ss, " AND ")
}
