package optimizer

import "testing"

// TestAuditedPlans: with Audit on, every chosen plan must pass the
// structural plan verifier and agree with the QGM head on arity and
// types. Covers scans, joins, grouping, distinct, set ops, and ORDER
// BY / LIMIT shaping.
func TestAuditedPlans(t *testing.T) {
	c := testCatalog(t, 1000, 100)
	queries := []string{
		"SELECT v FROM t0 WHERE k = 5",
		"SELECT a.v FROM t0 a, t1 b WHERE a.k = b.k",
		"SELECT s, COUNT(*) FROM t0 GROUP BY s",
		"SELECT DISTINCT s FROM t0",
		"SELECT k FROM t0 UNION SELECT k FROM t1",
		"SELECT v FROM t0 WHERE k >= 10 ORDER BY v",
		"SELECT v FROM t0 ORDER BY k LIMIT 5",
		"SELECT v FROM t0 WHERE k IN (SELECT k FROM t1)",
	}
	for _, q := range queries {
		compiled := optimize(t, c, q, func(o *Optimizer) { o.Audit = true })
		if compiled.Root == nil {
			t.Errorf("%s: nil plan root", q)
		}
	}
}
