package optimizer

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/qgm"
	"repro/internal/rewrite"
	"repro/internal/sql"
	"repro/internal/storage"
)

// testCatalog builds n tables T0..Tn-1 with columns (K INT, V INT, S
// STRING) and the given row counts (statistics are faked, no data).
func testCatalog(t *testing.T, rowCounts ...int64) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	for i, rows := range rowCounts {
		tbl, err := c.CreateTable(fmt.Sprintf("T%d", i), []catalog.Column{
			{Name: "K", Type: datum.TInt},
			{Name: "V", Type: datum.TInt},
			{Name: "S", Type: datum.TString},
		}, "")
		if err != nil {
			t.Fatal(err)
		}
		tbl.Stats.Rows = rows
		tbl.Stats.Pages = rows/64 + 1
		tbl.Stats.ColCard = []int64{rows, rows / 10, 5}
		tbl.Stats.ColMin = []datum.Value{datum.NewInt(0), datum.NewInt(0), datum.Null}
		tbl.Stats.ColMax = []datum.Value{datum.NewInt(rows), datum.NewInt(rows / 10), datum.Null}
	}
	return c
}

func optimize(t *testing.T, c *catalog.Catalog, src string, tune func(*Optimizer)) *plan.Compiled {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := qgm.TranslateStatement(c, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rewrite.NewDefaultEngine().Rewrite(g, rewrite.Options{}); err != nil {
		t.Fatal(err)
	}
	o := New(c)
	if tune != nil {
		tune(o)
	}
	compiled, err := o.Optimize(g)
	if err != nil {
		t.Fatalf("optimize %q: %v", src, err)
	}
	return compiled
}

// TestSTARCountUnder20 verifies the paper's economy claim (E10): the
// complete base strategy repertoire — table/index access, derived
// tables, recursive references, three join methods, glue, and a plan
// rule per operation type — fits in under 20 rules.
func TestSTARCountUnder20(t *testing.T) {
	g := NewGenerator(BuiltinSTARs())
	n := g.CountAlternatives()
	if n >= 20 {
		t.Fatalf("STAR alternatives = %d, paper claims under 20", n)
	}
	if n < 10 {
		t.Fatalf("suspiciously few rules (%d) — strategies missing?", n)
	}
	t.Logf("built-in STAR alternatives: %d", n)
}

// TestSTARCoverage: the rule array names cover access paths, join
// methods, glue, and every built-in operation kind.
func TestSTARCoverage(t *testing.T) {
	g := NewGenerator(BuiltinSTARs())
	have := map[string]bool{}
	for _, s := range g.STARs() {
		for _, a := range s.Alternatives {
			have[s.Name+"/"+a.Name] = true
		}
	}
	for _, want := range []string{
		"ACCESS/TableScan", "ACCESS/IndexScan", "ACCESS/Derived", "ACCESS/RecRef",
		"JOIN/NestedLoop", "JOIN/HashJoin", "JOIN/MergeJoin",
		"GLUE/AlreadyOrdered", "GLUE/AddSort",
		"PLAN/Select", "PLAN/GroupBy", "PLAN/SetOp", "PLAN/OuterJoin",
		"PLAN/RecUnion", "PLAN/Values", "PLAN/TableFn", "PLAN/Choose", "PLAN/DML",
	} {
		if !have[want] {
			t.Errorf("missing STAR alternative %s", want)
		}
	}
}

func TestAccessPathSelection(t *testing.T) {
	// E13: with a highly selective predicate and an index, ISCAN wins;
	// an unselective predicate keeps the scan.
	c := testCatalog(t, 10000)
	if _, err := c.CreateIndex("T0_K", "T0", []string{"K"}, "", true); err != nil {
		t.Fatal(err)
	}
	compiled := optimize(t, c, "SELECT v FROM t0 WHERE k = 5", nil)
	ops := plan.CollectOps(compiled.Root)
	if ops[plan.OpIndex] != 1 {
		t.Fatalf("selective equality should use the index:\n%s", compiled.Root)
	}
	// Unselective range: scan.
	compiled = optimize(t, c, "SELECT v FROM t0 WHERE k >= 0", nil)
	ops = plan.CollectOps(compiled.Root)
	if ops[plan.OpScan] != 1 {
		t.Fatalf("unselective range should scan:\n%s", compiled.Root)
	}
}

func TestIndexRangeSarg(t *testing.T) {
	c := testCatalog(t, 100000)
	if _, err := c.CreateIndex("T0_K", "T0", []string{"K"}, "", false); err != nil {
		t.Fatal(err)
	}
	compiled := optimize(t, c, "SELECT v FROM t0 WHERE k >= 10 AND k < 20", nil)
	var iscan *plan.Node
	plan.Walk(compiled.Root, func(n *plan.Node) bool {
		if n.Op == plan.OpIndex {
			iscan = n
		}
		return true
	})
	if iscan == nil {
		t.Fatalf("narrow range must use the index:\n%s", compiled.Root)
	}
	if len(iscan.LoVals) == 0 || len(iscan.HiVals) == 0 {
		t.Error("range bounds missing")
	}
	// The strict < bound must be re-checked as a residual.
	found := false
	for _, p := range iscan.Preds {
		if strings.Contains(p.String(), "<") {
			found = true
		}
	}
	if !found {
		t.Errorf("strict bound must remain residual: %v", iscan.Preds)
	}
}

func TestJoinMethodSelection(t *testing.T) {
	// Large equijoin: hash or merge join beats nested loops.
	c := testCatalog(t, 20000, 20000)
	compiled := optimize(t, c, "SELECT a.v FROM t0 a, t1 b WHERE a.k = b.k", nil)
	ops := plan.CollectOps(compiled.Root)
	if ops[plan.OpHSJoin]+ops[plan.OpSMJoin] != 1 {
		t.Fatalf("large equijoin should use hash/merge join:\n%s", compiled.Root)
	}
	// Non-equi join: nested loops is the only applicable method.
	compiled = optimize(t, c, "SELECT a.v FROM t0 a, t1 b WHERE a.k < b.k", nil)
	ops = plan.CollectOps(compiled.Root)
	if ops[plan.OpNLJoin] != 1 {
		t.Fatalf("non-equi join needs NLJN:\n%s", compiled.Root)
	}
}

func TestGlueSortInsertion(t *testing.T) {
	// E12: force merge join by removing the competing methods; the glue
	// STAR must insert SORTs on both inputs.
	c := testCatalog(t, 5000, 5000)
	compiled := optimize(t, c, "SELECT a.v FROM t0 a, t1 b WHERE a.k = b.k", func(o *Optimizer) {
		o.Generator().RemoveAlternative("JOIN", "NestedLoop")
		o.Generator().RemoveAlternative("JOIN", "HashJoin")
	})
	ops := plan.CollectOps(compiled.Root)
	if ops[plan.OpSMJoin] != 1 {
		t.Fatalf("merge join expected:\n%s", compiled.Root)
	}
	if ops[plan.OpSort] < 2 {
		t.Fatalf("glue must add sorts for merge join inputs:\n%s", compiled.Root)
	}
}

func TestInterestingOrderAvoidsSort(t *testing.T) {
	// With ordered B-tree indexes on the join keys and selective range
	// predicates (so the index scans win on access cost), merge join
	// can use index order instead of sorting — interesting orders keep
	// the ordered access plans alive through pruning, and the glue STAR
	// picks them instead of adding SORTs. A full unclustered index scan
	// would (correctly) lose to scan+sort, so the ranges matter.
	c := testCatalog(t, 5000, 5000)
	c.CreateIndex("T0_K", "T0", []string{"K"}, "", false)
	c.CreateIndex("T1_K", "T1", []string{"K"}, "", false)
	compiled := optimize(t, c,
		"SELECT a.v FROM t0 a, t1 b WHERE a.k = b.k AND a.k >= 0 AND a.k <= 50 AND b.k >= 0 AND b.k <= 50",
		func(o *Optimizer) {
			o.Generator().RemoveAlternative("JOIN", "NestedLoop")
			o.Generator().RemoveAlternative("JOIN", "HashJoin")
		})
	ops := plan.CollectOps(compiled.Root)
	if ops[plan.OpSMJoin] != 1 {
		t.Fatalf("merge join expected:\n%s", compiled.Root)
	}
	if ops[plan.OpSort] != 0 {
		t.Fatalf("index order should eliminate sorts:\n%s", compiled.Root)
	}
	if ops[plan.OpIndex] != 2 {
		t.Fatalf("both inputs should use ordered index scans:\n%s", compiled.Root)
	}
}

func TestJoinEnumeratorOrdering(t *testing.T) {
	// E11: with very different table sizes, the enumerator should put
	// the small filtered table on the outer/build-effective side such
	// that total cost beats the naive order. We check it found *a* plan
	// for a 5-way chain and that all five quantifiers are joined.
	c := testCatalog(t, 100, 1000, 10000, 100, 50)
	q := `SELECT a.v FROM t0 a, t1 b, t2 c, t3 d, t4 e
		WHERE a.k = b.k AND b.k = c.k AND c.k = d.k AND d.k = e.k`
	compiled := optimize(t, c, q, nil)
	joins := 0
	plan.Walk(compiled.Root, func(n *plan.Node) bool {
		switch n.Op {
		case plan.OpNLJoin, plan.OpHSJoin, plan.OpSMJoin:
			joins++
		}
		return true
	})
	if joins != 4 {
		t.Fatalf("5-way join needs 4 join nodes, got %d:\n%s", joins, compiled.Root)
	}
}

func TestBushyVsLeftDeep(t *testing.T) {
	// Composite inners: bushy enumeration may find plans left-deep
	// cannot; at minimum it must not be worse.
	c := testCatalog(t, 1000, 1000, 1000, 1000)
	q := `SELECT a.v FROM t0 a, t1 b, t2 c, t3 d
		WHERE a.k = b.k AND c.k = d.k AND b.v = c.v`
	leftDeep := optimize(t, c, q, nil)
	bushy := optimize(t, c, q, func(o *Optimizer) { o.AllowBushy = true })
	if bushy.Root.Props.Cost > leftDeep.Root.Props.Cost*1.0001 {
		t.Errorf("bushy (%0.1f) must not cost more than left-deep (%0.1f)",
			bushy.Root.Props.Cost, leftDeep.Root.Props.Cost)
	}
}

func TestCartesianProductHandling(t *testing.T) {
	// Disconnected sets must still be plannable (fallback), with or
	// without the switch.
	c := testCatalog(t, 10, 10)
	compiled := optimize(t, c, "SELECT a.v FROM t0 a, t1 b", nil)
	if compiled.Root == nil {
		t.Fatal("cartesian fallback failed")
	}
	compiled = optimize(t, c, "SELECT a.v FROM t0 a, t1 b", func(o *Optimizer) { o.AllowCartesian = true })
	if compiled.Root == nil {
		t.Fatal("explicit cartesian failed")
	}
}

func TestImpliedPredicates(t *testing.T) {
	// a.k = b.k and b.k = c.k imply a.k = c.k, giving the enumerator a
	// direct a-c join edge; the (a,c) pair must be considered connected.
	preds := []expr.Expr{
		&expr.Cmp{Op: expr.OpEq, L: expr.NewCol(1, 0, "a.k", datum.TInt), R: expr.NewCol(2, 0, "b.k", datum.TInt)},
		&expr.Cmp{Op: expr.OpEq, L: expr.NewCol(2, 0, "b.k", datum.TInt), R: expr.NewCol(3, 0, "c.k", datum.TInt)},
	}
	implied := impliedEqualities(preds)
	if len(implied) != 1 {
		t.Fatalf("implied = %d, want 1 (a.k = c.k)", len(implied))
	}
	s := implied[0].String()
	if !strings.Contains(s, "a.k") || !strings.Contains(s, "c.k") {
		t.Errorf("implied pred = %s", s)
	}
	// No duplicates of existing pairs.
	preds = append(preds, implied...)
	if again := impliedEqualities(preds); len(again) != 0 {
		t.Errorf("re-derivation must be empty, got %v", again)
	}
}

func TestRankPruning(t *testing.T) {
	// MaxRank 1 prunes the IndexScan (rank 2) and MergeJoin (rank 2)
	// alternatives.
	c := testCatalog(t, 10000)
	c.CreateIndex("T0_K", "T0", []string{"K"}, "", true)
	compiled := optimize(t, c, "SELECT v FROM t0 WHERE k = 5", func(o *Optimizer) {
		o.Generator().MaxRank = 1
	})
	ops := plan.CollectOps(compiled.Root)
	if ops[plan.OpIndex] != 0 {
		t.Fatalf("rank pruning must drop index scans:\n%s", compiled.Root)
	}
}

func TestSearchStrategySwappable(t *testing.T) {
	// The search strategy is orthogonal: swapping it must not change
	// correctness (cheapest may differ, plan must exist).
	c := testCatalog(t, 1000, 1000)
	compiled := optimize(t, c, "SELECT a.v FROM t0 a, t1 b WHERE a.k = b.k", func(o *Optimizer) {
		o.Generator().Strategy = RankOrder{}
	})
	if compiled.Root == nil {
		t.Fatal("rank-ordered search failed")
	}
}

func TestDBCJoinMethodSTAR(t *testing.T) {
	// E10/E14 extensibility: a DBC adds a new join method as one STAR
	// alternative, without touching the evaluator or search strategy.
	// The toy "FakeJoin" reports tiny cost, so the optimizer picks it.
	c := testCatalog(t, 1000, 1000)
	seen := false
	compiled := optimize(t, c, "SELECT a.v FROM t0 a, t1 b WHERE a.k = b.k", func(o *Optimizer) {
		o.Generator().AddAlternative("JOIN", &Alternative{
			Name: "FakeJoin",
			Build: func(ctx *Ctx, a Args) ([]*plan.Node, error) {
				seen = true
				l, r := cheapest(a.Left), cheapest(a.Right)
				cols, types := joinCols(l, r)
				return []*plan.Node{{
					Op: "FAKEJOIN", Inputs: []*plan.Node{l, r},
					Cols: cols, Types: types,
					JoinPred: expr.AndAll(a.Preds),
					Props:    plan.Props{Rows: 1, Cost: 0.001, Tables: joinTables(l, r)},
				}}, nil
			},
		})
	})
	if !seen {
		t.Fatal("DBC join STAR never evaluated")
	}
	ops := plan.CollectOps(compiled.Root)
	if ops["FAKEJOIN"] != 1 {
		t.Fatalf("cheap DBC join method must win:\n%s", compiled.Root)
	}
}

func TestSpatialAccessMethodRouting(t *testing.T) {
	// E21: register an R-tree, index (X, Y), and check a window query
	// routes to the spatial index while a half-window still works.
	c := catalog.New()
	c.Storage.RegisterAccessMethod(storage.RTreeMethod{})
	tbl, err := c.CreateTable("PTS", []catalog.Column{
		{Name: "ID", Type: datum.TInt},
		{Name: "X", Type: datum.TFloat},
		{Name: "Y", Type: datum.TFloat},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	tbl.Stats.Rows = 100000
	tbl.Stats.Pages = 2000
	tbl.Stats.ColCard = []int64{100000, 1000, 1000}
	tbl.Stats.ColMin = make([]datum.Value, 3)
	tbl.Stats.ColMax = make([]datum.Value, 3)
	for i := range tbl.Stats.ColMin {
		tbl.Stats.ColMin[i], tbl.Stats.ColMax[i] = datum.Null, datum.Null
	}
	if _, err := c.CreateIndex("PTS_XY", "PTS", []string{"X", "Y"}, "RTREE", false); err != nil {
		t.Fatal(err)
	}
	compiled := optimize(t, c,
		"SELECT id FROM pts WHERE x >= 1 AND x <= 2 AND y >= 3 AND y <= 4", nil)
	var iscan *plan.Node
	plan.Walk(compiled.Root, func(n *plan.Node) bool {
		if n.Op == plan.OpIndex {
			iscan = n
		}
		return true
	})
	if iscan == nil || iscan.Index.Method != "RTREE" {
		t.Fatalf("window query must route to the R-tree:\n%s", compiled.Root)
	}
	// A predicate with no bounds on either dimension cannot use it.
	compiled = optimize(t, c, "SELECT id FROM pts WHERE id = 5", nil)
	ops := plan.CollectOps(compiled.Root)
	if ops[plan.OpIndex] != 0 {
		t.Fatalf("non-spatial predicate must not use the R-tree:\n%s", compiled.Root)
	}
}

func TestChooseEliminatedByCost(t *testing.T) {
	// E22: the optimizer picks the cheapest CHOOSE alternative.
	c := testCatalog(t, 1000)
	stmt, _ := sql.Parse("SELECT k FROM t0 WHERE v = 1")
	g, err := qgm.TranslateStatement(c, stmt)
	if err != nil {
		t.Fatal(err)
	}
	// Build an expensive alternative: a clone whose extra predicate
	// "k <> -12345" barely changes cardinality (so downstream estimates
	// stay equal) but adds per-row evaluation cost. The marker constant
	// identifies which alternative the optimizer kept.
	alt := rewrite.CloneSubgraph(g, g.Top)
	kCol := alt.Head[0].Expr
	alt.Preds = append(alt.Preds, &qgm.Predicate{
		Expr: &expr.Cmp{Op: expr.OpNe, L: kCol, R: expr.NewConst(datum.NewInt(-12345))},
	})
	ch := rewrite.WrapChoose(g, g.Top, alt)
	g.Top = ch
	g.GC()
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	o := New(c)
	compiled, err := o.Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	text := compiled.Root.String()
	if strings.Contains(text, "-12345") {
		t.Fatalf("optimizer picked the expensive CHOOSE alternative:\n%s", text)
	}
}

func TestSelectivityModel(t *testing.T) {
	c := testCatalog(t, 1000)
	o := New(c)
	stmt, _ := sql.Parse("SELECT k FROM t0")
	g, _ := qgm.TranslateStatement(c, stmt)
	o.graph = g
	kCol := g.Top.Head[0].Expr.(*expr.Col)

	eq := &expr.Cmp{Op: expr.OpEq, L: kCol, R: expr.NewConst(datum.NewInt(5))}
	if s := o.selectivity(eq); s != 1.0/1000 {
		t.Errorf("eq selectivity = %v, want 1/1000", s)
	}
	half := &expr.Cmp{Op: expr.OpLt, L: kCol, R: expr.NewConst(datum.NewInt(500))}
	if s := o.selectivity(half); s < 0.4 || s > 0.6 {
		t.Errorf("range interpolation = %v, want ~0.5", s)
	}
	notEq := &expr.Not{E: eq}
	if s := o.selectivity(notEq); s < 0.99 {
		t.Errorf("not-eq selectivity = %v", s)
	}
	or := &expr.Or{L: eq, R: eq}
	if s := o.selectivity(or); s <= o.selectivity(eq) || s > 2*o.selectivity(eq) {
		t.Errorf("or selectivity = %v", s)
	}
	tautology := expr.NewConst(datum.NewBool(true))
	if o.selectivity(tautology) != 1 {
		t.Error("TRUE selectivity")
	}
	contradiction := expr.NewConst(datum.NewBool(false))
	if o.selectivity(contradiction) != 0 {
		t.Error("FALSE selectivity")
	}
}

func TestPropsOrderSatisfies(t *testing.T) {
	p := plan.Props{Order: []plan.SortKey{{Slot: 0}, {Slot: 1, Desc: true}}}
	if !p.OrderSatisfies([]plan.SortKey{{Slot: 0}}) {
		t.Error("prefix satisfied")
	}
	if !p.OrderSatisfies(nil) {
		t.Error("empty requirement")
	}
	if p.OrderSatisfies([]plan.SortKey{{Slot: 1}}) {
		t.Error("wrong first key")
	}
	if p.OrderSatisfies([]plan.SortKey{{Slot: 0}, {Slot: 1}}) {
		t.Error("desc mismatch")
	}
	if p.OrderSatisfies([]plan.SortKey{{Slot: 0}, {Slot: 1, Desc: true}, {Slot: 2}}) {
		t.Error("longer than available")
	}
}

func TestPrunePlansKeepsInterestingOrders(t *testing.T) {
	cheap := &plan.Node{Op: "A", Props: plan.Props{Cost: 10}}
	orderedExpensive := &plan.Node{Op: "B", Props: plan.Props{Cost: 20, Order: []plan.SortKey{{Slot: 0}}}}
	dominated := &plan.Node{Op: "C", Props: plan.Props{Cost: 30}}
	out := prunePlans([]*plan.Node{cheap, orderedExpensive, dominated})
	if len(out) != 2 {
		t.Fatalf("pruned to %d, want 2 (cheapest + ordered)", len(out))
	}
	// Identical plans: exactly one survives.
	a := &plan.Node{Op: "X", Props: plan.Props{Cost: 5}}
	b := &plan.Node{Op: "Y", Props: plan.Props{Cost: 5}}
	out = prunePlans([]*plan.Node{a, b})
	if len(out) != 1 {
		t.Fatalf("tie pruning kept %d", len(out))
	}
}

func TestTooManyQuantifiers(t *testing.T) {
	sizes := make([]int64, 21)
	for i := range sizes {
		sizes[i] = 10
	}
	c := testCatalog(t, sizes...)
	var sb strings.Builder
	sb.WriteString("SELECT a0.v FROM t0 a0")
	for i := 1; i <= 20; i++ {
		fmt.Fprintf(&sb, ", t%d a%d", i, i)
	}
	sb.WriteString(" WHERE a0.k = a1.k")
	for i := 1; i < 20; i++ {
		fmt.Fprintf(&sb, " AND a%d.k = a%d.k", i, i+1)
	}
	stmt, err := sql.Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	g, err := qgm.TranslateStatement(c, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(c).Optimize(g); err == nil {
		t.Fatal("21-way join must be rejected by the enumerator limit")
	}
}

// TestMergeJoinNotOfferedForOuterKind: the merge-join alternative's
// condition must reject non-regular join kinds (its executor implements
// only the regular kind), so an outer join with hash and nested-loop
// removed must fail to plan rather than silently drop preserved rows.
func TestMergeJoinNotOfferedForOuterKind(t *testing.T) {
	c := testCatalog(t, 100, 100)
	stmt, _ := sql.Parse("SELECT a.v FROM t0 a LEFT OUTER JOIN t1 b ON a.k = b.k")
	g, err := qgm.TranslateStatement(c, stmt)
	if err != nil {
		t.Fatal(err)
	}
	o := New(c)
	o.Generator().RemoveAlternative("JOIN", "NestedLoop")
	o.Generator().RemoveAlternative("JOIN", "HashJoin")
	if _, err := o.Optimize(g); err == nil {
		t.Fatal("outer join with only merge available must fail to plan, not mis-plan")
	}
	// With hash available the outer join plans via HSJN.
	o2 := New(c)
	o2.Generator().RemoveAlternative("JOIN", "NestedLoop")
	g2, _ := qgm.TranslateStatement(c, stmt)
	compiled, err := o2.Optimize(g2)
	if err != nil {
		t.Fatal(err)
	}
	ops := plan.CollectOps(compiled.Root)
	if ops[plan.OpHSJoin] != 1 {
		t.Fatalf("expected hash outer join:\n%s", compiled.Root)
	}
}
