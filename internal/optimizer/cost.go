// Package optimizer implements Starburst's cost-based plan optimizer
// (section 6 of the paper, [LOHM88], [ONO88]): a rule-driven plan
// generator whose executable plans are defined by grammar-like strategy
// alternative rules (STARs) over low-level plan operators (LOLEPOPs), a
// join enumerator constructing progressively larger iterator sets, and
// a cost model propagating estimated properties through each LOLEPOP.
// The three aspects — plan generation, plan costing, search strategy —
// are kept orthogonal so each can be modified independently.
package optimizer

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/qgm"
)

// Cost model constants: one unit is one simulated page I/O, matching
// the storage layer's accounting; CPU work is scaled relative to that,
// in the System R tradition.
const (
	costPageIO  = 1.0
	costRowCPU  = 0.01  // per row passed through an operator
	costPredCPU = 0.005 // per predicate evaluation
	costHashCPU = 0.015 // per row hashed (build or probe)
	costSortCPU = 0.012 // per row per log2(rows) comparison round
	costRIDIO   = 1.0   // unclustered fetch: one page per rid
	costIdxNode = 0.2   // per index node touched

	defaultEqSel    = 0.1
	defaultRangeSel = 1.0 / 3.0
	defaultLikeSel  = 0.1
	defaultNullSel  = 0.1
	defaultSel      = 1.0 / 3.0
)

// tableStats returns (rows, pages), falling back to live storage counts
// when ANALYZE has not run.
func tableStats(t *catalog.Table) (float64, float64) {
	rows := float64(t.Stats.Rows)
	pages := float64(t.Stats.Pages)
	if rows == 0 {
		rows = float64(t.Rel.RowCount())
		pages = float64(t.Rel.PageCount())
	}
	if rows < 1 {
		rows = 1
	}
	if pages < 1 {
		pages = 1
	}
	return rows, pages
}

// colCard estimates the number of distinct values in a base column
// reachable through quantifier structure; 0 when unknown.
func (o *Optimizer) colCard(c *expr.Col) float64 {
	if c == nil {
		return 0
	}
	_, q := o.graph.QuantByID(c.QID)
	if q == nil || q.Input == nil {
		return 0
	}
	b := q.Input
	switch b.Kind {
	case qgm.KindBase:
		if c.Ord < len(b.Table.Stats.ColCard) {
			card := float64(b.Table.Stats.ColCard[c.Ord])
			if card > 0 {
				return card
			}
		}
		rows, _ := tableStats(b.Table)
		return math.Sqrt(rows) // heuristic when unanalyzed
	default:
		// Derived column: follow a plain column head expr downward.
		if c.Ord < len(b.Head) {
			if inner, ok := b.Head[c.Ord].Expr.(*expr.Col); ok {
				return o.colCard(inner)
			}
		}
	}
	return 0
}

// colRange returns the [min,max] of a base column when statistics know
// it.
func (o *Optimizer) colRange(c *expr.Col) (datum.Value, datum.Value, bool) {
	_, q := o.graph.QuantByID(c.QID)
	if q == nil || q.Input == nil || q.Input.Kind != qgm.KindBase {
		return datum.Null, datum.Null, false
	}
	st := q.Input.Table.Stats
	if c.Ord >= len(st.ColMin) || st.ColMin[c.Ord].IsNull() {
		return datum.Null, datum.Null, false
	}
	return st.ColMin[c.Ord], st.ColMax[c.Ord], true
}

// selectivity estimates the fraction of rows satisfying a predicate.
// localQIDs, when non-nil, restricts which column references count as
// local (foreign references are correlation parameters, treated as
// constants).
func (o *Optimizer) selectivity(e expr.Expr) float64 {
	switch x := e.(type) {
	case *expr.And:
		return o.selectivity(x.L) * o.selectivity(x.R)
	case *expr.Or:
		l, r := o.selectivity(x.L), o.selectivity(x.R)
		return l + r - l*r
	case *expr.Not:
		return clampSel(1 - o.selectivity(x.E))
	case *expr.Cmp:
		return o.cmpSelectivity(x)
	case *expr.Like:
		return defaultLikeSel
	case *expr.IsNull:
		if x.Negated {
			return 1 - defaultNullSel
		}
		return defaultNullSel
	case *expr.InList:
		lc, _ := x.E.(*expr.Col)
		card := o.colCard(lc)
		if card > 0 {
			return clampSel(float64(len(x.List)) / card)
		}
		return clampSel(float64(len(x.List)) * defaultEqSel)
	case *expr.Const:
		if x.Val.Type() == datum.TBool {
			if x.Val.Bool() {
				return 1
			}
			return 0
		}
	}
	return defaultSel
}

func clampSel(s float64) float64 {
	if s < 1e-6 {
		return 1e-6
	}
	if s > 1 {
		return 1
	}
	return s
}

func (o *Optimizer) cmpSelectivity(c *expr.Cmp) float64 {
	lc, lIsCol := c.L.(*expr.Col)
	rc, rIsCol := c.R.(*expr.Col)
	switch c.Op {
	case expr.OpEq:
		switch {
		case lIsCol && rIsCol:
			cl, cr := o.colCard(lc), o.colCard(rc)
			m := math.Max(cl, cr)
			if m > 0 {
				return clampSel(1 / m)
			}
			return defaultEqSel
		case lIsCol:
			if card := o.colCard(lc); card > 0 {
				return clampSel(1 / card)
			}
			return defaultEqSel
		case rIsCol:
			if card := o.colCard(rc); card > 0 {
				return clampSel(1 / card)
			}
			return defaultEqSel
		}
		return defaultEqSel
	case expr.OpNe:
		return clampSel(1 - o.cmpSelectivity(&expr.Cmp{Op: expr.OpEq, L: c.L, R: c.R}))
	default:
		// Range predicate: interpolate against [min,max] when one side
		// is a column with stats and the other a constant.
		col, konst, op := lc, c.R, c.Op
		if !lIsCol && rIsCol {
			col, konst, op = rc, c.L, c.Op.Flip()
		}
		if col != nil {
			if k, ok := konst.(*expr.Const); ok {
				if lo, hi, ok := o.colRange(col); ok &&
					lo.Type() != datum.TString && !k.Val.IsNull() {
					loF, hiF, kF := lo.Float(), hi.Float(), k.Val.Float()
					if hiF > loF {
						frac := (kF - loF) / (hiF - loF)
						frac = math.Max(0, math.Min(1, frac))
						switch op {
						case expr.OpLt, expr.OpLe:
							return clampSel(frac)
						case expr.OpGt, expr.OpGe:
							return clampSel(1 - frac)
						}
					}
				}
			}
		}
		return defaultRangeSel
	}
}

// conjunctSelectivity multiplies the selectivities of predicates.
func (o *Optimizer) conjunctSelectivity(preds []expr.Expr) float64 {
	s := 1.0
	for _, p := range preds {
		s *= o.selectivity(p)
	}
	return clampSel(s)
}

// --- per-LOLEPOP property functions -----------------------------------
// "Each LOLEPOP changes selected properties of its operands ... These
// changes, including the appropriate cost and cardinality estimates,
// are defined by a function for each LOLEPOP" (section 6).

func (o *Optimizer) costScan(t *catalog.Table, preds []expr.Expr) plan.Props {
	rows, pages := tableStats(t)
	sel := o.conjunctSelectivity(preds)
	out := math.Max(1, rows*sel)
	// An observed-cardinality overlay — the actual output of a prior
	// execution of this scan shape, folded in by the feedback loop —
	// outranks the selectivity model.
	if obs, ok := t.ObservedCard(ScanPredsKey(preds)); ok {
		out = math.Max(1, obs)
		if rows < out {
			// The observation also bounds the input: a scan cannot emit
			// more rows than it read, so the stale base-table row count is
			// at least the observed output.
			rows = out
		}
	}
	return plan.Props{
		Rows: out,
		Cost: pages*costPageIO + rows*(costRowCPU+float64(len(preds))*costPredCPU),
	}
}

func (o *Optimizer) costIndexScan(t *catalog.Table, matchSel float64, residual []expr.Expr, keyLen int) plan.Props {
	rows, _ := tableStats(t)
	matched := math.Max(1, rows*matchSel)
	resSel := o.conjunctSelectivity(residual)
	depth := math.Max(1, math.Log2(matched+2))
	cost := depth*costIdxNode + matched*costIdxNode/32 + // B-tree descent + leaf scan
		matched*costRIDIO + // unclustered fetches
		matched*(costRowCPU+float64(len(residual))*costPredCPU)
	return plan.Props{
		Rows: math.Max(1, matched*resSel),
		Cost: cost,
	}
}

func (o *Optimizer) costFilter(in plan.Props, preds []expr.Expr) plan.Props {
	sel := o.conjunctSelectivity(preds)
	return plan.Props{
		Tables: in.Tables,
		Order:  in.Order,
		Rows:   math.Max(1, in.Rows*sel),
		Cost:   in.Cost + in.Rows*float64(len(preds))*costPredCPU,
	}
}

func costSort(in plan.Props, keys []plan.SortKey) plan.Props {
	n := math.Max(in.Rows, 2)
	return plan.Props{
		Tables: in.Tables,
		Order:  keys,
		Rows:   in.Rows,
		Cost:   in.Cost + n*math.Log2(n)*costSortCPU,
	}
}

func (o *Optimizer) costNLJoin(l, r plan.Props, joinSel float64, nPreds int) plan.Props {
	// Inner is materialized (TEMP): build once, probe rows(L) times.
	return plan.Props{
		Order: l.Order, // preserves outer order
		Rows:  math.Max(1, l.Rows*r.Rows*joinSel),
		Cost: l.Cost + r.Cost + r.Rows*costRowCPU + // materialize inner
			l.Rows*r.Rows*(costRowCPU+float64(nPreds)*costPredCPU),
	}
}

func (o *Optimizer) costHashJoin(l, r plan.Props, joinSel float64) plan.Props {
	return plan.Props{
		Rows: math.Max(1, l.Rows*r.Rows*joinSel),
		Cost: l.Cost + r.Cost + r.Rows*costHashCPU + l.Rows*costHashCPU,
	}
}

func (o *Optimizer) costMergeJoin(l, r plan.Props, joinSel float64) plan.Props {
	return plan.Props{
		Order: l.Order,
		Rows:  math.Max(1, l.Rows*r.Rows*joinSel),
		Cost:  l.Cost + r.Cost + (l.Rows+r.Rows)*costRowCPU,
	}
}

func costGroup(in plan.Props, nAggs int) plan.Props {
	groups := math.Max(1, in.Rows/3) // heuristic group count
	return plan.Props{
		Rows: groups,
		Cost: in.Cost + in.Rows*(costHashCPU+float64(nAggs)*costRowCPU),
	}
}

func costDistinct(in plan.Props) plan.Props {
	return plan.Props{
		Order: in.Order,
		Rows:  math.Max(1, in.Rows*0.5),
		Cost:  in.Cost + in.Rows*costHashCPU,
	}
}
