package optimizer

import (
	"fmt"
	"math/bits"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/qgm"
)

// enumerateJoins is the join enumerator of [ONO88]: it "enumerates all
// valid join sequences by iteratively constructing progressively larger
// sets of iterators from two smaller iterator sets, starting from the
// plans generated earlier for sets of a single iterator". For each pair
// it invokes the plan generator's JOIN STAR. Switches control composite
// inners (bushy trees) and Cartesian products, which System R and R*
// always pruned.
func (o *Optimizer) enumerateJoins(ctx *Ctx, quants []*qgm.Quantifier,
	scanPreds map[int][]expr.Expr, joinPreds []expr.Expr) ([]*plan.Node, error) {

	n := len(quants)
	if n == 0 {
		return nil, fmt.Errorf("optimizer: empty iterator set")
	}
	if n > 20 {
		return nil, fmt.Errorf("optimizer: %d-way join exceeds the enumerator's 20-iterator limit", n)
	}
	qidBit := map[int]uint{}
	for i, q := range quants {
		qidBit[q.QID] = uint(i)
	}

	// predMask computes the local iterator bits a predicate references;
	// foreign (correlation) references contribute no bits.
	predMask := func(p expr.Expr) uint32 {
		var m uint32
		for qid := range expr.QIDs(p) {
			if b, ok := qidBit[qid]; ok {
				m |= 1 << b
			}
		}
		return m
	}
	type predInfo struct {
		e expr.Expr
		m uint32
	}
	var preds []predInfo
	for _, p := range joinPreds {
		preds = append(preds, predInfo{p, predMask(p)})
	}

	best := make(map[uint32][]*plan.Node)

	// Single-iterator sets: access path selection via the ACCESS STAR.
	for i, q := range quants {
		plans, err := ctx.Evaluate("ACCESS", Args{Quant: q, Preds: scanPreds[q.QID]})
		if err != nil {
			return nil, err
		}
		if len(plans) == 0 {
			return nil, fmt.Errorf("optimizer: no access plan for iterator %s", q.Name)
		}
		best[1<<uint32(i)] = prunePlans(plans)
	}

	if n == 1 {
		return best[1], nil
	}

	full := uint32(1<<uint32(n)) - 1

	// newPreds lists predicates first applicable at exactly this
	// combination (covered by the union, by neither side alone).
	newPreds := func(s1, s2 uint32) []expr.Expr {
		var out []expr.Expr
		s := s1 | s2
		for _, pi := range preds {
			if pi.m != 0 && pi.m&^s == 0 && pi.m&^s1 != 0 && pi.m&^s2 != 0 {
				out = append(out, pi.e)
			}
		}
		return out
	}

	// connected reports whether any join predicate spans the two sides.
	connected := func(s1, s2 uint32) bool {
		for _, pi := range preds {
			if pi.m&s1 != 0 && pi.m&s2 != 0 && pi.m&^(s1|s2) == 0 {
				return true
			}
		}
		return false
	}

	var join func(s1, s2 uint32) error
	join = func(s1, s2 uint32) error {
		l, r := best[s1], best[s2]
		if len(l) == 0 || len(r) == 0 {
			return nil
		}
		np := newPreds(s1, s2)
		plans, err := ctx.Evaluate("JOIN", Args{Left: l, Right: r, Preds: np})
		if err != nil {
			return err
		}
		s := s1 | s2
		best[s] = prunePlans(append(best[s], plans...))
		return nil
	}

	for size := 2; size <= n; size++ {
		for s := uint32(1); s <= full; s++ {
			if bits.OnesCount32(s) != size {
				continue
			}
			// Pass 1 considers connected splits (plus everything when
			// Cartesian products are enabled); pass 2 is the fallback
			// that keeps disconnected sets plannable.
			for pass := 0; pass < 2; pass++ {
				if pass == 1 && (o.AllowCartesian || len(best[s]) > 0) {
					break
				}
				cart := o.AllowCartesian || pass == 1
				for sub := (s - 1) & s; sub > 0; sub = (sub - 1) & s {
					rest := s &^ sub
					if sub < rest {
						continue // canonical split; both directions joined below
					}
					if !o.AllowBushy && bits.OnesCount32(sub) != 1 && bits.OnesCount32(rest) != 1 {
						continue
					}
					if !cart && !connected(sub, rest) {
						continue
					}
					if err := join(sub, rest); err != nil {
						return nil, err
					}
					if err := join(rest, sub); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if len(best[full]) == 0 {
		return nil, fmt.Errorf("optimizer: enumerator found no plan for the full iterator set")
	}
	return best[full], nil
}
