package verify

import (
	"fmt"

	"repro/internal/datum"
	"repro/internal/plan"
	"repro/internal/qgm"
)

// exactInputs maps each built-in LOLEPOP to its required input count;
// minInputs covers the variadic ones. Operators absent from both maps
// are DBC extensions and are not shape-checked.
var exactInputs = map[string]int{
	plan.OpScan: 0, plan.OpIndex: 0, plan.OpValues: 0, plan.OpTableFn: 0, plan.OpRecRef: 0,
	plan.OpFilter: 1, plan.OpProject: 1, plan.OpSort: 1, plan.OpDistinct: 1,
	plan.OpGroup: 1, plan.OpTemp: 1, plan.OpLimit: 1, plan.OpAccess: 1,
	plan.OpGather: 1, plan.OpRepart: 1,
	plan.OpInsert: 1, plan.OpUpdate: 1, plan.OpDelete: 1,
	plan.OpNLJoin: 2, plan.OpSMJoin: 2, plan.OpHSJoin: 2, plan.OpSubq: 2,
}

var minInputs = map[string]int{
	plan.OpUnion: 2, plan.OpInter: 2, plan.OpExcept: 2, plan.OpRecUnion: 2,
	plan.OpChoose: 1,
}

// Plan verifies a compiled physical plan against itself and against the
// QGM head it implements: result arity and types must match the top
// box's visible head, each operator must have the right number of
// inputs and internally consistent slot references, and a required
// output order must be produced (a SORT node or an order-providing
// access path). It returns nil when the plan is well-formed.
func Plan(c *plan.Compiled) *Report {
	var rep Report
	add := func(path, format string, args ...any) {
		rep.Violations = append(rep.Violations,
			Violation{Class: ClassPlan, Path: path, Msg: fmt.Sprintf(format, args...)})
	}
	if c == nil {
		return &Report{Violations: []Violation{{Class: ClassPlan, Path: "plan", Msg: "nil compiled plan"}}}
	}
	if c.Root == nil {
		add("plan", "compiled plan has no root node")
		return &rep
	}
	if len(c.OutputNames) != len(c.OutputTypes) {
		add("plan", "%d output names for %d output types", len(c.OutputNames), len(c.OutputTypes))
	}

	// Result metadata vs the QGM head.
	if g := c.Graph; g != nil && g.Top != nil {
		visible := g.Top.Head
		if g.HiddenOrderCols > 0 && g.HiddenOrderCols <= len(visible) {
			visible = visible[:len(visible)-g.HiddenOrderCols]
		}
		switch g.Top.Kind {
		case qgm.KindInsert, qgm.KindUpdate, qgm.KindDelete:
			// DML returns no rows; the head (if any) holds SET exprs.
		default:
			if len(c.OutputNames) != len(visible) {
				add("plan", "plan outputs %d columns, QGM top %s head has %d visible",
					len(c.OutputNames), boxLabel(g.Top), len(visible))
			} else {
				for i, hc := range visible {
					if c.OutputNames[i] != hc.Name {
						add("plan", "output column %d named %q, QGM head names it %q", i, c.OutputNames[i], hc.Name)
					}
					if !typesAgree(c.OutputTypes[i], hc.Type) {
						add("plan", "output column %d (%s) has type %s, QGM head declares %s",
							i, hc.Name, datum.TypeName(c.OutputTypes[i]), datum.TypeName(hc.Type))
					}
				}
				if len(c.Root.Cols) > 0 && len(c.Root.Cols) != len(visible) {
					add("plan", "root node produces %d slots for %d visible head columns",
						len(c.Root.Cols), len(visible))
				}
				if len(c.Root.Types) == len(visible) {
					for i, hc := range visible {
						if !typesAgree(c.Root.Types[i], hc.Type) {
							add("plan", "root slot %d has type %s, QGM head column %s declares %s",
								i, datum.TypeName(c.Root.Types[i]), hc.Name, datum.TypeName(hc.Type))
						}
					}
				}
			}
		}

		// Required order: either some SORT produces it, or the chosen
		// access path already satisfies it (interesting orders).
		if len(g.OrderBy) > 0 {
			sorted := false
			plan.Walk(c.Root, func(n *plan.Node) bool {
				if n.Op == plan.OpSort {
					sorted = true
					return false
				}
				return true
			})
			if !sorted && len(c.Root.Props.Order) < len(g.OrderBy) {
				add("plan", "QGM requires ORDER BY over %d keys but the plan neither sorts nor provides the order",
					len(g.OrderBy))
			}
		}
	}

	// Per-node shape checks.
	plan.Walk(c.Root, func(n *plan.Node) bool {
		path := "op " + n.Op
		if want, ok := exactInputs[n.Op]; ok && len(n.Inputs) != want {
			add(path, "needs %d inputs, has %d", want, len(n.Inputs))
			return true // shape too broken for the slot checks below
		} else if want, ok := minInputs[n.Op]; ok && len(n.Inputs) < want {
			add(path, "needs at least %d inputs, has %d", want, len(n.Inputs))
			return true
		}
		if len(n.Cols) > 0 && len(n.Types) > 0 && len(n.Cols) != len(n.Types) {
			add(path, "%d output slots but %d slot types", len(n.Cols), len(n.Types))
		}
		inWidth := func(i int) int {
			if i < len(n.Inputs) && n.Inputs[i] != nil {
				return len(n.Inputs[i].Cols)
			}
			return -1
		}
		switch n.Op {
		case plan.OpSort:
			for _, k := range n.SortKeys {
				if k.Slot < 0 || k.Slot >= len(n.Cols) {
					add(path, "sort key slot %d out of range (%d slots)", k.Slot, len(n.Cols))
				}
			}
		case plan.OpProject:
			if len(n.Cols) > 0 && len(n.Exprs) != len(n.Cols) {
				add(path, "%d expressions for %d output slots", len(n.Exprs), len(n.Cols))
			}
		case plan.OpGroup:
			if w := inWidth(0); w >= 0 {
				for _, gc := range n.GroupCols {
					if gc < 0 || gc >= w {
						add(path, "group column slot %d out of range (input has %d slots)", gc, w)
					}
				}
			}
		case plan.OpHSJoin, plan.OpSMJoin:
			if len(n.EquiLeft) != len(n.EquiRight) {
				add(path, "%d left equi-key slots for %d right", len(n.EquiLeft), len(n.EquiRight))
			}
			if w := inWidth(0); w >= 0 {
				for _, s := range n.EquiLeft {
					if s < 0 || s >= w {
						add(path, "left equi-key slot %d out of range (%d slots)", s, w)
					}
				}
			}
			if w := inWidth(1); w >= 0 {
				for _, s := range n.EquiRight {
					if s < 0 || s >= w {
						add(path, "right equi-key slot %d out of range (%d slots)", s, w)
					}
				}
			}
		case plan.OpScan, plan.OpIndex:
			if n.Table == nil {
				add(path, "scan without a table")
			}
		}
		return true
	})

	if len(rep.Violations) == 0 {
		return nil
	}
	return &rep
}
