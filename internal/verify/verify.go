// Package verify is the deep semantic verifier for QGM graphs and
// query evaluation plans. Starburst's extensibility bet — arbitrary
// parties adding rewrite rules and STARs — only works if the system can
// prove each transformation left the QGM semantically well-formed, so
// this package goes far beyond the structural pass in
// qgm.StructuralCheck: head-column type consistency, column-ordinal
// bounds, quantifier scoping and reachability, acyclicity (modulo
// recursive unions), distinct-mode legality, setformer/quantifier type
// legality, dangling-box and orphan-QID detection, and
// aggregate/group-by placement. Every violation carries a
// box/quantifier path, not just a boolean.
//
// Importing this package (directly or via internal/rewrite) installs it
// as the deep verifier behind qgm.(*Graph).Check, making it the single
// source of truth for QGM validity wherever the rewrite engine is
// linked.
package verify

import (
	"fmt"
	"strings"

	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/qgm"
)

func init() {
	qgm.RegisterVerifier(func(g *qgm.Graph) error {
		if rep := Graph(g); rep != nil {
			return rep
		}
		return nil
	})
}

// Violation classes. Tests assert on these, so they are stable API.
const (
	ClassStructure    = "structure"     // missing top, nil predicates, broken range edges
	ClassDanglingBox  = "dangling-box"  // registered box unreachable from the top
	ClassOrphanQID    = "orphan-qid"    // column reference to a nonexistent or out-of-scope quantifier
	ClassOrdinal      = "ordinal"       // column ordinal outside its quantifier's head
	ClassHeadType     = "head-type"     // head column type inconsistent with its expression
	ClassColType      = "col-type"      // column reference type inconsistent with the input head
	ClassCycle        = "cycle"         // cyclic range edges outside a recursive union
	ClassQuantType    = "quant-type"    // illegal iterator type / set-predicate combination
	ClassBoxShape     = "box-shape"     // box body violates its kind's shape invariants
	ClassDistinct     = "distinct"      // illegal duplicate-handling mode (or audit-time transition)
	ClassAggPlacement = "agg-placement" // aggregate outside a GROUPBY head, or group head not in GROUP BY
	ClassPlan         = "plan"          // physical plan inconsistent with itself or the QGM head
)

// Violation is one verifier finding, located by a box/quantifier path.
type Violation struct {
	// Class is one of the Class* constants.
	Class string
	// Path locates the finding: a chain of boxes and quantifiers from
	// the top box, e.g. "box 1 (SELECT, top) / q4 / box 3 (GROUPBY) / pred[0]".
	Path string
	// Msg describes the violation.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: %s", v.Class, v.Path, v.Msg)
}

// Report is a non-empty set of violations; it implements error.
type Report struct {
	Violations []Violation
}

func (r *Report) Error() string {
	if len(r.Violations) == 1 {
		return "verify: " + r.Violations[0].String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %d violations:", len(r.Violations))
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

// Has reports whether any violation has the given class.
func (r *Report) Has(class string) bool {
	if r == nil {
		return false
	}
	for _, v := range r.Violations {
		if v.Class == class {
			return true
		}
	}
	return false
}

// AsReport extracts a *Report from an error chain, or nil.
func AsReport(err error) *Report {
	for err != nil {
		if r, ok := err.(*Report); ok {
			return r
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return nil
		}
		err = u.Unwrap()
	}
	return nil
}

// Graph runs every semantic pass over g and returns the collected
// violations, or nil when the graph is well-formed.
func Graph(g *qgm.Graph) *Report {
	c := &checker{
		g:          g,
		registered: map[*qgm.Box]bool{},
		pathOf:     map[*qgm.Box]string{},
		ownerQ:     map[int]*qgm.Quantifier{},
		ownerBox:   map[int]*qgm.Box{},
		subtree:    map[*qgm.Box]map[*qgm.Box]bool{},
	}
	c.run()
	if len(c.report.Violations) == 0 {
		return nil
	}
	return &c.report
}

type checker struct {
	g      *qgm.Graph
	report Report

	registered map[*qgm.Box]bool
	// boxes is every box reachable from the top, including deferred
	// subquery subtrees (reachable only through expr.Subplan payloads),
	// in discovery order.
	boxes []*qgm.Box
	// pathOf locates each reachable box for diagnostics.
	pathOf map[*qgm.Box]string
	// viaSubplan marks boxes reachable only through subplan edges;
	// after GC these are legitimately unregistered.
	viaSubplan map[*qgm.Box]bool
	ownerQ     map[int]*qgm.Quantifier
	ownerBox   map[int]*qgm.Box
	// subtree memoizes reachability sets for the correlation scope check.
	subtree map[*qgm.Box]map[*qgm.Box]bool
}

func (c *checker) add(class, path, format string, args ...any) {
	c.report.Violations = append(c.report.Violations,
		Violation{Class: class, Path: path, Msg: fmt.Sprintf(format, args...)})
}

func boxLabel(b *qgm.Box) string { return fmt.Sprintf("box %d (%s)", b.ID, b.Kind) }

func (c *checker) run() {
	g := c.g
	if g.Top == nil {
		c.add(ClassStructure, "graph", "graph has no top box")
		return
	}
	for _, b := range g.Boxes {
		c.registered[b] = true
	}
	if !c.registered[g.Top] {
		c.add(ClassStructure, boxLabel(g.Top), "top box not registered")
	}

	c.discover()
	c.checkDangling()
	c.collectQuants()
	for _, b := range c.boxes {
		c.checkExprs(b)
		c.checkQuantTypes(b)
		c.checkShape(b)
		c.checkDistinct(b)
		c.checkAggregates(b)
	}
}

// subplanBoxes lists the deferred-subquery boxes referenced by the
// box's expressions (with the location of the referencing expression).
func subplanBoxes(b *qgm.Box) []struct {
	Loc string
	Box *qgm.Box
} {
	var out []struct {
		Loc string
		Box *qgm.Box
	}
	b.VisitExprs(func(loc string, e expr.Expr) {
		expr.Walk(e, func(x expr.Expr) bool {
			if sp, ok := x.(*expr.Subplan); ok {
				if ds, ok := sp.Aux.(*qgm.DeferredSubquery); ok && ds.Box != nil {
					out = append(out, struct {
						Loc string
						Box *qgm.Box
					}{loc, ds.Box})
				}
			}
			return true
		})
	})
	return out
}

// discover walks the graph from the top along range edges and deferred
// subplan edges, recording paths and detecting illegal cycles. A back
// edge is legal only when it closes on a recursive UNION box (the
// fixpoint reference of a recursive table expression).
func (c *checker) discover() {
	c.viaSubplan = map[*qgm.Box]bool{}
	onStack := map[*qgm.Box]bool{}
	visited := map[*qgm.Box]bool{}

	var walk func(b *qgm.Box, path string, deferred bool)
	walk = func(b *qgm.Box, path string, deferred bool) {
		if onStack[b] {
			if b.Kind == qgm.KindUnion && b.Recursive {
				return // legal fixpoint back edge
			}
			c.add(ClassCycle, path, "cyclic box reference closes on %s, which is not a recursive UNION", boxLabel(b))
			return
		}
		if visited[b] {
			if !deferred {
				c.viaSubplan[b] = false
			}
			return
		}
		visited[b] = true
		c.viaSubplan[b] = deferred
		c.boxes = append(c.boxes, b)
		c.pathOf[b] = path
		onStack[b] = true
		for _, q := range b.Quants {
			if q.Input == nil {
				c.add(ClassStructure, path, "quantifier %s(q%d) has no range edge", q.Name, q.QID)
				continue
			}
			walk(q.Input, fmt.Sprintf("%s / q%d / %s", path, q.QID, boxLabel(q.Input)), deferred)
		}
		for _, sp := range subplanBoxes(b) {
			walk(sp.Box, fmt.Sprintf("%s / %s / subplan %s", path, sp.Loc, boxLabel(sp.Box)), true)
		}
		onStack[b] = false
	}
	walk(c.g.Top, boxLabel(c.g.Top)+" (top)", false)
}

// checkDangling flags registered boxes unreachable from the top, and
// quantifier-reachable boxes that are unregistered (deferred subquery
// subtrees are exempt: GC legitimately strips them after translation).
func (c *checker) checkDangling() {
	reach := map[*qgm.Box]bool{}
	for _, b := range c.boxes {
		reach[b] = true
	}
	for _, b := range c.g.Boxes {
		if !reach[b] {
			c.add(ClassDanglingBox, boxLabel(b), "registered box is unreachable from the top box")
			// Still give its quantifiers owners so column references
			// into it are diagnosed as scope errors, not crashes.
			c.boxes = append(c.boxes, b)
			c.pathOf[b] = boxLabel(b) + " (dangling)"
			c.viaSubplan[b] = true
		}
	}
	for _, b := range c.boxes {
		if !c.registered[b] && !c.viaSubplan[b] {
			c.add(ClassStructure, c.pathOf[b], "box reachable via range edges is not registered in the graph")
		}
	}
}

func (c *checker) collectQuants() {
	for _, b := range c.boxes {
		for _, q := range b.Quants {
			if prev, dup := c.ownerQ[q.QID]; dup {
				c.add(ClassStructure, c.pathOf[b],
					"duplicate quantifier id q%d (also %s in %s)", q.QID, prev.Name, boxLabel(c.ownerBox[q.QID]))
				continue
			}
			c.ownerQ[q.QID] = q
			c.ownerBox[q.QID] = b
		}
	}
}

// inSubtree reports whether b lies in the subtree rooted at root
// (range edges plus deferred subplan edges), memoized per root.
func (c *checker) inSubtree(root, b *qgm.Box) bool {
	set, ok := c.subtree[root]
	if !ok {
		set = map[*qgm.Box]bool{}
		var mark func(x *qgm.Box)
		mark = func(x *qgm.Box) {
			if x == nil || set[x] {
				return
			}
			set[x] = true
			for _, q := range x.Quants {
				mark(q.Input)
			}
			for _, sp := range subplanBoxes(x) {
				mark(sp.Box)
			}
		}
		mark(root)
		c.subtree[root] = set
	}
	return set[b]
}

// checkExprs validates every column reference of every expression slot:
// the quantifier must exist, must be in scope (local to the box or
// owned by an ancestor — correlation), the ordinal must be inside the
// input head, and the reference's static type must be consistent with
// the column it names. Head columns must also agree with the type of
// the expression computing them.
func (c *checker) checkExprs(b *qgm.Box) {
	path := c.pathOf[b]
	b.VisitExprs(func(loc string, e expr.Expr) {
		if e == nil {
			c.add(ClassStructure, path+" / "+loc, "nil expression")
			return
		}
		for _, col := range expr.Cols(e) {
			if col.QID < 0 {
				continue // already slot-bound (executor-phase reference)
			}
			q, ok := c.ownerQ[col.QID]
			if !ok {
				c.add(ClassOrphanQID, path+" / "+loc,
					"column %s references nonexistent quantifier q%d", col.Name, col.QID)
				continue
			}
			owner := c.ownerBox[col.QID]
			if owner != b && !c.inSubtree(owner, b) {
				c.add(ClassOrphanQID, path+" / "+loc,
					"column %s references q%d of %s, which is neither local nor an ancestor (out of scope)",
					col.Name, col.QID, boxLabel(owner))
				continue
			}
			if q.Input == nil {
				continue // already reported as a structure violation
			}
			if col.Ord < 0 || col.Ord >= len(q.Input.Head) {
				c.add(ClassOrdinal, path+" / "+loc,
					"column %s ordinal %d out of range for q%d over %s (head has %d columns)",
					col.Name, col.Ord, col.QID, boxLabel(q.Input), len(q.Input.Head))
				continue
			}
			ht := q.Input.Head[col.Ord].Type
			if !typesAgree(col.Typ, ht) {
				c.add(ClassColType, path+" / "+loc,
					"column %s declares type %s but q%d.%d has type %s",
					col.Name, datum.TypeName(col.Typ), col.QID, col.Ord, datum.TypeName(ht))
			}
		}
	})
	for i, hc := range b.Head {
		if hc.Expr == nil {
			continue
		}
		if et := hc.Expr.Type(); !typesAgree(et, hc.Type) {
			c.add(ClassHeadType, fmt.Sprintf("%s / head[%d] (%s)", path, i, hc.Name),
				"head column declares type %s but its expression computes %s",
				datum.TypeName(hc.Type), datum.TypeName(et))
		}
	}
	for i, p := range b.Preds {
		if p == nil || p.Expr == nil {
			c.add(ClassStructure, fmt.Sprintf("%s / pred[%d]", path, i), "nil predicate")
		}
	}
}

// typesAgree is the lenient consistency test: NULL is a wildcard
// (untyped literals, empty CASE branches) and numeric coercion is
// accepted in either direction; everything else must match exactly.
func typesAgree(a, b datum.TypeID) bool {
	if a == datum.TNull || b == datum.TNull {
		return true
	}
	return datum.Compatible(a, b) || datum.Compatible(b, a)
}

// checkQuantTypes enforces the iterator-type conventions: setformers
// (F/PF) carry no set predicate and no negation, E folds with ANY, A
// with ALL, scalar quantifiers fold nothing, and a DBC quantifier type
// names its own set-predicate function. PF appears only in outer-join
// boxes.
func (c *checker) checkQuantTypes(b *qgm.Box) {
	path := c.pathOf[b]
	for _, q := range b.Quants {
		qpath := fmt.Sprintf("%s / quant %s(q%d)", path, q.Name, q.QID)
		switch q.Type {
		case qgm.ForEach, qgm.PreserveForeach:
			if q.SetPred != "" {
				c.add(ClassQuantType, qpath, "setformer %s carries set predicate %q", q.Type, q.SetPred)
			}
			if q.Negated {
				c.add(ClassQuantType, qpath, "setformer %s cannot be negated", q.Type)
			}
			if q.Type == qgm.PreserveForeach && b.Kind != qgm.KindOuterJoin {
				c.add(ClassQuantType, qpath, "PF quantifier outside a %s box", qgm.KindOuterJoin)
			}
		case qgm.QExists:
			if q.SetPred != "ANY" {
				c.add(ClassQuantType, qpath, "existential quantifier must fold with ANY, has %q", q.SetPred)
			}
		case qgm.QAll:
			if q.SetPred != "ALL" {
				c.add(ClassQuantType, qpath, "universal quantifier must fold with ALL, has %q", q.SetPred)
			}
		case qgm.QScalar:
			if q.SetPred != "" {
				c.add(ClassQuantType, qpath, "scalar quantifier carries set predicate %q", q.SetPred)
			}
			if q.Negated {
				c.add(ClassQuantType, qpath, "scalar quantifier cannot be negated")
			}
			if q.Input != nil && len(q.Input.Head) != 1 {
				c.add(ClassQuantType, qpath, "scalar quantifier input must have one column, has %d", len(q.Input.Head))
			}
		default:
			// DBC-defined quantifier: by convention its type names its
			// set-predicate function.
			if q.SetPred != q.Type {
				c.add(ClassQuantType, qpath, "custom quantifier %s must fold with set predicate %q, has %q",
					q.Type, q.Type, q.SetPred)
			}
		}
	}
}

// checkShape enforces per-kind body invariants.
func (c *checker) checkShape(b *qgm.Box) {
	path := c.pathOf[b]
	switch b.Kind {
	case qgm.KindSelect, qgm.KindOuterJoin:
		for i, hc := range b.Head {
			if hc.Expr == nil {
				c.add(ClassBoxShape, fmt.Sprintf("%s / head[%d] (%s)", path, i, hc.Name),
					"%s head column has no computing expression", b.Kind)
			}
		}
	case qgm.KindGroupBy:
		if len(b.Quants) != 1 {
			c.add(ClassBoxShape, path, "GROUPBY box must have exactly one quantifier, has %d", len(b.Quants))
		} else if b.Quants[0].Type != qgm.ForEach {
			c.add(ClassBoxShape, path, "GROUPBY quantifier must be a setformer (F), is %s", b.Quants[0].Type)
		}
	case qgm.KindUnion, qgm.KindIntersect, qgm.KindExcept:
		if len(b.Quants) < 2 {
			c.add(ClassBoxShape, path, "%s box must have at least two operands, has %d", b.Kind, len(b.Quants))
		}
		for _, q := range b.Quants {
			if q.Type != qgm.ForEach {
				c.add(ClassBoxShape, path, "%s operand q%d must be a setformer (F), is %s", b.Kind, q.QID, q.Type)
			}
			if q.Input != nil && len(q.Input.Head) != len(b.Head) {
				c.add(ClassBoxShape, path, "%s operand q%d has %d columns, box head has %d",
					b.Kind, q.QID, len(q.Input.Head), len(b.Head))
			}
		}
		if b.Recursive && b.Kind != qgm.KindUnion {
			c.add(ClassBoxShape, path, "recursive flag on a %s box (only UNION can be a fixpoint)", b.Kind)
		}
	case qgm.KindBase:
		if b.Table == nil {
			c.add(ClassBoxShape, path, "base box has no catalog table")
			break
		}
		if len(b.Quants) != 0 || len(b.Preds) != 0 {
			c.add(ClassBoxShape, path, "base box must have no quantifiers or predicates")
		}
		if len(b.Head) != len(b.Table.Cols) {
			c.add(ClassBoxShape, path, "base box head has %d columns, table %s has %d",
				len(b.Head), b.Table.Name, len(b.Table.Cols))
		}
	case qgm.KindValues:
		if len(b.Quants) != 0 {
			c.add(ClassBoxShape, path, "VALUES box must have no quantifiers")
		}
		for ri, row := range b.Rows {
			if len(row) != len(b.Head) {
				c.add(ClassBoxShape, fmt.Sprintf("%s / values[%d]", path, ri),
					"row has %d values, head has %d columns", len(row), len(b.Head))
				continue
			}
			for ci, e := range row {
				if e == nil {
					continue
				}
				if !typesAgree(e.Type(), b.Head[ci].Type) {
					c.add(ClassHeadType, fmt.Sprintf("%s / values[%d][%d]", path, ri, ci),
						"value of type %s in column %s of type %s",
						datum.TypeName(e.Type()), b.Head[ci].Name, datum.TypeName(b.Head[ci].Type))
				}
			}
		}
	case qgm.KindTableFn:
		if b.TableFn == nil {
			c.add(ClassBoxShape, path, "TABLEFN box has no table function")
		}
	case qgm.KindChoose:
		if len(b.Quants) == 0 {
			c.add(ClassBoxShape, path, "CHOOSE box has no alternatives")
		}
		if len(b.ChooseConds) != 0 && len(b.ChooseConds) != len(b.Quants) {
			c.add(ClassBoxShape, path, "CHOOSE has %d conditions for %d alternatives",
				len(b.ChooseConds), len(b.Quants))
		}
		for _, q := range b.Quants {
			if q.Input != nil && len(q.Input.Head) != len(b.Head) {
				c.add(ClassBoxShape, path, "CHOOSE alternative q%d has %d columns, box head has %d",
					q.QID, len(q.Input.Head), len(b.Head))
			}
		}
	case qgm.KindInsert:
		c.checkDML(b)
		if len(b.Quants) != 1 {
			c.add(ClassBoxShape, path, "INSERT box must have exactly one source quantifier, has %d", len(b.Quants))
		} else if src := b.Quants[0].Input; src != nil && len(src.Head) != len(b.TargetCols) {
			c.add(ClassBoxShape, path, "INSERT source has %d columns for %d target columns",
				len(src.Head), len(b.TargetCols))
		}
	case qgm.KindUpdate:
		c.checkDML(b)
		if len(b.Head) != len(b.TargetCols) {
			c.add(ClassBoxShape, path, "UPDATE has %d SET expressions for %d target columns",
				len(b.Head), len(b.TargetCols))
		}
	case qgm.KindDelete:
		c.checkDML(b)
	}
	if b.Recursive && b.Kind != qgm.KindUnion {
		// Covered for set ops above; catch remaining kinds too.
		if b.Kind != qgm.KindIntersect && b.Kind != qgm.KindExcept {
			c.add(ClassBoxShape, path, "recursive flag on a %s box (only UNION can be a fixpoint)", b.Kind)
		}
	}
}

func (c *checker) checkDML(b *qgm.Box) {
	path := c.pathOf[b]
	if b != c.g.Top {
		c.add(ClassBoxShape, path, "%s box may only appear as the top box", b.Kind)
	}
	if b.TargetTable == nil {
		c.add(ClassBoxShape, path, "%s box has no target table", b.Kind)
		return
	}
	for _, ord := range b.TargetCols {
		if ord < 0 || ord >= len(b.TargetTable.Cols) {
			c.add(ClassOrdinal, path, "target column ordinal %d out of range for table %s (%d columns)",
				ord, b.TargetTable.Name, len(b.TargetTable.Cols))
		}
	}
}

// checkDistinct enforces the static part of the PERMIT/ENFORCE/PRESERVE
// lattice: which modes are meaningful on which box kinds. (Transition
// legality — ENFORCE never weakening to PERMIT, PRESERVE frozen — is a
// property of rule firings and is checked by the rewrite engine's audit
// mode, which compares modes before and after each firing.)
func (c *checker) checkDistinct(b *qgm.Box) {
	path := c.pathOf[b]
	switch b.Distinct {
	case qgm.EnforceDistinct:
		switch b.Kind {
		case qgm.KindSelect, qgm.KindGroupBy:
		case qgm.KindUnion, qgm.KindIntersect, qgm.KindExcept:
			if b.SetAll {
				c.add(ClassDistinct, path, "%s ALL contradicts ENFORCE distinct mode", b.Kind)
			}
		default:
			c.add(ClassDistinct, path, "ENFORCE distinct mode on a %s box", b.Kind)
		}
	case qgm.PreserveDuplicates:
		switch b.Kind {
		case qgm.KindGroupBy:
			c.add(ClassDistinct, path, "PRESERVE distinct mode on a GROUPBY box (output has no duplicates)")
		case qgm.KindUnion, qgm.KindIntersect, qgm.KindExcept:
			if !b.SetAll {
				c.add(ClassDistinct, path, "PRESERVE distinct mode on a duplicate-eliminating %s", b.Kind)
			}
		}
	}
	switch b.Kind {
	case qgm.KindUnion, qgm.KindIntersect, qgm.KindExcept:
		if !b.SetAll && b.Distinct != qgm.EnforceDistinct {
			c.add(ClassDistinct, path, "duplicate-eliminating %s must carry ENFORCE distinct mode, has %s",
				b.Kind, b.Distinct)
		}
	}
	if b.Recursive && b.Distinct != qgm.EnforceDistinct {
		c.add(ClassDistinct, path, "recursive UNION must enforce distinctness for the fixpoint to terminate")
	}
}

// checkAggregates enforces aggregate and group-by placement: aggregate
// calls appear only as the root of a GROUPBY box's head expressions
// (the translator normalizes all other positions away), every non-
// aggregate head expression of a GROUPBY box must be one of its
// grouping expressions, and grouping expressions themselves contain no
// aggregates.
func (c *checker) checkAggregates(b *qgm.Box) {
	path := c.pathOf[b]
	flagNested := func(loc string, e expr.Expr) {
		expr.Walk(e, func(x expr.Expr) bool {
			if _, ok := x.(*expr.AggCall); ok {
				c.add(ClassAggPlacement, path+" / "+loc,
					"aggregate call %s outside a GROUPBY head", x)
				return false
			}
			return true
		})
	}
	if b.Kind != qgm.KindGroupBy {
		b.VisitExprs(func(loc string, e expr.Expr) { flagNested(loc, e) })
		return
	}
	for i, hc := range b.Head {
		loc := fmt.Sprintf("head[%d] (%s)", i, hc.Name)
		if hc.Expr == nil {
			c.add(ClassBoxShape, path+" / "+loc, "GROUPBY head column has no computing expression")
			continue
		}
		if agg, isAgg := hc.Expr.(*expr.AggCall); isAgg {
			if agg.Arg != nil {
				flagNested(loc+" (argument)", agg.Arg)
			}
			continue // aggregate at root position: legal
		}
		flagNested(loc, hc.Expr)
		matched := false
		for _, ge := range b.GroupBy {
			if expr.EqualExprs(hc.Expr, ge) {
				matched = true
				break
			}
		}
		if !matched {
			c.add(ClassAggPlacement, path+" / "+loc,
				"non-aggregate head expression %s is not one of the grouping expressions", hc.Expr)
		}
	}
	for i, ge := range b.GroupBy {
		flagNested(fmt.Sprintf("groupby[%d]", i), ge)
	}
	for i := range b.Preds {
		flagNested(fmt.Sprintf("pred[%d]", i), b.Preds[i].Expr)
	}
}
