package verify_test

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/qgm"
	"repro/internal/sql"
	"repro/internal/verify"
)

func paperCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	if _, err := c.CreateTable("QUOTATIONS", []catalog.Column{
		{Name: "PARTNO", Type: datum.TInt},
		{Name: "PRICE", Type: datum.TFloat},
		{Name: "ORDER_QTY", Type: datum.TInt},
	}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("INVENTORY", []catalog.Column{
		{Name: "PARTNO", Type: datum.TInt},
		{Name: "ONHAND_QTY", Type: datum.TInt},
		{Name: "TYPE", Type: datum.TString},
	}, ""); err != nil {
		t.Fatal(err)
	}
	return c
}

func translate(t *testing.T, c *catalog.Catalog, src string) *qgm.Graph {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, err := qgm.TranslateStatement(c, stmt)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return g
}

const paperQuery = `SELECT partno, price, order_qty FROM quotations Q1
	WHERE Q1.partno IN
	  (SELECT partno FROM inventory Q3
	   WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')`

// TestCleanGraphs: graphs straight out of the translator must verify
// with zero violations across the main QGM shapes.
func TestCleanGraphs(t *testing.T) {
	c := paperCatalog(t)
	queries := []string{
		paperQuery,
		"SELECT * FROM inventory",
		"SELECT DISTINCT type FROM inventory ORDER BY type",
		`SELECT type, COUNT(*), SUM(onhand_qty) total
			FROM inventory WHERE partno > 0 GROUP BY type HAVING COUNT(*) > 1`,
		"SELECT partno FROM quotations UNION SELECT partno FROM inventory",
		"SELECT a.partno FROM quotations a, quotations b WHERE a.partno = b.partno",
	}
	for _, q := range queries {
		g := translate(t, c, q)
		if rep := verify.Graph(g); rep != nil {
			t.Errorf("%s:\n%v", q, rep)
		}
	}
}

// firstCol returns the first *expr.Col reachable in the box head.
func firstCol(t *testing.T, b *qgm.Box) *expr.Col {
	t.Helper()
	for _, hc := range b.Head {
		if c, ok := hc.Expr.(*expr.Col); ok {
			return c
		}
	}
	t.Fatal("no Col in box head")
	return nil
}

// innerSelect returns a non-top SELECT box (the IN-subquery box of the
// paper query).
func innerSelect(t *testing.T, g *qgm.Graph) *qgm.Box {
	t.Helper()
	for _, b := range g.Boxes {
		if b != g.Top && b.Kind == qgm.KindSelect {
			return b
		}
	}
	t.Fatal("no inner SELECT box")
	return nil
}

func baseBox(t *testing.T, g *qgm.Graph) *qgm.Box {
	t.Helper()
	for _, b := range g.Boxes {
		if b.Kind == qgm.KindBase {
			return b
		}
	}
	t.Fatal("no BASE box")
	return nil
}

// TestCorruptions deliberately damages a freshly translated graph in
// each of the ways the verifier must catch, and asserts both the
// violation class and that the diagnostic names the offending box.
func TestCorruptions(t *testing.T) {
	cases := []struct {
		name      string
		corrupt   func(t *testing.T, g *qgm.Graph)
		wantClass string
	}{
		{
			name: "dangling QID",
			corrupt: func(t *testing.T, g *qgm.Graph) {
				firstCol(t, g.Top).QID = 999
			},
			wantClass: verify.ClassOrphanQID,
		},
		{
			name: "ordinal out of range",
			corrupt: func(t *testing.T, g *qgm.Graph) {
				firstCol(t, g.Top).Ord = 99
			},
			wantClass: verify.ClassOrdinal,
		},
		{
			name: "type-mismatched head",
			corrupt: func(t *testing.T, g *qgm.Graph) {
				// PARTNO is INT; claim the head column is a STRING.
				g.Top.Head[0].Type = datum.TString
			},
			wantClass: verify.ClassHeadType,
		},
		{
			name: "cyclic box reference",
			corrupt: func(t *testing.T, g *qgm.Graph) {
				// Point the subquery's setformer back at the top box.
				inner := innerSelect(t, g)
				if len(inner.Quants) == 0 {
					t.Fatal("inner box has no quantifiers")
				}
				inner.Quants[0].Input = g.Top
			},
			wantClass: verify.ClassCycle,
		},
		{
			name: "illegal distinct mode",
			corrupt: func(t *testing.T, g *qgm.Graph) {
				// A BASE box cannot enforce duplicate elimination; its
				// output is whatever the stored table holds.
				baseBox(t, g).Distinct = qgm.EnforceDistinct
			},
			wantClass: verify.ClassDistinct,
		},
		{
			name: "out-of-scope column reference",
			corrupt: func(t *testing.T, g *qgm.Graph) {
				// Reference the subquery's quantifier from the top box:
				// the owner is not the top box nor an ancestor of it.
				inner := innerSelect(t, g)
				if len(inner.Quants) == 0 {
					t.Fatal("inner box has no quantifiers")
				}
				firstCol(t, g.Top).QID = inner.Quants[0].QID
			},
			wantClass: verify.ClassOrphanQID,
		},
		{
			name: "dangling box",
			corrupt: func(t *testing.T, g *qgm.Graph) {
				b := g.NewBox(qgm.KindSelect)
				b.Head = append(b.Head, qgm.HeadCol{Name: "X", Type: datum.TInt, Expr: expr.NewConst(datum.NewInt(1))})
			},
			wantClass: verify.ClassDanglingBox,
		},
	}
	c := paperCatalog(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := translate(t, c, paperQuery)
			tc.corrupt(t, g)
			rep := verify.Graph(g)
			if rep == nil {
				t.Fatalf("corruption not detected\n%s", g)
			}
			if !rep.Has(tc.wantClass) {
				t.Fatalf("want a %q violation, got:\n%v", tc.wantClass, rep)
			}
			for _, v := range rep.Violations {
				if v.Class == tc.wantClass && !strings.Contains(v.Path, "box ") {
					t.Errorf("violation lacks a box path: %v", v)
				}
			}
		})
	}
}

// TestCheckDelegates: qgm.Graph.Check must report deep violations once
// the verify package is linked (its init registers the deep verifier).
func TestCheckDelegates(t *testing.T) {
	c := paperCatalog(t)
	g := translate(t, c, paperQuery)
	firstCol(t, g.Top).Ord = 99
	err := g.Check()
	if err == nil {
		t.Fatal("Check missed the corrupted ordinal")
	}
	rep := verify.AsReport(err)
	if rep == nil {
		t.Fatalf("Check returned %T, want *verify.Report", err)
	}
	if !rep.Has(verify.ClassOrdinal) {
		t.Fatalf("want ordinal violation, got:\n%v", rep)
	}
}
