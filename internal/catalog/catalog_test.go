package catalog

import (
	"testing"

	"repro/internal/datum"
	"repro/internal/storage"
)

func testCols() []Column {
	return []Column{
		{Name: "ID", Type: datum.TInt, NotNull: true},
		{Name: "NAME", Type: datum.TString},
		{Name: "QTY", Type: datum.TInt},
	}
}

func mkTable(t *testing.T, c *Catalog, name string) *Table {
	t.Helper()
	tbl, err := c.CreateTable(name, testCols(), "")
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestCreateTable(t *testing.T) {
	c := New()
	tbl := mkTable(t, c, "parts")
	if tbl.Name != "PARTS" || tbl.SM != "HEAP" {
		t.Errorf("table = %+v", tbl)
	}
	if _, err := c.CreateTable("parts", testCols(), ""); err == nil {
		t.Error("duplicate table must fail")
	}
	if _, err := c.CreateTable("t2", nil, ""); err == nil {
		t.Error("no columns must fail")
	}
	if _, err := c.CreateTable("t3", []Column{{Name: "A", Type: datum.TInt}, {Name: "a", Type: datum.TInt}}, ""); err == nil {
		t.Error("duplicate column must fail")
	}
	if _, err := c.CreateTable("t4", testCols(), "NO_SUCH_SM"); err == nil {
		t.Error("unknown storage manager must fail")
	}
	got, ok := c.Table("PaRtS")
	if !ok || got != tbl {
		t.Error("case-insensitive lookup")
	}
	if names := c.TableNames(); len(names) != 1 || names[0] != "PARTS" {
		t.Errorf("TableNames = %v", names)
	}
	if err := c.DropTable("parts"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("parts"); err == nil {
		t.Error("double drop must fail")
	}
}

func TestColIndex(t *testing.T) {
	c := New()
	tbl := mkTable(t, c, "T")
	if tbl.ColIndex("name") != 1 || tbl.ColIndex("NAME") != 1 {
		t.Error("ColIndex case-insensitive")
	}
	if tbl.ColIndex("nope") != -1 {
		t.Error("missing column")
	}
}

func TestInsertValidation(t *testing.T) {
	c := New()
	tbl := mkTable(t, c, "T")
	if _, err := c.Insert(tbl, datum.Row{datum.NewInt(1), datum.NewString("a"), datum.NewInt(5)}); err != nil {
		t.Fatal(err)
	}
	// NOT NULL.
	if _, err := c.Insert(tbl, datum.Row{datum.Null, datum.NewString("a"), datum.NewInt(5)}); err == nil {
		t.Error("NOT NULL violation must fail")
	}
	// Nullable NULL ok.
	if _, err := c.Insert(tbl, datum.Row{datum.NewInt(2), datum.Null, datum.Null}); err != nil {
		t.Errorf("nullable NULL: %v", err)
	}
	// Width mismatch.
	if _, err := c.Insert(tbl, datum.Row{datum.NewInt(3)}); err == nil {
		t.Error("width mismatch must fail")
	}
	// Type coercion: float into INT column.
	rid, err := c.Insert(tbl, datum.Row{datum.NewFloat(4.7), datum.NewString("x"), datum.NewInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	row, _ := tbl.Rel.Fetch(rid)
	if row[0].Type() != datum.TInt || row[0].Int() != 4 {
		t.Errorf("coerced value = %v", row[0])
	}
	// Incompatible type.
	if _, err := c.Insert(tbl, datum.Row{datum.NewString("x"), datum.NewString("x"), datum.NewInt(1)}); err == nil {
		t.Error("type mismatch must fail")
	}
}

func TestIndexLifecycleAndMaintenance(t *testing.T) {
	c := New()
	tbl := mkTable(t, c, "T")
	// Rows inserted before the index exist; CreateIndex must backfill.
	rid1, _ := c.Insert(tbl, datum.Row{datum.NewInt(1), datum.NewString("a"), datum.NewInt(10)})
	c.Insert(tbl, datum.Row{datum.NewInt(2), datum.NewString("b"), datum.NewInt(20)})

	ix, err := c.CreateIndex("t_id", "T", []string{"id"}, "", true)
	if err != nil {
		t.Fatal(err)
	}
	// DDL publishes a new copy-on-write generation; re-resolve the
	// table so the index set is visible to the legacy DML helpers.
	tbl, _ = c.Table("T")
	if ix.Method != "BTREE" || !ix.Unique || ix.KeyCols[0] != 0 {
		t.Errorf("index = %+v", ix)
	}
	if ix.At.Len() != 2 {
		t.Errorf("backfill: %d entries", ix.At.Len())
	}
	// Maintenance on insert.
	rid3, err := c.Insert(tbl, datum.Row{datum.NewInt(3), datum.NewString("c"), datum.NewInt(30)})
	if err != nil {
		t.Fatal(err)
	}
	if ix.At.Len() != 3 {
		t.Error("index not maintained on insert")
	}
	// Unique violation rolls back the record insert.
	before := tbl.Rel.RowCount()
	if _, err := c.Insert(tbl, datum.Row{datum.NewInt(3), datum.NewString("dup"), datum.NewInt(0)}); err == nil {
		t.Error("unique violation must fail")
	}
	if tbl.Rel.RowCount() != before {
		t.Error("failed insert must roll back the record")
	}
	// Maintenance on update (key change).
	if err := c.Update(tbl, rid3, datum.Row{datum.NewInt(33), datum.NewString("c"), datum.NewInt(30)}); err != nil {
		t.Fatal(err)
	}
	it := ix.At.Search(storage.Include(datum.Row{datum.NewInt(33)}), storage.Include(datum.Row{datum.NewInt(33)}))
	if _, ok := it.Next(); !ok {
		t.Error("updated key not in index")
	}
	// Maintenance on delete.
	if err := c.Delete(tbl, rid1); err != nil {
		t.Fatal(err)
	}
	if ix.At.Len() != 2 {
		t.Error("index not maintained on delete")
	}
	if err := c.Delete(tbl, rid1); err == nil {
		t.Error("double delete must fail")
	}
	// Errors.
	if _, err := c.CreateIndex("t_id", "T", []string{"id"}, "", false); err == nil {
		t.Error("duplicate index must fail")
	}
	if _, err := c.CreateIndex("x", "NOPE", []string{"id"}, "", false); err == nil {
		t.Error("unknown table must fail")
	}
	if _, err := c.CreateIndex("x", "T", []string{"nope"}, "", false); err == nil {
		t.Error("unknown column must fail")
	}
	if _, err := c.CreateIndex("x", "T", nil, "", false); err == nil {
		t.Error("no key columns must fail")
	}
	if _, err := c.CreateIndex("x", "T", []string{"id"}, "NO_AM", false); err == nil {
		t.Error("unknown access method must fail")
	}
	if err := c.DropIndex("T", "t_id"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropIndex("T", "t_id"); err == nil {
		t.Error("double index drop must fail")
	}
	if err := c.DropIndex("NOPE", "x"); err == nil {
		t.Error("drop on unknown table must fail")
	}
}

func TestViews(t *testing.T) {
	c := New()
	mkTable(t, c, "T")
	if err := c.CreateView("v1", []string{"A"}, "SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView("v1", nil, "x"); err == nil {
		t.Error("duplicate view must fail")
	}
	if err := c.CreateView("T", nil, "x"); err == nil {
		t.Error("view over table name must fail")
	}
	if _, err := c.CreateTable("v1", testCols(), ""); err == nil {
		t.Error("table over view name must fail")
	}
	v, ok := c.View("V1")
	if !ok || v.Text != "SELECT id FROM t" {
		t.Error("view lookup")
	}
	if names := c.ViewNames(); len(names) != 1 || names[0] != "V1" {
		t.Errorf("ViewNames = %v", names)
	}
	if err := c.DropView("v1"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropView("v1"); err == nil {
		t.Error("double view drop must fail")
	}
}

func TestAnalyze(t *testing.T) {
	c := New()
	tbl := mkTable(t, c, "T")
	for i := int64(0); i < 100; i++ {
		name := datum.NewString("n" + string(rune('a'+i%5)))
		c.Insert(tbl, datum.Row{datum.NewInt(i), name, datum.NewInt(i % 10)})
	}
	if err := c.Analyze(tbl); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// ANALYZE publishes its statistics on a new catalog generation.
	tbl, _ = c.Table("T")
	s := tbl.Stats
	if s.Rows != 100 {
		t.Errorf("Rows = %d", s.Rows)
	}
	if s.Pages == 0 {
		t.Error("Pages = 0")
	}
	if s.ColCard[0] != 100 || s.ColCard[1] != 5 || s.ColCard[2] != 10 {
		t.Errorf("ColCard = %v", s.ColCard)
	}
	if s.ColMin[0].Int() != 0 || s.ColMax[0].Int() != 99 {
		t.Errorf("min/max = %v/%v", s.ColMin[0], s.ColMax[0])
	}
}

func TestAnalyzeWithNulls(t *testing.T) {
	c := New()
	tbl := mkTable(t, c, "T")
	c.Insert(tbl, datum.Row{datum.NewInt(1), datum.Null, datum.Null})
	c.Insert(tbl, datum.Row{datum.NewInt(2), datum.Null, datum.NewInt(5)})
	if err := c.Analyze(tbl); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	tbl, _ = c.Table("T")
	if tbl.Stats.ColCard[1] != 0 {
		t.Error("all-NULL column has 0 distinct values")
	}
	if !tbl.Stats.ColMin[1].IsNull() {
		t.Error("all-NULL min is NULL")
	}
	if tbl.Stats.ColCard[2] != 1 || tbl.Stats.ColMin[2].Int() != 5 {
		t.Error("NULLs skipped in stats")
	}
}

func TestTablePerStorageManager(t *testing.T) {
	// Corona must route each table to its own storage manager.
	c := New()
	c.Storage.RegisterStorageManager(storage.NewFixedManager())
	ht, err := c.CreateTable("H", []Column{{Name: "A", Type: datum.TInt}}, "")
	if err != nil {
		t.Fatal(err)
	}
	ft, err := c.CreateTable("F", []Column{{Name: "A", Type: datum.TInt}}, "FIXED")
	if err != nil {
		t.Fatal(err)
	}
	if ht.SM != "HEAP" || ft.SM != "FIXED" {
		t.Errorf("SMs = %s, %s", ht.SM, ft.SM)
	}
	if _, err := c.Insert(ft, datum.Row{datum.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
}

func TestRTreeIndexThroughCatalog(t *testing.T) {
	c := New()
	c.Storage.RegisterAccessMethod(storage.RTreeMethod{})
	tbl, _ := c.CreateTable("PTS", []Column{
		{Name: "ID", Type: datum.TInt},
		{Name: "X", Type: datum.TFloat},
		{Name: "Y", Type: datum.TFloat},
	}, "")
	for i := int64(0); i < 25; i++ {
		c.Insert(tbl, datum.Row{datum.NewInt(i), datum.NewFloat(float64(i % 5)), datum.NewFloat(float64(i / 5))})
	}
	ix, err := c.CreateIndex("pts_xy", "PTS", []string{"X", "Y"}, "RTREE", false)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Caps.Spatial {
		t.Error("rtree caps")
	}
	it := ix.At.Search(
		storage.Include(datum.Row{datum.NewFloat(1), datum.NewFloat(1)}),
		storage.Include(datum.Row{datum.NewFloat(2), datum.NewFloat(2)}))
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if n != 4 {
		t.Errorf("window found %d points, want 4", n)
	}
}
