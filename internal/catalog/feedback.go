package catalog

import (
	"sort"
	"sync"
)

// Observed-cardinality feedback: bounded, decayed corrections to a
// table's ANALYZE statistics, learned from executed statements. Each
// overlay records how many rows a scan of this table actually produced
// under one predicate fingerprint; the optimizer prefers an overlay
// over its selectivity model when one exists (see optimizer.costScan).
// Overlays never replace ANALYZE statistics — they sit beside them, and
// a fresh ANALYZE clears them (measured statistics supersede learned
// corrections).

// maxCardOverlays bounds the per-table overlay set; when full, the
// least recently touched entry is evicted. The bound keeps a plan
// cache's worth of hot predicates corrected without letting an ad-hoc
// workload grow per-table state without limit.
const maxCardOverlays = 16

// cardOverlay is one learned correction.
type cardOverlay struct {
	rows  float64 // decayed observed output cardinality
	folds int64   // observations folded into rows
	stamp int64   // recency, for eviction
}

// CardOverlay is a read-only snapshot of one overlay entry.
type CardOverlay struct {
	// Key is the predicate fingerprint ("" for an unpredicated scan).
	Key string
	// Rows is the current (decayed) observed cardinality.
	Rows float64
	// Folds counts the observations folded in.
	Folds int64
}

// cardFeedback is the per-table overlay store, shared by every catalog
// generation's clone of the table. It has its own mutex: observations
// fold in after a statement finishes (outside the catalog lock) while
// concurrent compilations consult it.
type cardFeedback struct {
	mu      sync.Mutex
	entries map[string]*cardOverlay
	stamp   int64
}

// ObserveCard folds one observed scan cardinality into the table's
// overlay for the given predicate fingerprint. An existing entry decays
// toward the observation — new = (old + observed) / 2 — so one outlier
// execution cannot swing the estimate, while a sustained shift
// converges geometrically. A new key evicts the least recently touched
// entry when the table is at its overlay bound.
func (t *Table) ObserveCard(key string, rows float64) {
	if rows < 1 {
		rows = 1
	}
	fb := t.fb
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.stamp++
	if e, ok := fb.entries[key]; ok {
		e.rows = (e.rows + rows) / 2
		e.folds++
		e.stamp = fb.stamp
		return
	}
	if fb.entries == nil {
		fb.entries = map[string]*cardOverlay{}
	}
	if len(fb.entries) >= maxCardOverlays {
		var victim string
		oldest := int64(1<<63 - 1)
		for k, e := range fb.entries {
			if e.stamp < oldest || (e.stamp == oldest && k < victim) {
				victim, oldest = k, e.stamp
			}
		}
		delete(fb.entries, victim)
	}
	fb.entries[key] = &cardOverlay{rows: rows, folds: 1, stamp: fb.stamp}
}

// ObservedCard reports the learned cardinality for a predicate
// fingerprint, refreshing its recency so entries the optimizer still
// consults outlive ones it no longer asks about.
func (t *Table) ObservedCard(key string) (float64, bool) {
	fb := t.fb
	fb.mu.Lock()
	defer fb.mu.Unlock()
	e, ok := fb.entries[key]
	if !ok {
		return 0, false
	}
	fb.stamp++
	e.stamp = fb.stamp
	return e.rows, true
}

// CardOverlays snapshots the table's overlay set, sorted by key.
func (t *Table) CardOverlays() []CardOverlay {
	fb := t.fb
	fb.mu.Lock()
	defer fb.mu.Unlock()
	out := make([]CardOverlay, 0, len(fb.entries))
	for k, e := range fb.entries {
		out = append(out, CardOverlay{Key: k, Rows: e.rows, Folds: e.folds})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// clearCardOverlays drops every learned correction; ANALYZE calls it
// because freshly measured statistics supersede feedback derived from
// the stale ones.
func (t *Table) clearCardOverlays() {
	fb := t.fb
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.entries = nil
	fb.stamp = 0
}
