package catalog

import (
	"testing"

	"repro/internal/datum"
	"repro/internal/storage"
)

// The catalog version is the plan cache's invalidation clock: every
// data-definition change and every statistics update must move it, or a
// stale plan would keep executing against a changed schema.
func TestVersionBumpsOnEveryDDLKind(t *testing.T) {
	c := New()
	last := c.Version()
	step := func(op string) {
		t.Helper()
		if v := c.Version(); v <= last {
			t.Fatalf("%s did not bump the catalog version (still %d)", op, v)
		} else {
			last = v
		}
	}

	if _, err := c.CreateTable("T", []Column{{Name: "ID", Type: datum.TInt}}, ""); err != nil {
		t.Fatal(err)
	}
	step("CreateTable")
	if _, err := c.CreateIndex("t_id", "T", []string{"ID"}, "", false); err != nil {
		t.Fatal(err)
	}
	step("CreateIndex")
	if err := c.CreateView("V", nil, "SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	step("CreateView")
	tbl, _ := c.Table("T")
	if err := c.Analyze(tbl); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	step("Analyze")
	if err := c.DropIndex("T", "t_id"); err != nil {
		t.Fatal(err)
	}
	step("DropIndex")
	if err := c.DropView("V"); err != nil {
		t.Fatal(err)
	}
	step("DropView")
	if err := c.DropTable("T"); err != nil {
		t.Fatal(err)
	}
	step("DropTable")

	fi := storage.NewFaultInjector()
	c.AttachFaults(fi)
	step("AttachFaults")
	c.DetachFaults()
	step("DetachFaults")
}

// Failed DDL must not bump the version: nothing changed, so cached
// plans stay valid.
func TestVersionStableOnFailedDDL(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("T", []Column{{Name: "ID", Type: datum.TInt}}, ""); err != nil {
		t.Fatal(err)
	}
	v := c.Version()
	if _, err := c.CreateTable("T", []Column{{Name: "ID", Type: datum.TInt}}, ""); err == nil {
		t.Fatal("duplicate CreateTable must fail")
	}
	if err := c.DropTable("NOPE"); err == nil {
		t.Fatal("DropTable of missing table must fail")
	}
	if got := c.Version(); got != v {
		t.Fatalf("failed DDL moved the version: %d -> %d", v, got)
	}
}
