package catalog

import (
	"fmt"
	"testing"
)

func TestCardOverlayDecayAndBound(t *testing.T) {
	// The overlay store is allocated at table creation and shared by
	// every generation's clone of the table.
	tab := Table{fb: &cardFeedback{}}

	// First observation lands verbatim; repeats decay halfway toward
	// each new observation.
	tab.ObserveCard("k", 1000)
	if r, ok := tab.ObservedCard("k"); !ok || r != 1000 {
		t.Fatalf("after 1 fold: %v %v", r, ok)
	}
	tab.ObserveCard("k", 500)
	if r, _ := tab.ObservedCard("k"); r != 750 {
		t.Fatalf("decay = %v, want 750", r)
	}
	if ovs := tab.CardOverlays(); len(ovs) != 1 || ovs[0].Folds != 2 {
		t.Fatalf("overlays = %+v", ovs)
	}

	// Observations clamp below one row (a scan that produced nothing
	// still keys a real overlay, not a zero that poisons ratios).
	tab.ObserveCard("empty", 0)
	if r, _ := tab.ObservedCard("empty"); r != 1 {
		t.Fatalf("zero observation = %v, want 1", r)
	}

	// The store is bounded: filling past the cap evicts the least
	// recently touched key, and touching protects from eviction.
	for i := 0; i < maxCardOverlays; i++ {
		tab.ObserveCard(fmt.Sprintf("f%02d", i), float64(i+1))
	}
	if _, ok := tab.ObservedCard("k"); ok {
		t.Fatal("oldest keys survived past the bound")
	}
	tab.ObservedCard("f00") // refresh: f00 must now outlive f01
	tab.ObserveCard("newcomer", 42)
	if _, ok := tab.ObservedCard("f00"); !ok {
		t.Fatal("recently touched overlay was evicted")
	}
	if _, ok := tab.ObservedCard("f01"); ok {
		t.Fatal("least recently touched overlay survived")
	}
	if n := len(tab.CardOverlays()); n != maxCardOverlays {
		t.Fatalf("store grew to %d entries (bound %d)", n, maxCardOverlays)
	}

	tab.clearCardOverlays()
	if n := len(tab.CardOverlays()); n != 0 {
		t.Fatalf("clear left %d entries", n)
	}
}
