package catalog

import (
	"errors"
	"fmt"

	"repro/internal/datum"
	"repro/internal/storage"
)

// This file implements statement-level atomicity. The paper's Core
// provides recovery below the interfaces Corona uses; our substitution
// has no WAL, so without compensation an error halfway through a DML
// statement — an eval failure, a NOT NULL violation on the fifth row, an
// injected storage fault — would leave the table half-mutated. The QES
// DML operators therefore route every mutation through the *Logged
// entry points, which record one compensating action per storage-level
// step (record insert/delete/update, index-entry insert/delete) into an
// UndoLog; on error the operator rolls the log back in reverse order,
// restoring the heap and every attachment to the pre-statement state.
//
// Compensations run against the unwrapped (fault-free) store: rollback
// must not be failed by the injector that aborted the statement. What
// still diverges from real Core recovery: no crash or media recovery —
// the log lives in memory and dies with the process.

type undoKind uint8

const (
	undoRelInsert undoKind = iota // compensate: delete the record
	undoRelDelete                 // compensate: restore the record
	undoRelUpdate                 // compensate: write back the old row
	undoIxInsert                  // compensate: delete the entry
	undoIxDelete                  // compensate: re-insert the entry
)

type undoAction struct {
	kind undoKind
	t    *Table
	ix   *Index
	rid  storage.RID
	// row is the record to restore (RelDelete), the old image
	// (RelUpdate), or the index key (IxInsert / IxDelete).
	row datum.Row
}

// UndoLog collects compensating actions for one DML statement.
type UndoLog struct {
	actions []undoAction
}

// Len reports the number of recorded compensating actions.
func (l *UndoLog) Len() int { return len(l.actions) }

// Rollback applies the compensating actions in reverse order, bypassing
// fault decoration, and clears the log. It keeps going past individual
// compensation failures (joining them into the returned error): a
// partial rollback is still better than none.
func (l *UndoLog) Rollback() error {
	var errs []error
	for i := len(l.actions) - 1; i >= 0; i-- {
		a := l.actions[i]
		var err error
		switch a.kind {
		case undoRelInsert:
			err = storage.UnwrapRelation(a.t.Rel).Delete(a.rid)
		case undoRelDelete:
			raw := storage.UnwrapRelation(a.t.Rel)
			if res, ok := raw.(storage.Restorer); ok {
				err = res.Restore(a.rid, a.row)
			} else {
				err = fmt.Errorf("catalog: %s: storage manager cannot restore deleted records", a.t.Name)
			}
		case undoRelUpdate:
			err = storage.UnwrapRelation(a.t.Rel).Update(a.rid, a.row)
		case undoIxInsert:
			err = storage.UnwrapAttachment(a.ix.At).Delete(a.row, a.rid)
		case undoIxDelete:
			err = storage.UnwrapAttachment(a.ix.At).Insert(a.row, a.rid)
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("catalog: undo %s: %w", a.t.Name, err))
		}
	}
	l.actions = nil
	return errors.Join(errs...)
}

func (l *UndoLog) note(a undoAction) {
	l.actions = append(l.actions, a)
}

// InsertLogged is Insert recording compensating actions: on a later
// statement error the caller rolls the whole statement back. Unlike
// Insert, it does not self-compensate a failed index maintenance — the
// rollback undoes the record insert too.
func (c *Catalog) InsertLogged(t *Table, row datum.Row, log *UndoLog) (storage.RID, error) {
	if len(row) != len(t.Cols) {
		return storage.RID{}, fmt.Errorf("catalog: %s: %d values for %d columns", t.Name, len(row), len(t.Cols))
	}
	coerced := make(datum.Row, len(row))
	for i, v := range row {
		if v.IsNull() {
			if t.Cols[i].NotNull {
				return storage.RID{}, fmt.Errorf("catalog: %s.%s is NOT NULL", t.Name, t.Cols[i].Name)
			}
			coerced[i] = v
			continue
		}
		cv, err := datum.Coerce(v, t.Cols[i].Type)
		if err != nil {
			return storage.RID{}, fmt.Errorf("catalog: %s.%s: %w", t.Name, t.Cols[i].Name, err)
		}
		coerced[i] = cv
	}
	rid, err := t.Rel.Insert(coerced)
	if err != nil {
		return storage.RID{}, err
	}
	log.note(undoAction{kind: undoRelInsert, t: t, rid: rid})
	for _, ix := range t.Indexes {
		key := extractKey(coerced, ix.KeyCols)
		if err := ix.At.Insert(key, rid); err != nil {
			return storage.RID{}, err
		}
		log.note(undoAction{kind: undoIxInsert, t: t, ix: ix, rid: rid, row: key})
	}
	return rid, nil
}

// DeleteLogged is Delete recording compensating actions.
func (c *Catalog) DeleteLogged(t *Table, rid storage.RID, log *UndoLog) error {
	row, ok := t.Rel.Fetch(rid)
	if !ok {
		return fmt.Errorf("catalog: %s: no record %s", t.Name, rid)
	}
	for _, ix := range t.Indexes {
		key := extractKey(row, ix.KeyCols)
		if err := ix.At.Delete(key, rid); err != nil {
			return err
		}
		log.note(undoAction{kind: undoIxDelete, t: t, ix: ix, rid: rid, row: key})
	}
	if err := t.Rel.Delete(rid); err != nil {
		return err
	}
	log.note(undoAction{kind: undoRelDelete, t: t, rid: rid, row: row})
	return nil
}

// UpdateLogged is Update recording compensating actions.
func (c *Catalog) UpdateLogged(t *Table, rid storage.RID, newRow datum.Row, log *UndoLog) error {
	old, ok := t.Rel.Fetch(rid)
	if !ok {
		return fmt.Errorf("catalog: %s: no record %s", t.Name, rid)
	}
	for i, v := range newRow {
		if v.IsNull() && t.Cols[i].NotNull {
			return fmt.Errorf("catalog: %s.%s is NOT NULL", t.Name, t.Cols[i].Name)
		}
	}
	for _, ix := range t.Indexes {
		oldKey := extractKey(old, ix.KeyCols)
		newKey := extractKey(newRow, ix.KeyCols)
		if storage.CompareKeys(oldKey, newKey) == 0 {
			continue
		}
		if err := ix.At.Delete(oldKey, rid); err != nil {
			return err
		}
		log.note(undoAction{kind: undoIxDelete, t: t, ix: ix, rid: rid, row: oldKey})
		if err := ix.At.Insert(newKey, rid); err != nil {
			return err
		}
		log.note(undoAction{kind: undoIxInsert, t: t, ix: ix, rid: rid, row: newKey})
	}
	if err := t.Rel.Update(rid, newRow); err != nil {
		return err
	}
	log.note(undoAction{kind: undoRelUpdate, t: t, rid: rid, row: old})
	return nil
}

// ---------------------------------------------------------------------
// Fault-injection wiring

// AttachFaults decorates this catalog's storage with the fault
// injector: every registered storage manager and access method is
// wrapped through its own registry (re-registration under the same name
// — the LIND87 extension path), and every existing relation and
// attachment is wrapped in place. Idempotent.
// starburst:locks db.stmtMu:write
func (c *Catalog) AttachFaults(fi *storage.FaultInjector) {
	for _, name := range c.Storage.StorageManagerNames() {
		if m, err := c.Storage.StorageManager(name); err == nil {
			c.Storage.ReplaceStorageManager(fi.WrapManager(m))
		}
	}
	for _, name := range c.Storage.AccessMethodNames() {
		if m, err := c.Storage.AccessMethod(name); err == nil {
			c.Storage.ReplaceAccessMethod(fi.WrapMethod(m))
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faults = fi
	for _, t := range c.tables {
		t.Rel = fi.WrapRelation(t.Name, t.Rel)
		for _, ix := range t.Indexes {
			ix.At = fi.WrapAttachment(t.Name, ix.At)
		}
	}
	c.BumpVersion()
}

// DetachFaults removes fault decoration everywhere it was attached.
// starburst:locks db.stmtMu:write
func (c *Catalog) DetachFaults() {
	for _, name := range c.Storage.StorageManagerNames() {
		if m, err := c.Storage.StorageManager(name); err == nil {
			c.Storage.ReplaceStorageManager(storage.UnwrapManager(m))
		}
	}
	for _, name := range c.Storage.AccessMethodNames() {
		if m, err := c.Storage.AccessMethod(name); err == nil {
			c.Storage.ReplaceAccessMethod(storage.UnwrapMethod(m))
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faults = nil
	for _, t := range c.tables {
		t.Rel = storage.UnwrapRelation(t.Rel)
		for _, ix := range t.Indexes {
			ix.At = storage.UnwrapAttachment(ix.At)
		}
	}
	c.BumpVersion()
}
