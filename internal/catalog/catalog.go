// Package catalog implements Starburst's catalog: tables, views,
// indexes (attachments), statistics, and the registries of externally
// defined functions, storage managers and access methods. Corona's
// "base system functions (e.g., catalog interface) can frequently be
// used by the extension" (section 4) — all extensions flow through the
// registries held here.
//
// Since the MVCC redesign the schema is versioned copy-on-write: every
// DDL statement builds a new immutable generation (fresh name maps,
// cloned Table structs for whatever it changed) and publishes it with
// one atomic pointer swap. Readers resolve names lock-free against
// whichever generation they pinned, so DDL never blocks a running
// statement and a transaction's pinned generation stays stable for its
// whole lifetime. Storage handles, version maps and feedback state are
// shared across generations — a clone changes schema, not data.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Column describes one column of a table or view.
type Column struct {
	Name    string
	Type    datum.TypeID
	NotNull bool
}

// TableStats carries the optimizer's statistics for one table,
// maintained by Analyze and used for cardinality estimation.
type TableStats struct {
	Rows  int64
	Pages int64
	// ColCard is the number of distinct values per column.
	ColCard []int64
	// ColMin and ColMax bound each column's values (NULL when unknown
	// or non-scalar).
	ColMin, ColMax []datum.Value
}

// Index is an attachment instance on a table.
type Index struct {
	Name    string
	Table   string
	KeyCols []int
	Method  string
	Caps    storage.AccessMethodCaps
	Unique  bool
	At      storage.Attachment
}

// Table is a stored table: schema, storage handle, attachments, stats.
// Table structs are immutable once published in a generation — DDL
// clones them — except for the shared mutable state reachable through
// Rel, MVCC and fb, which every generation's clone points at.
type Table struct {
	Name string
	Cols []Column
	// SM names the storage manager handling this table; Corona "must
	// ensure that the correct storage manager is invoked when a table
	// is accessed" (section 1).
	SM      string
	Rel     storage.Relation
	Indexes []*Index
	Stats   TableStats
	// System marks an engine-registered introspection table (the SYS
	// schema): read-only, excluded from user DDL, volatile.
	System bool

	// MVCC is the table's row-version map, shared by every
	// generation's clone (versions survive DDL). nil on system tables,
	// which are unversioned snapshots by construction.
	MVCC *txn.TableVersions

	// fb holds the observed-cardinality overlays (see feedback.go),
	// shared across generations and internally synchronized: folds
	// happen after statements finish, concurrent with compilations
	// consulting the overlays.
	fb *cardFeedback
}

// clone returns a schema-level copy sharing all mutable runtime state
// (relation, version map, feedback). DDL mutates the clone, never the
// published original.
func (t *Table) clone() *Table {
	nt := *t
	nt.Indexes = append([]*Index(nil), t.Indexes...)
	return &nt
}

// ColIndex resolves a column name (case-insensitive) to its ordinal, or
// -1 when absent.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// View is a named query. The definition is kept as Hydrogen text and
// re-translated into QGM at each use, where the view-merging rewrite
// rules take over ("as view definitions are hidden from the query
// writer, only the DBMS can rewrite queries involving views").
type View struct {
	Name string
	// ColNames optionally renames the output columns.
	ColNames []string
	Text     string
}

// generation is one immutable published schema: name maps plus the
// version number plan caches key on.
type generation struct {
	tables  map[string]*Table
	views   map[string]*View
	version int64
}

// Catalog is one database's schema plus the extension registries. A
// Catalog value is either the live catalog (root) or a pinned
// read-only view of one generation returned by Pin; both share the
// registries, the I/O counters and all table runtime state.
type Catalog struct {
	// mu serializes generation producers (DDL, ANALYZE, BumpVersion).
	// Readers never take it.
	mu  sync.Mutex
	gen atomic.Pointer[generation]

	// pinned, when non-nil, fixes every name lookup to one generation:
	// the read view a transaction's statements compile and run against.
	pinned *generation
	// root points to the live catalog a pinned view derives from (nil
	// on the root itself); current-generation lookups — DML index
	// maintenance, GC — go through it.
	root *Catalog

	// Funcs is the registry of scalar/aggregate/set-predicate/table
	// functions, seeded with built-ins.
	Funcs *expr.Registry
	// Storage is the registry of storage managers and access methods.
	Storage *storage.Registry
	// IO is the shared simulated-I/O counter for all relations.
	IO *storage.IOStats

	// faults, when non-nil, decorates new relations and attachments as
	// they are created (see AttachFaults).
	faults *storage.FaultInjector

	// gcMu guards gc, the queue of row versions waiting for the GC
	// horizon to pass so they can be frozen or reaped (see mvcc.go).
	gcMu sync.Mutex
	gc   []gcItem
}

// live returns the catalog that owns the mutable state: the root
// behind a pinned view, or c itself.
func (c *Catalog) live() *Catalog {
	if c.root != nil {
		return c.root
	}
	return c
}

// current returns the generation lookups resolve against: the pinned
// one on a read view, the latest otherwise.
func (c *Catalog) current() *generation {
	if c.pinned != nil {
		return c.pinned
	}
	return c.gen.Load()
}

// Pin returns a read-only view of the current schema generation.
// Statements of a transaction resolve every name against their pinned
// view, so concurrent DDL — which publishes new generations — never
// changes what a running transaction sees.
func (c *Catalog) Pin() *Catalog {
	l := c.live()
	p := &Catalog{
		pinned:  l.gen.Load(),
		root:    l,
		Funcs:   l.Funcs,
		Storage: l.Storage,
		IO:      l.IO,
	}
	p.gen.Store(p.pinned)
	return p
}

// Pinned reports whether c is a pinned read view.
func (c *Catalog) Pinned() bool { return c.pinned != nil }

// Version reports the schema/statistics generation: the pinned
// generation's on a read view, the live one otherwise.
func (c *Catalog) Version() int64 { return c.current().version }

// BumpVersion advances the schema generation, invalidating any plan
// compiled against earlier generations. Catalog mutators publish new
// generations internally; it is exported for extensions that mutate
// storage out of band (e.g. a storage manager whose contents change
// externally).
func (c *Catalog) BumpVersion() {
	l := c.live()
	l.mu.Lock()
	defer l.mu.Unlock()
	g := l.gen.Load()
	l.publish(&generation{tables: g.tables, views: g.views, version: g.version + 1})
}

// publish swaps in a new generation (caller holds the live catalog's
// mu).
func (c *Catalog) publish(g *generation) { c.gen.Store(g) }

// mutate clones the current generation's maps, applies fn to the
// clone, and publishes it with the version bumped. fn returning an
// error abandons the clone with nothing published.
func (c *Catalog) mutate(fn func(g *generation) error) error {
	l := c.live()
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := l.gen.Load()
	next := &generation{
		tables:  make(map[string]*Table, len(cur.tables)+1),
		views:   make(map[string]*View, len(cur.views)+1),
		version: cur.version + 1,
	}
	for k, t := range cur.tables {
		next.tables[k] = t
	}
	for k, v := range cur.views {
		next.views[k] = v
	}
	if err := fn(next); err != nil {
		return err
	}
	l.publish(next)
	return nil
}

// New returns an empty catalog with built-in registries.
func New() *Catalog {
	c := &Catalog{
		Funcs:   expr.NewRegistry(),
		Storage: storage.NewRegistry(),
		IO:      &storage.IOStats{},
	}
	c.gen.Store(&generation{tables: map[string]*Table{}, views: map[string]*View{}})
	return c
}

func key(name string) string { return strings.ToUpper(name) }

// SystemSchema is the reserved name prefix of the engine's
// introspection tables.
const SystemSchema = "SYS."

// IsSystemName reports whether a table/view name lies in the reserved
// SYS schema (case-insensitive).
func IsSystemName(name string) bool { return strings.HasPrefix(key(name), SystemSchema) }

// SystemObjectError is the typed error returned when a statement tries
// to modify a system object: DML against a SYS table, or DDL that would
// create, drop, index or re-analyze anything in the reserved schema.
type SystemObjectError struct {
	// Name is the system object, e.g. "SYS.STATEMENTS".
	Name string
	// Op is the rejected operation, e.g. "INSERT" or "DROP TABLE".
	Op string
}

func (e *SystemObjectError) Error() string {
	return fmt.Sprintf("catalog: %s is a system object: %s is not allowed", e.Name, e.Op)
}

// checkNotSystem rejects user operations on reserved names.
func checkNotSystem(name, op string) error {
	if IsSystemName(name) {
		return &SystemObjectError{Name: key(name), Op: op}
	}
	return nil
}

// CreateTable creates a table under the named storage manager (empty
// for the default heap).
func (c *Catalog) CreateTable(name string, cols []Column, smName string) (*Table, error) {
	if err := checkNotSystem(name, "CREATE TABLE"); err != nil {
		return nil, err
	}
	return c.createTable(name, cols, smName, false)
}

// CreateSystemTable registers one table of the engine's SYS
// introspection schema. It is the only path that may create tables
// under the reserved prefix; the resulting table is marked System so
// DML and user DDL reject it with a SystemObjectError.
func (c *Catalog) CreateSystemTable(name string, cols []Column, smName string) (*Table, error) {
	if !IsSystemName(name) {
		return nil, fmt.Errorf("catalog: system table %s must live in the %s schema", name, SystemSchema)
	}
	return c.createTable(name, cols, smName, true)
}

func (c *Catalog) createTable(name string, cols []Column, smName string, system bool) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %s needs at least one column", name)
	}
	seen := map[string]bool{}
	for _, col := range cols {
		k := key(col.Name)
		if seen[k] {
			return nil, fmt.Errorf("catalog: duplicate column %s in %s", col.Name, name)
		}
		seen[k] = true
	}
	var t *Table
	err := c.mutate(func(g *generation) error {
		k := key(name)
		if _, ok := g.tables[k]; ok {
			return fmt.Errorf("catalog: table %s already exists", name)
		}
		if _, ok := g.views[k]; ok {
			return fmt.Errorf("catalog: %s already exists as a view", name)
		}
		sm, err := c.live().Storage.StorageManager(smName)
		if err != nil {
			return err
		}
		rel, err := sm.Create(name, len(cols), c.live().IO)
		if err != nil {
			return err
		}
		t = &Table{Name: strings.ToUpper(name), Cols: cols, SM: sm.Name(), Rel: rel, System: system, fb: &cardFeedback{}}
		if !system {
			t.MVCC = txn.NewTableVersions()
		}
		t.Stats.ColCard = make([]int64, len(cols))
		t.Stats.ColMin = make([]datum.Value, len(cols))
		t.Stats.ColMax = make([]datum.Value, len(cols))
		g.tables[k] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// DropTable removes a table and its attachments from the schema.
// Pinned generations keep resolving it; their scans stay valid against
// the still-reachable relation.
func (c *Catalog) DropTable(name string) error {
	if err := checkNotSystem(name, "DROP TABLE"); err != nil {
		return err
	}
	return c.mutate(func(g *generation) error {
		if _, ok := g.tables[key(name)]; !ok {
			return fmt.Errorf("catalog: no table %s", name)
		}
		delete(g.tables, key(name))
		return nil
	})
}

// Table resolves a table by name in this catalog's generation.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.current().tables[key(name)]
	return t, ok
}

// currentTable resolves a table against the live (newest) generation:
// the index set DML maintains and GC unlinks from is always the
// current one, whatever generation the statement pinned.
func (c *Catalog) currentTable(name string) (*Table, bool) {
	t, ok := c.live().gen.Load().tables[key(name)]
	return t, ok
}

// TableNames lists user tables, sorted. System (SYS.*) tables are
// listed by SystemTableNames instead: they snapshot live engine state,
// so dump/compare tooling iterating TableNames must not see them.
func (c *Catalog) TableNames() []string {
	var out []string
	for _, t := range c.current().tables {
		if t.System {
			continue
		}
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// SystemTableNames lists the SYS virtual tables, sorted.
func (c *Catalog) SystemTableNames() []string {
	var out []string
	for _, t := range c.current().tables {
		if t.System {
			out = append(out, t.Name)
		}
	}
	sort.Strings(out)
	return out
}

// CreateView records a view definition.
func (c *Catalog) CreateView(name string, colNames []string, text string) error {
	if err := checkNotSystem(name, "CREATE VIEW"); err != nil {
		return err
	}
	return c.mutate(func(g *generation) error {
		k := key(name)
		if _, ok := g.views[k]; ok {
			return fmt.Errorf("catalog: view %s already exists", name)
		}
		if _, ok := g.tables[k]; ok {
			return fmt.Errorf("catalog: %s already exists as a table", name)
		}
		g.views[k] = &View{Name: strings.ToUpper(name), ColNames: colNames, Text: text}
		return nil
	})
}

// DropView removes a view.
func (c *Catalog) DropView(name string) error {
	return c.mutate(func(g *generation) error {
		if _, ok := g.views[key(name)]; !ok {
			return fmt.Errorf("catalog: no view %s", name)
		}
		delete(g.views, key(name))
		return nil
	})
}

// View resolves a view by name in this catalog's generation.
func (c *Catalog) View(name string) (*View, bool) {
	v, ok := c.current().views[key(name)]
	return v, ok
}

// ViewNames lists views, sorted.
func (c *Catalog) ViewNames() []string {
	var out []string
	for _, v := range c.current().views {
		out = append(out, v.Name)
	}
	sort.Strings(out)
	return out
}

// CreateIndex creates an attachment on a table using the named access
// method (empty for B-tree) and backfills it from existing records.
// Row writes are quiesced for the backfill (QuiesceWrites), so the new
// attachment misses no concurrent write; readers are not blocked.
func (c *Catalog) CreateIndex(name, tableName string, colNames []string, method string, unique bool) (*Index, error) {
	if err := checkNotSystem(tableName, "CREATE INDEX"); err != nil {
		return nil, err
	}
	var ix *Index
	err := c.mutate(func(g *generation) error {
		t, ok := g.tables[key(tableName)]
		if !ok {
			return fmt.Errorf("catalog: no table %s", tableName)
		}
		for _, old := range t.Indexes {
			if strings.EqualFold(old.Name, name) {
				return fmt.Errorf("catalog: index %s already exists", name)
			}
		}
		if len(colNames) == 0 {
			return fmt.Errorf("catalog: index %s needs key columns", name)
		}
		keyCols := make([]int, len(colNames))
		keyTypes := make([]datum.TypeID, len(colNames))
		for i, cn := range colNames {
			ord := t.ColIndex(cn)
			if ord < 0 {
				return fmt.Errorf("catalog: no column %s in %s", cn, tableName)
			}
			keyCols[i] = ord
			keyTypes[i] = t.Cols[ord].Type
		}
		am, err := c.live().Storage.AccessMethod(method)
		if err != nil {
			return err
		}
		at, err := am.New(keyTypes, unique, c.live().IO)
		if err != nil {
			return err
		}
		// A fault-wrapped access method cannot know the owning table at
		// New time; name the counter bucket now.
		if fa, ok := at.(*storage.FaultAttachment); ok && fa.Owner() == "" {
			fa.SetOwner(t.Name)
		}
		ix = &Index{
			Name:    strings.ToUpper(name),
			Table:   t.Name,
			KeyCols: keyCols,
			Method:  am.Name(),
			Caps:    am.Caps(),
			Unique:  unique,
			At:      at,
		}
		// Backfill from stored records with row writes held off, so the
		// attachment ends exactly consistent with the relation. Every
		// physical row is indexed, whatever its version state — index
		// entries cover all images, and scans apply visibility.
		if t.MVCC != nil {
			t.MVCC.QuiesceWrites()
			defer t.MVCC.ResumeWrites()
		}
		it := t.Rel.Scan()
		defer it.Close()
		for {
			row, rid, ok := it.Next()
			if !ok {
				if err := storage.IterErr(it); err != nil {
					return fmt.Errorf("catalog: backfilling %s: %w", name, err)
				}
				break
			}
			if err := at.Insert(extractKey(row, keyCols), rid); err != nil {
				return fmt.Errorf("catalog: backfilling %s: %w", name, err)
			}
		}
		nt := t.clone()
		nt.Indexes = append(nt.Indexes, ix)
		g.tables[key(tableName)] = nt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// DropIndex removes an attachment.
func (c *Catalog) DropIndex(tableName, name string) error {
	if err := checkNotSystem(tableName, "DROP INDEX"); err != nil {
		return err
	}
	return c.mutate(func(g *generation) error {
		t, ok := g.tables[key(tableName)]
		if !ok {
			return fmt.Errorf("catalog: no table %s", tableName)
		}
		for i, ix := range t.Indexes {
			if strings.EqualFold(ix.Name, name) {
				nt := t.clone()
				nt.Indexes = append(nt.Indexes[:i], nt.Indexes[i+1:]...)
				g.tables[key(tableName)] = nt
				return nil
			}
		}
		return fmt.Errorf("catalog: no index %s on %s", name, tableName)
	})
}

func extractKey(row datum.Row, cols []int) datum.Row {
	k := make(datum.Row, len(cols))
	for i, c := range cols {
		k[i] = row[c]
	}
	return k
}

// Insert stores a row in a table, enforcing NOT NULL and type
// compatibility, coercing numerics, and maintaining every attachment.
// The row is written frozen — visible to every snapshot — which is
// what recovery, backfill and system paths want; transactional DML
// goes through InsertTx.
func (c *Catalog) Insert(t *Table, row datum.Row) (storage.RID, error) {
	coerced, err := coerceRow(t, row)
	if err != nil {
		return storage.RID{}, err
	}
	rid, err := t.Rel.Insert(coerced)
	if err != nil {
		return storage.RID{}, err
	}
	for _, ix := range t.Indexes {
		if err := ix.At.Insert(extractKey(coerced, ix.KeyCols), rid); err != nil {
			// Undo the record insert to keep table and attachments
			// consistent (uniqueness violations surface here).
			t.Rel.Delete(rid)
			return storage.RID{}, err
		}
	}
	return rid, nil
}

// coerceRow validates arity, NOT NULL and types, coercing numerics.
func coerceRow(t *Table, row datum.Row) (datum.Row, error) {
	if len(row) != len(t.Cols) {
		return nil, fmt.Errorf("catalog: %s: %d values for %d columns", t.Name, len(row), len(t.Cols))
	}
	coerced := make(datum.Row, len(row))
	for i, v := range row {
		if v.IsNull() {
			if t.Cols[i].NotNull {
				return nil, fmt.Errorf("catalog: %s.%s is NOT NULL", t.Name, t.Cols[i].Name)
			}
			coerced[i] = v
			continue
		}
		cv, err := datum.Coerce(v, t.Cols[i].Type)
		if err != nil {
			return nil, fmt.Errorf("catalog: %s.%s: %w", t.Name, t.Cols[i].Name, err)
		}
		coerced[i] = cv
	}
	return coerced, nil
}

// checkNotNull enforces NOT NULL on an update image.
func checkNotNull(t *Table, row datum.Row) error {
	for i, v := range row {
		if v.IsNull() && t.Cols[i].NotNull {
			return fmt.Errorf("catalog: %s.%s is NOT NULL", t.Name, t.Cols[i].Name)
		}
	}
	return nil
}

// Delete removes the record at rid and its index entries, physically
// and for every snapshot (recovery and system paths; transactional DML
// goes through DeleteTx).
func (c *Catalog) Delete(t *Table, rid storage.RID) error {
	row, ok := t.Rel.Fetch(rid)
	if !ok {
		return fmt.Errorf("catalog: %s: no record %s", t.Name, rid)
	}
	for _, ix := range t.Indexes {
		if err := ix.At.Delete(extractKey(row, ix.KeyCols), rid); err != nil {
			return err
		}
	}
	return t.Rel.Delete(rid)
}

// Update replaces the record at rid in place for every snapshot,
// maintaining attachments (recovery and system paths; transactional
// DML goes through UpdateTx).
func (c *Catalog) Update(t *Table, rid storage.RID, newRow datum.Row) error {
	old, ok := t.Rel.Fetch(rid)
	if !ok {
		return fmt.Errorf("catalog: %s: no record %s", t.Name, rid)
	}
	if err := checkNotNull(t, newRow); err != nil {
		return err
	}
	for _, ix := range t.Indexes {
		oldKey := extractKey(old, ix.KeyCols)
		newKey := extractKey(newRow, ix.KeyCols)
		if storage.CompareKeys(oldKey, newKey) == 0 {
			continue
		}
		if err := ix.At.Delete(oldKey, rid); err != nil {
			return err
		}
		if err := ix.At.Insert(newKey, rid); err != nil {
			return err
		}
	}
	return t.Rel.Update(rid, newRow)
}

// Analyze recomputes optimizer statistics for a table and publishes
// them as a new schema generation (statistics are part of the
// copy-on-write schema: a compiled plan's stats never change under
// it). The scan error (surfaced through storage.IterErr — e.g. an
// injected fault) aborts the refresh: stats computed from a partial
// scan would silently skew every subsequent plan.
func (c *Catalog) Analyze(t *Table) error {
	if t.System {
		// Statistics over a SYS snapshot would be stale by the next
		// statement; the optimizer costs them from live RowCount instead.
		return &SystemObjectError{Name: t.Name, Op: "ANALYZE"}
	}
	n := len(t.Cols)
	distinct := make([]map[string]bool, n)
	mins := make([]datum.Value, n)
	maxs := make([]datum.Value, n)
	for i := range distinct {
		distinct[i] = map[string]bool{}
		mins[i], maxs[i] = datum.Null, datum.Null
	}
	rows := int64(0)
	it := t.Rel.Scan()
	defer it.Close()
	for {
		row, _, ok := it.Next()
		if !ok {
			if err := storage.IterErr(it); err != nil {
				return fmt.Errorf("catalog: analyzing %s: %w", t.Name, err)
			}
			break
		}
		rows++
		for i, v := range row {
			if v.IsNull() {
				continue
			}
			distinct[i][datum.RowKey(datum.Row{v})] = true
			if mins[i].IsNull() || datum.SortCompare(v, mins[i]) < 0 {
				mins[i] = v
			}
			if maxs[i].IsNull() || datum.SortCompare(v, maxs[i]) > 0 {
				maxs[i] = v
			}
		}
	}
	err := c.mutate(func(g *generation) error {
		cur, ok := g.tables[key(t.Name)]
		if !ok {
			return fmt.Errorf("catalog: no table %s", t.Name)
		}
		nt := cur.clone()
		nt.Stats.Rows = rows
		nt.Stats.Pages = nt.Rel.PageCount()
		nt.Stats.ColCard = make([]int64, n)
		nt.Stats.ColMin = make([]datum.Value, n)
		nt.Stats.ColMax = make([]datum.Value, n)
		for i := range distinct {
			nt.Stats.ColCard[i] = int64(len(distinct[i]))
			nt.Stats.ColMin[i] = mins[i]
			nt.Stats.ColMax[i] = maxs[i]
		}
		g.tables[key(t.Name)] = nt
		return nil
	})
	if err != nil {
		return err
	}
	// Freshly measured statistics supersede corrections learned against
	// the stale ones.
	t.clearCardOverlays()
	return nil
}

// ---------------------------------------------------------------------
// Fault-injection wiring

// AttachFaults decorates this catalog's storage with the fault
// injector: every registered storage manager and access method is
// wrapped through its own registry (re-registration under the same name
// — the LIND87 extension path), and every existing relation and
// attachment is wrapped in place. The in-place rewrap mutates shared
// Table state, so the caller must have quiesced all statements (the
// engine holds its admin latch exclusively).
// starburst:locks db.adminMu:write
func (c *Catalog) AttachFaults(fi *storage.FaultInjector) {
	l := c.live()
	for _, name := range l.Storage.StorageManagerNames() {
		if m, err := l.Storage.StorageManager(name); err == nil {
			l.Storage.ReplaceStorageManager(fi.WrapManager(m))
		}
	}
	for _, name := range l.Storage.AccessMethodNames() {
		if m, err := l.Storage.AccessMethod(name); err == nil {
			l.Storage.ReplaceAccessMethod(fi.WrapMethod(m))
		}
	}
	l.mu.Lock()
	g := l.gen.Load()
	l.faults = fi
	for _, t := range g.tables {
		t.Rel = fi.WrapRelation(t.Name, t.Rel)
		for _, ix := range t.Indexes {
			ix.At = fi.WrapAttachment(t.Name, ix.At)
		}
	}
	l.publish(&generation{tables: g.tables, views: g.views, version: g.version + 1})
	l.mu.Unlock()
}

// DetachFaults removes fault decoration everywhere it was attached.
// Same quiescence requirement as AttachFaults.
// starburst:locks db.adminMu:write
func (c *Catalog) DetachFaults() {
	l := c.live()
	for _, name := range l.Storage.StorageManagerNames() {
		if m, err := l.Storage.StorageManager(name); err == nil {
			l.Storage.ReplaceStorageManager(storage.UnwrapManager(m))
		}
	}
	for _, name := range l.Storage.AccessMethodNames() {
		if m, err := l.Storage.AccessMethod(name); err == nil {
			l.Storage.ReplaceAccessMethod(storage.UnwrapMethod(m))
		}
	}
	l.mu.Lock()
	g := l.gen.Load()
	l.faults = nil
	for _, t := range g.tables {
		t.Rel = storage.UnwrapRelation(t.Rel)
		for _, ix := range t.Indexes {
			ix.At = storage.UnwrapAttachment(ix.At)
		}
	}
	l.publish(&generation{tables: g.tables, views: g.views, version: g.version + 1})
	l.mu.Unlock()
}
